// Regenerates Table 3: the LUT input/output pin configuration and INIT
// values of the proposed approximate 4x4 multiplier, read back from the
// instantiated netlist, plus an exhaustive equivalence check against the
// behavioral model (the proof that the published programming is correct).
#include <array>

#include "bench_util.hpp"
#include "fabric/netlist.hpp"
#include "mult/elementary.hpp"
#include "multgen/generators.hpp"

using namespace axmult;

int main() {
  bench::print_header("Table 3: LUT pin configuration / INIT values of the 4x4 multiplier");

  const auto nl = multgen::make_ca_netlist(4);
  Table t({"LUT", "I5", "I4", "I3", "I2", "I1", "I0", "INIT (hex)", "O6", "O5"});
  auto pin_name = [&](fabric::NetId n) -> std::string {
    if (n == fabric::kNetGnd) return "0";
    if (n == fabric::kNetVcc) return "1";
    return nl.net_name(n);
  };
  for (const auto& cell : nl.cells()) {
    if (cell.kind != fabric::CellKind::kLut6) continue;
    char init_hex[32];
    std::snprintf(init_hex, sizeof init_hex, "%016llX",
                  static_cast<unsigned long long>(cell.init));
    t.add_row({cell.name, pin_name(cell.in[5]), pin_name(cell.in[4]), pin_name(cell.in[3]),
               pin_name(cell.in[2]), pin_name(cell.in[1]), pin_name(cell.in[0]), init_hex,
               pin_name(cell.out[0]),
               cell.out[1] != fabric::kNoNet ? pin_name(cell.out[1]) : "-"});
  }
  t.print("Instantiated Table 3 netlist (INIT values verbatim from the paper)");

  // Exhaustive equivalence: the published programming vs the behavioral
  // derivation of Section 3.2.
  fabric::Evaluator ev(nl);
  unsigned mismatches = 0;
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      if (ev.eval_word(a, 4, b, 4) != mult::approx_4x4(a, b)) ++mismatches;
    }
  }
  std::printf("\nExhaustive netlist-vs-model check over 256 inputs: %u mismatches\n",
              mismatches);
  const auto area = nl.area();
  std::printf("Resources: %llu LUT6_2, %llu CARRY4 (paper: 12 LUTs, 1 carry chain)\n",
              static_cast<unsigned long long>(area.luts),
              static_cast<unsigned long long>(area.carry4));
  return mismatches == 0 ? 0 : 1;
}
