// Regenerates Fig. 9: Pareto analysis of 8x8 multipliers over
// (occupied LUTs, average relative error) — the paper's designs, the
// state-of-the-art baselines and the EvoApprox-style design-space cloud.
#include "analysis/pareto.hpp"
#include "bench_util.hpp"

using namespace axmult;

int main() {
  bench::print_header("Fig. 9: Pareto analysis — average relative error vs LUTs (8x8)");

  std::vector<analysis::DesignPoint> designs = analysis::paper_designs(8);
  for (auto& d : analysis::evo_family_8x8()) designs.push_back(std::move(d));

  std::vector<analysis::ParetoPoint> pts;
  std::vector<std::string> categories;
  for (const auto& d : designs) {
    const auto r = error::characterize_exhaustive(*d.model);
    const auto luts = d.netlist().area().luts;
    pts.push_back({d.name, static_cast<double>(luts), r.avg_relative_error, false});
    categories.push_back(d.category);
  }
  analysis::mark_pareto_front(pts);

  Table t({"Design", "Category", "LUTs", "Avg Rel Error", "Pareto?"});
  for (std::size_t i = 0; i < pts.size(); ++i) {
    t.add_row({pts[i].name, categories[i], Table::num(pts[i].x, 0),
               Table::num(pts[i].y, 6), pts[i].pareto ? "PARETO" : "dominated"});
  }
  t.print("All 8x8 design points");

  const auto front = analysis::pareto_front(pts);
  Table f({"Pareto point", "LUTs", "Avg Rel Error"});
  unsigned proposed_on_front = 0;
  for (const auto& p : front) {
    f.add_row({p.name, Table::num(p.x, 0), Table::num(p.y, 6)});
    if (p.name.rfind("Ca", 0) == 0 || p.name.rfind("Cc", 0) == 0 ||
        p.name.rfind("Perf", 0) == 0) {
      ++proposed_on_front;  // Perf(...) composes the proposed 4x4 modules
    }
  }
  f.print("Pareto front (minimize LUTs and error)");
  std::printf(
      "\nProposed designs on the front: %u. Paper observation: most ASIC-style\n"
      "library points are dominated on FPGA; the very-low-error low-area corner\n"
      "is covered only by the proposed methodology.\n",
      proposed_on_front);
  return 0;
}
