// Ablation bench: quantifies each design decision the paper argues for in
// Sections 3-4.
//
//  A. 4x2 truncation target: truncating P0 vs truncating any higher bit.
//  B. 4x4 summation: approximate single-chain (proposed) vs accurate
//     two-chain summation (Fig. 3 black box, 16 LUTs).
//  C. P3 conflict containment: accurate-generate (proposed, error 8) vs
//     accurate-propagate (error 16).
//  D. LUT7 recovery: with vs without the accurate P0/P2 realization.
//  E. Higher-order summation: ternary carry chains (proposed) vs binary
//     adder trees (IP style) at 8 and 16 bits.
#include "bench_util.hpp"
#include "error/metrics.hpp"
#include "mult/correctable.hpp"
#include "mult/elementary.hpp"
#include "mult/recursive.hpp"
#include "multgen/generators.hpp"

using namespace axmult;

namespace {

/// Exhaustive 4x2 metrics when bit `k` of the product is truncated.
void truncation_row(Table& t, unsigned k) {
  unsigned errors = 0;
  std::uint64_t max_err = 0;
  double avg = 0;
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 4; ++b) {
      const std::uint64_t exact = a * b;
      const std::uint64_t approx = exact & ~(std::uint64_t{1} << k);
      if (approx != exact) {
        ++errors;
        max_err = std::max(max_err, exact - approx);
        avg += static_cast<double>(exact - approx);
      }
    }
  }
  t.add_row({"truncate P" + std::to_string(k), Table::num(static_cast<std::uint64_t>(errors)),
             Table::num(max_err), Table::num(avg / 64.0, 4),
             Table::percent((64.0 - errors) / 64.0, 1)});
}

}  // namespace

int main() {
  bench::print_header("Ablation: the paper's design choices, quantified");

  // A. Which 4x2 product bit to truncate.
  {
    Table t({"Variant", "Errors / 64", "Max |err|", "Avg |err|", "Accuracy"});
    for (unsigned k = 0; k < 6; ++k) truncation_row(t, k);
    t.print("A. 4x2 elementary module: truncation target (paper: P0 -> 75% accuracy, max 1)");
  }

  // B. 4x4 summation style.
  {
    Table t({"Variant", "LUTs", "Errors / 256", "Max |err|", "Avg rel err"});
    auto row = [&](const char* name, std::uint64_t (*fn)(std::uint64_t, std::uint64_t),
                   std::uint64_t luts) {
      unsigned errors = 0;
      std::uint64_t max_err = 0;
      double rel = 0;
      for (std::uint64_t a = 0; a < 16; ++a) {
        for (std::uint64_t b = 0; b < 16; ++b) {
          const std::uint64_t exact = a * b;
          const std::uint64_t approx = fn(a, b);
          if (approx != exact) {
            ++errors;
            max_err = std::max(max_err, exact - approx);
            rel += static_cast<double>(exact - approx) / static_cast<double>(exact);
          }
        }
      }
      t.add_row({name, Table::num(luts), Table::num(static_cast<std::uint64_t>(errors)),
                 Table::num(max_err), Table::num(rel / 256.0, 5)});
    };
    row("accurate summation of approx PPs (Fig. 3 black box)", &mult::approx_4x4_accurate_sum,
        16);
    row("proposed approximate summation (Table 3)", &mult::approx_4x4, 12);
    t.print("B. 4x4 partial-product summation (paper: 12 vs 16 LUTs, 6 vs 96 error cases)");
  }

  // C. Conflict containment polarity.
  {
    Table t({"Variant", "Errors / 256", "Error magnitude"});
    auto count = [](std::uint64_t (*fn)(std::uint64_t, std::uint64_t)) {
      unsigned errors = 0;
      std::uint64_t mag = 0;
      for (std::uint64_t a = 0; a < 16; ++a) {
        for (std::uint64_t b = 0; b < 16; ++b) {
          if (fn(a, b) != a * b) {
            ++errors;
            mag = a * b - fn(a, b);
          }
        }
      }
      return std::pair<unsigned, std::uint64_t>{errors, mag};
    };
    const auto gen = count(&mult::approx_4x4);
    const auto prop = count(&mult::approx_4x4_prop_only);
    t.add_row({"accurate Gen, forced Prop=0 (proposed)", Table::num(std::uint64_t{gen.first}),
               Table::num(gen.second)});
    t.add_row({"accurate Prop, forced Gen=0 (ablation)", Table::num(std::uint64_t{prop.first}),
               Table::num(prop.second)});
    t.print("C. P3 conflict containment (paper: keeping Gen accurate bounds the error to 8)");
  }

  // D. LUT7 recovery of P0/P2.
  {
    unsigned with = 0;
    unsigned without = 0;
    for (std::uint64_t a = 0; a < 16; ++a) {
      for (std::uint64_t b = 0; b < 16; ++b) {
        const std::uint64_t exact = a * b;
        if (mult::approx_4x4(a, b) != exact) ++with;
        // Without recovery: P0 stays truncated and P2 misses PP1<0>.
        const std::uint64_t pp0 = mult::approx_4x2(a, b & 3);
        const std::uint64_t pp1 = mult::approx_4x2(a, b >> 2);
        if ((pp0 + (pp1 << 2)) != exact) ++without;
      }
    }
    Table t({"Variant", "Errors / 256"});
    t.add_row({"with LUT7 recovery of P0/P2 (proposed)", Table::num(std::uint64_t{with})});
    t.add_row({"without recovery (raw truncated PPs)", Table::num(std::uint64_t{without})});
    t.print("D. Spending the recovered LUT on accurate P0/P2 (paper Sec. 3.2)");
  }

  // E. Ternary vs binary summation at higher orders.
  {
    Table t({"Width", "Ternary-sum LUTs / ns", "Binary-tree LUTs / ns"});
    for (unsigned w : {8u, 16u}) {
      multgen::GeneratorSpec tern{w, mult::Elementary::kApprox4x4, mult::Summation::kAccurate,
                                  multgen::MappingStyle::kHandOptimized, true};
      multgen::GeneratorSpec bin = tern;
      bin.ternary_sum = false;
      const auto nt = multgen::make_netlist(tern);
      const auto nb = multgen::make_netlist(bin);
      t.add_row({std::to_string(w) + "x" + std::to_string(w),
                 Table::num(nt.area().luts) + " / " +
                     Table::num(timing::analyze(nt).critical_path_ns, 3),
                 Table::num(nb.area().luts) + " / " +
                     Table::num(timing::analyze(nb).critical_path_ns, 3)});
    }
    t.print("E. Fig. 5(b) single-pass ternary summation vs conventional binary adder tree");
  }

  // F. Error-correction circuitry (Section 5) and Cb summation (Section 4.1).
  {
    Table t({"Variant", "LUTs", "Latency ns", "Avg rel err"});
    auto row = [&](const char* name, const fabric::Netlist& nl, double err) {
      t.add_row({name, Table::num(nl.area().luts),
                 Table::num(timing::analyze(nl).critical_path_ns, 3), Table::num(err, 6)});
    };
    const auto ca = multgen::make_ca_netlist(8);
    const auto corr = multgen::make_correctable_netlist(8, mult::Summation::kAccurate);
    row("Ca 8x8", ca, error::characterize_exhaustive(*mult::make_ca(8)).avg_relative_error);
    row("Ca 8x8 + correction circuit (en=1 -> exact)", corr, 0.0);
    for (unsigned L : {2u, 4u, 6u}) {
      const auto cb = multgen::make_cb_netlist(8, L);
      row(("Cb(" + std::to_string(L) + ") 8x8 hybrid summation").c_str(), cb,
          error::characterize_exhaustive(*mult::make_cb(8, L)).avg_relative_error);
    }
    const auto cc = multgen::make_cc_netlist(8);
    row("Cc 8x8", cc, error::characterize_exhaustive(*mult::make_cc(8)).avg_relative_error);
    t.print("F. Extensions: switchable error correction (+2 LUTs per 4x4) and Cb hybrids");
  }
  return 0;
}
