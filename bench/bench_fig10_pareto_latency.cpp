// Regenerates Fig. 10: Pareto analysis of 8x8 multipliers over
// (critical-path latency, average relative error).
#include "analysis/pareto.hpp"
#include "bench_util.hpp"

using namespace axmult;

int main() {
  bench::print_header("Fig. 10: Pareto analysis — average relative error vs latency (8x8)");

  std::vector<analysis::DesignPoint> designs = analysis::paper_designs(8);
  for (auto& d : analysis::evo_family_8x8()) designs.push_back(std::move(d));

  std::vector<analysis::ParetoPoint> pts;
  for (const auto& d : designs) {
    const auto r = error::characterize_exhaustive(*d.model);
    const double latency = timing::analyze(d.netlist()).critical_path_ns;
    pts.push_back({d.name, latency, r.avg_relative_error, false});
  }
  analysis::mark_pareto_front(pts);

  Table t({"Design", "Latency ns", "Avg Rel Error", "Pareto?"});
  for (const auto& p : pts) {
    t.add_row({p.name, Table::num(p.x, 3), Table::num(p.y, 6),
               p.pareto ? "PARETO" : "dominated"});
  }
  t.print("All 8x8 design points");

  const auto front = analysis::pareto_front(pts);
  Table f({"Pareto point", "Latency ns", "Avg Rel Error"});
  for (const auto& p : front) {
    f.add_row({p.name, Table::num(p.x, 3), Table::num(p.y, 6)});
  }
  f.print("Pareto front (minimize latency and error)");
  std::printf(
      "\nPaper observation: the proposed methodology provides the design points\n"
      "with low critical-path delay AND low average relative error.\n");
  return 0;
}
