// Fault-injection study (extension): single-event stuck-at campaign over
// every internal net of the 8x8 multipliers. For each fault the faulted
// netlist is exhaustively compared against the fault-free one; the table
// reports how gracefully each architecture degrades.
#include <algorithm>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "fabric/faults.hpp"
#include "multgen/generators.hpp"

using namespace axmult;

namespace {

struct CampaignResult {
  std::size_t faults = 0;
  std::size_t silent = 0;          ///< faults with no observable effect
  double mean_error_rate = 0.0;    ///< mean P(output wrong) over faults
  double mean_avg_error = 0.0;     ///< mean |error| over faults
  double worst_avg_error = 0.0;
};

CampaignResult run_campaign(const fabric::Netlist& nl, unsigned vectors) {
  fabric::Evaluator golden(nl);
  // Reference outputs over a fixed sample of the input space.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> samples;
  Xoshiro256 rng(71);
  for (unsigned i = 0; i < vectors; ++i) samples.emplace_back(rng() & 0xFF, rng() & 0xFF);
  std::vector<std::uint64_t> ref;
  ref.reserve(samples.size());
  for (const auto& [a, b] : samples) ref.push_back(golden.eval_word(a, 8, b, 8));

  CampaignResult r;
  for (fabric::NetId site : fabric::fault_sites(nl)) {
    for (bool v : {false, true}) {
      const auto faulty = fabric::with_stuck_at(nl, {site, v});
      fabric::Evaluator ev(faulty);
      std::uint64_t wrong = 0;
      long double err = 0.0L;
      for (std::size_t i = 0; i < samples.size(); ++i) {
        const std::uint64_t got = ev.eval_word(samples[i].first, 8, samples[i].second, 8);
        if (got != ref[i]) {
          ++wrong;
          err += got > ref[i] ? got - ref[i] : ref[i] - got;
        }
      }
      ++r.faults;
      if (wrong == 0) ++r.silent;
      const double rate = static_cast<double>(wrong) / static_cast<double>(samples.size());
      const double avg = static_cast<double>(err / static_cast<long double>(samples.size()));
      r.mean_error_rate += rate;
      r.mean_avg_error += avg;
      r.worst_avg_error = std::max(r.worst_avg_error, avg);
    }
  }
  if (r.faults > 0) {
    r.mean_error_rate /= static_cast<double>(r.faults);
    r.mean_avg_error /= static_cast<double>(r.faults);
  }
  return r;
}

}  // namespace

int main() {
  bench::print_header("Fault injection: single stuck-at campaign, 8x8 multipliers");

  struct Entry {
    const char* name;
    fabric::Netlist nl;
  };
  Entry entries[] = {
      {"Ca (proposed)", multgen::make_ca_netlist(8)},
      {"Cc (proposed)", multgen::make_cc_netlist(8)},
      {"VivadoIP-Speed (accurate)", multgen::make_vivado_speed_netlist(8)},
      {"K[6]", multgen::make_kulkarni_netlist(8)},
  };

  Table t({"Design", "Fault sites x2", "Silent faults", "Mean P(output wrong)",
           "Mean |err| added", "Worst fault mean |err|"});
  for (const auto& e : entries) {
    const auto r = run_campaign(e.nl, 512);
    t.add_row({e.name, Table::num(static_cast<std::uint64_t>(r.faults)),
               Table::percent(static_cast<double>(r.silent) / r.faults, 1),
               Table::num(r.mean_error_rate, 4), Table::num(r.mean_avg_error, 1),
               Table::num(r.worst_avg_error, 1)});
  }
  t.print("Exhaustive single-fault campaign (512 input samples per fault)");
  std::printf(
      "\nExtension beyond the paper. Two opposing effects show up: the proposed\n"
      "designs expose ~30%% fewer fault sites (less area to hit), but almost\n"
      "every remaining LUT is load-bearing, so fewer faults are logically\n"
      "masked than in the redundant accurate/K structures. Mean per-fault\n"
      "impact is comparable across all architectures.\n");
  return 0;
}
