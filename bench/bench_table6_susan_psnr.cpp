// Regenerates Table 6 and Fig. 11: PSNR and output images of the SUSAN
// image-smoothing accelerator with accurate and approximate 8x8
// multipliers, including the operand-swapped Cas/Ccs configurations, plus
// the accelerator-level area gains the paper reports in Section 5.
#include "apps/image.hpp"
#include "apps/susan.hpp"
#include "bench_util.hpp"
#include "mult/recursive.hpp"
#include "multgen/generators.hpp"

using namespace axmult;

int main() {
  bench::print_header("Table 6 / Fig. 11: SUSAN image-smoothing accelerator");

  const auto scene = apps::make_test_scene(192, 192, 7, 6.0);
  scene.write_pgm(bench::out_path("fig11_input.pgm"));

  struct Row {
    const char* name;
    mult::MultiplierPtr m;
    bool swap;
    const char* paper_psnr;
    const char* pgm;
  };
  const Row rows[] = {
      {"Accurate", mult::make_accurate(8), false, "inf", "fig11_accurate.pgm"},
      {"Ca", mult::make_ca(8), false, "33.7162", "fig11_ca.pgm"},
      {"Cc", mult::make_cc(8), false, "25.6022", "fig11_cc.pgm"},
      {"W[19]", mult::make_rehman_w(8), false, "47.4939", "fig11_w.pgm"},
      {"K[6]", mult::make_kulkarni(8), false, "17.9443", "fig11_k.pgm"},
      {"Cas (swapped)", mult::make_ca(8), true, "59.1198", "fig11_cas.pgm"},
      {"Ccs (swapped)", mult::make_cc(8), true, "27.3665", "fig11_ccs.pgm"},
  };

  apps::Image reference;
  Table t({"Multiplier", "PSNR dB (measured)", "PSNR dB (paper)", "Output image"});
  for (const auto& row : rows) {
    apps::SusanConfig cfg;
    cfg.swap_operands = row.swap;
    apps::SusanSmoother smoother(row.m, cfg);
    const auto out = smoother.smooth(scene);
    out.write_pgm(bench::out_path(row.pgm));
    if (std::string(row.name) == "Accurate") {
      reference = out;
      t.add_row({row.name, "inf (reference)", row.paper_psnr, row.pgm});
      continue;
    }
    const double p = apps::psnr(reference, out);
    t.add_row({row.name, Table::num(p, 4), row.paper_psnr, row.pgm});
  }
  t.print("SUSAN accelerator PSNR (reference = accurate multiplier output)");

  // Accelerator-level area: the multiplier array dominates; the paper
  // reports 17% / 17.2% area gains for Ca / Cc deployments.
  const auto acc = multgen::make_vivado_speed_netlist(8).area().luts;
  const auto ca = multgen::make_ca_netlist(8).area().luts;
  const auto cc = multgen::make_cc_netlist(8).area().luts;
  // SUSAN accelerator model: 20 multipliers (one per mask pixel) plus a
  // fixed ~600-LUT datapath (weight LUT, accumulators, divider).
  const double overhead = 600.0;
  const double base = overhead + 20.0 * static_cast<double>(acc);
  Table a({"Accelerator", "LUTs (model)", "Area gain"});
  a.add_row({"SUSAN + accurate IP", Table::num(base, 0), "-"});
  a.add_row({"SUSAN + Ca", Table::num(overhead + 20.0 * ca, 0),
             bench::gain_str(base, overhead + 20.0 * ca)});
  a.add_row({"SUSAN + Cc", Table::num(overhead + 20.0 * cc, 0),
             bench::gain_str(base, overhead + 20.0 * cc)});
  a.print("Accelerator area (paper: 17% / 17.2% gains for Ca / Cc)");

  std::printf(
      "\nFig. 11 equivalents written as PGM images (out/fig11_*.pgm). Shape anchors:\n"
      "swap improves the asymmetric designs (Cas > Ca, Ccs >= Cc); Ca > Cc > K.\n"
      "W's rank differs from the paper (see EXPERIMENTS.md: the W stand-in\n"
      "matches W's uniform-input anchors but not its input-conditional error\n"
      "placement).\n");
  return 0;
}
