// Quantized GEMM throughput through the MAC backends (table-dispatched
// approximate multipliers): the naive one-load-per-MAC walk vs the
// cache-blocked kernels, plus end-to-end digits-network inference rate.
// Emits BENCH_nn_gemm.json at the repo root for the perf-tracking harness
// (working directory under --smoke). Thread count follows AXMULT_THREADS
// (or --threads N).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/parallel_for.hpp"
#include "common/rng.hpp"
#include "nn/dataset.hpp"
#include "nn/gemm.hpp"
#include "nn/graph.hpp"
#include "nn/mac.hpp"

using namespace axmult;
using namespace axmult::nn;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct GemmRow {
  std::string backend;
  double mmacs_naive = 0.0;    ///< Mmacs/s, naive kernel, 1 thread
  double mmacs_single = 0.0;   ///< Mmacs/s, blocked path, 1 thread
  double mmacs_threads = 0.0;  ///< Mmacs/s, blocked path, configured threads
};

/// MACs/s of the full GEMM (m x k x n) repeated until `budget` s elapsed.
template <typename Gemm>
double gemm_rate(const Gemm& gemm, std::size_t m, std::size_t k, std::size_t n, double budget) {
  const double macs_per_call = static_cast<double>(m) * k * n;
  gemm();  // warm-up (touches the tables + threads once)
  std::uint64_t calls = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double dt = 0.0;
  while (dt < budget) {
    gemm();
    ++calls;
    dt = seconds_since(t0);
  }
  return macs_per_call * static_cast<double>(calls) / dt;
}

}  // namespace

int main(int argc, char** argv) {
  (void)strip_thread_args(argc, argv);  // applies --threads N / --threads=N
  const bool smoke = bench::strip_flag(argc, argv, "--smoke");
  const unsigned threads = thread_count();
  bench::print_header("Quantized GEMM throughput through the MAC backends");
  std::printf("threads: %u (AXMULT_THREADS / --threads), blocked kernel: %s%s\n", threads,
              gemm_kernel_name(), smoke ? " [smoke]" : "");

  // One mid-size GEMM (im2col shape of a 32x32 conv layer, roughly). The
  // smoke shape keeps n = 64 so the full-tile SIMD path still runs.
  const std::size_t m = smoke ? 32 : 256, k = smoke ? 48 : 144, n = 64;
  const double budget = smoke ? 0.01 : 0.2;
  const std::uint64_t data_seed = 3;
  Xoshiro256 rng(data_seed);
  std::vector<std::uint8_t> a(m * k), b(k * n);
  for (auto& v : a) v = static_cast<std::uint8_t>(rng.below(256));
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.below(256));
  std::vector<std::int64_t> acc(m * n);

  const char* backends[] = {"exact", "ca8", "cc8", "cb8", "trunc8_4", "ca16"};
  std::vector<GemmRow> rows;
  for (const char* name : backends) {
    const auto mac = make_mac_backend(name);
    GemmRow r;
    r.backend = name;
    r.mmacs_naive = gemm_rate(
        [&] { gemm_accumulate_naive(*mac, false, a.data(), b.data(), acc.data(), m, k, n, 1); },
        m, k, n, budget) / 1e6;
    r.mmacs_single = gemm_rate(
        [&] { gemm_accumulate(*mac, false, a.data(), b.data(), acc.data(), m, k, n, 1); },
        m, k, n, budget) / 1e6;
    r.mmacs_threads = gemm_rate(
        [&] { gemm_accumulate(*mac, false, a.data(), b.data(), acc.data(), m, k, n, threads); },
        m, k, n, budget) / 1e6;
    rows.push_back(r);
  }

  Table t({"Backend", "Naive Mmacs/s", "Blocked Mmacs/s", "Speedup",
           "Blocked (" + std::to_string(threads) + " thr)"});
  for (const auto& r : rows) {
    t.add_row({r.backend, Table::num(r.mmacs_naive, 1), Table::num(r.mmacs_single, 1),
               Table::num(r.mmacs_single / r.mmacs_naive, 1) + "x",
               Table::num(r.mmacs_threads, 1)});
  }
  t.print("GEMM " + std::to_string(m) + "x" + std::to_string(k) + "x" + std::to_string(n) +
          " (uint8 operands, int64 accumulate)");

  // End-to-end inference rate of the demo network on Ca (representative
  // approximate backend; the table dispatch makes all backends run at the
  // same speed, so one suffices here).
  Sequential net = make_digits_network();
  const std::uint64_t calib_seed = 7, batch_seed = 5;
  const std::size_t calib_samples = smoke ? 32 : 128, batch_samples = smoke ? 32 : 256;
  const Dataset calib = make_digits(calib_samples, calib_seed);
  net.calibrate(calib.images, 8);
  net.set_backend(make_mac_backend("ca8"));
  const Dataset batch = make_digits(batch_samples, batch_seed);
  const QTensor inputs = net.quantize_input(batch.images);
  (void)net.run(inputs, threads);  // warm-up
  std::uint64_t inferences = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double dt = 0.0;
  while (dt < (smoke ? 0.01 : 0.3)) {
    (void)net.run(inputs, threads);
    inferences += batch.labels.size();
    dt = seconds_since(t0);
  }
  const double inf_rate = static_cast<double>(inferences) / dt;
  std::printf("\ndigits network end-to-end (ca8, %u threads): %.0f inferences/s\n", threads,
              inf_rate);

  const std::string path = bench::bench_json_path("BENCH_nn_gemm.json", smoke);
  std::ofstream json(path);
  json << "{\n  \"git_sha\": \"" << bench::bench_git_sha() << "\",\n  \"threads\": " << threads
       << ",\n  \"smoke\": " << (smoke ? "true" : "false")
       << ",\n  \"kernel\": \"" << gemm_kernel_name() << "\",\n  \"gemm_shape\": [" << m << ", "
       << k << ", " << n << "],\n  \"data_seed\": " << data_seed
       << ",\n  \"calib_seed\": " << calib_seed << ",\n  \"calib_samples\": " << calib_samples
       << ",\n  \"batch_seed\": " << batch_seed << ",\n  \"batch_samples\": " << batch_samples
       << ",\n  \"backends\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    json << "    {\"name\": \"" << r.backend
         << "\", \"mmacs_per_s_naive\": " << r.mmacs_naive
         << ", \"mmacs_per_s_single\": " << r.mmacs_single
         << ", \"mmacs_per_s_threaded\": " << r.mmacs_threads
         << ", \"speedup_vs_naive\": " << r.mmacs_single / r.mmacs_naive << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"digits_net_inferences_per_s_ca8\": " << inf_rate << "\n}\n";
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
