// Quantized GEMM throughput through the MAC backends (table-dispatched
// approximate multipliers) plus end-to-end digits-network inference rate.
// Emits BENCH_nn_gemm.json in the working directory for the perf-tracking
// harness. Thread count follows AXMULT_THREADS (or --threads N).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/parallel_for.hpp"
#include "common/rng.hpp"
#include "nn/dataset.hpp"
#include "nn/gemm.hpp"
#include "nn/graph.hpp"
#include "nn/mac.hpp"

using namespace axmult;
using namespace axmult::nn;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct GemmRow {
  std::string backend;
  double mmacs_single = 0.0;   ///< Mmacs/s, 1 thread
  double mmacs_threads = 0.0;  ///< Mmacs/s, configured thread count
};

/// MACs/s of the full GEMM (m x k x n) repeated until ~0.2 s elapsed.
double gemm_rate(const MacBackend& mac, const std::vector<std::uint8_t>& a,
                 const std::vector<std::uint8_t>& b, std::size_t m, std::size_t k,
                 std::size_t n, unsigned threads) {
  std::vector<std::int64_t> acc(m * n);
  const double macs_per_call = static_cast<double>(m) * k * n;
  // Warm-up (touches the table + threads once).
  gemm_accumulate(mac, false, a.data(), b.data(), acc.data(), m, k, n, threads);
  std::uint64_t calls = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double dt = 0.0;
  while (dt < 0.2) {
    gemm_accumulate(mac, false, a.data(), b.data(), acc.data(), m, k, n, threads);
    ++calls;
    dt = seconds_since(t0);
  }
  return macs_per_call * static_cast<double>(calls) / dt;
}

}  // namespace

int main(int argc, char** argv) {
  (void)strip_thread_args(argc, argv);  // applies --threads N / --threads=N
  const unsigned threads = thread_count();
  bench::print_header("Quantized GEMM throughput through the MAC backends");
  std::printf("threads: %u (AXMULT_THREADS / --threads)\n", threads);

  // One mid-size GEMM (im2col shape of a 32x32 conv layer, roughly).
  const std::size_t m = 256, k = 144, n = 64;
  Xoshiro256 rng(3);
  std::vector<std::uint8_t> a(m * k), b(k * n);
  for (auto& v : a) v = static_cast<std::uint8_t>(rng.below(256));
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.below(256));

  const char* backends[] = {"exact", "ca8", "cc8", "cb8", "trunc8_4", "ca16"};
  std::vector<GemmRow> rows;
  for (const char* name : backends) {
    const auto mac = make_mac_backend(name);
    GemmRow r;
    r.backend = name;
    r.mmacs_single = gemm_rate(*mac, a, b, m, k, n, 1) / 1e6;
    r.mmacs_threads = gemm_rate(*mac, a, b, m, k, n, threads) / 1e6;
    rows.push_back(r);
  }

  Table t({"Backend", "Mmacs/s (1 thread)",
           "Mmacs/s (" + std::to_string(threads) + " threads)"});
  for (const auto& r : rows) {
    t.add_row({r.backend, Table::num(r.mmacs_single, 1), Table::num(r.mmacs_threads, 1)});
  }
  t.print("GEMM " + std::to_string(m) + "x" + std::to_string(k) + "x" + std::to_string(n) +
          " (uint8 operands, int64 accumulate)");

  // End-to-end inference rate of the demo network on Ca (representative
  // approximate backend; the table dispatch makes all backends run at the
  // same speed, so one suffices here).
  Sequential net = make_digits_network();
  const Dataset calib = make_digits(128, 7);
  net.calibrate(calib.images, 8);
  net.set_backend(make_mac_backend("ca8"));
  const Dataset batch = make_digits(256, 5);
  const QTensor inputs = net.quantize_input(batch.images);
  (void)net.run(inputs, threads);  // warm-up
  std::uint64_t inferences = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double dt = 0.0;
  while (dt < 0.3) {
    (void)net.run(inputs, threads);
    inferences += batch.labels.size();
    dt = seconds_since(t0);
  }
  const double inf_rate = static_cast<double>(inferences) / dt;
  std::printf("\ndigits network end-to-end (ca8, %u threads): %.0f inferences/s\n", threads,
              inf_rate);

  std::ofstream json("BENCH_nn_gemm.json");
  json << "{\n  \"threads\": " << threads << ",\n  \"gemm_shape\": [" << m << ", " << k << ", "
       << n << "],\n  \"backends\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    json << "    {\"name\": \"" << r.backend
         << "\", \"mmacs_per_s_single\": " << r.mmacs_single
         << ", \"mmacs_per_s_threaded\": " << r.mmacs_threads << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"digits_net_inferences_per_s_ca8\": " << inf_rate << "\n}\n";
  std::printf("wrote BENCH_nn_gemm.json\n");
  return 0;
}
