// Regenerates Fig. 1 (motivational case study): area, latency and EDP
// gains of the ASIC-style approximate multipliers W [19] and K [6] on
// ASIC vs on FPGA, each normalized to the accurate multiplier of the same
// platform. The paper's point: ASIC gains do not translate to the FPGA.
#include "asic/model.hpp"
#include "bench_util.hpp"
#include "multgen/generators.hpp"

using namespace axmult;

int main() {
  bench::print_header("Fig. 1: cross-platform comparison of area, latency and EDP gains (8x8)");

  // ASIC side: two-level-logic + CSA cost model, accurate 2x2-tree as the
  // accurate reference (same composition granularity as W/K).
  const auto acc_asic =
      asic::estimate(8, mult::Elementary::kAccurate2x2, mult::Summation::kAccurate);
  const auto k_asic =
      asic::estimate(8, mult::Elementary::kKulkarni2x2, mult::Summation::kAccurate);
  const auto w_asic = asic::estimate(8, mult::Elementary::kRehman2x2, mult::Summation::kAccurate);

  // FPGA side: netlists under the calibrated Virtex-7 models, accurate
  // Vivado-IP model as the reference.
  const auto acc_fpga = bench::implement(multgen::make_vivado_speed_netlist(8), 512);
  const auto k_fpga = bench::implement(multgen::make_kulkarni_netlist(8), 512);
  const auto w_fpga = bench::implement(multgen::make_rehman_netlist(8), 512);

  auto fpga_gains = [&](const bench::Implementation& impl) {
    return std::array<double, 3>{
        asic::gain_percent(static_cast<double>(acc_fpga.luts), static_cast<double>(impl.luts)),
        asic::gain_percent(acc_fpga.latency_ns, impl.latency_ns),
        asic::gain_percent(acc_fpga.edp_au, impl.edp_au)};
  };
  auto asic_gains = [&](const asic::AsicReport& r) {
    return std::array<double, 3>{asic::gain_percent(acc_asic.area_nand2, r.area_nand2),
                                 asic::gain_percent(acc_asic.delay_ps, r.delay_ps),
                                 asic::gain_percent(acc_asic.edp(), r.edp())};
  };

  const auto ka = asic_gains(k_asic);
  const auto kf = fpga_gains(k_fpga);
  const auto wa = asic_gains(w_asic);
  const auto wf = fpga_gains(w_fpga);

  Table t({"Metric", "K_ASIC", "K_FPGA", "W_ASIC", "W_FPGA"});
  const char* metric[3] = {"AREA gain %", "LATENCY gain %", "EDP gain %"};
  for (int i = 0; i < 3; ++i) {
    t.add_row({metric[i], Table::num(ka[i], 1), Table::num(kf[i], 1), Table::num(wa[i], 1),
               Table::num(wf[i], 1)});
  }
  t.print("Gains vs the accurate multiplier of the same platform");

  std::printf(
      "\nPaper Fig. 1 message: area and EDP gains of W and K shrink (or reverse)\n"
      "when moved from ASIC to FPGA. Here: K area gain %.1f%% (ASIC) -> %.1f%%\n"
      "(FPGA); W area gain %.1f%% -> %.1f%%. The W stand-in's two-level ASIC cost\n"
      "is conservative (see EXPERIMENTS.md); the published W claims ~20-30%%\n"
      "ASIC area/power gains for its compressor-based structure.\n",
      ka[0], kf[0], wa[0], wf[0]);
  return 0;
}
