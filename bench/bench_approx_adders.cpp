// Approximate adder study (extension, companion to the paper's related
// work [4, 5, 8, 11]): error metrics, area and latency of the adder
// sub-library — the same components from which alternative partial-product
// summations (Cb, Cc) are assembled.
#include "bench_util.hpp"
#include "mult/adders.hpp"
#include "multgen/generators.hpp"

using namespace axmult;

int main() {
  bench::print_header("Approximate adders: error vs implementation cost (16-bit)");

  struct Entry {
    mult::AdderPtr model;
    fabric::Netlist nl;
  };
  std::vector<Entry> entries;
  entries.push_back({mult::make_accurate_adder(16), multgen::make_adder_netlist(16)});
  for (unsigned l : {2u, 4u, 8u}) {
    entries.push_back({mult::make_loa(16, l), multgen::make_loa_netlist(16, l)});
  }
  for (unsigned seg : {4u, 8u}) {
    entries.push_back(
        {mult::make_segmented_adder(16, seg), multgen::make_segmented_adder_netlist(16, seg)});
  }

  Table t({"Adder", "Max |err|", "Avg |err|", "P(error)", "LUTs", "Latency ns"});
  for (const auto& e : entries) {
    const auto r = error::characterize_op(
        [&](std::uint64_t a, std::uint64_t b) { return e.model->add(a, b); },
        [](std::uint64_t a, std::uint64_t b) { return a + b; },
        error::uniform_source(16, 16, 200000, 3));
    t.add_row({e.model->name(), Table::num(r.max_error), Table::num(r.avg_error, 2),
               Table::num(r.error_probability(), 4), Table::num(e.nl.area().luts),
               Table::num(timing::analyze(e.nl).critical_path_ns, 3)});
  }
  t.print("200k uniform samples per adder");
  std::printf(
      "\nLOA bounds the error to the OR'd low part at one LUT per column and no\n"
      "carry chain below the split; segmented adders break the chain into\n"
      "independent pieces and err only when a real carry crosses a boundary.\n");
  return 0;
}
