// Regenerates Fig. 8: (a) normalized per-bit accuracy/error histograms of
// the 4x4 and the 8x8/16x16 Ca and Cc multipliers, (b) the error PMFs
// (unique error magnitudes and their occurrence counts) of the 8x8 Ca/Cc.
#include "bench_util.hpp"
#include "mult/recursive.hpp"

using namespace axmult;

namespace {

void print_bit_histogram(const std::string& title, const mult::Multiplier& m,
                         error::PairSource src) {
  const auto p = error::bit_error_probability(m, std::move(src));
  double total = 0.0;
  for (double v : p) total += v;
  Table t({"Bit", "P(error)", "Normalized"});
  for (std::size_t i = 0; i < p.size(); ++i) {
    t.add_row({Table::num(static_cast<std::uint64_t>(i + 1)), Table::num(p[i], 6),
               Table::num(total > 0 ? p[i] / total : 0.0, 4)});
  }
  t.print(title);
}

void print_pmf(const std::string& title, const mult::Multiplier& m, error::PairSource src) {
  const auto pmf = error::error_pmf(m, std::move(src));
  std::uint64_t total = 0;
  for (const auto& [mag, count] : pmf) total += count;
  Table t({"|Error|", "Occurrences", "Normalized"});
  std::size_t shown = 0;
  for (const auto& [mag, count] : pmf) {
    if (++shown > 24) {
      t.add_row({"... (" + std::to_string(pmf.size() - 24) + " more distinct values)", "", ""});
      break;
    }
    t.add_row({Table::num(mag), Table::num(count),
               Table::num(static_cast<double>(count) / static_cast<double>(total), 5)});
  }
  t.print(title + "  [" + std::to_string(pmf.size()) + " distinct error magnitudes]");
}

}  // namespace

int main() {
  bench::print_header("Fig. 8: per-bit error probabilities and error PMFs");

  const auto ca4 = std::make_shared<mult::RecursiveMultiplier>(
      4, mult::Elementary::kApprox4x4, mult::Summation::kAccurate);
  print_bit_histogram("Fig 8(a): 4x4 proposed — bit error probabilities (exhaustive)", *ca4,
                      error::exhaustive_source(4, 4));

  const auto ca8 = mult::make_ca(8);
  const auto cc8 = mult::make_cc(8);
  print_bit_histogram("Fig 8(a): Ca 8x8 — bit error probabilities (exhaustive)", *ca8,
                      error::exhaustive_source(8, 8));
  print_bit_histogram("Fig 8(a): Cc 8x8 — bit error probabilities (exhaustive)", *cc8,
                      error::exhaustive_source(8, 8));

  const auto ca16 = mult::make_ca(16);
  const auto cc16 = mult::make_cc(16);
  print_bit_histogram("Fig 8(a): Ca 16x16 — bit error probabilities (1M samples)", *ca16,
                      error::uniform_source(16, 16, 1000000));
  print_bit_histogram("Fig 8(a): Cc 16x16 — bit error probabilities (1M samples)", *cc16,
                      error::uniform_source(16, 16, 1000000));

  print_pmf("Fig 8(b): Ca 8x8 error PMF (exhaustive)", *ca8, error::exhaustive_source(8, 8));
  print_pmf("Fig 8(b): Cc 8x8 error PMF (exhaustive)", *cc8, error::exhaustive_source(8, 8));

  std::printf(
      "\nPaper shape: the proposed designs restrict errors to a few product bits\n"
      "and few distinct magnitudes (Ca); Cc's carry-free summation spreads errors\n"
      "across the middle bits — matching the low per-bit accuracy it reports.\n");
  return 0;
}
