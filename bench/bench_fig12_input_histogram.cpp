// Regenerates Fig. 12: the distribution of 8x8 multiplication operands in
// the SUSAN smoothing accelerator — the narrow high-weight band that makes
// the operand-swap (Cas/Ccs) trick effective — plus trace-driven error
// characterization of the library under this real operand distribution.
#include "apps/image.hpp"
#include "apps/susan.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "mult/recursive.hpp"

using namespace axmult;

int main() {
  bench::print_header("Fig. 12: SUSAN 8x8 multiplication operand analysis");

  const auto scene = apps::make_test_scene(192, 192, 7, 6.0);
  apps::SusanSmoother smoother(mult::make_accurate(8));
  std::vector<std::pair<std::uint64_t, std::uint64_t>> trace;
  (void)smoother.smooth_traced(scene, trace);

  Histogram weights(0, 256, 16);
  Histogram pixels(0, 256, 16);
  for (const auto& [w, p] : trace) {
    weights.add(static_cast<double>(w));
    pixels.add(static_cast<double>(p));
  }
  Table t({"Operand band", "Weight operand share", "Pixel operand share"});
  for (std::size_t b = 0; b < weights.bins(); ++b) {
    t.add_row({"[" + Table::num(weights.bin_lo(b), 0) + ", " + Table::num(weights.bin_hi(b), 0) +
                   ")",
               Table::percent(weights.normalized(b), 2), Table::percent(pixels.normalized(b), 2)});
  }
  t.print("Operand histograms over " + std::to_string(trace.size()) + " multiplications");

  // Trace-driven error characterization: the same multipliers evaluated
  // under the accelerator's operand distribution instead of uniform.
  Table e({"Design", "Avg Rel Error (uniform)", "Avg Rel Error (SUSAN trace)"});
  for (const auto& [name, m] :
       {std::pair<const char*, mult::MultiplierPtr>{"Ca", mult::make_ca(8)},
        {"Cas", mult::make_cas(8)},
        {"Cc", mult::make_cc(8)},
        {"Ccs", mult::make_ccs(8)},
        {"K[6]", mult::make_kulkarni(8)},
        {"W[19]", mult::make_rehman_w(8)}}) {
    const auto uniform = error::characterize_exhaustive(*m);
    const auto traced = error::characterize(*m, error::trace_source(trace));
    e.add_row({name, Table::num(uniform.avg_relative_error, 6),
               Table::num(traced.avg_relative_error, 6)});
  }
  e.print("Error under the accelerator's operand distribution");

  std::printf(
      "\nPaper observation: most multiplications fall in a narrow band (high\n"
      "weights x mid-range pixels); exploiting the asymmetric error profile by\n"
      "swapping operands improves accelerator output quality.\n");
  return 0;
}
