// DSE strategy duel + evaluation-farm scaling. At one shared confirmed-
// evaluation budget, runs exhaustive / random / NSGA-II / surrogate over
// the wide16 space (smoke8 under --smoke) and scores each front's exact
// hypervolume against a common reference point, then measures the
// multi-process farm's configs/s at 1 vs 4 workers and re-proves the
// bit-identical-front determinism contract. Emits BENCH_dse_search.json.
//
// Exit is nonzero if the surrogate front is dominated where it must not
// be: below random in smoke mode, below NSGA-II in full mode. The 4-vs-1
// worker >= 3x scaling assertion only fires on machines with >= 4 cores
// (the JSON records `cores` so the harness can interpret the ratio).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/pareto.hpp"
#include "bench_util.hpp"
#include "common/parallel_for.hpp"
#include "common/rng.hpp"
#include "dse/cache.hpp"
#include "dse/evaluate.hpp"
#include "dse/farm.hpp"
#include "dse/search.hpp"
#include "dse/space.hpp"

using namespace axmult;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct StrategyRun {
  std::string name;
  dse::SearchResult result;
  double seconds = 0.0;
  double configs_per_s = 0.0;
  double hypervolume = 0.0;
};

std::vector<std::vector<double>> front_costs(const dse::SearchResult& r,
                                             const std::vector<dse::Objective>& objectives) {
  std::vector<std::vector<double>> costs;
  for (const dse::EvaluatedPoint& p : r.front) {
    costs.push_back(dse::cost_vector(p.objectives, objectives));
  }
  return costs;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  (void)strip_thread_args(argc, argv);
  const bool smoke = bench::strip_flag(argc, argv, "--smoke");
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  bench::print_header("DSE strategy duel + evaluation-farm scaling");

  const std::string preset = smoke ? "smoke8" : "wide16";
  const dse::SpaceSpec space = dse::make_space(preset);
  dse::SearchOptions base;
  base.budget = smoke ? 48 : 256;
  base.population = smoke ? 12 : 32;
  base.generations = smoke ? 3 : 7;
  base.proposals = smoke ? 96 : 256;
  // wide16 configs outside the analytic envelope (flips) fall back to the
  // sampled sweep; a smaller sample count keeps the full duel tractable on
  // one core without changing the Pareto structure the duel scores.
  if (!smoke) base.eval.samples = std::uint64_t{1} << 16;
  std::printf("space %s, budget %llu, population %u, generations %u, cores %u%s\n",
              preset.c_str(), static_cast<unsigned long long>(base.budget), base.population,
              base.generations, cores, smoke ? " [smoke]" : "");

  // ---- strategy duel at equal confirmed-evaluation budget ------------------
  const dse::Strategy strategies[] = {dse::Strategy::kExhaustive, dse::Strategy::kRandom,
                                      dse::Strategy::kNsga2, dse::Strategy::kSurrogate};
  std::vector<StrategyRun> runs;
  for (const dse::Strategy strategy : strategies) {
    dse::SearchOptions search = base;
    search.strategy = strategy;
    const auto t0 = std::chrono::steady_clock::now();
    StrategyRun run;
    run.name = dse::strategy_name(strategy);
    run.result = dse::run_search(space, search);
    run.seconds = seconds_since(t0);
    run.configs_per_s =
        static_cast<double>(run.result.evaluations) / std::max(run.seconds, 1e-9);
    runs.push_back(std::move(run));
  }

  // One reference point spanning the union of every front, so hypervolumes
  // are directly comparable across strategies.
  std::vector<double> ref(base.objectives.size(), 1e-9);
  for (const StrategyRun& run : runs) {
    for (const auto& cost : front_costs(run.result, base.objectives)) {
      for (std::size_t i = 0; i < ref.size(); ++i) ref[i] = std::max(ref[i], cost[i]);
    }
  }
  for (double& r : ref) r = r * 1.1 + 1e-9;
  for (StrategyRun& run : runs) {
    run.hypervolume = analysis::hypervolume(front_costs(run.result, base.objectives), ref);
  }

  Table t({"Strategy", "Evaluations", "Cache hits", "Front", "Seconds", "Configs/s",
           "Hypervolume"});
  for (const StrategyRun& run : runs) {
    t.add_row({run.name, std::to_string(run.result.evaluations),
               std::to_string(run.result.cache_hits), std::to_string(run.result.front.size()),
               Table::num(run.seconds, 2), Table::num(run.configs_per_s, 1),
               Table::num(run.hypervolume, 4)});
  }
  t.print("Front quality at equal budget (" + preset + ", shared reference point)");

  const auto by_name = [&](const char* name) -> const StrategyRun& {
    for (const StrategyRun& run : runs) {
      if (run.name == name) return run;
    }
    std::fprintf(stderr, "missing strategy %s\n", name);
    std::exit(2);
  };
  bool failed = false;
  if (by_name("surrogate").hypervolume < by_name("random").hypervolume) {
    std::fprintf(stderr, "FAIL: surrogate front dominated by random at equal budget\n");
    failed = true;
  }
  if (!smoke && by_name("surrogate").hypervolume < by_name("nsga2").hypervolume) {
    std::fprintf(stderr, "FAIL: surrogate front dominated by NSGA-II at equal budget\n");
    failed = true;
  }

  // ---- farm scaling: configs/s at 1 vs 4 workers ---------------------------
  // A fixed batch of distinct configs, fresh cache per worker count so
  // every run does the same cold evaluation work.
  std::vector<dse::Config> batch;
  if (smoke) {
    batch = dse::enumerate(space);
  } else {
    Xoshiro256 rng(7);
    std::set<std::string> keys;
    while (batch.size() < 64) {
      dse::Config c = dse::sample(space, rng);
      if (keys.insert(dse::config_key(c)).second) batch.push_back(c);
    }
  }
  struct FarmRow {
    unsigned workers;
    double seconds = 0.0;
    double configs_per_s = 0.0;
  };
  std::vector<FarmRow> farm_rows;
  for (const unsigned workers : {1u, 4u}) {
    const std::string cache_path = "bench_dse_farm_" + std::to_string(workers) + ".jsonl";
    std::remove(cache_path.c_str());
    dse::FarmOptions fopts;
    fopts.workers = workers;
    fopts.cache_path = cache_path;
    fopts.eval = base.eval;
    dse::EvalFarm farm(fopts);
    dse::EvalCache cache(cache_path);
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = farm.evaluate_batch(batch, cache);
    FarmRow row{workers, seconds_since(t0), 0.0};
    row.configs_per_s = static_cast<double>(results.size()) / std::max(row.seconds, 1e-9);
    farm_rows.push_back(row);
    std::remove(cache_path.c_str());
  }
  const double scale = farm_rows[1].configs_per_s / std::max(farm_rows[0].configs_per_s, 1e-9);
  std::printf("\nfarm: %zu configs | 1 worker %.1f configs/s | 4 workers %.1f configs/s | "
              "scale %.2fx (cores %u)\n",
              batch.size(), farm_rows[0].configs_per_s, farm_rows[1].configs_per_s, scale,
              cores);
  const bool scaling_asserted = cores >= 4;
  if (scaling_asserted && scale < 3.0) {
    std::fprintf(stderr, "FAIL: 4-worker farm only %.2fx of 1 worker on %u cores\n", scale,
                 cores);
    failed = true;
  }

  // ---- determinism: farm fronts byte-identical to the in-process run -------
  // Always on smoke8 (cheap) regardless of mode; this is the executable
  // form of the EvalFarm.FrontFileIsByteIdenticalAtAnyWorkerCount test.
  bool farm_bit_identical = true;
  {
    const dse::SpaceSpec det_space = dse::make_space("smoke8");
    std::string fronts[2];
    for (const unsigned workers : {0u, 2u}) {
      dse::SearchOptions search;
      search.strategy = dse::Strategy::kSurrogate;
      search.budget = 30;
      search.population = 10;
      search.generations = 2;
      search.proposals = 48;
      search.farm_workers = workers;
      search.cache_path = "bench_dse_det_" + std::to_string(workers) + ".jsonl";
      search.front_path = "bench_dse_det_" + std::to_string(workers) + "_front.json";
      std::remove(search.cache_path.c_str());
      (void)dse::run_search(det_space, search);
      fronts[workers ? 1 : 0] = slurp(search.front_path);
      std::remove(search.cache_path.c_str());
      std::remove(search.front_path.c_str());
    }
    farm_bit_identical = !fronts[0].empty() && fronts[0] == fronts[1];
    std::printf("determinism: 0-worker vs 2-worker surrogate front %s\n",
                farm_bit_identical ? "byte-identical" : "DIFFERS");
    if (!farm_bit_identical) {
      std::fprintf(stderr, "FAIL: farm front differs from in-process front\n");
      failed = true;
    }
  }

  const std::string path = bench::bench_json_path("BENCH_dse_search.json", smoke);
  std::ofstream json(path);
  json << "{\n  \"git_sha\": \"" << bench::bench_git_sha() << "\",\n  \"smoke\": "
       << (smoke ? "true" : "false") << ",\n  \"cores\": " << cores << ",\n  \"space\": \""
       << preset << "\",\n  \"budget\": " << base.budget
       << ",\n  \"population\": " << base.population
       << ",\n  \"generations\": " << base.generations
       << ",\n  \"proposals\": " << base.proposals
       << ",\n  \"eval_samples\": " << base.eval.samples << ",\n  \"strategies\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const StrategyRun& run = runs[i];
    json << "    {\"name\": \"" << run.name
         << "\", \"evaluations\": " << run.result.evaluations
         << ", \"cache_hits\": " << run.result.cache_hits
         << ", \"front_size\": " << run.result.front.size()
         << ", \"seconds\": " << run.seconds
         << ", \"configs_per_s\": " << run.configs_per_s
         << ", \"hypervolume\": " << run.hypervolume << "}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"farm\": {\n    \"batch_configs\": " << batch.size() << ",\n";
  for (std::size_t i = 0; i < farm_rows.size(); ++i) {
    json << "    \"workers_" << farm_rows[i].workers
         << "\": {\"seconds\": " << farm_rows[i].seconds
         << ", \"configs_per_s\": " << farm_rows[i].configs_per_s << "},\n";
  }
  json << "    \"scale_4_vs_1\": " << scale << ",\n    \"scaling_asserted\": "
       << (scaling_asserted ? "true" : "false") << "\n  },\n  \"farm_bit_identical\": "
       << (farm_bit_identical ? "true" : "false") << "\n}\n";
  std::printf("wrote %s\n", path.c_str());
  return failed ? 1 : 0;
}
