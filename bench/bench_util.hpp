// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "analysis/catalog.hpp"
#include "common/provenance.hpp"
#include "common/table.hpp"
#include "error/metrics.hpp"
#include "power/power.hpp"
#include "timing/sta.hpp"

namespace axmult::bench {

/// Consumes `flag` (e.g. "--smoke") from argv; returns whether it was there.
inline bool strip_flag(int& argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      return true;
    }
  }
  return false;
}

/// Where a BENCH_*.json artifact goes: next to the repo root (the perf
/// harness diffs the checked-in copies), except for smoke runs, which stay
/// in the working directory so a `ctest` pass never dirties the checkout.
inline std::string bench_json_path(const std::string& filename, bool smoke) {
#ifdef AXMULT_SOURCE_DIR
  if (!smoke) return std::string(AXMULT_SOURCE_DIR) + "/" + filename;
#endif
  return filename;
}

/// Path for a generated image/artifact: everything lands in the gitignored
/// out/ directory under the working directory (created on demand).
inline std::string out_path(const std::string& filename) {
  std::filesystem::create_directories("out");
  return "out/" + filename;
}

/// Abbreviated git revision of the source tree, for the JSON provenance
/// fields; "unknown" outside a git checkout. Thin wrapper over
/// common::git_sha() bound to the configured source directory.
inline std::string bench_git_sha() {
#ifdef AXMULT_SOURCE_DIR
  return common::git_sha(AXMULT_SOURCE_DIR);
#else
  return common::git_sha();
#endif
}

/// Area/latency/energy of one design's netlist under the default models.
struct Implementation {
  std::uint64_t luts = 0;
  std::uint64_t dsps = 0;
  double latency_ns = 0.0;
  double energy_au = 0.0;
  double edp_au = 0.0;
};

inline Implementation implement(const fabric::Netlist& nl,
                                std::uint64_t power_vectors = 1024) {
  Implementation impl;
  const auto area = nl.area();
  impl.luts = area.luts;
  impl.dsps = area.dsp;
  impl.latency_ns = timing::analyze(nl).critical_path_ns;
  power::PowerModel pm;
  pm.vectors = power_vectors;
  const auto pr = power::estimate(nl, pm);
  impl.energy_au = pr.energy_au;
  impl.edp_au = pr.edp_au;
  return impl;
}

inline std::string gain_str(double baseline, double value) {
  if (baseline == 0.0) return "n/a";
  return Table::num(100.0 * (baseline - value) / baseline, 1) + "%";
}

inline void print_header(const std::string& what) {
  std::printf("\n########################################################\n");
  std::printf("# %s\n", what.c_str());
  std::printf("########################################################\n");
}

}  // namespace axmult::bench
