// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <cstdio>
#include <string>

#include "analysis/catalog.hpp"
#include "common/table.hpp"
#include "error/metrics.hpp"
#include "power/power.hpp"
#include "timing/sta.hpp"

namespace axmult::bench {

/// Area/latency/energy of one design's netlist under the default models.
struct Implementation {
  std::uint64_t luts = 0;
  std::uint64_t dsps = 0;
  double latency_ns = 0.0;
  double energy_au = 0.0;
  double edp_au = 0.0;
};

inline Implementation implement(const fabric::Netlist& nl,
                                std::uint64_t power_vectors = 1024) {
  Implementation impl;
  const auto area = nl.area();
  impl.luts = area.luts;
  impl.dsps = area.dsp;
  impl.latency_ns = timing::analyze(nl).critical_path_ns;
  power::PowerModel pm;
  pm.vectors = power_vectors;
  const auto pr = power::estimate(nl, pm);
  impl.energy_au = pr.energy_au;
  impl.edp_au = pr.edp_au;
  return impl;
}

inline std::string gain_str(double baseline, double value) {
  if (baseline == 0.0) return "n/a";
  return Table::num(100.0 * (baseline - value) / baseline, 1) + "%";
}

inline void print_header(const std::string& what) {
  std::printf("\n########################################################\n");
  std::printf("# %s\n", what.c_str());
  std::printf("########################################################\n");
}

}  // namespace axmult::bench
