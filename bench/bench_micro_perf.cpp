// google-benchmark microbenchmarks: throughput of the behavioral models,
// the netlist evaluator, the STA engine and the error characterizer.
#include <benchmark/benchmark.h>

#include "error/metrics.hpp"
#include "fabric/netlist.hpp"
#include "mult/recursive.hpp"
#include "multgen/generators.hpp"
#include "timing/sta.hpp"

using namespace axmult;

namespace {

void BM_BehavioralCa8(benchmark::State& state) {
  const auto m = mult::make_ca(8);
  std::uint64_t a = 123;
  std::uint64_t b = 77;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->multiply(a, b));
    a = (a * 131) & 0xFF;
    b = (b * 137) & 0xFF;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BehavioralCa8);

void BM_BehavioralCc16(benchmark::State& state) {
  const auto m = mult::make_cc(16);
  std::uint64_t a = 12345;
  std::uint64_t b = 54321;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->multiply(a, b));
    a = (a * 131) & 0xFFFF;
    b = (b * 137) & 0xFFFF;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BehavioralCc16);

void BM_NetlistEvalCa8(benchmark::State& state) {
  const auto nl = multgen::make_ca_netlist(8);
  fabric::Evaluator ev(nl);
  std::uint64_t a = 123;
  std::uint64_t b = 77;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ev.eval_word(a, 8, b, 8));
    a = (a * 131) & 0xFF;
    b = (b * 137) & 0xFF;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NetlistEvalCa8);

void BM_StaCa16(benchmark::State& state) {
  const auto nl = multgen::make_ca_netlist(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(timing::analyze(nl).critical_path_ns);
  }
}
BENCHMARK(BM_StaCa16);

void BM_ExhaustiveCharacterization8x8(benchmark::State& state) {
  const auto m = mult::make_ca(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(error::characterize_exhaustive(*m).occurrences);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 65536);
}
BENCHMARK(BM_ExhaustiveCharacterization8x8);

void BM_NetlistElaborationCa16(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(multgen::make_ca_netlist(16).cells().size());
  }
}
BENCHMARK(BM_NetlistElaborationCa16);

}  // namespace

BENCHMARK_MAIN();
