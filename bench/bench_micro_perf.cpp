// google-benchmark microbenchmarks: throughput of the behavioral models,
// the netlist evaluator, the STA engine and the error characterizer.
#include <benchmark/benchmark.h>

#include "error/metrics.hpp"
#include "fabric/bitparallel.hpp"
#include "fabric/netlist.hpp"
#include "mult/recursive.hpp"
#include "multgen/generators.hpp"
#include "timing/sta.hpp"

using namespace axmult;

namespace {

void BM_BehavioralCa8(benchmark::State& state) {
  const auto m = mult::make_ca(8);
  std::uint64_t a = 123;
  std::uint64_t b = 77;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->multiply(a, b));
    a = (a * 131) & 0xFF;
    b = (b * 137) & 0xFF;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BehavioralCa8);

void BM_BehavioralCc16(benchmark::State& state) {
  const auto m = mult::make_cc(16);
  std::uint64_t a = 12345;
  std::uint64_t b = 54321;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->multiply(a, b));
    a = (a * 131) & 0xFFFF;
    b = (b * 137) & 0xFFFF;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BehavioralCc16);

void BM_NetlistEvalCa8(benchmark::State& state) {
  const auto nl = multgen::make_ca_netlist(8);
  fabric::Evaluator ev(nl);
  std::uint64_t a = 123;
  std::uint64_t b = 77;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ev.eval_word(a, 8, b, 8));
    a = (a * 131) & 0xFF;
    b = (b * 137) & 0xFF;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NetlistEvalCa8);

void BM_NetlistEvalBitParallelCa8(benchmark::State& state) {
  // 64 pairs per eval: items processed counts pairs, so the per-item rate is
  // directly comparable with BM_NetlistEvalCa8 above.
  const auto nl = multgen::make_ca_netlist(8);
  fabric::BitParallelEvaluator ev(nl);
  std::uint64_t av[64];
  std::uint64_t bv[64];
  std::uint64_t pv[64];
  std::uint64_t a = 123;
  std::uint64_t b = 77;
  for (auto _ : state) {
    for (unsigned l = 0; l < 64; ++l) {
      av[l] = a;
      bv[l] = b;
      a = (a * 131 + 1) & 0xFF;
      b = (b * 137 + 3) & 0xFF;
    }
    ev.eval_mul_batch(av, bv, pv, 64, 8, 8);
    benchmark::DoNotOptimize(pv[63]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_NetlistEvalBitParallelCa8);

void BM_NetlistReplayBitParallelCa8(benchmark::State& state) {
  // In-order replay of the operand space (the sweep inner loop): packing is
  // transpose-free via kLanePattern planes, so this is the pure evaluation
  // rate of the bit-parallel backend.
  const auto nl = multgen::make_ca_netlist(8);
  fabric::BitParallelEvaluator ev(nl);
  std::vector<std::uint64_t> in(16);
  std::uint64_t base = 0;
  for (auto _ : state) {
    for (unsigned k = 0; k < 16; ++k) {
      in[k] = k < 6 ? fabric::kLanePattern[k]
                    : ((base >> k) & 1u ? ~std::uint64_t{0} : 0);
    }
    benchmark::DoNotOptimize(ev.eval(in)[0]);
    base = (base + 64) & 0xFFFF;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_NetlistReplayBitParallelCa8);

void BM_NetlistEvalBitParallelCa16(benchmark::State& state) {
  const auto nl = multgen::make_ca_netlist(16);
  fabric::BitParallelEvaluator ev(nl);
  std::uint64_t av[64];
  std::uint64_t bv[64];
  std::uint64_t pv[64];
  std::uint64_t a = 12345;
  std::uint64_t b = 54321;
  for (auto _ : state) {
    for (unsigned l = 0; l < 64; ++l) {
      av[l] = a;
      bv[l] = b;
      a = (a * 131 + 1) & 0xFFFF;
      b = (b * 137 + 3) & 0xFFFF;
    }
    ev.eval_mul_batch(av, bv, pv, 64, 16, 16);
    benchmark::DoNotOptimize(pv[63]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_NetlistEvalBitParallelCa16);

void BM_StaCa16(benchmark::State& state) {
  const auto nl = multgen::make_ca_netlist(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(timing::analyze(nl).critical_path_ns);
  }
}
BENCHMARK(BM_StaCa16);

void BM_ExhaustiveCharacterization8x8(benchmark::State& state) {
  const auto m = mult::make_ca(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(error::characterize_exhaustive(*m).occurrences);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 65536);
}
BENCHMARK(BM_ExhaustiveCharacterization8x8);

void BM_SweepNetlistExhaustive8x8(benchmark::State& state) {
  // Full batched + threaded pipeline (honors AXMULT_THREADS): bit-parallel
  // netlist replay feeding metrics, PMF and per-bit error probabilities.
  const auto nl = multgen::make_ca_netlist(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(error::sweep_netlist_exhaustive(nl, 8, 8).metrics.occurrences);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 65536);
}
BENCHMARK(BM_SweepNetlistExhaustive8x8);

void BM_NetlistElaborationCa16(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(multgen::make_ca_netlist(16).cells().size());
  }
}
BENCHMARK(BM_NetlistElaborationCa16);

}  // namespace

BENCHMARK_MAIN();
