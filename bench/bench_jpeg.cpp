// bench_jpeg — rate/distortion/energy Pareto of the baseline-JPEG workload
// across the multiplier catalog plus an in-process DSE-front winner, with
// an adaptive-precision (RungGovernor tenant) row. Writes BENCH_jpeg.json.
//
// Every (image, quality, backend) cell round-trips a real JFIF stream and
// reports PSNR, SSIM, bits/pixel, table lookups, per-image energy/EDP (at
// the backend's modeled per-MAC cost) and LUT area; rows are ranked by
// non-dominated sort on (-psnr, bpp, edp). The run asserts, and exits 1
// otherwise:
//   * bit-determinism: 1-thread and 4-thread encodes byte-identical,
//   * exact >= every approximate backend on PSNR for every cell,
//   * the adaptive encode lands within 3 dB of the exact pipeline.
//
//   --smoke      1 image x 1 quality, JSON stays in the build tree
//   --threads N  worker threads for the codec stages
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "adapt/ladder.hpp"
#include "analysis/pareto.hpp"
#include "apps/image.hpp"
#include "bench_util.hpp"
#include "dse/evaluate.hpp"
#include "dse/space.hpp"
#include "jpeg/adaptive.hpp"
#include "jpeg/codec.hpp"
#include "jpeg/golden.hpp"
#include "nn/mac.hpp"

using namespace axmult;

namespace {

struct Row {
  std::string image;
  int quality = 0;
  std::string backend;
  double psnr_db = 0.0;
  double ssim = 0.0;
  double bpp = 0.0;
  std::uint64_t lookups = 0;  ///< encode + decode table lookups
  std::uint64_t luts = 0;
  double energy_au = 0.0;  ///< lookups x energy/MAC
  double edp_au = 0.0;     ///< energy x (lookups x critical path)
  unsigned pareto_rank = 0;
};

/// The cheapest rank-0 point of the smoke8 DSE space whose MRE stays
/// within 1% — "the front winner under an accuracy constraint", computed
/// in-process so the bench needs no axdse artifact on disk.
std::pair<std::string, nn::MacBackendPtr> front_winner(unsigned threads) {
  const std::vector<dse::Config> configs = dse::enumerate(dse::make_space("smoke8"));
  dse::EvalOptions opts;
  const std::vector<dse::Objectives> objs = dse::evaluate_all(configs, nullptr, opts, threads);
  std::vector<std::vector<double>> costs;
  costs.reserve(objs.size());
  for (const auto& o : objs) costs.push_back({o.mre, o.edp_au});
  const std::vector<unsigned> rank = analysis::nondominated_rank(costs);
  std::size_t best = configs.size();
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (rank[i] != 0 || objs[i].mre > 0.01) continue;
    if (best == configs.size() || objs[i].edp_au < objs[best].edp_au) best = i;
  }
  if (best == configs.size()) {  // nothing within 1%: fall back to min MRE
    best = 0;
    for (std::size_t i = 1; i < configs.size(); ++i) {
      if (objs[i].mre < objs[best].mre) best = i;
    }
  }
  return {"dse:" + dse::config_key(configs[best]), dse::make_backend(configs[best])};
}

Row measure(const jpeg::NamedImage& named, int quality, const std::string& label,
            const nn::MacBackendPtr& backend, unsigned threads) {
  Row row;
  row.image = named.name;
  row.quality = quality;
  row.backend = label;
  const jpeg::CodecPlan plan = jpeg::CodecPlan::uniform(backend);
  jpeg::EncodeStats es;
  const auto bytes = jpeg::encode(named.image, quality, plan, threads, &es);
  const jpeg::Decoded decoded = jpeg::decode(bytes, plan, threads);
  row.psnr_db = apps::psnr(named.image, decoded.image);
  row.ssim = apps::ssim(named.image, decoded.image);
  row.bpp = jpeg::bits_per_pixel(bytes.size(), named.image.width(), named.image.height());
  row.lookups = es.lookups() + decoded.stats.lookups();
  const nn::MacCost& cost = backend->cost();
  row.luts = cost.luts;
  row.energy_au = static_cast<double>(row.lookups) * cost.energy_per_mac_au;
  row.edp_au = row.energy_au * (static_cast<double>(row.lookups) * cost.critical_path_ns);
  return row;
}

std::string row_json(const Row& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"image\": \"%s\", \"quality\": %d, \"backend\": \"%s\", "
                "\"psnr_db\": %.6f, \"ssim\": %.8f, \"bpp\": %.6f, \"lookups\": %llu, "
                "\"luts\": %llu, \"energy_au\": %.6g, \"edp_au\": %.6g, \"pareto_rank\": %u}",
                r.image.c_str(), r.quality, r.backend.c_str(), r.psnr_db, r.ssim, r.bpp,
                static_cast<unsigned long long>(r.lookups),
                static_cast<unsigned long long>(r.luts), r.energy_au, r.edp_au,
                r.pareto_rank);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::strip_flag(argc, argv, "--smoke");
  unsigned threads = 0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--threads") threads = static_cast<unsigned>(std::atoi(argv[i + 1]));
  }

  bench::print_header("JPEG rate/distortion/energy Pareto over the multiplier catalog");

  const std::vector<jpeg::NamedImage>& corpus = jpeg::golden_corpus();
  const std::vector<jpeg::NamedImage> images(corpus.begin(),
                                             smoke ? corpus.begin() + 1 : corpus.end());
  const std::vector<int> qualities = smoke ? std::vector<int>{60}
                                           : std::vector<int>{25, 50, 75, 90};
  const std::vector<std::string> catalog = {"exact", "ca8", "cc8",      "cas8", "ccs8",
                                            "cb8",   "k8",  "trunc8_4", "w8"};

  int failures = 0;

  // Bit-determinism anchor: the whole artifact is thread-count-invariant,
  // pinned here on one full roundtrip at 1 vs 4 threads.
  {
    const jpeg::CodecPlan plan = jpeg::CodecPlan::uniform(nn::shared_mac_backend("ca8"));
    const auto one = jpeg::encode(images[0].image, qualities[0], plan, 1);
    const auto four = jpeg::encode(images[0].image, qualities[0], plan, 4);
    if (one != four) {
      std::printf("FAIL: encode is not bit-identical across thread counts\n");
      ++failures;
    }
  }

  // Smoke (q60) holds exact >= approximate strictly. The full run includes
  // coarse quantization (q25/q50) where a bounded multiplier error can act
  // as dither and edge out exact by up to ~0.12 dB on a single cell (see
  // tests/jpeg_heavy_test.cpp), so it carries the same tolerance.
  const double psnr_margin = smoke ? 1e-9 : 0.15;

  const auto [front_label, front_backend] = front_winner(threads);
  std::printf("DSE front winner: %s (%llu LUTs, MRE %.4g)\n\n", front_label.c_str(),
              static_cast<unsigned long long>(front_backend->cost().luts),
              front_backend->metrics().avg_relative_error);

  std::vector<Row> rows;
  for (const jpeg::NamedImage& named : images) {
    for (const int quality : qualities) {
      double exact_psnr = 0.0;
      for (const std::string& name : catalog) {
        Row row = measure(named, quality, name, nn::shared_mac_backend(name), threads);
        if (name == "exact") exact_psnr = row.psnr_db;
        if (row.psnr_db > exact_psnr + psnr_margin) {
          std::printf("FAIL: %s beats exact PSNR on %s q%d (%.3f > %.3f dB)\n", name.c_str(),
                      named.name.c_str(), quality, row.psnr_db, exact_psnr);
          ++failures;
        }
        rows.push_back(std::move(row));
      }
      Row row = measure(named, quality, front_label, front_backend, threads);
      if (row.psnr_db > exact_psnr + psnr_margin) {
        std::printf("FAIL: %s beats exact PSNR on %s q%d\n", front_label.c_str(),
                    named.name.c_str(), quality);
        ++failures;
      }
      rows.push_back(std::move(row));
    }
  }

  // Non-dominated rank on (quality loss, rate, energy-delay).
  {
    std::vector<std::vector<double>> costs;
    costs.reserve(rows.size());
    for (const Row& r : rows) costs.push_back({-r.psnr_db, r.bpp, r.edp_au});
    const std::vector<unsigned> rank = analysis::nondominated_rank(costs);
    for (std::size_t i = 0; i < rows.size(); ++i) rows[i].pareto_rank = rank[i];
  }

  std::printf("%-14s %3s %-26s %8s %8s %7s %10s %6s %5s\n", "image", "q", "backend",
              "psnr_db", "ssim", "bpp", "edp_au", "luts", "rank");
  for (const Row& r : rows) {
    std::printf("%-14s %3d %-26s %8.3f %8.5f %7.3f %10.4g %6llu %5u\n", r.image.c_str(),
                r.quality, r.backend.c_str(), r.psnr_db, r.ssim, r.bpp, r.edp_au,
                static_cast<unsigned long long>(r.luts), r.pareto_rank);
  }

  // Adaptive tenant: stripe-adaptive encode under a probe-PSNR SLO.
  const adapt::Ladder ladder = adapt::make_ladder({"cc8", "cas8", "exact"});
  jpeg::AdaptiveOptions aopts;
  aopts.slo_psnr_db = 38.0;
  // The corpus images are small (4-10 stripes at one block row per
  // stripe); a short hold lets the policy actually descend the ladder
  // within the run instead of sitting out the cold-start hold at exact.
  aopts.stripe_block_rows = 1;
  aopts.policy.hold_windows = 2;
  const jpeg::AdaptiveResult adaptive =
      jpeg::encode_adaptive(images[0].image, qualities[0], ladder, aopts);
  const jpeg::Decoded adecoded = jpeg::decode(adaptive.bytes, jpeg::CodecPlan{});
  const double adaptive_psnr = apps::psnr(images[0].image, adecoded.image);
  double exact_first_psnr = 0.0;
  for (const Row& r : rows) {
    if (r.image == images[0].name && r.quality == qualities[0] && r.backend == "exact") {
      exact_first_psnr = r.psnr_db;
    }
  }
  const auto& astats = adaptive.report.layers.front();
  std::printf("\nadaptive (%s, slo %.0f dB probe PSNR) on %s q%d: %.3f dB "
              "(exact %.3f), %llu stripes, %llu recomputes, %llu swaps, EDP/image %.6g au\n",
              ladder.describe().c_str(), aopts.slo_psnr_db, images[0].name.c_str(),
              qualities[0], adaptive_psnr, exact_first_psnr,
              static_cast<unsigned long long>(astats.panels),
              static_cast<unsigned long long>(astats.recomputes),
              static_cast<unsigned long long>(astats.swaps),
              adaptive.report.edp_per_inference_au);
  if (adaptive_psnr < exact_first_psnr - 3.0) {
    std::printf("FAIL: adaptive encode fell more than 3 dB below exact\n");
    ++failures;
  }

  const std::string json_path = bench::bench_json_path("BENCH_jpeg.json", smoke);
  {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"jpeg\",\n  \"git_sha\": \"" << bench::bench_git_sha()
        << "\",\n  \"smoke\": " << (smoke ? "true" : "false")
        << ",\n  \"front_winner\": \"" << front_label << "\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      out << "    " << row_json(rows[i]) << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"adaptive\": {\"ladder\": \"" << ladder.describe()
        << "\", \"slo_psnr_db\": " << aopts.slo_psnr_db << ", \"psnr_db\": " << adaptive_psnr
        << ", \"recomputes\": " << astats.recomputes << ", \"swaps\": " << astats.swaps
        << ", \"edp_per_image_au\": " << adaptive.report.edp_per_inference_au << "}\n}\n";
  }
  std::printf("\nwrote %s\n", json_path.c_str());

  if (failures != 0) {
    std::printf("bench_jpeg: FAIL (%d)\n", failures);
    return 1;
  }
  std::printf("bench_jpeg: PASS\n");
  return 0;
}
