// Synthesis-flow cross-check (companion to the paper's motivation): the
// same arithmetic described as ASIC-style gates and pushed through a
// generic cut-based LUT mapper vs the hand-structured carry-chain
// netlists. The gap — no dual-output packing, no carry chains — is the
// architectural argument behind the paper's FPGA-specific methodology.
#include "bench_util.hpp"
#include "multgen/generators.hpp"
#include "synth/mapper.hpp"
#include "synth/network.hpp"

using namespace axmult;

namespace {

synth::Network multiplier_network(unsigned width) {
  synth::Network net;
  std::vector<synth::NodeId> a;
  std::vector<synth::NodeId> b;
  for (unsigned i = 0; i < width; ++i) a.push_back(net.add_input("a" + std::to_string(i)));
  for (unsigned i = 0; i < width; ++i) b.push_back(net.add_input("b" + std::to_string(i)));
  const auto p = net.array_multiplier(a, b);
  for (std::size_t i = 0; i < p.size(); ++i) net.set_output("p" + std::to_string(i), p[i]);
  return net;
}

}  // namespace

int main() {
  bench::print_header("Synthesis cross-check: generic LUT mapping vs hand-structured design");

  Table t({"Width", "Gates", "Mapped LUTs", "Mapped depth", "Mapped ns",
           "Hand-structured LUTs", "Hand-structured ns"});
  for (unsigned w : {4u, 8u, 16u}) {
    const auto net = multiplier_network(w);
    const auto mapped = synth::map_to_luts(net);
    const auto hand = multgen::make_vivado_speed_netlist(w);
    t.add_row({std::to_string(w) + "x" + std::to_string(w),
               Table::num(static_cast<std::uint64_t>(net.gate_count())),
               Table::num(static_cast<std::uint64_t>(mapped.stats.luts)),
               Table::num(std::uint64_t{mapped.stats.depth}),
               Table::num(timing::analyze(mapped.netlist).critical_path_ns, 3),
               Table::num(hand.area().luts),
               Table::num(timing::analyze(hand).critical_path_ns, 3)});
  }
  t.print("Accurate multiplier: gate-level RTL through the generic flow vs IP structure");

  // Cut-size sensitivity (4-LUT vs 6-LUT devices).
  Table s({"Cut size K", "Mapped LUTs (8x8)", "Mapped depth"});
  const auto net8 = multiplier_network(8);
  for (unsigned k : {3u, 4u, 5u, 6u}) {
    synth::MapperOptions opt;
    opt.cut_size = k;
    const auto r = synth::map_to_luts(net8, opt);
    s.add_row({Table::num(std::uint64_t{k}), Table::num(static_cast<std::uint64_t>(r.stats.luts)),
               Table::num(std::uint64_t{r.stats.depth})});
  }
  s.print("K-LUT sensitivity (motivates the paper's 6-input-LUT-shaped 4x2 module)");

  std::printf(
      "\nThe generic flow cannot infer carry chains or dual-output LUT packing,\n"
      "so it needs more LUTs and more logic levels than the structured designs —\n"
      "the architectural gap the paper's LUT-shaped approximate modules exploit.\n");
  return 0;
}
