// bench_error_analytics — wall-clock of the analytic compositional error
// engine against the sweeps it replaces.
//
// For each 16-bit row the bench times (a) the analytic engine (exact
// metrics over all 2^32 operand pairs), (b) a single-thread sampled sweep
// of the behavioral model, and (c) the full exhaustive 2^32 sweep,
// extrapolated from a measured operand slice (the only honest way to put
// a minutes-long baseline in a CI-runnable bench — the JSON labels it
// "extrapolated"). The 32/64-bit rows have no feasible reference sweep at
// all; they report the analytic time alone, which is the point.
//
// Emits BENCH_error_analytics.json (repo root; working directory under
// --smoke) and exits nonzero if the analytic engine fails to beat the
// equal-fidelity exhaustive baseline by >= 1000x on Ca_16, or if the
// sampled sweep disagrees statistically with the exact metrics.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "check/analytic.hpp"
#include "error/analytic.hpp"
#include "mult/elementary.hpp"
#include "mult/recursive.hpp"

using namespace axmult;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Square all-accurate spec at any power-of-two width (the catalog only
/// names widths up to 16; 32/64 exercise the bipartite strategy).
error::AnalyticSpec wide_spec(unsigned width, unsigned leaf_bits,
                              std::uint64_t (*fn)(std::uint64_t, std::uint64_t)) {
  error::AnalyticSpec s;
  s.width = width;
  s.leaf_bits = leaf_bits;
  s.leaf = error::make_leaf_table(leaf_bits, leaf_bits, fn);
  for (unsigned w = width; w > leaf_bits; w /= 2) {
    s.levels.push_back(mult::Summation::kAccurate);
  }
  return s;
}

struct Row {
  std::string name;
  error::AnalyticSpec spec;
  mult::MultiplierPtr model;  ///< null = no behavioral reference sweep
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::strip_flag(argc, argv, "--smoke");
  const int reps = smoke ? 1 : 5;
  // Operand slice used to measure the per-pair sweep cost that the 2^32
  // exhaustive baseline is extrapolated from.
  const std::uint64_t slice_pairs = std::uint64_t{1} << (smoke ? 16 : 22);

  bench::print_header("Analytic error engine vs reference sweeps");

  std::vector<Row> rows;
  const auto catalog_row = [&](const std::string& name, mult::MultiplierPtr m) {
    rows.push_back({name, *check::catalog_analytic_spec(name), std::move(m)});
  };
  catalog_row("Ca_16", mult::make_ca(16));
  catalog_row("K_16", mult::make_kulkarni(16));
  catalog_row("W_16", mult::make_rehman_w(16));
  rows.push_back({"dse_w16_t6_swap",
                  *check::subject_analytic_spec("dse:w16;l=a4x4;s=AA;o=0;t=6;x=1;g=0"), nullptr});
  rows.push_back({"Ca_32", wide_spec(32, 4, &mult::approx_4x4), nullptr});
  rows.push_back({"Ca_64", wide_spec(64, 4, &mult::approx_4x4), nullptr});
  rows.push_back({"K_64", wide_spec(64, 2, &mult::kulkarni_2x2), nullptr});

  struct Result {
    std::string name;
    std::string method;
    double analytic_ms = 0.0;
    double sampled_ms = -1.0;     ///< -1 = no behavioral reference
    double exhaustive_ms = -1.0;  ///< extrapolated to 2^32 pairs
    double mre = 0.0;
    double errprob = 0.0;
  };
  std::vector<Result> results;
  bool ok = true;

  for (const Row& row : rows) {
    Result r;
    r.name = row.name;

    std::optional<error::AnalyticMetrics> am;
    std::string why;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) am = error::analytic_metrics(row.spec, &why);
    r.analytic_ms = ms_since(t0) / reps;
    if (!am) {
      std::printf("  %-16s analytic engine refused: %s\n", row.name.c_str(), why.c_str());
      ok = false;
      continue;
    }
    r.method = am->method;
    r.mre = am->metrics.avg_relative_error;
    r.errprob = am->error_probability;

    if (row.model) {
      error::SweepConfig cfg;
      cfg.threads = 1;
      cfg.collect_pmf = false;
      cfg.collect_bit_probability = false;
      t0 = std::chrono::steady_clock::now();
      const error::SweepResult sampled = error::sweep_sampled(*row.model, slice_pairs, 1, cfg);
      r.sampled_ms = ms_since(t0);
      // Per-pair cost of the measured slice, scaled to the full 2^32 space
      // the analytic numbers cover exactly.
      r.exhaustive_ms =
          r.sampled_ms * (static_cast<double>(std::uint64_t{1} << 32) /
                          static_cast<double>(slice_pairs));

      // Fidelity: the sampled estimate must be consistent with the exact
      // metrics it approximates (and can never exceed the true max error).
      const auto& sm = sampled.metrics;
      if (std::abs(sm.avg_relative_error - r.mre) > 0.05 * r.mre ||
          sm.max_error > am->metrics.max_error ||
          std::abs(sm.error_probability() - r.errprob) > 0.02) {
        std::printf("  %-16s FIDELITY MISMATCH sampled mre=%.9f vs %.9f\n", row.name.c_str(),
                    sm.avg_relative_error, r.mre);
        ok = false;
      }
    }
    results.push_back(r);
  }

  Table t({"Design", "Strategy", "Analytic (ms)", "Sampled sweep (ms)",
           "Exhaustive 2^32 (ms, extrapolated)", "Speedup vs exhaustive"});
  for (const Result& r : results) {
    const double speedup = r.exhaustive_ms > 0 ? r.exhaustive_ms / r.analytic_ms : 0.0;
    t.add_row({r.name, r.method, Table::num(r.analytic_ms, 3),
               r.sampled_ms >= 0 ? Table::num(r.sampled_ms, 1) : "n/a",
               r.exhaustive_ms >= 0 ? Table::num(r.exhaustive_ms, 0) : "infeasible",
               r.exhaustive_ms >= 0 ? Table::num(speedup, 0) + "x" : "n/a"});
  }
  t.print("Exact error metrics: analytic engine vs sweeps");

  for (const Result& r : results) {
    if (r.name != "Ca_16") continue;
    const double speedup = r.exhaustive_ms / r.analytic_ms;
    std::printf("\nCa_16: %.3f ms analytic vs %.0f ms exhaustive (extrapolated) = %.0fx\n",
                r.analytic_ms, r.exhaustive_ms, speedup);
    if (speedup < 1000.0) {
      std::printf("FAIL: expected >= 1000x over the equal-fidelity exhaustive sweep\n");
      ok = false;
    }
  }

  const std::string path = bench::bench_json_path("BENCH_error_analytics.json", smoke);
  std::ofstream json(path);
  json << "{\n  \"git_sha\": \"" << bench::bench_git_sha() << "\",\n  \"smoke\": "
       << (smoke ? "true" : "false") << ",\n  \"slice_pairs\": " << slice_pairs
       << ",\n  \"exhaustive_baseline\": \"extrapolated\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    json << "    {\"name\": \"" << r.name << "\", \"method\": \"" << r.method
         << "\", \"analytic_ms\": " << r.analytic_ms << ", \"sampled_ms\": " << r.sampled_ms
         << ", \"exhaustive_extrapolated_ms\": " << r.exhaustive_ms
         << ", \"speedup_vs_exhaustive\": "
         << (r.exhaustive_ms > 0 ? r.exhaustive_ms / r.analytic_ms : 0.0)
         << ", \"mre\": " << r.mre << ", \"error_probability\": " << r.errprob << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
  return ok ? 0 : 1;
}
