// Serving-throughput bench: boots an in-process axserve daemon and drives
// it with the load generator (mixed characterize/infer traffic over many
// concurrent Unix-socket clients), reporting sustained req/s, p50/p99
// round-trip latency and the daemon's coalescing/batching hit rates into
// BENCH_serve.json.
//
// Default: 16 clients for 8 seconds. --smoke: 8 clients for 2 seconds
// (the ctest bench-smoke entry). Either way the run FAILS (exit 1) when
// throughput is zero, any client saw a hard error, or fewer than 8
// clients ran — the concurrency floor this subsystem promises.
#include <cstdio>
#include <fstream>
#include <string>

#include <unistd.h>

#include "bench_util.hpp"
#include "common/parallel_for.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"

using namespace axmult;

int main(int argc, char** argv) {
  const bool smoke = bench::strip_flag(argc, argv, "--smoke");
  (void)strip_thread_args(argc, argv);

  serve::ServerOptions server_opts;
  server_opts.socket_path =
      "/tmp/bench_serve_" + std::to_string(::getpid()) + ".sock";
  server_opts.workers = 2;
  server_opts.eval.analytic = true;
  serve::Server server(server_opts);
  server.start();

  serve::LoadgenOptions lg;
  lg.socket_path = server_opts.socket_path;
  lg.clients = smoke ? 8 : 16;
  lg.duration_s = smoke ? 2.0 : 8.0;
  lg.infer_fraction = 0.5;
  lg.seed = 1;

  bench::print_header("axserve sustained-load bench (" + std::to_string(lg.clients) +
                      " clients, " + Table::num(lg.duration_s, 1) + "s)");
  const serve::LoadgenReport report = serve::run_loadgen(lg);
  server.stop();

  std::printf("requests      %llu (%.0f req/s)\n",
              static_cast<unsigned long long>(report.requests), report.rps);
  std::printf("latency ms    p50 %.3f  p90 %.3f  p99 %.3f  max %.3f\n", report.p50_ms,
              report.p90_ms, report.p99_ms, report.max_ms);
  std::printf("outcomes      ok %llu, retried %llu, deadline %llu, errors %llu\n",
              static_cast<unsigned long long>(report.ok),
              static_cast<unsigned long long>(report.retried),
              static_cast<unsigned long long>(report.deadline),
              static_cast<unsigned long long>(report.errors));
  std::printf("reuse         %.1f%% of characterize (cache %.1f%%, coalesced %.1f%%)\n",
              100.0 * report.reuse_rate, 100.0 * report.cache_hit_rate,
              100.0 * report.coalesce_rate);
  std::printf("batching      %.2f requests / %.1f rows per merged GEMM\n",
              report.batch_fill_requests, report.batch_fill_rows);

  const std::string path = bench::bench_json_path("BENCH_serve.json", smoke);
  std::ofstream out(path);
  out << serve::loadgen_json(
      lg, report,
      "\"git_sha\": \"" + bench::bench_git_sha() + "\", \"threads\": " +
          std::to_string(server_opts.workers) + ", \"seed\": " + std::to_string(lg.seed) +
          ", \"smoke\": " + (smoke ? "true" : "false"));
  std::printf("\nwrote %s\n", path.c_str());

  bool failed = false;
  if (report.requests == 0 || report.rps <= 0.0) {
    std::printf("FAIL: no sustained throughput\n");
    failed = true;
  }
  if (report.ok == 0 || report.errors > 0) {
    std::printf("FAIL: hard errors during the run (ok=%llu errors=%llu)\n",
                static_cast<unsigned long long>(report.ok),
                static_cast<unsigned long long>(report.errors));
    failed = true;
  }
  if (lg.clients < 8) {
    std::printf("FAIL: below the 8-concurrent-client floor\n");
    failed = true;
  }
  return failed ? 1 : 0;
}
