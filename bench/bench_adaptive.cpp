// bench_adaptive — the runtime-adaptive precision subsystem's headline
// artifact (BENCH_adaptive.json).
//
// Four phases, every claim asserted (the bench exits 1 when one fails):
//
//   1. Static rung sweep: each ladder rung deployed as a fixed backend on
//      the digits net — measured final output MRE + static EDP/inference
//      (untaxed roll-up: a design that never swaps pays no CFGLUT5 tax).
//      The cheapest rung meeting the SLO is the baseline the adaptive run
//      must beat; the sweep also asserts the SLO *separates* the ladder
//      (at least one approximate rung misses it, so "just deploy the
//      cheapest approximate backend statically" is not an answer).
//   2. Adaptive serving run: batched inference under the controller.
//      Asserts measured output MRE <= SLO and adaptive EDP/inference
//      (CFGLUT-taxed compute + monitor probes + INIT-rewrite swaps,
//      amortized) strictly below the cheapest SLO-meeting static rung.
//   3. Determinism: the same adaptive run at 1 and 3 worker threads must
//      produce byte-identical controller report JSON and the same
//      measured MRE — the panel decide/observe sequence and the monitor's
//      probe streams must not depend on worker scheduling.
//   4. GEMM drift demo: a raw operand stream that shifts distribution
//      (benign large operands -> adversarial small operands -> benign).
//      Asserts the controller escalates during the adversarial phase and
//      de-escalates back after it passes — adaptation, not a one-way
//      ratchet.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "adapt/controller.hpp"
#include "adapt/ladder.hpp"
#include "bench_util.hpp"
#include "common/parallel_for.hpp"
#include "common/rng.hpp"
#include "nn/dataset.hpp"
#include "nn/gemm.hpp"
#include "nn/graph.hpp"
#include "nn/mac.hpp"

using namespace axmult;

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
  if (!ok) ++g_failures;
}

/// The digits-net serving configuration the adaptive claim is made for.
/// slack conv1=8 is the measured error attenuation of the convolution's
/// own-output MRE on the way to the network output (docs/ADAPTIVE.md).
struct RunConfig {
  std::size_t samples = 512;
  std::size_t calib = 256;
  std::size_t batch = 8;
  std::size_t panel_rows = 64;
  std::size_t probes = 4;
  std::uint64_t seed = 9;
  double slo = 0.05;
  std::vector<std::string> ladder_names{"cc8", "cas8", "exact"};
};

adapt::ControllerConfig controller_config(const RunConfig& rc) {
  adapt::ControllerConfig cfg;
  cfg.panel_rows = rc.panel_rows;
  cfg.monitor.seed = rc.seed + 2;
  cfg.monitor.probes_per_panel = rc.probes;
  cfg.policy.slo = rc.slo;
  cfg.layer_slack.emplace_back("conv1", 8.0);
  return cfg;
}

/// MACs one inference executes (im2col-aware, per-tile decomposable).
std::uint64_t macs_per_inference(const nn::Sequential& net, const nn::Shape& sample_shape) {
  std::uint64_t macs = 0;
  nn::Shape unit = sample_shape;
  unit[0] = 1;
  for (std::size_t i = 0; i < net.size(); ++i) {
    macs += net.layer(i).gemm_shape(unit).macs();
    unit = net.layer(i).out_shape(unit);
  }
  return macs;
}

struct StaticPoint {
  std::string name;
  double measured_mre = 0.0;
  double edp_per_inference_au = 0.0;  ///< static (untaxed) cost
  bool meets_slo = false;
};

/// Deploys one rung as a fixed whole-net backend and measures it.
StaticPoint measure_static(nn::Sequential& net, const nn::QTensor& inputs,
                           const nn::QTensor& exact_out, std::uint64_t macs_per_inf,
                           const adapt::Rung& rung, double slo) {
  net.set_backend(rung.backend);
  const nn::QTensor out = net.run(inputs);
  StaticPoint p;
  p.name = rung.name;
  p.measured_mre = nn::output_mre(out, exact_out);
  p.edp_per_inference_au = static_cast<double>(macs_per_inf) *
                           rung.static_cost.energy_per_mac_au *
                           rung.static_cost.critical_path_ns;
  p.meets_slo = p.measured_mre <= slo;
  return p;
}

struct AdaptiveResult {
  double measured_mre = 0.0;
  double top1 = 0.0;
  adapt::Report report;
  std::string report_json;
};

/// Batched serving loop under a fresh controller (policies persist across
/// batches — later batches run at whatever rungs earlier batches earned).
AdaptiveResult serve_adaptive(nn::Sequential& net, const nn::Dataset& test,
                              const RunConfig& rc, unsigned threads) {
  adapt::Controller controller(adapt::make_ladder(rc.ladder_names), controller_config(rc));
  const std::size_t total = test.images.shape.empty() ? 0 : test.images.shape[0];
  const std::size_t per_sample = total ? test.images.data.size() / total : 0;
  AdaptiveResult res;
  double mre_weighted = 0.0;
  std::size_t mre_cells = 0;
  std::size_t correct = 0;
  for (std::size_t start = 0; start < total; start += rc.batch) {
    const std::size_t count = std::min(rc.batch, total - start);
    nn::Tensor chunk;
    chunk.shape = test.images.shape;
    chunk.shape[0] = static_cast<unsigned>(count);
    chunk.data.assign(test.images.data.begin() + start * per_sample,
                      test.images.data.begin() + (start + count) * per_sample);
    const nn::QTensor in = net.quantize_input(chunk);
    const nn::QTensor out = net.run_planned(in, controller, threads);
    const nn::QTensor exact_out = net.run(in, threads);
    mre_weighted += nn::output_mre(out, exact_out) * static_cast<double>(out.elems());
    mre_cells += out.elems();
    const std::size_t cols = count ? out.elems() / count : 0;
    for (std::size_t r = 0; r < count; ++r) {
      std::size_t best = 0;
      for (std::size_t c = 1; c < cols; ++c) {
        if (out.data[r * cols + c] > out.data[r * cols + best]) best = c;
      }
      if (static_cast<int>(best) == test.labels[start + r]) ++correct;
    }
  }
  res.measured_mre = mre_cells ? mre_weighted / static_cast<double>(mre_cells) : 0.0;
  res.top1 = total ? static_cast<double>(correct) / static_cast<double>(total) : 0.0;
  res.report = controller.report(total);
  res.report_json = res.report.to_json();
  return res;
}

struct DriftResult {
  std::vector<std::size_t> rung_trace;  ///< current_rung() after every GEMM call
  std::size_t benign_rung = 0;          ///< rung at the end of the first benign phase
  std::size_t adversarial_peak = 0;     ///< max rung reached under drift
  std::size_t recovered_rung = 0;       ///< rung at the end of the final benign phase
  double benign_estimate = 0.0;         ///< mean monitor estimate, first phase
  double adversarial_estimate = 0.0;    ///< mean monitor estimate, drift phase
};

/// Raw GEMM stream whose operand distribution drifts. cc8's approximate
/// 4x2 blocks are exact on low-magnitude operands (mean relative error
/// 0.0013 on [1,12]) and worst on mid-range ones (~0.18 on [16,63]), so
/// the stream starts benign-tiny, drifts into the mid-range sweet spot of
/// the approximation error, and comes back.
DriftResult run_drift_demo(std::size_t calls_per_phase) {
  RunConfig rc;
  adapt::ControllerConfig cfg;
  cfg.panel_rows = 32;
  cfg.monitor.seed = 7;
  cfg.monitor.probes_per_panel = 8;
  cfg.policy.slo = 0.05;
  cfg.policy.start_cheap = true;  // the demo is about reacting to drift
  adapt::Controller controller(adapt::make_ladder(rc.ladder_names), cfg);

  const std::size_t m = 128, k = 64, n = 8;
  Xoshiro256 rng(41);
  DriftResult dr;
  auto run_phase = [&](std::uint8_t lo, std::uint8_t hi, std::size_t calls, double* mean_est) {
    double sum = 0.0;
    std::uint64_t windows = 0;
    for (std::size_t c = 0; c < calls; ++c) {
      std::vector<std::uint8_t> a(m * k), b(k * n);
      for (auto& v : a) v = static_cast<std::uint8_t>(lo + rng.below(hi - lo + 1u));
      for (auto& v : b) v = static_cast<std::uint8_t>(lo + rng.below(hi - lo + 1u));
      std::vector<std::int64_t> acc(m * n, 0);
      controller.begin_gemm("stream", m, k, n, nullptr);
      nn::gemm_accumulate_scheduled(controller, a.data(), b.data(), acc.data(), m, k, n);
      dr.rung_trace.push_back(controller.current_rung());
      dr.adversarial_peak = std::max(dr.adversarial_peak, controller.current_rung());
    }
    if (mean_est != nullptr) {
      const adapt::Report snap = controller.report(1);
      for (const adapt::LayerAdaptStats& ls : snap.layers) {
        sum += ls.sum_estimate;
        windows += ls.windows;
      }
      *mean_est = windows ? sum / static_cast<double>(windows) : 0.0;
    }
  };

  run_phase(1, 12, calls_per_phase, &dr.benign_estimate);
  dr.benign_rung = controller.current_rung();
  dr.adversarial_peak = dr.benign_rung;
  double cumulative = 0.0;
  run_phase(16, 63, calls_per_phase, &cumulative);
  // Final benign stretch is longer: the de-escalation hold requirement may
  // have backed off, and the demo must show full recovery, not a ratchet.
  run_phase(1, 12, calls_per_phase * 4, nullptr);
  dr.recovered_rung = controller.current_rung();
  dr.adversarial_estimate = cumulative;  // dominated by the drift phase
  return dr;
}

std::string json_static(const std::vector<StaticPoint>& sweep) {
  std::ostringstream os;
  os.precision(10);
  os << "[";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    os << (i ? ", " : "") << "{\"name\": \"" << sweep[i].name
       << "\", \"measured_output_mre\": " << sweep[i].measured_mre
       << ", \"static_edp_per_inference_au\": " << sweep[i].edp_per_inference_au
       << ", \"meets_slo\": " << (sweep[i].meets_slo ? "true" : "false") << "}";
  }
  os << "]";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::strip_flag(argc, argv, "--smoke");
  RunConfig rc;
  if (smoke) rc.samples = 160;

  bench::print_header("Adaptive precision: SLO-driven hot-swap vs static deployment");
  std::printf("digits net, %zu samples, slo=%.3g, ladder cc8 -> cas8 -> exact\n",
              rc.samples, rc.slo);

  nn::Sequential net = nn::make_digits_network();
  const nn::Dataset calib = nn::make_digits(rc.calib, rc.seed + 1);
  net.calibrate(calib.images, 8);
  const nn::Dataset test = nn::make_digits(rc.samples, rc.seed);
  const std::uint64_t macs_per_inf = macs_per_inference(net, test.images.shape);

  // ---- Phase 1: static rung sweep -----------------------------------
  std::printf("\n-- static rung sweep (fixed deployment, untaxed cost) --\n");
  const adapt::Ladder ladder = adapt::make_ladder(rc.ladder_names);
  net.set_backend(nn::make_mac_backend("exact"));
  const nn::QTensor inputs = net.quantize_input(test.images);
  const nn::QTensor exact_out = net.run(inputs);
  std::vector<StaticPoint> sweep;
  for (const adapt::Rung& rung : ladder.rungs) {
    sweep.push_back(measure_static(net, inputs, exact_out, macs_per_inf, rung, rc.slo));
    std::printf("  %-8s mre=%-10.4g edp/inf=%-12.6g %s\n", sweep.back().name.c_str(),
                sweep.back().measured_mre, sweep.back().edp_per_inference_au,
                sweep.back().meets_slo ? "meets SLO" : "misses SLO");
  }
  net.set_backend(nn::make_mac_backend("exact"));
  const StaticPoint* baseline = nullptr;
  for (const StaticPoint& p : sweep) {
    if (p.meets_slo && (baseline == nullptr || p.edp_per_inference_au < baseline->edp_per_inference_au)) {
      baseline = &p;
    }
  }
  bool separated = false;
  for (const StaticPoint& p : sweep) separated = separated || !p.meets_slo;
  check(baseline != nullptr, "some static rung meets the SLO (exact always should)");
  check(separated, "the SLO separates the ladder (an approximate rung misses it)");
  if (baseline == nullptr) return 1;
  std::printf("  cheapest SLO-meeting static rung: %s (edp/inf %.6g)\n", baseline->name.c_str(),
              baseline->edp_per_inference_au);

  // ---- Phase 2: adaptive serving run --------------------------------
  std::printf("\n-- adaptive serving run --\n");
  const AdaptiveResult adaptive = serve_adaptive(net, test, rc, 0);
  const double win =
      100.0 * (baseline->edp_per_inference_au - adaptive.report.edp_per_inference_au) /
      baseline->edp_per_inference_au;
  std::printf("  measured_mre=%.4g top1=%.4f swaps=%zu edp/inf=%.6g (win %.2f%%)\n",
              adaptive.measured_mre, adaptive.top1, adaptive.report.swaps.size(),
              adaptive.report.edp_per_inference_au, win);
  check(adaptive.measured_mre <= rc.slo, "adaptive run meets the output-MRE SLO");
  check(adaptive.report.edp_per_inference_au < baseline->edp_per_inference_au,
        "adaptive EDP/inference strictly beats the cheapest SLO-meeting static rung");

  // ---- Phase 3: thread-count determinism ----------------------------
  std::printf("\n-- determinism: 1 vs 3 worker threads --\n");
  const RunConfig det = [&] {
    RunConfig d = rc;
    d.samples = smoke ? rc.samples : 160;  // two more full runs; keep them bounded
    return d;
  }();
  const nn::Dataset det_test = nn::make_digits(det.samples, det.seed);
  const AdaptiveResult t1 = serve_adaptive(net, det_test, det, 1);
  const AdaptiveResult t3 = serve_adaptive(net, det_test, det, 3);
  check(t1.report_json == t3.report_json,
        "controller report JSON byte-identical at 1 and 3 threads");
  check(t1.measured_mre == t3.measured_mre, "measured output MRE bit-identical across threads");

  // ---- Phase 4: drift escalation / de-escalation --------------------
  std::printf("\n-- GEMM drift demo (benign -> adversarial -> benign) --\n");
  const DriftResult drift = run_drift_demo(smoke ? 6 : 10);
  std::printf("  benign est=%.4g rung=%zu | drift peak rung=%zu | recovered rung=%zu\n",
              drift.benign_estimate, drift.benign_rung, drift.adversarial_peak,
              drift.recovered_rung);
  check(drift.adversarial_peak > drift.benign_rung,
        "controller escalates when the operand distribution drifts adversarial");
  check(drift.recovered_rung == drift.benign_rung,
        "controller de-escalates back once the drift passes (no ratchet)");

  // ---- Artifact ------------------------------------------------------
  const std::string path = bench::bench_json_path("BENCH_adaptive.json", smoke);
  {
    std::ofstream out(path);
    out.precision(10);
    out << "{\n  " << common::provenance_fields(AXMULT_SOURCE_DIR, thread_count(), rc.seed)
        << ",\n  \"smoke\": " << (smoke ? "true" : "false") << ",\n  \"slo\": " << rc.slo
        << ",\n  \"samples\": " << rc.samples << ",\n  \"macs_per_inference\": " << macs_per_inf
        << ",\n  \"static_sweep\": " << json_static(sweep) << ",\n  \"baseline\": {\"name\": \""
        << baseline->name << "\", \"static_edp_per_inference_au\": "
        << baseline->edp_per_inference_au << "}"
        << ",\n  \"adaptive\": {\"measured_output_mre\": " << adaptive.measured_mre
        << ", \"top1_accuracy\": " << adaptive.top1 << ", \"edp_win_pct\": " << win
        << ", \"report\": " << adaptive.report_json << "}"
        << ",\n  \"determinism\": {\"threads\": [1, 3], \"identical\": "
        << (t1.report_json == t3.report_json ? "true" : "false") << "}"
        << ",\n  \"drift\": {\"benign_rung\": " << drift.benign_rung
        << ", \"adversarial_peak_rung\": " << drift.adversarial_peak
        << ", \"recovered_rung\": " << drift.recovered_rung
        << ", \"benign_mean_estimate\": " << drift.benign_estimate << ", \"rung_trace\": [";
    for (std::size_t i = 0; i < drift.rung_trace.size(); ++i) {
      out << (i ? ", " : "") << drift.rung_trace[i];
    }
    out << "]}\n}\n";
  }
  std::printf("\nwrote %s\n", path.c_str());

  if (g_failures != 0) {
    std::fprintf(stderr, "bench_adaptive: %d assertion(s) failed\n", g_failures);
    return 1;
  }
  return 0;
}
