// Regenerates Table 2: the complete list of erroneous inputs of the
// proposed approximate 4x4 multiplier, with actual/computed products and
// the fixed difference of 8, plus the operand-swap observation.
#include "bench_util.hpp"
#include "mult/elementary.hpp"
#include "mult/recursive.hpp"

using namespace axmult;

int main() {
  bench::print_header("Table 2: 4x4 multiplier error values (exhaustive)");

  Table t({"Multiplier (B)", "Multiplicand (A)", "Actual Product", "Computed Result",
           "Difference", "Error After Swap?"});
  unsigned errors = 0;
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      const std::uint64_t exact = a * b;
      const std::uint64_t approx = mult::approx_4x4(a, b);
      if (approx == exact) continue;
      ++errors;
      const bool swap_errs = mult::approx_4x4(b, a) != exact;
      t.add_row({Table::num(b), Table::num(a), Table::num(exact), Table::num(approx),
                 Table::num(exact - approx), swap_errs ? "yes" : "no (fixed by swap)"});
    }
  }
  t.print("Erroneous outputs of the proposed 4x4 multiplier");
  std::printf("\nTotal error cases: %u (paper: 6, fixed magnitude 8)\n", errors);
  std::printf("Uniform-input accuracy: %.2f%% (250/256 exact)\n", 100.0 * (256 - errors) / 256);
  return 0;
}
