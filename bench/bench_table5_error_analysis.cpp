// Regenerates Table 5: exhaustive error analysis of the 8x8 approximate
// multipliers Ca, Cc, W [19], K [6] and the precision-reduced Mult(8,4) —
// and extends it with the 16x16 column the paper could only sample, now
// exact through the analytic compositional engine (error/analytic.hpp).
// Each JSON row carries the provenance of its numbers: "exhaustive"
// (full sweep), "analytic" (compositional, exact over all 2^32 pairs) or
// "sampled" (Monte-Carlo, a function of seed and sample count).
#include <fstream>
#include <vector>

#include "bench_util.hpp"
#include "check/analytic.hpp"
#include "error/analytic.hpp"
#include "mult/recursive.hpp"

using namespace axmult;

namespace {

struct Measured {
  std::string name;
  std::string provenance;
  error::ErrorMetrics metrics;
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::strip_flag(argc, argv, "--smoke");
  std::vector<Measured> measured;

  bench::print_header("Table 5: Error analysis of 8x8 approximate multipliers (65536 inputs)");

  struct Row {
    const char* name;
    mult::MultiplierPtr m;
    const char* paper;  // max / avg / rel / occurrences / max-occurrences
  };
  const Row rows[] = {
      {"Ca", mult::make_ca(8), "2312 / 54.1875 / 0.002917 / 5482 / 14"},
      {"Cc", mult::make_cc(8), "8288 / 1592.265 / 0.129390 / 52731 / 1"},
      {"W[19]", mult::make_rehman_w(8), "7225 / 1354.687 / 0.1438777 / 53375 / 31"},
      {"K[6]", mult::make_kulkarni(8), "14450 / 903.125 / 0.032549 / 30625 / 1"},
      {"Mult(8,4)", mult::make_result_truncated(8, 4), "15 / 6.5 / 0.0037 / 53248 / 2048"},
  };

  Table t({"Design", "Max Error", "Avg Error", "Avg Rel Error", "Occurrences",
           "Max-Error Occurrences", "Paper (max/avg/rel/occ/maxocc)"});
  for (const auto& row : rows) {
    const auto r = error::characterize_exhaustive(*row.m);
    t.add_row({row.name, Table::num(r.max_error), Table::num(r.avg_error, 4),
               Table::num(r.avg_relative_error, 6), Table::num(r.occurrences),
               Table::num(r.max_error_occurrences), row.paper});
    measured.push_back({row.name, "exhaustive", r});
  }
  t.print("Measured vs paper Table 5");
  std::printf(
      "\nAll integer anchors match the paper exactly. W's average relative error\n"
      "uses the standard mean(|err|/exact) convention and measures 0.0597 for the\n"
      "architecture that reproduces the paper's other four W anchors exactly\n"
      "(see EXPERIMENTS.md).\n");

  bench::print_header("Table 5 extension: exact 16x16 error analysis (2^32 inputs, analytic)");

  struct Row16 {
    const char* table_name;
    const char* catalog_name;
  };
  const Row16 rows16[] = {
      {"Ca", "Ca_16"}, {"K[6]", "K_16"}, {"W[19]", "W_16"}, {"Mult(16,4)", "Mult(16,4)"},
  };
  Table t16({"Design", "Max Error", "Avg Error", "Avg Rel Error", "Occurrences",
             "Max-Error Occurrences", "Provenance"});
  for (const auto& row : rows16) {
    const auto spec = check::catalog_analytic_spec(row.catalog_name);
    const auto am = error::analytic_metrics(*spec);
    const auto& r = am->metrics;
    t16.add_row({row.table_name, Table::num(r.max_error), Table::num(r.avg_error, 4),
                 Table::num(r.avg_relative_error, 6), Table::num(r.occurrences),
                 Table::num(r.max_error_occurrences), "analytic (" + am->method + ")"});
    measured.push_back({row.catalog_name, "analytic", r});
  }
  {
    // Cc's carry-free top level is outside the analytic envelope at 16
    // bits; its column stays Monte-Carlo, marked as such.
    error::SweepConfig cfg;
    cfg.collect_pmf = false;
    cfg.collect_bit_probability = false;
    const std::uint64_t samples = std::uint64_t{1} << (smoke ? 16 : 20);
    const auto r = error::sweep_sampled(*mult::make_cc(16), samples, 1, cfg).metrics;
    t16.add_row({"Cc", Table::num(r.max_error), Table::num(r.avg_error, 4),
                 Table::num(r.avg_relative_error, 6), Table::num(r.occurrences),
                 Table::num(r.max_error_occurrences), "sampled"});
    measured.push_back({"Cc_16", "sampled", r});
  }
  t16.print("Exact 16x16 metrics (sampled only where noted)");

  const std::string path = bench::bench_json_path("BENCH_table5_error_analysis.json", smoke);
  std::ofstream json(path);
  json << "{\n  \"git_sha\": \"" << bench::bench_git_sha() << "\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < measured.size(); ++i) {
    const auto& m = measured[i];
    json << "    {\"name\": \"" << m.name << "\", \"provenance\": \"" << m.provenance
         << "\", \"samples\": " << m.metrics.samples
         << ", \"max_error\": " << m.metrics.max_error
         << ", \"avg_error\": " << m.metrics.avg_error
         << ", \"avg_relative_error\": " << m.metrics.avg_relative_error
         << ", \"occurrences\": " << m.metrics.occurrences
         << ", \"max_error_occurrences\": " << m.metrics.max_error_occurrences << "}"
         << (i + 1 < measured.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
