// Regenerates Table 5: exhaustive error analysis of the 8x8 approximate
// multipliers Ca, Cc, W [19], K [6] and the precision-reduced Mult(8,4).
#include "bench_util.hpp"
#include "mult/recursive.hpp"

using namespace axmult;

int main() {
  bench::print_header("Table 5: Error analysis of 8x8 approximate multipliers (65536 inputs)");

  struct Row {
    const char* name;
    mult::MultiplierPtr m;
    const char* paper;  // max / avg / rel / occurrences / max-occurrences
  };
  const Row rows[] = {
      {"Ca", mult::make_ca(8), "2312 / 54.1875 / 0.002917 / 5482 / 14"},
      {"Cc", mult::make_cc(8), "8288 / 1592.265 / 0.129390 / 52731 / 1"},
      {"W[19]", mult::make_rehman_w(8), "7225 / 1354.687 / 0.1438777 / 53375 / 31"},
      {"K[6]", mult::make_kulkarni(8), "14450 / 903.125 / 0.032549 / 30625 / 1"},
      {"Mult(8,4)", mult::make_result_truncated(8, 4), "15 / 6.5 / 0.0037 / 53248 / 2048"},
  };

  Table t({"Design", "Max Error", "Avg Error", "Avg Rel Error", "Occurrences",
           "Max-Error Occurrences", "Paper (max/avg/rel/occ/maxocc)"});
  for (const auto& row : rows) {
    const auto r = error::characterize_exhaustive(*row.m);
    t.add_row({row.name, Table::num(r.max_error), Table::num(r.avg_error, 4),
               Table::num(r.avg_relative_error, 6), Table::num(r.occurrences),
               Table::num(r.max_error_occurrences), row.paper});
  }
  t.print("Measured vs paper Table 5");
  std::printf(
      "\nAll integer anchors match the paper exactly. W's average relative error\n"
      "uses the standard mean(|err|/exact) convention and measures 0.0597 for the\n"
      "architecture that reproduces the paper's other four W anchors exactly\n"
      "(see EXPERIMENTS.md).\n");
  return 0;
}
