// Regenerates Table 4: area (LUTs) and worst-case latency of the proposed
// Ca and Cc multipliers at 4x4, 8x8 and 16x16.
#include "bench_util.hpp"
#include "multgen/generators.hpp"

using namespace axmult;

int main() {
  bench::print_header("Table 4: Area and latency of proposed multipliers");

  struct PaperRow {
    unsigned width;
    double ca_luts, ca_ns, cc_luts, cc_ns;
  };
  const PaperRow paper[] = {
      {4, 12, 5.846, 12, 5.846}, {8, 57, 7.746, 56, 6.946}, {16, 245, 10.765, 240, 7.613}};

  Table t({"Size", "Ca LUTs", "Ca ns", "Cc LUTs", "Cc ns", "paper Ca LUTs/ns",
           "paper Cc LUTs/ns"});
  for (const auto& row : paper) {
    const auto ca = bench::implement(multgen::make_ca_netlist(row.width), 256);
    const auto cc = bench::implement(multgen::make_cc_netlist(row.width), 256);
    t.add_row({std::to_string(row.width) + "x" + std::to_string(row.width),
               Table::num(ca.luts), Table::num(ca.latency_ns, 3), Table::num(cc.luts),
               Table::num(cc.latency_ns, 3),
               Table::num(row.ca_luts, 0) + " / " + Table::num(row.ca_ns, 3),
               Table::num(row.cc_luts, 0) + " / " + Table::num(row.cc_ns, 3)});
  }
  // Extension beyond the paper's table: the same methodology at 32x32
  // ("the same process can be repeated for arbitrary sizes", Section 4).
  const auto ca32 = bench::implement(multgen::make_ca_netlist(32), 64);
  const auto cc32 = bench::implement(multgen::make_cc_netlist(32), 64);
  t.add_row({"32x32 (ext)", Table::num(ca32.luts), Table::num(ca32.latency_ns, 3),
             Table::num(cc32.luts), Table::num(cc32.latency_ns, 3), "-", "-"});
  t.print("Measured (this reproduction) vs paper Table 4");
  // Pipelined variants (extension): per-level register stages turn the
  // combinational latency into clock frequency.
  Table p({"Size", "Ca pipelined Fmax MHz", "latency cycles", "FFs", "Cc pipelined Fmax MHz"});
  for (unsigned w : {8u, 16u}) {
    const auto ca = multgen::make_pipelined_netlist(w, mult::Summation::kAccurate);
    const auto cc = multgen::make_pipelined_netlist(w, mult::Summation::kCarryFree);
    p.add_row({std::to_string(w) + "x" + std::to_string(w),
               Table::num(timing::analyze(ca).fmax_mhz(), 1),
               Table::num(std::uint64_t{multgen::pipeline_latency(w)}),
               Table::num(ca.area().ffs), Table::num(timing::analyze(cc).fmax_mhz(), 1)});
  }
  p.print("Pipelined variants (extension, not in the paper)");

  std::printf(
      "\nNotes: Cc LUT counts match the paper exactly; Ca carries 3 route-through\n"
      "LUTs per recursion level for the PP3-only columns (57->60, 245->264), see\n"
      "EXPERIMENTS.md. Latency comes from the calibrated Virtex-7 STA model.\n");
  return 0;
}
