// Regenerates Fig. 7: area, latency and EDP gains of the 4/8/16-bit
// approximate multipliers, normalized to Vivado's default (speed-
// optimized) accurate multiplier implementation.
#include "bench_util.hpp"
#include "multgen/generators.hpp"

using namespace axmult;

int main() {
  bench::print_header("Fig. 7: Area / Latency / EDP gains vs accurate Vivado IP");

  for (unsigned width : {4u, 8u, 16u}) {
    struct Entry {
      std::string name;
      fabric::Netlist nl;
    };
    std::vector<Entry> entries;
    entries.push_back({"VivadoIP-Speed (baseline)", multgen::make_vivado_speed_netlist(width)});
    entries.push_back({"VivadoIP-Area", multgen::make_vivado_area_netlist(width)});
    if (width % 2 == 0) {
      entries.push_back({"Radix4 IP model", multgen::make_radix4_netlist(width)});
    }
    if (width == 4) {
      entries.push_back({"Approx 4x4 (proposed)", multgen::make_ca_netlist(4)});
      entries.push_back({"Truncated 4x4 (3 LSBs)", multgen::make_result_truncated_netlist(4, 3)});
    } else {
      entries.push_back({"Approx1 = Ca (proposed)", multgen::make_ca_netlist(width)});
      entries.push_back({"Approx2 = Cc (proposed)", multgen::make_cc_netlist(width)});
      entries.push_back({"Mult(" + std::to_string(width) + ",4)",
                         multgen::make_result_truncated_netlist(width, 4)});
    }
    entries.push_back({"K[6]", multgen::make_kulkarni_netlist(width)});
    entries.push_back({"W[19]", multgen::make_rehman_netlist(width)});

    const auto base = bench::implement(entries.front().nl, 512);
    Table t({"Design", "LUTs", "Latency ns", "EDP a.u.", "Area gain", "Latency gain",
             "EDP gain"});
    for (const auto& e : entries) {
      const auto impl = bench::implement(e.nl, 512);
      t.add_row({e.name, Table::num(impl.luts), Table::num(impl.latency_ns, 3),
                 Table::num(impl.edp_au, 1),
                 bench::gain_str(static_cast<double>(base.luts), static_cast<double>(impl.luts)),
                 bench::gain_str(base.latency_ns, impl.latency_ns),
                 bench::gain_str(base.edp_au, impl.edp_au)});
    }
    t.print("Fig. 7 series, " + std::to_string(width) + "x" + std::to_string(width));
  }
  std::printf(
      "\nPaper envelope for the proposed designs: 25%%-31.5%% area, 8.6%%-53.2%%\n"
      "latency, 8.86%%-67%% EDP gains vs the accurate IP; K/W show little or\n"
      "negative gain on FPGA.\n");
  return 0;
}
