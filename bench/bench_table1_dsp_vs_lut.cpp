// Regenerates Table 1 (motivational study): logic-only vs DSP-block
// implementations of a Reed-Solomon encoder datapath and a JPEG-encoder
// DCT stage — critical-path delay, LUTs and DSP blocks.
#include "apps/jpeg.hpp"
#include "apps/reed_solomon.hpp"
#include "bench_util.hpp"

using namespace axmult;

int main() {
  bench::print_header("Table 1: logic vs DSP-block implementations");

  apps::RsEncoder rs(255, 239);
  const auto rs_dsp = rs.datapath_netlist(true);
  const auto rs_lut = rs.datapath_netlist(false);
  const auto jpeg_dsp = apps::dct_stage_netlist(true, 4);
  const auto jpeg_lut = apps::dct_stage_netlist(false, 4);

  auto row = [](const char* name, const fabric::Netlist& dsp_nl,
                const fabric::Netlist& lut_nl) {
    const auto d = dsp_nl.area();
    const auto l = lut_nl.area();
    const double d_ns = timing::analyze(dsp_nl).critical_path_ns;
    const double l_ns = timing::analyze(lut_nl).critical_path_ns;
    Table t({"Design", "CPD ns", "LUTs", "DSP blocks"});
    t.add_row({std::string(name) + " (DSP enabled)", Table::num(d_ns, 3), Table::num(d.luts),
               Table::num(d.dsp)});
    t.add_row({std::string(name) + " (DSP disabled)", Table::num(l_ns, 3), Table::num(l.luts),
               Table::num(l.dsp)});
    t.print(name);
    return std::pair<double, double>{d_ns, l_ns};
  };

  const auto [rs_d, rs_l] = row("Reed-Solomon encoder RS(255,239) datapath", rs_dsp, rs_lut);
  const auto [j_d, j_l] = row("JPEG encoder DCT stage (4 parallel units)", jpeg_dsp, jpeg_lut);

  std::printf(
      "\nPaper Table 1 shape (Virtex-7, Vivado 17.1):\n"
      "  Reed-Solomon: DSP-enabled is SLOWER (5.115 vs 4.358 ns) — DSP column\n"
      "  routing buys nothing for XOR-dominated GF logic.       Here: %.3f vs %.3f ns -> %s\n"
      "  JPEG: DSP-enabled is faster and trades hundreds of DSPs for LUTs\n"
      "  (8.637 vs 9.732 ns; 631 DSPs).                         Here: %.3f vs %.3f ns -> %s\n"
      "Scale differs (we elaborate the arithmetic datapaths, not the full\n"
      "OpenCores encoders); see EXPERIMENTS.md.\n",
      rs_d, rs_l, rs_d > rs_l ? "reproduced" : "NOT reproduced", j_d, j_l,
      j_d < j_l ? "reproduced" : "NOT reproduced");
  return 0;
}
