// Scalar vs bit-parallel netlist-replay throughput (Mpairs/s), plus the
// end-to-end multithreaded sweep rate. Emits BENCH_eval_throughput.json in
// the working directory for the perf-tracking harness. Thread count follows
// AXMULT_THREADS (or --threads N), defaulting to hardware_concurrency.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/bits.hpp"
#include "common/parallel_for.hpp"
#include "error/metrics.hpp"
#include "fabric/bitparallel.hpp"
#include "fabric/netlist.hpp"
#include "multgen/generators.hpp"

using namespace axmult;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Pairs/s of the scalar evaluator replaying the operand space in order —
/// the per-pair loop an exhaustive characterization runs.
double scalar_rate(const fabric::Netlist& nl, unsigned width, std::uint64_t pairs) {
  fabric::Evaluator ev(nl);
  const std::uint64_t mask = low_mask(width);
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < pairs; ++i) {
    sink ^= ev.eval_word(i & mask, width, (i >> width) & mask, width);
  }
  const double dt = seconds_since(t0);
  if (sink == 0xdeadbeef) std::printf("?");  // keep the loop observable
  return static_cast<double>(pairs) / dt;
}

/// Same in-order replay through the 64-lane evaluator: consecutive pair
/// indices pack transpose-free (kLanePattern planes + broadcast high bits).
double packed_rate(const fabric::Netlist& nl, unsigned width, std::uint64_t pairs) {
  fabric::BitParallelEvaluator ev(nl);
  std::vector<std::uint64_t> in(2 * width);
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t base = 0; base < pairs; base += 64) {
    for (unsigned k = 0; k < 2 * width; ++k) {
      in[k] = k < 6 ? fabric::kLanePattern[k]
                    : (bit(base, k) ? ~std::uint64_t{0} : 0);
    }
    sink ^= ev.eval(in)[0];
  }
  const double dt = seconds_since(t0);
  if (sink == 0xdeadbeef) std::printf("?");
  return static_cast<double>(pairs) / dt;
}

/// Random 64-pair batches through the eval_mul_batch convenience API; pays
/// two 64x64 bit transposes per batch on top of the netlist evaluation.
double batch_api_rate(const fabric::Netlist& nl, unsigned width, std::uint64_t pairs) {
  fabric::BitParallelEvaluator ev(nl);
  const std::uint64_t mask = low_mask(width);
  std::uint64_t av[64];
  std::uint64_t bv[64];
  std::uint64_t pv[64];
  std::uint64_t a = 123;
  std::uint64_t b = 77;
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < pairs; i += 64) {
    for (unsigned l = 0; l < 64; ++l) {
      av[l] = a;
      bv[l] = b;
      a = (a * 131 + 1) & mask;
      b = (b * 137 + 3) & mask;
    }
    ev.eval_mul_batch(av, bv, pv, 64, width, width);
    sink ^= pv[0] ^ pv[63];
  }
  const double dt = seconds_since(t0);
  if (sink == 0xdeadbeef) std::printf("?");
  return static_cast<double>(pairs) / dt;
}

struct Row {
  std::string name;
  double scalar_mpairs = 0.0;
  double packed_mpairs = 0.0;
  double batch_mpairs = 0.0;
  double speedup = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  (void)strip_thread_args(argc, argv);  // applies --threads N / --threads=N
  const unsigned threads = thread_count();
  bench::print_header("Netlist evaluation throughput: scalar vs 64-lane bit-parallel");
  std::printf("threads for sweep benches: %u (AXMULT_THREADS / --threads)\n", threads);

  std::vector<Row> rows;
  struct Case {
    const char* name;
    unsigned width;
    std::uint64_t scalar_pairs;
    std::uint64_t packed_pairs;
  };
  const Case cases[] = {
      {"netlist_replay_8x8_Ca", 8, std::uint64_t{1} << 18, std::uint64_t{1} << 23},
      {"netlist_replay_16x16_Ca", 16, std::uint64_t{1} << 16, std::uint64_t{1} << 21},
  };
  for (const auto& c : cases) {
    const auto nl = multgen::make_ca_netlist(c.width);
    Row r;
    r.name = c.name;
    r.scalar_mpairs = scalar_rate(nl, c.width, c.scalar_pairs) / 1e6;
    r.packed_mpairs = packed_rate(nl, c.width, c.packed_pairs) / 1e6;
    r.batch_mpairs = batch_api_rate(nl, c.width, c.packed_pairs) / 1e6;
    r.speedup = r.packed_mpairs / r.scalar_mpairs;
    rows.push_back(r);
  }

  Table t({"Replay workload", "Scalar Mpairs/s", "Bit-parallel Mpairs/s",
           "Batch API Mpairs/s", "Speedup"});
  for (const auto& r : rows) {
    t.add_row({r.name, Table::num(r.scalar_mpairs, 2), Table::num(r.packed_mpairs, 2),
               Table::num(r.batch_mpairs, 2), Table::num(r.speedup, 1) + "x"});
  }
  t.print("Single-thread replay throughput");

  // End-to-end sweep rates through the batched + threaded characterizer.
  const auto nl8 = multgen::make_ca_netlist(8);
  error::SweepConfig cfg;
  cfg.threads = threads;
  auto t0 = std::chrono::steady_clock::now();
  const auto sweep = error::sweep_netlist_exhaustive(nl8, 8, 8, cfg);
  const double sweep_s = seconds_since(t0);
  const double sweep_mpairs = 65536.0 / sweep_s / 1e6;
  std::printf("\nsweep_netlist_exhaustive 8x8 (metrics+pmf+bit-probabilities): %.2f Mpairs/s"
              " (%llu error cases)\n",
              sweep_mpairs, static_cast<unsigned long long>(sweep.metrics.occurrences));

  std::ofstream json("BENCH_eval_throughput.json");
  json << "{\n  \"threads\": " << threads << ",\n  \"replay\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    json << "    {\"name\": \"" << r.name << "\", \"scalar_mpairs_per_s\": " << r.scalar_mpairs
         << ", \"bitparallel_mpairs_per_s\": " << r.packed_mpairs
         << ", \"batch_api_mpairs_per_s\": " << r.batch_mpairs
         << ", \"speedup\": " << r.speedup << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"sweep_netlist_exhaustive_8x8_mpairs_per_s\": " << sweep_mpairs << "\n}\n";
  std::printf("wrote BENCH_eval_throughput.json\n");
  return 0;
}
