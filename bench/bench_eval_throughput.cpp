// Scalar vs bit-parallel netlist-replay throughput (Mpairs/s) across the
// supported lane widths (64..512), plus the end-to-end multithreaded sweep
// rate. Emits BENCH_eval_throughput.json at the repo root for the
// perf-tracking harness (working directory under --smoke). Thread count
// follows AXMULT_THREADS (or --threads N), defaulting to
// hardware_concurrency.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/bits.hpp"
#include "common/parallel_for.hpp"
#include "error/metrics.hpp"
#include "fabric/bitparallel.hpp"
#include "fabric/netlist.hpp"
#include "multgen/generators.hpp"

using namespace axmult;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Pairs/s of the scalar evaluator replaying the operand space in order —
/// the per-pair loop an exhaustive characterization runs.
double scalar_rate(const fabric::Netlist& nl, unsigned width, std::uint64_t pairs) {
  fabric::Evaluator ev(nl);
  const std::uint64_t mask = low_mask(width);
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < pairs; ++i) {
    sink ^= ev.eval_word(i & mask, width, (i >> width) & mask, width);
  }
  const double dt = seconds_since(t0);
  if (sink == 0xdeadbeef) std::printf("?");  // keep the loop observable
  return static_cast<double>(pairs) / dt;
}

/// Same in-order replay through the W-word wide evaluator: consecutive pair
/// indices pack transpose-free (kLanePattern planes + broadcast high bits).
template <unsigned W>
double packed_rate(const fabric::Netlist& nl, unsigned width, std::uint64_t pairs) {
  fabric::WideEvaluator<W> ev(nl);
  std::vector<std::uint64_t> in(std::size_t{2} * width * W);
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t base = 0; base < pairs; base += 64 * W) {
    for (unsigned w = 0; w < W; ++w) {
      const std::uint64_t wb = base + std::uint64_t{w} * 64;
      for (unsigned k = 0; k < 2 * width; ++k) {
        in[std::size_t{k} * W + w] =
            k < 6 ? fabric::kLanePattern[k] : (bit(wb, k) ? ~std::uint64_t{0} : 0);
      }
    }
    sink ^= ev.eval(in)[0];
  }
  const double dt = seconds_since(t0);
  if (sink == 0xdeadbeef) std::printf("?");
  return static_cast<double>(pairs) / dt;
}

/// Random 64-pair batches through the eval_mul_batch convenience API; pays
/// two 64x64 bit transposes per batch on top of the netlist evaluation.
double batch_api_rate(const fabric::Netlist& nl, unsigned width, std::uint64_t pairs) {
  fabric::BitParallelEvaluator ev(nl);
  const std::uint64_t mask = low_mask(width);
  std::uint64_t av[64];
  std::uint64_t bv[64];
  std::uint64_t pv[64];
  std::uint64_t a = 123;
  std::uint64_t b = 77;
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < pairs; i += 64) {
    for (unsigned l = 0; l < 64; ++l) {
      av[l] = a;
      bv[l] = b;
      a = (a * 131 + 1) & mask;
      b = (b * 137 + 3) & mask;
    }
    ev.eval_mul_batch(av, bv, pv, 64, width, width);
    sink ^= pv[0] ^ pv[63];
  }
  const double dt = seconds_since(t0);
  if (sink == 0xdeadbeef) std::printf("?");
  return static_cast<double>(pairs) / dt;
}

struct Row {
  std::string name;
  double scalar_mpairs = 0.0;
  double w_mpairs[4] = {};  ///< W = 1, 2, 4, 8
  double batch_mpairs = 0.0;
  double speedup = 0.0;  ///< best width vs scalar
};

}  // namespace

int main(int argc, char** argv) {
  (void)strip_thread_args(argc, argv);  // applies --threads N / --threads=N
  const bool smoke = bench::strip_flag(argc, argv, "--smoke");
  const unsigned threads = thread_count();
  bench::print_header("Netlist evaluation throughput: scalar vs wide-lane bit-parallel");
  std::printf("threads for sweep benches: %u (AXMULT_THREADS / --threads)%s\n", threads,
              smoke ? " [smoke]" : "");

  std::vector<Row> rows;
  struct Case {
    const char* name;
    unsigned width;
    std::uint64_t scalar_pairs;
    std::uint64_t packed_pairs;
  };
  const Case cases[] = {
      {"netlist_replay_8x8_Ca", 8, std::uint64_t{1} << (smoke ? 12 : 18),
       std::uint64_t{1} << (smoke ? 16 : 24)},
      {"netlist_replay_16x16_Ca", 16, std::uint64_t{1} << (smoke ? 10 : 16),
       std::uint64_t{1} << (smoke ? 14 : 22)},
  };
  for (const auto& c : cases) {
    const auto nl = multgen::make_ca_netlist(c.width);
    Row r;
    r.name = c.name;
    r.scalar_mpairs = scalar_rate(nl, c.width, c.scalar_pairs) / 1e6;
    r.w_mpairs[0] = packed_rate<1>(nl, c.width, c.packed_pairs) / 1e6;
    r.w_mpairs[1] = packed_rate<2>(nl, c.width, c.packed_pairs) / 1e6;
    r.w_mpairs[2] = packed_rate<4>(nl, c.width, c.packed_pairs) / 1e6;
    r.w_mpairs[3] = packed_rate<8>(nl, c.width, c.packed_pairs) / 1e6;
    r.batch_mpairs = batch_api_rate(nl, c.width, c.packed_pairs / 4) / 1e6;
    double best = 0.0;
    for (const double w : r.w_mpairs) best = std::max(best, w);
    r.speedup = best / r.scalar_mpairs;
    rows.push_back(r);
  }

  Table t({"Replay workload", "Scalar", "W=1 (64)", "W=2 (128)", "W=4 (256)", "W=8 (512)",
           "Batch API", "Best/scalar"});
  for (const auto& r : rows) {
    t.add_row({r.name, Table::num(r.scalar_mpairs, 2), Table::num(r.w_mpairs[0], 2),
               Table::num(r.w_mpairs[1], 2), Table::num(r.w_mpairs[2], 2),
               Table::num(r.w_mpairs[3], 2), Table::num(r.batch_mpairs, 2),
               Table::num(r.speedup, 1) + "x"});
  }
  t.print("Single-thread replay throughput (Mpairs/s, by lane width)");

  // End-to-end sweep rate through the batched + threaded characterizer,
  // looped to steady state (construction amortizes over the repeats).
  const auto nl8 = multgen::make_ca_netlist(8);
  error::SweepConfig cfg;
  cfg.threads = threads;
  std::uint64_t sweeps = 0;
  std::uint64_t occurrences = 0;
  double sweep_dt = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  do {
    const auto sweep = error::sweep_netlist_exhaustive(nl8, 8, 8, cfg);
    occurrences = sweep.metrics.occurrences;
    ++sweeps;
    sweep_dt = seconds_since(t0);
  } while (!smoke && sweep_dt < 0.25);
  const double sweep_mpairs = 65536.0 * static_cast<double>(sweeps) / sweep_dt / 1e6;
  std::printf("\nsweep_netlist_exhaustive 8x8 (metrics+pmf+bit-probabilities): %.2f Mpairs/s"
              " (%llu error cases)\n",
              sweep_mpairs, static_cast<unsigned long long>(occurrences));

  const std::string path = bench::bench_json_path("BENCH_eval_throughput.json", smoke);
  std::ofstream json(path);
  json << "{\n  \"git_sha\": \"" << bench::bench_git_sha() << "\",\n  \"threads\": " << threads
       << ",\n  \"smoke\": " << (smoke ? "true" : "false")
       << ",\n  \"lane_widths_words\": [1, 2, 4, 8],\n  \"replay\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    const auto& c = cases[i];
    json << "    {\"name\": \"" << r.name
         << "\", \"scalar_pairs\": " << c.scalar_pairs
         << ", \"packed_pairs\": " << c.packed_pairs
         << ", \"scalar_mpairs_per_s\": " << r.scalar_mpairs
         << ", \"bitparallel_mpairs_per_s\": " << r.w_mpairs[0]
         << ", \"mpairs_per_s_w2\": " << r.w_mpairs[1]
         << ", \"mpairs_per_s_w4\": " << r.w_mpairs[2]
         << ", \"mpairs_per_s_w8\": " << r.w_mpairs[3]
         << ", \"batch_api_mpairs_per_s\": " << r.batch_mpairs
         << ", \"speedup\": " << r.speedup << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"sweep_pairs\": " << 65536 * sweeps
       << ",\n  \"sweep_netlist_exhaustive_8x8_mpairs_per_s\": " << sweep_mpairs << "\n}\n";
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
