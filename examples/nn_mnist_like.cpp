// Example: quantized NN inference on approximate multipliers — the
// accelerator case study at network scale. Runs the bundled MNIST-like
// digits classifier (train-free: fixed conv filters + computed centroid
// weights) across MAC backends and prints the accuracy-vs-EDP trade-off
// the paper's Fig. 10 Pareto analysis makes at multiplier scale.
#include <cstdio>

#include "common/table.hpp"
#include "nn/dataset.hpp"
#include "nn/graph.hpp"
#include "nn/mac.hpp"

int main() {
  using namespace axmult;
  using namespace axmult::nn;

  // Calibration fixes all scales/zero-points once; each backend then runs
  // the identical quantized network — only the MAC array changes.
  Sequential net = make_digits_network();
  const Dataset calib = make_digits(256, 21);
  net.calibrate(calib.images, 8);

  const Dataset test = make_digits(512, 33);
  const QTensor inputs = net.quantize_input(test.images);

  std::printf("digits classifier: conv 3x3x4 -> relu -> maxpool 2x2 -> dense 256x10\n");
  std::printf("8-bit operands, %zu test samples\n\n", test.labels.size());

  const NetworkReport exact = net.evaluate(inputs, test.labels);

  const char* backends[] = {"exact", "ca8", "cas8", "cc8", "cb8", "trunc8_4"};
  Table t({"Backend", "Top-1", "Accuracy drop", "Energy/inf (a.u.)", "EDP (a.u.)",
           "EDP saved"});
  for (const char* name : backends) {
    net.set_backend(make_mac_backend(name));
    const NetworkReport r = net.evaluate(inputs, test.labels);
    t.add_row({name, Table::num(r.top1_accuracy, 4),
               Table::num(exact.top1_accuracy - r.top1_accuracy, 4),
               Table::num(r.energy_per_inference_au, 1), Table::num(r.edp_au, 1),
               Table::num(100.0 * (exact.edp_au - r.edp_au) / exact.edp_au, 1) + "%"});
  }
  t.print("Task accuracy vs per-inference energy-delay product");

  std::printf(
      "\nReading: Ca-family backends keep exact-level accuracy at a double-digit\n"
      "EDP saving; the carry-free Cc trades real accuracy for the largest saving —\n"
      "the same Pareto shape the paper reports for PSNR on the SUSAN accelerator.\n");
  return 0;
}
