// Example: the full baseline-JPEG codec (src/jpeg) on approximate
// multipliers — the image-compression accelerator class the paper's
// introduction motivates. Encodes one scene to a real JFIF bitstream per
// multiplier and measures rate (bits/pixel) and round-trip quality
// (PSNR/SSIM) against the exact pipeline.
#include <cstdio>
#include <string>

#include "apps/image.hpp"
#include "jpeg/codec.hpp"
#include "nn/mac.hpp"

int main() {
  using namespace axmult;

  const auto scene = apps::make_test_scene(128, 128, 4242, 4.0);
  const int quality = 75;

  const char* backends[] = {"exact", "ca8", "cc8", "cas8", "ccs8", "k8", "trunc8_4"};

  std::printf("baseline JPEG (quality %d) over a %ux%u scene, all four codec stages\n"
              "routed through each multiplier's product table\n\n",
              quality, scene.width(), scene.height());
  apps::Image reference;
  for (const char* name : backends) {
    const jpeg::CodecPlan plan = jpeg::CodecPlan::uniform(nn::shared_mac_backend(name));
    jpeg::EncodeStats stats;
    const auto bytes = jpeg::encode(scene, quality, plan, /*threads=*/0, &stats);
    const auto decoded = jpeg::decode(bytes, plan);
    const double bpp = jpeg::bits_per_pixel(bytes.size(), scene.width(), scene.height());
    if (std::string(name) == "exact") {
      reference = decoded.image;
      std::printf("%-10s %6.3f bpp  PSNR vs original: %7.3f dB  SSIM %.4f  (reference)\n",
                  name, bpp, apps::psnr(scene, decoded.image),
                  apps::ssim(scene, decoded.image));
      continue;
    }
    std::printf("%-10s %6.3f bpp  PSNR vs original: %7.3f dB  SSIM %.4f  vs exact: %7.3f dB\n",
                name, bpp, apps::psnr(scene, decoded.image),
                apps::ssim(scene, decoded.image), apps::psnr(reference, decoded.image));
  }
  std::printf(
      "\nApproximation-resilient pipeline: quantization already discards more\n"
      "information than Ca's bounded multiplier error does.\n");
  return 0;
}
