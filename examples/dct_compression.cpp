// Example: JPEG-style DCT + quantization with approximate multipliers —
// the image/signal-processing accelerator class the paper's introduction
// motivates. Measures block-compression round-trip quality per multiplier.
#include <cmath>
#include <cstdio>

#include "apps/image.hpp"
#include "apps/jpeg.hpp"
#include "mult/recursive.hpp"

int main() {
  using namespace axmult;

  const auto scene = apps::make_test_scene(128, 128, 4242, 4.0);

  struct Config {
    const char* label;
    mult::MultiplierPtr m;
  };
  const Config configs[] = {
      {"Accurate", mult::make_accurate(8)}, {"Ca (proposed)", mult::make_ca(8)},
      {"Cc (proposed)", mult::make_cc(8)},  {"K (Kulkarni)", mult::make_kulkarni(8)},
      {"Mult(8,4)", mult::make_result_truncated(8, 4)},
  };

  std::printf("8x8-block DCT -> quantize -> dequantize -> IDCT over a %ux%u scene\n\n",
              scene.width(), scene.height());
  apps::Image reference;
  for (const auto& cfg : configs) {
    apps::Dct8x8 dct(cfg.m);
    apps::Image out(scene.width(), scene.height());
    for (unsigned by = 0; by + 8 <= scene.height(); by += 8) {
      for (unsigned bx = 0; bx + 8 <= scene.width(); bx += 8) {
        apps::Block8x8 block{};
        for (unsigned y = 0; y < 8; ++y) {
          for (unsigned x = 0; x < 8; ++x) block[y][x] = scene.at(bx + x, by + y);
        }
        const auto rec = dct.inverse(
            apps::Dct8x8::dequantize(apps::Dct8x8::quantize(dct.forward(block))));
        for (unsigned y = 0; y < 8; ++y) {
          for (unsigned x = 0; x < 8; ++x) {
            out.at(bx + x, by + y) = static_cast<std::uint8_t>(rec[y][x]);
          }
        }
      }
    }
    if (std::string_view(cfg.label) == "Accurate") {
      reference = out;
      std::printf("%-16s PSNR vs original: %7.3f dB (reference pipeline)\n", cfg.label,
                  apps::psnr(scene, out));
      continue;
    }
    std::printf("%-16s PSNR vs original: %7.3f dB | vs accurate pipeline: %7.3f dB\n",
                cfg.label, apps::psnr(scene, out), apps::psnr(reference, out));
  }
  std::printf(
      "\nApproximation-resilient pipeline: quantization already discards more\n"
      "information than Ca's bounded multiplier error does.\n");
  return 0;
}
