// Example: explore the accuracy/area/latency design space and extract the
// Pareto-optimal multipliers for a user-specified error budget — the
// "design methodology" workflow the paper's library enables.
#include <cstdio>
#include <cstdlib>

#include "analysis/catalog.hpp"
#include "analysis/pareto.hpp"
#include "error/metrics.hpp"
#include "timing/sta.hpp"

int main(int argc, char** argv) {
  using namespace axmult;

  // Error budget: maximum tolerable average relative error (default 1%).
  const double budget = argc > 1 ? std::atof(argv[1]) : 0.01;
  std::printf("exploring 8x8 designs with an average-relative-error budget of %.4f\n\n", budget);

  std::vector<analysis::DesignPoint> designs = analysis::paper_designs(8);
  for (auto& d : analysis::evo_family_8x8()) designs.push_back(std::move(d));

  std::vector<analysis::ParetoPoint> pts;
  std::printf("%-22s %6s %12s %12s %10s\n", "design", "LUTs", "latency ns", "avg rel err",
              "in budget");
  for (const auto& d : designs) {
    const auto nl = d.netlist();
    const auto err = error::characterize_exhaustive(*d.model);
    const double latency = timing::analyze(nl).critical_path_ns;
    const bool ok = err.avg_relative_error <= budget;
    std::printf("%-22s %6llu %12.3f %12.6f %10s\n", d.name.c_str(),
                static_cast<unsigned long long>(nl.area().luts), latency,
                err.avg_relative_error, ok ? "yes" : "-");
    if (ok) {
      pts.push_back({d.name, static_cast<double>(nl.area().luts), latency, false});
    }
  }

  const auto front = analysis::pareto_front(pts);
  std::printf("\nPareto-optimal designs within budget (minimize LUTs and latency):\n");
  for (const auto& p : front) {
    std::printf("  %-22s %4.0f LUTs, %.3f ns\n", p.name.c_str(), p.x, p.y);
  }
  if (front.empty()) std::printf("  (none — relax the budget)\n");
  return 0;
}
