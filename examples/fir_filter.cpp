// Example: FIR low-pass filtering with approximate multipliers — signal
// quality (SNR vs the accurate-multiplier filter) against implementation
// cost for each library design.
#include <cstdio>

#include "apps/fir.hpp"
#include "mult/recursive.hpp"
#include "multgen/generators.hpp"
#include "timing/sta.hpp"

int main() {
  using namespace axmult;

  const auto signal = apps::make_test_signal(4096, /*seed=*/5, /*noise_amp=*/14.0);
  const auto taps = apps::FirFilter::triangular_taps(15);

  const auto reference = apps::FirFilter(taps, mult::make_accurate(8)).filter(signal);

  struct Config {
    const char* label;
    mult::MultiplierPtr m;
    fabric::Netlist nl;
  };
  Config configs[] = {
      {"Ca (proposed)", mult::make_ca(8), multgen::make_ca_netlist(8)},
      {"Cb(4) (hybrid ext.)", mult::make_cb(8, 4), multgen::make_cb_netlist(8, 4)},
      {"Cc (proposed)", mult::make_cc(8), multgen::make_cc_netlist(8)},
      {"K (Kulkarni)", mult::make_kulkarni(8), multgen::make_kulkarni_netlist(8)},
      {"W (Rehman-style)", mult::make_rehman_w(8), multgen::make_rehman_netlist(8)},
      {"Vivado IP (accurate)", mult::make_accurate(8), multgen::make_vivado_speed_netlist(8)},
  };

  std::printf("15-tap triangular FIR over a %zu-sample test signal\n\n", signal.size());
  std::printf("%-22s %10s %8s %12s\n", "multiplier", "SNR dB", "LUTs", "latency ns");
  for (const auto& cfg : configs) {
    const auto out = apps::FirFilter(taps, cfg.m).filter(signal);
    const double snr = apps::snr_db(reference, out);
    std::printf("%-22s %10.2f %8llu %12.3f\n", cfg.label, snr,
                static_cast<unsigned long long>(cfg.nl.area().luts),
                timing::analyze(cfg.nl).critical_path_ns);
  }
  std::printf(
      "\nThe proposed Ca keeps the filter output within quantization distance of\n"
      "the accurate pipeline at ~30%% fewer LUTs; Cb/Cc trade SNR for further\n"
      "area and latency gains.\n");
  return 0;
}
