// Quickstart: build an approximate multiplier, use it, characterize it,
// and look at its FPGA implementation — the library's whole public API in
// one page.
#include <cstdio>

#include "error/metrics.hpp"
#include "mult/recursive.hpp"
#include "multgen/generators.hpp"
#include "power/power.hpp"
#include "timing/sta.hpp"

int main() {
  using namespace axmult;

  // 1. Behavioral model: the paper's Ca 8x8 (approximate 4x4 elementary
  //    modules, accurate carry-chain summation).
  const mult::MultiplierPtr ca = mult::make_ca(8);
  std::printf("%s: 200 * 100 = %llu (exact 20000)\n", ca->name().c_str(),
              static_cast<unsigned long long>(ca->multiply(200, 100)));

  // 2. Exhaustive error characterization — the paper's quality metrics.
  const auto err = error::characterize_exhaustive(*ca);
  std::printf(
      "max error %llu | avg error %.4f | avg relative error %.6f\n"
      "error occurrences %llu / %llu inputs\n",
      static_cast<unsigned long long>(err.max_error), err.avg_error, err.avg_relative_error,
      static_cast<unsigned long long>(err.occurrences),
      static_cast<unsigned long long>(err.samples));

  // 3. Structural view: elaborate to 7-series primitives and evaluate the
  //    implementation cost under the calibrated Virtex-7 models.
  const fabric::Netlist netlist = multgen::make_ca_netlist(8);
  const auto area = netlist.area();
  const auto sta = timing::analyze(netlist);
  const auto pwr = power::estimate(netlist);
  std::printf("implementation: %llu LUT6_2, %llu CARRY4, %.3f ns, EDP %.1f a.u.\n",
              static_cast<unsigned long long>(area.luts),
              static_cast<unsigned long long>(area.carry4), sta.critical_path_ns, pwr.edp_au);

  // 4. Bit-exact agreement between the two views.
  fabric::Evaluator eval(netlist);
  unsigned mismatches = 0;
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) {
      if (eval.eval_word(a, 8, b, 8) != ca->multiply(a, b)) ++mismatches;
    }
  }
  std::printf("netlist vs model over all 65536 inputs: %u mismatches\n", mismatches);
  return mismatches == 0 ? 0 : 1;
}
