// Example: the paper's SUSAN image-smoothing accelerator case study.
//
// Smooths a noisy synthetic scene with the accurate multiplier and with
// several approximate ones (including the operand-swapped Cas), reports
// PSNR against the accurate output, and writes PGM images you can open in
// any viewer.
#include <cstdio>
#include <filesystem>
#include <string>

#include "apps/image.hpp"
#include "apps/filters.hpp"
#include "apps/susan.hpp"
#include "mult/recursive.hpp"

/// Images land in the gitignored out/ directory next to the working dir.
static std::string out_path(const std::string& name) {
  std::filesystem::create_directories("out");
  return "out/" + name;
}

int main() {
  using namespace axmult;

  const auto scene = apps::make_test_scene(256, 256, /*seed=*/42, /*noise_sigma=*/8.0);
  scene.write_pgm(out_path("smoothing_input.pgm"));
  std::printf("input scene written to out/smoothing_input.pgm\n");

  const auto accurate = apps::SusanSmoother(mult::make_accurate(8)).smooth(scene);
  accurate.write_pgm(out_path("smoothing_accurate.pgm"));

  struct Config {
    const char* label;
    mult::MultiplierPtr m;
    bool swap;
    const char* file;
  };
  const Config configs[] = {
      {"Ca  (proposed)", mult::make_ca(8), false, "smoothing_ca.pgm"},
      {"Cas (proposed, swapped operands)", mult::make_ca(8), true, "smoothing_cas.pgm"},
      {"Cc  (proposed, carry-free)", mult::make_cc(8), false, "smoothing_cc.pgm"},
      {"K   (Kulkarni baseline)", mult::make_kulkarni(8), false, "smoothing_k.pgm"},
  };
  for (const auto& cfg : configs) {
    apps::SusanConfig sc;
    sc.swap_operands = cfg.swap;
    const auto out = apps::SusanSmoother(cfg.m, sc).smooth(scene);
    out.write_pgm(out_path(cfg.file));
    std::printf("%-34s PSNR vs accurate: %7.3f dB  -> out/%s\n", cfg.label,
                apps::psnr(accurate, out), cfg.file);
  }
  std::printf(
      "\nNote how the operand swap (Cas) raises PSNR: the accelerator's weight\n"
      "operand lives in a narrow high band, and the proposed multiplier's error\n"
      "cases are asymmetric (paper Section 5, Table 6).\n");

  // Second accelerator: separable Gaussian blur on the same scene.
  const auto taps = apps::gaussian_taps(7);
  const auto blur_ref = apps::blur_image(scene, taps, mult::make_accurate(8));
  const auto blur_ca = apps::blur_image(scene, taps, mult::make_ca(8));
  blur_ca.write_pgm(out_path("blur_ca.pgm"));
  std::printf("\nGaussian blur accelerator: Ca PSNR vs accurate = %.3f dB -> out/blur_ca.pgm\n",
              apps::psnr(blur_ref, blur_ca));
  return 0;
}
