// Thread-safety of the shared MacBackend registry: racing first-touchers
// of one name must observe exactly one construction and the same shared
// instance. The whole test suite runs under the TSan CI job, so the
// deliberate 8-way races here double as a data-race detector exercise.
#include <atomic>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nn/mac.hpp"

namespace {

using namespace axmult;

TEST(MacRegistry, RacingFirstTouchYieldsOneSharedInstance) {
  // "cc16" is slow to build (a 16x16 table + STA), maximizing the window
  // in which a broken registry would double-construct.
  constexpr unsigned kThreads = 8;
  std::vector<nn::MacBackendPtr> seen(kThreads);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (unsigned i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      while (!go.load(std::memory_order_acquire)) {
      }
      seen[i] = nn::shared_mac_backend("cc16");
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  for (unsigned i = 0; i < kThreads; ++i) {
    ASSERT_NE(nullptr, seen[i]) << "thread " << i;
    EXPECT_EQ(seen[0].get(), seen[i].get()) << "thread " << i << " built a second instance";
  }
}

TEST(MacRegistry, RacesAcrossDifferentNamesStayIndependent) {
  const std::vector<std::string> names = {"exact", "ca8", "cc8", "k8"};
  constexpr unsigned kRounds = 4;
  std::vector<nn::MacBackendPtr> results(names.size() * kRounds);
  std::vector<std::thread> threads;
  for (unsigned r = 0; r < kRounds; ++r) {
    for (std::size_t n = 0; n < names.size(); ++n) {
      threads.emplace_back(
          [&, r, n] { results[r * names.size() + n] = nn::shared_mac_backend(names[n]); });
    }
  }
  for (auto& t : threads) t.join();

  std::set<const nn::MacBackend*> distinct;
  for (std::size_t n = 0; n < names.size(); ++n) {
    const nn::MacBackend* first = results[n].get();
    distinct.insert(first);
    for (unsigned r = 1; r < kRounds; ++r) {
      EXPECT_EQ(first, results[r * names.size() + n].get()) << names[n];
    }
  }
  EXPECT_EQ(names.size(), distinct.size());
}

TEST(MacRegistry, SharedInstanceMatchesFreshConstruction) {
  const nn::MacBackendPtr shared = nn::shared_mac_backend("ca8");
  const nn::MacBackendPtr fresh = nn::make_mac_backend("ca8");
  EXPECT_EQ(fresh->name(), shared->name());
  EXPECT_EQ(fresh->data_bits(), shared->data_bits());
  for (unsigned a = 0; a < 256; a += 7) {
    for (unsigned b = 0; b < 256; b += 11) {
      ASSERT_EQ(fresh->mul(a, b), shared->mul(a, b)) << a << "x" << b;
    }
  }
}

TEST(MacRegistry, UnknownNamesThrowOnEveryCall) {
  EXPECT_THROW((void)nn::shared_mac_backend("nope"), std::out_of_range);
  // A second call must throw again (the failed name was never pinned).
  EXPECT_THROW((void)nn::shared_mac_backend("nope"), std::out_of_range);
}

}  // namespace
