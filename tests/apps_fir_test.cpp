// Tests for the FIR application and the Gaussian operand source.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/filters.hpp"
#include "apps/fir.hpp"
#include "error/metrics.hpp"
#include "mult/recursive.hpp"

namespace axmult::apps {
namespace {

TEST(Fir, ImpulseResponseIsNormalizedCoefficients) {
  const std::vector<std::uint8_t> taps = {100, 200, 50};
  FirFilter fir(taps, mult::make_accurate(8));
  // A scaled impulse: x = [255, 0, 0, 0, ...].
  std::vector<std::uint8_t> x(8, 0);
  x[0] = 255;
  const auto y = fir.filter(x);
  const double sum = 350.0;
  EXPECT_EQ(y[0], static_cast<std::uint8_t>(255.0 * 100 / sum));
  EXPECT_EQ(y[1], static_cast<std::uint8_t>(255.0 * 200 / sum));
  EXPECT_EQ(y[2], static_cast<std::uint8_t>(255.0 * 50 / sum));
  EXPECT_EQ(y[3], 0);
}

TEST(Fir, ConstantSignalPassesThrough) {
  FirFilter fir(FirFilter::triangular_taps(9), mult::make_accurate(8));
  std::vector<std::uint8_t> x(64, 200);
  const auto y = fir.filter(x);
  // After the warm-up region the weighted average of a constant is itself
  // (up to integer division).
  for (std::size_t i = 16; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], 200, 1) << i;
  }
}

TEST(Fir, LowPassReducesNoisePower) {
  const auto noisy = make_test_signal(2048, 3, 20.0);
  const auto clean = make_test_signal(2048, 3, 0.0);
  FirFilter fir(FirFilter::triangular_taps(11), mult::make_accurate(8));
  const auto filtered = fir.filter(noisy);
  // Compare against the clean signal in the steady-state region.
  long double err_raw = 0;
  long double err_filt = 0;
  for (std::size_t i = 32; i < clean.size(); ++i) {
    err_raw += std::pow(static_cast<double>(noisy[i]) - clean[i], 2);
    err_filt += std::pow(static_cast<double>(filtered[i]) - clean[i - 5], 2);  // group delay
  }
  EXPECT_LT(err_filt, err_raw);
}

TEST(Fir, ApproximateMultipliersDegradeInOrder) {
  const auto signal = make_test_signal(2048, 9, 10.0);
  const auto taps = FirFilter::triangular_taps(15);
  const auto ref = FirFilter(taps, mult::make_accurate(8)).filter(signal);
  const double snr_ca = snr_db(ref, FirFilter(taps, mult::make_ca(8)).filter(signal));
  const double snr_cb = snr_db(ref, FirFilter(taps, mult::make_cb(8, 4)).filter(signal));
  const double snr_cc = snr_db(ref, FirFilter(taps, mult::make_cc(8)).filter(signal));
  EXPECT_GT(snr_ca, snr_cb);
  EXPECT_GT(snr_cb, snr_cc);
  EXPECT_GT(snr_ca, 35.0);
}

TEST(Fir, SnrOfIdenticalSignalsIsInfinite) {
  const auto s = make_test_signal(128, 1, 5.0);
  EXPECT_TRUE(std::isinf(snr_db(s, s)));
}

TEST(Fir, RejectsBadConfigurations) {
  EXPECT_THROW(FirFilter({}, mult::make_accurate(8)), std::invalid_argument);
  EXPECT_THROW(FirFilter({0, 0}, mult::make_accurate(8)), std::invalid_argument);
  EXPECT_THROW(FirFilter({1}, mult::make_ca(16)), std::invalid_argument);
  EXPECT_THROW(FirFilter::triangular_taps(0), std::invalid_argument);
}

TEST(GaussianSource, StatisticsMatchParameters) {
  auto src = error::gaussian_source(8, 8, 20000, 128.0, 20.0, 7);
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  long double sum = 0;
  long double sum2 = 0;
  std::uint64_t n = 0;
  while (src(a, b)) {
    sum += static_cast<long double>(a) + static_cast<long double>(b);
    sum2 += static_cast<long double>(a) * a + static_cast<long double>(b) * b;
    n += 2;
    ASSERT_LT(a, 256u);
    ASSERT_LT(b, 256u);
  }
  const double mean = static_cast<double>(sum / n);
  const double var = static_cast<double>(sum2 / n) - mean * mean;
  EXPECT_NEAR(mean, 128.0, 1.0);
  EXPECT_NEAR(std::sqrt(var), 20.0, 1.5);
}

TEST(GaussianSource, NarrowBandChangesErrorProfile) {
  // A narrow band around 64 (binary 01000000) avoids most of Cc's error
  // cases relative to the uniform distribution.
  const auto cc = mult::make_cc(8);
  const auto uniform = error::characterize_exhaustive(*cc);
  const auto narrow =
      error::characterize(*cc, error::gaussian_source(8, 8, 50000, 64.0, 4.0, 11));
  EXPECT_NE(uniform.avg_relative_error, narrow.avg_relative_error);
}

TEST(Filters, GaussianTapsAreSymmetricAndPeaked) {
  const auto taps = gaussian_taps(9);
  ASSERT_EQ(taps.size(), 9u);
  EXPECT_EQ(taps[4], 255);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(taps[i], taps[8 - i]);
    EXPECT_LT(taps[i], taps[i + 1]);
  }
  EXPECT_THROW(gaussian_taps(0), std::invalid_argument);
}

TEST(Filters, BlurAttenuatesNoise) {
  // Blurring both the clean and the noisy scene must bring them closer
  // together than the raw pair (the filter attenuates the independent
  // noise much more than the shared content).
  const auto clean = make_test_scene(96, 96, 21, 0.0);
  const auto noisy = make_test_scene(96, 96, 21, 12.0);
  const auto taps = gaussian_taps(5);
  const auto bc = blur_image(clean, taps, mult::make_accurate(8));
  const auto bn = blur_image(noisy, taps, mult::make_accurate(8));
  EXPECT_LT(mse(bc, bn), 0.5 * mse(clean, noisy));
}

TEST(Filters, ApproximateBlurStaysCloseToAccurate) {
  const auto scene = make_test_scene(96, 96, 23, 6.0);
  const auto taps = gaussian_taps(5);
  const auto ref = blur_image(scene, taps, mult::make_accurate(8));
  const double ca = psnr(ref, blur_image(scene, taps, mult::make_ca(8)));
  const double cc = psnr(ref, blur_image(scene, taps, mult::make_cc(8)));
  EXPECT_GT(ca, 32.0);
  EXPECT_GT(ca, cc);
}

}  // namespace
}  // namespace axmult::apps
