// Tests for the ASIC cost model (Fig. 1) and the analysis layer
// (catalog + Pareto).
#include <gtest/gtest.h>

#include "analysis/catalog.hpp"
#include "analysis/pareto.hpp"
#include "asic/model.hpp"
#include "asic/qm.hpp"
#include "multgen/generators.hpp"
#include "common/rng.hpp"
#include "timing/sta.hpp"

namespace axmult {
namespace {

// ------------------------------------------------------------------ QM

TEST(QuineMcCluskey, MinimizesKnownFunctions) {
  // f = a (minterms where bit0 set, 2 vars) -> single implicant "a".
  const auto cover_a = asic::minimize({1, 3}, 2);
  ASSERT_EQ(cover_a.size(), 1u);
  EXPECT_EQ(cover_a[0].mask, 1u);
  EXPECT_EQ(cover_a[0].bits & 1u, 1u);

  // XOR needs two implicants, each with both literals.
  const auto cover_xor = asic::minimize({1, 2}, 2);
  ASSERT_EQ(cover_xor.size(), 2u);
  for (const auto& t : cover_xor) EXPECT_EQ(t.literal_count(), 2u);

  // Constant 1 over 2 vars -> one empty-mask implicant.
  const auto cover_one = asic::minimize({0, 1, 2, 3}, 2);
  ASSERT_EQ(cover_one.size(), 1u);
  EXPECT_EQ(cover_one[0].mask, 0u);

  // Constant 0 -> empty cover.
  EXPECT_TRUE(asic::minimize({}, 2).empty());
}

TEST(QuineMcCluskey, CoverIsFunctionallyCorrect) {
  // Property: for random 4-input functions, the cover evaluates exactly
  // to the original truth table.
  Xoshiro256 rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint16_t truth = static_cast<std::uint16_t>(rng() & 0xFFFF);
    std::vector<std::uint32_t> on;
    for (std::uint32_t m = 0; m < 16; ++m) {
      if ((truth >> m) & 1) on.push_back(m);
    }
    const auto cover = asic::minimize(on, 4);
    for (std::uint32_t m = 0; m < 16; ++m) {
      const bool expected = ((truth >> m) & 1) != 0;
      const bool got = std::any_of(cover.begin(), cover.end(),
                                   [&](const asic::Implicant& t) { return t.covers(m); });
      ASSERT_EQ(got, expected) << "truth=" << truth << " m=" << m;
    }
  }
}

TEST(QuineMcCluskey, MajorityCost) {
  // maj(a,b,c) = ab + ac + bc: 3 implicants x 2 literals.
  const auto cover = asic::minimize({3, 5, 6, 7}, 3);
  EXPECT_EQ(cover.size(), 3u);
  const auto cost = asic::sop_cost(cover, 3);
  EXPECT_GT(cost.area, 0.0);
  EXPECT_GE(cost.depth, 2u);
}

// ------------------------------------------------------------ ASIC model

TEST(AsicModel, ApproximateBlocksSaveAsicArea) {
  // Fig. 1 premise: on ASIC, K and W do provide area gains over accurate.
  const auto acc = asic::estimate(8, mult::Elementary::kAccurate2x2, mult::Summation::kAccurate);
  const auto k = asic::estimate(8, mult::Elementary::kKulkarni2x2, mult::Summation::kAccurate);
  EXPECT_GT(asic::gain_percent(acc.area_nand2, k.area_nand2), 5.0);
  EXPECT_GT(asic::gain_percent(acc.edp(), k.edp()), 0.0);
  // Note: the W stand-in does NOT save ASIC area under two-level costing —
  // the published W gains come from its (unpublished) compressor
  // structure; bench_fig1 reports our measured value next to the paper's
  // claim (see EXPERIMENTS.md).
}

TEST(AsicModel, Figure1GainsShrinkOnFpga) {
  // Fig. 1 message: the ASIC area gains of K/W do not translate to the
  // FPGA — the FPGA-side gain is smaller (in fact negative here).
  const auto acc_asic =
      asic::estimate(8, mult::Elementary::kAccurate2x2, mult::Summation::kAccurate);
  const auto k_asic =
      asic::estimate(8, mult::Elementary::kKulkarni2x2, mult::Summation::kAccurate);
  const double k_asic_gain = asic::gain_percent(acc_asic.area_nand2, k_asic.area_nand2);

  const double ip_luts =
      static_cast<double>(multgen::make_vivado_speed_netlist(8).area().luts);
  const double k_luts = static_cast<double>(multgen::make_kulkarni_netlist(8).area().luts);
  const double k_fpga_gain = asic::gain_percent(ip_luts, k_luts);

  EXPECT_GT(k_asic_gain, k_fpga_gain);
  EXPECT_LT(k_fpga_gain, 5.0);  // little or no FPGA gain for the ASIC design
}

TEST(AsicModel, CarryFreeSummationIsCheaper) {
  const auto acc = asic::estimate(8, mult::Elementary::kApprox4x4, mult::Summation::kAccurate);
  const auto cf = asic::estimate(8, mult::Elementary::kApprox4x4, mult::Summation::kCarryFree);
  EXPECT_LT(cf.area_nand2, acc.area_nand2);
  EXPECT_LT(cf.delay_ps, acc.delay_ps);
}

// --------------------------------------------------------------- Pareto

TEST(Pareto, MarksNonDominatedPoints) {
  std::vector<analysis::ParetoPoint> pts = {
      {"a", 1.0, 5.0, false}, {"b", 2.0, 2.0, false}, {"c", 5.0, 1.0, false},
      {"d", 3.0, 3.0, false},  // dominated by b
      {"e", 2.0, 2.0, false},  // tie with b: both stay non-dominated
  };
  analysis::mark_pareto_front(pts);
  EXPECT_TRUE(pts[0].pareto);
  EXPECT_TRUE(pts[1].pareto);
  EXPECT_TRUE(pts[2].pareto);
  EXPECT_FALSE(pts[3].pareto);
  EXPECT_TRUE(pts[4].pareto);

  const auto front = analysis::pareto_front(pts);
  EXPECT_EQ(front.size(), 4u);
  EXPECT_EQ(front.front().name, "a");
}

TEST(Pareto, SinglePointIsAlwaysPareto) {
  std::vector<analysis::ParetoPoint> pts = {{"only", 9.0, 9.0, false}};
  analysis::mark_pareto_front(pts);
  EXPECT_TRUE(pts[0].pareto);
}

// --------------------------------------------------------------- catalog

TEST(Catalog, PaperDesignsArePresentAndConsistent) {
  const auto designs = analysis::paper_designs(8);
  EXPECT_EQ(designs.size(), 7u);
  for (const auto& d : designs) {
    ASSERT_TRUE(d.model) << d.name;
    ASSERT_TRUE(d.has_netlist()) << d.name;
    EXPECT_EQ(d.model->a_bits(), 8u) << d.name;
  }
  EXPECT_EQ(analysis::find_design(designs, "Ca_8").category, "proposed");
  EXPECT_THROW((void)analysis::find_design(designs, "nope"), std::out_of_range);
}

TEST(Catalog, FamilyNetlistsMatchTheirModels) {
  // Property: every design-space point's netlist agrees with its
  // behavioral model (sampled).
  Xoshiro256 rng(29);
  for (const auto& d : analysis::evo_family_8x8()) {
    ASSERT_TRUE(d.has_netlist()) << d.name;
    const auto nl = d.netlist();
    fabric::Evaluator ev(nl);
    for (int i = 0; i < 300; ++i) {
      const std::uint64_t a = rng() & 0xFF;
      const std::uint64_t b = rng() & 0xFF;
      ASSERT_EQ(ev.eval_word(a, 8, b, 8), d.model->multiply(a, b))
          << d.name << " a=" << a << " b=" << b;
    }
  }
}

TEST(Catalog, FamilySpansAreaAndAccuracy) {
  // The cloud must actually spread: some member below 40 LUTs, some above
  // 80, some with tiny error, some with large error.
  std::uint64_t min_luts = ~0ull;
  std::uint64_t max_luts = 0;
  for (const auto& d : analysis::evo_family_8x8()) {
    const auto luts = d.netlist().area().luts;
    min_luts = std::min(min_luts, luts);
    max_luts = std::max(max_luts, luts);
  }
  EXPECT_LT(min_luts, 45u);
  EXPECT_GT(max_luts, 80u);
}

}  // namespace
}  // namespace axmult
