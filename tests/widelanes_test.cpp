// WideEvaluator<W> cross-checks: every supported width (64..512 lanes)
// must agree bit-for-bit with the scalar Evaluator — exhaustively over the
// 8-bit operand space, on ragged eval_mul_batch tails, and through the
// raw packed eval() interface.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/bits.hpp"
#include "fabric/bitparallel.hpp"
#include "fabric/netlist.hpp"
#include "multgen/generators.hpp"

namespace axmult::fabric {
namespace {

template <unsigned W>
void expect_exhaustive_match(const Netlist& nl, unsigned width) {
  Evaluator scalar(nl);
  WideEvaluator<W> packed(nl);
  constexpr unsigned kLanes = WideEvaluator<W>::kLanes;
  const std::uint64_t total = std::uint64_t{1} << (2 * width);
  std::uint64_t av[kLanes];
  std::uint64_t bv[kLanes];
  std::uint64_t pv[kLanes];
  for (std::uint64_t base = 0; base < total; base += kLanes) {
    const std::size_t lanes =
        static_cast<std::size_t>(std::min<std::uint64_t>(kLanes, total - base));
    for (std::size_t l = 0; l < lanes; ++l) {
      av[l] = (base + l) & low_mask(width);
      bv[l] = (base + l) >> width;
    }
    packed.eval_mul_batch(av, bv, pv, lanes, width, width);
    for (std::size_t l = 0; l < lanes; ++l) {
      ASSERT_EQ(pv[l], scalar.eval_word(av[l], width, bv[l], width))
          << "W=" << W << " a=" << av[l] << " b=" << bv[l];
    }
  }
}

TEST(WideLanes, W1MatchesScalarExhaustively8x8) {
  expect_exhaustive_match<1>(multgen::make_ca_netlist(8), 8);
}

TEST(WideLanes, W2MatchesScalarExhaustively8x8) {
  expect_exhaustive_match<2>(multgen::make_ca_netlist(8), 8);
}

TEST(WideLanes, W4MatchesScalarExhaustively8x8) {
  expect_exhaustive_match<4>(multgen::make_ca_netlist(8), 8);
}

TEST(WideLanes, W8MatchesScalarExhaustively8x8) {
  expect_exhaustive_match<8>(multgen::make_ca_netlist(8), 8);
}

TEST(WideLanes, W8MatchesScalarExhaustively8x8Cc) {
  expect_exhaustive_match<8>(multgen::make_cc_netlist(8), 8);
}

TEST(WideLanes, W8MatchesScalarExhaustively8x8AccurateIp) {
  expect_exhaustive_match<8>(multgen::make_vivado_speed_netlist(8), 8);
}

template <unsigned W>
void expect_ragged_tails_match(const Netlist& nl) {
  Evaluator scalar(nl);
  WideEvaluator<W> packed(nl);
  constexpr unsigned kLanes = WideEvaluator<W>::kLanes;
  std::vector<std::uint64_t> av(kLanes);
  std::vector<std::uint64_t> bv(kLanes);
  std::vector<std::uint64_t> pv(kLanes);
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{17}, std::size_t{63}, std::size_t{65}, std::size_t{100},
        std::size_t{511}, std::size_t{kLanes}}) {
    if (n > kLanes) continue;
    for (std::size_t l = 0; l < n; ++l) {
      av[l] = (l * 131 + 7) & 0xFF;
      bv[l] = (l * 137 + 3) & 0xFF;
    }
    packed.eval_mul_batch(av.data(), bv.data(), pv.data(), n, 8, 8);
    for (std::size_t l = 0; l < n; ++l) {
      ASSERT_EQ(pv[l], scalar.eval_word(av[l], 8, bv[l], 8))
          << "W=" << W << " n=" << n << " lane=" << l;
    }
  }
  EXPECT_THROW(packed.eval_mul_batch(av.data(), bv.data(), pv.data(), kLanes + 1, 8, 8),
               std::invalid_argument);
}

TEST(WideLanes, RaggedTailsMatchAllWidths) {
  const Netlist nl = multgen::make_ca_netlist(8);
  expect_ragged_tails_match<1>(nl);
  expect_ragged_tails_match<2>(nl);
  expect_ragged_tails_match<4>(nl);
  expect_ragged_tails_match<8>(nl);
}

TEST(WideLanes, PackedEvalPlaneLayoutMatchesW1) {
  // The raw eval() interface: plane k of word w of input i must behave as
  // 64 more lanes, i.e. W=8 over one call == W=1 over 8 calls.
  const Netlist nl = multgen::make_kulkarni_netlist(8);
  WideEvaluator<1> narrow(nl);
  WideEvaluator<8> wide(nl);
  const std::size_t n_in = nl.inputs().size();

  std::vector<std::uint64_t> wide_in(n_in * 8);
  std::uint64_t s = 0x12345678;
  for (auto& w : wide_in) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    w = s;
  }
  const auto wide_out = wide.eval(wide_in);  // copy: narrow evals reuse buffers

  for (unsigned w = 0; w < 8; ++w) {
    std::vector<std::uint64_t> in(n_in);
    for (std::size_t i = 0; i < n_in; ++i) in[i] = wide_in[i * 8 + w];
    const auto& out = narrow.eval(in);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(wide_out[i * 8 + w], out[i]) << "word=" << w << " output=" << i;
    }
  }
}

TEST(WideLanes, SequentialEvaluatorUsesOptimizedTape) {
  // BitParallelSeqEvaluator with default options runs on the optimized
  // netlist; its lanes must still track the scalar machines.
  const Netlist nl = multgen::make_pipelined_netlist(8, mult::Summation::kAccurate);
  BitParallelSeqEvaluator packed(nl);
  SeqEvaluator scalar(nl);
  const unsigned cycles = multgen::pipeline_latency(8) + 4;
  std::vector<std::uint64_t> in(nl.inputs().size());
  for (unsigned t = 0; t < cycles; ++t) {
    const std::uint64_t a = (t * 37 + 11) & 0xFF;
    const std::uint64_t b = (t * 101 + 3) & 0xFF;
    std::fill(in.begin(), in.end(), 0);
    for (unsigned i = 0; i < 8; ++i) {
      in[i] = bit(a, i) ? ~std::uint64_t{0} : 0;  // same operands in all lanes
      in[8 + i] = bit(b, i) ? ~std::uint64_t{0} : 0;
    }
    const auto& out = packed.step(in);
    const std::uint64_t expected = scalar.step_word(a, 8, b, 8);
    std::uint64_t lane0 = 0;
    for (std::size_t i = 0; i < out.size(); ++i) lane0 |= (out[i] & 1u) << i;
    ASSERT_EQ(lane0, expected) << "cycle " << t;
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_TRUE(out[i] == 0 || out[i] == ~std::uint64_t{0}) << "lanes diverged, output " << i;
    }
  }
}

}  // namespace
}  // namespace axmult::fabric
