#include <gtest/gtest.h>

#include "error/metrics.hpp"
#include "mult/recursive.hpp"

namespace axmult::error {
namespace {

TEST(PairSources, ExhaustiveCoversWholeSpace) {
  auto src = exhaustive_source(3, 2);
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  unsigned count = 0;
  std::uint64_t seen = 0;
  while (src(a, b)) {
    ++count;
    seen |= std::uint64_t{1} << (a + 8 * b);
  }
  EXPECT_EQ(count, 32u);
  EXPECT_EQ(seen, (std::uint64_t{1} << 32) - 1);
}

TEST(PairSources, UniformIsDeterministicAndBounded) {
  auto src1 = uniform_source(8, 8, 100, 42);
  auto src2 = uniform_source(8, 8, 100, 42);
  std::uint64_t a1 = 0;
  std::uint64_t b1 = 0;
  std::uint64_t a2 = 0;
  std::uint64_t b2 = 0;
  unsigned n = 0;
  while (src1(a1, b1)) {
    ASSERT_TRUE(src2(a2, b2));
    EXPECT_EQ(a1, a2);
    EXPECT_EQ(b1, b2);
    EXPECT_LT(a1, 256u);
    EXPECT_LT(b1, 256u);
    ++n;
  }
  EXPECT_EQ(n, 100u);
}

TEST(PairSources, TraceReplaysExactly) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> trace = {{1, 2}, {3, 4}, {250, 17}};
  auto src = trace_source(trace);
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  for (const auto& [ea, eb] : trace) {
    ASSERT_TRUE(src(a, b));
    EXPECT_EQ(a, ea);
    EXPECT_EQ(b, eb);
  }
  EXPECT_FALSE(src(a, b));
}

TEST(Characterize, AccurateMultiplierHasZeroError) {
  const auto m = mult::make_accurate(8);
  const auto r = characterize_exhaustive(*m);
  EXPECT_EQ(r.samples, 65536u);
  EXPECT_EQ(r.max_error, 0u);
  EXPECT_EQ(r.occurrences, 0u);
  EXPECT_EQ(r.avg_error, 0.0);
  EXPECT_EQ(r.error_probability(), 0.0);
}

TEST(Characterize, SignedMeanIsNegativeForOneSidedDesigns) {
  const auto r = characterize_exhaustive(*mult::make_ca(8));
  EXPECT_LT(r.mean_signed_error, 0.0);
  EXPECT_NEAR(-r.mean_signed_error, r.avg_error, 1e-9);
}

TEST(BitErrorProbability, Approx4x4ConfinedToBit3) {
  // The proposed 4x4 multiplier's errors are confined to product bit P3.
  const auto m = std::make_shared<mult::RecursiveMultiplier>(
      4, mult::Elementary::kApprox4x4, mult::Summation::kAccurate);
  const auto p = bit_error_probability(*m, exhaustive_source(4, 4));
  ASSERT_EQ(p.size(), 8u);
  for (unsigned i = 0; i < 8; ++i) {
    if (i == 3) {
      EXPECT_NEAR(p[i], 6.0 / 256.0, 1e-12);
    } else {
      EXPECT_EQ(p[i], 0.0) << "bit " << i;
    }
  }
}

TEST(ErrorPmf, Approx4x4HasSingleErrorValue) {
  const auto m = std::make_shared<mult::RecursiveMultiplier>(
      4, mult::Elementary::kApprox4x4, mult::Summation::kAccurate);
  const auto pmf = error_pmf(*m, exhaustive_source(4, 4));
  ASSERT_EQ(pmf.size(), 1u);
  EXPECT_EQ(pmf.at(8), 6u);
}

TEST(CollectErrorCases, RegeneratesTable2Rows) {
  const auto m = std::make_shared<mult::RecursiveMultiplier>(
      4, mult::Elementary::kApprox4x4, mult::Summation::kAccurate);
  const auto cases = collect_error_cases(*m, exhaustive_source(4, 4));
  ASSERT_EQ(cases.size(), 6u);
  for (const auto& c : cases) {
    EXPECT_EQ(c.exact - c.approx, 8u);
    EXPECT_EQ(c.exact, c.a * c.b);
  }
}

}  // namespace
}  // namespace axmult::error
