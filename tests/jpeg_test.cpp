// Tests for the baseline-JPEG workload (src/jpeg/): entropy-layer hand
// vectors, exact-backend roundtrip properties across the quality range,
// the exact==plain-int differential, the mul_wide limb composition, the
// adaptive (RungGovernor) encoder, and the checked-in corpus goldens.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "adapt/ladder.hpp"
#include "adapt/tenant.hpp"
#include "apps/image.hpp"
#include "common/rng.hpp"
#include "jpeg/adaptive.hpp"
#include "jpeg/codec.hpp"
#include "jpeg/dct.hpp"
#include "jpeg/entropy.hpp"
#include "jpeg/golden.hpp"
#include "jpeg/quant.hpp"
#include "nn/mac.hpp"

namespace axmult::jpeg {
namespace {

apps::Image random_image(unsigned width, unsigned height, std::uint64_t seed) {
  apps::Image img(width, height);
  Xoshiro256 rng(seed);
  for (unsigned y = 0; y < height; ++y) {
    for (unsigned x = 0; x < width; ++x) {
      img.at(x, y) = static_cast<std::uint8_t>(rng.below(256));
    }
  }
  return img;
}

// ---------------------------------------------------------------- zigzag

TEST(JpegZigzag, MatchesT81Figure5) {
  const auto& zz = zigzag_order();
  // The first and last diagonals of the standard scan, hand-checked.
  const std::array<std::uint8_t, 10> head = {0, 1, 8, 16, 9, 2, 3, 10, 17, 24};
  for (std::size_t i = 0; i < head.size(); ++i) EXPECT_EQ(zz[i], head[i]) << i;
  EXPECT_EQ(zz[61], 55);
  EXPECT_EQ(zz[62], 62);
  EXPECT_EQ(zz[63], 63);
  // A permutation: every natural index appears exactly once.
  std::array<int, 64> seen{};
  for (const auto idx : zz) ++seen[idx];
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(JpegZigzag, RoundTripsAnyBlock) {
  Block natural;
  for (int i = 0; i < 64; ++i) natural[i] = i * 3 - 70;
  EXPECT_EQ(from_zigzag(to_zigzag(natural)), natural);
}

// --------------------------------------------------------------- huffman

TEST(JpegHuffman, DcLumaCanonicalCodesMatchAnnexK) {
  const HuffTable& dc = HuffTable::dc_luma();
  // K.3.3.1.1: category 0 is the single 2-bit code 00; categories 1-5 are
  // the 3-bit codes 010..110; category 11 is the longest (9 bits).
  EXPECT_EQ(dc.length(0), 2);
  EXPECT_EQ(dc.code(0), 0b00);
  for (std::uint8_t cat = 1; cat <= 5; ++cat) {
    EXPECT_EQ(dc.length(cat), 3);
    EXPECT_EQ(dc.code(cat), 0b010 + (cat - 1)) << int(cat);
  }
  EXPECT_EQ(dc.length(6), 4);
  EXPECT_EQ(dc.code(6), 0b1110);
  EXPECT_EQ(dc.length(11), 9);
  EXPECT_EQ(dc.code(11), 0b111111110);
}

TEST(JpegHuffman, AcLumaEobAndZrlMatchAnnexK) {
  const HuffTable& ac = HuffTable::ac_luma();
  // The two structural symbols every JPEG text quotes: EOB = 1010 (4
  // bits), ZRL = 11111111001 (11 bits). Symbol 0x01 (run 0, size 1) = 00.
  EXPECT_EQ(ac.length(0x00), 4);
  EXPECT_EQ(ac.code(0x00), 0b1010);
  EXPECT_EQ(ac.length(0xF0), 11);
  EXPECT_EQ(ac.code(0xF0), 0b11111111001);
  EXPECT_EQ(ac.length(0x01), 2);
  EXPECT_EQ(ac.code(0x01), 0b00);
}

TEST(JpegHuffman, EncodeDecodeEveryTableSymbol) {
  for (const HuffTable* table : {&HuffTable::dc_luma(), &HuffTable::ac_luma(),
                                 &HuffTable::dc_chroma(), &HuffTable::ac_chroma()}) {
    BitWriter writer;
    std::vector<std::uint8_t> symbols(table->vals());
    for (const auto s : symbols) table->encode(writer, s);
    const std::vector<std::uint8_t> bytes = writer.finish();
    BitReader reader(bytes.data(), bytes.size());
    for (const auto s : symbols) EXPECT_EQ(table->decode(reader), s);
    EXPECT_FALSE(reader.overrun());
  }
}

TEST(JpegBits, WriterStuffsFFAndReaderUnstuffs) {
  BitWriter writer;
  writer.put(0xFF, 8);
  writer.put(0xA5, 8);
  const std::vector<std::uint8_t> bytes = writer.finish();
  ASSERT_EQ(bytes.size(), 3u);  // FF 00 A5
  EXPECT_EQ(bytes[0], 0xFF);
  EXPECT_EQ(bytes[1], 0x00);
  EXPECT_EQ(bytes[2], 0xA5);
  BitReader reader(bytes.data(), bytes.size());
  EXPECT_EQ(reader.get(8), 0xFFu);
  EXPECT_EQ(reader.get(8), 0xA5u);
  EXPECT_FALSE(reader.overrun());
}

TEST(JpegBits, RandomBitStringsRoundTrip) {
  Xoshiro256 rng(99);
  std::vector<std::pair<std::uint32_t, unsigned>> chunks;
  BitWriter writer;
  for (int i = 0; i < 500; ++i) {
    const unsigned count = 1 + static_cast<unsigned>(rng.below(16));
    const std::uint32_t bits = static_cast<std::uint32_t>(rng.below(1u << count));
    chunks.emplace_back(bits, count);
    writer.put(bits, count);
  }
  const std::vector<std::uint8_t> bytes = writer.finish();
  BitReader reader(bytes.data(), bytes.size());
  for (const auto& [bits, count] : chunks) EXPECT_EQ(reader.get(count), bits);
  EXPECT_FALSE(reader.overrun());
}

TEST(JpegEntropy, MagnitudeCategories) {
  EXPECT_EQ(magnitude_category(0), 0u);
  EXPECT_EQ(magnitude_category(1), 1u);
  EXPECT_EQ(magnitude_category(-1), 1u);
  EXPECT_EQ(magnitude_category(2), 2u);
  EXPECT_EQ(magnitude_category(-3), 2u);
  EXPECT_EQ(magnitude_category(255), 8u);
  EXPECT_EQ(magnitude_category(-256), 9u);
  EXPECT_EQ(magnitude_category(1023), 10u);
}

TEST(JpegEntropy, BlockRoundTripWithZrlEobAndDcChain) {
  // Hand-built stress block: DC, an AC run longer than 16 (forces ZRL),
  // negative values, and a tail of zeros (forces EOB).
  Block a{};
  a[0] = -17;  // DC
  a[1] = 5;
  a[40] = -1;  // in zigzag terms: a long zero run before this hits ZRL
  Block b{};
  b[0] = 200;  // large positive DC step after a negative one
  b[63] = 1;   // last zigzag position: no EOB emitted

  BitWriter writer;
  int dc_pred = 0;
  encode_block(writer, a, dc_pred, HuffTable::dc_luma(), HuffTable::ac_luma());
  encode_block(writer, b, dc_pred, HuffTable::dc_luma(), HuffTable::ac_luma());
  const std::vector<std::uint8_t> bytes = writer.finish();

  BitReader reader(bytes.data(), bytes.size());
  int dec_pred = 0;
  EXPECT_EQ(decode_block(reader, dec_pred, HuffTable::dc_luma(), HuffTable::ac_luma()), a);
  EXPECT_EQ(decode_block(reader, dec_pred, HuffTable::dc_luma(), HuffTable::ac_luma()), b);
  EXPECT_EQ(dec_pred, dc_pred);
  EXPECT_FALSE(reader.overrun());
}

TEST(JpegEntropy, RandomBlocksRoundTripAtFullLevelRange) {
  Xoshiro256 rng(4321);
  BitWriter writer;
  std::vector<Block> blocks;
  int dc_pred = 0;
  for (int n = 0; n < 64; ++n) {
    Block block{};
    const unsigned density = 1 + static_cast<unsigned>(rng.below(32));
    for (int i = 0; i < 64; ++i) {
      if (rng.below(64) < density) {
        block[i] = static_cast<int>(rng.below(2 * kMaxLevel + 1)) - kMaxLevel;
      }
    }
    encode_block(writer, block, dc_pred, HuffTable::dc_luma(), HuffTable::ac_luma());
    blocks.push_back(block);
  }
  const std::vector<std::uint8_t> bytes = writer.finish();
  BitReader reader(bytes.data(), bytes.size());
  int dec_pred = 0;
  for (const Block& want : blocks) {
    EXPECT_EQ(decode_block(reader, dec_pred, HuffTable::dc_luma(), HuffTable::ac_luma()),
              want);
  }
  EXPECT_FALSE(reader.overrun());
}

// ------------------------------------------------------------- quant/dct

TEST(JpegQuant, ReciprocalQuantizerIsAFaithfulRounder) {
  // Power-of-two steps make the 2^15 reciprocal exact, so the quantizer
  // must equal round-half-up division there; for every other step the
  // reciprocal is a faithful rounder (off by at most the reciprocal's own
  // half-ULP, i.e. the true quotient is within 0.5 + |c|/2^16 of q).
  for (const int step : {1, 2, 3, 5, 16, 99, 128, 255}) {
    std::array<int, 64> steps;
    steps.fill(step);
    const Quantizer quant(steps);
    const StagePlan plain{};
    const bool pow2 = (step & (step - 1)) == 0;
    for (int coef = -1100; coef <= 1100; coef += 7) {
      const int q = quant.quantize(coef, 0, plain);
      if (pow2) {
        const int expect = std::clamp(
            (coef < 0 ? -1 : 1) * ((std::abs(coef) + step / 2) / step), -kMaxLevel, kMaxLevel);
        EXPECT_EQ(q, expect) << "step " << step << " c " << coef;
      } else {
        const double quotient = static_cast<double>(coef) / step;
        EXPECT_NEAR(q, quotient, 0.5 + std::abs(coef) / 65536.0)
            << "step " << step << " c " << coef;
      }
      EXPECT_LE(std::abs(q), kMaxLevel);
    }
  }
}

TEST(JpegQuant, QualityScalingEndpoints) {
  // Quality 50 is the unscaled Annex-K table; 100 clamps every step to 1;
  // 1 saturates at 255 for the large base steps.
  EXPECT_EQ(scaled_quant_table(Component::kLuma, 50), base_quant_table(Component::kLuma));
  for (const int step : scaled_quant_table(Component::kLuma, 100)) EXPECT_EQ(step, 1);
  const auto q1 = scaled_quant_table(Component::kLuma, 1);
  EXPECT_EQ(q1[63], 255);
  for (const int step : q1) {
    EXPECT_GE(step, 1);
    EXPECT_LE(step, 255);
  }
}

TEST(JpegDct, PlainRoundTripIsNearLossless) {
  Xoshiro256 rng(77);
  const StagePlan plain{};
  int worst = 0;
  for (int n = 0; n < 50; ++n) {
    Block shifted;
    for (int i = 0; i < 64; ++i) shifted[i] = static_cast<int>(rng.below(256)) - 128;
    const Block back = idct(fdct(shifted, plain), plain);
    for (int i = 0; i < 64; ++i) worst = std::max(worst, std::abs(back[i] - shifted[i]));
  }
  // 256-scaled integer coefficients with per-pass rounding: the 2-D
  // roundtrip stays within a few LSBs of the input everywhere.
  EXPECT_LE(worst, 3);
}

TEST(JpegDct, ConstantBlockConcentratesInDc) {
  const StagePlan plain{};
  Block shifted;
  shifted.fill(55);
  const Block freq = fdct(shifted, plain);
  for (int i = 1; i < 64; ++i) EXPECT_EQ(freq[i], 0) << i;
  // DC gain of the orthonormal 2-D transform is 8x; the 256-scaled integer
  // coefficients (round(256/sqrt(8)) = 91) overshoot by ~1% per pass.
  EXPECT_NEAR(freq[0], 55 * 8, 10);
}

// ----------------------------------------------------------- mac routing

TEST(JpegMac, MulWideExactBackendComposesToExactProduct) {
  const auto exact = nn::shared_mac_backend("exact");
  Xoshiro256 rng(5);
  for (int n = 0; n < 2000; ++n) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng.below(1u << 16));
    const std::uint32_t b = static_cast<std::uint32_t>(rng.below(1u << 16));
    EXPECT_EQ(nn::mul_wide(*exact, a, b), std::uint64_t{a} * b);
    EXPECT_EQ(nn::mul_wide(*exact, a, b, /*swapped=*/true), std::uint64_t{a} * b);
  }
}

TEST(JpegMac, MulWideCountsOneLookupPerLimbPair) {
  const auto exact = nn::shared_mac_backend("exact");
  std::uint64_t lookups = 0;
  (void)nn::mul_wide(*exact, 0x1FF, 0x1FF, false, &lookups);  // 2 limbs x 2 limbs
  EXPECT_EQ(lookups, 4u);
  lookups = 0;
  (void)nn::mul_wide(*exact, 0xFF, 0xFF, false, &lookups);  // 1 limb x 1 limb
  EXPECT_EQ(lookups, 1u);
  lookups = 0;
  (void)nn::mul_wide(*exact, 0, 12345, false, &lookups);  // zero short-circuits
  EXPECT_EQ(lookups, 0u);
}

TEST(JpegMac, ExactBackendPipelineBitIdenticalToPlainInt) {
  const CodecPlan exact_plan = CodecPlan::uniform(nn::shared_mac_backend("exact"));
  const CodecPlan plain_plan{};
  for (const std::uint64_t seed : {1ull, 2ull}) {
    const apps::Image image = random_image(48, 40, seed);
    for (const int quality : {10, 50, 95}) {
      const auto exact_bytes = encode(image, quality, exact_plan);
      const auto plain_bytes = encode(image, quality, plain_plan);
      EXPECT_EQ(exact_bytes, plain_bytes) << "q" << quality << " seed " << seed;
      const Decoded via_exact = decode(exact_bytes, exact_plan);
      const Decoded via_plain = decode(exact_bytes, plain_plan);
      EXPECT_EQ(via_exact.image.pixels(), via_plain.image.pixels());
    }
  }
}

// -------------------------------------------------------------- roundtrip

TEST(JpegCodec, ExactRoundTripAcrossTheQualityRange) {
  const CodecPlan plan = CodecPlan::uniform(nn::shared_mac_backend("exact"));
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    // Odd sizes exercise the edge-replicated partial blocks.
    const apps::Image image = random_image(33 + seed % 3, 25 + seed % 5, seed);
    for (const int quality : {1, 10, 25, 50, 75, 90, 95, 100}) {
      const Quantizer quant(Component::kLuma, quality);
      const std::vector<Block> blocks = encode_blocks(image, quant, plan);
      const auto bytes = encode(image, quality, plan);
      const Decoded decoded = decode(bytes, plan);
      // The entropy layer is lossless: coefficients and DQT steps survive.
      EXPECT_EQ(decoded.blocks, blocks) << "q" << quality;
      EXPECT_EQ(decoded.steps, quant.steps());
      EXPECT_EQ(decoded.width, image.width());
      EXPECT_EQ(decoded.height, image.height());
      // The stream is a real JFIF file: SOI/EOI framing.
      ASSERT_GE(bytes.size(), 4u);
      EXPECT_EQ(bytes[0], 0xFF);
      EXPECT_EQ(bytes[1], 0xD8);
      EXPECT_EQ(bytes[bytes.size() - 2], 0xFF);
      EXPECT_EQ(bytes.back(), 0xD9);
    }
    // Quality 100 (all steps 1) on noise is near-lossless.
    const Decoded best = decode(encode(image, 100, plan), plan);
    EXPECT_GT(apps::psnr(image, best.image), 40.0);
  }
}

TEST(JpegCodec, ThreadCountDoesNotChangeTheStream) {
  const apps::Image image = random_image(96, 72, 21);
  const CodecPlan plan = CodecPlan::uniform(nn::shared_mac_backend("ca8"));
  EncodeStats s1, s4;
  const auto one = encode(image, 60, plan, 1, &s1);
  const auto four = encode(image, 60, plan, 4, &s4);
  EXPECT_EQ(one, four);
  EXPECT_EQ(s1.fdct_lookups, s4.fdct_lookups);
  EXPECT_EQ(s1.quant_lookups, s4.quant_lookups);
  EXPECT_EQ(decode(one, plan, 1).image.pixels(), decode(one, plan, 4).image.pixels());
}

TEST(JpegCodec, MalformedStreamsThrowNotCrash) {
  const CodecPlan plan{};
  EXPECT_THROW((void)decode({}, plan), std::runtime_error);
  EXPECT_THROW((void)decode({0x00, 0x01, 0x02}, plan), std::runtime_error);
  auto bytes = encode(random_image(16, 16, 3), 50, plan);
  bytes.resize(bytes.size() / 2);  // truncated mid-scan
  EXPECT_THROW((void)decode(bytes, plan), std::runtime_error);
}

TEST(JpegCodec, ExampleSceneAnchor) {
  // The examples/dct_compression.cpp configuration, anchored: exact
  // pipeline at quality 75 lands in a sane rate/quality region.
  const apps::Image scene = apps::make_test_scene(128, 128, 4242, 4.0);
  const CodecPlan plan = CodecPlan::uniform(nn::shared_mac_backend("exact"));
  const auto bytes = encode(scene, 75, plan);
  const Decoded decoded = decode(bytes, plan);
  const double db = apps::psnr(scene, decoded.image);
  EXPECT_GT(db, 30.0);
  EXPECT_LT(db, 45.0);
  const double bpp = bits_per_pixel(bytes.size(), scene.width(), scene.height());
  EXPECT_GT(bpp, 0.3);
  EXPECT_LT(bpp, 4.0);
}

// --------------------------------------------------------------- adaptive

TEST(JpegAdaptive, GovernorEscalatesOnHardViolationAndBillsSwaps) {
  const adapt::Ladder ladder = adapt::make_ladder({"cc8", "exact"});
  adapt::PolicyConfig policy;
  policy.slo = 0.01;
  policy.start_cheap = true;
  adapt::RungGovernor governor(ladder, policy, "test");
  EXPECT_EQ(governor.decide(0), 0u);
  governor.charge_macs(0, 100);
  // Hard violation: recompute required, rung escalated for the retry.
  EXPECT_TRUE(governor.observe(0, 0.5));
  EXPECT_EQ(governor.decide(0), ladder.top());
  governor.charge_macs(ladder.top(), 100);
  EXPECT_FALSE(governor.observe(0, 0.0));
  const adapt::Report report = governor.report(1);
  const auto& stats = report.layers.front();
  EXPECT_EQ(stats.recomputes, 1u);
  EXPECT_EQ(stats.swaps, 1u);  // the escalation moved the fabric
  EXPECT_EQ(stats.panels, 2u);
  EXPECT_EQ(report.total_macs, 200u);  // the rejected attempt stays billed
}

TEST(JpegAdaptive, StrictSloReproducesTheExactStream) {
  // An unreachable drift floor forces every stripe to the exact rung, so
  // the adaptive stream must equal the static exact encode byte for byte.
  const apps::Image image = random_image(48, 48, 31);
  const adapt::Ladder ladder = adapt::make_ladder({"cc8", "cas8", "exact"});
  AdaptiveOptions opts;
  opts.slo_psnr_db = 200.0;
  const AdaptiveResult result = encode_adaptive(image, 60, ladder, opts);
  const auto exact_bytes = encode(image, 60, CodecPlan{});
  EXPECT_EQ(result.bytes, exact_bytes);
  EXPECT_EQ(result.report.layers.front().worst_estimate, 0.0);
}

TEST(JpegAdaptive, DeterministicAndDecodable) {
  const apps::Image image = apps::make_test_scene(96, 64, 9);
  const adapt::Ladder ladder = adapt::make_ladder({"cc8", "cas8", "exact"});
  AdaptiveOptions opts;
  opts.slo_psnr_db = 36.0;
  opts.stripe_block_rows = 1;
  opts.policy.hold_windows = 2;
  const AdaptiveResult a = encode_adaptive(image, 60, ladder, opts);
  const AdaptiveResult b = encode_adaptive(image, 60, ladder, opts);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.report.total_macs, b.report.total_macs);
  const Decoded decoded = decode(a.bytes, CodecPlan{});
  EXPECT_EQ(decoded.width, image.width());
  EXPECT_GT(apps::psnr(image, decoded.image), 25.0);
  // The ledger saw every stripe and billed the shadow monitor.
  EXPECT_GT(a.report.layers.front().windows, 0u);
  EXPECT_GT(a.report.monitor_macs, 0u);
}

// ----------------------------------------------------------------- golden

TEST(JpegGolden, CorpusReplaysClean) {
  // Regenerate after intentional behavior changes with:
  //   build/tools/axjpeg golden --emit --path tests/golden/jpeg/corpus.golden
  const auto failure = replay_golden_corpus(std::string(AXJPEG_GOLDEN_DIR) +
                                            "/jpeg/corpus.golden");
  EXPECT_FALSE(failure.has_value()) << *failure;
}

TEST(JpegGolden, WriteReadRoundTrip) {
  const std::vector<GoldenEntry> entries = {
      {"blocks-96x64", 50, "exact", 123456, 789, 0.98765432101234567},
      {"rings-80x80", 90, "ca8", 1, 2, 1.0},
  };
  const std::string path = ::testing::TempDir() + "/corpus_roundtrip.golden";
  write_golden_corpus(entries, path);
  const std::vector<GoldenEntry> back = read_golden_corpus(path);
  ASSERT_EQ(back.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(back[i].image, entries[i].image);
    EXPECT_EQ(back[i].quality, entries[i].quality);
    EXPECT_EQ(back[i].backend, entries[i].backend);
    EXPECT_EQ(back[i].sse, entries[i].sse);
    EXPECT_EQ(back[i].bytes, entries[i].bytes);
    EXPECT_DOUBLE_EQ(back[i].ssim, entries[i].ssim);
  }
}

TEST(JpegGolden, SsimIsOneOnIdenticalImagesAndBelowOnDamagedOnes) {
  const apps::Image image = golden_corpus().front().image;
  EXPECT_DOUBLE_EQ(apps::ssim(image, image), 1.0);
  apps::Image damaged = image;
  for (unsigned x = 0; x < damaged.width(); ++x) damaged.at(x, 0) ^= 0x40;
  EXPECT_LT(apps::ssim(image, damaged), 1.0);
  EXPECT_GT(apps::ssim(image, damaged), 0.0);
}

}  // namespace
}  // namespace axmult::jpeg
