// Tests for the netlist utility passes (DCE, equivalence, statistics).
#include <gtest/gtest.h>

#include "fabric/transforms.hpp"
#include "multgen/generators.hpp"

namespace axmult::fabric {
namespace {

TEST(Sweep, RemovesUnobservableCells) {
  Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const std::uint64_t and_init = 0x8888888888888888ull;  // a & b on I0, I1
  const auto live = nl.add_lut6("live", and_init, {a, b, kNetGnd, kNetGnd, kNetGnd, kNetGnd});
  (void)nl.add_lut6("dead", and_init, {a, b, kNetGnd, kNetGnd, kNetGnd, kNetGnd});
  nl.add_output("y", live.o6);

  const auto swept = sweep_dead_cells(nl);
  EXPECT_EQ(swept.area().luts, 1u);
  EXPECT_TRUE(probably_equivalent(nl, swept, 64));
}

TEST(Sweep, KeepsEverythingInALiveDesign) {
  const auto nl = multgen::make_ca_netlist(8);
  const auto swept = sweep_dead_cells(nl);
  EXPECT_EQ(swept.area().luts, nl.area().luts);
  EXPECT_EQ(swept.area().carry4, nl.area().carry4);
  EXPECT_TRUE(probably_equivalent(nl, swept, 2048));
}

TEST(Sweep, TruncationFreesAlmostNothing) {
  // The paper's Mult(8,4) observation, proven structurally: even after
  // dead-cell sweeping, the truncated multiplier keeps nearly all logic
  // because the low columns feed the surviving carries.
  const auto full = multgen::make_vivado_speed_netlist(8).area().luts;
  const auto truncated = multgen::make_result_truncated_netlist(8, 4).area().luts;
  EXPECT_GE(truncated + 6, full);
  EXPECT_LE(truncated, full);
}

TEST(Sweep, TransitiveDeadConesAreRemoved) {
  Netlist nl;
  const auto a = nl.add_input("a");
  const std::uint64_t buf_init = 0xAAAAAAAAAAAAAAAAull;  // identity on I0
  const auto l1 = nl.add_lut6("l1", buf_init, {a, kNetGnd, kNetGnd, kNetGnd, kNetGnd, kNetGnd});
  const auto l2 = nl.add_lut6("l2", buf_init, {l1.o6, kNetGnd, kNetGnd, kNetGnd, kNetGnd,
                                               kNetGnd});
  (void)l2;  // l1 -> l2, neither observable
  const auto keep = nl.add_lut6("keep", buf_init, {a, kNetGnd, kNetGnd, kNetGnd, kNetGnd,
                                                   kNetGnd});
  nl.add_output("y", keep.o6);
  EXPECT_EQ(sweep_dead_cells(nl).area().luts, 1u);
}

TEST(Equivalence, DetectsFunctionalDifferences) {
  const auto ca = multgen::make_ca_netlist(8);
  const auto acc = multgen::make_vivado_speed_netlist(8);
  EXPECT_FALSE(probably_equivalent(ca, acc, 4096));  // Ca errs on 5482/65536
  EXPECT_TRUE(probably_equivalent(ca, ca, 256));
}

TEST(Equivalence, RejectsShapeMismatches) {
  EXPECT_FALSE(probably_equivalent(multgen::make_ca_netlist(4), multgen::make_ca_netlist(8)));
  EXPECT_THROW((void)probably_equivalent(
                   multgen::make_pipelined_netlist(8, mult::Summation::kAccurate),
                   multgen::make_pipelined_netlist(8, mult::Summation::kAccurate)),
               std::invalid_argument);
}

TEST(Histogram, GroupsByInstancePrefix) {
  const auto hist = cell_histogram(multgen::make_ca_netlist(8));
  // Four sub-multipliers (u.ll/u.hl/u.lh/u.hh) plus the summation (u.sum)
  // all share the "u" prefix.
  ASSERT_TRUE(hist.count("u"));
  EXPECT_EQ(hist.at("u"), multgen::make_ca_netlist(8).cells().size());
}

}  // namespace
}  // namespace axmult::fabric
