// Multi-process evaluation farm (dse/farm.hpp): bit-identical fronts at
// any worker count, crash recovery by requeue, and cache-driven resume.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dse/cache.hpp"
#include "dse/farm.hpp"
#include "dse/search.hpp"
#include "dse/space.hpp"

namespace {

using namespace axmult;

std::string temp_path(const char* name) {
  return "/tmp/axmult_farm_test_" + std::to_string(::getpid()) + "_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

dse::SearchOptions surrogate_search(const char* tag, unsigned farm_workers) {
  dse::SearchOptions search;
  search.strategy = dse::Strategy::kSurrogate;
  search.budget = 30;
  search.population = 10;
  search.generations = 2;
  search.proposals = 48;
  search.farm_workers = farm_workers;
  search.cache_path = temp_path(tag) + "_cache.jsonl";
  search.front_path = temp_path(tag) + "_front.json";
  return search;
}

void cleanup(const dse::SearchOptions& search) {
  std::remove(search.cache_path.c_str());
  std::remove(search.front_path.c_str());
}

TEST(EvalFarm, FrontFileIsByteIdenticalAtAnyWorkerCount) {
  const dse::SpaceSpec space = dse::make_space("smoke8");
  // Worker counts 0 (in-process threads), 1, 2 and 8, each with its own
  // cache file so no run can feed another through hits.
  const dse::SearchOptions baseline = surrogate_search("w0", 0);
  const dse::SearchResult base_result = dse::run_search(space, baseline);
  const std::string base_front = slurp(baseline.front_path);
  ASSERT_FALSE(base_front.empty());
  for (const unsigned workers : {1u, 2u, 8u}) {
    const std::string tag = "w" + std::to_string(workers);
    const dse::SearchOptions search = surrogate_search(tag.c_str(), workers);
    const dse::SearchResult result = dse::run_search(space, search);
    EXPECT_EQ(base_front, slurp(search.front_path)) << workers << " workers";
    EXPECT_EQ(base_result.evaluations, result.evaluations) << workers << " workers";
    EXPECT_EQ(base_result.cache_hits, result.cache_hits) << workers << " workers";
    cleanup(search);
  }
  cleanup(baseline);
}

TEST(EvalFarm, CrashedWorkerGetsRequeuedAndTheBatchStillCompletes) {
  const dse::SpaceSpec space = dse::make_space("smoke8");
  const std::string cache_path = temp_path("crash") + "_cache.jsonl";
  std::remove(cache_path.c_str());
  const std::vector<dse::Config> configs = dse::enumerate(space);
  ASSERT_GE(configs.size(), 8u);

  dse::FarmOptions opts;
  opts.workers = 2;
  opts.cache_path = cache_path;
  opts.worker_exit_after = 2;  // each worker dies abruptly on its 3rd eval
  dse::EvalFarm farm(opts);
  ASSERT_EQ(2u, farm.alive_workers());
  dse::EvalCache cache(cache_path);
  const std::vector<dse::Objectives> farmed = farm.evaluate_batch(configs, cache);
  // Both workers died (> 2 evals each pending), their keys were requeued,
  // and the parent finished inline — with every result still correct.
  EXPECT_EQ(0u, farm.alive_workers());
  EXPECT_GT(farm.requeues(), 0u);
  EXPECT_GT(farm.inline_evals(), 0u);
  ASSERT_EQ(configs.size(), farmed.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const dse::Objectives direct = dse::evaluate(configs[i]);
    EXPECT_EQ(direct.luts, farmed[i].luts) << i;
    EXPECT_DOUBLE_EQ(direct.mre, farmed[i].mre) << i;
  }
  std::remove(cache_path.c_str());
}

TEST(EvalFarm, ResumedSearchReplaysThroughCacheHits) {
  const dse::SpaceSpec space = dse::make_space("smoke8");
  dse::SearchOptions search = surrogate_search("resume", 2);
  search.checkpoint_path = temp_path("resume") + "_ckpt.json";
  const dse::SearchResult first = dse::run_search(space, search);
  const std::string first_front = slurp(search.front_path);
  EXPECT_EQ(0u, first.cache_hits);

  // Replay from the checkpoint over the populated cache: identical front
  // points, and every evaluation served from the cache. Only the meta line
  // may differ (it honestly records the resumed run's cache-hit counter).
  dse::SpaceSpec resumed_space;
  dse::SearchOptions resumed;
  dse::load_checkpoint(search.checkpoint_path, resumed_space, resumed);
  resumed.farm_workers = 2;
  const dse::SearchResult second = dse::run_search(resumed_space, resumed);
  const auto body = [](const std::string& s) { return s.substr(s.find('\n') + 1); };
  EXPECT_EQ(body(first_front), body(slurp(resumed.front_path)));
  EXPECT_EQ(first.evaluations, second.evaluations);
  EXPECT_EQ(second.evaluations, second.cache_hits) << "resume must be 100% cache hits";
  std::remove(search.checkpoint_path.c_str());
  cleanup(search);
}

}  // namespace
