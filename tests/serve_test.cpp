// axserve daemon tests: frame transport edge cases, protocol codecs,
// single-flight coalescing (N identical concurrent requests -> exactly one
// dse::evaluate), deadline expiry, explicit backpressure, and the
// served-vs-direct differential (src/check/serve_diff.hpp).
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "check/serve_diff.hpp"
#include "dse/cache.hpp"
#include "dse/farm.hpp"
#include "dse/space.hpp"
#include "serve/client.hpp"
#include "serve/loadgen.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace axmult;

std::string test_socket(const char* name) {
  return "/tmp/axserve_test_" + std::to_string(::getpid()) + "_" + name + ".sock";
}

/// Fast evaluation settings so characterize requests finish in
/// milliseconds (analytic metrics over the 8x8 operand space).
dse::EvalOptions fast_eval() {
  dse::EvalOptions eval;
  eval.analytic = true;
  eval.samples = 1 << 10;
  return eval;
}

serve::ServerOptions base_options(const char* name) {
  serve::ServerOptions opts;
  opts.socket_path = test_socket(name);
  opts.workers = 2;
  opts.eval = fast_eval();
  return opts;
}

/// An RAII started server: stop() on scope exit keeps failing tests from
/// leaking daemon threads into later tests.
struct ScopedServer {
  explicit ScopedServer(serve::ServerOptions opts) : server(std::move(opts)) {
    server.start();
  }
  ~ScopedServer() { server.stop(); }
  serve::Server server;
};

TEST(ServeProtocol, FrameRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  const std::string payload = "{\"op\": \"ping\", \"id\": 7}";
  ASSERT_TRUE(serve::write_frame(fds[0], payload));
  std::string got;
  EXPECT_EQ(serve::FrameStatus::kOk, serve::read_frame(fds[1], got));
  EXPECT_EQ(payload, got);

  // Clean close before a header -> EOF, not an error.
  ::close(fds[0]);
  EXPECT_EQ(serve::FrameStatus::kEof, serve::read_frame(fds[1], got));
  ::close(fds[1]);
}

TEST(ServeProtocol, TruncatedAndOversizedFrames) {
  int fds[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  // A header promising 100 bytes followed by a close mid-frame.
  const unsigned char header[4] = {100, 0, 0, 0};
  ASSERT_EQ(4, ::send(fds[0], header, 4, 0));
  ASSERT_EQ(3, ::send(fds[0], "abc", 3, 0));
  ::close(fds[0]);
  std::string got;
  EXPECT_EQ(serve::FrameStatus::kTruncated, serve::read_frame(fds[1], got));
  ::close(fds[1]);

  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  // A header announcing more than the ceiling is rejected without reading.
  const unsigned char huge[4] = {0xFF, 0xFF, 0xFF, 0x7F};
  ASSERT_EQ(4, ::send(fds[0], huge, 4, 0));
  EXPECT_EQ(serve::FrameStatus::kOversized, serve::read_frame(fds[1], got));
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServeProtocol, HexCodecsRoundTripExactly) {
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 256; ++i) bytes.push_back(static_cast<std::uint8_t>(i));
  std::vector<std::uint8_t> bytes_back;
  ASSERT_TRUE(serve::hex_decode(serve::hex_encode(bytes), bytes_back));
  EXPECT_EQ(bytes, bytes_back);
  EXPECT_FALSE(serve::hex_decode("abc", bytes_back));   // odd length
  EXPECT_FALSE(serve::hex_decode("zz", bytes_back));    // non-hex

  const std::vector<std::int64_t> words = {0, -1, INT64_MIN, INT64_MAX, 123456789012345};
  std::vector<std::int64_t> words_back;
  ASSERT_TRUE(serve::hex_decode_i64(serve::hex_encode_i64(words), words_back));
  EXPECT_EQ(words, words_back);
}

TEST(ServeProtocol, RequestCodecRoundTrip) {
  serve::Request req;
  req.op = serve::Op::kInfer;
  req.id = 42;
  req.backend = "ca8";
  req.swap = true;
  req.m = 2;
  req.k = 3;
  req.n = 2;
  req.a = {1, 2, 3, 4, 5, 6};
  req.b = {7, 8, 9, 10, 11, 12};
  req.deadline_ms = 250.0;
  std::string error;
  const auto back = serve::parse_request(serve::encode_request(req), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(serve::Op::kInfer, back->op);
  EXPECT_EQ(42u, back->id);
  EXPECT_EQ("ca8", back->backend);
  EXPECT_TRUE(back->swap);
  EXPECT_EQ(req.a, back->a);
  EXPECT_EQ(req.b, back->b);
  EXPECT_DOUBLE_EQ(250.0, back->deadline_ms);

  EXPECT_FALSE(serve::parse_request("not json at all", &error).has_value());
  EXPECT_FALSE(serve::parse_request("{\"op\": \"bogus\", \"id\": 1}", &error).has_value());
  // Panel size disagreeing with the declared shape must not parse.
  EXPECT_FALSE(serve::parse_request("{\"op\": \"infer\", \"id\": 1, \"backend\": \"ca8\", "
                                    "\"m\": 2, \"k\": 2, \"n\": 2, \"a\": \"00\", "
                                    "\"b\": \"00010203\"}",
                                    &error)
                   .has_value());
}

TEST(ServeServer, GarbageFramesGetErrorRepliesNotCrashes) {
  ScopedServer scoped(base_options("garbage"));
  const std::string& path = scoped.server.socket_path();

  const auto fd = serve::connect_with_retry(path, 2000);
  ASSERT_TRUE(fd.has_value());
  const std::vector<std::string> garbage = {
      "",                                   // empty payload
      "not json",                           // unparseable
      "{\"op\": \"bogus\", \"id\": 3}",     // unknown op
      "{\"op\": \"characterize\"}",          // missing key
      "{\"op\": \"infer\", \"id\": 5, \"backend\": \"ca8\", \"m\": 1, \"k\": 1, "
      "\"n\": 1, \"a\": \"0z\", \"b\": \"00\"}",  // bad hex
  };
  for (const std::string& payload : garbage) {
    ASSERT_TRUE(serve::write_frame(*fd, payload));
    std::string raw;
    ASSERT_EQ(serve::FrameStatus::kOk, serve::read_frame(*fd, raw)) << payload;
    const auto reply = serve::parse_reply(raw);
    ASSERT_TRUE(reply.has_value()) << raw;
    EXPECT_FALSE(reply->ok) << payload;
    EXPECT_FALSE(reply->error.empty()) << payload;
  }
  ::close(*fd);

  // The daemon survived every malformed frame: a fresh client still works.
  serve::Client client(path);
  EXPECT_TRUE(client.ping());
  EXPECT_GE(scoped.server.stats().parse_errors, garbage.size() - 1);
}

TEST(ServeServer, OversizedHeaderClosesOnlyThatConnection) {
  ScopedServer scoped(base_options("oversized"));
  const auto fd = serve::connect_with_retry(scoped.server.socket_path(), 2000);
  ASSERT_TRUE(fd.has_value());
  const unsigned char huge[4] = {0xFF, 0xFF, 0xFF, 0x7F};
  ASSERT_EQ(4, ::send(*fd, huge, 4, MSG_NOSIGNAL));
  std::string raw;
  // Server sends one "oversized" error then closes; tolerate either a
  // reply or an immediate close depending on scheduling.
  const serve::FrameStatus status = serve::read_frame(*fd, raw);
  if (status == serve::FrameStatus::kOk) {
    const auto reply = serve::parse_reply(raw);
    ASSERT_TRUE(reply.has_value());
    EXPECT_FALSE(reply->ok);
  }
  ::close(*fd);

  serve::Client client(scoped.server.socket_path());
  EXPECT_TRUE(client.ping());
}

TEST(ServeServer, IdenticalConcurrentRequestsCoalesceToOneEvaluation) {
  auto opts = base_options("coalesce");
  opts.workers = 4;
  ScopedServer scoped(opts);
  const std::string key = dse::config_key(dse::paper_ca(8));

  constexpr unsigned kClients = 8;
  std::atomic<unsigned> ok{0};
  std::vector<std::thread> threads;
  for (unsigned i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      serve::Client client(scoped.server.socket_path());
      const serve::Reply reply = client.characterize(key);
      if (reply.ok && reply.has_objectives) ++ok;
    });
  }
  for (auto& t : threads) t.join();

  const serve::ServerStats stats = scoped.server.stats();
  EXPECT_EQ(kClients, ok.load());
  // The single-flight contract: exactly ONE dse::evaluate ran; every other
  // request either joined the flight or hit the cache the flight filled.
  EXPECT_EQ(1u, stats.evaluations);
  EXPECT_EQ(kClients - 1, stats.cache_hits + stats.coalesced);
}

TEST(ServeServer, CoalescedRepliesAreBitIdentical) {
  ScopedServer scoped(base_options("identical"));
  const std::string key = dse::config_key(dse::paper_cc(8));

  constexpr unsigned kClients = 6;
  std::vector<std::string> serialized(kClients);
  std::vector<std::thread> threads;
  for (unsigned i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      serve::Client client(scoped.server.socket_path());
      const serve::Reply reply = client.characterize(key);
      if (reply.ok && reply.has_objectives) {
        serialized[i] = dse::EvalCache::serialize_objectives(reply.objectives);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (unsigned i = 0; i < kClients; ++i) {
    ASSERT_FALSE(serialized[i].empty()) << "client " << i << " got no objectives";
    EXPECT_EQ(serialized[0], serialized[i]) << "client " << i;
  }
}

TEST(ServeServer, ZeroDeadlineExpiresWithoutEvaluation) {
  ScopedServer scoped(base_options("deadline"));
  serve::Client client(scoped.server.socket_path());
  const std::string key = dse::config_key(dse::paper_ca(8));
  const serve::Reply reply = client.characterize(key, /*deadline_ms=*/0.0);
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ("deadline", reply.error);
  const serve::ServerStats stats = scoped.server.stats();
  EXPECT_GE(stats.deadline_expired, 1u);
  // The expired request never paid for an evaluation.
  EXPECT_EQ(0u, stats.evaluations);
}

TEST(ServeServer, FullQueuesAnswerRetryInsteadOfBlocking) {
  auto opts = base_options("backpressure");
  opts.max_pending_characterize = 0;
  opts.max_pending_infer_rows = 0;
  ScopedServer scoped(opts);
  serve::Client client(scoped.server.socket_path());

  const serve::Reply ch = client.characterize(dse::config_key(dse::paper_ca(8)));
  EXPECT_FALSE(ch.ok);
  EXPECT_TRUE(ch.retry);

  const std::vector<std::uint8_t> a(4, 1), b(4, 2);
  const serve::Reply inf = client.infer("ca8", false, 2, 2, 2, a, b);
  EXPECT_FALSE(inf.ok);
  EXPECT_TRUE(inf.retry);

  EXPECT_GE(scoped.server.stats().retries, 2u);
}

TEST(ServeServer, UnknownBackendAndNarrowOperandsAreErrors) {
  ScopedServer scoped(base_options("badinfer"));
  serve::Client client(scoped.server.socket_path());

  const std::vector<std::uint8_t> a(4, 1), b(4, 2);
  const serve::Reply unknown = client.infer("definitely_not_a_backend", false, 2, 2, 2, a, b);
  EXPECT_FALSE(unknown.ok);
  EXPECT_FALSE(unknown.retry);
  EXPECT_FALSE(unknown.error.empty());

  // approx4 tabulates a 4-bit operand space; 8-bit operands must be
  // rejected, not read out of the table's bounds.
  const std::vector<std::uint8_t> wide_a(4, 200), wide_b(4, 3);
  const serve::Reply narrow = client.infer("approx4", false, 2, 2, 2, wide_a, wide_b);
  EXPECT_FALSE(narrow.ok);
  EXPECT_FALSE(narrow.error.empty());
}

TEST(ServeServer, ShutdownRequestUnblocksWait) {
  ScopedServer scoped(base_options("shutdown"));
  std::thread waiter([&] { scoped.server.wait(); });
  {
    serve::Client client(scoped.server.socket_path());
    EXPECT_TRUE(client.shutdown_server());
  }
  waiter.join();  // wait() returned because the client asked for shutdown
  scoped.server.stop();
  EXPECT_FALSE(scoped.server.running());
}

TEST(ServeDiff, ServedResultsMatchDirectCallsBitExactly) {
  check::ServeDiffOptions opts;
  opts.eval = fast_eval();
  opts.clients = 4;
  opts.backends = {"exact", "ca8"};
  opts.keys = serve::default_key_pool();
  opts.socket_path = test_socket("diff");
  const check::ServeDiffReport report = check::serve_diff(opts);
  EXPECT_EQ(opts.keys.size(), report.characterize_checked);
  EXPECT_EQ(opts.backends.size() * opts.clients, report.infer_requests_checked);
  for (const auto& f : report.failures) ADD_FAILURE() << f;
}

TEST(ServeLoadgen, ShortClosedLoopRunSustainsConcurrentClients) {
  auto opts = base_options("loadgen");
  opts.workers = 2;
  ScopedServer scoped(opts);

  serve::LoadgenOptions lg;
  lg.socket_path = scoped.server.socket_path();
  lg.clients = 8;
  lg.duration_s = 0.5;
  lg.infer_m = 4;
  lg.infer_k = 16;
  lg.infer_n = 8;
  const serve::LoadgenReport report = serve::run_loadgen(lg);
  EXPECT_GT(report.requests, 0u);
  EXPECT_GT(report.rps, 0.0);
  EXPECT_EQ(0u, report.errors);
  EXPECT_GT(report.ok, 0u);
  const std::string json = serve::loadgen_json(lg, report, "\"git_sha\": \"test\"");
  EXPECT_NE(std::string::npos, json.find("\"rps\""));
  EXPECT_NE(std::string::npos, json.find("\"git_sha\": \"test\""));
}

TEST(ServeBatch, EvaluateBatchAnswersEveryKeyExactlyOnce) {
  ScopedServer scoped(base_options("batch"));
  const std::vector<std::string> keys = {
      dse::config_key(dse::paper_ca(8)),
      dse::config_key(dse::paper_cc(8)),
      dse::config_key(dse::paper_ca(8)),  // duplicate key: still one reply per slot
  };
  serve::Client client(scoped.server.socket_path());
  const std::vector<serve::Reply> replies = client.evaluate_batch(keys);
  ASSERT_EQ(keys.size(), replies.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(replies[i].ok) << i << ": " << replies[i].error;
    EXPECT_TRUE(replies[i].has_objectives) << i;
    EXPECT_EQ(keys[i], replies[i].key) << i;
    EXPECT_EQ(i, replies[i].index);
    EXPECT_EQ(keys.size(), replies[i].total);
  }
  // Duplicate slots carry bit-identical objective vectors.
  EXPECT_EQ(dse::EvalCache::serialize_objectives(replies[0].objectives),
            dse::EvalCache::serialize_objectives(replies[2].objectives));
  // Served values match a direct evaluation under the same options.
  const dse::Objectives direct = dse::evaluate(dse::paper_ca(8), fast_eval());
  EXPECT_EQ(dse::EvalCache::serialize_objectives(direct),
            dse::EvalCache::serialize_objectives(replies[0].objectives));
  const serve::ServerStats stats = scoped.server.stats();
  EXPECT_EQ(1u, stats.batch_requests);
  EXPECT_EQ(keys.size(), stats.batch_keys);
}

TEST(ServeBatch, MalformedKeyFailsOnlyItsSlot) {
  ScopedServer scoped(base_options("batch_err"));
  const std::vector<std::string> keys = {dse::config_key(dse::paper_ca(8)), "not-a-config-key"};
  serve::Client client(scoped.server.socket_path());
  const std::vector<serve::Reply> replies = client.evaluate_batch(keys);
  ASSERT_EQ(2u, replies.size());
  EXPECT_TRUE(replies[0].ok);
  EXPECT_FALSE(replies[1].ok);
  EXPECT_FALSE(replies[1].error.empty());
  EXPECT_EQ("not-a-config-key", replies[1].key);
}

TEST(ServeBatch, FarmAttachModeDrainsABatchThroughTheDaemon) {
  // dse::EvalFarm in attach mode: the daemon's queue is the worker pool.
  ScopedServer scoped(base_options("farm_attach"));
  const dse::SpaceSpec space = dse::make_space("smoke8");
  std::vector<dse::Config> configs = dse::enumerate(space);
  configs.resize(std::min<std::size_t>(configs.size(), 6));

  dse::FarmOptions fopts;
  fopts.attach_socket = scoped.server.socket_path();
  fopts.eval = fast_eval();
  dse::EvalFarm farm(fopts);
  ASSERT_EQ(1u, farm.alive_workers());
  dse::EvalCache cache;  // in-memory parent cache
  std::uint64_t hits = 0;
  const std::vector<dse::Objectives> farmed = farm.evaluate_batch(configs, cache, &hits);
  ASSERT_EQ(configs.size(), farmed.size());
  EXPECT_EQ(0u, hits);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const dse::Objectives direct = dse::evaluate(configs[i], fast_eval());
    EXPECT_EQ(dse::EvalCache::serialize_objectives(direct),
              dse::EvalCache::serialize_objectives(farmed[i]))
        << i;
  }
  // A second pass is all parent-side cache hits; no new daemon work.
  const serve::ServerStats before = scoped.server.stats();
  hits = 0;
  (void)farm.evaluate_batch(configs, cache, &hits);
  EXPECT_EQ(configs.size(), hits);
  EXPECT_EQ(before.evaluations, scoped.server.stats().evaluations);
}

}  // namespace
