// Validates the recursive composition (Section 4) against the paper's
// Table 5 anchors and against structural invariants.
#include <gtest/gtest.h>

#include "error/metrics.hpp"
#include "mult/recursive.hpp"

namespace axmult::mult {
namespace {

using error::characterize_exhaustive;

TEST(Recursive, AccurateElementaryYieldsExactProduct) {
  // Property: recursion with exact sub-multipliers and accurate summation
  // is the exact multiplier, at every width.
  for (unsigned w : {4u, 8u, 16u}) {
    RecursiveMultiplier m(w, Elementary::kAccurate4x4, Summation::kAccurate);
    for (std::uint64_t a = 0; a < (1u << w); a += (w == 4 ? 1 : 37)) {
      for (std::uint64_t b = 0; b < (1u << w); b += (w == 4 ? 1 : 41)) {
        ASSERT_EQ(m.multiply(a, b), a * b) << w << ": " << a << "*" << b;
      }
    }
  }
}

TEST(Recursive, Accurate2x2TreeIsExact) {
  RecursiveMultiplier m(8, Elementary::kAccurate2x2, Summation::kAccurate);
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) ASSERT_EQ(m.multiply(a, b), a * b);
  }
}

TEST(Recursive, Ca8MatchesTable5) {
  // Table 5, column Ca: max 2312, avg 54.1875, rel 0.002917,
  // occurrences 5482, max occurrences 14.
  const auto m = make_ca(8);
  const auto r = characterize_exhaustive(*m);
  EXPECT_EQ(r.max_error, 2312u);
  EXPECT_NEAR(r.avg_error, 54.1875, 1e-9);
  EXPECT_NEAR(r.avg_relative_error, 0.002917, 5e-6);
  EXPECT_EQ(r.occurrences, 5482u);
  EXPECT_EQ(r.max_error_occurrences, 14u);
}

TEST(Recursive, Kulkarni8MatchesTable5) {
  // Table 5, column K [6]: all five values are closed-form.
  const auto m = make_kulkarni(8);
  const auto r = characterize_exhaustive(*m);
  EXPECT_EQ(r.max_error, 14450u);
  EXPECT_NEAR(r.avg_error, 903.125, 1e-9);
  EXPECT_NEAR(r.avg_relative_error, 0.032549, 5e-6);
  EXPECT_EQ(r.occurrences, 30625u);
  EXPECT_EQ(r.max_error_occurrences, 1u);
}

TEST(Recursive, RehmanW8MatchesTable5) {
  // Table 5, column W [19]: max 7225 = 85^2, avg 1354.687, rel 0.1438777,
  // occurrences 53375, max occurrences 31.
  const auto m = make_rehman_w(8);
  const auto r = characterize_exhaustive(*m);
  EXPECT_EQ(r.max_error, 7225u);
  EXPECT_NEAR(r.avg_error, 1354.6875, 1e-9);
  // Paper reports 0.1438777; with the standard mean |err|/exact over all
  // inputs this architecture measures 0.05975 (see EXPERIMENTS.md — the
  // four exactly-matching integer anchors identify the architecture, the
  // published relative figure appears to use a different convention).
  EXPECT_NEAR(r.avg_relative_error, 0.059746, 5e-6);
  EXPECT_EQ(r.occurrences, 53375u);
  EXPECT_EQ(r.max_error_occurrences, 31u);
}

TEST(Recursive, Mult84MatchesTable5) {
  // Table 5, column Mult(8,4): max 15, avg 6.5, rel 0.0037, max occ 2048.
  const auto m = make_result_truncated(8, 4);
  const auto r = characterize_exhaustive(*m);
  EXPECT_EQ(r.max_error, 15u);
  EXPECT_NEAR(r.avg_error, 6.5, 0.2);
  EXPECT_NEAR(r.avg_relative_error, 0.0037, 5e-4);
  EXPECT_EQ(r.max_error_occurrences, 2048u);
}

TEST(Recursive, Cc8MatchesTable5) {
  // Table 5, column Cc: max 8288, avg 1592.265, rel 0.129390,
  // occurrences 52731, max occurrences 1.
  const auto m = make_cc(8);
  const auto r = characterize_exhaustive(*m);
  EXPECT_EQ(r.max_error, 8288u);
  EXPECT_NEAR(r.avg_error, 1592.265, 0.01);
  EXPECT_NEAR(r.avg_relative_error, 0.129390, 5e-6);
  EXPECT_EQ(r.occurrences, 52731u);
  EXPECT_EQ(r.max_error_occurrences, 1u);
}

TEST(Recursive, ErrorsAreOneSidedForAccurateSummation) {
  // Every approximation in Ca/K/W only ever under-approximates, so the
  // composed product can never exceed the exact one.
  for (const auto& m : {make_ca(8), make_kulkarni(8), make_rehman_w(8)}) {
    for (std::uint64_t a = 0; a < 256; ++a) {
      for (std::uint64_t b = 0; b < 256; ++b) {
        ASSERT_LE(m->multiply(a, b), a * b) << m->name();
      }
    }
  }
}

TEST(Recursive, CcNeverExceedsExactProduct) {
  const auto m = make_cc(8);
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) ASSERT_LE(m->multiply(a, b), a * b);
  }
}

TEST(Recursive, SwapIsAnInvolutionOnMetrics) {
  // Swapping the operand roles permutes the input space, so aggregate
  // error statistics under a uniform distribution are identical.
  const auto ca = make_ca(8);
  const auto cas = make_cas(8);
  const auto r1 = characterize_exhaustive(*ca);
  const auto r2 = characterize_exhaustive(*cas);
  EXPECT_EQ(r1.max_error, r2.max_error);
  EXPECT_EQ(r1.occurrences, r2.occurrences);
  EXPECT_NEAR(r1.avg_error, r2.avg_error, 1e-9);
}

TEST(Recursive, SixteenBitSampledSanity) {
  // 2^32 inputs cannot be enumerated here; sampled metrics must still obey
  // the structural bounds (one-sided error, max error below the bound).
  const auto ca = make_ca(16);
  const auto cc = make_cc(16);
  const auto rca = error::characterize_sampled(*ca, 200000);
  const auto rcc = error::characterize_sampled(*cc, 200000);
  // Ca 16x16 error bound: 8 * sum of sub-multiplier weights. Each 8x8 Ca
  // errs at most 2312; the 16x16 composition has weights 1,256,256,65536.
  EXPECT_LE(rca.max_error, 2312ull * (1 + 256 + 256 + 65536));
  EXPECT_GT(rca.occurrences, 0u);
  EXPECT_LT(rca.avg_relative_error, 0.01);   // Ca stays accurate
  EXPECT_GT(rcc.avg_relative_error, 0.05);   // Cc trades accuracy away
  EXPECT_LT(rcc.avg_relative_error, 0.25);
}

TEST(Recursive, RejectsInvalidWidths) {
  EXPECT_THROW(RecursiveMultiplier(6, Elementary::kApprox4x4, Summation::kAccurate),
               std::invalid_argument);
  EXPECT_THROW(RecursiveMultiplier(2, Elementary::kApprox4x4, Summation::kAccurate),
               std::invalid_argument);
}

TEST(Recursive, NamesFollowPaperConventions) {
  EXPECT_EQ(make_ca(8)->name(), "Ca_8x8");
  EXPECT_EQ(make_cc(16)->name(), "Cc_16x16");
  EXPECT_EQ(make_cas(8)->name(), "Ca_8x8s");
  EXPECT_EQ(make_result_truncated(8, 4)->name(), "Mult(8,4)");
}

}  // namespace
}  // namespace axmult::mult
