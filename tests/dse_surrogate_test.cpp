// Surrogate screening layer (dse/surrogate.hpp): feature extraction,
// ridge-model behavior, analytic seeding, and the determinism of the
// propose/confirm loop that the farm tests build on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "analysis/pareto.hpp"
#include "dse/evaluate.hpp"
#include "dse/search.hpp"
#include "dse/space.hpp"
#include "dse/surrogate.hpp"

namespace {

using namespace axmult;

dse::Config ca8() { return dse::paper_ca(8); }

TEST(SurrogateFeatures, EncodeTheConfigFieldsDeterministically) {
  const dse::Config c = ca8();
  const dse::FeatureVector f = dse::extract_features(c);
  EXPECT_DOUBLE_EQ(1.0, f[0]);                 // bias
  EXPECT_DOUBLE_EQ(3.0, f[1]);                 // log2(8)
  EXPECT_DOUBLE_EQ(1.0, f[8]);                 // all levels accurate in Ca
  EXPECT_DOUBLE_EQ(0.0, f[9]);
  EXPECT_DOUBLE_EQ(1.0, f[11]);                // top level accurate
  EXPECT_DOUBLE_EQ(0.0, f[13]);                // no truncation
  EXPECT_DOUBLE_EQ(0.0, f[17]);                // no flips
  EXPECT_EQ(f, dse::extract_features(c));      // pure function
}

TEST(SurrogateFeatures, FlipMassWeighsSignificance) {
  // Flips only survive canonicalization on the perturbed leaf.
  dse::Config c = ca8();
  c.leaf = dse::Config::Leaf::kPerturbed4x2Pair;
  c.flips.push_back({5, 3});  // output bit 5: 2^5/64 = 0.5
  const dse::FeatureVector f = dse::extract_features(c);
  EXPECT_DOUBLE_EQ(1.0, f[17]);
  EXPECT_DOUBLE_EQ(0.5, f[18]);
}

TEST(SurrogateModel, UnfittedPredictsZeroAndFitRecoversOrdering) {
  dse::SpaceSpec space = dse::make_space("smoke8");
  dse::SurrogateModel model(/*analytic_seeding=*/false);
  EXPECT_FALSE(model.fitted());
  EXPECT_DOUBLE_EQ(0.0, model.predict(ca8(), dse::SurrogateTarget::kLuts));

  // Train on a batch of real evaluations; the fitted model must broadly
  // track the real LUT spread (monotone agreement, not exact values).
  const std::vector<dse::Config> configs = dse::enumerate(space);
  dse::EvalOptions eval;
  std::vector<double> luts;
  for (const dse::Config& c : configs) {
    const dse::Objectives obj = dse::evaluate(c, eval);
    model.observe(c, obj);
    luts.push_back(static_cast<double>(obj.luts));
  }
  model.fit();
  ASSERT_TRUE(model.fitted());
  EXPECT_EQ(configs.size(), model.observations());
  double worst = 0.0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const double pred = model.predict(configs[i], dse::SurrogateTarget::kLuts);
    worst = std::max(worst, std::fabs(pred - luts[i]) / std::max(1.0, luts[i]));
  }
  // Ridge over 19 features on a structured space: in-sample error stays
  // within a loose band (this guards gross regressions, not accuracy).
  EXPECT_LT(worst, 0.5) << "surrogate LUT prediction off by " << worst * 100 << "%";
}

TEST(SurrogateModel, AnalyticSeedSuppliesExactErrorMetrics) {
  dse::SurrogateModel model(/*analytic_seeding=*/true);
  const dse::Config c = ca8();
  const auto& seed = model.seed_for(c);
  ASSERT_TRUE(seed.has_value()) << "Ca_8 must be inside the analytic envelope";
  const dse::EvalOptions eval;
  const dse::Objectives exact = dse::evaluate(c, eval);
  EXPECT_NEAR(exact.mre, seed->mre, 1e-9);
  EXPECT_NEAR(exact.error_probability, seed->error_probability, 1e-9);
  // predict_cost must serve the seed for error objectives even unfitted.
  const std::vector<double> cost =
      model.predict_cost(c, {dse::Objective::kMre, dse::Objective::kErrorProbability});
  EXPECT_NEAR(exact.mre, cost[0], 1e-9);
  EXPECT_NEAR(exact.error_probability, cost[1], 1e-9);
}

TEST(SurrogateStrategy, ProposalsNeverRepeatConfirmedKeys) {
  dse::SurrogateStrategyOptions opts;
  opts.population = 8;
  opts.proposals = 32;
  dse::SurrogateStrategy strategy(dse::make_space("smoke8"), opts);
  std::set<std::string> seen;
  for (int gen = 0; gen < 4; ++gen) {
    const std::vector<dse::Config> batch = strategy.propose(8);
    if (batch.empty()) break;
    std::vector<dse::Objectives> obj;
    for (const dse::Config& c : batch) {
      const std::string key = dse::config_key(c);
      EXPECT_TRUE(seen.insert(key).second) << "repeated proposal " << key;
      obj.push_back(dse::evaluate(c));
    }
    strategy.confirm(batch, obj);
  }
  EXPECT_EQ(seen.size(), strategy.archive_size());
}

TEST(SurrogateStrategy, ProposalSequenceIsSeedDeterministic) {
  const auto run = [](std::uint64_t seed) {
    dse::SurrogateStrategyOptions opts;
    opts.population = 6;
    opts.proposals = 24;
    opts.seed = seed;
    dse::SurrogateStrategy strategy(dse::make_space("smoke8"), opts);
    std::vector<std::string> keys;
    for (int gen = 0; gen < 3; ++gen) {
      const std::vector<dse::Config> batch = strategy.propose(6);
      if (batch.empty()) break;
      std::vector<dse::Objectives> obj;
      for (const dse::Config& c : batch) {
        keys.push_back(dse::config_key(c));
        obj.push_back(dse::evaluate(c));
      }
      strategy.confirm(batch, obj);
    }
    return keys;
  };
  const std::vector<std::string> a = run(7);
  EXPECT_EQ(a, run(7));
  EXPECT_NE(a, run(8)) << "different seeds should explore differently";
}

TEST(SurrogateStrategy, ConfirmOrderDoesNotChangeTheModel) {
  // Deliver one generation's results in two different orders; the next
  // proposal batch must be identical (the strategy canonicalizes by key).
  const auto run = [](bool reversed) {
    dse::SurrogateStrategyOptions opts;
    opts.population = 8;
    opts.proposals = 32;
    dse::SurrogateStrategy strategy(dse::make_space("smoke8"), opts);
    std::vector<dse::Config> batch = strategy.propose(8);
    std::vector<dse::Objectives> obj;
    for (const dse::Config& c : batch) obj.push_back(dse::evaluate(c));
    if (reversed) {
      std::reverse(batch.begin(), batch.end());
      std::reverse(obj.begin(), obj.end());
    }
    strategy.confirm(batch, obj);
    std::vector<std::string> next;
    for (const dse::Config& c : strategy.propose(8)) next.push_back(dse::config_key(c));
    return next;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(SurrogateSearch, RunSearchBeatsRandomAtEqualBudgetOnSmoke8) {
  // The in-tree equivalent of the `axdse explore --strategy surrogate
  // --smoke` anchor: equal confirmed-evaluation budget, shared reference
  // point, surrogate hypervolume must not fall below random's.
  const dse::SpaceSpec space = dse::make_space("smoke8");
  dse::SearchOptions search;
  search.strategy = dse::Strategy::kSurrogate;
  search.budget = 36;
  search.population = 12;
  search.generations = 2;
  search.proposals = 64;
  const dse::SearchResult surrogate = dse::run_search(space, search);
  search.strategy = dse::Strategy::kRandom;
  const dse::SearchResult random = dse::run_search(space, search);
  ASSERT_FALSE(surrogate.front.empty());
  std::vector<double> ref(search.objectives.size(), 1e-9);
  const auto fold = [&](const std::vector<dse::EvaluatedPoint>& front) {
    std::vector<std::vector<double>> costs;
    for (const dse::EvaluatedPoint& p : front) {
      costs.push_back(dse::cost_vector(p.objectives, search.objectives));
      for (std::size_t i = 0; i < ref.size(); ++i) ref[i] = std::max(ref[i], costs.back()[i]);
    }
    return costs;
  };
  const auto surr_costs = fold(surrogate.front);
  const auto rand_costs = fold(random.front);
  for (double& r : ref) r = r * 1.1 + 1e-9;
  EXPECT_GE(analysis::hypervolume(surr_costs, ref), analysis::hypervolume(rand_costs, ref));
}

}  // namespace
