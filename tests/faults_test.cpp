// Tests for stuck-at fault injection.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "fabric/faults.hpp"
#include "fabric/transforms.hpp"
#include "mult/elementary.hpp"
#include "mult/recursive.hpp"
#include "multgen/generators.hpp"

namespace axmult::fabric {
namespace {

/// Nets inside some primary-output cone (a stuck-at on anything else is
/// architecturally unobservable and carries no fault-campaign signal).
std::vector<bool> live_net_mask(const Netlist& nl) {
  std::vector<std::uint32_t> driver(nl.net_count(), kNoNet);
  for (std::uint32_t ci = 0; ci < nl.cells().size(); ++ci) {
    for (const NetId out : nl.cells()[ci].out) {
      if (out != kNoNet) driver[out] = ci;
    }
  }
  std::vector<bool> live(nl.net_count(), false);
  std::vector<NetId> stack(nl.outputs().begin(), nl.outputs().end());
  while (!stack.empty()) {
    const NetId n = stack.back();
    stack.pop_back();
    if (n == kNoNet || n >= nl.net_count() || live[n]) continue;
    live[n] = true;
    if (driver[n] == kNoNet) continue;
    for (const NetId in : nl.cells()[driver[n]].in) {
      if (in != kNoNet && in != kNetGnd && in != kNetVcc) stack.push_back(in);
    }
  }
  return live;
}

/// Driver cell kind of each net — the injectable fault classes of
/// fault_sites() (LUT O6/O5, CARRY4 O/CO, FDRE Q).
void sites_by_class(const Netlist& nl, std::map<CellKind, std::vector<NetId>>& classes) {
  std::vector<CellKind> driver_kind(nl.net_count(), CellKind::kLut6);
  std::vector<bool> driven(nl.net_count(), false);
  for (const Cell& c : nl.cells()) {
    for (const NetId out : c.out) {
      if (out != kNoNet) {
        driver_kind[out] = c.kind;
        driven[out] = true;
      }
    }
  }
  for (const NetId site : fault_sites(nl)) {
    ASSERT_TRUE(driven[site]) << "fault site without a driver";
    classes[driver_kind[site]].push_back(site);
  }
}

TEST(Faults, EveryLiveFaultSiteOnThe4x4IsObservable) {
  // Differential sweep: for every live fault site, at least one stuck
  // polarity must change at least one product over the exhaustive 4x4
  // operand space. (Dead-cone sites are exempt — their stuck value is
  // architecturally invisible by construction.)
  const auto nl = multgen::make_ca_netlist(4);
  const auto live = live_net_mask(nl);
  Evaluator ref(nl);
  std::uint64_t want[16][16];
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) want[a][b] = ref.eval_word(a, 4, b, 4);
  }
  unsigned live_sites = 0;
  for (const NetId site : fault_sites(nl)) {
    if (!live[site]) continue;
    ++live_sites;
    bool observable = false;
    for (const bool v : {false, true}) {
      const auto faulty = with_stuck_at(nl, {site, v});
      Evaluator ev(faulty);
      for (std::uint64_t a = 0; a < 16 && !observable; ++a) {
        for (std::uint64_t b = 0; b < 16 && !observable; ++b) {
          observable = ev.eval_word(a, 4, b, 4) != want[a][b];
        }
      }
    }
    EXPECT_TRUE(observable) << "live fault site " << nl.net_name(site)
                            << " never changes any output";
  }
  EXPECT_GT(live_sites, 10u);
}

TEST(Faults, EveryInjectableFaultClassIsObservableAt8x8) {
  // Every fault class fault_sites() can inject (nets driven by LUTs, by
  // CARRY4s, ...) must contain sites whose stuck-at observably changes the
  // 8x8 product — checked differentially via random-vector equivalence.
  for (const auto& nl : {multgen::make_ca_netlist(8), multgen::make_cc_netlist(8)}) {
    const auto live = live_net_mask(nl);
    std::map<CellKind, std::vector<NetId>> classes;
    sites_by_class(nl, classes);
    ASSERT_FALSE(classes.empty());
    for (const auto& [kind, sites] : classes) {
      unsigned checked = 0;
      unsigned observable = 0;
      for (const NetId site : sites) {
        if (!live[site]) continue;
        if (++checked > 8) break;  // a few per class keeps the test fast
        const bool flagged =
            !probably_equivalent(nl, with_stuck_at(nl, {site, false}), 2048, 7) ||
            !probably_equivalent(nl, with_stuck_at(nl, {site, true}), 2048, 7);
        observable += flagged ? 1u : 0u;
        EXPECT_TRUE(flagged) << "live site " << nl.net_name(site) << " (cell kind "
                             << static_cast<int>(kind) << ") is silent in both polarities";
      }
      EXPECT_GT(observable, 0u);
    }
  }
}

TEST(Faults, StuckOutputForcesConstant) {
  // Fault the net feeding output p0 of the 4x4: p0 becomes the constant.
  const auto nl = multgen::make_ca_netlist(4);
  const NetId p0_net = nl.outputs()[0];
  for (bool v : {false, true}) {
    const auto faulty = with_stuck_at(nl, {p0_net, v});
    Evaluator ev(faulty);
    for (std::uint64_t a = 0; a < 16; ++a) {
      for (std::uint64_t b = 0; b < 16; ++b) {
        const std::uint64_t p = ev.eval_word(a, 4, b, 4);
        ASSERT_EQ(p & 1u, v ? 1u : 0u);
        // Other bits unaffected.
        ASSERT_EQ(p >> 1, mult::approx_4x4(a, b) >> 1);
      }
    }
  }
}

TEST(Faults, FaultFreeCopyIsIdentical) {
  // Injecting on an unused net id (kNoNet never matches) replays the
  // netlist exactly.
  const auto nl = multgen::make_ca_netlist(8);
  const auto copy = with_stuck_at(nl, {kNoNet, false});
  ASSERT_EQ(copy.cells().size(), nl.cells().size());
  Evaluator e1(nl);
  Evaluator e2(copy);
  for (std::uint64_t a = 0; a < 256; a += 17) {
    for (std::uint64_t b = 0; b < 256; b += 13) {
      ASSERT_EQ(e1.eval_word(a, 8, b, 8), e2.eval_word(a, 8, b, 8));
    }
  }
}

TEST(Faults, AreaIsPreservedUnderInjection) {
  const auto nl = multgen::make_ca_netlist(8);
  const auto sites = fault_sites(nl);
  ASSERT_FALSE(sites.empty());
  const auto faulty = with_stuck_at(nl, {sites[sites.size() / 2], true});
  EXPECT_EQ(faulty.area().luts, nl.area().luts);
  EXPECT_EQ(faulty.area().carry4, nl.area().carry4);
}

TEST(Faults, SitesAreDrivenAndLoaded) {
  const auto nl = multgen::make_ca_netlist(4);
  const auto fanout = nl.fanout();
  for (NetId site : fault_sites(nl)) {
    EXPECT_GT(fanout[site], 0u);
    EXPECT_NE(site, kNetGnd);
    EXPECT_NE(site, kNetVcc);
  }
}

TEST(Faults, EveryFaultOnThe4x4IsBounded) {
  // Single stuck-at faults on the 4x4 can corrupt at most the full output
  // range; sanity-check the campaign math on the smallest module.
  const auto nl = multgen::make_ca_netlist(4);
  for (NetId site : fault_sites(nl)) {
    for (bool v : {false, true}) {
      const auto faulty = with_stuck_at(nl, {site, v});
      Evaluator ev(faulty);
      for (std::uint64_t a = 0; a < 16; ++a) {
        for (std::uint64_t b = 0; b < 16; ++b) {
          ASSERT_LT(ev.eval_word(a, 4, b, 4), 256u);
        }
      }
    }
  }
}

TEST(Faults, SequentialNetlistsSurviveInjection) {
  const auto nl = multgen::make_pipelined_netlist(8, mult::Summation::kAccurate);
  const auto sites = fault_sites(nl);
  const auto faulty = with_stuck_at(nl, {sites.front(), true});
  SeqEvaluator ev(faulty);
  (void)ev.step_word(10, 8, 10, 8);
  (void)ev.step_word(10, 8, 10, 8);
  SUCCEED();
}

}  // namespace
}  // namespace axmult::fabric
