// Tests for stuck-at fault injection.
#include <gtest/gtest.h>

#include "fabric/faults.hpp"
#include "mult/elementary.hpp"
#include "mult/recursive.hpp"
#include "multgen/generators.hpp"

namespace axmult::fabric {
namespace {

TEST(Faults, StuckOutputForcesConstant) {
  // Fault the net feeding output p0 of the 4x4: p0 becomes the constant.
  const auto nl = multgen::make_ca_netlist(4);
  const NetId p0_net = nl.outputs()[0];
  for (bool v : {false, true}) {
    const auto faulty = with_stuck_at(nl, {p0_net, v});
    Evaluator ev(faulty);
    for (std::uint64_t a = 0; a < 16; ++a) {
      for (std::uint64_t b = 0; b < 16; ++b) {
        const std::uint64_t p = ev.eval_word(a, 4, b, 4);
        ASSERT_EQ(p & 1u, v ? 1u : 0u);
        // Other bits unaffected.
        ASSERT_EQ(p >> 1, mult::approx_4x4(a, b) >> 1);
      }
    }
  }
}

TEST(Faults, FaultFreeCopyIsIdentical) {
  // Injecting on an unused net id (kNoNet never matches) replays the
  // netlist exactly.
  const auto nl = multgen::make_ca_netlist(8);
  const auto copy = with_stuck_at(nl, {kNoNet, false});
  ASSERT_EQ(copy.cells().size(), nl.cells().size());
  Evaluator e1(nl);
  Evaluator e2(copy);
  for (std::uint64_t a = 0; a < 256; a += 17) {
    for (std::uint64_t b = 0; b < 256; b += 13) {
      ASSERT_EQ(e1.eval_word(a, 8, b, 8), e2.eval_word(a, 8, b, 8));
    }
  }
}

TEST(Faults, AreaIsPreservedUnderInjection) {
  const auto nl = multgen::make_ca_netlist(8);
  const auto sites = fault_sites(nl);
  ASSERT_FALSE(sites.empty());
  const auto faulty = with_stuck_at(nl, {sites[sites.size() / 2], true});
  EXPECT_EQ(faulty.area().luts, nl.area().luts);
  EXPECT_EQ(faulty.area().carry4, nl.area().carry4);
}

TEST(Faults, SitesAreDrivenAndLoaded) {
  const auto nl = multgen::make_ca_netlist(4);
  const auto fanout = nl.fanout();
  for (NetId site : fault_sites(nl)) {
    EXPECT_GT(fanout[site], 0u);
    EXPECT_NE(site, kNetGnd);
    EXPECT_NE(site, kNetVcc);
  }
}

TEST(Faults, EveryFaultOnThe4x4IsBounded) {
  // Single stuck-at faults on the 4x4 can corrupt at most the full output
  // range; sanity-check the campaign math on the smallest module.
  const auto nl = multgen::make_ca_netlist(4);
  for (NetId site : fault_sites(nl)) {
    for (bool v : {false, true}) {
      const auto faulty = with_stuck_at(nl, {site, v});
      Evaluator ev(faulty);
      for (std::uint64_t a = 0; a < 16; ++a) {
        for (std::uint64_t b = 0; b < 16; ++b) {
          ASSERT_LT(ev.eval_word(a, 4, b, 4), 256u);
        }
      }
    }
  }
}

TEST(Faults, SequentialNetlistsSurviveInjection) {
  const auto nl = multgen::make_pipelined_netlist(8, mult::Summation::kAccurate);
  const auto sites = fault_sites(nl);
  const auto faulty = with_stuck_at(nl, {sites.front(), true});
  SeqEvaluator ev(faulty);
  (void)ev.step_word(10, 8, 10, 8);
  (void)ev.step_word(10, 8, 10, 8);
  SUCCEED();
}

}  // namespace
}  // namespace axmult::fabric
