// Tests for the extension features: Cb hybrid summation (paper Sec. 4.1's
// suggestion), the Section-5 error-correction circuitry, and HDL export.
#include <gtest/gtest.h>

#include "analysis/catalog.hpp"
#include "common/bits.hpp"
#include "common/rng.hpp"
#include "error/metrics.hpp"
#include "mult/elementary.hpp"
#include "fabric/hdl_export.hpp"
#include "mult/correctable.hpp"
#include "mult/signed_wrapper.hpp"
#include "mult/recursive.hpp"
#include "multgen/generators.hpp"
#include "timing/sta.hpp"

namespace axmult {
namespace {

// --------------------------------------------------------------- Cb(L)

TEST(CbHybrid, NetlistMatchesModelExhaustively) {
  for (unsigned L : {2u, 4u, 6u}) {
    const auto model = mult::make_cb(8, L);
    const auto nl = multgen::make_cb_netlist(8, L);
    fabric::Evaluator ev(nl);
    for (std::uint64_t a = 0; a < 256; ++a) {
      for (std::uint64_t b = 0; b < 256; ++b) {
        ASSERT_EQ(ev.eval_word(a, 8, b, 8), model->multiply(a, b))
            << "L=" << L << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(CbHybrid, DegenerateConfigsMatchCa) {
  // L = 0 means every middle column is summed accurately -> identical to Ca.
  const auto cb0 = mult::make_cb(8, 0);
  const auto ca = mult::make_ca(8);
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) {
      ASSERT_EQ(cb0->multiply(a, b), ca->multiply(a, b));
    }
  }
}

TEST(CbHybrid, InterpolatesBetweenCaAndCc) {
  // Paper Sec 4.1: "sophisticated approximate addition" should yield
  // designs with higher accuracy than Cc at lower cost than Ca. Error
  // must increase monotonically with L, staying between Ca's and Cc's.
  const double ca_err = error::characterize_exhaustive(*mult::make_ca(8)).avg_relative_error;
  const double cc_err = error::characterize_exhaustive(*mult::make_cc(8)).avg_relative_error;
  double prev = ca_err;
  for (unsigned L : {2u, 4u, 6u, 8u}) {
    const double err = error::characterize_exhaustive(*mult::make_cb(8, L)).avg_relative_error;
    EXPECT_GE(err, prev - 1e-12) << "L=" << L;
    EXPECT_GE(err, ca_err);
    prev = err;
  }
  EXPECT_LT(error::characterize_exhaustive(*mult::make_cb(8, 4)).avg_relative_error, cc_err);
}

TEST(CbHybrid, LatencyBetweenCcAndCa) {
  const double t_ca = timing::analyze(multgen::make_ca_netlist(8)).critical_path_ns;
  const double t_cc = timing::analyze(multgen::make_cc_netlist(8)).critical_path_ns;
  const double t_cb = timing::analyze(multgen::make_cb_netlist(8, 4)).critical_path_ns;
  EXPECT_LT(t_cb, t_ca);
  EXPECT_GT(t_cb, t_cc - 0.5);
}

// ------------------------------------------------------ error correction

TEST(Correction, EnabledElementaryIsExact) {
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      EXPECT_EQ(mult::approx_4x4_correctable(a, b, true), a * b);
      EXPECT_EQ(mult::approx_4x4_correctable(a, b, false), mult::approx_4x4(a, b));
    }
  }
}

TEST(Correction, CorrectableCaTogglesBetweenApproxAndExact) {
  mult::CorrectableMultiplier m(8, mult::Summation::kAccurate);
  const auto ca = mult::make_ca(8);
  for (std::uint64_t a = 0; a < 256; a += 3) {
    for (std::uint64_t b = 0; b < 256; b += 5) {
      m.set_correction(false);
      ASSERT_EQ(m.multiply(a, b), ca->multiply(a, b));
      m.set_correction(true);
      ASSERT_EQ(m.multiply(a, b), a * b);
    }
  }
}

TEST(Correction, NetlistHonoursEnablePin) {
  const auto nl = multgen::make_correctable_netlist(8, mult::Summation::kAccurate);
  fabric::Evaluator ev(nl);
  const auto ca = mult::make_ca(8);
  auto run = [&](std::uint64_t a, std::uint64_t b, std::uint8_t en) {
    std::vector<std::uint8_t> in;
    for (unsigned i = 0; i < 8; ++i) in.push_back(static_cast<std::uint8_t>(bit(a, i)));
    for (unsigned i = 0; i < 8; ++i) in.push_back(static_cast<std::uint8_t>(bit(b, i)));
    in.push_back(en);
    const auto out = ev.eval(in);
    std::uint64_t p = 0;
    for (std::size_t i = 0; i < out.size(); ++i) p |= std::uint64_t{out[i]} << i;
    return p;
  };
  Xoshiro256 rng(31);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = rng() & 0xFF;
    const std::uint64_t b = rng() & 0xFF;
    ASSERT_EQ(run(a, b, 0), ca->multiply(a, b)) << a << "*" << b;
    ASSERT_EQ(run(a, b, 1), a * b) << a << "*" << b;
  }
  // Also hit all six elementary error cases in the LL quadrant directly.
  for (const auto& [a, b] : {std::pair<std::uint64_t, std::uint64_t>{5, 15},
                             {15, 5},
                             {7, 6},
                             {15, 6},
                             {15, 7},
                             {13, 13}}) {
    ASSERT_EQ(run(a, b, 1), a * b);
  }
}

TEST(Correction, CostsTwoLutsPerElementaryModule) {
  const auto plain = multgen::make_ca_netlist(8).area().luts;
  const auto corr = multgen::make_correctable_netlist(8, mult::Summation::kAccurate).area().luts;
  EXPECT_EQ(corr, plain + 4 * 2);  // four 4x4 modules, +2 LUTs each
}

// -------------------------------------------------------------- HDL export

TEST(HdlExport, VhdlContainsEveryPrimitive) {
  const auto nl = multgen::make_ca_netlist(4);
  const auto vhdl = fabric::to_vhdl(nl, "approx4x4");
  EXPECT_NE(vhdl.find("entity approx4x4 is"), std::string::npos);
  EXPECT_NE(vhdl.find("architecture structural of approx4x4"), std::string::npos);
  std::size_t luts = 0;
  for (std::size_t pos = 0; (pos = vhdl.find(": LUT6_2", pos)) != std::string::npos; ++pos) {
    ++luts;
  }
  EXPECT_EQ(luts, nl.area().luts);
  std::size_t carries = 0;
  for (std::size_t pos = 0; (pos = vhdl.find(": CARRY4", pos)) != std::string::npos; ++pos) {
    ++carries;
  }
  EXPECT_EQ(carries, nl.area().carry4);
  // Table 3 INIT values appear verbatim.
  EXPECT_NE(vhdl.find("X\"B4CCF00066AACC00\""), std::string::npos);
  EXPECT_NE(vhdl.find("X\"007F7F80FF808000\""), std::string::npos);
}

TEST(HdlExport, VerilogContainsEveryPrimitive) {
  const auto nl = multgen::make_ca_netlist(8);
  const auto v = fabric::to_verilog(nl, "ca8");
  EXPECT_NE(v.find("module ca8"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  std::size_t luts = 0;
  for (std::size_t pos = 0; (pos = v.find("LUT6_2 #", pos)) != std::string::npos; ++pos) ++luts;
  EXPECT_EQ(luts, nl.area().luts);
}

TEST(HdlExport, DeterministicOutput) {
  const auto a = fabric::to_vhdl(multgen::make_cc_netlist(8), "cc8");
  const auto b = fabric::to_vhdl(multgen::make_cc_netlist(8), "cc8");
  EXPECT_EQ(a, b);
}

TEST(HdlExport, RejectsDspModelCells) {
  fabric::Netlist nl;
  std::vector<fabric::NetId> a{nl.add_input("a0")};
  std::vector<fabric::NetId> b{nl.add_input("b0")};
  const auto p = nl.add_dsp("d", a, b, 2);
  nl.add_output("p0", p[0]);
  EXPECT_THROW((void)fabric::to_vhdl(nl, "x"), std::invalid_argument);
  EXPECT_THROW((void)fabric::to_verilog(nl, "x"), std::invalid_argument);
}

TEST(HdlExport, IdentifierSanitization) {
  EXPECT_EQ(fabric::hdl_identifier("u.ll.LUT0.O6"), "u_ll_LUT0_O6");
  EXPECT_EQ(fabric::hdl_identifier("0abc"), "n0abc");
  EXPECT_EQ(fabric::hdl_identifier("_x"), "x");
}

TEST(HdlExport, EveryCombinationalCatalogDesignExports) {
  // Smoke property: both emitters succeed on every netlist in the library
  // and the primitive counts always match the area report.
  std::vector<analysis::DesignPoint> designs = analysis::paper_designs(8);
  for (auto& d : analysis::evo_family_8x8()) designs.push_back(std::move(d));
  for (const auto& d : designs) {
    const auto nl = d.netlist();
    if (nl.area().dsp > 0) continue;
    const auto v = fabric::to_verilog(nl, "m");
    std::size_t luts = 0;
    for (std::size_t pos = 0; (pos = v.find("LUT6_2 #", pos)) != std::string::npos; ++pos) {
      ++luts;
    }
    ASSERT_EQ(luts, nl.area().luts) << d.name;
    ASSERT_FALSE(fabric::to_vhdl(nl, "m").empty()) << d.name;
  }
}

TEST(Metrics, NmedAndWceNormalization) {
  const auto r = error::characterize_exhaustive(*mult::make_kulkarni(8));
  // K 8x8: avg 903.125, max 14450, max product 255^2 = 65025.
  EXPECT_NEAR(r.nmed(8, 8), 903.125 / 65025.0, 1e-9);
  EXPECT_NEAR(r.wce_normalized(8, 8), 14450.0 / 65025.0, 1e-9);
}

// ------------------------------------------------------------- signed

TEST(SignedWrapper, ExactCoreGivesExactSignedProducts) {
  const mult::SignedMultiplier sm(mult::make_accurate(8));
  for (std::int64_t a = -255; a <= 255; a += 17) {
    for (std::int64_t b = -255; b <= 255; b += 13) {
      ASSERT_EQ(sm.multiply(a, b), a * b);
    }
  }
}

TEST(SignedWrapper, ApproximateCoreShrinksTowardZero) {
  // Ca under-approximates magnitudes, so the signed product never
  // overshoots: |approx| <= |exact| and the sign is always right.
  const mult::SignedMultiplier sm(mult::make_ca(8));
  for (std::int64_t a = -255; a <= 255; a += 7) {
    for (std::int64_t b = -255; b <= 255; b += 11) {
      const std::int64_t exact = a * b;
      const std::int64_t approx = sm.multiply(a, b);
      ASSERT_LE(std::llabs(approx), std::llabs(exact));
      if (approx != 0) {
        ASSERT_EQ(approx < 0, exact < 0);
      }
    }
  }
}

TEST(SignedWrapper, RejectsOutOfRangeMagnitudes) {
  const mult::SignedMultiplier sm(mult::make_accurate(8));
  EXPECT_THROW((void)sm.multiply(256, 1), std::out_of_range);
  EXPECT_THROW((void)sm.multiply(1, -256), std::out_of_range);
  EXPECT_EQ(sm.multiply(-255, -255), 255 * 255);
}

}  // namespace
}  // namespace axmult
