// Direct unit tests for analysis/pareto: the classic 2D front extraction
// and the N-objective machinery (dominance, non-dominated sort, crowding
// distance) the DSE engine builds on.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

#include "analysis/pareto.hpp"

namespace axmult::analysis {
namespace {

TEST(Dominates, StrictAndTies) {
  EXPECT_TRUE(dominates({1.0, 2.0}, {2.0, 3.0}));
  EXPECT_TRUE(dominates({1.0, 2.0}, {1.0, 3.0}));  // <= with one strict
  EXPECT_FALSE(dominates({1.0, 2.0}, {1.0, 2.0}));  // equal vectors never dominate
  EXPECT_FALSE(dominates({1.0, 3.0}, {2.0, 2.0}));  // trade-off: incomparable
  EXPECT_FALSE(dominates({2.0, 3.0}, {1.0, 2.0}));
}

TEST(Dominates, ThreeObjectives) {
  EXPECT_TRUE(dominates({1.0, 1.0, 1.0}, {1.0, 1.0, 2.0}));
  EXPECT_FALSE(dominates({1.0, 1.0, 3.0}, {1.0, 1.0, 2.0}));
  EXPECT_FALSE(dominates({0.0, 2.0, 0.0}, {1.0, 1.0, 1.0}));
}

TEST(NondominatedRank, EmptyAndSinglePoint) {
  EXPECT_TRUE(nondominated_rank({}).empty());
  const std::vector<unsigned> ranks = nondominated_rank({{3.0, 7.0}});
  ASSERT_EQ(ranks.size(), 1u);
  EXPECT_EQ(ranks[0], 0u);
}

TEST(NondominatedRank, LayeredFronts) {
  // Two clean layers: {(1,4),(4,1)} then {(2,5),(5,2)} then {(6,6)}.
  const std::vector<std::vector<double>> costs{
      {1.0, 4.0}, {4.0, 1.0}, {2.0, 5.0}, {5.0, 2.0}, {6.0, 6.0}};
  const std::vector<unsigned> ranks = nondominated_rank(costs);
  EXPECT_EQ(ranks[0], 0u);
  EXPECT_EQ(ranks[1], 0u);
  EXPECT_EQ(ranks[2], 1u);
  EXPECT_EQ(ranks[3], 1u);
  EXPECT_EQ(ranks[4], 2u);
}

TEST(NondominatedRank, DuplicatePointsShareTheFront) {
  // Duplicates do not dominate each other, so both copies stay rank 0.
  const std::vector<std::vector<double>> costs{{1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}};
  const std::vector<unsigned> ranks = nondominated_rank(costs);
  EXPECT_EQ(ranks[0], 0u);
  EXPECT_EQ(ranks[1], 0u);
  EXPECT_EQ(ranks[2], 1u);
}

TEST(NondominatedRank, ThreeObjectiveTradeoffs) {
  // Each point is best in one objective: all non-dominated.
  const std::vector<std::vector<double>> costs{
      {0.0, 5.0, 5.0}, {5.0, 0.0, 5.0}, {5.0, 5.0, 0.0}, {6.0, 6.0, 6.0}};
  const std::vector<unsigned> ranks = nondominated_rank(costs);
  EXPECT_EQ(ranks[0], 0u);
  EXPECT_EQ(ranks[1], 0u);
  EXPECT_EQ(ranks[2], 0u);
  EXPECT_EQ(ranks[3], 1u);
}

TEST(CrowdingDistance, BoundariesAreInfinite) {
  const std::vector<std::vector<double>> costs{{1.0, 4.0}, {2.0, 3.0}, {4.0, 1.0}};
  const std::vector<double> dist = crowding_distance(costs, {0, 1, 2});
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(dist[0], inf);
  EXPECT_EQ(dist[2], inf);
  // Interior point: (4-1)/(4-1) + (4-1)/(4-1) = 2 (normalized spans).
  EXPECT_DOUBLE_EQ(dist[1], 2.0);
}

TEST(CrowdingDistance, SinglePointFront) {
  const std::vector<std::vector<double>> costs{{1.0, 1.0}, {9.0, 9.0}};
  const std::vector<double> dist = crowding_distance(costs, {1});
  ASSERT_EQ(dist.size(), 1u);
  EXPECT_EQ(dist[0], std::numeric_limits<double>::infinity());
}

TEST(CrowdingDistance, DegenerateObjectiveContributesNothing) {
  // Second objective identical everywhere: distance comes from the first
  // axis only, and interior spacing is still well-defined.
  const std::vector<std::vector<double>> costs{{1.0, 5.0}, {2.0, 5.0}, {3.0, 5.0}};
  const std::vector<double> dist = crowding_distance(costs, {0, 1, 2});
  EXPECT_EQ(dist[0], std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(dist[1], 1.0);  // (3-1)/(3-1) from the live axis
  EXPECT_EQ(dist[2], std::numeric_limits<double>::infinity());
}

TEST(MarkParetoFront, TiesAndDuplicates) {
  std::vector<ParetoPoint> points{{"a", 1.0, 4.0, false},
                                  {"b", 1.0, 4.0, false},  // duplicate of a
                                  {"c", 4.0, 1.0, false},
                                  {"d", 4.0, 4.0, false}};
  mark_pareto_front(points);
  EXPECT_TRUE(points[0].pareto);
  EXPECT_TRUE(points[1].pareto);
  EXPECT_TRUE(points[2].pareto);
  EXPECT_FALSE(points[3].pareto);
}

TEST(MarkParetoFront, SinglePoint) {
  std::vector<ParetoPoint> points{{"only", 2.0, 2.0, false}};
  mark_pareto_front(points);
  EXPECT_TRUE(points[0].pareto);
  EXPECT_EQ(pareto_front(points).size(), 1u);
}

TEST(Hypervolume, OnePointIsItsDominatedBox) {
  // Minimization against ref (4, 4): the point (1, 2) dominates a 3 x 2 box.
  EXPECT_DOUBLE_EQ(6.0, hypervolume({{1.0, 2.0}}, {4.0, 4.0}));
}

TEST(Hypervolume, EmptyAndOutOfReferencePointsContributeNothing) {
  EXPECT_DOUBLE_EQ(0.0, hypervolume({}, {1.0, 1.0}));
  // On or beyond the reference point in any dimension = zero contribution.
  EXPECT_DOUBLE_EQ(0.0, hypervolume({{1.0, 1.0}, {0.5, 2.0}}, {1.0, 1.0}));
}

TEST(Hypervolume, UnionOfOverlappingBoxes) {
  // (1,3) covers 3x1, (3,1) covers 1x3, overlap 1x1 -> union 5. The
  // dominated point (3,3) must add nothing.
  EXPECT_DOUBLE_EQ(5.0, hypervolume({{1.0, 3.0}, {3.0, 1.0}, {3.0, 3.0}}, {4.0, 4.0}));
  // Input order must not matter.
  EXPECT_DOUBLE_EQ(5.0, hypervolume({{3.0, 3.0}, {3.0, 1.0}, {1.0, 3.0}}, {4.0, 4.0}));
}

TEST(Hypervolume, OneAndThreeDimensions) {
  EXPECT_DOUBLE_EQ(3.0, hypervolume({{2.0}, {1.0}}, {4.0}));
  // Two cubes: (0,0,0) dominates 2^3 = 8; (1,1,1) is inside it entirely.
  EXPECT_DOUBLE_EQ(8.0, hypervolume({{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}}, {2.0, 2.0, 2.0}));
  // An L of two overlapping boxes in 3-D: 1x2x2 + 2x1x2 - 1x1x2 = 6.
  EXPECT_DOUBLE_EQ(6.0, hypervolume({{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}}, {2.0, 2.0, 2.0}));
}

TEST(Hypervolume, DimensionMismatchThrows) {
  EXPECT_THROW((void)hypervolume({{1.0, 2.0}}, {4.0}), std::invalid_argument);
  EXPECT_THROW((void)hypervolume({{1.0}, {1.0, 2.0}}, {4.0}), std::invalid_argument);
}

}  // namespace
}  // namespace axmult::analysis
