// Acceptance tests for the design-space exploration engine (src/dse/):
// canonical config keys, model/netlist agreement across every searched
// dimension, cache persistence, determinism of the NSGA-II front for any
// thread count, resume-equals-replay, and rediscovery of the paper's
// hand-crafted designs as non-dominated points.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dse/cache.hpp"
#include "dse/evaluate.hpp"
#include "dse/search.hpp"
#include "dse/space.hpp"
#include "fabric/netlist.hpp"
#include "mult/elementary.hpp"
#include "mult/recursive.hpp"
#include "mult/signed_wrapper.hpp"

namespace axmult::dse {
namespace {

/// Cheap evaluation options for unit tests: exhaustive error on anything
/// up to 8x8 and a small toggle-vector budget.
EvalOptions fast_eval() {
  EvalOptions eval;
  eval.exhaustive_bits = 16;
  eval.samples = 4096;
  eval.power_vectors = 64;
  return eval;
}

TEST(DseSpace, KeyRoundTrip) {
  Config c;
  c.width = 8;
  c.leaf = Config::Leaf::kPerturbed4x2Pair;
  c.summation = {mult::Summation::kCarryFree};
  c.trunc_lsbs = 2;
  c.operand_swap = true;
  c.flips = {{3, 17}, {0, 5}};
  const std::string key = config_key(c);
  EXPECT_EQ(key, "w8;l=p4x2;s=C;o=0;t=2;x=1;g=0;p=0:5,3:17");
  const Config back = parse_key(key);
  EXPECT_EQ(config_key(back), key);
  EXPECT_EQ(back.flips.size(), 2u);
  EXPECT_EQ(config_hash(c), config_hash(back));
}

TEST(DseSpace, CanonicalizationCancelsFlipPairsAndDropsDeadFields) {
  Config c;
  c.width = 8;
  c.leaf = Config::Leaf::kApprox4x4;
  c.summation = {mult::Summation::kAccurate};
  c.lower_or_bits = 4;                 // no kLowerOr level -> dropped
  c.flips = {{1, 2}, {1, 2}, {5, 9}};  // non-perturbed leaf -> cleared
  canonicalize(c);
  EXPECT_EQ(c.lower_or_bits, 0u);
  EXPECT_TRUE(c.flips.empty());
  EXPECT_EQ(config_key(c), "w8;l=a4x4;s=A;o=0;t=0;x=0;g=0");

  Config p = c;
  p.leaf = Config::Leaf::kPerturbed4x2Pair;
  p.flips = {{1, 2}, {5, 9}, {1, 2}};  // the {1,2} pair cancels
  canonicalize(p);
  ASSERT_EQ(p.flips.size(), 1u);
  EXPECT_EQ(p.flips[0], (TableFlip{5, 9}));
}

TEST(DseSpace, PaperAnchorsHaveExpectedKeys) {
  EXPECT_EQ(config_key(paper_ca(8)), "w8;l=a4x4;s=A;o=0;t=0;x=0;g=0");
  EXPECT_EQ(config_key(paper_cc(8)), "w8;l=a4x4;s=C;o=0;t=0;x=0;g=0");
  EXPECT_EQ(config_key(paper_approx4x4()), "w4;l=a4x4;s=;o=0;t=0;x=0;g=0");
  EXPECT_EQ(config_key(paper_ca(16)), "w16;l=a4x4;s=AA;o=0;t=0;x=0;g=0");
}

TEST(DseSpace, EnumerateSmokeSpaceContainsAnchors) {
  const std::vector<Config> configs = enumerate(make_space("smoke8"));
  EXPECT_GE(configs.size(), 20u);
  bool saw_ca = false;
  bool saw_cc = false;
  for (const Config& c : configs) {
    if (c == paper_ca(8)) saw_ca = true;
    if (c == paper_cc(8)) saw_cc = true;
  }
  EXPECT_TRUE(saw_ca);
  EXPECT_TRUE(saw_cc);
}

TEST(DseSpace, SampleMutateCrossoverStayInSpace) {
  const SpaceSpec spec = make_space("paper8");
  Xoshiro256 rng(42);
  Config c = sample(spec, rng);
  for (int i = 0; i < 200; ++i) {
    const Config m = mutate(spec, c, rng);
    EXPECT_EQ(m.width, 8u);
    EXPECT_LE(m.trunc_lsbs, spec.max_trunc);
    EXPECT_LE(m.flips.size(), spec.max_tt_flips);
    const Config x = crossover(spec, m, c, rng);
    EXPECT_EQ(config_key(parse_key(config_key(x))), config_key(x));
    c = m;
  }
}

// ---- model / netlist agreement -------------------------------------------

void expect_model_matches_netlist(const Config& c) {
  const mult::MultiplierPtr model = make_model(c);
  const fabric::Netlist nl = make_core_netlist(c);
  fabric::Evaluator eval(nl);
  const unsigned w = c.width;
  for (std::uint64_t a = 0; a < (std::uint64_t{1} << w); ++a) {
    for (std::uint64_t b = 0; b < (std::uint64_t{1} << w); ++b) {
      ASSERT_EQ(eval.eval_word(a, w, b, w), model->multiply(a, b))
          << config_key(c) << " at a=" << a << " b=" << b;
    }
  }
}

TEST(DseEvaluate, ModelMatchesNetlistAcrossDimensions) {
  // The paper anchors.
  expect_model_matches_netlist(paper_ca(8));
  expect_model_matches_netlist(paper_cc(8));
  // Mixed per-level schedule on a 2x2 leaf (two composition levels).
  Config mixed;
  mixed.width = 8;
  mixed.leaf = Config::Leaf::kKulkarni2x2;
  mixed.summation = {mult::Summation::kCarryFree, mult::Summation::kAccurate};
  expect_model_matches_netlist(mixed);
  // Lower-OR hybrid summation plus truncation plus operand swap.
  Config hybrid;
  hybrid.width = 8;
  hybrid.leaf = Config::Leaf::kApprox4x4;
  hybrid.summation = {mult::Summation::kLowerOr};
  hybrid.lower_or_bits = 4;
  hybrid.trunc_lsbs = 3;
  hybrid.operand_swap = true;
  expect_model_matches_netlist(hybrid);
}

TEST(DseEvaluate, UnperturbedLeafEqualsAccurateSumAblation) {
  Config c;
  c.width = 4;
  c.leaf = Config::Leaf::kPerturbed4x2Pair;
  const mult::MultiplierPtr model = make_model(c);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      EXPECT_EQ(model->multiply(a, b), mult::approx_4x4_accurate_sum(a, b));
    }
  }
  // And the structural form packs like build_approx_4x2: 2 blocks of
  // 4 LUTs plus the 6-bit binary adder (6 LUTs) = 14 LUTs.
  const fabric::Netlist nl = make_core_netlist(c);
  EXPECT_EQ(nl.area().luts, 14u);
  expect_model_matches_netlist(c);
}

TEST(DseEvaluate, PerturbedLeafModelMatchesNetlist) {
  // Flips chosen to hit both a dual-packed column (output 1) and the
  // 6-bit adder wrap-around (output 5 forces pp overflow truncation).
  Config c;
  c.width = 8;
  c.leaf = Config::Leaf::kPerturbed4x2Pair;
  c.summation = {mult::Summation::kAccurate};
  c.flips = {{1, 9}, {5, 63}};
  expect_model_matches_netlist(c);

  Config swapped = c;
  swapped.operand_swap = true;
  swapped.trunc_lsbs = 2;
  expect_model_matches_netlist(swapped);
}

TEST(DseEvaluate, ConfigCa8MatchesLibraryCa8) {
  const mult::MultiplierPtr dse_model = make_model(paper_ca(8));
  const mult::MultiplierPtr lib_model = mult::make_ca(8);
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) {
      ASSERT_EQ(dse_model->multiply(a, b), lib_model->multiply(a, b));
    }
  }
}

TEST(DseEvaluate, SignedWrapperNetlistMatchesBehavioralWrapper) {
  Config c;
  c.width = 4;
  c.leaf = Config::Leaf::kApprox4x4;
  c.signed_wrapper = true;
  const fabric::Netlist nl = make_config_netlist(c);
  fabric::Evaluator eval(nl);
  const mult::SignedMultiplier model(make_model(c));
  // (w+1)-bit two's-complement ports; -2^w has no w-bit magnitude and is
  // outside the wrapper's range (same precondition as the model).
  for (std::int64_t a = -15; a <= 15; ++a) {
    for (std::int64_t b = -15; b <= 15; ++b) {
      const std::uint64_t a_enc = static_cast<std::uint64_t>(a) & 31;
      const std::uint64_t b_enc = static_cast<std::uint64_t>(b) & 31;
      const std::uint64_t expect = static_cast<std::uint64_t>(model.multiply(a, b)) & 511;
      ASSERT_EQ(eval.eval_word(a_enc, 5, b_enc, 5), expect) << "a=" << a << " b=" << b;
    }
  }
}

TEST(DseEvaluate, StreamSeedDerivationIsPinned) {
  // The sampled sweeps derive per-chunk seeds with this exact function;
  // changing it silently changes every sampled number in the bench JSONs.
  EXPECT_EQ(derive_stream_seed(1, 0), 1 ^ 0x9E3779B97F4A7C15ULL);
  EXPECT_EQ(derive_stream_seed(7, 64), 7 ^ (65 * 0x9E3779B97F4A7C15ULL));
}

TEST(DseEvaluate, ObjectiveHelpersRoundTrip) {
  for (const Objective o : {Objective::kLuts, Objective::kCarry4, Objective::kDelay,
                            Objective::kMre, Objective::kNmed, Objective::kMaxError,
                            Objective::kErrorProbability, Objective::kEnergy, Objective::kEdp}) {
    EXPECT_EQ(parse_objective(objective_name(o)), o);
  }
  EXPECT_THROW(parse_objective("nope"), std::invalid_argument);
}

TEST(DseEvaluate, EvaluateCa8ReportsExhaustiveUnitCosts) {
  const Objectives obj = evaluate(paper_ca(8), fast_eval());
  EXPECT_TRUE(obj.exhaustive);
  EXPECT_EQ(obj.samples, 65536u);
  // Ca8's known error profile (paper Table 5, also pinned for the
  // behavioral model in mult_recursive_test.cpp).
  EXPECT_EQ(obj.max_error, 2312u);
  EXPECT_NEAR(obj.mre, 0.002917, 5e-6);
  EXPECT_GT(obj.luts, 40u);
  EXPECT_GT(obj.critical_path_ns, 1.0);
  EXPECT_GT(obj.edp_au, 0.0);
}

TEST(DseEvaluate, MakeBackendRejectsSignedConfigs) {
  Config c = paper_ca(8);
  c.signed_wrapper = true;
  EXPECT_THROW((void)make_backend(c), std::invalid_argument);
  c.signed_wrapper = false;
  const auto backend = make_backend(c);
  EXPECT_EQ(backend->data_bits(), 8u);
  EXPECT_EQ(backend->mul(85, 85), make_model(c)->multiply(85, 85));
  EXPECT_TRUE(backend->cost().modeled);
}

// ---- cache ----------------------------------------------------------------

TEST(DseCache, PersistsAndReloads) {
  const std::string path = testing::TempDir() + "dse_cache_test.json";
  std::remove(path.c_str());
  const EvalOptions eval = fast_eval();
  const std::vector<Config> configs{paper_ca(8), paper_cc(8)};
  {
    EvalCache cache(path);
    std::uint64_t hits = 0;
    (void)evaluate_all(configs, &cache, eval, 2, &hits);
    EXPECT_EQ(hits, 0u);
    (void)evaluate_all(configs, &cache, eval, 2, &hits);
    EXPECT_EQ(hits, 2u);
    EXPECT_GT(cache.hit_rate(), 0.0);
  }
  EvalCache reloaded(path);
  EXPECT_EQ(reloaded.loaded_entries(), 2u);
  std::uint64_t hits = 0;
  const std::vector<Objectives> cached = evaluate_all(configs, &reloaded, eval, 1, &hits);
  EXPECT_EQ(hits, 2u);
  const Objectives fresh = evaluate(paper_ca(8), eval);
  EXPECT_EQ(cached[0].luts, fresh.luts);
  EXPECT_EQ(cached[0].max_error, fresh.max_error);
  EXPECT_DOUBLE_EQ(cached[0].mre, fresh.mre);
  EXPECT_DOUBLE_EQ(cached[0].edp_au, fresh.edp_au);
  std::remove(path.c_str());
}

TEST(DseCache, DifferentContextsMiss) {
  EvalOptions a = fast_eval();
  EvalOptions b = fast_eval();
  b.gaussian = true;
  b.mean_a = 100.0;
  b.sigma_a = 20.0;
  b.mean_b = 30.0;
  b.sigma_b = 10.0;
  EXPECT_NE(a.context(), b.context());
  EXPECT_NE(EvalCache::full_key(paper_ca(8), a), EvalCache::full_key(paper_ca(8), b));
}

// ---- search ---------------------------------------------------------------

std::vector<std::string> front_keys(const SearchResult& result) {
  std::vector<std::string> keys;
  for (const EvaluatedPoint& p : result.front) keys.push_back(p.key);
  return keys;
}

SearchOptions nsga_options(unsigned threads) {
  SearchOptions opts;
  opts.strategy = Strategy::kNsga2;
  opts.population = 8;
  opts.generations = 3;
  opts.seed = 5;
  opts.eval = fast_eval();
  opts.threads = threads;
  return opts;
}

TEST(DseSearch, Nsga2FrontIsThreadCountInvariant) {
  const SpaceSpec space = make_space("paper4");
  const SearchResult one = run_search(space, nsga_options(1));
  const SearchResult four = run_search(space, nsga_options(4));
  EXPECT_FALSE(one.front.empty());
  EXPECT_EQ(front_keys(one), front_keys(four));
  EXPECT_EQ(one.evaluations, four.evaluations);
  for (std::size_t i = 0; i < one.front.size(); ++i) {
    EXPECT_DOUBLE_EQ(one.front[i].objectives.mre, four.front[i].objectives.mre);
    EXPECT_EQ(one.front[i].objectives.luts, four.front[i].objectives.luts);
  }
}

TEST(DseSearch, ResumedRunReproducesTheFront) {
  const std::string dir = testing::TempDir();
  const std::string cache_path = dir + "dse_resume_cache.json";
  const std::string front_path = dir + "dse_resume_front.json";
  const std::string ckpt_path = dir + "dse_resume_ckpt.json";
  std::remove(cache_path.c_str());
  std::remove(front_path.c_str());
  std::remove(ckpt_path.c_str());

  const SpaceSpec space = make_space("paper4");
  SearchOptions opts = nsga_options(2);
  opts.cache_path = cache_path;
  opts.front_path = front_path;
  opts.checkpoint_path = ckpt_path;
  const SearchResult original = run_search(space, opts);
  EXPECT_LT(original.cache_hits, original.evaluations);

  // Resume = replay from the checkpoint; the persistent cache must serve
  // every evaluation and the front must come out bit-identical.
  SpaceSpec space2;
  SearchOptions opts2;
  load_checkpoint(ckpt_path, space2, opts2);
  EXPECT_EQ(space2.name, space.name);
  const SearchResult resumed = run_search(space2, opts2);
  EXPECT_EQ(resumed.cache_hits, resumed.evaluations);
  EXPECT_EQ(front_keys(original), front_keys(resumed));

  // The front file round-trips.
  const std::vector<EvaluatedPoint> loaded = load_front(front_path);
  ASSERT_EQ(loaded.size(), original.front.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].key, original.front[i].key);
    EXPECT_DOUBLE_EQ(loaded[i].objectives.mre, original.front[i].objectives.mre);
  }
  std::remove(cache_path.c_str());
  std::remove(front_path.c_str());
  std::remove(ckpt_path.c_str());
}

TEST(DseSearch, SmokeSearchRediscoversPaperDesigns) {
  // The acceptance anchor: in the CI smoke space the paper's Ca8 and Cc8
  // must come out non-dominated on (LUTs, delay, MRE).
  SearchOptions opts;
  opts.strategy = Strategy::kExhaustive;
  opts.eval = fast_eval();
  opts.threads = 2;
  const SearchResult result = run_search(make_space("smoke8"), opts);
  const std::vector<std::string> keys = front_keys(result);
  EXPECT_NE(std::find(keys.begin(), keys.end(), config_key(paper_ca(8))), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), config_key(paper_cc(8))), keys.end());
}

TEST(DseSearch, Width4SearchRediscoversApprox4x4) {
  // Width-4 exhaustive slice of the paper4 space (no flips in enumerate):
  // the Table 3 module itself must be non-dominated.
  SearchOptions opts;
  opts.strategy = Strategy::kExhaustive;
  opts.eval = fast_eval();
  opts.threads = 2;
  const SearchResult result = run_search(make_space("paper4"), opts);
  const std::vector<std::string> keys = front_keys(result);
  EXPECT_NE(std::find(keys.begin(), keys.end(), config_key(paper_approx4x4())), keys.end());
}

TEST(DseSearch, BudgetCapsEvaluations) {
  SearchOptions opts;
  opts.strategy = Strategy::kExhaustive;
  opts.budget = 5;
  opts.eval = fast_eval();
  const SearchResult result = run_search(make_space("smoke8"), opts);
  EXPECT_EQ(result.evaluations, 5u);
  EXPECT_LE(result.archive_size, 5u);
}

}  // namespace
}  // namespace axmult::dse
