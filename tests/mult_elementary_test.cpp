// Pins every closed-form claim the paper makes about the elementary
// modules (Sections 3.1-3.2, Table 2).
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "mult/elementary.hpp"

namespace axmult::mult {
namespace {

TEST(Approx4x2, TruncatesOnlyP0) {
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 4; ++b) {
      const std::uint64_t exact = a * b;
      const std::uint64_t approx = approx_4x2(a, b);
      EXPECT_EQ(approx, exact & ~std::uint64_t{1}) << "a=" << a << " b=" << b;
      EXPECT_LE(exact - approx, 1u);
    }
  }
}

TEST(Approx4x2, AccuracyIsExactly75Percent) {
  // Paper 3.1: truncating P0 limits accuracy to 75% with max magnitude 1.
  unsigned correct = 0;
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 4; ++b) {
      if (approx_4x2(a, b) == a * b) ++correct;
    }
  }
  EXPECT_EQ(correct, 48u);  // 75% of 64
}

TEST(Accurate4x2, MatchesProduct) {
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 4; ++b) EXPECT_EQ(accurate_4x2(a, b), a * b);
  }
}

TEST(Approx4x4, ExactlySixErrorCasesOfMagnitudeEight) {
  // Paper Table 2 / Section 3.2: six erroneous outputs, fixed magnitude 8,
  // confined to product bit P3.
  unsigned errors = 0;
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      const std::uint64_t exact = a * b;
      const std::uint64_t approx = approx_4x4(a, b);
      if (approx != exact) {
        ++errors;
        EXPECT_EQ(exact - approx, 8u) << "a=" << a << " b=" << b;
        EXPECT_EQ((approx ^ exact), 8u) << "error not confined to P3";
        EXPECT_TRUE(approx_4x4_errs(a, b));
      } else {
        EXPECT_FALSE(approx_4x4_errs(a, b));
      }
    }
  }
  EXPECT_EQ(errors, 6u);
}

TEST(Approx4x4, Table2ErrorPairs) {
  // The six (multiplicand, multiplier) pairs of Table 2, as (a, b) with
  // a = A (multiplicand) and b = B (multiplier).
  const std::set<std::pair<std::uint64_t, std::uint64_t>> expected = {
      {15, 5}, {7, 6}, {15, 6}, {15, 7}, {13, 13}, {5, 15}};
  std::set<std::pair<std::uint64_t, std::uint64_t>> got;
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      if (approx_4x4(a, b) != a * b) got.insert({a, b});
    }
  }
  EXPECT_EQ(got, expected);
}

TEST(Approx4x4, SwappingFixesFourOfSixCases) {
  // Paper: the highlighted Table 2 inputs are error-free with the operands
  // mutually swapped; only the symmetric pairs {5,15} and {13,13} remain.
  unsigned fixed_by_swap = 0;
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      if (approx_4x4(a, b) != a * b && approx_4x4(b, a) == a * b) ++fixed_by_swap;
    }
  }
  EXPECT_EQ(fixed_by_swap, 3u);  // (7,6), (15,6), (15,7)
}

TEST(Approx4x4AccurateSum, MatchesPaperErrorProbability) {
  // Paper 3.2: average relative error 0.049, error probability 0.375.
  unsigned errors = 0;
  double rel = 0.0;
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      const std::uint64_t exact = a * b;
      const std::uint64_t approx = approx_4x4_accurate_sum(a, b);
      EXPECT_LE(approx, exact);
      if (approx != exact) {
        ++errors;
        rel += static_cast<double>(exact - approx) / static_cast<double>(exact);
      }
    }
  }
  EXPECT_EQ(errors, 96u);  // 0.375 * 256
  EXPECT_NEAR(rel / 256.0, 0.049, 0.002);
}

TEST(Approx4x4PropOnly, DoublesErrorMagnitude) {
  // Design-choice ablation: zeroing the generate signal instead of the
  // propagate signal loses the carry and doubles the error to 16.
  unsigned errors = 0;
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      const std::uint64_t exact = a * b;
      const std::uint64_t approx = approx_4x4_prop_only(a, b);
      if (approx != exact) {
        ++errors;
        EXPECT_EQ(exact - approx, 16u) << "a=" << a << " b=" << b;
      }
    }
  }
  EXPECT_EQ(errors, 6u);
}

TEST(Kulkarni2x2, OnlyThreeTimesThreeErrs) {
  for (std::uint64_t a = 0; a < 4; ++a) {
    for (std::uint64_t b = 0; b < 4; ++b) {
      const std::uint64_t expected = (a == 3 && b == 3) ? 7u : a * b;
      EXPECT_EQ(kulkarni_2x2(a, b), expected);
    }
  }
}

TEST(Rehman2x2, ThreeErrorCasesOfMagnitudeOne) {
  unsigned errors = 0;
  for (std::uint64_t a = 0; a < 4; ++a) {
    for (std::uint64_t b = 0; b < 4; ++b) {
      const std::uint64_t exact = a * b;
      const std::uint64_t approx = rehman_2x2(a, b);
      if (approx != exact) {
        ++errors;
        EXPECT_EQ(exact - approx, 1u);
      }
    }
  }
  EXPECT_EQ(errors, 3u);
}

}  // namespace
}  // namespace axmult::mult
