// The operand-swap trick (paper Section 6, Cas/Ccs): exhaustive 8x8
// verification that swapping is pure wiring (Cas(a,b) == Ca(b,a)), that
// error::swapped_source is the characterization-side identity for it, and
// that under asymmetric operand distributions the swapped designs show
// exactly the MRE asymmetry error::metrics predicts.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "error/metrics.hpp"
#include "mult/recursive.hpp"

namespace axmult {
namespace {

/// Asymmetric operand trace: a drawn small ([0, 16)), b drawn large
/// ([128, 256)) — the sensor-coefficient shape Section 6 motivates. The
/// ranges are picked so both the Ca and the Cc families show a clear MRE
/// split between base and swapped variants.
std::vector<std::pair<std::uint64_t, std::uint64_t>> asymmetric_trace(std::size_t n,
                                                                      std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> trace(n);
  for (auto& [a, b] : trace) {
    a = rng.below(16);
    b = 128 + rng.below(128);
  }
  return trace;
}

void expect_same_metrics(const error::ErrorMetrics& x, const error::ErrorMetrics& y) {
  EXPECT_EQ(x.samples, y.samples);
  EXPECT_EQ(x.max_error, y.max_error);
  EXPECT_EQ(x.occurrences, y.occurrences);
  EXPECT_EQ(x.max_error_occurrences, y.max_error_occurrences);
  EXPECT_DOUBLE_EQ(x.avg_error, y.avg_error);
  EXPECT_DOUBLE_EQ(x.avg_relative_error, y.avg_relative_error);
  EXPECT_DOUBLE_EQ(x.mean_signed_error, y.mean_signed_error);
}

TEST(OperandSwap, ExhaustiveSwapIsPureWiring) {
  const auto ca = mult::make_ca(8);
  const auto cas = mult::make_cas(8);
  const auto cc = mult::make_cc(8);
  const auto ccs = mult::make_ccs(8);
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      ASSERT_EQ(cas->multiply(a, b), ca->multiply(b, a));
      ASSERT_EQ(ccs->multiply(a, b), cc->multiply(b, a));
    }
  }
}

TEST(OperandSwap, ExhaustiveMetricsIdenticalUnderUniformOperands) {
  // Over the full (symmetric) input space, swapping cannot change any
  // aggregate metric — the swap only pays off for asymmetric inputs.
  expect_same_metrics(error::characterize_exhaustive(*mult::make_ca(8)),
                      error::characterize_exhaustive(*mult::make_cas(8)));
  expect_same_metrics(error::characterize_exhaustive(*mult::make_cc(8)),
                      error::characterize_exhaustive(*mult::make_ccs(8)));
}

TEST(OperandSwap, SwappedSourceIsTheCharacterizationSideIdentity) {
  // characterize(swapped design, s) == characterize(design, swapped_source(s))
  const auto trace = asymmetric_trace(4096, 3);
  for (const bool carry_free : {false, true}) {
    const auto base = carry_free ? mult::make_cc(8) : mult::make_ca(8);
    const auto swapped = carry_free ? mult::make_ccs(8) : mult::make_cas(8);
    expect_same_metrics(
        error::characterize(*swapped, error::trace_source(trace)),
        error::characterize(*base, error::swapped_source(error::trace_source(trace))));
  }
}

TEST(OperandSwap, ExhaustiveHalfSpaceMrePredictsSwapBenefit) {
  // Exhaustive 8x8 statement of the asymmetry: the MRE of Ca over the
  // half-space {a < b} must equal the MRE of Cas over the mirrored
  // half-space {a > b}, because Cas routes each pair through Ca reversed.
  // (Same for Cc/Ccs.) This is the quantity error::metrics predicts when
  // deciding whether a layer should enable the swap.
  for (const bool carry_free : {false, true}) {
    const auto base = carry_free ? mult::make_cc(8) : mult::make_ca(8);
    const auto swapped = carry_free ? mult::make_ccs(8) : mult::make_cas(8);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> lower, upper;
    for (std::uint64_t a = 0; a < 256; ++a) {
      for (std::uint64_t b = a + 1; b < 256; ++b) lower.emplace_back(a, b);
    }
    for (const auto& [a, b] : lower) upper.emplace_back(b, a);
    expect_same_metrics(error::characterize(*base, error::trace_source(lower)),
                        error::characterize(*swapped, error::trace_source(upper)));
  }
}

TEST(OperandSwap, AsymmetricDistributionSeparatesBaseFromSwapped) {
  // Under a genuinely asymmetric distribution the base and swapped designs
  // must report different MREs (whichever direction wins, the separation
  // is what makes the per-layer swap flag worth exposing).
  const auto trace = asymmetric_trace(8192, 7);
  const auto src = [&] { return error::trace_source(trace); };
  const double ca_mre = error::characterize(*mult::make_ca(8), src()).avg_relative_error;
  const double cas_mre = error::characterize(*mult::make_cas(8), src()).avg_relative_error;
  const double cc_mre = error::characterize(*mult::make_cc(8), src()).avg_relative_error;
  const double ccs_mre = error::characterize(*mult::make_ccs(8), src()).avg_relative_error;
  // Relative separation of at least 2% keeps this robust but meaningful.
  EXPECT_GT(std::abs(ca_mre - cas_mre), 0.02 * std::max(ca_mre, cas_mre));
  EXPECT_GT(std::abs(cc_mre - ccs_mre), 0.02 * std::max(cc_mre, ccs_mre));
}

}  // namespace
}  // namespace axmult
