// Exhaustive 16x16 (2^32-pair) error characterization — the workload the
// batched + multithreaded sweep path exists for. Opt-in: several minutes of
// CPU even when fanned out, so it only runs with AXMULT_HEAVY=1 set (the
// suite is also labeled `heavy` in ctest: `ctest -L heavy`).
#include <gtest/gtest.h>

#include <cstdlib>

#include "error/metrics.hpp"
#include "mult/recursive.hpp"
#include "multgen/generators.hpp"

namespace axmult::error {
namespace {

class HeavySweep : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::getenv("AXMULT_HEAVY") == nullptr) {
      GTEST_SKIP() << "set AXMULT_HEAVY=1 to run the 2^32-pair sweeps";
    }
  }
};

TEST_F(HeavySweep, ExhaustiveCa16AllFourBillionPairs) {
  const auto m = mult::make_ca(16);
  SweepConfig cfg;
  // The per-magnitude PMF of a 16x16 design has millions of support points;
  // the metrics and per-bit probabilities are what Table 5 needs.
  cfg.collect_pmf = false;
  const auto r = sweep_exhaustive(*m, cfg);

  EXPECT_EQ(r.metrics.samples, std::uint64_t{1} << 32);
  // Ground truth computed by this same sweep; smaller widths of the same
  // recursion are cross-checked against the scalar PairSource path in
  // sweep_test.cpp, and thread counts are interchangeable bit-exactly.
  EXPECT_EQ(r.metrics.max_error, std::uint64_t{152705288});
  EXPECT_EQ(r.metrics.max_error_occurrences, std::uint64_t{98});
  EXPECT_EQ(r.metrics.occurrences, std::uint64_t{1120194910});
  EXPECT_NEAR(r.metrics.avg_error, 3579030.1875, 0.01);
  ASSERT_EQ(r.bit_error_probability.size(), 32u);
  EXPECT_EQ(r.bit_error_probability[0], 0.0);  // LSB column is exact in Ca
}

TEST_F(HeavySweep, NetlistReplayCa16MatchesBehavioralConstants) {
  // Same 2^32-pair space, but replayed through the LUT6/CARRY4 netlist with
  // the 64-lane bit-parallel evaluator — the full tentpole pipeline.
  const auto nl = multgen::make_ca_netlist(16);
  SweepConfig cfg;
  cfg.collect_pmf = false;
  cfg.collect_bit_probability = false;
  const auto r = sweep_netlist_exhaustive(nl, 16, 16, cfg);

  EXPECT_EQ(r.metrics.samples, std::uint64_t{1} << 32);
  EXPECT_EQ(r.metrics.max_error, std::uint64_t{152705288});
  EXPECT_EQ(r.metrics.max_error_occurrences, std::uint64_t{98});
  EXPECT_EQ(r.metrics.occurrences, std::uint64_t{1120194910});
}

}  // namespace
}  // namespace axmult::error
