// Exhaustive 16x16 (2^32-pair) error characterization — the workload the
// batched + multithreaded sweep path exists for. Opt-in: several minutes of
// CPU even when fanned out, so it only runs with AXMULT_HEAVY=1 set (the
// suite is also labeled `heavy` in ctest: `ctest -L heavy`).
#include <gtest/gtest.h>

#include <cstdlib>

#include "check/analytic.hpp"
#include "error/analytic.hpp"
#include "error/metrics.hpp"
#include "mult/recursive.hpp"
#include "multgen/generators.hpp"

namespace axmult::error {
namespace {

class HeavySweep : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::getenv("AXMULT_HEAVY") == nullptr) {
      GTEST_SKIP() << "set AXMULT_HEAVY=1 to run the 2^32-pair sweeps";
    }
  }
};

TEST_F(HeavySweep, ExhaustiveCa16AllFourBillionPairs) {
  const auto m = mult::make_ca(16);
  SweepConfig cfg;
  // The per-magnitude PMF of a 16x16 design has millions of support points;
  // the metrics and per-bit probabilities are what Table 5 needs.
  cfg.collect_pmf = false;
  const auto r = sweep_exhaustive(*m, cfg);

  EXPECT_EQ(r.metrics.samples, std::uint64_t{1} << 32);
  // Ground truth computed by this same sweep; smaller widths of the same
  // recursion are cross-checked against the scalar PairSource path in
  // sweep_test.cpp, and thread counts are interchangeable bit-exactly.
  EXPECT_EQ(r.metrics.max_error, std::uint64_t{152705288});
  EXPECT_EQ(r.metrics.max_error_occurrences, std::uint64_t{98});
  EXPECT_EQ(r.metrics.occurrences, std::uint64_t{1120194910});
  EXPECT_NEAR(r.metrics.avg_error, 3579030.1875, 0.01);
  ASSERT_EQ(r.bit_error_probability.size(), 32u);
  EXPECT_EQ(r.bit_error_probability[0], 0.0);  // LSB column is exact in Ca
}

TEST_F(HeavySweep, NetlistReplayCa16MatchesBehavioralConstants) {
  // Same 2^32-pair space, but replayed through the LUT6/CARRY4 netlist with
  // the 64-lane bit-parallel evaluator — the full tentpole pipeline.
  const auto nl = multgen::make_ca_netlist(16);
  SweepConfig cfg;
  cfg.collect_pmf = false;
  cfg.collect_bit_probability = false;
  const auto r = sweep_netlist_exhaustive(nl, 16, 16, cfg);

  EXPECT_EQ(r.metrics.samples, std::uint64_t{1} << 32);
  EXPECT_EQ(r.metrics.max_error, std::uint64_t{152705288});
  EXPECT_EQ(r.metrics.max_error_occurrences, std::uint64_t{98});
  EXPECT_EQ(r.metrics.occurrences, std::uint64_t{1120194910});
}

TEST_F(HeavySweep, AnalyticCa16MatchesTheFullSweepBitForBit) {
  // The ultimate check on the analytic engine's 16-bit claims: the factor
  // strategy against an actual 2^32-pair behavioral sweep with the PMF
  // collected, not just the frozen constants above.
  const auto spec = check::catalog_analytic_spec("Ca_16");
  ASSERT_TRUE(spec.has_value());
  std::string why;
  const auto am = analytic_metrics(*spec, &why);
  ASSERT_TRUE(am.has_value()) << why;

  const auto m = mult::make_ca(16);
  SweepConfig cfg;
  cfg.collect_pmf = true;
  cfg.collect_bit_probability = false;
  const auto r = sweep_exhaustive(*m, cfg);

  EXPECT_EQ(am->metrics.samples, r.metrics.samples);
  EXPECT_EQ(am->metrics.max_error, r.metrics.max_error);
  EXPECT_EQ(am->metrics.max_error_occurrences, r.metrics.max_error_occurrences);
  EXPECT_EQ(am->metrics.occurrences, r.metrics.occurrences);
  EXPECT_DOUBLE_EQ(am->metrics.avg_error, r.metrics.avg_error);
  EXPECT_NEAR(am->metrics.avg_relative_error, r.metrics.avg_relative_error,
              1e-12 * r.metrics.avg_relative_error);
  if (am->has_pmf) {
    EXPECT_EQ(am->pmf.size(), r.pmf.size());
    for (const auto& [e, n] : r.pmf) {
      const auto it = am->pmf.find(e);
      ASSERT_TRUE(it != am->pmf.end()) << "magnitude " << e << " missing from analytic PMF";
      EXPECT_EQ(it->second, n) << "magnitude " << e;
    }
  }
}

}  // namespace
}  // namespace axmult::error
