// Tests for the approximate adder sub-library.
#include <gtest/gtest.h>

#include "error/metrics.hpp"
#include "fabric/netlist.hpp"
#include "mult/adders.hpp"
#include "multgen/generators.hpp"
#include "timing/sta.hpp"

namespace axmult::mult {
namespace {

error::ErrorMetrics characterize_adder(const Adder& adder) {
  return error::characterize_op(
      [&](std::uint64_t a, std::uint64_t b) { return adder.add(a, b); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; },
      error::exhaustive_source(adder.bits(), adder.bits()));
}

TEST(Adders, AccurateAdderIsExact) {
  const auto add = make_accurate_adder(8);
  const auto r = characterize_adder(*add);
  EXPECT_EQ(r.occurrences, 0u);
  EXPECT_EQ(add->add(255, 255), 510u);
}

TEST(Adders, LoaErrorIsBoundedByLowPart) {
  for (unsigned l : {1u, 2u, 3u, 4u}) {
    const auto loa = make_loa(8, l);
    const auto r = characterize_adder(*loa);
    EXPECT_LT(r.max_error, std::uint64_t{1} << l) << l;
    EXPECT_GT(r.occurrences, 0u);
  }
  // Error grows monotonically with the OR depth.
  EXPECT_LT(characterize_adder(*make_loa(8, 2)).avg_error,
            characterize_adder(*make_loa(8, 4)).avg_error);
}

TEST(Adders, LoaIsExactWhenOperandsShareNoLowBits) {
  const auto loa = make_loa(8, 4);
  // Disjoint low nibbles: OR == ADD, no carries lost.
  EXPECT_EQ(loa->add(0b10100101, 0b01011010), 0b10100101u + 0b01011010u);
}

TEST(Adders, TruncatedAdderClosedForm) {
  const auto t = make_truncated_adder(8, 3);
  const auto r = characterize_adder(*t);
  EXPECT_LT(r.max_error, 16u);  // two 3-bit tails < 8 + 8
  EXPECT_EQ(t->add(7, 7), 0u);  // both 3-bit tails dropped entirely
}

TEST(Adders, SegmentedAdderErrsOnlyOnSegmentBoundaryCarries) {
  const auto seg = make_segmented_adder(8, 4);
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) {
      const bool low_carry = ((a & 0xF) + (b & 0xF)) > 0xF;
      const std::uint64_t got = seg->add(a, b);
      if (low_carry) {
        ASSERT_NE(got, a + b) << a << "+" << b;
      } else {
        ASSERT_EQ(got, a + b) << a << "+" << b;
      }
    }
  }
}

TEST(Adders, XorAdderIsTheCarryFreeLimit) {
  const auto x = make_xor_adder(8);
  EXPECT_EQ(x->add(0b1010, 0b0101), 0b1111u);
  EXPECT_EQ(x->add(0b1111, 0b0001), 0b1110u);
}

TEST(Adders, RejectBadConfigurations) {
  EXPECT_THROW(make_loa(8, 9), std::invalid_argument);
  EXPECT_THROW(make_truncated_adder(8, 9), std::invalid_argument);
  EXPECT_THROW(make_segmented_adder(8, 0), std::invalid_argument);
  EXPECT_THROW(make_accurate_adder(0), std::invalid_argument);
}

// ---- netlist equivalence ---------------------------------------------------

TEST(AdderNetlists, AccurateMatchesExhaustively) {
  const auto nl = multgen::make_adder_netlist(8);
  fabric::Evaluator ev(nl);
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) {
      ASSERT_EQ(ev.eval_word(a, 8, b, 8), a + b);
    }
  }
  EXPECT_EQ(nl.area().luts, 9u);  // one per output bit
}

TEST(AdderNetlists, LoaMatchesModelExhaustively) {
  for (unsigned l : {2u, 4u}) {
    const auto model = make_loa(8, l);
    const auto nl = multgen::make_loa_netlist(8, l);
    fabric::Evaluator ev(nl);
    for (std::uint64_t a = 0; a < 256; ++a) {
      for (std::uint64_t b = 0; b < 256; ++b) {
        ASSERT_EQ(ev.eval_word(a, 8, b, 8), model->add(a, b)) << l;
      }
    }
  }
}

TEST(AdderNetlists, SegmentedMatchesModelExhaustively) {
  const auto model = make_segmented_adder(8, 4);
  const auto nl = multgen::make_segmented_adder_netlist(8, 4);
  fabric::Evaluator ev(nl);
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) {
      ASSERT_EQ(ev.eval_word(a, 8, b, 8), model->add(a, b));
    }
  }
}

TEST(AdderNetlists, ApproximationShortensTheCriticalPath) {
  const double exact = timing::analyze(multgen::make_adder_netlist(16)).critical_path_ns;
  const double loa = timing::analyze(multgen::make_loa_netlist(16, 8)).critical_path_ns;
  const double seg = timing::analyze(multgen::make_segmented_adder_netlist(16, 4)).critical_path_ns;
  EXPECT_LT(loa, exact);
  EXPECT_LT(seg, exact);
}

}  // namespace
}  // namespace axmult::mult
