// Cross-process discipline of the persistent EvalCache: concurrent
// writers through *independent* EvalCache instances on one backing file
// (the two-process case, exercised in-process via separate instances,
// which flock still serializes because each holds its own open file
// description) must produce a file of whole, parseable lines with every
// key exactly once; reload() must make one instance's inserts visible to
// another.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dse/cache.hpp"
#include "dse/jsonio.hpp"

namespace {

using namespace axmult;

std::string temp_cache_path(const char* name) {
  return "/tmp/axmult_cache_test_" + std::to_string(::getpid()) + "_" + name + ".jsonl";
}

dse::Objectives make_objectives(unsigned i) {
  dse::Objectives obj;
  obj.mre = 0.001 * i;
  obj.nmed = 0.0001 * i;
  obj.luts = 10 + i;
  obj.carry4 = i;
  obj.critical_path_ns = 1.5 + 0.01 * i;
  obj.samples = 65536;
  obj.seed = 1;
  obj.exhaustive = true;
  obj.provenance = "test";
  return obj;
}

struct ParsedFile {
  std::size_t lines = 0;
  std::map<std::string, std::size_t> key_counts;
  std::size_t malformed = 0;
};

ParsedFile parse_cache_file(const std::string& path) {
  ParsedFile parsed;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    ++parsed.lines;
    const auto key = dse::jsonio::find_string(line, "key");
    const auto obj = dse::EvalCache::parse_objectives(line);
    if (!key || !obj || line.front() != '{' || line.back() != '}') {
      ++parsed.malformed;
      continue;
    }
    ++parsed.key_counts[*key];
  }
  return parsed;
}

TEST(CacheConcurrency, TwoWritersManyThreadsNeverTearLines) {
  const std::string path = temp_cache_path("writers");
  std::remove(path.c_str());
  {
    dse::EvalCache first(path);
    dse::EvalCache second(path);
    dse::EvalCache* caches[2] = {&first, &second};

    // 4 threads x 2 cache instances x 50 keys, with the key space shared
    // across all writers so same-key races happen constantly.
    constexpr unsigned kThreadsPerCache = 4;
    constexpr unsigned kKeys = 50;
    std::vector<std::thread> threads;
    for (unsigned w = 0; w < 2; ++w) {
      for (unsigned t = 0; t < kThreadsPerCache; ++t) {
        threads.emplace_back([&, w, t] {
          for (unsigned i = 0; i < kKeys; ++i) {
            // Interleave orders per thread so contention hits every key.
            const unsigned key_index = (i + t * 13 + w * 29) % kKeys;
            caches[w]->insert("ctx|key" + std::to_string(key_index),
                              make_objectives(key_index));
          }
        });
      }
    }
    for (auto& thread : threads) thread.join();

    ParsedFile parsed = parse_cache_file(path);
    EXPECT_EQ(0u, parsed.malformed) << "torn or unparseable lines in the cache file";
    // Every key appears in the file EXACTLY once: the insert path merges
    // other writers' appends under the flock before writing its own.
    EXPECT_EQ(kKeys, parsed.key_counts.size());
    for (const auto& [key, count] : parsed.key_counts) {
      EXPECT_EQ(1u, count) << key << " written " << count << " times";
    }
  }
  std::remove(path.c_str());
}

TEST(CacheConcurrency, ReloadMakesForeignInsertsVisible) {
  const std::string path = temp_cache_path("reload");
  std::remove(path.c_str());
  {
    dse::EvalCache writer(path);
    dse::EvalCache reader(path);

    writer.insert("ctx|fresh", make_objectives(7));
    // The reader bound the file before the insert: a plain lookup misses...
    EXPECT_FALSE(reader.lookup("ctx|fresh").has_value());
    // ...and reload() merges exactly the one new line.
    EXPECT_EQ(1u, reader.reload());
    const auto hit = reader.lookup("ctx|fresh");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(dse::EvalCache::serialize_objectives(make_objectives(7)),
              dse::EvalCache::serialize_objectives(*hit));
    // Nothing new since: reload is a cheap no-op.
    EXPECT_EQ(0u, reader.reload());
  }
  std::remove(path.c_str());
}

TEST(CacheConcurrency, DuplicateInsertAcrossInstancesWritesOneLine) {
  const std::string path = temp_cache_path("dedup");
  std::remove(path.c_str());
  {
    dse::EvalCache first(path);
    dse::EvalCache second(path);
    first.insert("ctx|shared", make_objectives(3));
    // second has not seen the key in memory, but the file-lock merge
    // inside insert() discovers it on disk and skips the append.
    second.insert("ctx|shared", make_objectives(3));

    ParsedFile parsed = parse_cache_file(path);
    EXPECT_EQ(1u, parsed.lines);
    EXPECT_EQ(1u, parsed.key_counts["ctx|shared"]);
  }
  std::remove(path.c_str());
}

TEST(CacheConcurrency, FreshInstanceLoadsEverythingWritersProduced) {
  const std::string path = temp_cache_path("reopen");
  std::remove(path.c_str());
  {
    dse::EvalCache writer(path);
    for (unsigned i = 0; i < 20; ++i) {
      writer.insert("ctx|k" + std::to_string(i), make_objectives(i));
    }
  }
  dse::EvalCache reopened(path);
  EXPECT_EQ(20u, reopened.loaded_entries());
  for (unsigned i = 0; i < 20; ++i) {
    EXPECT_TRUE(reopened.lookup("ctx|k" + std::to_string(i)).has_value()) << i;
  }
  std::remove(path.c_str());
}

TEST(CacheConcurrency, InMemoryCacheReloadIsNoop) {
  dse::EvalCache memory;
  memory.insert("ctx|x", make_objectives(1));
  EXPECT_EQ(0u, memory.reload());
  EXPECT_TRUE(memory.lookup("ctx|x").has_value());
}

TEST(CacheCompact, DropsStaleDuplicatesAndMalformed) {
  const std::string path = temp_cache_path("compact");
  std::remove(path.c_str());
  {
    dse::EvalCache writer(path);
    writer.insert("ctx|k1", make_objectives(1));
    writer.insert("ctx|k2", make_objectives(2));
  }
  {
    // Debris another (crashed / older) writer could have left behind: a
    // stale-version entry, a superseding duplicate of k1, and a torn line.
    std::ofstream raw(path, std::ios::app);
    raw << "{\"v\": 1, \"key\": \"ctx|old\", "
        << dse::EvalCache::serialize_objectives(make_objectives(9)) << "}\n";
    raw << "{\"v\": 2, \"key\": \"ctx|k1\", "
        << dse::EvalCache::serialize_objectives(make_objectives(11)) << "}\n";
    raw << "{\"v\": 2, \"key\": \"ctx|torn";  // no newline, no closing brace
  }
  dse::EvalCache cache(path);
  const dse::EvalCache::CompactStats stats = cache.compact();
  EXPECT_EQ(2u, stats.kept);
  EXPECT_EQ(1u, stats.dropped_stale);
  EXPECT_EQ(1u, stats.dropped_duplicate);
  EXPECT_EQ(1u, stats.dropped_malformed);
  ParsedFile parsed = parse_cache_file(path);
  EXPECT_EQ(2u, parsed.lines);
  EXPECT_EQ(0u, parsed.malformed);
  EXPECT_EQ(1u, parsed.key_counts["ctx|k1"]);
  EXPECT_EQ(1u, parsed.key_counts["ctx|k2"]);
  // The duplicate's freshest write is what survives, in memory and in a
  // fresh load alike.
  const auto k1 = cache.lookup("ctx|k1");
  ASSERT_TRUE(k1.has_value());
  EXPECT_EQ(dse::EvalCache::serialize_objectives(make_objectives(11)),
            dse::EvalCache::serialize_objectives(*k1));
  dse::EvalCache reopened(path);
  EXPECT_EQ(2u, reopened.loaded_entries());
  std::remove(path.c_str());
}

TEST(CacheCompact, IdempotentAndInMemoryNoop) {
  const std::string path = temp_cache_path("compact_idem");
  std::remove(path.c_str());
  dse::EvalCache cache(path);
  for (unsigned i = 0; i < 8; ++i) cache.insert("ctx|k" + std::to_string(i), make_objectives(i));
  const dse::EvalCache::CompactStats first = cache.compact();
  EXPECT_EQ(8u, first.kept);
  const dse::EvalCache::CompactStats second = cache.compact();
  EXPECT_EQ(8u, second.kept);
  EXPECT_EQ(0u, second.dropped_stale + second.dropped_duplicate + second.dropped_malformed);
  dse::EvalCache memory;
  memory.insert("ctx|x", make_objectives(1));
  const dse::EvalCache::CompactStats mem = memory.compact();
  EXPECT_EQ(0u, mem.kept);
  std::remove(path.c_str());
}

TEST(CacheCompact, WriterNoticesShrinkAndLosesNothing) {
  const std::string path = temp_cache_path("compact_shrink");
  std::remove(path.c_str());
  dse::EvalCache writer(path);
  for (unsigned i = 0; i < 5; ++i) writer.insert("ctx|k" + std::to_string(i), make_objectives(i));
  {
    // A crashed writer left a pile of duplicate lines behind; the first
    // writer merges them all, so its offset sits at the bloated EOF.
    std::ofstream raw(path, std::ios::app);
    for (unsigned i = 0; i < 20; ++i) {
      raw << "{\"v\": 2, \"key\": \"ctx|k0\", "
          << dse::EvalCache::serialize_objectives(make_objectives(40)) << "}\n";
    }
  }
  (void)writer.reload();
  // A second process compacts: the file shrinks far below the first
  // writer's merged offset.
  dse::EvalCache other(path);
  (void)other.compact();
  // The first writer's next insert must detect the shrink, re-merge from
  // the start, and keep every key intact.
  writer.insert("ctx|k5", make_objectives(5));
  ParsedFile parsed = parse_cache_file(path);
  EXPECT_EQ(6u, parsed.lines);
  EXPECT_EQ(0u, parsed.malformed);
  for (unsigned i = 0; i < 6; ++i) {
    EXPECT_EQ(1u, parsed.key_counts["ctx|k" + std::to_string(i)]) << i;
  }
  const auto k0 = writer.lookup("ctx|k0");
  ASSERT_TRUE(k0.has_value());
  EXPECT_EQ(dse::EvalCache::serialize_objectives(make_objectives(40)),
            dse::EvalCache::serialize_objectives(*k0));
  std::remove(path.c_str());
}

TEST(CacheCompact, TwoProcessCompactVsAppendRace) {
  const std::string path = temp_cache_path("compact_race");
  std::remove(path.c_str());
  constexpr unsigned kKeys = 150;
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: its own EvalCache (own open file description, own flock)
    // appending a steady stream of fresh keys.
    {
      dse::EvalCache appender(path);
      for (unsigned i = 0; i < kKeys; ++i) {
        appender.insert("ctx|race" + std::to_string(i), make_objectives(i));
      }
    }
    ::_exit(0);
  }
  {
    dse::EvalCache compactor(path);
    for (unsigned round = 0; round < 40; ++round) {
      (void)compactor.compact();
    }
  }
  int status = 0;
  ASSERT_EQ(pid, ::waitpid(pid, &status, 0));
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(0, WEXITSTATUS(status));
  // Transient duplicates are tolerated mid-race; after one quiescent
  // compaction the file must hold every appended key exactly once.
  dse::EvalCache final_pass(path);
  (void)final_pass.compact();
  ParsedFile parsed = parse_cache_file(path);
  EXPECT_EQ(0u, parsed.malformed);
  EXPECT_EQ(static_cast<std::size_t>(kKeys), parsed.key_counts.size());
  for (unsigned i = 0; i < kKeys; ++i) {
    EXPECT_EQ(1u, parsed.key_counts["ctx|race" + std::to_string(i)]) << i;
  }
  std::remove(path.c_str());
}

}  // namespace
