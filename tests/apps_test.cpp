// Tests for the application substrate: images, SUSAN, Reed-Solomon, DCT.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <numeric>

#include "apps/image.hpp"
#include "apps/jpeg.hpp"
#include "apps/reed_solomon.hpp"
#include "apps/susan.hpp"
#include "common/rng.hpp"
#include "fabric/netlist.hpp"
#include "mult/recursive.hpp"
#include "timing/sta.hpp"

namespace axmult::apps {
namespace {

// ---------------------------------------------------------------- images

TEST(Image, SceneIsDeterministicPerSeed) {
  const auto a = make_test_scene(64, 64, 3);
  const auto b = make_test_scene(64, 64, 3);
  const auto c = make_test_scene(64, 64, 4);
  EXPECT_EQ(a.pixels(), b.pixels());
  EXPECT_NE(a.pixels(), c.pixels());
}

TEST(Image, PsnrProperties) {
  const auto a = make_test_scene(64, 64, 3, 0.0);
  EXPECT_TRUE(std::isinf(psnr(a, a)));
  const auto noisy = make_test_scene(64, 64, 3, 8.0);
  const auto noisier = make_test_scene(64, 64, 3, 20.0);
  EXPECT_GT(psnr(a, noisy), psnr(a, noisier));
  EXPECT_GT(mse(a, noisier), mse(a, noisy));
}

TEST(Image, ClampedAccessReplicatesEdges) {
  Image img(4, 4);
  img.at(0, 0) = 42;
  img.at(3, 3) = 17;
  EXPECT_EQ(img.clamped(-5, -5), 42);
  EXPECT_EQ(img.clamped(9, 9), 17);
}

TEST(Image, WritesPgm) {
  const auto img = make_test_scene(16, 16);
  // Unique per-test-run path: ctest -j runs suites concurrently, and a
  // fixed /tmp name would let parallel invocations race on the file.
  const std::string path = testing::TempDir() + "axmult_apps_test_writes_pgm.pgm";
  img.write_pgm(path);
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[3] = {};
  ASSERT_EQ(std::fread(magic, 1, 2, f), 2u);
  EXPECT_EQ(magic[0], 'P');
  EXPECT_EQ(magic[1], '5');
  std::fclose(f);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- SUSAN

TEST(Susan, AccurateSmoothingReducesNoise) {
  const auto clean = make_test_scene(96, 96, 5, 0.0);
  const auto noisy = make_test_scene(96, 96, 5, 10.0);
  SusanSmoother smoother(mult::make_accurate(8));
  const auto smoothed = smoother.smooth(noisy);
  EXPECT_GT(psnr(clean, smoothed), psnr(clean, noisy));
}

TEST(Susan, Table6QualityOrderings) {
  // Table 6 shape anchors that must hold on our scenes:
  //  * swap improves the asymmetric designs (Cas > Ca, Ccs >= Cc),
  //  * Ca beats Cc beats K,
  //  * everything approximate is worse than accurate (finite PSNR).
  const auto img = make_test_scene(96, 96, 7);
  auto run = [&](mult::MultiplierPtr m, bool swap) {
    SusanConfig cfg;
    cfg.swap_operands = swap;
    return SusanSmoother(std::move(m), cfg).smooth(img);
  };
  const auto ref = run(mult::make_accurate(8), false);
  const double ca = psnr(ref, run(mult::make_ca(8), false));
  const double cas = psnr(ref, run(mult::make_ca(8), true));
  const double cc = psnr(ref, run(mult::make_cc(8), false));
  const double ccs = psnr(ref, run(mult::make_cc(8), true));
  const double k = psnr(ref, run(mult::make_kulkarni(8), false));
  EXPECT_GT(cas, ca);
  EXPECT_GE(ccs, cc - 0.1);
  EXPECT_GT(ca, cc);
  EXPECT_GT(cc, k);
  EXPECT_GT(ca, 30.0);  // "insignificant output quality loss"
  EXPECT_TRUE(std::isfinite(ca));
}

TEST(Susan, TraceRecordsEveryMultiplication) {
  const auto img = make_test_scene(32, 32, 9);
  SusanSmoother smoother(mult::make_accurate(8));
  std::vector<std::pair<std::uint64_t, std::uint64_t>> trace;
  const auto out = smoother.smooth_traced(img, trace);
  (void)out;
  EXPECT_FALSE(trace.empty());
  // Every recorded operand must be 8-bit.
  for (const auto& [a, b] : trace) {
    EXPECT_LT(a, 256u);
    EXPECT_LT(b, 256u);
  }
  // Fig. 12: the weight operand concentrates in a narrow high band on
  // smooth regions — the mode of the weight histogram is near 255.
  std::array<std::uint64_t, 256> hist{};
  for (const auto& [w, p] : trace) {
    (void)p;
    ++hist[w];
  }
  const auto mode = std::max_element(hist.begin(), hist.end()) - hist.begin();
  EXPECT_GT(mode, 200);
}

TEST(Susan, SwapActuallySwapsOperands) {
  const auto img = make_test_scene(16, 16, 9);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> t1;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> t2;
  SusanConfig swap_cfg;
  swap_cfg.swap_operands = true;
  (void)SusanSmoother(mult::make_accurate(8)).smooth_traced(img, t1);
  (void)SusanSmoother(mult::make_accurate(8), swap_cfg).smooth_traced(img, t2);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].first, t2[i].second);
    EXPECT_EQ(t1[i].second, t2[i].first);
  }
}

TEST(Susan, RejectsWrongWidthMultiplier) {
  EXPECT_THROW(SusanSmoother(mult::make_ca(16)), std::invalid_argument);
}

// ---------------------------------------------------------- Reed-Solomon

TEST(GF256Test, FieldAxioms) {
  GF256 gf;
  Xoshiro256 rng(5);
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<std::uint8_t>(rng() & 0xFF);
    const auto b = static_cast<std::uint8_t>(rng() & 0xFF);
    const auto c = static_cast<std::uint8_t>(rng() & 0xFF);
    EXPECT_EQ(gf.mul(a, b), gf.mul(b, a));
    EXPECT_EQ(gf.mul(a, gf.mul(b, c)), gf.mul(gf.mul(a, b), c));
    EXPECT_EQ(gf.mul(a, 1), a);
    EXPECT_EQ(gf.mul(a, 0), 0);
    // Distributivity over XOR.
    EXPECT_EQ(gf.mul(a, gf.add(b, c)), gf.add(gf.mul(a, b), gf.mul(a, c)));
    if (a != 0) {
      EXPECT_EQ(gf.mul(a, gf.inverse(a)), 1);
    }
  }
}

TEST(ReedSolomon, EncodedCodewordsHaveZeroSyndromes) {
  RsEncoder rs(255, 239);
  Xoshiro256 rng(11);
  std::vector<std::uint8_t> msg(239);
  for (auto& m : msg) m = static_cast<std::uint8_t>(rng() & 0xFF);
  const auto cw = rs.encode(msg);
  ASSERT_EQ(cw.size(), 255u);
  for (std::uint8_t s : rs.syndromes(cw)) EXPECT_EQ(s, 0);
}

TEST(ReedSolomon, CorruptionBreaksSyndromes) {
  RsEncoder rs(255, 239);
  std::vector<std::uint8_t> msg(239, 0x5A);
  auto cw = rs.encode(msg);
  cw[100] ^= 0x01;
  const auto syn = rs.syndromes(cw);
  EXPECT_TRUE(std::any_of(syn.begin(), syn.end(), [](std::uint8_t s) { return s != 0; }));
}

TEST(ReedSolomon, SystematicPrefixIsTheMessage) {
  RsEncoder rs(64, 48);
  std::vector<std::uint8_t> msg(48);
  std::iota(msg.begin(), msg.end(), 1);
  const auto cw = rs.encode(msg);
  for (unsigned i = 0; i < 48; ++i) EXPECT_EQ(cw[i], msg[i]);
}

TEST(ReedSolomon, LutDatapathMatchesSoftwareLfsrStep) {
  // One combinational step: feed symbol + register state, compare every
  // next-state bit against the software shift.
  RsEncoder rs(255, 239);
  const auto nl = rs.datapath_netlist(/*use_dsp=*/false);
  fabric::Evaluator ev(nl);
  GF256 gf;
  const auto& g = rs.generator();
  const unsigned t = 16;

  Xoshiro256 rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const auto m = static_cast<std::uint8_t>(rng() & 0xFF);
    std::vector<std::uint8_t> rem(t);
    for (auto& r : rem) r = static_cast<std::uint8_t>(rng() & 0xFF);

    // Software step.
    const std::uint8_t fb = static_cast<std::uint8_t>(m ^ rem[t - 1]);
    std::vector<std::uint8_t> next(t);
    next[0] = gf.mul(fb, g[0]);
    for (unsigned i = 1; i < t; ++i) {
      next[i] = static_cast<std::uint8_t>(rem[i - 1] ^ gf.mul(fb, g[i]));
    }

    // Netlist step: inputs are m bits then rem bits in declaration order.
    std::vector<std::uint8_t> in;
    for (unsigned b = 0; b < 8; ++b) in.push_back((m >> b) & 1);
    for (unsigned i = 0; i < t; ++i) {
      for (unsigned b = 0; b < 8; ++b) in.push_back((rem[i] >> b) & 1);
    }
    const auto out = ev.eval(in);
    ASSERT_EQ(out.size(), t * 8);
    for (unsigned i = 0; i < t; ++i) {
      std::uint8_t v = 0;
      for (unsigned b = 0; b < 8; ++b) v |= static_cast<std::uint8_t>(out[i * 8 + b] << b);
      ASSERT_EQ(v, next[i]) << "stage " << i;
    }
  }
}

TEST(ReedSolomon, DspVariantIsSlowerAndUsesDsps) {
  // Table 1 shape: the DSP-mapped RS encoder has a *longer* critical path
  // than the LUT version and claims one DSP per parity stage.
  RsEncoder rs(255, 239);
  const auto lut = rs.datapath_netlist(false);
  const auto dsp = rs.datapath_netlist(true);
  EXPECT_EQ(lut.area().dsp, 0u);
  EXPECT_EQ(dsp.area().dsp, 16u);
  EXPECT_GT(lut.area().luts, dsp.area().luts);
  EXPECT_GT(timing::analyze(dsp).critical_path_ns, timing::analyze(lut).critical_path_ns);
}

// ------------------------------------------------------------------- DCT

TEST(Dct, AccurateRoundTripIsNearLossless) {
  Dct8x8 dct(mult::make_accurate(8));
  Xoshiro256 rng(17);
  Block8x8 block{};
  for (auto& row : block) {
    for (auto& v : row) v = static_cast<int>(rng() & 0xFF);
  }
  const auto rec = dct.inverse(dct.forward(block));
  double err = 0;
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) err += std::abs(rec[y][x] - block[y][x]);
  }
  EXPECT_LT(err / 64.0, 3.0);  // fixed-point rounding only
}

TEST(Dct, DcCoefficientOfFlatBlock) {
  Dct8x8 dct(mult::make_accurate(8));
  Block8x8 flat{};
  for (auto& row : flat) row.fill(200);
  const auto f = dct.forward(flat);
  // Orthonormal 2-D DC: (1/8) * 64 * (200-128) = 576, plus fixed-point
  // rounding of the 7-bit coefficients.
  EXPECT_NEAR(f[0][0], 576, 40);
  for (int v = 0; v < 8; ++v) {
    for (int u = 0; u < 8; ++u) {
      if (u || v) {
        EXPECT_LT(std::abs(f[v][u]), 4) << u << "," << v;
      }
    }
  }
}

TEST(Dct, ApproximateMultiplierDegradesGracefully) {
  Dct8x8 exact(mult::make_accurate(8));
  Dct8x8 approx(mult::make_ca(8));
  Xoshiro256 rng(19);
  double total_err = 0;
  for (int trial = 0; trial < 10; ++trial) {
    Block8x8 block{};
    for (auto& row : block) {
      for (auto& v : row) v = static_cast<int>(rng() & 0xFF);
    }
    const auto re = exact.inverse(exact.forward(block));
    const auto ra = approx.inverse(approx.forward(block));
    for (int y = 0; y < 8; ++y) {
      for (int x = 0; x < 8; ++x) total_err += std::abs(re[y][x] - ra[y][x]);
    }
  }
  EXPECT_LT(total_err / (10 * 64), 6.0);  // Ca stays close to exact
}

TEST(Dct, QuantizeRoundTrip) {
  Block8x8 f{};
  f[0][0] = 200;
  f[3][4] = -77;
  const auto q = Dct8x8::quantize(f);
  const auto d = Dct8x8::dequantize(q);
  EXPECT_NEAR(d[0][0], 200, 16);
  EXPECT_NEAR(d[3][4], -77, 51);
  EXPECT_EQ(q[7][7], 0);
}

TEST(DctDatapath, Table1ResourceShape) {
  // Table 1 shape for the JPEG encoder: the DSP build claims hundreds of
  // DSPs and few LUTs; the LUT build claims ~5x the LUTs and no DSPs, and
  // is slower than the DSP build.
  const auto dsp = dct_stage_netlist(true, 2);
  const auto lut = dct_stage_netlist(false, 2);
  EXPECT_GT(dsp.area().dsp, 100u);
  EXPECT_EQ(lut.area().dsp, 0u);
  // The adder trees stay in LUTs either way; only the multipliers move.
  EXPECT_GT(lut.area().luts, 3 * dsp.area().luts);
  EXPECT_GT(timing::analyze(lut).critical_path_ns, timing::analyze(dsp).critical_path_ns);
}

}  // namespace
}  // namespace axmult::apps
