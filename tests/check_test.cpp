// Tests for the property-based differential conformance harness
// (src/check/): subjects, oracle, coverage, shrinking, golden vectors and
// the determinism guarantees the CLI documents.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "check/backends.hpp"
#include "check/generate.hpp"
#include "check/golden.hpp"
#include "check/harness.hpp"
#include "common/rng.hpp"
#include "dse/space.hpp"
#include "mult/recursive.hpp"
#include "multgen/generators.hpp"

#ifndef AXCHECK_GOLDEN_DIR
#define AXCHECK_GOLDEN_DIR "tests/golden"
#endif

namespace axmult::check {
namespace {

FuzzOptions small_options() {
  FuzzOptions opts;
  opts.seed = 11;
  opts.iters = 3;
  opts.batches = 3;
  opts.batch_size = 128;
  opts.sequential = false;
  opts.gemm = false;
  return opts;
}

// ---------------------------------------------------------------- subjects

TEST(Subject, ResolvesCatalogDseAndElementaryKeys) {
  const Subject ca = resolve_subject("catalog:Ca_8");
  EXPECT_EQ(ca.a_bits, 8u);
  EXPECT_NE(ca.model, nullptr);
  EXPECT_FALSE(ca.exact);
  EXPECT_TRUE(static_cast<bool>(ca.claim));

  const Subject elem = resolve_subject("elem:a4x2");
  EXPECT_EQ(elem.a_bits, 4u);
  EXPECT_EQ(elem.b_bits, 2u);

  const std::string key = "dse:" + dse::config_key(dse::paper_approx4x4());
  const Subject a4x4 = resolve_subject(key);
  EXPECT_EQ(a4x4.key, key);
  EXPECT_FALSE(a4x4.exact);

  EXPECT_THROW((void)resolve_subject("bogus:nope"), std::invalid_argument);
}

TEST(Subject, FlipSuffixPerturbsNetlistButKeepsReference) {
  const auto flip_key = find_observable_flip("catalog:Ca_8", 5);
  ASSERT_TRUE(flip_key.has_value());
  const Subject s = resolve_subject(*flip_key);
  ASSERT_TRUE(s.reference.has_value());
  EXPECT_EQ(s.reference->cells().size(), s.netlist.cells().size());
  EXPECT_FALSE(s.exact);
  EXPECT_FALSE(static_cast<bool>(s.claim));
}

// ------------------------------------------------------------------ oracle

TEST(Oracle, RegistersEveryBackendForAnEightBitCatalogSubject) {
  const Subject s = resolve_subject("catalog:Ca_8");
  Oracle oracle(s);
  std::set<BackendId> ids(oracle.backends().begin(), oracle.backends().end());
  // model, scalar, wide1, wide2, wide4opt, wide8opt, table: the full set.
  EXPECT_EQ(ids.size(), 7u);
  EXPECT_TRUE(ids.count(BackendId::kModel));
  EXPECT_TRUE(ids.count(BackendId::kTable));
}

TEST(Oracle, AgreesOnUniformBatchAcrossAllBackends) {
  const Subject s = resolve_subject("catalog:Cc_8");
  Oracle oracle(s);
  Xoshiro256 rng(3);
  std::vector<std::uint64_t> a(300), b(300);
  fill_operands(Dist::kUniform, 8, 8, rng, a.data(), b.data(), a.size());
  EXPECT_FALSE(oracle.run(a.data(), b.data(), a.size()).has_value());
}

TEST(Oracle, RejectsSequentialSubjects) {
  Subject s = resolve_subject("catalog:Ca_8");
  s.netlist = multgen::make_pipelined_netlist(8, mult::Summation::kAccurate);
  EXPECT_THROW(Oracle oracle(s), std::invalid_argument);
}

TEST(Oracle, SequentialAndGemmChecksPassOnPaperDesigns) {
  const auto nl = multgen::make_pipelined_netlist(8, mult::Summation::kAccurate);
  const auto model = mult::make_ca(8);
  EXPECT_EQ(check_sequential(nl, 8, 8, model.get(), multgen::pipeline_latency(8), 21),
            std::nullopt);
  EXPECT_EQ(check_gemm(resolve_subject("catalog:Ca_8"), 22), std::nullopt);
}

// -------------------------------------------------------------- shrinking

TEST(Shrink, ReducesToTheMinimalFailingBits) {
  // Failure iff bit 2 of a and bit 0 of b are both set: the fixed point
  // must be exactly those two bits.
  const auto fails = [](std::uint64_t a, std::uint64_t b) {
    return (a & 4) != 0 && (b & 1) != 0;
  };
  unsigned steps = 0;
  const auto [a, b] = shrink_inputs(0xFF, 0xFF, fails, &steps);
  EXPECT_EQ(a, 4u);
  EXPECT_EQ(b, 1u);
  EXPECT_GT(steps, 0u);
}

TEST(Shrink, ReproFilesRoundTrip) {
  Counterexample cx;
  cx.subject = "catalog:Ca_8";
  cx.kind = "backend-mismatch";
  cx.lhs = "model";
  cx.rhs = "scalar";
  cx.a = 170;
  cx.b = 85;
  cx.lhs_value = 14450;
  cx.rhs_value = 14418;
  cx.net = "pp0_s3";
  cx.cone_cells = 9;
  cx.shrink_steps = 4;
  const std::string dir = testing::TempDir() + "axcheck_repro_roundtrip";
  const std::string path = write_repro(cx, dir);
  const Counterexample back = read_repro(path);
  EXPECT_EQ(back.subject, cx.subject);
  EXPECT_EQ(back.kind, cx.kind);
  EXPECT_EQ(back.a, cx.a);
  EXPECT_EQ(back.b, cx.b);
  EXPECT_EQ(back.lhs_value, cx.lhs_value);
  EXPECT_EQ(back.rhs_value, cx.rhs_value);
  EXPECT_EQ(back.net, cx.net);
  EXPECT_EQ(back.cone_cells, cx.cone_cells);
  std::filesystem::remove_all(dir);
}

TEST(Shrink, ConeCountsTheDriverFanIn) {
  const auto nl = multgen::make_ca_netlist(8);
  // The MSB-side output cone spans most of the multiplier.
  const unsigned msb_cone = cone_cell_count(nl, nl.outputs().back());
  const unsigned lsb_cone = cone_cell_count(nl, nl.outputs().front());
  EXPECT_GT(msb_cone, lsb_cone);
  EXPECT_GT(msb_cone, 10u);
}

// ------------------------------------------------- injected-bug detection

TEST(Harness, LutInitFlipYieldsShrunkReproNamingTheNet) {
  const auto flip_key = find_observable_flip("catalog:Ca_8", 9);
  ASSERT_TRUE(flip_key.has_value());
  const std::string dir = testing::TempDir() + "axcheck_flip_repro";
  FuzzOptions opts = small_options();
  opts.repro_dir.clear();
  const SubjectReport rep = check_subject(*flip_key, opts, 77);
  ASSERT_FALSE(rep.failures.empty());
  bool named = false;
  for (const Counterexample& cx : rep.failures) {
    if (cx.kind != "flip") continue;
    named = true;
    EXPECT_FALSE(cx.net.empty()) << "flip repro must name the offending net";
    EXPECT_GT(cx.cone_cells, 0u);
    EXPECT_LE(cx.a, 0xFFu) << "shrunk operand exceeds 8 bits";
    EXPECT_LE(cx.b, 0xFFu);
    // The shrunk pair still reproduces: reference and flipped netlists
    // disagree on it.
    const Subject s = resolve_subject(*flip_key);
    const std::string net =
        first_divergent_net(*s.reference, s.netlist, s.a_bits, s.b_bits, cx.a, cx.b);
    EXPECT_EQ(net, cx.net);
    // And a repro file lands on disk when a directory is configured.
    const std::string path = write_repro(cx, dir);
    EXPECT_TRUE(std::filesystem::exists(path));
  }
  EXPECT_TRUE(named);
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------------- coverage & fuzzing

TEST(Harness, CatalogSubjectsReachNinetyPercentToggleCoverage) {
  FuzzOptions opts;
  opts.seed = 4;
  opts.batches = 8;
  opts.batch_size = 256;
  for (const std::string& key : catalog_subject_keys(8)) {
    const SubjectReport rep = check_subject(key, opts, derive_stream_seed(4, 0));
    EXPECT_TRUE(rep.failures.empty()) << key;
    EXPECT_EQ(rep.backend_count, 7u) << key;
    EXPECT_GE(rep.coverage, 0.90) << key << ": " << rep.covered << "/" << rep.nets;
    EXPECT_FALSE(rep.coverage_json.empty());
  }
}

TEST(Harness, FuzzReportIsBitIdenticalAcrossThreadCounts) {
  FuzzOptions opts = small_options();
  opts.sequential = true;
  opts.gemm = true;
  FuzzOptions threaded = opts;
  threaded.threads = 4;
  opts.threads = 1;
  const FuzzReport one = fuzz(opts);
  const FuzzReport four = fuzz(threaded);
  EXPECT_EQ(one.to_json(), four.to_json());
  EXPECT_EQ(one.failure_count(), 0u);
  EXPECT_GT(one.total_pairs, 0u);
}

TEST(Harness, SubjectListIsDeterministicAndDeduplicated) {
  const FuzzOptions opts = small_options();
  const auto keys1 = fuzz_subject_keys(opts);
  const auto keys2 = fuzz_subject_keys(opts);
  EXPECT_EQ(keys1, keys2);
  const std::set<std::string> unique(keys1.begin(), keys1.end());
  EXPECT_EQ(unique.size(), keys1.size());
  // Catalog designs, the elementary block, and at least one dse config.
  EXPECT_GE(keys1.size(), catalog_subject_keys(8).size() + 2);
}

TEST(Generate, DistributionsAreDeterministicAndInRange) {
  for (const Dist d : kAllDists) {
    Xoshiro256 rng1(99);
    Xoshiro256 rng2(99);
    std::vector<std::uint64_t> a1(64), b1(64), a2(64), b2(64);
    fill_operands(d, 8, 8, rng1, a1.data(), b1.data(), 64);
    fill_operands(d, 8, 8, rng2, a2.data(), b2.data(), 64);
    EXPECT_EQ(a1, a2) << dist_name(d);
    EXPECT_EQ(b1, b2) << dist_name(d);
    for (std::size_t i = 0; i < 64; ++i) {
      EXPECT_LE(a1[i], 0xFFu);
      EXPECT_LE(b1[i], 0xFFu);
    }
  }
}

// ---------------------------------------------------------------- golden

TEST(Golden, Table2FreezesExactlySixErroneousPairsOfMagnitudeEight) {
  const auto set = default_golden_set();
  const GoldenFile g = make_golden(set[0]);  // table2_a4x4
  EXPECT_EQ(g.mode, "errors");
  ASSERT_EQ(g.rows.size(), 6u);
  for (const GoldenRow& r : g.rows) {
    EXPECT_EQ(r.a * r.b - r.product, 8u) << r.a << "x" << r.b;
  }
}

TEST(Golden, EmitReadReplayRoundTrip) {
  const std::string dir = testing::TempDir() + "axcheck_golden_roundtrip";
  ASSERT_EQ(emit_golden_set(dir), default_golden_set().size());
  for (const GoldenSpec& spec : default_golden_set()) {
    const GoldenFile g = read_golden(dir + "/" + spec.file);
    EXPECT_EQ(g.subject, spec.subject);
    EXPECT_FALSE(g.rows.empty()) << spec.file;
    EXPECT_EQ(replay_golden(g), std::nullopt) << spec.file;
  }
  std::filesystem::remove_all(dir);
}

TEST(Golden, CheckedInVectorsReplayAgainstEveryBackend) {
  // The committed files under tests/golden/ are the regression anchor: a
  // change to any model, netlist generator or evaluator that alters one
  // product fails here with the exact operand pair.
  for (const GoldenSpec& spec : default_golden_set()) {
    const std::string path = std::string(AXCHECK_GOLDEN_DIR) + "/" + spec.file;
    ASSERT_TRUE(std::filesystem::exists(path))
        << path << " missing — regenerate with: axcheck emit-golden --dir tests/golden";
    const GoldenFile g = read_golden(path);
    EXPECT_EQ(replay_golden(g), std::nullopt) << spec.file;
  }
}

}  // namespace
}  // namespace axmult::check
