// Unit tests for the fabric substrate: LUT6_2 semantics, CARRY4 semantics,
// netlist construction, topological evaluation, area reporting.
#include <gtest/gtest.h>

#include "fabric/lut6.hpp"
#include "fabric/netlist.hpp"

namespace axmult::fabric {
namespace {

TEST(Lut6Semantics, O6UsesAll64BitsO5IgnoresI5) {
  // INIT chosen so upper and lower halves differ.
  const std::uint64_t init = 0xFFFF00000000FFFFull;
  for (unsigned idx = 0; idx < 64; ++idx) {
    EXPECT_EQ(lut_o6(init, idx), ((init >> idx) & 1) != 0);
    EXPECT_EQ(lut_o5(init, idx), ((init >> (idx & 31)) & 1) != 0);
  }
}

TEST(Lut6Semantics, InitFromO6RoundTrips) {
  // XOR of all six pins.
  const auto init = init_from_o6([](const std::array<unsigned, 6>& in) {
    unsigned x = 0;
    for (unsigned v : in) x ^= v;
    return x != 0;
  });
  for (unsigned idx = 0; idx < 64; ++idx) {
    const bool expected = (axmult::popcount(idx) % 2) != 0;
    EXPECT_EQ(lut_o6(init, idx), expected);
  }
}

TEST(Lut6Semantics, DualOutputInitPlacesO5LowO6High) {
  // O5 = i0 & i1, O6 = i0 | i1 as 5-input functions with I5 tied high.
  const auto init = init_from_o5_o6(
      [](const std::array<unsigned, 5>& in) { return (in[0] & in[1]) != 0; },
      [](const std::array<unsigned, 5>& in) { return (in[0] | in[1]) != 0; });
  for (unsigned idx5 = 0; idx5 < 32; ++idx5) {
    const unsigned i0 = idx5 & 1;
    const unsigned i1 = (idx5 >> 1) & 1;
    EXPECT_EQ(lut_o5(init, 32 + idx5), (i0 & i1) != 0);
    EXPECT_EQ(lut_o6(init, 32 + idx5), (i0 | i1) != 0);
  }
}

TEST(Netlist, LutEvaluation) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  // AND of two pins, others tied low.
  const auto init = init_from_o6([](const std::array<unsigned, 6>& in) {
    return (in[0] & in[1]) != 0;
  });
  const auto out = nl.add_lut6("and2", init, {a, b, kNetGnd, kNetGnd, kNetGnd, kNetGnd});
  nl.add_output("y", out.o6);

  Evaluator ev(nl);
  EXPECT_EQ(ev.eval({0, 0})[0], 0);
  EXPECT_EQ(ev.eval({1, 0})[0], 0);
  EXPECT_EQ(ev.eval({0, 1})[0], 0);
  EXPECT_EQ(ev.eval({1, 1})[0], 1);
}

TEST(Netlist, Carry4ImplementsFourBitAdder) {
  // Classic RCA: S_i = a_i ^ b_i via LUT O6, DI = a_i via O5.
  Netlist nl;
  std::array<NetId, 4> a{};
  std::array<NetId, 4> b{};
  for (int i = 0; i < 4; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (int i = 0; i < 4; ++i) b[i] = nl.add_input("b" + std::to_string(i));

  std::array<NetId, 4> s{};
  std::array<NetId, 4> di{};
  for (int i = 0; i < 4; ++i) {
    const auto init = init_from_o5_o6(
        [](const std::array<unsigned, 5>& in) { return in[0] != 0; },          // O5 = a
        [](const std::array<unsigned, 5>& in) { return (in[0] ^ in[1]) != 0; }  // O6 = a^b
    );
    const auto lut = nl.add_lut6("pg" + std::to_string(i), init,
                                 {a[i], b[i], kNetGnd, kNetGnd, kNetGnd, kNetVcc},
                                 /*with_o5=*/true);
    s[i] = lut.o6;
    di[i] = lut.o5;
  }
  const auto carry = nl.add_carry4("cc", kNetGnd, s, di);
  for (int i = 0; i < 4; ++i) nl.add_output("s" + std::to_string(i), carry.o[i]);
  nl.add_output("cout", carry.co[3]);

  Evaluator ev(nl);
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      EXPECT_EQ(ev.eval_word(x, 4, y, 4), x + y) << x << "+" << y;
    }
  }
}

TEST(Netlist, AreaReportCountsPrimitives) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  for (int i = 0; i < 5; ++i) {
    nl.add_lut6("l" + std::to_string(i), 0xAAAAAAAAAAAAAAAAull,
                {a, kNetGnd, kNetGnd, kNetGnd, kNetGnd, kNetGnd});
  }
  nl.add_carry4("c0", kNetGnd, {kNetGnd, kNetGnd, kNetGnd, kNetGnd},
                {kNetGnd, kNetGnd, kNetGnd, kNetGnd});
  const auto area = nl.area();
  EXPECT_EQ(area.luts, 5u);
  EXPECT_EQ(area.carry4, 1u);
  EXPECT_EQ(area.slices, 2u);  // ceil(5/4) = 2 dominates 1 carry segment
}

TEST(Netlist, FanoutCountsLoadsAndOutputs) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const auto l = nl.add_lut6("l", 0x2ull, {a, kNetGnd, kNetGnd, kNetGnd, kNetGnd, kNetGnd});
  nl.add_lut6("m", 0x2ull, {l.o6, a, kNetGnd, kNetGnd, kNetGnd, kNetGnd});
  nl.add_output("y", l.o6);
  const auto fo = nl.fanout();
  EXPECT_EQ(fo[a], 2u);
  EXPECT_EQ(fo[l.o6], 2u);  // one LUT load + one primary output
}

TEST(Netlist, DspCellMultiplies) {
  Netlist nl;
  std::vector<NetId> a;
  std::vector<NetId> b;
  for (int i = 0; i < 8; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < 8; ++i) b.push_back(nl.add_input("b" + std::to_string(i)));
  const auto p = nl.add_dsp("dsp", a, b, 16);
  for (std::size_t i = 0; i < p.size(); ++i) nl.add_output("p" + std::to_string(i), p[i]);

  Evaluator ev(nl);
  EXPECT_EQ(ev.eval_word(123, 8, 217, 8), 123u * 217u);
  EXPECT_EQ(nl.area().dsp, 1u);
}

TEST(Netlist, EvaluatorRejectsWrongInputCount) {
  Netlist nl;
  nl.add_input("a");
  Evaluator ev(nl);
  EXPECT_THROW(ev.eval({0, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace axmult::fabric
