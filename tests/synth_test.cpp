// Tests for the generic synthesis flow: boolean network semantics,
// structural hashing, and cut-based LUT mapping equivalence.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "multgen/generators.hpp"
#include "synth/mapper.hpp"
#include "synth/network.hpp"
#include "timing/sta.hpp"

namespace axmult::synth {
namespace {

TEST(Network, GateSemantics) {
  Network net;
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  net.set_output("and", net.land(a, b));
  net.set_output("or", net.lor(a, b));
  net.set_output("xor", net.lxor(a, b));
  net.set_output("nota", net.lnot(a));
  for (std::uint8_t va = 0; va < 2; ++va) {
    for (std::uint8_t vb = 0; vb < 2; ++vb) {
      const auto out = net.eval({va, vb});
      EXPECT_EQ(out[0], va & vb);
      EXPECT_EQ(out[1], va | vb);
      EXPECT_EQ(out[2], va ^ vb);
      EXPECT_EQ(out[3], va ^ 1);
    }
  }
}

TEST(Network, StructuralHashingDeduplicates) {
  Network net;
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  EXPECT_EQ(net.land(a, b), net.land(b, a));
  EXPECT_EQ(net.lxor(a, b), net.lxor(b, a));
  const std::size_t before = net.node_count();
  (void)net.land(a, b);
  EXPECT_EQ(net.node_count(), before);
}

TEST(Network, ConstantFolding) {
  Network net;
  const NodeId a = net.add_input("a");
  EXPECT_EQ(net.land(a, net.const0()), net.const0());
  EXPECT_EQ(net.land(a, net.const1()), a);
  EXPECT_EQ(net.lor(a, net.const1()), net.const1());
  EXPECT_EQ(net.lxor(a, a), net.const0());
  EXPECT_EQ(net.lnot(net.lnot(a)), a);
  EXPECT_EQ(net.lnot(net.const0()), net.const1());
  EXPECT_EQ(net.lnot(net.const1()), net.const0());
}

TEST(Network, RippleAddIsExact) {
  Network net;
  std::vector<NodeId> x;
  std::vector<NodeId> y;
  for (int i = 0; i < 6; ++i) x.push_back(net.add_input("x" + std::to_string(i)));
  for (int i = 0; i < 6; ++i) y.push_back(net.add_input("y" + std::to_string(i)));
  const auto s = net.ripple_add(x, y);
  for (std::size_t i = 0; i < s.size(); ++i) net.set_output("s" + std::to_string(i), s[i]);
  for (std::uint64_t a = 0; a < 64; ++a) {
    for (std::uint64_t b = 0; b < 64; ++b) {
      ASSERT_EQ(net.eval_word(a, 6, b, 6), a + b);
    }
  }
}

TEST(Network, ArrayMultiplierIsExact) {
  Network net;
  std::vector<NodeId> a;
  std::vector<NodeId> b;
  for (int i = 0; i < 8; ++i) a.push_back(net.add_input("a" + std::to_string(i)));
  for (int i = 0; i < 8; ++i) b.push_back(net.add_input("b" + std::to_string(i)));
  const auto p = net.array_multiplier(a, b);
  for (std::size_t i = 0; i < p.size(); ++i) net.set_output("p" + std::to_string(i), p[i]);
  Xoshiro256 rng(41);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t x = rng() & 0xFF;
    const std::uint64_t y = rng() & 0xFF;
    ASSERT_EQ(net.eval_word(x, 8, y, 8), x * y);
  }
  EXPECT_GT(net.gate_count(), 100u);
  EXPECT_GT(net.depth(), 8u);
}

TEST(Mapper, MapsSmallFunctionsToSingleLut) {
  Network net;
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const NodeId c = net.add_input("c");
  // maj(a, b, c): 5 gates but one 3-input cut.
  net.set_output("maj", net.lor(net.lor(net.land(a, b), net.land(a, c)), net.land(b, c)));
  const auto r = map_to_luts(net);
  EXPECT_EQ(r.stats.luts, 1u);
  EXPECT_EQ(r.stats.depth, 1u);
  fabric::Evaluator ev(r.netlist);
  for (unsigned v = 0; v < 8; ++v) {
    const std::uint8_t expected = ((v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1)) >= 2 ? 1 : 0;
    EXPECT_EQ(ev.eval({static_cast<std::uint8_t>(v & 1), static_cast<std::uint8_t>((v >> 1) & 1),
                       static_cast<std::uint8_t>((v >> 2) & 1)})[0],
              expected);
  }
}

TEST(Mapper, MappedAdderIsEquivalent) {
  Network net;
  std::vector<NodeId> x;
  std::vector<NodeId> y;
  for (int i = 0; i < 8; ++i) x.push_back(net.add_input("x" + std::to_string(i)));
  for (int i = 0; i < 8; ++i) y.push_back(net.add_input("y" + std::to_string(i)));
  const auto s = net.ripple_add(x, y);
  for (std::size_t i = 0; i < s.size(); ++i) net.set_output("s" + std::to_string(i), s[i]);
  const auto r = map_to_luts(net);
  fabric::Evaluator ev(r.netlist);
  for (std::uint64_t a = 0; a < 256; a += 7) {
    for (std::uint64_t b = 0; b < 256; b += 5) {
      ASSERT_EQ(ev.eval_word(a, 8, b, 8), a + b);
    }
  }
}

TEST(Mapper, MappedMultiplierIsEquivalentExhaustively) {
  Network net;
  std::vector<NodeId> a;
  std::vector<NodeId> b;
  for (int i = 0; i < 6; ++i) a.push_back(net.add_input("a" + std::to_string(i)));
  for (int i = 0; i < 6; ++i) b.push_back(net.add_input("b" + std::to_string(i)));
  const auto p = net.array_multiplier(a, b);
  for (std::size_t i = 0; i < p.size(); ++i) net.set_output("p" + std::to_string(i), p[i]);
  const auto r = map_to_luts(net);
  fabric::Evaluator ev(r.netlist);
  for (std::uint64_t x = 0; x < 64; ++x) {
    for (std::uint64_t y = 0; y < 64; ++y) {
      ASSERT_EQ(ev.eval_word(x, 6, y, 6), x * y);
    }
  }
}

TEST(Mapper, RandomNetworksMapEquivalently) {
  // Property sweep: random DAGs of mixed gates must survive mapping.
  Xoshiro256 rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    Network net;
    std::vector<NodeId> pool;
    for (int i = 0; i < 6; ++i) pool.push_back(net.add_input("i" + std::to_string(i)));
    for (int g = 0; g < 40; ++g) {
      const NodeId a = pool[rng.below(pool.size())];
      const NodeId b = pool[rng.below(pool.size())];
      switch (rng.below(4)) {
        case 0: pool.push_back(net.land(a, b)); break;
        case 1: pool.push_back(net.lor(a, b)); break;
        case 2: pool.push_back(net.lxor(a, b)); break;
        default: pool.push_back(net.lnot(a)); break;
      }
    }
    for (int o = 0; o < 4; ++o) {
      net.set_output("o" + std::to_string(o), pool[pool.size() - 1 - static_cast<std::size_t>(o)]);
    }
    const auto r = map_to_luts(net);
    fabric::Evaluator ev(r.netlist);
    for (unsigned v = 0; v < 64; ++v) {
      std::vector<std::uint8_t> in;
      for (unsigned i = 0; i < 6; ++i) in.push_back(static_cast<std::uint8_t>((v >> i) & 1));
      const auto expected = net.eval(in);
      const auto got = ev.eval(in);
      ASSERT_EQ(got, expected) << "trial " << trial << " v=" << v;
    }
  }
}

TEST(Mapper, SmallerCutSizeNeedsMoreLuts) {
  Network net;
  std::vector<NodeId> x;
  std::vector<NodeId> y;
  for (int i = 0; i < 8; ++i) x.push_back(net.add_input("x" + std::to_string(i)));
  for (int i = 0; i < 8; ++i) y.push_back(net.add_input("y" + std::to_string(i)));
  const auto p = net.array_multiplier(x, y);
  for (std::size_t i = 0; i < p.size(); ++i) net.set_output("p" + std::to_string(i), p[i]);
  MapperOptions k6;
  MapperOptions k4;
  k4.cut_size = 4;
  EXPECT_LT(map_to_luts(net, k6).stats.luts, map_to_luts(net, k4).stats.luts);
}

TEST(Mapper, GenericFlowLosesToHandStructuredDesign) {
  // The paper's core premise, demonstrated end-to-end: the generic flow
  // (no carry chains, no dual outputs) maps the accurate 8x8 multiplier
  // to more LUTs and a slower circuit than the hand-structured IP model.
  Network net;
  std::vector<NodeId> x;
  std::vector<NodeId> y;
  for (int i = 0; i < 8; ++i) x.push_back(net.add_input("x" + std::to_string(i)));
  for (int i = 0; i < 8; ++i) y.push_back(net.add_input("y" + std::to_string(i)));
  const auto p = net.array_multiplier(x, y);
  for (std::size_t i = 0; i < p.size(); ++i) net.set_output("p" + std::to_string(i), p[i]);
  const auto mapped = map_to_luts(net);
  const auto hand = multgen::make_vivado_speed_netlist(8);
  EXPECT_GT(mapped.stats.luts, hand.area().luts);
  EXPECT_GT(timing::analyze(mapped.netlist).critical_path_ns,
            timing::analyze(hand).critical_path_ns);
}

TEST(Mapper, RejectsBadCutSize) {
  Network net;
  net.set_output("o", net.add_input("a"));
  MapperOptions bad;
  bad.cut_size = 7;
  EXPECT_THROW((void)map_to_luts(net, bad), std::invalid_argument);
}

TEST(Mapper, HandlesConstantAndInputOutputs) {
  Network net;
  const NodeId a = net.add_input("a");
  net.set_output("zero", net.const0());
  net.set_output("one", net.const1());
  net.set_output("pass", a);
  const auto r = map_to_luts(net);
  fabric::Evaluator ev(r.netlist);
  const auto out = ev.eval({1});
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 1);
  EXPECT_EQ(out[2], 1);
}

}  // namespace
}  // namespace axmult::synth
