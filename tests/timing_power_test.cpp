// Sanity and shape tests for the STA and power models — these pin the
// *orderings* the paper's Table 4 and Fig. 7 rely on, not absolute ns.
#include <gtest/gtest.h>

#include "multgen/generators.hpp"
#include "power/power.hpp"
#include "timing/sta.hpp"

namespace axmult::timing {
namespace {

TEST(Sta, EmptyNetlistHasOnlyBoundaryDelay) {
  fabric::Netlist nl;
  const auto in = nl.add_input("a");
  nl.add_output("y", in);
  const DelayModel m;
  const auto r = analyze(nl, m);
  EXPECT_NEAR(r.critical_path_ns, m.ibuf_ns + m.net_base_ns + m.obuf_ns, 1e-9);
  EXPECT_EQ(r.critical_output, "y");
}

TEST(Sta, DelayGrowsWithLogicDepth) {
  // A chain of k LUTs must be ~k LUT+net delays longer than a single LUT.
  auto chain = [](unsigned k) {
    fabric::Netlist nl;
    fabric::NetId n = nl.add_input("a");
    for (unsigned i = 0; i < k; ++i) {
      n = nl.add_lut6("l" + std::to_string(i), 0x2ull,
                      {n, fabric::kNetGnd, fabric::kNetGnd, fabric::kNetGnd, fabric::kNetGnd,
                       fabric::kNetGnd})
              .o6;
    }
    nl.add_output("y", n);
    return analyze(nl).critical_path_ns;
  };
  const double d1 = chain(1);
  const double d5 = chain(5);
  const DelayModel m;
  EXPECT_NEAR(d5 - d1, 4 * (m.lut_ns + m.net_base_ns), 1e-9);
}

TEST(Sta, CarryChainIsFasterThanLutHops) {
  // 16 MUXCY hops must cost far less than 16 LUT levels.
  const DelayModel m;
  EXPECT_LT(16 * m.carry_mux_ns, 4 * (m.lut_ns + m.net_base_ns));
}

TEST(Sta, Table4LatencyOrderings) {
  // Table 4 shape anchors:
  //   * 4x4 is the fastest of all proposed configurations,
  //   * Cc is faster than Ca at 8 and 16 bits,
  //   * Ca latency grows with width much faster than Cc's.
  const auto t44 = analyze(multgen::make_ca_netlist(4)).critical_path_ns;
  const auto tca8 = analyze(multgen::make_ca_netlist(8)).critical_path_ns;
  const auto tcc8 = analyze(multgen::make_cc_netlist(8)).critical_path_ns;
  const auto tca16 = analyze(multgen::make_ca_netlist(16)).critical_path_ns;
  const auto tcc16 = analyze(multgen::make_cc_netlist(16)).critical_path_ns;
  EXPECT_LT(t44, tca8);
  EXPECT_LT(t44, tcc8);
  EXPECT_LT(tcc8, tca8);
  EXPECT_LT(tcc16, tca16);
  EXPECT_LT(tca16 - tca8, 2.0 * (tca8 - t44) + 2.0);  // roughly linear growth
  EXPECT_LT(tcc16 - tcc8, tca16 - tca8);              // Cc scales flatter
}

TEST(Sta, Table4AbsoluteBallpark) {
  // Calibration guard: Table 4 reports 5.846 / 7.746 / 6.946 / 10.765 /
  // 7.613 ns. The model must land within 20% of each.
  EXPECT_NEAR(analyze(multgen::make_ca_netlist(4)).critical_path_ns, 5.846, 0.2 * 5.846);
  EXPECT_NEAR(analyze(multgen::make_ca_netlist(8)).critical_path_ns, 7.746, 0.2 * 7.746);
  EXPECT_NEAR(analyze(multgen::make_cc_netlist(8)).critical_path_ns, 6.946, 0.2 * 6.946);
  EXPECT_NEAR(analyze(multgen::make_ca_netlist(16)).critical_path_ns, 10.765, 0.2 * 10.765);
  EXPECT_NEAR(analyze(multgen::make_cc_netlist(16)).critical_path_ns, 7.613, 0.2 * 7.613);
}

TEST(Sta, ProposedDesignsAreFasterThanVivadoIp) {
  // Fig. 7: 8.6%-53.2% latency reduction vs the Vivado IP.
  for (unsigned w : {8u, 16u}) {
    const double ip = analyze(multgen::make_vivado_speed_netlist(w)).critical_path_ns;
    EXPECT_LT(analyze(multgen::make_ca_netlist(w)).critical_path_ns, ip) << w;
    EXPECT_LT(analyze(multgen::make_cc_netlist(w)).critical_path_ns, ip) << w;
  }
}

TEST(Sta, AreaOptimizedIpIsSlowerThanSpeedOptimized) {
  for (unsigned w : {8u, 16u}) {
    EXPECT_GT(analyze(multgen::make_vivado_area_netlist(w)).critical_path_ns,
              analyze(multgen::make_vivado_speed_netlist(w)).critical_path_ns)
        << w;
  }
}

TEST(Sta, CriticalPathIsTraceable) {
  const auto r = analyze(multgen::make_ca_netlist(8));
  EXPECT_FALSE(r.path.empty());
  EXPECT_FALSE(r.critical_output.empty());
  // Arrival times along the path must be non-decreasing.
  for (std::size_t i = 1; i < r.path.size(); ++i) {
    EXPECT_LE(r.path[i - 1].arrival_ns, r.path[i].arrival_ns + 1e-9);
  }
}

}  // namespace

namespace ptest {

TEST(Power, AccurateIpConsumesMoreThanProposed) {
  // Fig. 7: EDP gains of 8.86%-67% over the accurate IP.
  power::PowerModel pm;
  pm.vectors = 512;
  const auto ip = power::estimate(multgen::make_vivado_speed_netlist(8), pm);
  const auto ca = power::estimate(multgen::make_ca_netlist(8), pm);
  const auto cc = power::estimate(multgen::make_cc_netlist(8), pm);
  EXPECT_GT(ip.energy_au, 0.0);
  EXPECT_LT(ca.edp_au, ip.edp_au);
  EXPECT_LT(cc.edp_au, ip.edp_au);
  EXPECT_LT(cc.edp_au, ca.edp_au);  // Cc trades accuracy for energy/delay
}

TEST(Power, DeterministicAcrossRuns) {
  const auto nl = multgen::make_ca_netlist(8);
  power::PowerModel pm;
  pm.vectors = 128;
  const auto r1 = power::estimate(nl, pm);
  const auto r2 = power::estimate(nl, pm);
  EXPECT_EQ(r1.energy_au, r2.energy_au);
  EXPECT_EQ(r1.edp_au, r2.edp_au);
}

TEST(Power, EnergyScalesWithActivityAndSize) {
  power::PowerModel pm;
  pm.vectors = 256;
  const auto small = power::estimate(multgen::make_ca_netlist(4), pm);
  const auto big = power::estimate(multgen::make_ca_netlist(16), pm);
  EXPECT_GT(big.energy_au, 4.0 * small.energy_au);
}

}  // namespace ptest
}  // namespace axmult::timing
