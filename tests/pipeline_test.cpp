// Tests for the sequential fabric support and pipelined multipliers.
#include <gtest/gtest.h>

#include <deque>

#include "common/rng.hpp"
#include "fabric/hdl_export.hpp"
#include "fabric/netlist.hpp"
#include "mult/recursive.hpp"
#include "multgen/generators.hpp"
#include "timing/sta.hpp"

namespace axmult {
namespace {

using fabric::kNetGnd;
using fabric::Netlist;
using fabric::SeqEvaluator;

TEST(Sequential, RegisteredPassthroughHasOneCycleLatency) {
  Netlist nl;
  const auto d = nl.add_input("d");
  nl.add_output("q", nl.add_fdre("ff", d));
  SeqEvaluator ev(nl);
  EXPECT_EQ(ev.ff_count(), 1u);
  EXPECT_EQ(ev.step({1})[0], 0);  // state before the first edge
  EXPECT_EQ(ev.step({0})[0], 1);  // captured the 1
  EXPECT_EQ(ev.step({0})[0], 0);
}

TEST(Sequential, TwoStageDelayLine) {
  // Two cascaded registers delay the input by exactly two cycles.
  Netlist nl;
  const auto d = nl.add_input("d");
  const auto q1 = nl.add_fdre("ff1", d);
  const auto q2 = nl.add_fdre("ff2", q1);
  nl.add_output("q", q2);
  SeqEvaluator ev(nl);
  std::vector<std::uint8_t> seen;
  for (std::uint8_t v : {1, 0, 1, 1, 0, 0}) seen.push_back(ev.step({v})[0]);
  EXPECT_EQ(seen, (std::vector<std::uint8_t>{0, 0, 1, 0, 1, 1}));
}

TEST(Sequential, CombinationalEvaluatorRejectsSequentialNetlists) {
  Netlist nl;
  const auto d = nl.add_input("d");
  nl.add_output("q", nl.add_fdre("ff", d));
  fabric::Evaluator ev(nl);
  EXPECT_THROW((void)ev.eval({1}), std::invalid_argument);
}

TEST(Sequential, AreaCountsFlipFlops) {
  const auto nl = multgen::make_pipelined_netlist(8, mult::Summation::kAccurate);
  const auto area = nl.area();
  EXPECT_TRUE(nl.is_sequential());
  EXPECT_GT(area.ffs, 30u);  // four 8-bit sub-products + 16-bit product
  EXPECT_EQ(area.luts, multgen::make_ca_netlist(8).area().luts);
}

TEST(Pipeline, LatencyHelper) {
  EXPECT_EQ(multgen::pipeline_latency(4), 1u);
  EXPECT_EQ(multgen::pipeline_latency(8), 2u);
  EXPECT_EQ(multgen::pipeline_latency(16), 3u);
  EXPECT_EQ(multgen::pipeline_latency(32), 4u);
}

TEST(Pipeline, StreamedCa8MatchesBehavioralModelWithLatency) {
  const auto nl = multgen::make_pipelined_netlist(8, mult::Summation::kAccurate);
  const auto model = mult::make_ca(8);
  SeqEvaluator ev(nl);
  const unsigned latency = multgen::pipeline_latency(8);

  Xoshiro256 rng(57);
  std::deque<std::uint64_t> expected;
  for (unsigned cycle = 0; cycle < 400; ++cycle) {
    const std::uint64_t a = rng() & 0xFF;
    const std::uint64_t b = rng() & 0xFF;
    expected.push_back(model->multiply(a, b));
    const std::uint64_t out = ev.step_word(a, 8, b, 8);
    if (cycle >= latency) {
      ASSERT_EQ(out, expected.front()) << "cycle " << cycle;
      expected.pop_front();
    }
  }
}

TEST(Pipeline, StreamedCc16MatchesBehavioralModelWithLatency) {
  const auto nl = multgen::make_pipelined_netlist(16, mult::Summation::kCarryFree);
  const auto model = mult::make_cc(16);
  SeqEvaluator ev(nl);
  const unsigned latency = multgen::pipeline_latency(16);

  Xoshiro256 rng(59);
  std::deque<std::uint64_t> expected;
  for (unsigned cycle = 0; cycle < 200; ++cycle) {
    const std::uint64_t a = rng() & 0xFFFF;
    const std::uint64_t b = rng() & 0xFFFF;
    expected.push_back(model->multiply(a, b));
    const std::uint64_t out = ev.step_word(a, 16, b, 16);
    if (cycle >= latency) {
      ASSERT_EQ(out, expected.front());
      expected.pop_front();
    }
  }
}

TEST(Pipeline, ResetClearsState) {
  const auto nl = multgen::make_pipelined_netlist(8, mult::Summation::kAccurate);
  SeqEvaluator ev(nl);
  (void)ev.step_word(255, 8, 255, 8);
  (void)ev.step_word(255, 8, 255, 8);
  ev.reset();
  // After reset the first outputs are the zero state again.
  EXPECT_EQ(ev.step_word(1, 8, 1, 8), 0u);
}

TEST(Pipeline, ShortensTheCriticalPath) {
  // The pipelined Ca splits the logic into per-level stages, so the
  // minimum clock period is far below the combinational latency.
  const auto comb = multgen::make_ca_netlist(16);
  const auto pipe = multgen::make_pipelined_netlist(16, mult::Summation::kAccurate);
  const double t_comb = timing::analyze(comb).critical_path_ns;
  const double t_pipe = timing::analyze(pipe).critical_path_ns;
  EXPECT_LT(t_pipe, t_comb - 1.0);
  EXPECT_GT(timing::analyze(pipe).fmax_mhz(), timing::analyze(comb).fmax_mhz());
}

TEST(Pipeline, HdlExportEmitsFdreAndClock) {
  const auto nl = multgen::make_pipelined_netlist(8, mult::Summation::kAccurate);
  const auto vhdl = fabric::to_vhdl(nl, "ca8_pipe");
  EXPECT_NE(vhdl.find("clk : in  std_logic"), std::string::npos);
  EXPECT_NE(vhdl.find(": FDRE"), std::string::npos);
  const auto verilog = fabric::to_verilog(nl, "ca8_pipe");
  EXPECT_NE(verilog.find("input  wire clk"), std::string::npos);
  EXPECT_NE(verilog.find("FDRE "), std::string::npos);
}

// ---------------------------------------------------------------- MAC

TEST(Mac, AccumulatesApproximateProducts) {
  const auto nl = multgen::make_mac_netlist(8, mult::Summation::kAccurate, 24);
  const auto model = mult::make_ca(8);
  SeqEvaluator ev(nl);
  Xoshiro256 rng(61);
  std::uint64_t expected = 0;
  for (unsigned t = 0; t < 300; ++t) {
    const std::uint64_t a = rng() & 0xFF;
    const std::uint64_t b = rng() & 0xFF;
    // Output reflects the accumulator BEFORE this cycle's product lands.
    ASSERT_EQ(ev.step_word(a, 8, b, 8), expected & ((1u << 24) - 1)) << "cycle " << t;
    expected += model->multiply(a, b);
  }
}

TEST(Mac, RegisteredFeedbackLoopIsNotACombinationalLoop) {
  const auto nl = multgen::make_mac_netlist(8, mult::Summation::kCarryFree, 20);
  EXPECT_NO_THROW((void)nl.topo_order());
  EXPECT_TRUE(nl.is_sequential());
  EXPECT_EQ(nl.area().ffs, 20u);
}

TEST(Mac, TimingReportsRegisterToRegisterPath) {
  const auto nl = multgen::make_mac_netlist(8, mult::Summation::kAccurate, 24);
  const auto r = timing::analyze(nl);
  // The loop multiplier + accumulator adder defines the clock period.
  EXPECT_GT(r.critical_path_ns, 3.0);
  EXPECT_LT(r.critical_path_ns, 12.0);
  EXPECT_NE(r.critical_output.find(".D"), std::string::npos);
}

TEST(Mac, OpenFfMisuseIsRejected) {
  fabric::Netlist nl;
  const auto in = nl.add_input("x");
  const auto ff = nl.add_fdre_open("ff");
  nl.close_fdre(ff, in);
  EXPECT_THROW(nl.close_fdre(ff, in), std::invalid_argument);
  EXPECT_THROW(multgen::make_mac_netlist(8, mult::Summation::kAccurate, 8),
               std::invalid_argument);
}

}  // namespace
}  // namespace axmult
