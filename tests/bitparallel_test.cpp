// Cross-checks of the 64-lane BitParallelEvaluator against the scalar
// Evaluator: exhaustive agreement on the paper's 4x4 and 8x8 netlists,
// DSP cells, ragged (<64 lane) batches, and sequential (FDRE) netlists.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/bits.hpp"
#include "fabric/bitparallel.hpp"
#include "fabric/netlist.hpp"
#include "mult/recursive.hpp"
#include "multgen/generators.hpp"

namespace axmult::fabric {
namespace {

/// Replays every (a, b) pair through both evaluators in 64-wide batches and
/// asserts bit-for-bit agreement of the products.
void expect_exhaustive_match(const Netlist& nl, unsigned width) {
  Evaluator scalar(nl);
  BitParallelEvaluator packed(nl);
  const std::uint64_t total = std::uint64_t{1} << (2 * width);
  std::uint64_t av[64];
  std::uint64_t bv[64];
  std::uint64_t pv[64];
  for (std::uint64_t base = 0; base < total; base += 64) {
    const std::size_t lanes = static_cast<std::size_t>(std::min<std::uint64_t>(64, total - base));
    for (std::size_t l = 0; l < lanes; ++l) {
      av[l] = (base + l) & low_mask(width);
      bv[l] = (base + l) >> width;
    }
    packed.eval_mul_batch(av, bv, pv, lanes, width, width);
    for (std::size_t l = 0; l < lanes; ++l) {
      ASSERT_EQ(pv[l], scalar.eval_word(av[l], width, bv[l], width))
          << "a=" << av[l] << " b=" << bv[l];
    }
  }
}

TEST(BitParallel, MatchesScalarExhaustively4x4Ca) {
  expect_exhaustive_match(multgen::make_ca_netlist(4), 4);
}

TEST(BitParallel, MatchesScalarExhaustively4x4Cc) {
  expect_exhaustive_match(multgen::make_cc_netlist(4), 4);
}

TEST(BitParallel, MatchesScalarExhaustively4x4Kulkarni) {
  expect_exhaustive_match(multgen::make_kulkarni_netlist(4), 4);
}

TEST(BitParallel, MatchesScalarExhaustively4x4RehmanW) {
  expect_exhaustive_match(multgen::make_rehman_netlist(4), 4);
}

TEST(BitParallel, MatchesScalarExhaustively8x8Ca) {
  expect_exhaustive_match(multgen::make_ca_netlist(8), 8);
}

TEST(BitParallel, MatchesScalarExhaustively8x8Cc) {
  expect_exhaustive_match(multgen::make_cc_netlist(8), 8);
}

TEST(BitParallel, MatchesScalarExhaustively8x8Kulkarni) {
  expect_exhaustive_match(multgen::make_kulkarni_netlist(8), 8);
}

TEST(BitParallel, MatchesScalarExhaustively8x8RehmanW) {
  expect_exhaustive_match(multgen::make_rehman_netlist(8), 8);
}

TEST(BitParallel, MatchesScalarExhaustively8x8AccurateIp) {
  expect_exhaustive_match(multgen::make_vivado_speed_netlist(8), 8);
}

TEST(BitParallel, RaggedTailBatchesMatch) {
  const auto nl = multgen::make_ca_netlist(8);
  Evaluator scalar(nl);
  BitParallelEvaluator packed(nl);
  std::uint64_t av[64];
  std::uint64_t bv[64];
  std::uint64_t pv[64];
  for (const std::size_t n : {std::size_t{1}, std::size_t{17}, std::size_t{63}}) {
    for (std::size_t l = 0; l < n; ++l) {
      av[l] = (l * 131 + 7) & 0xFF;
      bv[l] = (l * 137 + 3) & 0xFF;
    }
    packed.eval_mul_batch(av, bv, pv, n, 8, 8);
    for (std::size_t l = 0; l < n; ++l) {
      ASSERT_EQ(pv[l], scalar.eval_word(av[l], 8, bv[l], 8)) << "n=" << n << " lane=" << l;
    }
  }
}

TEST(BitParallel, RejectsOversizedBatchAndWidthMismatch) {
  const auto nl = multgen::make_ca_netlist(4);
  BitParallelEvaluator packed(nl);
  std::uint64_t buf[65] = {};
  EXPECT_THROW(packed.eval_mul_batch(buf, buf, buf, 65, 4, 4), std::invalid_argument);
  EXPECT_THROW(packed.eval_mul_batch(buf, buf, buf, 4, 8, 8), std::invalid_argument);
}

TEST(BitParallel, DspCellMultipliesPerLane) {
  Netlist nl;
  std::vector<NetId> a;
  std::vector<NetId> b;
  for (int i = 0; i < 8; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < 8; ++i) b.push_back(nl.add_input("b" + std::to_string(i)));
  const auto p = nl.add_dsp("dsp", a, b, 16);
  for (std::size_t i = 0; i < p.size(); ++i) nl.add_output("p" + std::to_string(i), p[i]);

  BitParallelEvaluator packed(nl);
  std::uint64_t av[64];
  std::uint64_t bv[64];
  std::uint64_t pv[64];
  for (unsigned l = 0; l < 64; ++l) {
    av[l] = (l * 67 + 123) & 0xFF;
    bv[l] = (l * 41 + 217) & 0xFF;
  }
  packed.eval_mul_batch(av, bv, pv, 64, 8, 8);
  for (unsigned l = 0; l < 64; ++l) ASSERT_EQ(pv[l], av[l] * bv[l]);
}

TEST(BitParallel, CombinationalEvaluatorRejectsSequentialNetlist) {
  const auto nl = multgen::make_pipelined_netlist(8, mult::Summation::kAccurate);
  BitParallelEvaluator packed(nl);
  const std::vector<std::uint64_t> in(nl.inputs().size(), 0);
  EXPECT_THROW((void)packed.eval(in), std::invalid_argument);
}

TEST(BitParallelSeq, PipelinedNetlistMatchesScalarPerLane) {
  // 64 independent machines: lane l streams its own operand sequence; each
  // lane must reproduce the scalar SeqEvaluator run of the same sequence.
  const auto nl = multgen::make_pipelined_netlist(8, mult::Summation::kAccurate);
  const unsigned cycles = multgen::pipeline_latency(8) + 4;

  // Per-lane operand streams.
  auto a_at = [](unsigned lane, unsigned t) { return std::uint64_t{(lane * 31 + t * 7 + 1) & 0xFF}; };
  auto b_at = [](unsigned lane, unsigned t) { return std::uint64_t{(lane * 57 + t * 13 + 5) & 0xFF}; };

  BitParallelSeqEvaluator packed(nl);
  std::vector<std::vector<std::uint64_t>> packed_out;  // per cycle, packed product words
  std::vector<std::uint64_t> in(nl.inputs().size());
  for (unsigned t = 0; t < cycles; ++t) {
    std::fill(in.begin(), in.end(), 0);
    for (unsigned l = 0; l < 64; ++l) {
      const std::uint64_t a = a_at(l, t);
      const std::uint64_t b = b_at(l, t);
      for (unsigned i = 0; i < 8; ++i) {
        in[i] |= bit(a, i) << l;
        in[8 + i] |= bit(b, i) << l;
      }
    }
    packed_out.push_back(packed.step(in));
  }

  for (unsigned l = 0; l < 64; l += 9) {  // spot-check a spread of lanes
    SeqEvaluator scalar(nl);
    for (unsigned t = 0; t < cycles; ++t) {
      const std::uint64_t expected = scalar.step_word(a_at(l, t), 8, b_at(l, t), 8);
      std::uint64_t got = 0;
      for (std::size_t i = 0; i < packed_out[t].size(); ++i) {
        got |= ((packed_out[t][i] >> l) & 1u) << i;
      }
      ASSERT_EQ(got, expected) << "lane=" << l << " cycle=" << t;
    }
  }
}

TEST(BitParallelSeq, MacAccumulatorFeedbackMatchesScalar) {
  // Registered feedback (acc <= acc + a*b): the packed lanes must track 64
  // independent accumulators.
  const auto nl = multgen::make_mac_netlist(8, mult::Summation::kAccurate, 24);
  const unsigned cycles = 6;
  auto a_at = [](unsigned lane, unsigned t) { return std::uint64_t{(lane * 19 + t * 3 + 2) & 0xFF}; };
  auto b_at = [](unsigned lane, unsigned t) { return std::uint64_t{(lane * 73 + t * 11 + 9) & 0xFF}; };

  BitParallelSeqEvaluator packed(nl);
  std::vector<std::vector<std::uint64_t>> packed_out;
  std::vector<std::uint64_t> in(nl.inputs().size());
  for (unsigned t = 0; t < cycles; ++t) {
    std::fill(in.begin(), in.end(), 0);
    for (unsigned l = 0; l < 64; ++l) {
      const std::uint64_t a = a_at(l, t);
      const std::uint64_t b = b_at(l, t);
      for (unsigned i = 0; i < 8; ++i) {
        in[i] |= bit(a, i) << l;
        in[8 + i] |= bit(b, i) << l;
      }
    }
    packed_out.push_back(packed.step(in));
  }

  for (unsigned l = 0; l < 64; l += 13) {
    SeqEvaluator scalar(nl);
    for (unsigned t = 0; t < cycles; ++t) {
      const std::uint64_t expected = scalar.step_word(a_at(l, t), 8, b_at(l, t), 8);
      std::uint64_t got = 0;
      for (std::size_t i = 0; i < packed_out[t].size(); ++i) {
        got |= ((packed_out[t][i] >> l) & 1u) << i;
      }
      ASSERT_EQ(got, expected) << "lane=" << l << " cycle=" << t;
    }
  }
}

TEST(BitParallelSeq, ResetClearsAllLanes) {
  const auto nl = multgen::make_pipelined_netlist(8, mult::Summation::kAccurate);
  BitParallelSeqEvaluator packed(nl);
  std::vector<std::uint64_t> in(nl.inputs().size(), ~std::uint64_t{0});
  for (unsigned t = 0; t < 4; ++t) (void)packed.step(in);
  packed.reset();
  std::fill(in.begin(), in.end(), 0);
  const auto& out = packed.step(in);
  for (const std::uint64_t w : out) EXPECT_EQ(w, 0u);
}

}  // namespace
}  // namespace axmult::fabric
