// Quantized NN inference engine (src/nn): GEMM bit-exactness against the
// int64 reference and against scalar multiplier loops, quantization
// round-trip accuracy, layer semantics, network-level accuracy and the
// report/weight-container plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "mult/recursive.hpp"
#include "nn/dataset.hpp"
#include "nn/gemm.hpp"
#include "nn/graph.hpp"
#include "nn/mac.hpp"
#include "nn/quantize.hpp"
#include "nn/weights.hpp"

namespace axmult::nn {
namespace {

/// Table-only backend (no netlist, so construction stays cheap in tests).
MacBackend table_backend(const char* name, mult::MultiplierPtr m) {
  return MacBackend(name, std::move(m));
}

std::vector<std::uint8_t> random_bytes(std::size_t n, unsigned bits, Xoshiro256& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.below(1u << bits));
  return v;
}

TEST(NnGemm, ExactBackendBitMatchesInt64Reference) {
  const MacBackend exact = table_backend("exact", mult::make_accurate(8));
  Xoshiro256 rng(11);
  // Ragged / non-multiple-of-tile shapes on purpose (incl. single rows,
  // single columns, and sizes straddling the 8-row chunk boundary).
  const struct {
    std::size_t m, k, n;
  } shapes[] = {{1, 1, 1}, {3, 5, 2}, {7, 13, 9}, {8, 8, 8},
                {9, 17, 7}, {33, 19, 5}, {64, 31, 3}, {65, 1, 11}};
  for (const auto& s : shapes) {
    const auto a = random_bytes(s.m * s.k, 8, rng);
    const auto b = random_bytes(s.k * s.n, 8, rng);
    std::vector<std::int64_t> acc(s.m * s.n), ref(s.m * s.n);
    gemm_accumulate(exact, false, a.data(), b.data(), acc.data(), s.m, s.k, s.n);
    gemm_reference(a.data(), b.data(), ref.data(), s.m, s.k, s.n);
    EXPECT_EQ(acc, ref) << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(NnGemm, BlockedKernelsBitMatchNaivePath) {
  // The cache-blocked kernels (portable tile and, where compiled in, the
  // AVX512-VBMI lookup) must reproduce the naive one-load-per-MAC walk
  // exactly, for both operand orders, including ragged column tiles and
  // row tails around the 4-row unroll and 8-row chunk boundaries.
  Xoshiro256 rng(29);
  struct Shape { std::size_t m, k, n; };
  const Shape shapes[] = {{1, 7, 1},   {3, 16, 64},  {13, 200, 77}, {8, 144, 64},
                          {17, 31, 65}, {9, 300, 128}, {5, 64, 63}};
  const MacBackend backends[] = {
      table_backend("exact", mult::make_accurate(8)),
      table_backend("ca8", mult::make_ca(8)),
      table_backend("cc8", mult::make_cc(8)),
      table_backend("trunc8_4", mult::make_result_truncated(8, 4)),
      table_backend("ca16", mult::make_ca(16)),
  };
  for (const MacBackend& backend : backends) {
    for (const auto& s : shapes) {
      const auto a = random_bytes(s.m * s.k, 8, rng);
      const auto b = random_bytes(s.k * s.n, 8, rng);
      for (const bool swap : {false, true}) {
        std::vector<std::int64_t> fast(s.m * s.n, -1), naive(s.m * s.n, -2);
        gemm_accumulate(backend, swap, a.data(), b.data(), fast.data(), s.m, s.k, s.n);
        gemm_accumulate_naive(backend, swap, a.data(), b.data(), naive.data(), s.m, s.k, s.n);
        ASSERT_EQ(fast, naive) << backend.name() << " swap=" << swap << " " << s.m << "x" << s.k
                               << "x" << s.n;
      }
    }
  }
}

TEST(NnGemm, PackedTablesGateOnProductWidth) {
  // 8-bit designs always pack; a 4-bit data path doesn't (table too small
  // to be worth a second layout, and the kernel assumes 256-entry rows).
  EXPECT_TRUE(table_backend("ca8", mult::make_ca(8)).has_packed_tables());
  EXPECT_FALSE(table_backend("approx4", mult::make_ca(4)).has_packed_tables());
  // Swapped tables are the transpose of the plain ones.
  const MacBackend cc = table_backend("cc8", mult::make_cc(8));
  const auto& plain = cc.packed_tables(false);
  const auto& swapped = cc.packed_tables(true);
  for (unsigned a = 0; a < 256; a += 37) {
    for (unsigned b = 0; b < 256; b += 41) {
      EXPECT_EQ(plain.p16[(a << 8) | b], swapped.p16[(b << 8) | a]);
      EXPECT_EQ(plain.p16[(a << 8) | b] & 0xFF, plain.lo[(a << 8) | b]);
      EXPECT_EQ(plain.p16[(a << 8) | b] >> 8, plain.hi[(a << 8) | b]);
    }
  }
}

TEST(NnGemm, DeterministicAcrossThreadCounts) {
  const MacBackend ca = table_backend("ca8", mult::make_ca(8));
  Xoshiro256 rng(5);
  const std::size_t m = 37, k = 23, n = 13;
  const auto a = random_bytes(m * k, 8, rng);
  const auto b = random_bytes(k * n, 8, rng);
  std::vector<std::int64_t> acc1(m * n), acc7(m * n);
  gemm_accumulate(ca, false, a.data(), b.data(), acc1.data(), m, k, n, /*threads=*/1);
  gemm_accumulate(ca, false, a.data(), b.data(), acc7.data(), m, k, n, /*threads=*/7);
  EXPECT_EQ(acc1, acc7);
}

TEST(NnGemm, ApproximateBackendsBitMatchScalarMultiplierLoop) {
  // Every approximate backend's GEMM must equal a plain scalar loop that
  // calls the same multiplier's behavioral eval — both plain and with the
  // operand-swap trick enabled.
  struct Case {
    const char* name;
    mult::MultiplierPtr model;
  };
  const Case cases[] = {{"ca8", mult::make_ca(8)},
                        {"cc8", mult::make_cc(8)},
                        {"k8", mult::make_kulkarni(8)},
                        {"w8", mult::make_rehman_w(8)},
                        {"trunc8_4", mult::make_result_truncated(8, 4)},
                        {"ca16", mult::make_ca(16)}};
  Xoshiro256 rng(17);
  const std::size_t m = 19, k = 11, n = 6;
  const auto a = random_bytes(m * k, 8, rng);
  const auto b = random_bytes(k * n, 8, rng);
  for (const auto& c : cases) {
    const MacBackend backend = table_backend(c.name, c.model);
    for (const bool swap : {false, true}) {
      std::vector<std::int64_t> acc(m * n);
      gemm_accumulate(backend, swap, a.data(), b.data(), acc.data(), m, k, n);
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          std::int64_t want = 0;
          for (std::size_t kk = 0; kk < k; ++kk) {
            const std::uint64_t x = a[i * k + kk];
            const std::uint64_t y = b[kk * n + j];
            want += static_cast<std::int64_t>(swap ? c.model->multiply(y, x)
                                                   : c.model->multiply(x, y));
          }
          ASSERT_EQ(acc[i * n + j], want) << c.name << " swap=" << swap;
        }
      }
    }
  }
}

TEST(NnMac, SwappedDispatchEqualsSwappedDesign) {
  // backend(ca8) with swapped dispatch == backend(cas8): the per-layer
  // swap flag is exactly the paper's Cas configuration.
  const MacBackend ca = table_backend("ca8", mult::make_ca(8));
  const MacBackend cas = table_backend("cas8", mult::make_cas(8));
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      ASSERT_EQ(ca.mul_swapped(a, b), cas.mul(a, b));
    }
  }
}

TEST(NnMac, MetricsMatchErrorModule) {
  const MacBackend ca = table_backend("ca8", mult::make_ca(8));
  const auto ref = error::characterize_exhaustive(*mult::make_ca(8));
  const auto& m = ca.metrics();
  EXPECT_EQ(m.samples, ref.samples);
  EXPECT_EQ(m.max_error, ref.max_error);
  EXPECT_EQ(m.occurrences, ref.occurrences);
  EXPECT_EQ(m.max_error_occurrences, ref.max_error_occurrences);
  EXPECT_NEAR(m.avg_error, ref.avg_error, 1e-9);
  EXPECT_NEAR(m.avg_relative_error, ref.avg_relative_error, 1e-9);
  EXPECT_FALSE(ca.exact());
  EXPECT_TRUE(table_backend("exact", mult::make_accurate(8)).exact());
}

TEST(NnMac, CostRollupIsModeled) {
  const auto ca = make_mac_backend("ca8");
  ASSERT_TRUE(ca->cost().modeled);
  EXPECT_GT(ca->cost().luts, 0u);
  EXPECT_GT(ca->cost().critical_path_ns, 0.0);
  EXPECT_GT(ca->cost().energy_per_mac_au, 0.0);
  EXPECT_NEAR(ca->cost().edp_per_mac_au,
              ca->cost().energy_per_mac_au * ca->cost().critical_path_ns, 1e-9);
}

TEST(NnQuantize, RoundTripWithinOneQuantum) {
  Tensor t({2, 3});
  t.data = {-1.5f, -0.25f, 0.0f, 0.75f, 2.0f, 3.25f};
  const QuantParams q = Quantizer::fit(t, 8);
  const Tensor back = Quantizer::dequantize(Quantizer::quantize(t, q));
  for (std::size_t i = 0; i < t.data.size(); ++i) {
    EXPECT_NEAR(back.data[i], t.data[i], q.scale * 0.5 + 1e-7);
  }
  // Zero is exactly representable.
  EXPECT_FLOAT_EQ(q.dequantize(q.quantize(0.0f)), 0.0f);
}

TEST(NnLayers, DenseQuantizedTracksFloatReference) {
  Xoshiro256 rng(23);
  Dense dense("d", 12, 5);
  Tensor w({12, 5});
  for (auto& v : w.data) v = static_cast<float>(rng.uniform01() - 0.5);
  std::vector<float> bias(5);
  for (auto& v : bias) v = static_cast<float>(rng.uniform01() - 0.5);
  dense.set_weights(w, bias);

  Tensor in({16, 12});
  for (auto& v : in.data) v = static_cast<float>(rng.uniform01());
  const QuantParams in_q = Quantizer::fit(in, 8);
  Tensor calib_out;
  const QuantParams out_q = dense.calibrate(in, in_q, 8, calib_out);

  const MacBackend exact = table_backend("exact", mult::make_accurate(8));
  const QTensor out = dense.forward(Quantizer::quantize(in, in_q), exact, false, 0);
  ASSERT_EQ(out.shape, (Shape{16, 5}));
  const Tensor deq = Quantizer::dequantize(out);
  for (std::size_t i = 0; i < deq.data.size(); ++i) {
    // Input quantization + output rounding: a few quanta of tolerance.
    EXPECT_NEAR(deq.data[i], calib_out.data[i], 4.0 * out_q.scale + 0.05)
        << "element " << i;
  }
}

TEST(NnLayers, ConvQuantizedTracksFloatReference) {
  Xoshiro256 rng(29);
  Conv2D conv("c", 3, 3, 2, 3, /*stride=*/1, /*pad=*/1);
  Tensor w({3, 3, 2, 3});
  for (auto& v : w.data) v = static_cast<float>(rng.uniform01() - 0.5);
  conv.set_weights(w, {0.1f, -0.1f, 0.0f});

  Tensor in({2, 6, 7, 2});  // ragged spatial dims on purpose
  for (auto& v : in.data) v = static_cast<float>(rng.uniform01());
  const QuantParams in_q = Quantizer::fit(in, 8);
  Tensor calib_out;
  const QuantParams out_q = conv.calibrate(in, in_q, 8, calib_out);

  const MacBackend exact = table_backend("exact", mult::make_accurate(8));
  const QTensor out = conv.forward(Quantizer::quantize(in, in_q), exact, false, 0);
  ASSERT_EQ(out.shape, (Shape{2, 6, 7, 3}));
  const Tensor deq = Quantizer::dequantize(out);
  for (std::size_t i = 0; i < deq.data.size(); ++i) {
    EXPECT_NEAR(deq.data[i], calib_out.data[i], 6.0 * out_q.scale + 0.05);
  }
}

TEST(NnNetwork, DigitsAccuracyAndReport) {
  Sequential net = make_digits_network();
  const Dataset calib = make_digits(128, /*seed=*/7);
  net.calibrate(calib.images, 8);

  const Dataset test = make_digits(192, /*seed=*/9);
  const QTensor inputs = net.quantize_input(test.images);
  const NetworkReport exact_report = net.evaluate(inputs, test.labels);
  EXPECT_GE(exact_report.top1_accuracy, 0.85);
  EXPECT_GT(exact_report.macs, 0u);
  EXPECT_GT(exact_report.energy_per_inference_au, 0.0);
  EXPECT_GT(exact_report.critical_path_ns, 0.0);
  ASSERT_EQ(exact_report.layers.size(), net.size());
  for (const auto& lr : exact_report.layers) {
    if (lr.kind == "conv2d" || lr.kind == "dense") {
      EXPECT_TRUE(lr.cost.modeled) << lr.name;
      EXPECT_GT(lr.macs, 0u) << lr.name;
      EXPECT_EQ(lr.output_mre, 0.0) << lr.name;  // exact backend
    }
  }

  // JSON payload exposes the acceptance-criteria keys.
  const std::string json = to_json(exact_report);
  for (const char* key :
       {"top1_accuracy", "edp_au", "macs", "luts", "critical_path_ns", "energy",
        "output_mre"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }

  // An approximate backend must report nonzero layer MRE and still beat
  // chance by a wide margin (Cc is the aggressive design).
  net.set_backend(std::make_shared<MacBackend>("cc8", mult::make_cc(8)));
  const NetworkReport cc_report = net.evaluate(inputs, test.labels);
  bool any_mre = false;
  for (const auto& lr : cc_report.layers) any_mre |= lr.output_mre > 0.0;
  EXPECT_TRUE(any_mre);
  EXPECT_GE(cc_report.top1_accuracy, 0.3);
}

TEST(NnNetwork, PerLayerBackendOverrideAndSwap) {
  Sequential net = make_digits_network();
  const Dataset calib = make_digits(64, 7);
  net.calibrate(calib.images, 8);
  const Dataset test = make_digits(64, 13);
  const QTensor inputs = net.quantize_input(test.images);

  // Swapping operands on an exact backend changes nothing.
  const std::vector<int> base = net.classify(inputs);
  for (std::size_t i = 0; i < net.size(); ++i) net.set_layer_swap(i, true);
  EXPECT_EQ(net.classify(inputs), base);

  // ca8 + swap == cas8 as a network-level identity.
  Sequential net_a = make_digits_network();
  net_a.calibrate(calib.images, 8);
  net_a.set_backend(std::make_shared<MacBackend>("ca8", mult::make_ca(8)));
  for (std::size_t i = 0; i < net_a.size(); ++i) net_a.set_layer_swap(i, true);
  Sequential net_b = make_digits_network();
  net_b.calibrate(calib.images, 8);
  net_b.set_backend(std::make_shared<MacBackend>("cas8", mult::make_cas(8)));
  const QTensor in_a = net_a.quantize_input(test.images);
  const QTensor out_a = net_a.run(in_a);
  const QTensor out_b = net_b.run(net_b.quantize_input(test.images));
  EXPECT_EQ(out_a.data, out_b.data);
}

TEST(NnWeights, ContainerRoundTrip) {
  Sequential net = make_digits_network();
  const TensorMap exported = net.export_weights();
  ASSERT_EQ(exported.size(), 4u);  // conv1/dense1 weight + bias

  const std::string path = ::testing::TempDir() + "axnn_roundtrip.axnn";
  save_tensors(path, exported);
  const TensorMap loaded = load_tensors(path);
  ASSERT_EQ(loaded.size(), exported.size());
  for (const auto& [name, t] : exported) {
    ASSERT_TRUE(loaded.count(name)) << name;
    EXPECT_EQ(loaded.at(name).shape, t.shape) << name;
    EXPECT_EQ(loaded.at(name).data, t.data) << name;
  }

  // Import into a fresh network: after re-calibration the quantized
  // outputs are identical.
  Sequential net2 = make_digits_network();
  net2.import_weights(loaded);
  const Dataset calib = make_digits(64, 7);
  net.calibrate(calib.images, 8);
  net2.calibrate(calib.images, 8);
  const Dataset test = make_digits(32, 21);
  EXPECT_EQ(net.run(net.quantize_input(test.images)).data,
            net2.run(net2.quantize_input(test.images)).data);
  std::remove(path.c_str());
}

TEST(NnMac, RegistryNamesBuild) {
  // Every advertised backend constructs, tabulates and cost-models. The
  // 16x16 entries are the expensive ones; keep to a spot check plus the
  // full 8-bit set.
  for (const std::string& name : mac_backend_names()) {
    if (name == "ca16" || name == "cc16") continue;  // covered elsewhere
    const auto b = make_mac_backend(name);
    EXPECT_EQ(b->name(), name);
    EXPECT_TRUE(b->cost().modeled) << name;
    EXPECT_GT(b->cost().luts, 0u) << name;
  }
  EXPECT_THROW((void)make_mac_backend("nope"), std::out_of_range);
}

}  // namespace
}  // namespace axmult::nn
