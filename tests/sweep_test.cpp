// Batched + multithreaded sweep API (error/metrics.hpp): agreement with the
// per-pair PairSource path, netlist-vs-behavioral agreement, and bit-exact
// determinism across thread counts.
#include <gtest/gtest.h>

#include <cmath>

#include "common/parallel_for.hpp"
#include "error/metrics.hpp"
#include "mult/recursive.hpp"
#include "multgen/generators.hpp"

namespace axmult::error {
namespace {

void expect_same_metrics(const ErrorMetrics& a, const ErrorMetrics& b) {
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.occurrences, b.occurrences);
  EXPECT_EQ(a.max_error, b.max_error);
  EXPECT_EQ(a.max_error_occurrences, b.max_error_occurrences);
  EXPECT_NEAR(a.avg_error, b.avg_error, 1e-9 * (1.0 + a.avg_error));
  EXPECT_NEAR(a.avg_relative_error, b.avg_relative_error, 1e-9 * (1.0 + a.avg_relative_error));
  EXPECT_NEAR(a.mean_signed_error, b.mean_signed_error,
              1e-9 * (1.0 + std::abs(a.mean_signed_error)));
}

TEST(Sweep, ExhaustiveMatchesPairSourcePath8x8) {
  const auto m = mult::make_ca(8);
  const auto reference = characterize_exhaustive(*m);
  const auto swept = sweep_exhaustive(*m);
  expect_same_metrics(swept.metrics, reference);

  // Fig. 8 artifacts agree with the per-pair implementations too.
  const auto ref_prob = bit_error_probability(*m, exhaustive_source(8, 8));
  ASSERT_EQ(swept.bit_error_probability.size(), ref_prob.size());
  for (std::size_t i = 0; i < ref_prob.size(); ++i) {
    EXPECT_DOUBLE_EQ(swept.bit_error_probability[i], ref_prob[i]) << "bit " << i;
  }
  EXPECT_EQ(swept.pmf, error_pmf(*m, exhaustive_source(8, 8)));
}

TEST(Sweep, NetlistReplayMatchesBehavioralModel) {
  // The bit-parallel netlist sweep and the behavioral sweep must agree on
  // every field: the two forms of each design are bit-for-bit equivalent.
  for (const unsigned width : {4u, 8u}) {
    const auto nl_ca = multgen::make_ca_netlist(width);
    const auto swept_nl = sweep_netlist_exhaustive(nl_ca, width, width);
    const auto swept_model = sweep_exhaustive(*mult::make_ca(width));
    expect_same_metrics(swept_nl.metrics, swept_model.metrics);
    EXPECT_EQ(swept_nl.pmf, swept_model.pmf);
    EXPECT_EQ(swept_nl.bit_error_probability, swept_model.bit_error_probability);
  }
}

TEST(Sweep, CarryFreeNetlistReplayMatchesBehavioralModel) {
  const auto nl = multgen::make_cc_netlist(8);
  const auto swept_nl = sweep_netlist_exhaustive(nl, 8, 8);
  const auto swept_model = sweep_exhaustive(*mult::make_cc(8));
  expect_same_metrics(swept_nl.metrics, swept_model.metrics);
  EXPECT_EQ(swept_nl.pmf, swept_model.pmf);
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
  // Small chunks force many chunks per worker so the dynamic chunk->thread
  // assignment actually varies; every field must still be bit-identical.
  const auto m = mult::make_cc(8);
  SweepConfig cfg;
  cfg.chunk_pairs = 1024;
  cfg.threads = 1;
  const auto r1 = sweep_exhaustive(*m, cfg);
  for (const unsigned threads : {2u, 5u, 16u}) {
    cfg.threads = threads;
    const auto rn = sweep_exhaustive(*m, cfg);
    EXPECT_EQ(rn.metrics.samples, r1.metrics.samples) << threads;
    EXPECT_EQ(rn.metrics.occurrences, r1.metrics.occurrences) << threads;
    EXPECT_EQ(rn.metrics.max_error, r1.metrics.max_error) << threads;
    EXPECT_EQ(rn.metrics.max_error_occurrences, r1.metrics.max_error_occurrences) << threads;
    // Bit-exact float equality is the whole point of chunk-ordered reduction.
    EXPECT_EQ(rn.metrics.avg_error, r1.metrics.avg_error) << threads;
    EXPECT_EQ(rn.metrics.avg_relative_error, r1.metrics.avg_relative_error) << threads;
    EXPECT_EQ(rn.metrics.mean_signed_error, r1.metrics.mean_signed_error) << threads;
    EXPECT_EQ(rn.bit_error_probability, r1.bit_error_probability) << threads;
    EXPECT_EQ(rn.pmf, r1.pmf) << threads;
  }
}

TEST(Sweep, NetlistSweepDeterministicAcrossThreadCounts) {
  const auto nl = multgen::make_ca_netlist(8);
  SweepConfig cfg;
  cfg.chunk_pairs = 512;
  cfg.threads = 1;
  const auto r1 = sweep_netlist_exhaustive(nl, 8, 8, cfg);
  for (const unsigned threads : {3u, 8u}) {
    cfg.threads = threads;
    const auto rn = sweep_netlist_exhaustive(nl, 8, 8, cfg);
    EXPECT_EQ(rn.metrics.avg_error, r1.metrics.avg_error) << threads;
    EXPECT_EQ(rn.metrics.avg_relative_error, r1.metrics.avg_relative_error) << threads;
    EXPECT_EQ(rn.metrics.max_error, r1.metrics.max_error) << threads;
    EXPECT_EQ(rn.metrics.max_error_occurrences, r1.metrics.max_error_occurrences) << threads;
    EXPECT_EQ(rn.pmf, r1.pmf) << threads;
    EXPECT_EQ(rn.bit_error_probability, r1.bit_error_probability) << threads;
  }
}

TEST(Sweep, SampledDeterministicAcrossThreadCounts) {
  const auto m = mult::make_ca(8);
  SweepConfig cfg;
  cfg.chunk_pairs = 4096;
  cfg.threads = 1;
  const auto r1 = sweep_sampled(*m, 100000, /*seed=*/42, cfg);
  EXPECT_EQ(r1.metrics.samples, 100000u);
  for (const unsigned threads : {2u, 7u}) {
    cfg.threads = threads;
    const auto rn = sweep_sampled(*m, 100000, /*seed=*/42, cfg);
    EXPECT_EQ(rn.metrics.occurrences, r1.metrics.occurrences) << threads;
    EXPECT_EQ(rn.metrics.avg_error, r1.metrics.avg_error) << threads;
    EXPECT_EQ(rn.metrics.avg_relative_error, r1.metrics.avg_relative_error) << threads;
    EXPECT_EQ(rn.pmf, r1.pmf) << threads;
  }
}

TEST(Sweep, CollectionFlagsDisableArtifacts) {
  const auto m = mult::make_ca(4);
  SweepConfig cfg;
  cfg.collect_pmf = false;
  cfg.collect_bit_probability = false;
  const auto r = sweep_exhaustive(*m, cfg);
  EXPECT_TRUE(r.pmf.empty());
  EXPECT_TRUE(r.bit_error_probability.empty());
  EXPECT_EQ(r.metrics.samples, 256u);
}

TEST(Sweep, SmallInputSpacesBelow64Pairs) {
  // 2+2 operand bits -> 16 pairs, less than one lane group: the ragged
  // packing path must still cover the whole space exactly once.
  const auto m = mult::make_kulkarni(2);
  const auto swept = sweep_exhaustive(*m);
  const auto reference = characterize_exhaustive(*m);
  expect_same_metrics(swept.metrics, reference);
  EXPECT_EQ(swept.metrics.samples, 16u);

  const auto nl = multgen::make_kulkarni_netlist(2);
  const auto swept_nl = sweep_netlist_exhaustive(nl, 2, 2);
  expect_same_metrics(swept_nl.metrics, reference);
}

TEST(Sweep, NetlistSweepRejectsWidthMismatch) {
  const auto nl = multgen::make_ca_netlist(8);
  EXPECT_THROW((void)sweep_netlist_exhaustive(nl, 4, 4), std::invalid_argument);
}

TEST(ParallelFor, PropagatesWorkerExceptions) {
  EXPECT_THROW(parallel_chunks(8, 2,
                               [] {
                                 return [](std::uint64_t c) {
                                   if (c == 3) throw std::runtime_error("boom");
                                 };
                               }),
               std::runtime_error);
}

TEST(ParallelFor, ThreadCountResolutionPrefersExplicit) {
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3u);
  EXPECT_EQ(thread_count(7), 7u);
  set_thread_count(0);
  EXPECT_GE(thread_count(), 1u);
}

}  // namespace
}  // namespace axmult::error
