// Tests for the analytic compositional error engine (error/analytic.hpp)
// and its conformance instruments (check/analytic.hpp): bit-exact 8x8
// differentials against exhaustive netlist sweeps, independent strategy
// cross-derivations (cross vs bipartite at 8 bits, factor vs bipartite at
// 16), statistical 16x16 cross-validation against sampled sweeps, the
// frozen 16-bit metrics golden, and the dse::evaluate provenance plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/catalog.hpp"
#include "check/analytic.hpp"
#include "check/subject.hpp"
#include "dse/cache.hpp"
#include "dse/evaluate.hpp"
#include "dse/space.hpp"
#include "error/analytic.hpp"
#include "error/metrics.hpp"
#include "mult/elementary.hpp"
#include "mult/recursive.hpp"

#ifndef AXCHECK_GOLDEN_DIR
#define AXCHECK_GOLDEN_DIR "tests/golden"
#endif

namespace axmult {
namespace {

void expect_differential_clean(const std::string& key) {
  const check::AnalyticDifferential d = check::analytic_differential(key);
  ASSERT_TRUE(d.supported) << key << ": " << d.reason;
  for (const std::string& f : d.failures) ADD_FAILURE() << key << ": " << f;
}

// ---- bit-exact differentials against exhaustive netlist sweeps -----------

TEST(AnalyticDifferential, EveryCatalogDesignAt4And8Bits) {
  for (const unsigned w : {4u, 8u}) {
    for (const std::string& key : check::catalog_subject_keys(w)) {
      expect_differential_clean(key);
    }
  }
}

TEST(AnalyticDifferential, EvoFamilyDesigns) {
  for (const auto& d : analysis::evo_family_8x8()) {
    expect_differential_clean("catalog:" + d.name);
  }
}

TEST(AnalyticDifferential, ElementaryRectangularLeaf) {
  expect_differential_clean("elem:a4x2");
}

TEST(AnalyticDifferential, DseTruncSwapLowerOrAndMixedSummations) {
  expect_differential_clean("dse:w8;l=a4x4;s=A;o=0;t=3;x=1;g=0");
  expect_differential_clean("dse:w8;l=k2x2;s=CA;o=0;t=0;x=0;g=0");
  expect_differential_clean("dse:w8;l=a4x4;s=O;o=3;t=0;x=0;g=1");
}

TEST(AnalyticDifferential, PerturbedLeafTracksNetlistBusWrap) {
  // Flips 3:17 and 5:40 make the 4x2 leaf overshoot the exact product, so
  // the behavioral sum would exceed the netlist's fixed 3m-bit ternary
  // chain; the analytic tree masks exactly as the hardware does.
  expect_differential_clean("dse:w8;l=p4x2;s=A;o=0;t=0;x=0;g=0;p=3:17,5:40");
}

TEST(AnalyticDifferential, FlipSubjectComparesTheReferenceNetlist) {
  // "+flip" subjects keep the unperturbed netlist as reference; the
  // analytic spec describes that reference, so the differential still
  // demands bit-exact agreement.
  expect_differential_clean("catalog:Ca_8+flip:3:12");
}

TEST(AnalyticDifferential, OutOfEnvelopeSubjectsAreReportedNotFailed) {
  // No compositional description at all...
  const check::AnalyticDifferential unknown =
      check::analytic_differential("catalog:Ca_8_pipelined");
  EXPECT_FALSE(unknown.supported);
  EXPECT_FALSE(unknown.reason.empty());
  // ...and in-envelope but too wide for the reference sweep the
  // differential needs (the metrics golden covers 16-bit exactness).
  const check::AnalyticDifferential wide = check::analytic_differential("catalog:Ca_16");
  EXPECT_FALSE(wide.supported);
  EXPECT_FALSE(wide.reason.empty());
}

// ---- paper Table 5 anchors straight out of the engine --------------------

TEST(AnalyticMetrics, Ca8MatchesPaperTable5) {
  const auto am = error::analytic_metrics(*check::catalog_analytic_spec("Ca_8"));
  ASSERT_TRUE(am.has_value());
  EXPECT_EQ(am->metrics.max_error, 2312u);
  EXPECT_DOUBLE_EQ(am->metrics.avg_error, 54.1875);
  EXPECT_NEAR(am->metrics.avg_relative_error, 0.0029176978, 1e-9);
  EXPECT_EQ(am->metrics.occurrences, 5482u);
  EXPECT_EQ(am->metrics.max_error_occurrences, 14u);
}

TEST(AnalyticMetrics, K8MatchesPaperTable5) {
  const auto am = error::analytic_metrics(*check::catalog_analytic_spec("K_8"));
  ASSERT_TRUE(am.has_value());
  EXPECT_EQ(am->metrics.max_error, 14450u);
  EXPECT_DOUBLE_EQ(am->metrics.avg_error, 903.125);
  EXPECT_NEAR(am->metrics.avg_relative_error, 0.03254912, 1e-7);
  EXPECT_EQ(am->metrics.occurrences, 30625u);
  EXPECT_EQ(am->metrics.max_error_occurrences, 1u);
}

// ---- independent strategy cross-derivations ------------------------------

TEST(AnalyticStrategies, CrossAndBipartiteAgreeAt8Bits) {
  // Ca_8 satisfies both envelopes: enumeration (cross) and the bilinear
  // slice decomposition (bipartite) must produce identical exact numbers.
  const auto spec = check::catalog_analytic_spec("Ca_8");
  std::string why;
  const auto cross = error::analytic_detail::analyze_cross(*spec, &why);
  ASSERT_TRUE(cross.has_value()) << why;
  const auto bi = error::analytic_detail::analyze_bipartite(*spec, &why);
  ASSERT_TRUE(bi.has_value()) << why;
  EXPECT_EQ(cross->metrics.samples, bi->metrics.samples);
  EXPECT_EQ(cross->metrics.max_error, bi->metrics.max_error);
  EXPECT_EQ(cross->metrics.occurrences, bi->metrics.occurrences);
  EXPECT_EQ(cross->metrics.max_error_occurrences, bi->metrics.max_error_occurrences);
  EXPECT_DOUBLE_EQ(cross->metrics.avg_error, bi->metrics.avg_error);
  EXPECT_NEAR(bi->metrics.avg_relative_error, cross->metrics.avg_relative_error,
              1e-12 * cross->metrics.avg_relative_error);
}

TEST(AnalyticStrategies, FactorAndBipartiteAgreeAt16Bits) {
  for (const char* name : {"Ca_16", "K_16", "W_16"}) {
    const auto spec = check::catalog_analytic_spec(name);
    std::string why;
    const auto factor = error::analytic_detail::analyze_factor(*spec, &why);
    ASSERT_TRUE(factor.has_value()) << name << ": " << why;
    const auto bi = error::analytic_detail::analyze_bipartite(*spec, &why);
    ASSERT_TRUE(bi.has_value()) << name << ": " << why;
    EXPECT_EQ(factor->metrics.max_error, bi->metrics.max_error) << name;
    EXPECT_EQ(factor->metrics.occurrences, bi->metrics.occurrences) << name;
    EXPECT_EQ(factor->metrics.max_error_occurrences, bi->metrics.max_error_occurrences)
        << name;
    EXPECT_NEAR(factor->metrics.avg_error, bi->metrics.avg_error,
                1e-12 * factor->metrics.avg_error)
        << name;
    EXPECT_NEAR(factor->metrics.avg_relative_error, bi->metrics.avg_relative_error,
                1e-12 * factor->metrics.avg_relative_error)
        << name;
  }
}

// ---- statistical 16x16 cross-validation ----------------------------------

TEST(AnalyticMetrics, SampledSweepsCorroborateThe16BitMetrics) {
  struct Case {
    const char* name;
    mult::MultiplierPtr model;
  };
  // Mult(16,4) is deliberately absent: its relative error is a heavy-tailed
  // rare event (tiny operands only), so no 2^18-pair sample estimates the
  // MRE to percent accuracy — exactly the weakness the analytic engine
  // removes.
  const Case cases[] = {
      {"Ca_16", mult::make_ca(16)},
      {"K_16", mult::make_kulkarni(16)},
  };
  error::SweepConfig cfg;
  cfg.collect_pmf = false;
  cfg.collect_bit_probability = false;
  for (const Case& c : cases) {
    const auto am = error::analytic_metrics(*check::catalog_analytic_spec(c.name));
    ASSERT_TRUE(am.has_value()) << c.name;
    const auto sampled =
        error::sweep_sampled(*c.model, std::uint64_t{1} << 18, 1, cfg).metrics;
    // A 2^18-pair uniform sample estimates the exact means to well within
    // 5% for these designs; the observed max can never beat the true max.
    EXPECT_LE(sampled.max_error, am->metrics.max_error) << c.name;
    if (am->metrics.avg_relative_error > 0) {
      EXPECT_NEAR(sampled.avg_relative_error, am->metrics.avg_relative_error,
                  0.05 * am->metrics.avg_relative_error)
          << c.name;
    }
    EXPECT_NEAR(sampled.error_probability(), am->error_probability, 0.02) << c.name;
  }
}

// ---- Euler-Maclaurin harmonic helper -------------------------------------

TEST(AnalyticDetail, HarmonicBlockSumMatchesDirectSummation) {
  // sum_{h=2}^{499} sum_{t=0}^{6} 1/(3 + 17h + t), brute force vs the
  // digamma/Euler-Maclaurin path (em_head far below N forces the EM tail).
  long double direct = 0.0L;
  for (std::uint64_t h = 2; h < 500; ++h) {
    for (std::uint64_t t = 0; t < 7; ++t) {
      direct += 1.0L / (3.0L + 17.0L * static_cast<long double>(h) +
                        static_cast<long double>(t));
    }
  }
  // The Euler-Maclaurin tail truncates its expansion; with the head cut
  // this early (production keeps 1024 direct terms) it is still good to
  // ~1e-10 relative. The all-direct path goes through digamma differences
  // and lands within a few ulp of the brute-force sum.
  const long double em =
      error::analytic_detail::harmonic_block_sum(3.0L, 17.0L, 7.0L, 2, 500, 16);
  EXPECT_NEAR(static_cast<double>(em), static_cast<double>(direct),
              1e-9 * static_cast<double>(direct));
  const long double all_direct =
      error::analytic_detail::harmonic_block_sum(3.0L, 17.0L, 7.0L, 2, 500, 1024);
  EXPECT_NEAR(static_cast<double>(all_direct), static_cast<double>(direct),
              1e-12 * static_cast<double>(direct));
}

// ---- frozen 16-bit metrics golden ----------------------------------------

TEST(AnalyticGolden, CheckedInGoldenReplaysClean) {
  const std::string path =
      std::string(AXCHECK_GOLDEN_DIR) + "/" + check::kAnalyticMetricsGoldenFile;
  const auto failure = check::replay_analytic_metrics_golden(path);
  EXPECT_FALSE(failure.has_value()) << *failure;
}

TEST(AnalyticGolden, WriteThenReplayRoundTrips) {
  const std::string path = testing::TempDir() + "analytic_metrics_roundtrip.golden";
  check::write_analytic_metrics_golden(path);
  const auto failure = check::replay_analytic_metrics_golden(path);
  EXPECT_FALSE(failure.has_value()) << *failure;
  std::remove(path.c_str());
}

// ---- dse::evaluate provenance --------------------------------------------

dse::EvalOptions fast_eval() {
  dse::EvalOptions eval;
  eval.exhaustive_bits = 16;
  eval.samples = 4096;
  eval.power_vectors = 64;
  return eval;
}

TEST(DseProvenance, Ca16EvaluatesAnalytically) {
  const dse::Objectives obj = dse::evaluate(dse::paper_ca(16), fast_eval());
  EXPECT_EQ(obj.provenance, "analytic");
  EXPECT_TRUE(obj.exhaustive);
  EXPECT_EQ(obj.samples, std::uint64_t{1} << 32);
  EXPECT_EQ(obj.max_error, 152705288u);
  EXPECT_NEAR(obj.mre, 0.002965421398, 1e-10);
  EXPECT_NEAR(obj.error_probability, 0.260816, 1e-5);
}

TEST(DseProvenance, Ca8StaysExhaustiveAndCc16FallsBackToSampled) {
  EXPECT_EQ(dse::evaluate(dse::paper_ca(8), fast_eval()).provenance, "exhaustive");
  // Cc_16's carry-free top level is outside the analytic envelope.
  EXPECT_EQ(dse::evaluate(dse::paper_cc(16), fast_eval()).provenance, "sampled");
}

TEST(DseProvenance, GaussianDistributionsNeverUseTheAnalyticPath) {
  dse::EvalOptions eval = fast_eval();
  eval.gaussian = true;
  eval.mean_a = 100.0;
  eval.sigma_a = 20.0;
  eval.mean_b = 30.0;
  eval.sigma_b = 10.0;
  EXPECT_EQ(dse::evaluate(dse::paper_ca(16), eval).provenance, "sampled");
}

TEST(DseProvenance, AnalyticToggleChangesContextAndPath) {
  dse::EvalOptions off = fast_eval();
  off.analytic = false;
  EXPECT_NE(fast_eval().context(), off.context());
  EXPECT_EQ(dse::evaluate(dse::paper_ca(16), off).provenance, "sampled");
}

TEST(DseProvenance, CacheRoundTripPreservesProvenance) {
  const std::string path = testing::TempDir() + "dse_cache_provenance.json";
  std::remove(path.c_str());
  const std::vector<dse::Config> configs{dse::paper_ca(16)};
  {
    dse::EvalCache cache(path);
    const auto fresh = dse::evaluate_all(configs, &cache, fast_eval(), 1);
    ASSERT_EQ(fresh[0].provenance, "analytic");
  }
  dse::EvalCache reloaded(path);
  EXPECT_EQ(reloaded.loaded_entries(), 1u);
  std::uint64_t hits = 0;
  const auto cached = dse::evaluate_all(configs, &reloaded, fast_eval(), 1, &hits);
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(cached[0].provenance, "analytic");
  EXPECT_EQ(cached[0].max_error, 152705288u);
  std::remove(path.c_str());
}

TEST(DseProvenance, StaleEvaluatorVersionsAreIgnoredOnLoad) {
  const std::string path = testing::TempDir() + "dse_cache_stale.json";
  {
    std::ofstream out(path);
    // A v1 line (pre-analytic evaluator): must not satisfy v2 lookups.
    out << "{\"v\": 1, \"key\": \"" << dse::EvalCache::full_key(dse::paper_ca(16), fast_eval())
        << "\", \"luts\": 1}\n";
  }
  dse::EvalCache cache(path);
  EXPECT_EQ(cache.loaded_entries(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace axmult
