// Parameterized property sweeps across the whole design space:
// every (configuration x width) must satisfy the library's structural
// invariants — netlist/behavioral agreement, one-sided error where the
// architecture guarantees it, monotone area and latency in width, and
// sane implementation reports.
#include <gtest/gtest.h>

#include <tuple>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "error/metrics.hpp"
#include "mult/recursive.hpp"
#include "multgen/generators.hpp"
#include "power/power.hpp"
#include "timing/sta.hpp"

namespace axmult {
namespace {

using mult::Elementary;
using mult::Summation;
using multgen::MappingStyle;

struct SweepConfig {
  std::string label;
  Elementary elementary;
  Summation summation;
  MappingStyle style;
  bool ternary;
};

std::vector<SweepConfig> sweep_configs() {
  return {
      {"Ca", Elementary::kApprox4x4, Summation::kAccurate, MappingStyle::kHandOptimized, true},
      {"Cc", Elementary::kApprox4x4, Summation::kCarryFree, MappingStyle::kHandOptimized, true},
      {"AccTree", Elementary::kAccurate4x4, Summation::kAccurate,
       MappingStyle::kHandOptimized, true},
      {"AccTreeBinary", Elementary::kAccurate4x4, Summation::kAccurate,
       MappingStyle::kHandOptimized, false},
      {"K", Elementary::kKulkarni2x2, Summation::kAccurate, MappingStyle::kSynthesized, false},
      {"W", Elementary::kRehman2x2, Summation::kAccurate, MappingStyle::kSynthesized, false},
      {"KHand", Elementary::kKulkarni2x2, Summation::kAccurate,
       MappingStyle::kHandOptimized, true},
      {"AccCc", Elementary::kAccurate4x4, Summation::kCarryFree,
       MappingStyle::kHandOptimized, true},
  };
}

class DesignSweep : public ::testing::TestWithParam<std::tuple<SweepConfig, unsigned>> {};

TEST_P(DesignSweep, NetlistAgreesWithBehavioralModel) {
  const auto& [cfg, width] = GetParam();
  const multgen::GeneratorSpec spec{width, cfg.elementary, cfg.summation, cfg.style,
                                    cfg.ternary};
  const mult::RecursiveMultiplier model(width, cfg.elementary, cfg.summation);
  const auto nl = multgen::make_netlist(spec);
  fabric::Evaluator ev(nl);
  if (width <= 8) {
    const std::uint64_t n = std::uint64_t{1} << width;
    for (std::uint64_t a = 0; a < n; ++a) {
      for (std::uint64_t b = 0; b < n; ++b) {
        ASSERT_EQ(ev.eval_word(a, width, b, width), model.multiply(a, b))
            << cfg.label << " " << a << "*" << b;
      }
    }
  } else {
    Xoshiro256 rng(width * 1000003);
    for (int i = 0; i < 1500; ++i) {
      const std::uint64_t a = rng() & low_mask(width);
      const std::uint64_t b = rng() & low_mask(width);
      ASSERT_EQ(ev.eval_word(a, width, b, width), model.multiply(a, b))
          << cfg.label << " " << a << "*" << b;
    }
  }
}

TEST_P(DesignSweep, ErrorIsOneSidedAndZeroPreserving) {
  const auto& [cfg, width] = GetParam();
  const mult::RecursiveMultiplier model(width, cfg.elementary, cfg.summation);
  // Every architecture in the sweep only ever under-approximates, and
  // multiplication by zero must stay exact.
  Xoshiro256 rng(width * 7919);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t a = rng() & low_mask(width);
    const std::uint64_t b = rng() & low_mask(width);
    ASSERT_LE(model.multiply(a, b), a * b) << cfg.label;
  }
  for (std::uint64_t v = 0; v < (1u << std::min(width, 10u)); ++v) {
    ASSERT_EQ(model.multiply(0, v), 0u);
    ASSERT_EQ(model.multiply(v, 0), 0u);
    ASSERT_EQ(model.multiply(1, v & low_mask(width)), v & low_mask(width)) << cfg.label;
  }
}

TEST_P(DesignSweep, ImplementationReportIsSane) {
  const auto& [cfg, width] = GetParam();
  const multgen::GeneratorSpec spec{width, cfg.elementary, cfg.summation, cfg.style,
                                    cfg.ternary};
  const auto nl = multgen::make_netlist(spec);
  const auto area = nl.area();
  EXPECT_GT(area.luts, 0u);
  EXPECT_GT(area.slices, 0u);
  const auto sta = timing::analyze(nl);
  EXPECT_GT(sta.critical_path_ns, 2.0);
  EXPECT_LT(sta.critical_path_ns, 40.0);
  EXPECT_FALSE(sta.path.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigsAndWidths, DesignSweep,
    ::testing::Combine(::testing::ValuesIn(sweep_configs()),
                       ::testing::Values(4u, 8u, 16u, 32u)),
    [](const ::testing::TestParamInfo<DesignSweep::ParamType>& info) {
      return std::get<0>(info.param).label + "_" + std::to_string(std::get<1>(info.param));
    });

// ---- width scaling properties (not per-config) ---------------------------

class WidthScaling : public ::testing::TestWithParam<unsigned> {};

TEST_P(WidthScaling, AreaGrowsRoughlyQuadratically) {
  const unsigned w = GetParam();
  const auto small = multgen::make_ca_netlist(w).area().luts;
  const auto big = multgen::make_ca_netlist(2 * w).area().luts;
  EXPECT_GT(big, 4 * small);        // 4 sub-multipliers plus summation
  EXPECT_LT(big, 5 * small + 40);   // summation overhead is linear-ish
}

TEST_P(WidthScaling, LatencyGrowsSubLinearly) {
  const unsigned w = GetParam();
  const double t1 = timing::analyze(multgen::make_ca_netlist(w)).critical_path_ns;
  const double t2 = timing::analyze(multgen::make_ca_netlist(2 * w)).critical_path_ns;
  EXPECT_GT(t2, t1);
  EXPECT_LT(t2, 2.0 * t1);
}

TEST_P(WidthScaling, CcLatencyIsNearlyWidthIndependent) {
  const unsigned w = GetParam();
  const double t1 = timing::analyze(multgen::make_cc_netlist(w)).critical_path_ns;
  const double t2 = timing::analyze(multgen::make_cc_netlist(2 * w)).critical_path_ns;
  EXPECT_LT(t2 - t1, 1.5);  // one extra XOR-column level per doubling
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthScaling, ::testing::Values(4u, 8u, 16u));

// ---- truncation sweep -----------------------------------------------------

class TruncationSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(TruncationSweep, MetricsFollowClosedForms) {
  const unsigned k = GetParam();
  const auto m = mult::make_result_truncated(8, k);
  const auto r = error::characterize_exhaustive(*m);
  EXPECT_EQ(r.max_error, (std::uint64_t{1} << k) - 1);
  // Average error grows roughly like 2^(k-1) (half the truncated range).
  EXPECT_GT(r.avg_error, 0.25 * static_cast<double>(std::uint64_t{1} << k) - 1.0);
  EXPECT_LT(r.avg_error, 0.55 * static_cast<double>(std::uint64_t{1} << k));
}

INSTANTIATE_TEST_SUITE_P(Depths, TruncationSweep, ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// ---- Cb sweep ---------------------------------------------------------------

class CbSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(CbSweep, NetlistMatchesModelSampled) {
  const unsigned L = GetParam();
  const auto model = mult::make_cb(16, L);
  const auto nl = multgen::make_cb_netlist(16, L);
  fabric::Evaluator ev(nl);
  Xoshiro256 rng(L + 99);
  for (int i = 0; i < 800; ++i) {
    const std::uint64_t a = rng() & 0xFFFF;
    const std::uint64_t b = rng() & 0xFFFF;
    ASSERT_EQ(ev.eval_word(a, 16, b, 16), model->multiply(a, b)) << L;
  }
}

INSTANTIATE_TEST_SUITE_P(LowerOrBits, CbSweep, ::testing::Values(0u, 2u, 4u, 6u, 8u));

}  // namespace
}  // namespace axmult
