// Full-catalog JPEG corpus sweep — every registry backend over every
// corpus image at a range of qualities, asserting that no approximate
// multiplier beats the exact pipeline on PSNR beyond dither luck.
//
// "Beyond dither luck": under coarse quantization a bounded multiplier
// error occasionally rounds a coefficient *toward* the source where exact
// rounds away, so low-error designs (the Ca family) can edge out exact by
// up to ~0.12 dB on a single (image, quality) cell at q <= 10. That is
// measurement noise of the quantizer, not fidelity created from nothing —
// so the per-cell assertion carries a 0.15 dB tolerance, and the
// corpus-mean PSNR per backend is asserted strictly below exact. Minutes
// of CPU, so it is opt-in like the other exhaustive characterizations:
// AXMULT_HEAVY=1 (ctest label `heavy`).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

#include "apps/image.hpp"
#include "jpeg/codec.hpp"
#include "jpeg/golden.hpp"
#include "nn/mac.hpp"

namespace axmult::jpeg {
namespace {

class JpegHeavy : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::getenv("AXMULT_HEAVY") == nullptr) {
      GTEST_SKIP() << "set AXMULT_HEAVY=1 to run the full-catalog corpus sweep";
    }
  }
};

TEST_F(JpegHeavy, NoApproximateBackendBeatsExactPsnrOverTheCorpus) {
  constexpr double kDitherMarginDb = 0.15;  // see the file header
  const std::vector<int> qualities = {10, 25, 50, 75, 90, 100};
  std::map<std::string, double> psnr_sum;  // backend[:swap] -> Σ psnr over cells
  double exact_sum = 0.0;
  std::size_t cells = 0;
  for (const NamedImage& named : golden_corpus()) {
    for (const int quality : qualities) {
      const CodecPlan exact_plan = CodecPlan::uniform(nn::shared_mac_backend("exact"));
      const Decoded exact_dec =
          decode(encode(named.image, quality, exact_plan), exact_plan);
      const double exact_psnr = apps::psnr(named.image, exact_dec.image);
      exact_sum += exact_psnr;
      ++cells;
      for (const std::string& name : nn::mac_backend_names()) {
        if (name == "exact") continue;
        // Both the uniform pipeline and the swapped-port wiring.
        for (const bool swap : {false, true}) {
          const CodecPlan plan = CodecPlan::uniform(nn::shared_mac_backend(name), swap);
          const Decoded dec = decode(encode(named.image, quality, plan), plan);
          const double psnr = apps::psnr(named.image, dec.image);
          EXPECT_LE(psnr, exact_psnr + kDitherMarginDb)
              << named.name << " q" << quality << " " << name << (swap ? ":swap" : "");
          psnr_sum[name + (swap ? ":swap" : "")] += psnr;
        }
      }
    }
  }
  // Averaged over the corpus the luck washes out: every approximate
  // backend must sit strictly below exact.
  for (const auto& [label, sum] : psnr_sum) {
    EXPECT_LT(sum / static_cast<double>(cells), exact_sum / static_cast<double>(cells))
        << label;
  }
}

}  // namespace
}  // namespace axmult::jpeg
