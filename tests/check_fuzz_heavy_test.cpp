// Long-fuzz campaign of the differential conformance harness: wide
// subject sampling across the paper8 space, 16-bit catalog subjects, and
// many more operand batches than the tier-1 check_test runs. Opt-in
// (AXMULT_HEAVY=1, ctest label `heavy`) — this is the job CI's
// workflow_dispatch fuzz runs, with repros/coverage uploaded as artifacts.
#include <gtest/gtest.h>

#include <cstdlib>

#include "check/harness.hpp"

namespace axmult::check {
namespace {

class HeavyFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::getenv("AXMULT_HEAVY") == nullptr) {
      GTEST_SKIP() << "set AXMULT_HEAVY=1 to run the long fuzz campaign";
    }
  }
};

TEST_F(HeavyFuzz, WideDseSamplingFindsNoDivergence) {
  FuzzOptions opts;
  opts.seed = std::getenv("AXCHECK_SEED") != nullptr
                  ? std::strtoull(std::getenv("AXCHECK_SEED"), nullptr, 10)
                  : 1;
  opts.space = "paper8";
  opts.iters = 64;
  opts.batches = 24;
  opts.batch_size = 512;
  opts.repro_dir = "axcheck_heavy_repros";
  const FuzzReport report = fuzz(opts);
  EXPECT_EQ(report.failure_count(), 0u) << report.to_json();
  EXPECT_GT(report.total_pairs, std::size_t{500000});
}

TEST_F(HeavyFuzz, SixteenBitCatalogAgreesAcrossBackends) {
  FuzzOptions opts;
  opts.seed = 2;
  opts.width = 16;
  opts.space = "wide16";
  opts.iters = 8;
  opts.batches = 12;
  opts.batch_size = 512;
  opts.repro_dir = "axcheck_heavy_repros";
  const FuzzReport report = fuzz(opts);
  EXPECT_EQ(report.failure_count(), 0u) << report.to_json();
}

}  // namespace
}  // namespace axmult::check
