// Structural/behavioral equivalence and area anchors.
//
// Every netlist generator must agree bit-for-bit with its behavioral
// model, and the LUT counts of the paper's own designs must match Table 4
// (Cc exactly; Ca within the route-through-LUT margin documented in
// EXPERIMENTS.md).
#include <gtest/gtest.h>

#include <memory>

#include "fabric/netlist.hpp"
#include "mult/elementary.hpp"
#include "mult/recursive.hpp"
#include "multgen/generators.hpp"

namespace axmult::multgen {
namespace {

using fabric::Evaluator;
using fabric::Netlist;

/// Exhaustively checks netlist == reference over w-bit operands.
void expect_equivalent(const Netlist& nl, unsigned w,
                       const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>& ref,
                       unsigned stride = 1) {
  Evaluator ev(nl);
  const std::uint64_t n = std::uint64_t{1} << w;
  for (std::uint64_t a = 0; a < n; a += stride) {
    for (std::uint64_t b = 0; b < n; b += stride) {
      ASSERT_EQ(ev.eval_word(a, w, b, w), ref(a, b)) << "a=" << a << " b=" << b;
    }
  }
}

TEST(Approx4x4Netlist, MatchesBehavioralModelExhaustively) {
  const auto nl = make_ca_netlist(4);
  expect_equivalent(nl, 4, mult::approx_4x4);
}

TEST(Approx4x4Netlist, UsesTwelveLutsAndOneCarryChain) {
  // Table 4: the proposed 4x4 multiplier occupies 12 LUTs.
  const auto area = make_ca_netlist(4).area();
  EXPECT_EQ(area.luts, 12u);
  EXPECT_EQ(area.carry4, 1u);
  EXPECT_EQ(area.slices, 3u);
}

TEST(Approx4x2Netlist, FourLutsAndMatchesModel) {
  Netlist nl;
  BitVec a;
  BitVec b;
  for (int i = 0; i < 4; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < 2; ++i) b.push_back(nl.add_input("b" + std::to_string(i)));
  const auto p = build_approx_4x2(nl, a, b, "u");
  for (std::size_t i = 0; i < p.size(); ++i) nl.add_output("p" + std::to_string(i), p[i]);
  EXPECT_EQ(nl.area().luts, 4u);

  Evaluator ev(nl);
  for (std::uint64_t av = 0; av < 16; ++av) {
    for (std::uint64_t bv = 0; bv < 4; ++bv) {
      EXPECT_EQ(ev.eval_word(av, 4, bv, 2), mult::approx_4x2(av, bv));
    }
  }
}

TEST(Accurate4x2Netlist, FiveLutsAndExact) {
  Netlist nl;
  BitVec a;
  BitVec b;
  for (int i = 0; i < 4; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < 2; ++i) b.push_back(nl.add_input("b" + std::to_string(i)));
  const auto p = build_accurate_4x2(nl, a, b, "u");
  for (std::size_t i = 0; i < p.size(); ++i) nl.add_output("p" + std::to_string(i), p[i]);
  EXPECT_EQ(nl.area().luts, 5u);

  Evaluator ev(nl);
  for (std::uint64_t av = 0; av < 16; ++av) {
    for (std::uint64_t bv = 0; bv < 4; ++bv) {
      EXPECT_EQ(ev.eval_word(av, 4, bv, 2), av * bv);
    }
  }
}

TEST(Accurate4x4Netlist, SixteenLutsAndExact) {
  // Section 3.2: approximate partial products with accurate two-chain
  // summation costs 16 LUTs; the fully accurate 4x4 has the same shape.
  const auto nl = make_vivado_speed_netlist(4);
  EXPECT_EQ(nl.area().luts, 16u);
  expect_equivalent(nl, 4, [](std::uint64_t a, std::uint64_t b) { return a * b; });
}

TEST(CaNetlist, Ca8MatchesBehavioralModelExhaustively) {
  const auto nl = make_ca_netlist(8);
  const auto model = mult::make_ca(8);
  expect_equivalent(nl, 8, [&](std::uint64_t a, std::uint64_t b) {
    return model->multiply(a, b);
  });
}

TEST(CcNetlist, Cc8MatchesBehavioralModelExhaustively) {
  const auto nl = make_cc_netlist(8);
  const auto model = mult::make_cc(8);
  expect_equivalent(nl, 8, [&](std::uint64_t a, std::uint64_t b) {
    return model->multiply(a, b);
  });
}

TEST(CcNetlist, AreaMatchesTable4Exactly) {
  // Table 4: Cc = 12 / 56 / 240 LUTs at 4 / 8 / 16 bits.
  EXPECT_EQ(make_cc_netlist(4).area().luts, 12u);
  EXPECT_EQ(make_cc_netlist(8).area().luts, 56u);
  EXPECT_EQ(make_cc_netlist(16).area().luts, 240u);
}

TEST(CaNetlist, AreaTracksTable4) {
  // Table 4 reports 12 / 57 / 245; our composition spends three extra
  // route-through LUTs per recursion level on the PP3-only columns
  // (documented divergence), so the anchors are 12 / 60 / 264.
  EXPECT_EQ(make_ca_netlist(4).area().luts, 12u);
  EXPECT_EQ(make_ca_netlist(8).area().luts, 60u);
  EXPECT_EQ(make_ca_netlist(16).area().luts, 264u);
}

TEST(KulkarniNetlist, MatchesBehavioralModelExhaustively) {
  const auto nl = make_kulkarni_netlist(8);
  const auto model = mult::make_kulkarni(8);
  expect_equivalent(nl, 8, [&](std::uint64_t a, std::uint64_t b) {
    return model->multiply(a, b);
  });
}

TEST(RehmanNetlist, MatchesBehavioralModelExhaustively) {
  const auto nl = make_rehman_netlist(8);
  const auto model = mult::make_rehman_w(8);
  expect_equivalent(nl, 8, [&](std::uint64_t a, std::uint64_t b) {
    return model->multiply(a, b);
  });
}

TEST(VivadoModels, SpeedAndAreaNetlistsAreExact) {
  expect_equivalent(make_vivado_speed_netlist(8), 8,
                    [](std::uint64_t a, std::uint64_t b) { return a * b; });
  expect_equivalent(make_vivado_area_netlist(8), 8,
                    [](std::uint64_t a, std::uint64_t b) { return a * b; });
}

TEST(VivadoModels, AreaOptimizedUsesFewerLutsThanSpeed) {
  for (unsigned w : {8u, 16u}) {
    EXPECT_LT(make_vivado_area_netlist(w).area().luts,
              make_vivado_speed_netlist(w).area().luts)
        << w;
  }
}

TEST(VivadoModels, ProposedDesignsSaveArea) {
  // Fig. 7: 25%-31.5% area reduction vs the accurate Vivado IP.
  for (unsigned w : {8u, 16u}) {
    const double ip = static_cast<double>(make_vivado_speed_netlist(w).area().luts);
    const double ca = static_cast<double>(make_ca_netlist(w).area().luts);
    const double cc = static_cast<double>(make_cc_netlist(w).area().luts);
    EXPECT_GT((ip - ca) / ip, 0.15) << w;
    EXPECT_GT((ip - cc) / ip, 0.25) << w;
  }
}

TEST(TruncatedNetlists, ResultTruncationZeroesLowBits) {
  const auto nl = make_result_truncated_netlist(8, 4);
  expect_equivalent(nl, 8, [](std::uint64_t a, std::uint64_t b) { return (a * b) & ~0xFull; },
                    /*stride=*/3);
  // The paper's observation: truncating output bits saves almost nothing.
  EXPECT_GE(nl.area().luts, make_vivado_speed_netlist(8).area().luts - 4);
}

TEST(TruncatedNetlists, OperandTruncationMatchesModel) {
  const auto nl = make_operand_truncated_netlist(8, 2);
  expect_equivalent(nl, 8, [](std::uint64_t a, std::uint64_t b) {
    return (a & ~0x3ull) * (b & ~0x3ull);
  }, /*stride=*/3);
}

TEST(Radix4Netlist, IsExactExhaustively) {
  const auto nl = make_radix4_netlist(8);
  expect_equivalent(nl, 8, [](std::uint64_t a, std::uint64_t b) { return a * b; });
}

TEST(Radix4Netlist, AreaBetweenHandVariants) {
  // Third IP-style architecture: row count halves but rows widen.
  const auto r4 = make_radix4_netlist(8).area().luts;
  EXPECT_GT(r4, 50u);
  EXPECT_LT(r4, 100u);
  EXPECT_THROW((void)make_radix4_netlist(7), std::invalid_argument);
}

TEST(Recursive16, SampledEquivalenceWithBehavioralModel) {
  const auto nl = make_ca_netlist(16);
  const auto model = mult::make_ca(16);
  Evaluator ev(nl);
  std::uint64_t a = 0x9E37;
  std::uint64_t b = 0x79B9;
  for (int i = 0; i < 4000; ++i) {
    a = (a * 6364136223846793005ULL + 1442695040888963407ULL);
    b = (b * 2862933555777941757ULL + 3037000493ULL);
    const std::uint64_t av = a >> 48;
    const std::uint64_t bv = b >> 48;
    ASSERT_EQ(ev.eval_word(av, 16, bv, 16), model->multiply(av, bv));
  }
}

}  // namespace
}  // namespace axmult::multgen
