// Unit tests for the runtime-adaptive precision subsystem (src/adapt):
// hysteresis policy, drift monitor, reconfiguration cost, ladder
// construction (incl. the front-file error paths), per-tile GEMM, and the
// controller end to end.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "adapt/controller.hpp"
#include "adapt/ladder.hpp"
#include "adapt/monitor.hpp"
#include "adapt/reconfig.hpp"
#include "common/rng.hpp"
#include "nn/gemm.hpp"
#include "nn/mac.hpp"

using namespace axmult;
using adapt::HysteresisPolicy;

namespace {

adapt::PolicyConfig policy_config(double slo = 0.05, bool start_cheap = true,
                                  unsigned hold = 4) {
  adapt::PolicyConfig cfg;
  cfg.slo = slo;
  cfg.start_cheap = start_cheap;
  cfg.hold_windows = hold;
  return cfg;
}

std::vector<std::uint8_t> random_operands(std::size_t count, unsigned lo, unsigned hi,
                                          std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> v(count);
  for (auto& x : v) x = static_cast<std::uint8_t>(lo + rng.below(hi - lo + 1u));
  return v;
}

}  // namespace

// ---------------------------------------------------------------- policy

TEST(HysteresisPolicyTest, ValidatesConfig) {
  EXPECT_THROW(HysteresisPolicy(policy_config(), 0), std::invalid_argument);
  adapt::PolicyConfig bad = policy_config();
  bad.down_margin = bad.up_margin;  // no hysteresis band -> oscillation
  EXPECT_THROW(HysteresisPolicy(bad, 3), std::invalid_argument);
}

TEST(HysteresisPolicyTest, ColdStartsAtExactTopByDefault) {
  adapt::PolicyConfig cfg;  // start_cheap defaults to false
  EXPECT_EQ(HysteresisPolicy(cfg, 4).rung(), 3u);
  EXPECT_EQ(HysteresisPolicy(policy_config(), 4).rung(), 0u);
}

TEST(HysteresisPolicyTest, SloViolationEscalatesWithinOneWindow) {
  HysteresisPolicy p(policy_config(0.05, /*start_cheap=*/true), 3);
  EXPECT_EQ(p.update(0.05), HysteresisPolicy::Action::kUp);
  EXPECT_EQ(p.rung(), 1u);
  // Still violating: next window climbs again — never slower than one
  // window per rung.
  EXPECT_EQ(p.update(0.05), HysteresisPolicy::Action::kUp);
  EXPECT_EQ(p.rung(), 2u);
  // At the top there is nowhere to go.
  EXPECT_EQ(p.update(0.05), HysteresisPolicy::Action::kHold);
  EXPECT_EQ(p.rung(), 2u);
}

TEST(HysteresisPolicyTest, NeverOscillatesOnConstantErrorStream) {
  const double slo = 0.05;
  // Calm (below down margin), in-band (inside the hysteresis band), and
  // high (above up margin) constant streams, from both start rungs.
  for (const double est : {0.0, 0.4 * slo, 0.9 * slo, 2.0 * slo}) {
    for (const bool cheap : {true, false}) {
      HysteresisPolicy p(policy_config(slo, cheap), 4);
      std::vector<std::size_t> trace{p.rung()};
      for (int i = 0; i < 300; ++i) {
        (void)p.update(est);
        trace.push_back(p.rung());
      }
      // The rung sequence must be monotone: any change of direction would
      // be an oscillation the hysteresis band is there to forbid.
      bool up = false, down = false;
      for (std::size_t i = 1; i < trace.size(); ++i) {
        if (trace[i] > trace[i - 1]) up = true;
        if (trace[i] < trace[i - 1]) down = true;
      }
      EXPECT_FALSE(up && down) << "oscillated on constant estimate " << est
                               << " (start_cheap=" << cheap << ")";
    }
  }
}

TEST(HysteresisPolicyTest, DeescalationNeedsConsecutiveCalmWindows) {
  HysteresisPolicy p(policy_config(0.05, /*start_cheap=*/false, /*hold=*/3), 2);
  EXPECT_EQ(p.rung(), 1u);
  (void)p.update(0.001);
  (void)p.update(0.001);
  // An in-band window resets the calm streak.
  (void)p.update(0.03);
  (void)p.update(0.001);
  (void)p.update(0.001);
  EXPECT_EQ(p.rung(), 1u);  // still only 2 consecutive calm windows
  (void)p.update(0.001);
  EXPECT_EQ(p.rung(), 0u);  // third consecutive calm window de-escalates
}

TEST(HysteresisPolicyTest, PrematureDowngradeDoublesHoldWithBackoffCap) {
  adapt::PolicyConfig cfg = policy_config(0.05, /*start_cheap=*/false, /*hold=*/2);
  cfg.max_hold = 8;
  HysteresisPolicy p(cfg, 2);
  unsigned expected_hold = 2;
  for (int round = 0; round < 4; ++round) {
    for (unsigned i = 0; i < p.required_hold(); ++i) (void)p.update(0.001);
    ASSERT_EQ(p.rung(), 0u) << "round " << round;
    // Immediately high again: the downgrade was premature.
    (void)p.update(0.2);
    ASSERT_EQ(p.rung(), 1u);
    expected_hold = std::min(expected_hold * 2, cfg.max_hold);
    EXPECT_EQ(p.required_hold(), expected_hold) << "round " << round;
  }
  EXPECT_EQ(p.required_hold(), 8u);  // capped
}

// --------------------------------------------------------------- monitor

TEST(DriftMonitorTest, ExactAccumulatorsScoreZero) {
  const std::size_t m = 48, k = 20, n = 6;
  const auto a = random_operands(m * k, 1, 255, 3);
  const auto b = random_operands(k * n, 1, 255, 4);
  std::vector<std::int64_t> acc(m * n, 0);
  nn::gemm_reference(a.data(), b.data(), acc.data(), m, k, n);
  adapt::DriftMonitor monitor(adapt::MonitorConfig{});
  EXPECT_EQ(monitor.measure(1, 0, a.data(), b.data(), acc.data(), 0, m, k, n, nullptr), 0.0);
}

TEST(DriftMonitorTest, DeterministicForFixedStreamIdentity) {
  const std::size_t m = 64, k = 32, n = 8;
  const auto a = random_operands(m * k, 16, 63, 5);
  const auto b = random_operands(k * n, 16, 63, 6);
  const auto cc8 = nn::make_mac_backend("cc8");
  std::vector<std::int64_t> acc(m * n, 0);
  nn::gemm_accumulate(*cc8, false, a.data(), b.data(), acc.data(), m, k, n);
  adapt::DriftMonitor monitor(adapt::MonitorConfig{});
  const double first = monitor.measure(7, 3, a.data(), b.data(), acc.data(), 0, m, k, n, nullptr);
  EXPECT_GT(first, 0.0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(monitor.measure(7, 3, a.data(), b.data(), acc.data(), 0, m, k, n, nullptr), first);
  }
}

// -------------------------------------------------------------- reconfig

TEST(ReconfigTest, IdenticalNetlistsSwapForFree) {
  const fabric::Netlist nl = nn::mac_backend_netlist("cc8");
  const adapt::SwapCost cost = adapt::swap_cost(nl, nl);
  EXPECT_EQ(cost.changed_luts, 0u);
  EXPECT_EQ(cost.delta_bits, 0u);
  EXPECT_EQ(cost.cycles, 0u);
  EXPECT_EQ(cost.time_ns, 0.0);
  EXPECT_EQ(cost.energy_au, 0.0);
}

TEST(ReconfigTest, ParallelChainsShiftInInitBitsCycles) {
  const fabric::Netlist from = nn::mac_backend_netlist("cc8");
  const fabric::Netlist to = nn::mac_backend_netlist("exact");
  const adapt::ReconfigModel model;
  const adapt::SwapCost cost = adapt::swap_cost(from, to, model);
  EXPECT_GT(cost.changed_luts, 0u);
  EXPECT_GT(cost.delta_bits, 0u);
  // Every changed LUT reloads concurrently on its own CDI chain: one
  // init_bits-deep shift regardless of how many LUTs changed.
  EXPECT_EQ(cost.cycles, model.init_bits);
  EXPECT_EQ(cost.time_ns, model.init_bits * model.shift_clock_ns);
  EXPECT_GT(cost.energy_au, 0.0);
  // The INIT delta is a XOR popcount — direction cannot matter.
  EXPECT_EQ(adapt::swap_cost(to, from, model).delta_bits, cost.delta_bits);
}

// ---------------------------------------------------------------- ladder

TEST(LadderTest, OrderedPrunedAndExactTopped) {
  const adapt::Ladder ladder =
      adapt::make_ladder({"exact", "cc8", "cas8", "cb8", "trunc8_4", "ca8"});
  ASSERT_GE(ladder.size(), 2u);
  EXPECT_TRUE(ladder.rungs.back().backend->exact());
  for (std::size_t r = 1; r < ladder.size(); ++r) {
    const auto& prev = ladder.rungs[r - 1];
    const auto& cur = ladder.rungs[r];
    EXPECT_LT(prev.dynamic_cost.edp_per_mac_au, cur.dynamic_cost.edp_per_mac_au)
        << prev.name << " -> " << cur.name;
    EXPECT_GT(prev.table_mre, cur.table_mre) << prev.name << " -> " << cur.name;
  }
  // Six candidates cannot all be mutually non-dominated in (EDP, error):
  // pruning must have dropped at least one.
  EXPECT_LT(ladder.size(), 6u);
  // The swap matrix is square, zero on the diagonal.
  ASSERT_EQ(ladder.swap.size(), ladder.size());
  for (std::size_t r = 0; r < ladder.size(); ++r) {
    ASSERT_EQ(ladder.swap[r].size(), ladder.size());
    EXPECT_EQ(ladder.swap[r][r].delta_bits, 0u);
    EXPECT_EQ(ladder.swap[r][r].energy_au, 0.0);
  }
}

TEST(LadderTest, AppendsExactWhenMissingAndDynamicCostTaxesStatic) {
  const adapt::Ladder ladder = adapt::make_ladder({"cc8"});
  ASSERT_EQ(ladder.size(), 2u);
  EXPECT_EQ(ladder.rungs[0].name, "cc8");
  EXPECT_TRUE(ladder.rungs.back().backend->exact());
  for (const adapt::Rung& rung : ladder.rungs) {
    // Reconfigurability is a standing tax: the CFGLUT-marked roll-up is
    // strictly worse than the plain one on both axes.
    EXPECT_GT(rung.dynamic_cost.energy_per_mac_au, rung.static_cost.energy_per_mac_au)
        << rung.name;
    EXPECT_GT(rung.dynamic_cost.critical_path_ns, rung.static_cost.critical_path_ns)
        << rung.name;
  }
}

TEST(LadderTest, UnknownBackendNameThrows) {
  EXPECT_THROW(adapt::make_ladder({"cc8", "nope99"}), std::out_of_range);
}

// ------------------------------------------------------ front error paths

namespace {

class TempFront {
 public:
  explicit TempFront(const std::string& tag, const std::string& content)
      : path_("adapt_test_front_" + tag + ".json") {
    std::ofstream out(path_);
    out << content;
  }
  ~TempFront() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

const char* kHeader =
    "{\"front_meta\": 1, \"objectives\": [\"luts\", \"delay\", \"mre\"]}\n";
const char* kUnsignedPoint =
    "{\"key\": \"w8;l=k2x2;s=CC;o=0;t=2;x=0;g=0\", \"cost\": [50, 5.302, 0.2469], "
    "\"mre\": 0.2469, \"luts\": 50, \"delay_ns\": 5.302, \"energy_au\": 76.8, "
    "\"edp_au\": 407.2}\n";
const char* kSignedPoint =
    "{\"key\": \"w8;l=k2x2;s=CC;o=0;t=2;x=0;g=1\", \"cost\": [60, 6.0, 0.2469], "
    "\"mre\": 0.2469, \"luts\": 60, \"delay_ns\": 6.0, \"energy_au\": 80.0, "
    "\"edp_au\": 480.0}\n";

}  // namespace

TEST(FrontBackendsTest, MissingFileIsOneLineError) {
  EXPECT_THROW(
      {
        try {
          (void)adapt::backends_from_front("adapt_test_front_does_not_exist.json");
        } catch (const std::runtime_error& e) {
          EXPECT_EQ(std::string(e.what()).find('\n'), std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST(FrontBackendsTest, MalformedJsonLineIsOneLineError) {
  const TempFront f("malformed", std::string(kHeader) + "{\"not_a_point\": true}\n");
  EXPECT_THROW(
      {
        try {
          (void)adapt::backends_from_front(f.path());
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
          EXPECT_EQ(std::string(e.what()).find('\n'), std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST(FrontBackendsTest, UnparseableKeyIsOneLineError) {
  const TempFront f("badkey", std::string(kHeader) + "{\"key\": \"w8;l=zzz\", \"mre\": 1}\n");
  EXPECT_THROW((void)adapt::backends_from_front(f.path()), std::runtime_error);
}

TEST(FrontBackendsTest, AllSignedFrontIsOneLineError) {
  const TempFront f("signed", std::string(kHeader) + kSignedPoint);
  EXPECT_THROW(
      {
        try {
          (void)adapt::backends_from_front(f.path());
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("no usable unsigned"), std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST(FrontBackendsTest, SignedPointsAreSkippedNotFatal) {
  const TempFront f("mixed", std::string(kHeader) + kSignedPoint + kUnsignedPoint);
  const std::vector<adapt::FrontBackend> points = adapt::backends_from_front(f.path());
  ASSERT_EQ(points.size(), 1u);
  EXPECT_FALSE(points[0].config.signed_wrapper);
  ASSERT_NE(points[0].backend, nullptr);
  EXPECT_EQ(points[0].backend->data_bits(), 8u);
}

// ----------------------------------------------------------- tiled gemm

TEST(GemmTiledTest, SingleTileMatchesPlainGemm) {
  const std::size_t m = 100, k = 33, n = 17;
  const auto a = random_operands(m * k, 0, 255, 11);
  const auto b = random_operands(k * n, 0, 255, 12);
  const auto cc8 = nn::make_mac_backend("cc8");
  for (const unsigned threads : {1u, 3u}) {
    std::vector<std::int64_t> plain(m * n, 0), tiled(m * n, 0);
    nn::gemm_accumulate(*cc8, false, a.data(), b.data(), plain.data(), m, k, n, threads);
    const nn::TilePlan plan{{0, m, cc8.get(), false}};
    nn::gemm_accumulate_tiled(plan, a.data(), b.data(), tiled.data(), m, k, n, threads);
    EXPECT_EQ(plain, tiled) << "threads=" << threads;
  }
}

TEST(GemmTiledTest, MixedTilesMatchPerRowComposition) {
  const std::size_t m = 100, k = 24, n = 9;
  const auto a = random_operands(m * k, 0, 255, 13);
  const auto b = random_operands(k * n, 0, 255, 14);
  const auto cc8 = nn::make_mac_backend("cc8");
  const auto cas8 = nn::make_mac_backend("cas8");
  const auto exact = nn::make_mac_backend("exact");
  const nn::TilePlan plan{
      {0, 40, cc8.get(), false}, {40, 64, exact.get(), false}, {64, 100, cas8.get(), true}};
  std::vector<std::int64_t> tiled(m * n, 0), manual(m * n, 0);
  nn::gemm_accumulate_tiled(plan, a.data(), b.data(), tiled.data(), m, k, n, 2);
  for (const nn::Tile& t : plan) {
    nn::gemm_accumulate(*t.backend, t.swap, a.data() + t.row_begin * k, b.data(),
                        manual.data() + t.row_begin * n, t.row_end - t.row_begin, k, n);
  }
  EXPECT_EQ(tiled, manual);
}

TEST(GemmTiledTest, RejectsOverlappingOrOutOfRangeTiles) {
  const std::size_t m = 32, k = 4, n = 4;
  const auto a = random_operands(m * k, 0, 255, 15);
  const auto b = random_operands(k * n, 0, 255, 16);
  const auto exact = nn::make_mac_backend("exact");
  std::vector<std::int64_t> acc(m * n, 0);
  const nn::TilePlan overlapping{{0, 20, exact.get(), false}, {16, 32, exact.get(), false}};
  EXPECT_THROW(
      nn::gemm_accumulate_tiled(overlapping, a.data(), b.data(), acc.data(), m, k, n),
      std::invalid_argument);
  const nn::TilePlan outside{{16, 40, exact.get(), false}};
  EXPECT_THROW(nn::gemm_accumulate_tiled(outside, a.data(), b.data(), acc.data(), m, k, n),
               std::invalid_argument);
}

namespace {

/// Scripted scheduler: rejects the first observation of panel 0 (forcing a
/// recompute at the escalated backend), accepts everything else.
class RejectOnceScheduler final : public nn::TileScheduler {
 public:
  RejectOnceScheduler(const nn::MacBackend* cheap, const nn::MacBackend* exact)
      : cheap_(cheap), exact_(exact) {}

  [[nodiscard]] std::size_t panel_rows() const override { return 32; }
  void begin_gemm(const std::string&, std::size_t, std::size_t, std::size_t,
                  const nn::RequantState*) override {}
  [[nodiscard]] nn::TileDecision decide(std::size_t panel, std::size_t, std::size_t) override {
    ++decides;
    return {panel == 0 && rejected_ ? exact_ : cheap_, false};
  }
  [[nodiscard]] bool observe(std::size_t panel, const std::uint8_t*, const std::uint8_t*,
                             const std::int64_t*, std::size_t, std::size_t, std::size_t,
                             std::size_t) override {
    if (panel == 0 && !rejected_) {
      rejected_ = true;
      return false;
    }
    return true;
  }
  [[nodiscard]] const nn::MacBackend& top_backend() const override { return *exact_; }

  int decides = 0;

 private:
  const nn::MacBackend* cheap_;
  const nn::MacBackend* exact_;
  bool rejected_ = false;
};

}  // namespace

TEST(GemmScheduledTest, RejectedPanelIsRecomputedAtEscalatedBackend) {
  const std::size_t m = 80, k = 16, n = 5;  // panels: [0,32) [32,64) [64,80)
  const auto a = random_operands(m * k, 16, 63, 17);
  const auto b = random_operands(k * n, 16, 63, 18);
  const auto cc8 = nn::make_mac_backend("cc8");
  const auto exact = nn::make_mac_backend("exact");
  RejectOnceScheduler sched(cc8.get(), exact.get());
  std::vector<std::int64_t> acc(m * n, 0);
  nn::gemm_accumulate_scheduled(sched, a.data(), b.data(), acc.data(), m, k, n);
  EXPECT_EQ(sched.decides, 4);  // 3 panels + 1 re-decide after the rejection
  // Panel 0 must hold the *exact* products (the cc8 attempt was discarded),
  // the rest the cc8 ones.
  std::vector<std::int64_t> expect(m * n, 0);
  nn::gemm_accumulate(*exact, false, a.data(), b.data(), expect.data(), 32, k, n);
  nn::gemm_accumulate(*cc8, false, a.data() + 32 * k, b.data(), expect.data() + 32 * n,
                      m - 32, k, n);
  EXPECT_EQ(acc, expect);
}

// ------------------------------------------------------------ controller

namespace {

adapt::ControllerConfig small_controller_config(double slo, bool start_cheap) {
  adapt::ControllerConfig cfg;
  cfg.panel_rows = 32;
  cfg.monitor.seed = 21;
  cfg.monitor.probes_per_panel = 8;
  cfg.policy.slo = slo;
  cfg.policy.start_cheap = start_cheap;
  return cfg;
}

}  // namespace

TEST(ControllerTest, ValidatesLadder) {
  EXPECT_THROW(adapt::Controller(adapt::Ladder{}, adapt::ControllerConfig{}),
               std::invalid_argument);
  adapt::Ladder no_exact_top = adapt::make_ladder({"cc8"});
  no_exact_top.rungs.pop_back();  // leaves cc8 on top
  EXPECT_THROW(adapt::Controller(std::move(no_exact_top), adapt::ControllerConfig{}),
               std::invalid_argument);
}

TEST(ControllerTest, HardViolationRecomputesWithinOneWindowAndLandsExact) {
  // cc8 on mid-range operands violates a 0.02 SLO on the very first
  // window; with a two-rung ladder the recompute must produce exact
  // accumulators.
  const std::size_t m = 64, k = 48, n = 8;
  const auto a = random_operands(m * k, 16, 63, 22);
  const auto b = random_operands(k * n, 16, 63, 23);
  adapt::Controller controller(adapt::make_ladder({"cc8"}),
                               small_controller_config(0.02, /*start_cheap=*/true));
  std::vector<std::int64_t> acc(m * n, 0);
  controller.begin_gemm("layer", m, k, n, nullptr);
  nn::gemm_accumulate_scheduled(controller, a.data(), b.data(), acc.data(), m, k, n);
  std::vector<std::int64_t> exact(m * n, 0);
  nn::gemm_reference(a.data(), b.data(), exact.data(), m, k, n);
  EXPECT_EQ(acc, exact);
  const adapt::Report report = controller.report(1);
  ASSERT_EQ(report.layers.size(), 1u);
  EXPECT_GE(report.layers[0].recomputes, 1u);
  // The first cc8 attempt stays on the bill: both rungs carry MACs.
  EXPECT_GT(report.layers[0].macs_by_rung[0], 0u);
  EXPECT_GT(report.layers[0].macs_by_rung[1], 0u);
  EXPECT_GE(report.swaps.size(), 1u);
}

TEST(ControllerTest, ColdStartFirstDecisionIsExact) {
  const std::size_t m = 32, k = 16, n = 4;
  const auto a = random_operands(m * k, 1, 255, 24);
  const auto b = random_operands(k * n, 1, 255, 25);
  adapt::Controller controller(adapt::make_ladder({"cc8"}),
                               small_controller_config(0.05, /*start_cheap=*/false));
  std::vector<std::int64_t> acc(m * n, 0);
  controller.begin_gemm("layer", m, k, n, nullptr);
  nn::gemm_accumulate_scheduled(controller, a.data(), b.data(), acc.data(), m, k, n);
  const adapt::Report report = controller.report(1);
  ASSERT_EQ(report.layers.size(), 1u);
  EXPECT_EQ(report.layers[0].macs_by_rung[0], 0u);  // never touched cc8
  EXPECT_EQ(report.layers[0].macs_by_rung[1], m * k * n);
  EXPECT_EQ(report.layers[0].recomputes, 0u);
}

TEST(ControllerTest, PerLayerPoliciesShareTheFabric) {
  // Layer "hot" violates and escalates; layer "cold" stays benign. The
  // cold layer must keep its cheap rung (independent policies) while every
  // physical reconfiguration between the two is billed as a swap.
  const std::size_t m = 32, k = 48, n = 8;
  const auto hot_a = random_operands(m * k, 16, 63, 26);
  const auto hot_b = random_operands(k * n, 16, 63, 27);
  const auto cold_a = random_operands(m * k, 1, 12, 28);
  const auto cold_b = random_operands(k * n, 1, 12, 29);
  adapt::Controller controller(adapt::make_ladder({"cc8"}),
                               small_controller_config(0.02, /*start_cheap=*/true));
  for (int round = 0; round < 4; ++round) {
    std::vector<std::int64_t> acc(m * n, 0);
    controller.begin_gemm("hot", m, k, n, nullptr);
    nn::gemm_accumulate_scheduled(controller, hot_a.data(), hot_b.data(), acc.data(), m, k, n);
    std::fill(acc.begin(), acc.end(), 0);
    controller.begin_gemm("cold", m, k, n, nullptr);
    nn::gemm_accumulate_scheduled(controller, cold_a.data(), cold_b.data(), acc.data(), m, k,
                                  n);
    EXPECT_EQ(controller.current_rung(), 0u) << "round " << round;
  }
  const adapt::Report report = controller.report(4);
  ASSERT_EQ(report.layers.size(), 2u);
  const adapt::LayerAdaptStats& hot = report.layers[0];
  const adapt::LayerAdaptStats& cold = report.layers[1];
  // The hot layer escalated (exact-rung MACs, at least one rejected
  // panel); the cold layer never left the cheap rung — hot escalating
  // must not pin it.
  EXPECT_GT(hot.macs_by_rung[1], 0u);
  EXPECT_GE(hot.recomputes, 1u);
  EXPECT_EQ(cold.macs_by_rung[1], 0u);
  EXPECT_EQ(cold.recomputes, 0u);
  EXPECT_GE(report.swaps.size(), 2u);  // the fabric bounced between rungs
}

TEST(ControllerTest, MonitorMacsAreChargedPerWindow) {
  const std::size_t m = 96, k = 40, n = 8;  // 3 panels
  const auto a = random_operands(m * k, 1, 12, 30);
  const auto b = random_operands(k * n, 1, 12, 31);
  adapt::ControllerConfig cfg = small_controller_config(0.05, /*start_cheap=*/true);
  cfg.monitor.probes_per_panel = 5;
  adapt::Controller controller(adapt::make_ladder({"cc8"}), cfg);
  std::vector<std::int64_t> acc(m * n, 0);
  controller.begin_gemm("layer", m, k, n, nullptr);
  nn::gemm_accumulate_scheduled(controller, a.data(), b.data(), acc.data(), m, k, n);
  const adapt::Report report = controller.report(1);
  ASSERT_EQ(report.layers.size(), 1u);
  EXPECT_EQ(report.layers[0].windows, 3u);
  EXPECT_EQ(report.layers[0].monitor_macs, 3u * 5u * k);
  EXPECT_EQ(report.monitor_macs, 3u * 5u * k);
  // Monitoring is charged into the EDP roll-up: the same ledger without
  // monitor MACs must be strictly cheaper.
  adapt::Report stripped = report;
  for (adapt::LayerAdaptStats& ls : stripped.layers) ls.monitor_macs = 0;
  stripped.finalize(1);
  EXPECT_LT(stripped.compute_edp_au, report.compute_edp_au);
}

TEST(ControllerTest, AdaptiveRunsAreBitIdenticalAtAnyThreadCount) {
  const std::size_t m = 160, k = 64, n = 16;
  adapt::ControllerConfig cfg = small_controller_config(0.05, /*start_cheap=*/true);
  std::vector<std::vector<std::int64_t>> accs;
  std::vector<std::string> reports;
  for (const unsigned threads : {1u, 2u, 5u}) {
    adapt::Controller controller(adapt::make_ladder({"cc8", "cas8"}), cfg);
    std::vector<std::int64_t> acc(m * n, 0);
    Xoshiro256 rng(33);
    for (int call = 0; call < 6; ++call) {
      // Alternate benign / adversarial phases so rungs actually move.
      const unsigned lo = (call % 2 == 0) ? 1 : 16;
      const unsigned hi = (call % 2 == 0) ? 12 : 63;
      std::vector<std::uint8_t> a(m * k), b(k * n);
      for (auto& v : a) v = static_cast<std::uint8_t>(lo + rng.below(hi - lo + 1u));
      for (auto& v : b) v = static_cast<std::uint8_t>(lo + rng.below(hi - lo + 1u));
      std::fill(acc.begin(), acc.end(), 0);
      controller.begin_gemm("stream", m, k, n, nullptr);
      nn::gemm_accumulate_scheduled(controller, a.data(), b.data(), acc.data(), m, k, n,
                                    threads);
    }
    accs.push_back(acc);
    reports.push_back(controller.report(6).to_json());
  }
  EXPECT_EQ(accs[0], accs[1]);
  EXPECT_EQ(accs[0], accs[2]);
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(reports[0], reports[2]);
}
