// fabric::optimize() correctness: the optimized netlist must be a drop-in
// functional replacement for the original. Every catalog multiplier is
// checked exhaustively over the 8-bit operand space (sampled at 16 bits),
// sequential netlists cycle-accurately, and a synthetic netlist pins down
// the individual transforms (constant folding, CSE, dead-cone removal).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/catalog.hpp"
#include "common/bits.hpp"
#include "common/rng.hpp"
#include "fabric/bitparallel.hpp"
#include "fabric/netlist.hpp"
#include "fabric/optimize.hpp"
#include "mult/recursive.hpp"
#include "multgen/generators.hpp"

namespace axmult::fabric {
namespace {

void expect_stats_sane(const OptimizeStats& s) {
  EXPECT_LE(s.cells_after, s.cells_before);
  EXPECT_LE(s.luts_after, s.luts_before);
  EXPECT_EQ(s.cells_before - s.cells_after, s.cells_removed());
}

/// Replays the exhaustive operand space through the scalar Evaluator on the
/// original netlist and the packed evaluator on the *optimized* netlist
/// (optimization off — it already ran) and asserts identical products.
void expect_optimized_equivalent(const Netlist& nl, unsigned width) {
  const OptimizeResult opt = optimize(nl);
  expect_stats_sane(opt.stats);
  Evaluator scalar(nl);
  BitParallelEvaluator packed(opt.netlist, {.optimize = false});
  const std::uint64_t total = std::uint64_t{1} << (2 * width);
  std::uint64_t av[64];
  std::uint64_t bv[64];
  std::uint64_t pv[64];
  for (std::uint64_t base = 0; base < total; base += 64) {
    const std::size_t lanes = static_cast<std::size_t>(std::min<std::uint64_t>(64, total - base));
    for (std::size_t l = 0; l < lanes; ++l) {
      av[l] = (base + l) & low_mask(width);
      bv[l] = (base + l) >> width;
    }
    packed.eval_mul_batch(av, bv, pv, lanes, width, width);
    for (std::size_t l = 0; l < lanes; ++l) {
      ASSERT_EQ(pv[l], scalar.eval_word(av[l], width, bv[l], width))
          << "a=" << av[l] << " b=" << bv[l];
    }
  }
}

TEST(Optimize, EveryCatalogDesignExhaustive8Bit) {
  for (const auto& d : analysis::paper_designs(8)) {
    if (!d.has_netlist()) continue;
    SCOPED_TRACE(d.name);
    expect_optimized_equivalent(d.netlist(), 8);
  }
}

TEST(Optimize, EvoFamilyExhaustive8Bit) {
  for (const auto& d : analysis::evo_family_8x8()) {
    if (!d.has_netlist()) continue;
    SCOPED_TRACE(d.name);
    expect_optimized_equivalent(d.netlist(), 8);
  }
}

TEST(Optimize, PaperDesignsExhaustive4Bit) {
  for (const auto& d : analysis::paper_designs(4)) {
    if (!d.has_netlist()) continue;
    SCOPED_TRACE(d.name);
    expect_optimized_equivalent(d.netlist(), 4);
  }
}

TEST(Optimize, CatalogDesignsSampled16Bit) {
  Xoshiro256 rng(0xA1B2C3D4);
  for (const auto& d : analysis::paper_designs(16)) {
    if (!d.has_netlist()) continue;
    SCOPED_TRACE(d.name);
    const Netlist nl = d.netlist();
    const OptimizeResult opt = optimize(nl);
    expect_stats_sane(opt.stats);
    Evaluator scalar(nl);
    Evaluator optimized(opt.netlist);
    for (int i = 0; i < 2048; ++i) {
      const std::uint64_t a = rng() & 0xFFFF;
      const std::uint64_t b = rng() & 0xFFFF;
      ASSERT_EQ(optimized.eval_word(a, 16, b, 16), scalar.eval_word(a, 16, b, 16))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(Optimize, SequentialPipelineMatchesCycleAccurately) {
  const Netlist nl = multgen::make_pipelined_netlist(8, mult::Summation::kAccurate);
  const OptimizeResult opt = optimize(nl);
  expect_stats_sane(opt.stats);
  SeqEvaluator scalar(nl);
  SeqEvaluator optimized(opt.netlist);
  for (unsigned t = 0; t < multgen::pipeline_latency(8) + 8; ++t) {
    const std::uint64_t a = (t * 37 + 11) & 0xFF;
    const std::uint64_t b = (t * 101 + 3) & 0xFF;
    ASSERT_EQ(optimized.step_word(a, 8, b, 8), scalar.step_word(a, 8, b, 8)) << "cycle " << t;
  }
}

TEST(Optimize, RegisteredFeedbackMatchesCycleAccurately) {
  const Netlist nl = multgen::make_mac_netlist(8, mult::Summation::kAccurate, 24);
  const OptimizeResult opt = optimize(nl);
  SeqEvaluator scalar(nl);
  SeqEvaluator optimized(opt.netlist);
  for (unsigned t = 0; t < 12; ++t) {
    const std::uint64_t a = (t * 53 + 7) & 0xFF;
    const std::uint64_t b = (t * 29 + 17) & 0xFF;
    ASSERT_EQ(optimized.step_word(a, 8, b, 8), scalar.step_word(a, 8, b, 8)) << "cycle " << t;
  }
}

TEST(Optimize, FoldsAliasesMergesAndRemovesDeadCells) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  // Two identical AND cells -> CSE keeps one.
  const auto and1 = nl.add_lut6("and1", 0x8888888888888888ull, {a, b, kNetGnd, kNetGnd, kNetGnd, kNetGnd});
  const auto and2 = nl.add_lut6("and2", 0x8888888888888888ull, {a, b, kNetGnd, kNetGnd, kNetGnd, kNetGnd});
  // XOR against GND is a buffer of `a` -> folded to an alias.
  const auto buf = nl.add_lut6("buf", 0x6666666666666666ull, {a, kNetGnd, kNetGnd, kNetGnd, kNetGnd, kNetGnd});
  // AND against GND is constant 0 -> folded to GND.
  const auto zero = nl.add_lut6("zero", 0x8888888888888888ull, {a, kNetGnd, kNetGnd, kNetGnd, kNetGnd, kNetGnd});
  // Never reaches an output -> dead.
  (void)nl.add_lut6("dead", 0x6666666666666666ull, {a, b, kNetGnd, kNetGnd, kNetGnd, kNetGnd});
  nl.add_output("p0", and1.o6);
  nl.add_output("p1", and2.o6);
  nl.add_output("p2", buf.o6);
  nl.add_output("p3", zero.o6);

  const OptimizeResult opt = optimize(nl);
  expect_stats_sane(opt.stats);
  EXPECT_GE(opt.stats.cse_merged, 1u);
  EXPECT_GE(opt.stats.folded_cells, 2u);  // buf + zero
  EXPECT_GE(opt.stats.dead_removed, 1u);
  EXPECT_EQ(opt.stats.cells_after, 1u);  // only one AND survives

  Evaluator scalar(nl);
  Evaluator optimized(opt.netlist);
  for (std::uint8_t va = 0; va < 2; ++va) {
    for (std::uint8_t vb = 0; vb < 2; ++vb) {
      const std::vector<std::uint8_t> in{va, vb};
      ASSERT_EQ(optimized.eval(in), scalar.eval(in)) << "a=" << int(va) << " b=" << int(vb);
    }
  }
}

TEST(Optimize, PackedEvaluatorsReportStats) {
  const Netlist nl = multgen::make_ca_netlist(8);
  BitParallelEvaluator on(nl);  // optimization defaults on
  EXPECT_GT(on.optimize_stats().cells_before, 0u);
  EXPECT_LE(on.evaluated_netlist().cells().size(), nl.cells().size());
  BitParallelEvaluator off(nl, {.optimize = false});
  EXPECT_EQ(off.optimize_stats().cells_before, 0u);
  EXPECT_EQ(&off.evaluated_netlist(), &nl);
}

TEST(Optimize, RejectsOpenFlipFlop) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  (void)nl.add_fdre_open("ff");
  nl.add_output("p0", a);
  EXPECT_THROW((void)optimize(nl), std::invalid_argument);
}

}  // namespace
}  // namespace axmult::fabric
