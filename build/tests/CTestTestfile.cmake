# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mult_elementary_test[1]_include.cmake")
include("/root/repo/build/tests/mult_recursive_test[1]_include.cmake")
include("/root/repo/build/tests/error_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/multgen_test[1]_include.cmake")
include("/root/repo/build/tests/timing_power_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/asic_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/param_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/apps_fir_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/faults_test[1]_include.cmake")
include("/root/repo/build/tests/adders_test[1]_include.cmake")
include("/root/repo/build/tests/transforms_test[1]_include.cmake")
include("/root/repo/build/tests/bitparallel_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
include("/root/repo/build/tests/heavy_sweep_test[1]_include.cmake")
