# Empty dependencies file for multgen_test.
# This may be replaced when dependencies are built.
