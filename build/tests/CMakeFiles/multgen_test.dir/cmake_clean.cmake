file(REMOVE_RECURSE
  "CMakeFiles/multgen_test.dir/multgen_test.cpp.o"
  "CMakeFiles/multgen_test.dir/multgen_test.cpp.o.d"
  "multgen_test"
  "multgen_test.pdb"
  "multgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
