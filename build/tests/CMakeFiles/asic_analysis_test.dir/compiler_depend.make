# Empty compiler generated dependencies file for asic_analysis_test.
# This may be replaced when dependencies are built.
