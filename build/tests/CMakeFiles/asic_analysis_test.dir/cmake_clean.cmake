file(REMOVE_RECURSE
  "CMakeFiles/asic_analysis_test.dir/asic_analysis_test.cpp.o"
  "CMakeFiles/asic_analysis_test.dir/asic_analysis_test.cpp.o.d"
  "asic_analysis_test"
  "asic_analysis_test.pdb"
  "asic_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asic_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
