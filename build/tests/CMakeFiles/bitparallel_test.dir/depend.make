# Empty dependencies file for bitparallel_test.
# This may be replaced when dependencies are built.
