file(REMOVE_RECURSE
  "CMakeFiles/bitparallel_test.dir/bitparallel_test.cpp.o"
  "CMakeFiles/bitparallel_test.dir/bitparallel_test.cpp.o.d"
  "bitparallel_test"
  "bitparallel_test.pdb"
  "bitparallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitparallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
