file(REMOVE_RECURSE
  "CMakeFiles/error_metrics_test.dir/error_metrics_test.cpp.o"
  "CMakeFiles/error_metrics_test.dir/error_metrics_test.cpp.o.d"
  "error_metrics_test"
  "error_metrics_test.pdb"
  "error_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
