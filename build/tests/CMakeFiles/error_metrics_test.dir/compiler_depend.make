# Empty compiler generated dependencies file for error_metrics_test.
# This may be replaced when dependencies are built.
