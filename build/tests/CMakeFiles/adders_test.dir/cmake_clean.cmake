file(REMOVE_RECURSE
  "CMakeFiles/adders_test.dir/adders_test.cpp.o"
  "CMakeFiles/adders_test.dir/adders_test.cpp.o.d"
  "adders_test"
  "adders_test.pdb"
  "adders_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adders_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
