# Empty dependencies file for mult_elementary_test.
# This may be replaced when dependencies are built.
