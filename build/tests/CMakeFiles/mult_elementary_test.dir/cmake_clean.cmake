file(REMOVE_RECURSE
  "CMakeFiles/mult_elementary_test.dir/mult_elementary_test.cpp.o"
  "CMakeFiles/mult_elementary_test.dir/mult_elementary_test.cpp.o.d"
  "mult_elementary_test"
  "mult_elementary_test.pdb"
  "mult_elementary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mult_elementary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
