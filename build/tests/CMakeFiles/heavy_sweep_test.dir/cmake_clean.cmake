file(REMOVE_RECURSE
  "CMakeFiles/heavy_sweep_test.dir/heavy_sweep_test.cpp.o"
  "CMakeFiles/heavy_sweep_test.dir/heavy_sweep_test.cpp.o.d"
  "heavy_sweep_test"
  "heavy_sweep_test.pdb"
  "heavy_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heavy_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
