# Empty dependencies file for heavy_sweep_test.
# This may be replaced when dependencies are built.
