# Empty dependencies file for apps_fir_test.
# This may be replaced when dependencies are built.
