file(REMOVE_RECURSE
  "CMakeFiles/apps_fir_test.dir/apps_fir_test.cpp.o"
  "CMakeFiles/apps_fir_test.dir/apps_fir_test.cpp.o.d"
  "apps_fir_test"
  "apps_fir_test.pdb"
  "apps_fir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_fir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
