# Empty dependencies file for mult_recursive_test.
# This may be replaced when dependencies are built.
