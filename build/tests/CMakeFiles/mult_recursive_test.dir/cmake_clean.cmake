file(REMOVE_RECURSE
  "CMakeFiles/mult_recursive_test.dir/mult_recursive_test.cpp.o"
  "CMakeFiles/mult_recursive_test.dir/mult_recursive_test.cpp.o.d"
  "mult_recursive_test"
  "mult_recursive_test.pdb"
  "mult_recursive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mult_recursive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
