file(REMOVE_RECURSE
  "CMakeFiles/timing_power_test.dir/timing_power_test.cpp.o"
  "CMakeFiles/timing_power_test.dir/timing_power_test.cpp.o.d"
  "timing_power_test"
  "timing_power_test.pdb"
  "timing_power_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_power_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
