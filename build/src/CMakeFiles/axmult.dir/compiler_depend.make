# Empty compiler generated dependencies file for axmult.
# This may be replaced when dependencies are built.
