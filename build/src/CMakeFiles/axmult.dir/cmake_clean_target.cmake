file(REMOVE_RECURSE
  "libaxmult.a"
)
