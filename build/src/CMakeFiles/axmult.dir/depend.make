# Empty dependencies file for axmult.
# This may be replaced when dependencies are built.
