
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/catalog.cpp" "src/CMakeFiles/axmult.dir/analysis/catalog.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/analysis/catalog.cpp.o.d"
  "/root/repo/src/analysis/pareto.cpp" "src/CMakeFiles/axmult.dir/analysis/pareto.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/analysis/pareto.cpp.o.d"
  "/root/repo/src/apps/filters.cpp" "src/CMakeFiles/axmult.dir/apps/filters.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/apps/filters.cpp.o.d"
  "/root/repo/src/apps/fir.cpp" "src/CMakeFiles/axmult.dir/apps/fir.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/apps/fir.cpp.o.d"
  "/root/repo/src/apps/image.cpp" "src/CMakeFiles/axmult.dir/apps/image.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/apps/image.cpp.o.d"
  "/root/repo/src/apps/jpeg.cpp" "src/CMakeFiles/axmult.dir/apps/jpeg.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/apps/jpeg.cpp.o.d"
  "/root/repo/src/apps/reed_solomon.cpp" "src/CMakeFiles/axmult.dir/apps/reed_solomon.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/apps/reed_solomon.cpp.o.d"
  "/root/repo/src/apps/susan.cpp" "src/CMakeFiles/axmult.dir/apps/susan.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/apps/susan.cpp.o.d"
  "/root/repo/src/asic/model.cpp" "src/CMakeFiles/axmult.dir/asic/model.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/asic/model.cpp.o.d"
  "/root/repo/src/asic/qm.cpp" "src/CMakeFiles/axmult.dir/asic/qm.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/asic/qm.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/axmult.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/common/table.cpp.o.d"
  "/root/repo/src/error/metrics.cpp" "src/CMakeFiles/axmult.dir/error/metrics.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/error/metrics.cpp.o.d"
  "/root/repo/src/fabric/bitparallel.cpp" "src/CMakeFiles/axmult.dir/fabric/bitparallel.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/fabric/bitparallel.cpp.o.d"
  "/root/repo/src/fabric/faults.cpp" "src/CMakeFiles/axmult.dir/fabric/faults.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/fabric/faults.cpp.o.d"
  "/root/repo/src/fabric/hdl_export.cpp" "src/CMakeFiles/axmult.dir/fabric/hdl_export.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/fabric/hdl_export.cpp.o.d"
  "/root/repo/src/fabric/netlist.cpp" "src/CMakeFiles/axmult.dir/fabric/netlist.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/fabric/netlist.cpp.o.d"
  "/root/repo/src/fabric/transforms.cpp" "src/CMakeFiles/axmult.dir/fabric/transforms.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/fabric/transforms.cpp.o.d"
  "/root/repo/src/mult/adders.cpp" "src/CMakeFiles/axmult.dir/mult/adders.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/mult/adders.cpp.o.d"
  "/root/repo/src/mult/correctable.cpp" "src/CMakeFiles/axmult.dir/mult/correctable.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/mult/correctable.cpp.o.d"
  "/root/repo/src/mult/elementary.cpp" "src/CMakeFiles/axmult.dir/mult/elementary.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/mult/elementary.cpp.o.d"
  "/root/repo/src/mult/recursive.cpp" "src/CMakeFiles/axmult.dir/mult/recursive.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/mult/recursive.cpp.o.d"
  "/root/repo/src/mult/signed_wrapper.cpp" "src/CMakeFiles/axmult.dir/mult/signed_wrapper.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/mult/signed_wrapper.cpp.o.d"
  "/root/repo/src/multgen/builders.cpp" "src/CMakeFiles/axmult.dir/multgen/builders.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/multgen/builders.cpp.o.d"
  "/root/repo/src/multgen/generators.cpp" "src/CMakeFiles/axmult.dir/multgen/generators.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/multgen/generators.cpp.o.d"
  "/root/repo/src/power/power.cpp" "src/CMakeFiles/axmult.dir/power/power.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/power/power.cpp.o.d"
  "/root/repo/src/synth/mapper.cpp" "src/CMakeFiles/axmult.dir/synth/mapper.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/synth/mapper.cpp.o.d"
  "/root/repo/src/synth/network.cpp" "src/CMakeFiles/axmult.dir/synth/network.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/synth/network.cpp.o.d"
  "/root/repo/src/timing/sta.cpp" "src/CMakeFiles/axmult.dir/timing/sta.cpp.o" "gcc" "src/CMakeFiles/axmult.dir/timing/sta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
