# Empty dependencies file for bench_table5_error_analysis.
# This may be replaced when dependencies are built.
