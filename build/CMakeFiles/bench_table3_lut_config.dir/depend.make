# Empty dependencies file for bench_table3_lut_config.
# This may be replaced when dependencies are built.
