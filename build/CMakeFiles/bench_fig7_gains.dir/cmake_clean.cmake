file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_gains.dir/bench/bench_fig7_gains.cpp.o"
  "CMakeFiles/bench_fig7_gains.dir/bench/bench_fig7_gains.cpp.o.d"
  "bench/bench_fig7_gains"
  "bench/bench_fig7_gains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_gains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
