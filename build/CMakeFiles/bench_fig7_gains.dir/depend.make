# Empty dependencies file for bench_fig7_gains.
# This may be replaced when dependencies are built.
