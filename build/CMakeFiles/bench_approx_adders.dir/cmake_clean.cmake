file(REMOVE_RECURSE
  "CMakeFiles/bench_approx_adders.dir/bench/bench_approx_adders.cpp.o"
  "CMakeFiles/bench_approx_adders.dir/bench/bench_approx_adders.cpp.o.d"
  "bench/bench_approx_adders"
  "bench/bench_approx_adders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_approx_adders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
