# Empty dependencies file for bench_approx_adders.
# This may be replaced when dependencies are built.
