# Empty dependencies file for bench_table6_susan_psnr.
# This may be replaced when dependencies are built.
