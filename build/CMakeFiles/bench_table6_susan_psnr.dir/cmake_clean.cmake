file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_susan_psnr.dir/bench/bench_table6_susan_psnr.cpp.o"
  "CMakeFiles/bench_table6_susan_psnr.dir/bench/bench_table6_susan_psnr.cpp.o.d"
  "bench/bench_table6_susan_psnr"
  "bench/bench_table6_susan_psnr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_susan_psnr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
