file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_pareto_area.dir/bench/bench_fig9_pareto_area.cpp.o"
  "CMakeFiles/bench_fig9_pareto_area.dir/bench/bench_fig9_pareto_area.cpp.o.d"
  "bench/bench_fig9_pareto_area"
  "bench/bench_fig9_pareto_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_pareto_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
