# Empty compiler generated dependencies file for bench_table1_dsp_vs_lut.
# This may be replaced when dependencies are built.
