file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_dsp_vs_lut.dir/bench/bench_table1_dsp_vs_lut.cpp.o"
  "CMakeFiles/bench_table1_dsp_vs_lut.dir/bench/bench_table1_dsp_vs_lut.cpp.o.d"
  "bench/bench_table1_dsp_vs_lut"
  "bench/bench_table1_dsp_vs_lut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_dsp_vs_lut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
