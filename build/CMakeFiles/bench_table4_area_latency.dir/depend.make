# Empty dependencies file for bench_table4_area_latency.
# This may be replaced when dependencies are built.
