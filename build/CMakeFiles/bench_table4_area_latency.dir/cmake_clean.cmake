file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_area_latency.dir/bench/bench_table4_area_latency.cpp.o"
  "CMakeFiles/bench_table4_area_latency.dir/bench/bench_table4_area_latency.cpp.o.d"
  "bench/bench_table4_area_latency"
  "bench/bench_table4_area_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_area_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
