file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_error_cases.dir/bench/bench_table2_error_cases.cpp.o"
  "CMakeFiles/bench_table2_error_cases.dir/bench/bench_table2_error_cases.cpp.o.d"
  "bench/bench_table2_error_cases"
  "bench/bench_table2_error_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_error_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
