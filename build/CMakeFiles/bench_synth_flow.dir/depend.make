# Empty dependencies file for bench_synth_flow.
# This may be replaced when dependencies are built.
