file(REMOVE_RECURSE
  "CMakeFiles/bench_synth_flow.dir/bench/bench_synth_flow.cpp.o"
  "CMakeFiles/bench_synth_flow.dir/bench/bench_synth_flow.cpp.o.d"
  "bench/bench_synth_flow"
  "bench/bench_synth_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_synth_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
