file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_input_histogram.dir/bench/bench_fig12_input_histogram.cpp.o"
  "CMakeFiles/bench_fig12_input_histogram.dir/bench/bench_fig12_input_histogram.cpp.o.d"
  "bench/bench_fig12_input_histogram"
  "bench/bench_fig12_input_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_input_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
