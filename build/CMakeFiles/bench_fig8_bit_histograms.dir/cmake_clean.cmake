file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_bit_histograms.dir/bench/bench_fig8_bit_histograms.cpp.o"
  "CMakeFiles/bench_fig8_bit_histograms.dir/bench/bench_fig8_bit_histograms.cpp.o.d"
  "bench/bench_fig8_bit_histograms"
  "bench/bench_fig8_bit_histograms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_bit_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
