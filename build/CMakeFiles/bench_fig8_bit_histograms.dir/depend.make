# Empty dependencies file for bench_fig8_bit_histograms.
# This may be replaced when dependencies are built.
