# Empty dependencies file for bench_fig1_cross_platform.
# This may be replaced when dependencies are built.
