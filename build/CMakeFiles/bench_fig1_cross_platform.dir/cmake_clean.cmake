file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_cross_platform.dir/bench/bench_fig1_cross_platform.cpp.o"
  "CMakeFiles/bench_fig1_cross_platform.dir/bench/bench_fig1_cross_platform.cpp.o.d"
  "bench/bench_fig1_cross_platform"
  "bench/bench_fig1_cross_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_cross_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
