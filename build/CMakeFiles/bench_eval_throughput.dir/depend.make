# Empty dependencies file for bench_eval_throughput.
# This may be replaced when dependencies are built.
