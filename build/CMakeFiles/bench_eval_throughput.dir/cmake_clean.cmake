file(REMOVE_RECURSE
  "CMakeFiles/bench_eval_throughput.dir/bench/bench_eval_throughput.cpp.o"
  "CMakeFiles/bench_eval_throughput.dir/bench/bench_eval_throughput.cpp.o.d"
  "bench/bench_eval_throughput"
  "bench/bench_eval_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eval_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
