file(REMOVE_RECURSE
  "CMakeFiles/axmult_cli.dir/axmult_cli.cpp.o"
  "CMakeFiles/axmult_cli.dir/axmult_cli.cpp.o.d"
  "axmult_cli"
  "axmult_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axmult_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
