# Empty compiler generated dependencies file for axmult_cli.
# This may be replaced when dependencies are built.
