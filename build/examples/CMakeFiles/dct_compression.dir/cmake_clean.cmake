file(REMOVE_RECURSE
  "CMakeFiles/dct_compression.dir/dct_compression.cpp.o"
  "CMakeFiles/dct_compression.dir/dct_compression.cpp.o.d"
  "dct_compression"
  "dct_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dct_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
