# Empty dependencies file for dct_compression.
# This may be replaced when dependencies are built.
