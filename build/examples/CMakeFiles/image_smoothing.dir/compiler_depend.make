# Empty compiler generated dependencies file for image_smoothing.
# This may be replaced when dependencies are built.
