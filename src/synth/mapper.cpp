#include "synth/mapper.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "common/bits.hpp"

namespace axmult::synth {

namespace {

/// A cut: sorted leaf set, at most 6 entries.
struct Cut {
  std::vector<NodeId> leaves;
  unsigned depth = 0;  ///< mapped depth if this cut is chosen

  bool operator==(const Cut& o) const { return leaves == o.leaves; }
};

/// Merges two sorted leaf sets; returns false if the union exceeds k.
bool merge_leaves(const std::vector<NodeId>& a, const std::vector<NodeId>& b, unsigned k,
                  std::vector<NodeId>& out) {
  out.clear();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() || j < b.size()) {
    NodeId next;
    if (j >= b.size() || (i < a.size() && a[i] <= b[j])) {
      next = a[i];
      if (j < b.size() && b[j] == next) ++j;
      ++i;
    } else {
      next = b[j];
      ++j;
    }
    out.push_back(next);
    if (out.size() > k) return false;
  }
  return true;
}

/// Evaluates the cone of `root` with the given leaf values.
std::uint8_t eval_cone(const Network& net, NodeId root,
                       const std::unordered_map<NodeId, std::uint8_t>& leaf_values,
                       std::unordered_map<NodeId, std::uint8_t>& memo) {
  const auto lv = leaf_values.find(root);
  if (lv != leaf_values.end()) return lv->second;
  const auto mv = memo.find(root);
  if (mv != memo.end()) return mv->second;
  const Node& n = net.node(root);
  std::uint8_t v = 0;
  switch (n.kind) {
    case NodeKind::kConst0: v = 0; break;
    case NodeKind::kInput:
      throw std::logic_error("mapper: reached an input that is not a cut leaf");
    case NodeKind::kAnd:
      v = eval_cone(net, n.a, leaf_values, memo) & eval_cone(net, n.b, leaf_values, memo);
      break;
    case NodeKind::kOr:
      v = eval_cone(net, n.a, leaf_values, memo) | eval_cone(net, n.b, leaf_values, memo);
      break;
    case NodeKind::kXor:
      v = eval_cone(net, n.a, leaf_values, memo) ^ eval_cone(net, n.b, leaf_values, memo);
      break;
    case NodeKind::kNot: v = eval_cone(net, n.a, leaf_values, memo) ^ 1u; break;
  }
  memo.emplace(root, v);
  return v;
}

}  // namespace

MappingResult map_to_luts(const Network& net, const MapperOptions& options) {
  if (options.cut_size == 0 || options.cut_size > 6) {
    throw std::invalid_argument("map_to_luts: cut_size must be in [1, 6]");
  }
  const unsigned k = options.cut_size;
  const std::size_t n = net.node_count();

  // Node ids are topological by construction.
  std::vector<std::vector<Cut>> cuts(n);
  std::vector<unsigned> best_depth(n, 0);
  std::vector<Cut> best_cut(n);

  auto leaf_depth = [&](const std::vector<NodeId>& leaves) {
    unsigned d = 0;
    for (NodeId l : leaves) d = std::max(d, best_depth[l]);
    return d;
  };

  for (NodeId id = 0; id < n; ++id) {
    const Node& node = net.node(id);
    if (node.kind == NodeKind::kConst0 || node.kind == NodeKind::kInput ||
        (id == 1 && node.kind == NodeKind::kNot)) {
      // Constants and inputs are free; their only cut is themselves.
      cuts[id] = {{{id}, 0}};
      best_depth[id] = 0;
      best_cut[id] = {{id}, 0};
      continue;
    }
    std::vector<Cut> mine;
    const auto& ca = cuts[node.a];
    if (node.kind == NodeKind::kNot) {
      for (const Cut& c : ca) mine.push_back({c.leaves, 0});
    } else {
      std::vector<NodeId> merged;
      for (const Cut& x : ca) {
        for (const Cut& y : cuts[node.b]) {
          if (merge_leaves(x.leaves, y.leaves, k, merged)) {
            mine.push_back({merged, 0});
          }
        }
      }
    }
    mine.push_back({{id}, 0});  // trivial cut
    // Score, dedup, prune.
    for (Cut& c : mine) {
      c.depth = (c.leaves.size() == 1 && c.leaves[0] == id)
                    ? 0  // placeholder; scored against fanins below
                    : 1 + leaf_depth(c.leaves);
    }
    // The trivial cut's real depth is 1 + the node's own best via fanins,
    // which equals the min over non-trivial cuts; drop it from selection
    // but keep it for parents' merging.
    std::sort(mine.begin(), mine.end(), [](const Cut& a, const Cut& b) {
      if (a.depth != b.depth) return a.depth < b.depth;
      return a.leaves.size() < b.leaves.size();
    });
    mine.erase(std::unique(mine.begin(), mine.end()), mine.end());
    // Selection ignores the trivial self-cut.
    const Cut* chosen = nullptr;
    for (const Cut& c : mine) {
      if (c.leaves.size() == 1 && c.leaves[0] == id) continue;
      chosen = &c;
      break;
    }
    if (chosen == nullptr) {
      throw std::logic_error("map_to_luts: node without a non-trivial cut");
    }
    best_depth[id] = chosen->depth;
    best_cut[id] = *chosen;
    // Fix the trivial cut's depth for parents, then prune.
    for (Cut& c : mine) {
      if (c.leaves.size() == 1 && c.leaves[0] == id) c.depth = best_depth[id];
    }
    std::sort(mine.begin(), mine.end(), [](const Cut& a, const Cut& b) {
      if (a.depth != b.depth) return a.depth < b.depth;
      return a.leaves.size() < b.leaves.size();
    });
    if (mine.size() > options.cut_limit) mine.resize(options.cut_limit);
    cuts[id] = std::move(mine);
  }

  // Cover extraction from the outputs.
  std::vector<bool> required(n, false);
  std::vector<NodeId> work;
  for (const auto& [name, id] : net.outputs()) {
    (void)name;
    const Node& node = net.node(id);
    if (node.kind != NodeKind::kConst0 && node.kind != NodeKind::kInput && id != 1) {
      if (!required[id]) {
        required[id] = true;
        work.push_back(id);
      }
    }
  }
  while (!work.empty()) {
    const NodeId id = work.back();
    work.pop_back();
    for (NodeId leaf : best_cut[id].leaves) {
      const Node& ln = net.node(leaf);
      if (ln.kind == NodeKind::kConst0 || ln.kind == NodeKind::kInput || leaf == 1) continue;
      if (!required[leaf]) {
        required[leaf] = true;
        work.push_back(leaf);
      }
    }
  }

  // Emission.
  MappingResult result;
  fabric::Netlist& out = result.netlist;
  std::vector<fabric::NetId> net_of(n, fabric::kNoNet);
  net_of[0] = fabric::kNetGnd;
  net_of[1] = fabric::kNetVcc;
  for (std::size_t i = 0; i < net.inputs().size(); ++i) {
    net_of[net.inputs()[i]] = out.add_input(net.input_name(i));
  }
  for (NodeId id = 2; id < n; ++id) {
    if (!required[id]) continue;
    const auto& leaves = best_cut[id].leaves;
    // Truth table of the cone over the leaves.
    std::uint64_t init = 0;
    for (unsigned idx = 0; idx < (1u << leaves.size()); ++idx) {
      std::unordered_map<NodeId, std::uint8_t> leaf_values;
      for (std::size_t l = 0; l < leaves.size(); ++l) {
        leaf_values[leaves[l]] = static_cast<std::uint8_t>((idx >> l) & 1);
      }
      std::unordered_map<NodeId, std::uint8_t> memo;
      if (eval_cone(net, id, leaf_values, memo)) {
        // Replicate across the unused upper pins so any tie value works.
        for (unsigned rep = idx; rep < 64; rep += (1u << leaves.size())) {
          init |= std::uint64_t{1} << rep;
        }
      }
    }
    std::array<fabric::NetId, 6> pins{fabric::kNetGnd, fabric::kNetGnd, fabric::kNetGnd,
                                      fabric::kNetGnd, fabric::kNetGnd, fabric::kNetGnd};
    for (std::size_t l = 0; l < leaves.size(); ++l) pins[l] = net_of[leaves[l]];
    net_of[id] = out.add_lut6("m" + std::to_string(id), init, pins).o6;
  }
  for (const auto& [name, id] : net.outputs()) {
    out.add_output(name, net_of[id]);
  }

  result.stats.luts = out.area().luts;
  unsigned depth = 0;
  for (const auto& [name, id] : net.outputs()) {
    (void)name;
    depth = std::max(depth, best_depth[id]);
  }
  result.stats.depth = depth;
  return result;
}

}  // namespace axmult::synth
