// Gate-level boolean network with structural hashing and constant folding.
//
// This is the "RTL synthesis" front-end of the flow: baseline designs are
// described as gates (what ASIC-oriented papers publish), then mapped to
// 6-input LUTs by synth/mapper.hpp. Comparing the mapped results against
// the hand-structured netlists in multgen/ quantifies exactly the gap the
// paper builds its case on: generic mapping cannot use dual outputs or
// carry chains.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace axmult::synth {

using NodeId = std::uint32_t;

enum class NodeKind : std::uint8_t { kConst0, kInput, kAnd, kOr, kXor, kNot };

struct Node {
  NodeKind kind = NodeKind::kConst0;
  NodeId a = 0;  ///< first fanin (unused for const/input)
  NodeId b = 0;  ///< second fanin (unused for kNot)
};

class Network {
 public:
  Network();

  // ---- construction (hashed + folded) -----------------------------------
  [[nodiscard]] NodeId const0() const noexcept { return 0; }
  [[nodiscard]] NodeId const1() const noexcept { return 1; }  // = NOT const0
  NodeId add_input(std::string name);
  NodeId land(NodeId a, NodeId b);
  NodeId lor(NodeId a, NodeId b);
  NodeId lxor(NodeId a, NodeId b);
  NodeId lnot(NodeId a);
  void set_output(std::string name, NodeId id);

  // ---- arithmetic helpers -------------------------------------------------
  struct Sum {
    NodeId s;
    NodeId c;
  };
  Sum half_adder(NodeId a, NodeId b);
  Sum full_adder(NodeId a, NodeId b, NodeId c);
  /// Ripple-carry addition; result has max(|x|,|y|)+1 bits.
  [[nodiscard]] std::vector<NodeId> ripple_add(const std::vector<NodeId>& x,
                                               const std::vector<NodeId>& y);
  /// Gate-level accurate array multiplier (AND partial products + ripple
  /// rows) — the canonical ASIC-style description.
  [[nodiscard]] std::vector<NodeId> array_multiplier(const std::vector<NodeId>& a,
                                                     const std::vector<NodeId>& b);

  // ---- inspection ---------------------------------------------------------
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id); }
  [[nodiscard]] const std::vector<NodeId>& inputs() const noexcept { return inputs_; }
  [[nodiscard]] const std::vector<std::pair<std::string, NodeId>>& outputs() const noexcept {
    return outputs_;
  }
  [[nodiscard]] const std::string& input_name(std::size_t i) const {
    return input_names_.at(i);
  }
  /// Gate count excluding constants and inputs.
  [[nodiscard]] std::size_t gate_count() const noexcept;
  /// Logic depth in gate levels.
  [[nodiscard]] unsigned depth() const;

  // ---- evaluation -----------------------------------------------------------
  /// Evaluates all outputs for the given input bits (declaration order).
  [[nodiscard]] std::vector<std::uint8_t> eval(const std::vector<std::uint8_t>& in) const;
  /// Packs inputs/outputs as LSB-first words (mirrors fabric::Evaluator).
  [[nodiscard]] std::uint64_t eval_word(std::uint64_t a, unsigned a_bits, std::uint64_t b,
                                        unsigned b_bits) const;

 private:
  NodeId intern(NodeKind kind, NodeId a, NodeId b);

  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<std::string> input_names_;
  std::vector<std::pair<std::string, NodeId>> outputs_;
  std::unordered_map<std::uint64_t, NodeId> hash_;
};

}  // namespace axmult::synth
