#include "synth/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace axmult::synth {

Network::Network() {
  nodes_.push_back({NodeKind::kConst0, 0, 0});  // id 0
  nodes_.push_back({NodeKind::kNot, 0, 0});     // id 1 = const 1
  // Register the const-1 node so lnot(const0) resolves to it.
  hash_.emplace(static_cast<std::uint64_t>(NodeKind::kNot) << 60, NodeId{1});
}

NodeId Network::add_input(std::string name) {
  nodes_.push_back({NodeKind::kInput, 0, 0});
  const NodeId id = static_cast<NodeId>(nodes_.size() - 1);
  inputs_.push_back(id);
  input_names_.push_back(std::move(name));
  return id;
}

NodeId Network::intern(NodeKind kind, NodeId a, NodeId b) {
  // Commutative operators are canonicalized so hashing catches both orders.
  if (kind != NodeKind::kNot && a > b) std::swap(a, b);
  const std::uint64_t key = (static_cast<std::uint64_t>(kind) << 60) |
                            (static_cast<std::uint64_t>(a) << 30) | b;
  const auto it = hash_.find(key);
  if (it != hash_.end()) return it->second;
  nodes_.push_back({kind, a, b});
  const NodeId id = static_cast<NodeId>(nodes_.size() - 1);
  hash_.emplace(key, id);
  return id;
}

NodeId Network::land(NodeId a, NodeId b) {
  if (a == const0() || b == const0()) return const0();
  if (a == const1()) return b;
  if (b == const1()) return a;
  if (a == b) return a;
  return intern(NodeKind::kAnd, a, b);
}

NodeId Network::lor(NodeId a, NodeId b) {
  if (a == const1() || b == const1()) return const1();
  if (a == const0()) return b;
  if (b == const0()) return a;
  if (a == b) return a;
  return intern(NodeKind::kOr, a, b);
}

NodeId Network::lxor(NodeId a, NodeId b) {
  if (a == b) return const0();
  if (a == const0()) return b;
  if (b == const0()) return a;
  if (a == const1()) return lnot(b);
  if (b == const1()) return lnot(a);
  return intern(NodeKind::kXor, a, b);
}

NodeId Network::lnot(NodeId a) {
  // NOT(NOT(x)) = x.
  if (nodes_[a].kind == NodeKind::kNot) return nodes_[a].a;
  return intern(NodeKind::kNot, a, 0);
}

void Network::set_output(std::string name, NodeId id) {
  outputs_.emplace_back(std::move(name), id);
}

Network::Sum Network::half_adder(NodeId a, NodeId b) {
  return {lxor(a, b), land(a, b)};
}

Network::Sum Network::full_adder(NodeId a, NodeId b, NodeId c) {
  const NodeId axb = lxor(a, b);
  return {lxor(axb, c), lor(land(a, b), land(axb, c))};
}

std::vector<NodeId> Network::ripple_add(const std::vector<NodeId>& x,
                                        const std::vector<NodeId>& y) {
  const std::size_t w = std::max(x.size(), y.size());
  std::vector<NodeId> sum(w + 1, const0());
  NodeId carry = const0();
  for (std::size_t i = 0; i < w; ++i) {
    const NodeId xi = i < x.size() ? x[i] : const0();
    const NodeId yi = i < y.size() ? y[i] : const0();
    const Sum fa = full_adder(xi, yi, carry);
    sum[i] = fa.s;
    carry = fa.c;
  }
  sum[w] = carry;
  return sum;
}

std::vector<NodeId> Network::array_multiplier(const std::vector<NodeId>& a,
                                              const std::vector<NodeId>& b) {
  std::vector<NodeId> acc;
  for (std::size_t j = 0; j < b.size(); ++j) {
    std::vector<NodeId> row(j, const0());
    for (NodeId abit : a) row.push_back(land(abit, b[j]));
    acc = j == 0 ? row : ripple_add(acc, row);
  }
  acc.resize(a.size() + b.size(), const0());
  return acc;
}

std::size_t Network::gate_count() const noexcept {
  std::size_t n = 0;
  for (const Node& node : nodes_) {
    if (node.kind != NodeKind::kConst0 && node.kind != NodeKind::kInput) ++n;
  }
  return n - 1;  // exclude the implicit const-1 NOT node
}

unsigned Network::depth() const {
  std::vector<unsigned> d(nodes_.size(), 0);
  for (NodeId id = 2; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.kind == NodeKind::kInput) continue;
    const unsigned da = d[n.a];
    const unsigned db = n.kind == NodeKind::kNot ? 0 : d[n.b];
    d[id] = 1 + std::max(da, db);
  }
  unsigned worst = 0;
  for (const auto& [name, id] : outputs_) {
    (void)name;
    worst = std::max(worst, d[id]);
  }
  return worst;
}

std::vector<std::uint8_t> Network::eval(const std::vector<std::uint8_t>& in) const {
  if (in.size() != inputs_.size()) {
    throw std::invalid_argument("Network::eval: wrong number of input bits");
  }
  std::vector<std::uint8_t> v(nodes_.size(), 0);
  v[const1()] = 1;
  for (std::size_t i = 0; i < inputs_.size(); ++i) v[inputs_[i]] = in[i] & 1u;
  for (NodeId id = 2; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    switch (n.kind) {
      case NodeKind::kConst0:
      case NodeKind::kInput: break;
      case NodeKind::kAnd: v[id] = v[n.a] & v[n.b]; break;
      case NodeKind::kOr: v[id] = v[n.a] | v[n.b]; break;
      case NodeKind::kXor: v[id] = v[n.a] ^ v[n.b]; break;
      case NodeKind::kNot: v[id] = v[n.a] ^ 1u; break;
    }
  }
  std::vector<std::uint8_t> out;
  out.reserve(outputs_.size());
  for (const auto& [name, id] : outputs_) {
    (void)name;
    out.push_back(v[id]);
  }
  return out;
}

std::uint64_t Network::eval_word(std::uint64_t a, unsigned a_bits, std::uint64_t b,
                                 unsigned b_bits) const {
  std::vector<std::uint8_t> in;
  in.reserve(a_bits + b_bits);
  for (unsigned i = 0; i < a_bits; ++i) in.push_back(static_cast<std::uint8_t>((a >> i) & 1));
  for (unsigned i = 0; i < b_bits; ++i) in.push_back(static_cast<std::uint8_t>((b >> i) & 1));
  const auto out = eval(in);
  std::uint64_t p = 0;
  for (std::size_t i = 0; i < out.size(); ++i) p |= std::uint64_t{out[i]} << i;
  return p;
}

}  // namespace axmult::synth
