// Cut-based technology mapping of a boolean network onto 6-input LUTs.
//
// Classic FlowMap-style depth-oriented mapping with bounded cut
// enumeration: every node collects up to `cut_limit` irredundant cuts of
// at most `cut_size` leaves; the best cut minimizes mapped depth, then
// leaf count. The chosen cover is emitted as a fabric::Netlist whose LUT
// INITs are computed by simulating each cut cone over all leaf
// assignments.
//
// Deliberately *no* carry-chain or dual-output inference: this models what
// a generic synthesis flow produces from ASIC-style RTL, the baseline the
// paper's hand-structured designs beat.
#pragma once

#include "fabric/netlist.hpp"
#include "synth/network.hpp"

namespace axmult::synth {

struct MapperOptions {
  unsigned cut_size = 6;   ///< K of the K-LUT target (<= 6)
  unsigned cut_limit = 8;  ///< cuts retained per node
};

struct MappingStats {
  std::size_t luts = 0;
  unsigned depth = 0;  ///< mapped depth in LUT levels
};

struct MappingResult {
  fabric::Netlist netlist;
  MappingStats stats;
};

/// Maps `net` to LUTs. Throws std::invalid_argument for cut_size > 6 or 0.
[[nodiscard]] MappingResult map_to_luts(const Network& net, const MapperOptions& options = {});

}  // namespace axmult::synth
