#include "mult/adders.hpp"

#include <stdexcept>
#include <utility>

#include "common/bits.hpp"

namespace axmult::mult {

namespace {

class FnAdder final : public Adder {
 public:
  using Fn = std::uint64_t (*)(std::uint64_t, std::uint64_t, unsigned, unsigned);
  FnAdder(unsigned bits, unsigned param, std::string name, Fn fn)
      : bits_(bits), param_(param), name_(std::move(name)), fn_(fn) {
    if (bits == 0 || bits > 32) throw std::invalid_argument("Adder: bits must be in [1, 32]");
  }

  [[nodiscard]] std::uint64_t add(std::uint64_t a, std::uint64_t b) const override {
    return fn_(a & low_mask(bits_), b & low_mask(bits_), bits_, param_);
  }
  [[nodiscard]] unsigned bits() const noexcept override { return bits_; }
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  unsigned bits_;
  unsigned param_;
  std::string name_;
  Fn fn_;
};

}  // namespace

AdderPtr make_accurate_adder(unsigned bits) {
  return std::make_shared<FnAdder>(
      bits, 0, "RCA" + std::to_string(bits),
      +[](std::uint64_t a, std::uint64_t b, unsigned, unsigned) { return a + b; });
}

AdderPtr make_loa(unsigned bits, unsigned or_bits) {
  if (or_bits > bits) throw std::invalid_argument("make_loa: or_bits > bits");
  return std::make_shared<FnAdder>(
      bits, or_bits, "LOA(" + std::to_string(bits) + "," + std::to_string(or_bits) + ")",
      +[](std::uint64_t a, std::uint64_t b, unsigned, unsigned l) {
        const std::uint64_t lo = (a | b) & low_mask(l);
        const std::uint64_t hi = ((a >> l) + (b >> l)) << l;
        return hi | lo;
      });
}

AdderPtr make_truncated_adder(unsigned bits, unsigned zeroed_bits) {
  if (zeroed_bits > bits) throw std::invalid_argument("make_truncated_adder: depth > bits");
  return std::make_shared<FnAdder>(
      bits, zeroed_bits,
      "TruncAdd(" + std::to_string(bits) + "," + std::to_string(zeroed_bits) + ")",
      +[](std::uint64_t a, std::uint64_t b, unsigned, unsigned k) {
        return ((a >> k) + (b >> k)) << k;
      });
}

AdderPtr make_segmented_adder(unsigned bits, unsigned segment_bits) {
  if (segment_bits == 0) throw std::invalid_argument("make_segmented_adder: zero segment");
  return std::make_shared<FnAdder>(
      bits, segment_bits,
      "SegAdd(" + std::to_string(bits) + "," + std::to_string(segment_bits) + ")",
      +[](std::uint64_t a, std::uint64_t b, unsigned w, unsigned seg) {
        std::uint64_t sum = 0;
        for (unsigned base = 0; base < w; base += seg) {
          const unsigned sw = std::min(seg, w - base);
          const std::uint64_t mask = low_mask(sw);
          const std::uint64_t s = ((a >> base) & mask) + ((b >> base) & mask);
          // Inter-segment carries are speculated to 0; the final segment's
          // carry-out is the true top result bit and is kept.
          const bool last = base + sw >= w;
          sum |= (last ? s : (s & mask)) << base;
        }
        return sum;
      });
}

AdderPtr make_xor_adder(unsigned bits) {
  return std::make_shared<FnAdder>(
      bits, 0, "XorAdd" + std::to_string(bits),
      +[](std::uint64_t a, std::uint64_t b, unsigned, unsigned) { return a ^ b; });
}

}  // namespace axmult::mult
