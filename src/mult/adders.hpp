// Approximate adder sub-library.
//
// The paper's related work ([4] speculative, [5] low-latency generic
// accuracy-configurable, [8]/[11] low-power approximate adders) all build
// on a few canonical approximate-addition schemes. This module provides
// them as first-class library components — they are also exactly the
// pieces from which alternative partial-product summations (Cb/Cc and the
// paper's suggested "sophisticated approximate addition") are assembled.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace axmult::mult {

/// An unsigned combinational adder model with fixed operand width.
class Adder {
 public:
  virtual ~Adder() = default;
  [[nodiscard]] virtual std::uint64_t add(std::uint64_t a, std::uint64_t b) const = 0;
  [[nodiscard]] virtual unsigned bits() const noexcept = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

using AdderPtr = std::shared_ptr<const Adder>;

/// Exact ripple/carry-chain adder.
[[nodiscard]] AdderPtr make_accurate_adder(unsigned bits);

/// Lower-part OR adder (LOA, Mahdiani et al.): the low `or_bits` columns
/// are OR'd with no carries; the upper part adds accurately with no carry
/// in. |error| < 2^or_bits; errors can be both positive and negative.
[[nodiscard]] AdderPtr make_loa(unsigned bits, unsigned or_bits);

/// Truncated adder: the low `zeroed_bits` result bits are forced to zero
/// (carry from the truncated part is dropped). One-sided error.
[[nodiscard]] AdderPtr make_truncated_adder(unsigned bits, unsigned zeroed_bits);

/// Carry-segmented (speculative / ACA-style) adder: the carry chain is cut
/// every `segment_bits` columns, each segment assuming carry-in 0. Errors
/// occur only when a real carry crosses a segment boundary.
[[nodiscard]] AdderPtr make_segmented_adder(unsigned bits, unsigned segment_bits);

/// Carry-free XOR adder (the Cc summation idiom applied to addition).
[[nodiscard]] AdderPtr make_xor_adder(unsigned bits);

}  // namespace axmult::mult
