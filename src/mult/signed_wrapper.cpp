#include "mult/signed_wrapper.hpp"

#include <cstdlib>
#include <stdexcept>

#include "common/bits.hpp"

namespace axmult::mult {

SignedMultiplier::SignedMultiplier(MultiplierPtr core) : core_(std::move(core)) {
  if (!core_) throw std::invalid_argument("SignedMultiplier: null core");
}

std::int64_t SignedMultiplier::multiply(std::int64_t a, std::int64_t b) const {
  const std::uint64_t mag_a = static_cast<std::uint64_t>(std::llabs(a));
  const std::uint64_t mag_b = static_cast<std::uint64_t>(std::llabs(b));
  if (mag_a > low_mask(core_->a_bits()) || mag_b > low_mask(core_->b_bits())) {
    throw std::out_of_range("SignedMultiplier: magnitude exceeds core width");
  }
  const std::int64_t p = static_cast<std::int64_t>(core_->multiply(mag_a, mag_b));
  return ((a < 0) != (b < 0)) ? -p : p;
}

}  // namespace axmult::mult
