// Behavioral multiplier interface.
//
// Every design in the library exists in two coupled forms:
//   * a behavioral model (this interface) used for exhaustive/sampled
//     error characterization and application-level studies, and
//   * a structural fabric::Netlist (multgen/) used for area, timing and
//     energy evaluation.
// Tests assert that the two forms agree bit-for-bit.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace axmult::mult {

/// An unsigned combinational multiplier model with fixed operand widths.
class Multiplier {
 public:
  virtual ~Multiplier() = default;

  /// Computes the (possibly approximate) product. Operands are masked to
  /// the declared widths by the implementation.
  [[nodiscard]] virtual std::uint64_t multiply(std::uint64_t a, std::uint64_t b) const = 0;

  [[nodiscard]] virtual unsigned a_bits() const noexcept = 0;
  [[nodiscard]] virtual unsigned b_bits() const noexcept = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] unsigned product_bits() const noexcept { return a_bits() + b_bits(); }
};

using MultiplierPtr = std::shared_ptr<const Multiplier>;

/// Wraps another multiplier with its operands exchanged — the paper's
/// "Cas"/"Ccs" configurations that exploit the asymmetric error profile of
/// the proposed 4x4 module (Section 5, Table 6).
class SwappedMultiplier final : public Multiplier {
 public:
  explicit SwappedMultiplier(MultiplierPtr inner) : inner_(std::move(inner)) {}

  [[nodiscard]] std::uint64_t multiply(std::uint64_t a, std::uint64_t b) const override {
    return inner_->multiply(b, a);
  }
  [[nodiscard]] unsigned a_bits() const noexcept override { return inner_->b_bits(); }
  [[nodiscard]] unsigned b_bits() const noexcept override { return inner_->a_bits(); }
  [[nodiscard]] std::string name() const override { return inner_->name() + "s"; }

 private:
  MultiplierPtr inner_;
};

}  // namespace axmult::mult
