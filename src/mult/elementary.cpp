#include "mult/elementary.hpp"

#include "common/bits.hpp"

namespace axmult::mult {

std::uint64_t accurate_4x2(std::uint64_t a, std::uint64_t b) noexcept {
  return (a & 0xF) * (b & 0x3);
}

std::uint64_t approx_4x2(std::uint64_t a, std::uint64_t b) noexcept {
  return accurate_4x2(a, b) & ~std::uint64_t{1};
}

namespace {

/// Shared decomposition of the proposed 4x4 multiplier. `force_prop_zero`
/// selects the paper's containment (generate kept accurate); otherwise the
/// propagate signal is kept accurate and the generate zeroed (ablation).
std::uint64_t approx_4x4_impl(std::uint64_t a, std::uint64_t b, bool force_prop_zero) noexcept {
  a &= 0xF;
  b &= 0xF;
  const std::uint64_t pp0 = approx_4x2(a, b & 0x3);
  const std::uint64_t pp1 = approx_4x2(a, b >> 2);

  // LUT7: accurate recovery of P0 (= A0 B0, the bit truncated from PP0)
  // and P2 (PP0<2> plus the bit truncated from PP1, A0 B2).
  const std::uint64_t p0 = bit(a, 0) & bit(b, 0);
  const std::uint64_t c2in = bit(a, 0) & bit(b, 2);  // truncated PP1<0>
  const std::uint64_t p2 = bit(pp0, 2) ^ c2in;
  const std::uint64_t carry2 = bit(pp0, 2) & c2in;   // carry out of P2

  const std::uint64_t p1 = bit(pp0, 1);

  // Carry-chain stage 0 (LUT8): P3 column adds PP0<3> + PP1<1> + carry2.
  const unsigned t = static_cast<unsigned>(bit(pp0, 3) + bit(pp1, 1) + carry2);
  std::uint64_t p3;
  std::uint64_t c4;  // carry into the P4 column
  if (force_prop_zero) {
    // Paper design: propagate forced to 0 on the t == 3 conflict, generate
    // accurate -> sum bit wrong (error -8), carry preserved.
    p3 = (t == 1) ? 1 : 0;
    c4 = (t >= 2) ? 1 : 0;
  } else {
    // Ablation: sum bit accurate, generate zeroed -> carry lost on t == 3
    // (error -16).
    p3 = t & 1u;
    c4 = (t == 2) ? 1 : 0;
  }

  // Carry-chain stages 1..3: exact addition of PP0<5:4> + PP1<5:2> + c4.
  // Implicit Prop3/Gen3 (Fig. 4) is exact because a 4x2 product can never
  // have bits 4 and 5 set at once (max product 45).
  const std::uint64_t high = (pp0 >> 4) + (pp1 >> 2) + c4;

  return p0 | (p1 << 1) | (p2 << 2) | (p3 << 3) | (high << 4);
}

}  // namespace

std::uint64_t approx_4x4(std::uint64_t a, std::uint64_t b) noexcept {
  return approx_4x4_impl(a, b, /*force_prop_zero=*/true);
}

std::uint64_t approx_4x4_prop_only(std::uint64_t a, std::uint64_t b) noexcept {
  return approx_4x4_impl(a, b, /*force_prop_zero=*/false);
}

bool approx_4x4_errs(std::uint64_t a, std::uint64_t b) noexcept {
  a &= 0xF;
  b &= 0xF;
  const std::uint64_t pp0 = approx_4x2(a, b & 0x3);
  const std::uint64_t pp1 = approx_4x2(a, b >> 2);
  return bit(a, 0) && bit(b, 2) && bit(pp0, 2) && bit(pp0, 3) && bit(pp1, 1);
}

std::uint64_t approx_4x4_accurate_sum(std::uint64_t a, std::uint64_t b) noexcept {
  a &= 0xF;
  b &= 0xF;
  return approx_4x2(a, b & 0x3) + (approx_4x2(a, b >> 2) << 2);
}

std::uint64_t accurate_4x4(std::uint64_t a, std::uint64_t b) noexcept {
  return (a & 0xF) * (b & 0xF);
}

std::uint64_t kulkarni_2x2(std::uint64_t a, std::uint64_t b) noexcept {
  a &= 0x3;
  b &= 0x3;
  return (a == 3 && b == 3) ? 7 : a * b;
}

std::uint64_t rehman_2x2(std::uint64_t a, std::uint64_t b) noexcept {
  a &= 0x3;
  b &= 0x3;
  const std::uint64_t p = a * b;
  // One-sided error of magnitude 1 on the three highest-valued products.
  return (p >= 6 && a >= 2 && b >= 2) ? p - 1 : p;
}

std::uint64_t accurate_2x2(std::uint64_t a, std::uint64_t b) noexcept {
  return (a & 0x3) * (b & 0x3);
}

}  // namespace axmult::mult
