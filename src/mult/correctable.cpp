#include "mult/correctable.hpp"

#include <stdexcept>

#include "common/bits.hpp"
#include "mult/elementary.hpp"

namespace axmult::mult {

std::uint64_t approx_4x4_correctable(std::uint64_t a, std::uint64_t b, bool enable) noexcept {
  const std::uint64_t raw = approx_4x4(a, b);
  if (!enable) return raw;
  // The conflict detector re-adds the suppressed P3 bit; since the carry
  // (generate) was already accurate, flipping P3 restores exactness.
  return approx_4x4_errs(a, b) ? raw + 8 : raw;
}

CorrectableMultiplier::CorrectableMultiplier(unsigned width, Summation summation)
    : width_(width), summation_(summation) {
  if (!is_pow2(width) || width < 4) {
    throw std::invalid_argument("CorrectableMultiplier: width must be a power of two >= 4");
  }
}

std::uint64_t CorrectableMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  return rec(a & low_mask(width_), b & low_mask(width_), width_);
}

std::uint64_t CorrectableMultiplier::rec(std::uint64_t a, std::uint64_t b, unsigned w) const {
  if (w == 4) return approx_4x4_correctable(a, b, correct_.load());
  const unsigned m = w / 2;
  const std::uint64_t pp0 = rec(a & low_mask(m), b & low_mask(m), m);
  const std::uint64_t pp1 = rec(a >> m, b & low_mask(m), m);
  const std::uint64_t pp2 = rec(a & low_mask(m), b >> m, m);
  const std::uint64_t pp3 = rec(a >> m, b >> m, m);
  if (summation_ == Summation::kAccurate) {
    return pp0 + ((pp1 + pp2) << m) + (pp3 << (2 * m));
  }
  std::uint64_t result = (pp0 & low_mask(m)) | ((pp3 >> m) << (3 * m));
  for (unsigned i = m; i < 3 * m; ++i) {
    std::uint64_t col = bit(pp0, i) ^ bit(pp1, i - m) ^ bit(pp2, i - m);
    if (i >= 2 * m) col ^= bit(pp3, i - 2 * m);
    result |= col << i;
  }
  return result;
}

std::string CorrectableMultiplier::name() const {
  return std::string(summation_ == Summation::kAccurate ? "Ca" : "Cc") + "+corr" +
         (correct_.load() ? "[on]" : "[off]") + "_" + std::to_string(width_) + "x" +
         std::to_string(width_);
}

}  // namespace axmult::mult
