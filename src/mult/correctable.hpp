// Runtime-switchable error correction (paper Section 5: "architectures
// with limited distinct errors can be easily configured to have an
// error-correction circuitry that can be turned on/off according to
// applications' requirements").
//
// The proposed 4x4 multiplier has exactly one error mechanism: the forced
// propagate on the P3 conflict (A0 & B2 & PP0<2> & PP0<3> & PP1<1>). A
// single 6-input LUT detects the conflict gated by an enable signal, and a
// second LUT flips P3 back — two extra LUTs per 4x4 module buy an exact
// multiplier on demand.
#pragma once

#include <atomic>

#include "mult/recursive.hpp"

namespace axmult::mult {

/// Behavioral model of the corrected elementary module.
/// With `enable` the result is the exact 4x4 product.
[[nodiscard]] std::uint64_t approx_4x4_correctable(std::uint64_t a, std::uint64_t b,
                                                   bool enable) noexcept;

/// A Ca/Cc-style multiplier whose elementary 4x4 modules carry the
/// correction circuit. Correction is a runtime mode switch; with
/// Summation::kAccurate and correction on, the multiplier is exact.
class CorrectableMultiplier final : public Multiplier {
 public:
  CorrectableMultiplier(unsigned width, Summation summation);

  void set_correction(bool enabled) noexcept { correct_.store(enabled); }
  [[nodiscard]] bool correction() const noexcept { return correct_.load(); }

  [[nodiscard]] std::uint64_t multiply(std::uint64_t a, std::uint64_t b) const override;
  [[nodiscard]] unsigned a_bits() const noexcept override { return width_; }
  [[nodiscard]] unsigned b_bits() const noexcept override { return width_; }
  [[nodiscard]] std::string name() const override;

 private:
  [[nodiscard]] std::uint64_t rec(std::uint64_t a, std::uint64_t b, unsigned w) const;

  unsigned width_;
  Summation summation_;
  std::atomic<bool> correct_{false};
};

}  // namespace axmult::mult
