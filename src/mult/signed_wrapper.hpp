// Signed multiplication on top of any unsigned core multiplier.
//
// The paper's library is unsigned (as are most approximate-multiplier
// libraries); DSP pipelines need signed products. The classic
// sign-magnitude wrapper costs two negations and keeps the unsigned
// core's error profile on the magnitudes — in particular the one-sided
// under-approximation of Ca/Cc becomes a magnitude shrink, so the signed
// error is always toward zero (never overshoots).
#pragma once

#include <cstdint>

#include "mult/multiplier.hpp"

namespace axmult::mult {

class SignedMultiplier {
 public:
  /// `core` multiplies magnitudes; operands must satisfy
  /// |a| < 2^core->a_bits(), |b| < 2^core->b_bits().
  explicit SignedMultiplier(MultiplierPtr core);

  [[nodiscard]] std::int64_t multiply(std::int64_t a, std::int64_t b) const;

  [[nodiscard]] const Multiplier& core() const noexcept { return *core_; }

 private:
  MultiplierPtr core_;
};

}  // namespace axmult::mult
