// Recursive construction of higher-order multipliers (paper Section 4).
//
// A 2Mx2M multiplier is assembled from four MxM sub-multipliers
//   PP0 = AL*BL, PP1 = AH*BL, PP2 = AL*BH, PP3 = AH*BH
// whose partial products are combined with either
//   * kAccurate  — exact summation on carry chains (design "Ca",
//     Fig. 5(b)), or
//   * kCarryFree — the highly-inaccurate LUT-only columnwise summation of
//     Fig. 6 (design "Cc"): P[M-1:0] and P[4M-1:3M] are taken directly
//     from PP0/PP3 and every middle column is the XOR of its three
//     contributors, with all column carries dropped.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mult/multiplier.hpp"

namespace axmult::mult {

enum class Summation : std::uint8_t {
  kAccurate,   ///< carry-chain summation — the paper's Ca
  kCarryFree,  ///< columnwise XOR summation — the paper's Cc
  kLowerOr,    ///< hybrid: low columns OR'd carry-free, rest accurate —
               ///< the "sophisticated approximate addition" extension the
               ///< paper suggests in Section 4.1 (design "Cb")
};

enum class Elementary : std::uint8_t {
  kApprox4x4,    ///< proposed approximate 4x4 (Table 3)
  kAccurate4x4,  ///< accurate 4x4 (Vivado-IP-style baseline)
  kKulkarni2x2,  ///< K [6] underdesigned 2x2
  kRehman2x2,    ///< W [19]-style 2x2
  kAccurate2x2,  ///< accurate 2x2
};

/// Width (bits) of an elementary block kind.
[[nodiscard]] unsigned elementary_width(Elementary e) noexcept;

/// Behavioral model of a recursively composed multiplier.
class RecursiveMultiplier final : public Multiplier {
 public:
  /// Behavioral model of a leaf block: exact or approximate product of two
  /// leaf-width operands (operands already masked to the leaf width).
  using LeafFn = std::function<std::uint64_t(std::uint64_t, std::uint64_t)>;

  /// `width` must be a power of two and a multiple of the elementary width.
  /// `lower_or_bits` only applies to Summation::kLowerOr: the number of
  /// middle columns (per recursion level) summed by carry-free OR.
  RecursiveMultiplier(unsigned width, Elementary elementary, Summation summation,
                      std::string display_name = {}, unsigned lower_or_bits = 0);

  /// Per-level summation: `level_summation[0]` combines the outermost
  /// (width -> width/2) level and so on down to the elementary blocks; it
  /// must have exactly log2(width / elementary_width) entries (so it is
  /// empty when width equals the elementary width). This is the
  /// configuration used by the DSE engine, where every composition level
  /// picks Ca/Cc/Cb independently.
  RecursiveMultiplier(unsigned width, Elementary elementary,
                      std::vector<Summation> level_summation, std::string display_name = {},
                      unsigned lower_or_bits = 0);

  /// Custom leaf: recursion stops at `leaf_width` and evaluates `leaf`
  /// (e.g. a LUT-INIT-perturbed module searched by the DSE engine). The
  /// elementary() accessor is meaningless for these instances.
  RecursiveMultiplier(unsigned width, unsigned leaf_width, LeafFn leaf,
                      std::vector<Summation> level_summation, std::string display_name,
                      unsigned lower_or_bits = 0);

  [[nodiscard]] std::uint64_t multiply(std::uint64_t a, std::uint64_t b) const override;
  [[nodiscard]] unsigned a_bits() const noexcept override { return width_; }
  [[nodiscard]] unsigned b_bits() const noexcept override { return width_; }
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] Elementary elementary() const noexcept { return elementary_; }
  [[nodiscard]] Summation summation() const noexcept { return summation_; }
  [[nodiscard]] unsigned lower_or_bits() const noexcept { return lower_or_bits_; }
  /// Per-level schedule, outermost first (empty = uniform summation()).
  [[nodiscard]] const std::vector<Summation>& level_summation() const noexcept {
    return levels_;
  }

 private:
  [[nodiscard]] std::uint64_t rec(std::uint64_t a, std::uint64_t b, unsigned w,
                                  unsigned level) const;
  void check_width() const;

  unsigned width_;
  Elementary elementary_;
  Summation summation_;
  std::string name_;
  unsigned lower_or_bits_ = 0;
  std::vector<Summation> levels_;  ///< empty = summation_ at every level
  unsigned leaf_width_;            ///< elementary_width(...) or custom
  LeafFn leaf_;                    ///< empty = eval the standard elementary
};

/// The paper's named configurations.
[[nodiscard]] MultiplierPtr make_ca(unsigned width);          ///< Ca: approx 4x4 + accurate sum
[[nodiscard]] MultiplierPtr make_cc(unsigned width);          ///< Cc: approx 4x4 + carry-free sum
[[nodiscard]] MultiplierPtr make_kulkarni(unsigned width);    ///< K [6]
[[nodiscard]] MultiplierPtr make_rehman_w(unsigned width);    ///< W [19]
[[nodiscard]] MultiplierPtr make_accurate(unsigned width);    ///< exact product
[[nodiscard]] MultiplierPtr make_cas(unsigned width);         ///< Ca with swapped operands
[[nodiscard]] MultiplierPtr make_ccs(unsigned width);         ///< Cc with swapped operands

/// Cb(L): approx 4x4 modules + hybrid lower-OR summation — accuracy and
/// cost between Ca and Cc (paper Section 4.1's suggested extension).
[[nodiscard]] MultiplierPtr make_cb(unsigned width, unsigned lower_or_bits);

/// Result-truncated multiplier Mult(n, k): exact product with the k least
/// significant product bits forced to zero (the paper's precision-reduced
/// baselines: Mult(8,4) in Table 5, truncated 4x4 with k = 3 in Fig. 7).
[[nodiscard]] MultiplierPtr make_result_truncated(unsigned width, unsigned zeroed_lsbs);

/// Operand-truncated multiplier: the k low bits of each operand are zeroed
/// before an exact multiplication (used in the EvoApprox-style family).
[[nodiscard]] MultiplierPtr make_operand_truncated(unsigned width, unsigned zeroed_lsbs);

/// Generic recursive configuration (any elementary x summation combination;
/// used to populate the EvoApprox-style design-space cloud of Figs. 9/10).
[[nodiscard]] MultiplierPtr make_recursive(unsigned width, Elementary elementary,
                                           Summation summation);

/// Partial-product perforation: a Ca-style composition that drops the
/// AH*BL and/or AL*BH quadrant entirely (a common ASIC approximation that
/// trades large one-sided error for area).
[[nodiscard]] MultiplierPtr make_perforated(unsigned width, bool drop_hl, bool drop_lh);

}  // namespace axmult::mult
