#include "mult/recursive.hpp"

#include <stdexcept>
#include <utility>

#include "common/bits.hpp"
#include "mult/elementary.hpp"

namespace axmult::mult {

unsigned elementary_width(Elementary e) noexcept {
  switch (e) {
    case Elementary::kApprox4x4:
    case Elementary::kAccurate4x4: return 4;
    case Elementary::kKulkarni2x2:
    case Elementary::kRehman2x2:
    case Elementary::kAccurate2x2: return 2;
  }
  return 0;
}

namespace {

std::uint64_t eval_elementary(Elementary e, std::uint64_t a, std::uint64_t b) noexcept {
  switch (e) {
    case Elementary::kApprox4x4: return approx_4x4(a, b);
    case Elementary::kAccurate4x4: return accurate_4x4(a, b);
    case Elementary::kKulkarni2x2: return kulkarni_2x2(a, b);
    case Elementary::kRehman2x2: return rehman_2x2(a, b);
    case Elementary::kAccurate2x2: return accurate_2x2(a, b);
  }
  return 0;
}

std::string default_name(unsigned width, Elementary e, Summation s) {
  std::string base;
  switch (e) {
    case Elementary::kApprox4x4:
      base = s == Summation::kAccurate ? "Ca" : (s == Summation::kCarryFree ? "Cc" : "Cb");
      break;
    case Elementary::kAccurate4x4: base = "Acc4x4Tree"; break;
    case Elementary::kKulkarni2x2: base = "K"; break;
    case Elementary::kRehman2x2: base = "W"; break;
    case Elementary::kAccurate2x2: base = "Acc2x2Tree"; break;
  }
  return base + "_" + std::to_string(width) + "x" + std::to_string(width);
}

}  // namespace

RecursiveMultiplier::RecursiveMultiplier(unsigned width, Elementary elementary,
                                         Summation summation, std::string display_name,
                                         unsigned lower_or_bits)
    : width_(width),
      elementary_(elementary),
      summation_(summation),
      name_(display_name.empty() ? default_name(width, elementary, summation)
                                 : std::move(display_name)),
      lower_or_bits_(lower_or_bits),
      leaf_width_(elementary_width(elementary)) {
  check_width();
}

RecursiveMultiplier::RecursiveMultiplier(unsigned width, Elementary elementary,
                                         std::vector<Summation> level_summation,
                                         std::string display_name, unsigned lower_or_bits)
    : width_(width),
      elementary_(elementary),
      summation_(level_summation.empty() ? Summation::kAccurate : level_summation.front()),
      name_(display_name.empty() ? default_name(width, elementary, summation_)
                                 : std::move(display_name)),
      lower_or_bits_(lower_or_bits),
      levels_(std::move(level_summation)),
      leaf_width_(elementary_width(elementary)) {
  check_width();
}

RecursiveMultiplier::RecursiveMultiplier(unsigned width, unsigned leaf_width, LeafFn leaf,
                                         std::vector<Summation> level_summation,
                                         std::string display_name, unsigned lower_or_bits)
    : width_(width),
      elementary_(Elementary::kApprox4x4),  // unused: leaf_ takes precedence
      summation_(level_summation.empty() ? Summation::kAccurate : level_summation.front()),
      name_(std::move(display_name)),
      lower_or_bits_(lower_or_bits),
      levels_(std::move(level_summation)),
      leaf_width_(leaf_width),
      leaf_(std::move(leaf)) {
  if (!leaf_) throw std::invalid_argument("RecursiveMultiplier: null custom leaf");
  check_width();
}

void RecursiveMultiplier::check_width() const {
  if (!is_pow2(width_) || !is_pow2(leaf_width_) || width_ < leaf_width_) {
    throw std::invalid_argument("RecursiveMultiplier: width must be a power of two >= " +
                                std::to_string(leaf_width_));
  }
  if (!levels_.empty() || leaf_) {
    unsigned depth = 0;
    for (unsigned w = width_; w > leaf_width_; w /= 2) ++depth;
    if (!levels_.empty() && levels_.size() != depth) {
      throw std::invalid_argument("RecursiveMultiplier: level_summation needs " +
                                  std::to_string(depth) + " entries");
    }
  }
}

std::uint64_t RecursiveMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  return rec(a & low_mask(width_), b & low_mask(width_), width_, 0);
}

std::uint64_t RecursiveMultiplier::rec(std::uint64_t a, std::uint64_t b, unsigned w,
                                       unsigned level) const {
  if (w == leaf_width_) {
    return leaf_ ? leaf_(a, b) : eval_elementary(elementary_, a, b);
  }
  const Summation summation = levels_.empty() ? summation_ : levels_[level];
  const unsigned m = w / 2;
  const std::uint64_t al = a & low_mask(m);
  const std::uint64_t ah = a >> m;
  const std::uint64_t bl = b & low_mask(m);
  const std::uint64_t bh = b >> m;
  const std::uint64_t pp0 = rec(al, bl, m, level + 1);
  const std::uint64_t pp1 = rec(ah, bl, m, level + 1);
  const std::uint64_t pp2 = rec(al, bh, m, level + 1);
  const std::uint64_t pp3 = rec(ah, bh, m, level + 1);

  if (summation == Summation::kAccurate) {
    return pp0 + ((pp1 + pp2) << m) + (pp3 << (2 * m));
  }

  if (summation == Summation::kLowerOr) {
    // Hybrid summation: relative columns [0, L) of the middle section are
    // OR'd without carries; the remaining columns are summed accurately
    // (the carry into the accurate section is dropped at the boundary).
    const unsigned L = std::min(lower_or_bits_, 2 * m);
    // X = PP0's high half and (disjointly, from relative column m) PP3.
    const std::uint64_t x = (pp0 >> m) + (pp3 << m);
    std::uint64_t mid = 0;
    for (unsigned c = 0; c < L; ++c) {
      mid |= (bit(x, c) | bit(pp1, c) | bit(pp2, c)) << c;
    }
    const std::uint64_t hi = ((x >> L) + (pp1 >> L) + (pp2 >> L)) << L;
    return (pp0 & low_mask(m)) | (((mid | hi) & low_mask(3 * m)) << m);
  }

  // Carry-free columnwise summation (Fig. 6). The low M bits come straight
  // from PP0 and the top M bits straight from PP3; every middle column is
  // the XOR of its (up to three) contributors.
  std::uint64_t result = (pp0 & low_mask(m)) | ((pp3 >> m) << (3 * m));
  for (unsigned i = m; i < 3 * m; ++i) {
    std::uint64_t col = bit(pp0, i) ^ bit(pp1, i - m) ^ bit(pp2, i - m);
    if (i >= 2 * m) col ^= bit(pp3, i - 2 * m);
    result |= col << i;
  }
  return result;
}

namespace {

/// Fixed-function wrapper for exact / truncated products.
class SimpleMultiplier final : public Multiplier {
 public:
  using Fn = std::uint64_t (*)(std::uint64_t, std::uint64_t, unsigned, unsigned);
  SimpleMultiplier(unsigned width, unsigned param, std::string name, Fn fn)
      : width_(width), param_(param), name_(std::move(name)), fn_(fn) {}

  [[nodiscard]] std::uint64_t multiply(std::uint64_t a, std::uint64_t b) const override {
    return fn_(a & low_mask(width_), b & low_mask(width_), width_, param_);
  }
  [[nodiscard]] unsigned a_bits() const noexcept override { return width_; }
  [[nodiscard]] unsigned b_bits() const noexcept override { return width_; }
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  unsigned width_;
  unsigned param_;
  std::string name_;
  Fn fn_;
};

}  // namespace

MultiplierPtr make_ca(unsigned width) {
  return std::make_shared<RecursiveMultiplier>(width, Elementary::kApprox4x4,
                                               Summation::kAccurate);
}

MultiplierPtr make_cc(unsigned width) {
  return std::make_shared<RecursiveMultiplier>(width, Elementary::kApprox4x4,
                                               Summation::kCarryFree);
}

MultiplierPtr make_kulkarni(unsigned width) {
  return std::make_shared<RecursiveMultiplier>(width, Elementary::kKulkarni2x2,
                                               Summation::kAccurate);
}

MultiplierPtr make_rehman_w(unsigned width) {
  return std::make_shared<RecursiveMultiplier>(width, Elementary::kRehman2x2,
                                               Summation::kAccurate);
}

MultiplierPtr make_accurate(unsigned width) {
  return std::make_shared<SimpleMultiplier>(
      width, 0, "Accurate_" + std::to_string(width) + "x" + std::to_string(width),
      +[](std::uint64_t a, std::uint64_t b, unsigned, unsigned) { return a * b; });
}

MultiplierPtr make_cb(unsigned width, unsigned lower_or_bits) {
  return std::make_shared<RecursiveMultiplier>(
      width, Elementary::kApprox4x4, Summation::kLowerOr,
      "Cb" + std::to_string(lower_or_bits) + "_" + std::to_string(width) + "x" +
          std::to_string(width),
      lower_or_bits);
}

MultiplierPtr make_cas(unsigned width) {
  return std::make_shared<SwappedMultiplier>(make_ca(width));
}

MultiplierPtr make_ccs(unsigned width) {
  return std::make_shared<SwappedMultiplier>(make_cc(width));
}

MultiplierPtr make_result_truncated(unsigned width, unsigned zeroed_lsbs) {
  return std::make_shared<SimpleMultiplier>(
      width, zeroed_lsbs,
      "Mult(" + std::to_string(width) + "," + std::to_string(zeroed_lsbs) + ")",
      +[](std::uint64_t a, std::uint64_t b, unsigned, unsigned k) {
        return (a * b) & ~low_mask(k);
      });
}

MultiplierPtr make_recursive(unsigned width, Elementary elementary, Summation summation) {
  return std::make_shared<RecursiveMultiplier>(width, elementary, summation);
}

namespace {

/// Top-level partial-product perforation over approx-4x4-based halves.
class PerforatedMultiplier final : public Multiplier {
 public:
  PerforatedMultiplier(unsigned width, bool drop_hl, bool drop_lh)
      : width_(width),
        half_(width / 2, Elementary::kApprox4x4, Summation::kAccurate),
        drop_hl_(drop_hl),
        drop_lh_(drop_lh) {}

  [[nodiscard]] std::uint64_t multiply(std::uint64_t a, std::uint64_t b) const override {
    const unsigned m = width_ / 2;
    a &= low_mask(width_);
    b &= low_mask(width_);
    const std::uint64_t al = a & low_mask(m);
    const std::uint64_t ah = a >> m;
    const std::uint64_t bl = b & low_mask(m);
    const std::uint64_t bh = b >> m;
    std::uint64_t p = half_.multiply(al, bl) + (half_.multiply(ah, bh) << (2 * m));
    if (!drop_hl_) p += half_.multiply(ah, bl) << m;
    if (!drop_lh_) p += half_.multiply(al, bh) << m;
    return p;
  }
  [[nodiscard]] unsigned a_bits() const noexcept override { return width_; }
  [[nodiscard]] unsigned b_bits() const noexcept override { return width_; }
  [[nodiscard]] std::string name() const override {
    std::string tag = drop_hl_ && drop_lh_ ? "HL+LH" : (drop_hl_ ? "HL" : "LH");
    return "Perf(" + std::to_string(width_) + ",-" + tag + ")";
  }

 private:
  unsigned width_;
  RecursiveMultiplier half_;
  bool drop_hl_;
  bool drop_lh_;
};

}  // namespace

MultiplierPtr make_perforated(unsigned width, bool drop_hl, bool drop_lh) {
  return std::make_shared<PerforatedMultiplier>(width, drop_hl, drop_lh);
}

MultiplierPtr make_operand_truncated(unsigned width, unsigned zeroed_lsbs) {
  return std::make_shared<SimpleMultiplier>(
      width, zeroed_lsbs,
      "OpTrunc(" + std::to_string(width) + "," + std::to_string(zeroed_lsbs) + ")",
      +[](std::uint64_t a, std::uint64_t b, unsigned, unsigned k) {
        return (a & ~low_mask(k)) * (b & ~low_mask(k));
      });
}

}  // namespace axmult::mult
