// Elementary multiplier modules (paper Sections 2-3).
//
// These are the closed-form behavioral models of the smallest building
// blocks. Each function documents the approximation it introduces and the
// error bound the paper claims; tests/mult_elementary_test.cpp pins all of
// the claims.
#pragma once

#include <cstdint>

namespace axmult::mult {

/// Accurate 4x2 product (a: 4 bits, b: 2 bits) — paper eqs. (1)-(6).
[[nodiscard]] std::uint64_t accurate_4x2(std::uint64_t a, std::uint64_t b) noexcept;

/// Proposed approximate 4x2 multiplier (Section 3.1): product bit P0 is
/// truncated so the six product bits fit in four LUT6_2s (one slice).
/// Error: magnitude 1 whenever A0&B0, i.e. exactly 25% of inputs.
[[nodiscard]] std::uint64_t approx_4x2(std::uint64_t a, std::uint64_t b) noexcept;

/// Proposed approximate, asymmetric 4x4 multiplier (Section 3.2, Table 3).
///
/// Built from two approx_4x2 modules plus a single carry chain:
///  * P0 and P2 are recovered accurately by the LUT saved through implicit
///    Prop3/Gen3 generation,
///  * the only remaining approximation is at P3: when A0, B2, PP0<2>,
///    PP0<3> and PP1<1> are simultaneously 1, the propagate signal is
///    forced to 0 (the generate signal stays correct), giving exactly six
///    erroneous input pairs, each with fixed error magnitude 8.
[[nodiscard]] std::uint64_t approx_4x4(std::uint64_t a, std::uint64_t b) noexcept;

/// True iff (a, b) is one of the six error cases of approx_4x4 (Table 2).
[[nodiscard]] bool approx_4x4_errs(std::uint64_t a, std::uint64_t b) noexcept;

/// Ablation variant (Section 3.2, Fig. 3 black box): the same two
/// approximate 4x2 partial products but summed *accurately* on two carry
/// chains. Average relative error 0.049, error probability 0.375.
[[nodiscard]] std::uint64_t approx_4x4_accurate_sum(std::uint64_t a, std::uint64_t b) noexcept;

/// Ablation variant: contain the P3 conflict by computing the *propagate*
/// signal correctly and zeroing the generate signal instead. The sum bit
/// becomes correct but the carry is lost, doubling the error magnitude to
/// 16 — this is why the paper keeps the generate signal accurate.
[[nodiscard]] std::uint64_t approx_4x4_prop_only(std::uint64_t a, std::uint64_t b) noexcept;

/// Accurate 4x4 product (elementary block of the Vivado-IP-style models).
[[nodiscard]] std::uint64_t accurate_4x4(std::uint64_t a, std::uint64_t b) noexcept;

/// Kulkarni et al. underdesigned 2x2 block ("K", [6]): 3x3 -> 7 (binary
/// 111 instead of 1001), shaving the fourth product bit; all other inputs
/// are exact. Error magnitude 2 with probability 1/16.
[[nodiscard]] std::uint64_t kulkarni_2x2(std::uint64_t a, std::uint64_t b) noexcept;

/// Rehman et al. ICCAD'16-style approximate 2x2 block ("W", [19]):
/// 2x3 -> 5, 3x2 -> 5, 3x3 -> 8. Max error 1 with probability 3/16.
/// Recursively composed, this reproduces every Table 5 anchor for W:
/// max 7225 = 85^2, mean 3/16 * 7225 = 1354.6875, 53375 erroneous inputs
/// and 31 maximum-error occurrences.
[[nodiscard]] std::uint64_t rehman_2x2(std::uint64_t a, std::uint64_t b) noexcept;

/// Accurate 2x2 product.
[[nodiscard]] std::uint64_t accurate_2x2(std::uint64_t a, std::uint64_t b) noexcept;

}  // namespace axmult::mult
