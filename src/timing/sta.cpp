#include "timing/sta.hpp"

#include "fabric/lut6.hpp"

#include <algorithm>
#include <limits>

namespace axmult::timing {

using fabric::Cell;
using fabric::CellKind;
using fabric::kNetGnd;
using fabric::kNetVcc;
using fabric::kNoNet;
using fabric::NetId;

namespace {

constexpr double kNever = -1.0;  ///< arrival of constants / undriven nets

struct Arrivals {
  std::vector<double> t;        ///< arrival time at each net's driver pin
  std::vector<NetId> pred;      ///< predecessor net on the longest path
  std::vector<std::string> via; ///< element traversed to reach the net
};

double net_delay(const DelayModel& m, std::uint32_t fanout) {
  const double d = m.net_base_ns + m.net_per_fanout_ns * (fanout > 0 ? fanout - 1 : 0);
  return std::min(d, m.net_max_ns);
}

}  // namespace

TimingReport analyze(const fabric::Netlist& nl, const DelayModel& model) {
  const auto order = nl.topo_order();
  const auto fanout = nl.fanout();
  Arrivals arr;
  arr.t.assign(nl.net_count(), kNever);
  arr.pred.assign(nl.net_count(), kNoNet);
  arr.via.assign(nl.net_count(), {});

  for (NetId in : nl.inputs()) {
    arr.t[in] = model.ibuf_ns;
    arr.via[in] = "IBUF " + nl.net_name(in);
  }

  // Arrival of a signal at a consuming cell pin: driver arrival plus the
  // routed-net delay (constants and unconnected pins never contribute).
  auto at_pin = [&](NetId n, bool dedicated = false) {
    if (n == kNoNet || n == kNetGnd || n == kNetVcc) return kNever;
    if (arr.t[n] < 0) return kNever;
    return dedicated ? arr.t[n] : arr.t[n] + net_delay(model, fanout[n]);
  };

  auto improve = [&](NetId out, double t, NetId from, const std::string& via) {
    if (out == kNoNet) return;
    if (t > arr.t[out]) {
      arr.t[out] = t;
      arr.pred[out] = from;
      arr.via[out] = via;
    }
  };

  const auto& cells = nl.cells();
  for (std::uint32_t ci : order) {
    const Cell& c = cells[ci];
    switch (c.kind) {
      case CellKind::kLut6: {
        // Each output only waits on the pins in its true support set,
        // otherwise dual-output idioms (e.g. the ternary adder, whose O5
        // ignores the carry-save pin) would report false ripple paths.
        auto worst_over = [&](unsigned support) {
          std::pair<double, NetId> w{kNever, kNoNet};
          for (unsigned p = 0; p < 6; ++p) {
            if (!(support & (1u << p))) continue;
            const double t = at_pin(c.in[p]);
            if (t > w.first) w = {t, c.in[p]};
          }
          return w;
        };
        const double lut_ns = model.lut_ns + (c.reconfigurable ? model.cfglut_ns : 0.0);
        const auto [t6, n6] = worst_over(fabric::lut_support_o6(c.init));
        improve(c.out[0], std::max(t6, 0.0) + lut_ns, n6, c.name);
        if (c.out[1] != kNoNet) {
          const auto [t5, n5] = worst_over(fabric::lut_support_o5(c.init));
          improve(c.out[1], std::max(t5, 0.0) + lut_ns, n5, c.name);
        }
        break;
      }
      case CellKind::kCarry4: {
        // in[0] = CIN (dedicated CO->CIN route), in[1..4] = S, in[5..8] = DI.
        // Carry at stage i arrives from the running carry (one MUXCY hop)
        // or from this stage's S/DI entry.
        double carry = at_pin(c.in[0], /*dedicated=*/true);
        NetId carry_from = c.in[0];
        for (unsigned i = 0; i < 4; ++i) {
          const double s_t = at_pin(c.in[1 + i]);
          const double di_t = at_pin(c.in[5 + i]);
          // Sum output O_i = S_i XOR carry_(i-1).
          double o_t = std::max(s_t + model.carry_in_ns, carry + model.carry_mux_ns);
          NetId o_from = s_t + model.carry_in_ns >= carry + model.carry_mux_ns
                             ? c.in[1 + i]
                             : carry_from;
          improve(c.out[i], std::max(o_t, 0.0) + model.carry_out_ns, o_from,
                  c.name + ".O" + std::to_string(i));
          // Next carry via MUXCY.
          const double entry = std::max(s_t, di_t) + model.carry_in_ns;
          const double through = carry + model.carry_mux_ns;
          if (entry >= through) {
            carry = entry;
            carry_from = s_t >= di_t ? c.in[1 + i] : c.in[5 + i];
          } else {
            carry = through;
          }
          carry = std::max(carry, 0.0);
          // CO taps: dedicated when feeding the next CARRY4, otherwise the
          // consumer-side at_pin adds routing. Exit cost is charged here
          // only for fabric consumers; the dedicated CIN path bypasses it
          // via at_pin(..., dedicated) reading arr.t directly, so we store
          // the raw carry time and let LUT consumers add net delay.
          improve(c.out[4 + i], carry, carry_from, c.name + ".CO" + std::to_string(i));
        }
        break;
      }
      case CellKind::kFdre: {
        improve(c.out[0], model.ff_clk2q_ns, kNoNet, c.name + " (clk-to-Q)");
        break;
      }
      case CellKind::kDsp: {
        double worst = kNever;
        NetId worst_net = kNoNet;
        for (NetId in : c.in) {
          const double t = at_pin(in) + model.dsp_route_ns;
          if (t > worst) {
            worst = t;
            worst_net = in;
          }
        }
        const double out_t = std::max(worst, 0.0) + model.dsp_ns;
        for (NetId out : c.out) improve(out, out_t, worst_net, c.name);
        break;
      }
    }
  }

  TimingReport report;
  // Flip-flop D pins are timing endpoints (register-to-register / input-
  // to-register paths); their requirement includes the setup time.
  for (const Cell& c : cells) {
    if (c.kind != CellKind::kFdre) continue;
    const double t = at_pin(c.in[0]) + model.ff_setup_ns;
    if (t > report.critical_path_ns) {
      report.critical_path_ns = t;
      report.critical_output = c.name + ".D";
      report.path.clear();
      NetId cur = c.in[0];
      while (cur != kNoNet) {
        report.path.push_back({arr.via[cur].empty() ? nl.net_name(cur) : arr.via[cur],
                               arr.t[cur] < 0 ? 0.0 : arr.t[cur]});
        cur = arr.pred[cur];
      }
      std::reverse(report.path.begin(), report.path.end());
    }
  }
  const auto& outs = nl.outputs();
  const auto& names = nl.output_names();
  for (std::size_t i = 0; i < outs.size(); ++i) {
    const NetId n = outs[i];
    const double t =
        (arr.t[n] < 0 ? 0.0 : arr.t[n] + net_delay(model, fanout[n])) + model.obuf_ns;
    if (t > report.critical_path_ns) {
      report.critical_path_ns = t;
      report.critical_output = names[i];
      report.path.clear();
      NetId cur = n;
      while (cur != kNoNet) {
        report.path.push_back({arr.via[cur].empty() ? nl.net_name(cur) : arr.via[cur],
                               arr.t[cur] < 0 ? 0.0 : arr.t[cur]});
        cur = arr.pred[cur];
      }
      std::reverse(report.path.begin(), report.path.end());
    }
  }
  return report;
}

}  // namespace axmult::timing
