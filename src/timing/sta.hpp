// Static timing analysis over fabric netlists.
//
// This is the latency half of the Vivado substitution. The delay library
// is calibrated against Virtex-7 (-2 speed grade) style numbers so that
// the absolute values land in the same few-nanosecond range the paper
// reports (Table 4); what the model guarantees structurally is the
// *composition*: IBUF/OBUF boundary costs, one LUT delay per logic level,
// a fanout-dependent net delay per routed connection, a fast per-bit MUXCY
// hop along carry chains, and a penalty for reaching a DSP column.
#pragma once

#include <string>
#include <vector>

#include "fabric/netlist.hpp"

namespace axmult::timing {

struct DelayModel {
  double ibuf_ns = 0.95;            ///< input buffer + pad
  double obuf_ns = 1.90;            ///< output buffer + pad
  double lut_ns = 0.124;            ///< LUT6 logic delay (UG474 ballpark)
  /// Extra logic delay on LUTs marked runtime-reconfigurable (CFGLUT5-style
  /// shift-register LUT: CDI mux + deeper read path). Zero by default so
  /// static designs are unaffected; src/adapt passes a nonzero penalty.
  double cfglut_ns = 0.0;
  double net_base_ns = 0.45;        ///< routed net, fanout 1
  double net_per_fanout_ns = 0.04;  ///< additional delay per extra load
  double net_max_ns = 1.10;         ///< routing congestion cap
  double carry_in_ns = 0.25;        ///< S/DI entry into the carry chain
  double carry_mux_ns = 0.045;      ///< per-bit MUXCY hop
  double carry_out_ns = 0.22;       ///< O/CO exit back into fabric routing
  double dsp_ns = 3.35;             ///< combinational pass through DSP48
  double dsp_route_ns = 1.60;       ///< placement penalty to the DSP column
  double ff_clk2q_ns = 0.45;        ///< flip-flop clock-to-Q
  double ff_setup_ns = 0.10;        ///< flip-flop setup requirement
};

struct PathElement {
  std::string point;  ///< cell or port name
  double arrival_ns = 0.0;
};

struct TimingReport {
  /// Worst endpoint arrival: primary outputs (incl. OBUF) and flip-flop D
  /// pins (incl. setup). For a pipelined netlist this is the minimum
  /// usable clock period.
  double critical_path_ns = 0.0;
  std::string critical_output;
  std::vector<PathElement> path;  ///< driver chain of the critical output

  [[nodiscard]] double fmax_mhz() const noexcept {
    return critical_path_ns > 0 ? 1000.0 / critical_path_ns : 0.0;
  }
};

/// Longest-path analysis. Throws on combinational loops.
[[nodiscard]] TimingReport analyze(const fabric::Netlist& nl, const DelayModel& model = {});

}  // namespace axmult::timing
