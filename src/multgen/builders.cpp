#include "multgen/builders.hpp"

#include <array>
#include <stdexcept>

#include "fabric/lut6.hpp"

namespace axmult::multgen {

using fabric::kNetGnd;
using fabric::kNetVcc;
using fabric::kNoNet;
using fabric::NetId;
using fabric::Netlist;

NetId bit_or_gnd(const BitVec& v, std::size_t i) { return i < v.size() ? v[i] : kNetGnd; }

BitVec shifted(const BitVec& v, unsigned k) {
  BitVec out(k, kNetGnd);
  out.insert(out.end(), v.begin(), v.end());
  return out;
}

ChainSum build_carry_chain(Netlist& nl, NetId cin, const BitVec& props, const BitVec& dis,
                           const std::string& prefix) {
  if (props.size() != dis.size()) {
    throw std::invalid_argument("build_carry_chain: props/dis size mismatch");
  }
  ChainSum result;
  result.sum.reserve(props.size());
  NetId carry = cin;
  for (std::size_t base = 0; base < props.size(); base += 4) {
    std::array<NetId, 4> s{kNetGnd, kNetGnd, kNetGnd, kNetGnd};
    std::array<NetId, 4> di{kNetGnd, kNetGnd, kNetGnd, kNetGnd};
    const std::size_t n = std::min<std::size_t>(4, props.size() - base);
    for (std::size_t i = 0; i < n; ++i) {
      s[i] = props[base + i];
      di[i] = dis[base + i];
    }
    const auto cc = nl.add_carry4(prefix + ".cc" + std::to_string(base / 4), carry, s, di);
    for (std::size_t i = 0; i < n; ++i) result.sum.push_back(cc.o[i]);
    carry = cc.co[n - 1];
  }
  result.cout = carry;
  return result;
}

BitVec build_binary_add(Netlist& nl, const BitVec& x, const BitVec& y, unsigned out_width,
                        const std::string& prefix) {
  // Per bit (I5 tied high): O6 = x ^ y (propagate -> S), O5 = x (-> DI;
  // valid generate because propagate 0 implies x == y == x AND y).
  static const std::uint64_t init = fabric::init_from_o5_o6(
      [](const std::array<unsigned, 5>& in) { return in[0] != 0; },
      [](const std::array<unsigned, 5>& in) { return (in[0] ^ in[1]) != 0; });
  BitVec props;
  BitVec dis;
  props.reserve(out_width);
  dis.reserve(out_width);
  for (unsigned i = 0; i < out_width; ++i) {
    const auto lut = nl.add_lut6(prefix + ".pg" + std::to_string(i), init,
                                 {bit_or_gnd(x, i), bit_or_gnd(y, i), kNetGnd, kNetGnd,
                                  kNetGnd, kNetVcc},
                                 /*with_o5=*/true);
    props.push_back(lut.o6);
    dis.push_back(lut.o5);
  }
  return build_carry_chain(nl, kNetGnd, props, dis, prefix).sum;
}

BitVec build_ternary_add(Netlist& nl, const BitVec& x, const BitVec& y, const BitVec& z,
                         unsigned out_width, const std::string& prefix) {
  // Carry-save decomposition s_i = x^y^z, w_i = maj(x,y,z); the carry
  // chain then adds s + (w << 1). One LUT6_2 per bit with I5 tied high:
  //   I0..I2 = column bits, I3 = w_(i-1) (previous column's O5)
  //   O6 = x ^ y ^ z ^ w_(i-1)   (propagate -> S)
  //   O5 = maj(x, y, z) = w_i    (routed to the next LUT's I3)
  //   DI = w_(i-1) via the slice bypass pin (generate: when the propagate
  //   is 0, s_i == w_(i-1), so w_(i-1) equals the column's carry AND).
  static const std::uint64_t init = fabric::init_from_o5_o6(
      [](const std::array<unsigned, 5>& in) { return (in[0] + in[1] + in[2]) >= 2; },
      [](const std::array<unsigned, 5>& in) { return (in[0] ^ in[1] ^ in[2] ^ in[3]) != 0; });
  BitVec props;
  BitVec dis;
  props.reserve(out_width);
  dis.reserve(out_width);
  NetId w_prev = kNetGnd;
  for (unsigned i = 0; i < out_width; ++i) {
    const auto lut = nl.add_lut6(prefix + ".ts" + std::to_string(i), init,
                                 {bit_or_gnd(x, i), bit_or_gnd(y, i), bit_or_gnd(z, i),
                                  w_prev, kNetGnd, kNetVcc},
                                 /*with_o5=*/true);
    props.push_back(lut.o6);
    dis.push_back(w_prev);
    w_prev = lut.o5;
  }
  return build_carry_chain(nl, kNetGnd, props, dis, prefix).sum;
}

namespace {

/// Shared implementation of the single-LUT column reducers.
NetId build_column(Netlist& nl, const BitVec& column_bits, const std::string& name,
                   std::uint64_t init) {
  BitVec live;
  for (NetId n : column_bits) {
    if (n != kNetGnd && n != kNoNet) live.push_back(n);
  }
  if (live.empty()) return kNetGnd;
  if (live.size() == 1) return live[0];
  if (live.size() > 6) throw std::invalid_argument("build_column: too many bits");
  std::array<NetId, 6> pins{kNetGnd, kNetGnd, kNetGnd, kNetGnd, kNetGnd, kNetGnd};
  for (std::size_t i = 0; i < live.size(); ++i) pins[i] = live[i];
  return nl.add_lut6(name, init, pins).o6;
}

}  // namespace

NetId build_xor_column(Netlist& nl, const BitVec& column_bits, const std::string& name) {
  static const std::uint64_t init =
      fabric::init_from_o6([](const std::array<unsigned, 6>& in) {
        return (in[0] ^ in[1] ^ in[2] ^ in[3] ^ in[4] ^ in[5]) != 0;
      });
  return build_column(nl, column_bits, name, init);
}

NetId build_or_column(Netlist& nl, const BitVec& column_bits, const std::string& name) {
  static const std::uint64_t init =
      fabric::init_from_o6([](const std::array<unsigned, 6>& in) {
        return (in[0] | in[1] | in[2] | in[3] | in[4] | in[5]) != 0;
      });
  return build_column(nl, column_bits, name, init);
}

}  // namespace axmult::multgen
