// Structural netlist generators for every multiplier in the library.
//
// The proposed 4x4 multiplier is instantiated verbatim from the paper's
// Table 3 (LUT pin assignments and INIT values); everything else is
// composed from the builders in builders.hpp. Each generator produces a
// netlist with inputs a0..a(n-1), b0..b(n-1) and outputs p0..p(2n-1), so
// fabric::Evaluator::eval_word computes the product directly and the
// equivalence tests can compare against the behavioral models bit-for-bit.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fabric/netlist.hpp"
#include "multgen/builders.hpp"
#include "mult/recursive.hpp"

namespace axmult::multgen {

/// How ASIC-ported baselines (K, W) are assumed to reach the fabric.
/// Our designs and the Vivado-IP models are hand-mapped (dual-output LUT
/// packing); baseline RTL synthesized by Vivado typically spends one LUT
/// per non-trivial block output (calibrated against the paper's Fig. 7).
enum class MappingStyle : std::uint8_t { kHandOptimized, kSynthesized };

// ---- elementary fragments (operate on an existing netlist) --------------

/// Table 3: the proposed approximate 4x4 multiplier — 12 LUTs + 1 CARRY4.
[[nodiscard]] BitVec build_approx_4x4(fabric::Netlist& nl, const BitVec& a, const BitVec& b,
                                      const std::string& prefix);

/// Accurate 4x2 partial-product block — 5 LUTs (P1/P2 dual-packed).
[[nodiscard]] BitVec build_accurate_4x2(fabric::Netlist& nl, const BitVec& a, const BitVec& b,
                                        const std::string& prefix);

/// Proposed approximate 4x2 block (Section 3.1) — 4 LUTs (one slice).
[[nodiscard]] BitVec build_approx_4x2(fabric::Netlist& nl, const BitVec& a, const BitVec& b,
                                      const std::string& prefix);

/// Accurate 4x4 (two accurate 4x2 + carry-chain summation) — 16 LUTs.
[[nodiscard]] BitVec build_accurate_4x4(fabric::Netlist& nl, const BitVec& a, const BitVec& b,
                                        const std::string& prefix);

/// Kulkarni-style approximate 2x2 block (3 product bits).
[[nodiscard]] BitVec build_kulkarni_2x2(fabric::Netlist& nl, const BitVec& a, const BitVec& b,
                                        MappingStyle style, const std::string& prefix);

/// Rehman-style approximate 2x2 block (4 product bits).
[[nodiscard]] BitVec build_rehman_2x2(fabric::Netlist& nl, const BitVec& a, const BitVec& b,
                                      MappingStyle style, const std::string& prefix);

/// Accurate 2x2 block (4 product bits).
[[nodiscard]] BitVec build_accurate_2x2(fabric::Netlist& nl, const BitVec& a, const BitVec& b,
                                        MappingStyle style, const std::string& prefix);

// ---- recursive composition ----------------------------------------------

struct GeneratorSpec {
  unsigned width = 8;
  mult::Elementary elementary = mult::Elementary::kApprox4x4;
  mult::Summation summation = mult::Summation::kAccurate;
  MappingStyle style = MappingStyle::kHandOptimized;
  /// Accurate summation idiom: true = single-pass ternary carry chain (the
  /// paper's Fig. 5(b) FPGA-specific trick); false = conventional two-level
  /// binary adder tree (what IP generators and ASIC-ported RTL produce).
  bool ternary_sum = true;
  /// For Summation::kLowerOr: middle columns (per level) OR'd carry-free.
  unsigned lower_or_bits = 0;
  /// Insert a register stage after every recursion level (including the
  /// elementary modules): latency = log2(width/4) + 1 cycles, minimum
  /// clock period = one level of logic.
  bool pipelined = false;
  /// Per-level summation override, outermost (width -> width/2) first.
  /// When non-empty it must have one entry per composition level and takes
  /// precedence over `summation` (the DSE engine explores mixed Ca/Cc/Cb
  /// schedules this way). `lower_or_bits` still applies to every kLowerOr
  /// level.
  std::vector<mult::Summation> level_summation;
  /// Custom elementary fragment (used by the DSE engine for LUT-INIT
  /// perturbed modules): when set, the recursion stops at
  /// `custom_leaf_width` (a power of two) and instantiates this builder
  /// instead of `elementary`. The builder must return 2*custom_leaf_width
  /// product bits for custom_leaf_width-bit operand slices.
  unsigned custom_leaf_width = 0;
  std::function<BitVec(fabric::Netlist&, const BitVec&, const BitVec&, const std::string&)>
      custom_elementary;
};

/// Recursively composes a width x width multiplier fragment (Section 4).
[[nodiscard]] BitVec build_recursive(fabric::Netlist& nl, const BitVec& a, const BitVec& b,
                                     const GeneratorSpec& spec, const std::string& prefix);

// ---- complete netlists ---------------------------------------------------

/// Wraps a fragment builder with primary I/O declarations.
[[nodiscard]] fabric::Netlist make_netlist(const GeneratorSpec& spec);

/// Declares a0..a(width-1), b0..b(width-1) inputs, runs `body`, and
/// declares its result bits as outputs p0..p(k-1) — the I/O convention all
/// the sweep/equivalence machinery expects. Exposed for composed designs
/// (operand swap, truncation, wrappers) built outside this file.
[[nodiscard]] fabric::Netlist wrap_netlist(
    unsigned width, const std::function<BitVec(fabric::Netlist&, const BitVec&, const BitVec&)>& body);

[[nodiscard]] fabric::Netlist make_ca_netlist(unsigned width);
[[nodiscard]] fabric::Netlist make_cc_netlist(unsigned width);
[[nodiscard]] fabric::Netlist make_kulkarni_netlist(unsigned width);

/// Cb(L): hybrid lower-OR summation (see mult::make_cb).
[[nodiscard]] fabric::Netlist make_cb_netlist(unsigned width, unsigned lower_or_bits);

/// Registers every bit of `bits` through FDREs (one pipeline stage).
[[nodiscard]] BitVec register_bits(fabric::Netlist& nl, const BitVec& bits,
                                   const std::string& prefix);

/// Pipelined Ca/Cc multiplier; see GeneratorSpec::pipelined. The result
/// appears `pipeline_latency(width)` cycles after the operands.
[[nodiscard]] fabric::Netlist make_pipelined_netlist(unsigned width, mult::Summation summation);

/// Cycles from operand to product for the pipelined generators.
[[nodiscard]] unsigned pipeline_latency(unsigned width);

/// Multiply-accumulate unit: acc <= acc + multiply(a, b) every cycle
/// (registered feedback accumulator, `acc_bits` wide, wraps modulo
/// 2^acc_bits). Outputs the accumulator value *before* the clock edge.
[[nodiscard]] fabric::Netlist make_mac_netlist(unsigned width, mult::Summation summation,
                                               unsigned acc_bits);
[[nodiscard]] fabric::Netlist make_rehman_netlist(unsigned width);

/// Vivado-IP-style accurate soft multiplier, speed-optimized: accurate 4x4
/// blocks + single-pass ternary summation (shallow).
[[nodiscard]] fabric::Netlist make_vivado_speed_netlist(unsigned width);

/// Radix-4 accurate soft multiplier: B is consumed two bits per row; each
/// row selects {0, A, 2A, 3A} with one LUT per bit (3A precomputed once),
/// and the half-count of rows is summed on ternary carry chains. A third
/// IP-style architecture point between the speed and area variants.
[[nodiscard]] fabric::Netlist make_radix4_netlist(unsigned width);

/// Vivado-IP-style accurate soft multiplier, area-optimized: row-by-row
/// shift-add array (one carry-chain row per multiplier bit — fewer LUTs on
/// odd widths, much longer critical path).
[[nodiscard]] fabric::Netlist make_vivado_area_netlist(unsigned width);

/// Result-truncated multiplier: accurate speed netlist with the low
/// `zeroed_lsbs` product bits tied to constant zero (the logic that feeds
/// the surviving carries is retained — truncation saves almost nothing,
/// as the paper observes for Mult(8,4)).
[[nodiscard]] fabric::Netlist make_result_truncated_netlist(unsigned width,
                                                            unsigned zeroed_lsbs);

/// Operand-truncated multiplier: (width-k)x(width-k) accurate core with
/// the low 2k product bits tied to zero.
[[nodiscard]] fabric::Netlist make_operand_truncated_netlist(unsigned width,
                                                             unsigned zeroed_lsbs);

/// Proposed 4x4 module with the Section 5 error-correction circuitry
/// (+2 LUTs); `correct_en` gates the conflict detector. Pass
/// fabric::kNoNet for the plain module.
[[nodiscard]] BitVec build_approx_4x4_correctable(fabric::Netlist& nl, const BitVec& a,
                                                  const BitVec& b, fabric::NetId correct_en,
                                                  const std::string& prefix);

/// Ca/Cc-style multiplier with correctable 4x4 modules and a
/// `correct_en` primary input (declared after the operand inputs).
[[nodiscard]] fabric::Netlist make_correctable_netlist(unsigned width,
                                                       mult::Summation summation);

// ---- standalone adder netlists (companions to mult/adders.hpp) -----------

/// Accurate carry-chain adder: outputs s0..s(bits) including the carry.
[[nodiscard]] fabric::Netlist make_adder_netlist(unsigned bits);

/// Lower-part OR adder netlist. Must match mult::make_loa.
[[nodiscard]] fabric::Netlist make_loa_netlist(unsigned bits, unsigned or_bits);

/// Carry-segmented adder netlist. Must match mult::make_segmented_adder.
[[nodiscard]] fabric::Netlist make_segmented_adder_netlist(unsigned bits,
                                                           unsigned segment_bits);

/// Partial-product perforation (approx-4x4 halves, Ca-style summation of
/// the surviving quadrants). Must match mult::make_perforated.
[[nodiscard]] fabric::Netlist make_perforated_netlist(unsigned width, bool drop_hl,
                                                      bool drop_lh);

}  // namespace axmult::multgen
