#include "multgen/generators.hpp"

#include <algorithm>
#include <array>
#include <functional>
#include <stdexcept>

#include "common/bits.hpp"
#include "fabric/lut6.hpp"
#include "fabric/transforms.hpp"
#include "mult/elementary.hpp"

namespace axmult::multgen {

using fabric::init_from_o5_o6;
using fabric::init_from_o6;
using fabric::kNetGnd;
using fabric::kNetVcc;
using fabric::NetId;
using fabric::Netlist;

namespace {

// ---- Table 3: INIT values of the proposed approximate 4x4 multiplier ----
// Row order and names follow the paper exactly.
constexpr std::uint64_t kInitPp2Pp1 = 0xB4CCF00066AACC00ull;   // LUT0 / LUT4
constexpr std::uint64_t kInitPp3 = 0xC738F0F0FF000000ull;      // LUT1 / LUT5
constexpr std::uint64_t kInitPp4 = 0x07C0FF0000000000ull;      // LUT2 / LUT11
constexpr std::uint64_t kInitPp5 = 0xF800000000000000ull;      // LUT3 / LUT6
constexpr std::uint64_t kInitP2P0 = 0x5FA05FA088888888ull;     // LUT7
constexpr std::uint64_t kInitProp0Gen0 = 0x007F7F80FF808000ull;  // LUT8
constexpr std::uint64_t kInitPropGen = 0x6666666688888880ull;  // LUT9 / LUT10

/// Builds one LUT computing `fn(a, b)`'s bit `out_bit` for 2-bit operands
/// on pins {a0, a1, b0, b1}.
NetId block_bit(Netlist& nl, const BitVec& a, const BitVec& b,
                std::uint64_t (*fn)(std::uint64_t, std::uint64_t), unsigned out_bit,
                const std::string& name) {
  const std::uint64_t init = init_from_o6([&](const std::array<unsigned, 6>& in) {
    const std::uint64_t av = in[0] | (in[1] << 1);
    const std::uint64_t bv = in[2] | (in[3] << 1);
    return bit(fn(av, bv), out_bit) != 0;
  });
  return nl.add_lut6(name, init, {a[0], a[1], b[0], b[1], kNetGnd, kNetGnd}).o6;
}

/// Builds one dual-output LUT computing bits (`lo`, `hi`) of `fn(a, b)`
/// for 2-bit operands (I5 tied high).
std::pair<NetId, NetId> block_bit_pair(Netlist& nl, const BitVec& a, const BitVec& b,
                                       std::uint64_t (*fn)(std::uint64_t, std::uint64_t),
                                       unsigned lo, unsigned hi, const std::string& name) {
  const std::uint64_t init = init_from_o5_o6(
      [&](const std::array<unsigned, 5>& in) {
        return bit(fn(in[0] | (in[1] << 1), in[2] | (in[3] << 1)), lo) != 0;
      },
      [&](const std::array<unsigned, 5>& in) {
        return bit(fn(in[0] | (in[1] << 1), in[2] | (in[3] << 1)), hi) != 0;
      });
  const auto lut =
      nl.add_lut6(name, init, {a[0], a[1], b[0], b[1], kNetGnd, kNetVcc}, /*with_o5=*/true);
  return {lut.o5, lut.o6};  // {low bit, high bit}
}

/// Generic 2x2 block with per-style packing. `bits` is the product width.
BitVec build_2x2_block(Netlist& nl, const BitVec& a, const BitVec& b,
                       std::uint64_t (*fn)(std::uint64_t, std::uint64_t), unsigned bits,
                       MappingStyle style, const std::string& prefix) {
  BitVec p(bits, kNetGnd);
  if (style == MappingStyle::kHandOptimized) {
    // Dual-pack adjacent product bits: ceil(bits/2) LUTs.
    for (unsigned i = 0; i + 1 < bits; i += 2) {
      const auto [lo, hi] =
          block_bit_pair(nl, a, b, fn, i, i + 1, prefix + ".p" + std::to_string(i));
      p[i] = lo;
      p[i + 1] = hi;
    }
    if (bits % 2 != 0) {
      p[bits - 1] = block_bit(nl, a, b, fn, bits - 1, prefix + ".p" + std::to_string(bits - 1));
    }
  } else {
    // Synthesized RTL: P0/P1 still share a LUT (trivial functions Vivado
    // packs opportunistically); each remaining bit costs a full LUT.
    const auto [p0, p1] = block_bit_pair(nl, a, b, fn, 0, 1, prefix + ".p0");
    p[0] = p0;
    p[1] = p1;
    for (unsigned i = 2; i < bits; ++i) {
      p[i] = block_bit(nl, a, b, fn, i, prefix + ".p" + std::to_string(i));
    }
  }
  return p;
}

}  // namespace

BitVec build_approx_4x4_correctable(Netlist& nl, const BitVec& a, const BitVec& b,
                                    fabric::NetId correct_en, const std::string& prefix) {
  if (a.size() != 4 || b.size() != 4) {
    throw std::invalid_argument("build_approx_4x4: operands must be 4 bits");
  }
  auto lut = [&](const std::string& n, std::uint64_t init, std::array<NetId, 6> pins,
                 bool with_o5 = false) { return nl.add_lut6(prefix + "." + n, init, pins, with_o5); };

  // Partial products of the first 4x2 multiplier (A x B1B0). Pin order in
  // add_lut6 is {I0..I5}; Table 3 lists I5 first.
  const auto lut0 = lut("LUT0", kInitPp2Pp1, {a[0], a[1], a[2], b[0], b[1], kNetVcc}, true);
  const NetId pp0_2 = lut0.o6;
  const NetId p1 = lut0.o5;  // PP0<1> is product bit P1 directly
  const NetId pp0_3 = lut("LUT1", kInitPp3, {a[0], a[1], a[2], a[3], b[0], b[1]}).o6;
  const NetId pp0_4 = lut("LUT2", kInitPp4, {a[0], a[1], a[2], a[3], b[0], b[1]}).o6;
  const NetId pp0_5 = lut("LUT3", kInitPp5, {a[0], a[1], a[2], a[3], b[0], b[1]}).o6;

  // Partial products of the second 4x2 multiplier (A x B3B2). PP1<4> and
  // PP1<5> are only generated implicitly, as Prop3/Gen3 (Fig. 4).
  const auto lut4 = lut("LUT4", kInitPp2Pp1, {a[0], a[1], a[2], b[2], b[3], kNetVcc}, true);
  const NetId pp1_2 = lut4.o6;
  const NetId pp1_1 = lut4.o5;
  const NetId pp1_3 = lut("LUT5", kInitPp3, {a[0], a[1], a[2], a[3], b[2], b[3]}).o6;
  const NetId gen3 = lut("LUT6", kInitPp5, {a[0], a[1], a[2], a[3], b[2], b[3]}).o6;
  const NetId prop3 = lut("LUT11", kInitPp4, {a[0], a[1], a[2], a[3], b[2], b[3]}).o6;

  // LUT7: the LUT recovered by the implicit Prop3/Gen3 generation is spent
  // on the accurate realization of P0 and P2.
  const auto lut7 = lut("LUT7", kInitP2P0, {a[0], b[0], b[2], pp0_2, kNetVcc, kNetVcc}, true);
  const NetId p2 = lut7.o6;
  const NetId p0 = lut7.o5;

  // LUT8: Prop0/Gen0 for the P3 column (PP0<3> + PP1<1> + carry out of
  // P2). The propagate is forced low on the all-ones conflict; the
  // generate stays accurate, bounding the error to -8 on P3.
  const auto lut8 =
      lut("LUT8", kInitProp0Gen0, {pp0_2, a[0], b[2], pp0_3, pp1_1, kNetVcc}, true);
  const NetId prop0 = lut8.o6;
  const NetId gen0 = lut8.o5;

  const auto lut9 = lut("LUT9", kInitPropGen, {pp0_4, pp1_2, kNetVcc, kNetVcc, kNetVcc, kNetVcc},
                        true);
  const auto lut10 = lut("LUT10", kInitPropGen,
                         {pp0_5, pp1_3, kNetVcc, kNetVcc, kNetVcc, kNetVcc}, true);

  const auto chain = nl.add_carry4(prefix + ".CC", kNetGnd,
                                   {prop0, lut9.o6, lut10.o6, prop3},
                                   {gen0, lut9.o5, lut10.o5, gen3});
  NetId p3 = chain.o[0];
  if (correct_en != fabric::kNoNet) {
    // Error-correction circuitry (Section 5): one LUT detects the P3
    // conflict gated by the enable, one LUT flips P3 back. The carry was
    // already accurate, so this restores exactness when enabled.
    static const std::uint64_t detect_init =
        init_from_o6([](const std::array<unsigned, 6>& in) {
          return (in[0] & in[1] & in[2] & in[3] & in[4] & in[5]) != 0;
        });
    const NetId conflict =
        nl.add_lut6(prefix + ".CDET", detect_init,
                    {correct_en, a[0], b[2], pp0_2, pp0_3, pp1_1}).o6;
    static const std::uint64_t fix_init =
        init_from_o6([](const std::array<unsigned, 6>& in) {
          return (in[0] ^ in[1]) != 0;
        });
    p3 = nl.add_lut6(prefix + ".CFIX", fix_init,
                     {p3, conflict, kNetGnd, kNetGnd, kNetGnd, kNetGnd}).o6;
  }
  return {p0, p1, p2, p3, chain.o[1], chain.o[2], chain.o[3], chain.co[3]};
}

BitVec build_approx_4x4(Netlist& nl, const BitVec& a, const BitVec& b,
                        const std::string& prefix) {
  return build_approx_4x4_correctable(nl, a, b, fabric::kNoNet, prefix);
}

BitVec build_accurate_4x2(Netlist& nl, const BitVec& a, const BitVec& b,
                          const std::string& prefix) {
  auto product_bit = [](const std::array<unsigned, 6>& in, unsigned k) {
    const std::uint64_t av = in[0] | (in[1] << 1) | (in[2] << 2) | (in[3] << 3);
    const std::uint64_t bv = in[4] | (in[5] << 1);
    return bit(av * bv, k) != 0;
  };
  // P0/P1 dual-packed (both depend only on a0, a1, b0, b1).
  const std::uint64_t init01 = init_from_o5_o6(
      [&](const std::array<unsigned, 5>& in) {
        return bit((in[0] | (in[1] << 1)) * std::uint64_t{in[2] | (in[3] << 1)}, 0) != 0;
      },
      [&](const std::array<unsigned, 5>& in) {
        return bit((in[0] | (in[1] << 1)) * std::uint64_t{in[2] | (in[3] << 1)}, 1) != 0;
      });
  const auto lut01 = nl.add_lut6(prefix + ".p01", init01,
                                 {a[0], a[1], b[0], b[1], kNetGnd, kNetVcc}, /*with_o5=*/true);
  BitVec p(6, kNetGnd);
  p[0] = lut01.o5;
  p[1] = lut01.o6;
  for (unsigned k = 2; k < 6; ++k) {
    const std::uint64_t init =
        init_from_o6([&](const std::array<unsigned, 6>& in) { return product_bit(in, k); });
    p[k] = nl.add_lut6(prefix + ".p" + std::to_string(k), init,
                       {a[0], a[1], a[2], a[3], b[0], b[1]}).o6;
  }
  return p;
}

BitVec build_approx_4x2(Netlist& nl, const BitVec& a, const BitVec& b,
                        const std::string& prefix) {
  // Section 3.1: P0 truncated; P1/P2 share one LUT6_2; P3..P5 take one
  // LUT each — four LUTs, exactly one slice.
  const std::uint64_t init12 = init_from_o5_o6(
      [&](const std::array<unsigned, 5>& in) {
        const std::uint64_t av = in[0] | (in[1] << 1) | (in[2] << 2);
        return bit(av * (in[3] | (in[4] << 1)), 1) != 0;
      },
      [&](const std::array<unsigned, 5>& in) {
        const std::uint64_t av = in[0] | (in[1] << 1) | (in[2] << 2);
        return bit(av * (in[3] | (in[4] << 1)), 2) != 0;
      });
  const auto lut12 = nl.add_lut6(prefix + ".p12", init12,
                                 {a[0], a[1], a[2], b[0], b[1], kNetVcc}, /*with_o5=*/true);
  BitVec p(6, kNetGnd);
  p[1] = lut12.o5;
  p[2] = lut12.o6;
  for (unsigned k = 3; k < 6; ++k) {
    const std::uint64_t init = init_from_o6([&](const std::array<unsigned, 6>& in) {
      const std::uint64_t av = in[0] | (in[1] << 1) | (in[2] << 2) | (in[3] << 3);
      return bit(av * (in[4] | (in[5] << 1)), k) != 0;
    });
    p[k] = nl.add_lut6(prefix + ".p" + std::to_string(k), init,
                       {a[0], a[1], a[2], a[3], b[0], b[1]}).o6;
  }
  return p;
}

BitVec build_accurate_4x4(Netlist& nl, const BitVec& a, const BitVec& b,
                          const std::string& prefix) {
  const BitVec bl{b[0], b[1]};
  const BitVec bh{b[2], b[3]};
  const BitVec pp0 = build_accurate_4x2(nl, a, bl, prefix + ".pp0");
  const BitVec pp1 = build_accurate_4x2(nl, a, bh, prefix + ".pp1");
  // P = PP0 + (PP1 << 2): bits 0..1 pass through, bits 2..7 on one chain.
  const BitVec hi = build_binary_add(nl, BitVec(pp0.begin() + 2, pp0.end()), pp1, 6,
                                     prefix + ".sum");
  BitVec p{pp0[0], pp0[1]};
  p.insert(p.end(), hi.begin(), hi.end());
  return p;
}

BitVec build_kulkarni_2x2(Netlist& nl, const BitVec& a, const BitVec& b, MappingStyle style,
                          const std::string& prefix) {
  return build_2x2_block(nl, a, b, &mult::kulkarni_2x2, 3, style, prefix);
}

BitVec build_rehman_2x2(Netlist& nl, const BitVec& a, const BitVec& b, MappingStyle style,
                        const std::string& prefix) {
  return build_2x2_block(nl, a, b, &mult::rehman_2x2, 4, style, prefix);
}

BitVec build_accurate_2x2(Netlist& nl, const BitVec& a, const BitVec& b, MappingStyle style,
                          const std::string& prefix) {
  return build_2x2_block(nl, a, b, &mult::accurate_2x2, 4, style, prefix);
}

BitVec register_bits(Netlist& nl, const BitVec& bits, const std::string& prefix) {
  BitVec q;
  q.reserve(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == kNetGnd || bits[i] == kNetVcc) {
      q.push_back(bits[i]);  // constants need no register
    } else {
      q.push_back(nl.add_fdre(prefix + ".r" + std::to_string(i), bits[i]));
    }
  }
  return q;
}

unsigned pipeline_latency(unsigned width) {
  unsigned levels = 1;  // the elementary stage
  for (unsigned w = 4; w < width; w *= 2) ++levels;
  return levels;
}

BitVec build_recursive(Netlist& nl, const BitVec& a, const BitVec& b,
                       const GeneratorSpec& spec, const std::string& prefix) {
  const unsigned w = spec.width;
  if (a.size() != w || b.size() != w) {
    throw std::invalid_argument("build_recursive: operand width mismatch");
  }
  auto stage = [&](BitVec v) {
    return spec.pipelined ? register_bits(nl, v, prefix + ".pipe") : v;
  };
  const unsigned ew = spec.custom_elementary ? spec.custom_leaf_width
                                             : mult::elementary_width(spec.elementary);
  if (w == ew) {
    if (spec.custom_elementary) {
      return stage(spec.custom_elementary(nl, a, b, prefix));
    }
    switch (spec.elementary) {
      case mult::Elementary::kApprox4x4: return stage(build_approx_4x4(nl, a, b, prefix));
      case mult::Elementary::kAccurate4x4: return stage(build_accurate_4x4(nl, a, b, prefix));
      case mult::Elementary::kKulkarni2x2:
        return stage(build_kulkarni_2x2(nl, a, b, spec.style, prefix));
      case mult::Elementary::kRehman2x2:
        return stage(build_rehman_2x2(nl, a, b, spec.style, prefix));
      case mult::Elementary::kAccurate2x2:
        return stage(build_accurate_2x2(nl, a, b, spec.style, prefix));
    }
  }
  const unsigned m = w / 2;
  // This level's summation: explicit schedule entry when one is given
  // (outermost first), the uniform default otherwise.
  const mult::Summation summation =
      spec.level_summation.empty() ? spec.summation : spec.level_summation.front();
  GeneratorSpec sub = spec;
  sub.width = m;
  if (!sub.level_summation.empty()) {
    sub.level_summation.erase(sub.level_summation.begin());
  }
  const BitVec al(a.begin(), a.begin() + m);
  const BitVec ah(a.begin() + m, a.end());
  const BitVec bl(b.begin(), b.begin() + m);
  const BitVec bh(b.begin() + m, b.end());
  const BitVec pp0 = build_recursive(nl, al, bl, sub, prefix + ".ll");
  const BitVec pp1 = build_recursive(nl, ah, bl, sub, prefix + ".hl");
  const BitVec pp2 = build_recursive(nl, al, bh, sub, prefix + ".lh");
  const BitVec pp3 = build_recursive(nl, ah, bh, sub, prefix + ".hh");

  BitVec product(4 * m, kNetGnd);
  for (unsigned i = 0; i < m; ++i) product[i] = bit_or_gnd(pp0, i);

  if (summation == mult::Summation::kAccurate) {
    // The X operand holds PP0's high half and (disjointly, from relative
    // column m) PP3; Y and Z hold PP1 and PP2.
    BitVec x(3 * m, kNetGnd);
    for (unsigned c = 0; c < 3 * m; ++c) {
      if (m + c < pp0.size()) {
        x[c] = pp0[m + c];
      } else if (c >= m && c - m < pp3.size()) {
        x[c] = pp3[c - m];
      }
    }
    BitVec s;
    if (spec.ternary_sum) {
      // Fig. 5(b): one ternary pass over columns m .. 4m-1.
      s = build_ternary_add(nl, x, pp1, pp2, 3 * m, prefix + ".sum");
    } else {
      // Conventional two-level binary adder tree (IP / ASIC-ported RTL).
      const BitVec t = build_binary_add(nl, pp1, pp2, 2 * m + 1, prefix + ".sum0");
      s = build_binary_add(nl, t, x, 3 * m, prefix + ".sum1");
    }
    for (unsigned c = 0; c < 3 * m; ++c) product[m + c] = s[c];
  } else if (summation == mult::Summation::kLowerOr) {
    // Hybrid Cb summation: relative columns [0, L) OR'd without carries,
    // the rest on one accurate ternary chain (carry into the accurate
    // section dropped at the boundary).
    const unsigned L = std::min(spec.lower_or_bits, 2 * m);
    BitVec x(3 * m, kNetGnd);
    for (unsigned c = 0; c < 3 * m; ++c) {
      if (m + c < pp0.size()) {
        x[c] = pp0[m + c];
      } else if (c >= m && c - m < pp3.size()) {
        x[c] = pp3[c - m];
      }
    }
    for (unsigned c = 0; c < L; ++c) {
      product[m + c] = build_or_column(
          nl, {x[c], bit_or_gnd(pp1, c), bit_or_gnd(pp2, c)},
          prefix + ".or" + std::to_string(c));
    }
    BitVec xh(x.begin() + L, x.end());
    BitVec yh;
    BitVec zh;
    for (unsigned c = L; c < 3 * m; ++c) {
      yh.push_back(bit_or_gnd(pp1, c));
      zh.push_back(bit_or_gnd(pp2, c));
    }
    const BitVec s = build_ternary_add(nl, xh, yh, zh, 3 * m - L, prefix + ".sum");
    for (unsigned c = L; c < 3 * m; ++c) product[m + c] = s[c - L];
  } else {
    // Fig. 6: carry-free columnwise XOR for the middle columns; the top m
    // bits come straight from PP3.
    for (unsigned c = m; c < 3 * m; ++c) {
      BitVec col;
      if (c < pp0.size()) col.push_back(pp0[c]);
      if (c - m < pp1.size()) col.push_back(pp1[c - m]);
      if (c - m < pp2.size()) col.push_back(pp2[c - m]);
      if (c >= 2 * m && c - 2 * m < pp3.size()) col.push_back(pp3[c - 2 * m]);
      product[c] = build_xor_column(nl, col, prefix + ".col" + std::to_string(c));
    }
    for (unsigned c = 3 * m; c < 4 * m; ++c) product[c] = bit_or_gnd(pp3, c - 2 * m);
  }
  return stage(product);
}

fabric::Netlist wrap_netlist(
    unsigned width, const std::function<BitVec(Netlist&, const BitVec&, const BitVec&)>& body) {
  Netlist nl;
  BitVec a;
  BitVec b;
  for (unsigned i = 0; i < width; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  for (unsigned i = 0; i < width; ++i) b.push_back(nl.add_input("b" + std::to_string(i)));
  const BitVec p = body(nl, a, b);
  for (std::size_t i = 0; i < p.size(); ++i) {
    nl.add_output("p" + std::to_string(i), p[i]);
  }
  return nl;
}

namespace {

/// Local alias: declares a0..a(n-1), b0..b(n-1) inputs and p outputs.
fabric::Netlist wrap(unsigned width,
                     const std::function<BitVec(Netlist&, const BitVec&, const BitVec&)>& body) {
  return wrap_netlist(width, body);
}

}  // namespace

fabric::Netlist make_netlist(const GeneratorSpec& spec) {
  return wrap(spec.width, [&](Netlist& nl, const BitVec& a, const BitVec& b) {
    return build_recursive(nl, a, b, spec, "u");
  });
}

fabric::Netlist make_ca_netlist(unsigned width) {
  return make_netlist({width, mult::Elementary::kApprox4x4, mult::Summation::kAccurate,
                       MappingStyle::kHandOptimized});
}

fabric::Netlist make_cc_netlist(unsigned width) {
  return make_netlist({width, mult::Elementary::kApprox4x4, mult::Summation::kCarryFree,
                       MappingStyle::kHandOptimized});
}

fabric::Netlist make_cb_netlist(unsigned width, unsigned lower_or_bits) {
  return make_netlist({width, mult::Elementary::kApprox4x4, mult::Summation::kLowerOr,
                       MappingStyle::kHandOptimized, true, lower_or_bits});
}

fabric::Netlist make_kulkarni_netlist(unsigned width) {
  return make_netlist({width, mult::Elementary::kKulkarni2x2, mult::Summation::kAccurate,
                       MappingStyle::kSynthesized, /*ternary_sum=*/false});
}

fabric::Netlist make_rehman_netlist(unsigned width) {
  return make_netlist({width, mult::Elementary::kRehman2x2, mult::Summation::kAccurate,
                       MappingStyle::kSynthesized, /*ternary_sum=*/false});
}

fabric::Netlist make_vivado_speed_netlist(unsigned width) {
  return make_netlist({width, mult::Elementary::kAccurate4x4, mult::Summation::kAccurate,
                       MappingStyle::kHandOptimized, /*ternary_sum=*/false});
}

fabric::Netlist make_radix4_netlist(unsigned width) {
  if (width % 2 != 0) throw std::invalid_argument("make_radix4_netlist: width must be even");
  return wrap(width, [&](Netlist& nl, const BitVec& a, const BitVec& b) {
    // 3A = A + (A << 1), width + 2 bits.
    const BitVec a3 = build_binary_add(nl, a, shifted(a, 1), width + 2, "a3");

    // Row j selects d_j * A for d_j = (b[2j+1], b[2j]) in {0, A, 2A, 3A}.
    // Per bit: I0 = A_i, I1 = A_(i-1) (= 2A bit), I2 = 3A_i, I3 = b_lo,
    // I4 = b_hi; I5 tied high.
    static const std::uint64_t sel_init = init_from_o6(
        [](const std::array<unsigned, 6>& in) {
          const unsigned digit = in[3] | (in[4] << 1);
          switch (digit) {
            case 1: return in[0] != 0;  // A
            case 2: return in[1] != 0;  // 2A
            case 3: return in[2] != 0;  // 3A
            default: return false;      // 0
          }
        });
    std::vector<BitVec> rows;
    for (unsigned j = 0; j < width / 2; ++j) {
      BitVec row;
      for (unsigned i = 0; i < width + 2; ++i) {
        row.push_back(nl.add_lut6("row" + std::to_string(j) + ".sel" + std::to_string(i),
                                  sel_init,
                                  {bit_or_gnd(a, i), i > 0 ? bit_or_gnd(a, i - 1) : kNetGnd,
                                   a3[i], b[2 * j], b[2 * j + 1], kNetVcc})
                          .o6);
      }
      rows.push_back(shifted(row, 2 * j));
    }
    // Ternary/binary reduction of the shifted rows.
    while (rows.size() > 1) {
      std::vector<BitVec> next;
      std::size_t idx = 0;
      unsigned lvl = 0;
      while (idx + 2 < rows.size()) {
        next.push_back(build_ternary_add(nl, rows[idx], rows[idx + 1], rows[idx + 2],
                                         2 * width, "red.t" + std::to_string(lvl++)));
        idx += 3;
      }
      if (idx + 1 < rows.size()) {
        next.push_back(build_binary_add(nl, rows[idx], rows[idx + 1], 2 * width,
                                        "red.b" + std::to_string(lvl++)));
        idx += 2;
      }
      while (idx < rows.size()) next.push_back(rows[idx++]);
      rows = std::move(next);
    }
    BitVec product = rows.front();
    product.resize(2 * width, kNetGnd);
    return product;
  });
}

fabric::Netlist make_vivado_area_netlist(unsigned width) {
  return wrap(width, [&](Netlist& nl, const BitVec& a, const BitVec& b) {
    // Row 0: A & b0, one LUT per bit (the IP generator predates aggressive
    // O5/O6 packing; this reproduces the ~71-LUT footprint reported for
    // the 8x8 LUT-based mult_gen).
    BitVec acc;
    for (unsigned i = 0; i < width; ++i) {
      static const std::uint64_t and_init = init_from_o6(
          [](const std::array<unsigned, 6>& in) { return (in[0] & in[1]) != 0; });
      acc.push_back(nl.add_lut6("row0.and" + std::to_string(i), and_init,
                                {a[i], b[0], kNetGnd, kNetGnd, kNetGnd, kNetGnd}).o6);
    }
    BitVec product(2 * width, kNetGnd);
    product[0] = acc[0];

    // Rows 1..width-1: acc = (acc >> 1) + (A & b_j); the AND folds into
    // the adder LUT (O6 = (a_i & b_j) ^ acc_i, O5 = acc_i -> DI), and the
    // row's carry-out is captured through a route-through LUT as the new
    // accumulator MSB.
    for (unsigned j = 1; j < width; ++j) {
      const std::string prefix = "row" + std::to_string(j);
      static const std::uint64_t init = init_from_o5_o6(
          [](const std::array<unsigned, 5>& in) { return in[2] != 0; },
          [](const std::array<unsigned, 5>& in) { return ((in[0] & in[1]) ^ in[2]) != 0; });
      BitVec props;
      BitVec dis;
      for (unsigned i = 0; i < width; ++i) {
        const NetId acc_i = i + 1 < acc.size() ? acc[i + 1] : kNetGnd;  // acc >> 1
        const auto lut = nl.add_lut6(prefix + ".pg" + std::to_string(i), init,
                                     {a[i], b[j], acc_i, kNetGnd, kNetGnd, kNetVcc},
                                     /*with_o5=*/true);
        props.push_back(lut.o6);
        dis.push_back(lut.o5);
      }
      const auto chain = build_carry_chain(nl, kNetGnd, props, dis, prefix);
      acc = chain.sum;
      static const std::uint64_t buf_init = init_from_o6(
          [](const std::array<unsigned, 6>& in) { return in[0] != 0; });
      acc.push_back(nl.add_lut6(prefix + ".cobuf", buf_init,
                                {chain.cout, kNetGnd, kNetGnd, kNetGnd, kNetGnd, kNetGnd}).o6);
      product[j] = acc[0];
    }
    for (unsigned i = 1; i < acc.size() && width - 1 + i < 2 * width; ++i) {
      product[width - 1 + i] = acc[i];
    }
    return product;
  });
}

fabric::Netlist make_result_truncated_netlist(unsigned width, unsigned zeroed_lsbs) {
  auto nl = wrap(width, [&](Netlist& nl_, const BitVec& a, const BitVec& b) {
    GeneratorSpec spec{width, mult::Elementary::kAccurate4x4, mult::Summation::kAccurate,
                       MappingStyle::kHandOptimized, /*ternary_sum=*/false};
    BitVec p = build_recursive(nl_, a, b, spec, "u");
    for (unsigned i = 0; i < zeroed_lsbs && i < p.size(); ++i) p[i] = kNetGnd;
    return p;
  });
  // Sweep the (few) cells that only fed the zeroed outputs — this is the
  // honest version of the paper's observation that truncation saves almost
  // nothing: the low columns' logic still feeds the surviving carries.
  return fabric::sweep_dead_cells(nl);
}

fabric::Netlist make_operand_truncated_netlist(unsigned width, unsigned zeroed_lsbs) {
  if (zeroed_lsbs >= width) throw std::invalid_argument("operand truncation too deep");
  return wrap(width, [&](Netlist& nl, const BitVec& a, const BitVec& b) {
    const unsigned core = width - zeroed_lsbs;
    const BitVec ah(a.begin() + zeroed_lsbs, a.end());
    const BitVec bh(b.begin() + zeroed_lsbs, b.end());
    // Core widths that are not powers of two fall back to zero-padding up
    // to the next supported recursive width.
    unsigned padded = 4;
    while (padded < core) padded *= 2;
    BitVec ap = ah;
    BitVec bp = bh;
    while (ap.size() < padded) {
      ap.push_back(kNetGnd);
      bp.push_back(kNetGnd);
    }
    GeneratorSpec spec{padded, mult::Elementary::kAccurate4x4, mult::Summation::kAccurate,
                       MappingStyle::kHandOptimized, /*ternary_sum=*/false};
    const BitVec hi = build_recursive(nl, ap, bp, spec, "u");
    BitVec p(2 * width, kNetGnd);
    for (unsigned i = 0; i < 2 * padded && 2 * zeroed_lsbs + i < 2 * width; ++i) {
      p[2 * zeroed_lsbs + i] = hi[i];
    }
    return p;
  });
}

namespace {

/// Recursive composition with correctable elementary modules.
BitVec build_correctable_recursive(Netlist& nl, const BitVec& a, const BitVec& b, NetId en,
                                   mult::Summation summation, const std::string& prefix) {
  const unsigned w = static_cast<unsigned>(a.size());
  if (w == 4) return build_approx_4x4_correctable(nl, a, b, en, prefix);
  const unsigned m = w / 2;
  const BitVec al(a.begin(), a.begin() + m);
  const BitVec ah(a.begin() + m, a.end());
  const BitVec bl(b.begin(), b.begin() + m);
  const BitVec bh(b.begin() + m, b.end());
  const BitVec pp0 = build_correctable_recursive(nl, al, bl, en, summation, prefix + ".ll");
  const BitVec pp1 = build_correctable_recursive(nl, ah, bl, en, summation, prefix + ".hl");
  const BitVec pp2 = build_correctable_recursive(nl, al, bh, en, summation, prefix + ".lh");
  const BitVec pp3 = build_correctable_recursive(nl, ah, bh, en, summation, prefix + ".hh");
  BitVec product(4 * m, kNetGnd);
  for (unsigned i = 0; i < m; ++i) product[i] = bit_or_gnd(pp0, i);
  if (summation == mult::Summation::kAccurate) {
    BitVec x(3 * m, kNetGnd);
    for (unsigned c = 0; c < 3 * m; ++c) {
      if (m + c < pp0.size()) {
        x[c] = pp0[m + c];
      } else if (c >= m && c - m < pp3.size()) {
        x[c] = pp3[c - m];
      }
    }
    const BitVec s = build_ternary_add(nl, x, pp1, pp2, 3 * m, prefix + ".sum");
    for (unsigned c = 0; c < 3 * m; ++c) product[m + c] = s[c];
  } else {
    for (unsigned c = m; c < 3 * m; ++c) {
      BitVec col{bit_or_gnd(pp0, c), bit_or_gnd(pp1, c - m), bit_or_gnd(pp2, c - m)};
      if (c >= 2 * m) col.push_back(bit_or_gnd(pp3, c - 2 * m));
      product[c] = build_xor_column(nl, col, prefix + ".col" + std::to_string(c));
    }
    for (unsigned c = 3 * m; c < 4 * m; ++c) product[c] = bit_or_gnd(pp3, c - 2 * m);
  }
  return product;
}

}  // namespace

fabric::Netlist make_pipelined_netlist(unsigned width, mult::Summation summation) {
  return make_netlist({width, mult::Elementary::kApprox4x4, summation,
                       MappingStyle::kHandOptimized, /*ternary_sum=*/true,
                       /*lower_or_bits=*/0, /*pipelined=*/true});
}

fabric::Netlist make_mac_netlist(unsigned width, mult::Summation summation,
                                 unsigned acc_bits) {
  if (acc_bits < 2 * width) throw std::invalid_argument("make_mac_netlist: accumulator too narrow");
  Netlist nl;
  BitVec a;
  BitVec b;
  for (unsigned i = 0; i < width; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  for (unsigned i = 0; i < width; ++i) b.push_back(nl.add_input("b" + std::to_string(i)));

  const GeneratorSpec spec{width, mult::Elementary::kApprox4x4, summation,
                           MappingStyle::kHandOptimized};
  const BitVec product = build_recursive(nl, a, b, spec, "mul");

  // Registered feedback accumulator: take the Q nets first, close later.
  std::vector<Netlist::OpenFf> acc;
  BitVec acc_q;
  for (unsigned i = 0; i < acc_bits; ++i) {
    acc.push_back(nl.add_fdre_open("acc.r" + std::to_string(i)));
    acc_q.push_back(acc.back().q);
  }
  const BitVec next = build_binary_add(nl, acc_q, product, acc_bits, "acc.add");
  for (unsigned i = 0; i < acc_bits; ++i) nl.close_fdre(acc[i], next[i]);
  for (unsigned i = 0; i < acc_bits; ++i) nl.add_output("s" + std::to_string(i), acc_q[i]);
  return nl;
}

fabric::Netlist make_correctable_netlist(unsigned width, mult::Summation summation) {
  Netlist nl;
  BitVec a;
  BitVec b;
  for (unsigned i = 0; i < width; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  for (unsigned i = 0; i < width; ++i) b.push_back(nl.add_input("b" + std::to_string(i)));
  const NetId en = nl.add_input("correct_en");
  const BitVec p = build_correctable_recursive(nl, a, b, en, summation, "u");
  for (std::size_t i = 0; i < p.size(); ++i) nl.add_output("p" + std::to_string(i), p[i]);
  return nl;
}

namespace {

fabric::Netlist wrap_adder(unsigned bits,
                           const std::function<BitVec(Netlist&, const BitVec&, const BitVec&)>& body) {
  Netlist nl;
  BitVec a;
  BitVec b;
  for (unsigned i = 0; i < bits; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  for (unsigned i = 0; i < bits; ++i) b.push_back(nl.add_input("b" + std::to_string(i)));
  const BitVec s = body(nl, a, b);
  for (std::size_t i = 0; i < s.size(); ++i) nl.add_output("s" + std::to_string(i), s[i]);
  return nl;
}

}  // namespace

fabric::Netlist make_adder_netlist(unsigned bits) {
  return wrap_adder(bits, [&](Netlist& nl, const BitVec& a, const BitVec& b) {
    return build_binary_add(nl, a, b, bits + 1, "add");
  });
}

fabric::Netlist make_loa_netlist(unsigned bits, unsigned or_bits) {
  return wrap_adder(bits, [&](Netlist& nl, const BitVec& a, const BitVec& b) {
    BitVec s(bits + 1, kNetGnd);
    for (unsigned i = 0; i < or_bits; ++i) {
      s[i] = build_or_column(nl, {a[i], b[i]}, "or" + std::to_string(i));
    }
    const BitVec ah(a.begin() + or_bits, a.end());
    const BitVec bh(b.begin() + or_bits, b.end());
    const BitVec hi = build_binary_add(nl, ah, bh, bits - or_bits + 1, "hi");
    for (unsigned i = or_bits; i <= bits; ++i) s[i] = hi[i - or_bits];
    return s;
  });
}

fabric::Netlist make_segmented_adder_netlist(unsigned bits, unsigned segment_bits) {
  return wrap_adder(bits, [&](Netlist& nl, const BitVec& a, const BitVec& b) {
    BitVec s(bits + 1, kNetGnd);
    for (unsigned base = 0; base < bits; base += segment_bits) {
      const unsigned w = std::min(segment_bits, bits - base);
      const bool last = base + w >= bits;
      const BitVec as(a.begin() + base, a.begin() + base + w);
      const BitVec bs(b.begin() + base, b.begin() + base + w);
      // The final segment keeps its carry-out (the true top result bit).
      const BitVec seg =
          build_binary_add(nl, as, bs, last ? w + 1 : w, "seg" + std::to_string(base));
      for (unsigned i = 0; i < seg.size(); ++i) s[base + i] = seg[i];
    }
    return s;
  });
}

fabric::Netlist make_perforated_netlist(unsigned width, bool drop_hl, bool drop_lh) {
  return wrap(width, [&](Netlist& nl, const BitVec& a, const BitVec& b) {
    const unsigned m = width / 2;
    const GeneratorSpec sub{m, mult::Elementary::kApprox4x4, mult::Summation::kAccurate,
                            MappingStyle::kHandOptimized};
    const BitVec al(a.begin(), a.begin() + m);
    const BitVec ah(a.begin() + m, a.end());
    const BitVec bl(b.begin(), b.begin() + m);
    const BitVec bh(b.begin() + m, b.end());
    const BitVec pp0 = build_recursive(nl, al, bl, sub, "u.ll");
    const BitVec pp3 = build_recursive(nl, ah, bh, sub, "u.hh");

    // X holds PP0's high half and (disjointly) PP3, exactly as in the
    // accurate composition.
    BitVec x(3 * m, kNetGnd);
    for (unsigned c = 0; c < 3 * m; ++c) {
      if (m + c < pp0.size()) {
        x[c] = pp0[m + c];
      } else if (c >= m && c - m < pp3.size()) {
        x[c] = pp3[c - m];
      }
    }
    BitVec product(4 * m, kNetGnd);
    for (unsigned i = 0; i < m; ++i) product[i] = bit_or_gnd(pp0, i);

    if (drop_hl && drop_lh) {
      // Nothing overlaps: the product is PP0 | (PP3 << 2m), pure wiring.
      for (unsigned c = 0; c < 3 * m; ++c) product[m + c] = x[c];
      return product;
    }
    const BitVec pp1 = drop_hl ? BitVec{} : build_recursive(nl, ah, bl, sub, "u.hl");
    const BitVec pp2 = drop_lh ? BitVec{} : build_recursive(nl, al, bh, sub, "u.lh");
    BitVec s;
    if (drop_hl || drop_lh) {
      s = build_binary_add(nl, x, drop_hl ? pp2 : pp1, 3 * m, "u.sum");
    } else {
      s = build_ternary_add(nl, x, pp1, pp2, 3 * m, "u.sum");
    }
    for (unsigned c = 0; c < 3 * m; ++c) product[m + c] = s[c];
    return product;
  });
}

}  // namespace axmult::multgen
