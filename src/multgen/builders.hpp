// Low-level netlist builders: carry-chain adders and column logic.
//
// These encode the 7-series implementation idioms the paper relies on:
//  * binary addition: one LUT6_2 per bit (O6 = propagate, O5 = generate
//    routed to DI) driving a CARRY4 chain,
//  * ternary addition (Fig. 5(b)): one LUT6_2 per bit computing the
//    carry-save sum of three operand bits plus the carry-save carry of the
//    previous column, so three partial products are added "in one single
//    step" on a single carry chain,
//  * carry-free column XOR (Fig. 6) for the Cc summation.
#pragma once

#include <string>
#include <vector>

#include "fabric/netlist.hpp"

namespace axmult::multgen {

using BitVec = std::vector<fabric::NetId>;

/// Bit `i` of `v`, or constant 0 when out of range.
[[nodiscard]] fabric::NetId bit_or_gnd(const BitVec& v, std::size_t i);

/// `v` shifted left by `k` (k constant-0 bits prepended).
[[nodiscard]] BitVec shifted(const BitVec& v, unsigned k);

/// Result of a carry-chain structure.
struct ChainSum {
  BitVec sum;
  fabric::NetId cout = fabric::kNoNet;
};

/// Builds ceil(n/4) CARRY4s over per-bit propagate (S) and generate (DI)
/// nets. Returns the per-bit sum outputs and the final carry.
[[nodiscard]] ChainSum build_carry_chain(fabric::Netlist& nl, fabric::NetId cin,
                                         const BitVec& props, const BitVec& dis,
                                         const std::string& prefix);

/// x + y on a carry chain, one LUT per bit. Produces exactly `out_width`
/// bits (truncating carries the caller knows cannot occur).
[[nodiscard]] BitVec build_binary_add(fabric::Netlist& nl, const BitVec& x, const BitVec& y,
                                      unsigned out_width, const std::string& prefix);

/// x + y + z on a single carry chain (the Fig. 5(b) ternary idiom), one
/// LUT per output bit. Produces exactly `out_width` bits.
[[nodiscard]] BitVec build_ternary_add(fabric::Netlist& nl, const BitVec& x, const BitVec& y,
                                       const BitVec& z, unsigned out_width,
                                       const std::string& prefix);

/// One LUT computing the XOR of up to four column bits (carry-free
/// summation, Fig. 6). Columns with a single live contributor are returned
/// as plain wires (no LUT is spent).
[[nodiscard]] fabric::NetId build_xor_column(fabric::Netlist& nl, const BitVec& column_bits,
                                             const std::string& name);

/// One LUT computing the OR of up to six column bits (the lower-OR hybrid
/// summation, design Cb). Single live contributors become plain wires.
[[nodiscard]] fabric::NetId build_or_column(fabric::Netlist& nl, const BitVec& column_bits,
                                            const std::string& name);

}  // namespace axmult::multgen
