// Search strategies of the DSE engine.
//
// Four strategies over one archive/evaluation substrate:
//   * exhaustive — enumerate(space), evaluate everything (flips excluded);
//   * random     — `budget` seeded uniform samples;
//   * nsga2      — an NSGA-II-style evolutionary loop (Deb's non-dominated
//     sort + crowding distance from analysis/pareto, binary tournament,
//     field-wise crossover, one mutation per child, elitist survival);
//   * surrogate  — surrogate-screened search (dse/surrogate.hpp): each
//     generation drafts `proposals` candidates, ranks them by predicted
//     Pareto contribution (ridge model + exact analytic error seeds) and
//     confirms only the top `population` slice.
//
// Evaluation fan-out is either in-process threads (`threads`) or — when
// `farm_workers`/`farm_socket` is set — the multi-process evaluation farm
// (dse/farm.hpp), with identical results by construction.
//
// Determinism contract: for a fixed (space, options) pair the resulting
// front is bit-identical for ANY thread count. Every stochastic decision
// (sampling, tournament, crossover, mutation) happens on the calling
// thread from one Xoshiro256(seed); the parallel fan-out only evaluates —
// a pure function of the config — and the archive is an ordered map over
// canonical config keys, so iteration order never depends on timing.
//
// Resume model: a checkpoint stores the full (space, options) pair.
// Resuming replays the identical search; the persistent evaluation cache
// turns completed work into instant hits, so a resumed run reproduces the
// non-resumed front exactly while only paying for the missing tail.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dse/evaluate.hpp"
#include "dse/space.hpp"

namespace axmult::dse {

enum class Strategy : std::uint8_t { kExhaustive, kRandom, kNsga2, kSurrogate };

[[nodiscard]] const char* strategy_name(Strategy s) noexcept;
/// Parses "exhaustive", "random", "nsga2", "surrogate"; throws
/// std::invalid_argument.
[[nodiscard]] Strategy parse_strategy(const std::string& name);

/// Snapshot handed to SearchOptions::progress after every evaluation slice.
struct SearchProgress {
  std::uint64_t evaluated = 0;   ///< configs submitted so far
  std::uint64_t cache_hits = 0;  ///< of those, served from the cache
  std::uint64_t total = 0;       ///< planned submissions (0 = unknown)
  std::uint64_t archive = 0;     ///< distinct configs evaluated
  unsigned generation = 0;       ///< current generation (0-based)
};

struct SearchOptions {
  Strategy strategy = Strategy::kNsga2;
  /// Evaluation budget: sample count for kRandom, a cap on enumerated
  /// points for kExhaustive, and a cap on total evaluations (checked
  /// between generations) for kNsga2. 0 = strategy default / unlimited.
  std::uint64_t budget = 0;
  unsigned population = 32;   ///< kNsga2/kSurrogate per-generation size
  unsigned generations = 8;   ///< kNsga2/kSurrogate generations
  unsigned proposals = 256;   ///< kSurrogate candidates screened per generation
  double explore_weight = 0.25;  ///< kSurrogate novelty bonus weight
  std::uint64_t seed = 1;     ///< search-thread RNG seed
  /// Minimized objectives, in cost-vector order.
  std::vector<Objective> objectives{Objective::kLuts, Objective::kDelay, Objective::kMre};
  EvalOptions eval;
  unsigned threads = 0;  ///< evaluation fan-out (0 = auto); never changes results
  /// Multi-process evaluation farm: fork this many worker processes
  /// (dse/farm.hpp). 0 with an empty farm_socket = in-process threads.
  /// Never changes results, and never changes the search counters either
  /// (hits are counted in the parent per occurrence).
  unsigned farm_workers = 0;
  /// Non-empty: attach the farm to a running axserve daemon at this
  /// Unix-socket path instead of forking workers.
  std::string farm_socket;
  /// Progress callback, fired after every evaluation slice (~64 configs)
  /// from the search thread. Empty = silent.
  std::function<void(const SearchProgress&)> progress;
  std::string cache_path;       ///< persistent evaluation cache ("" = in-memory)
  std::string front_path;       ///< front JSON written after the search ("" = skip)
  std::string checkpoint_path;  ///< checkpoint JSON for `axdse resume` ("" = skip)
};

struct EvaluatedPoint {
  Config config;
  std::string key;  ///< canonical config key
  Objectives objectives;
};

struct SearchResult {
  /// Rank-0 points of the archive, sorted by cost vector then key.
  std::vector<EvaluatedPoint> front;
  std::uint64_t evaluations = 0;   ///< configs submitted for evaluation
  std::uint64_t cache_hits = 0;    ///< of those, served from the cache
  std::uint64_t archive_size = 0;  ///< distinct configs evaluated
};

/// Runs one search, writing the cache/front/checkpoint files configured in
/// `opts` as it goes.
[[nodiscard]] SearchResult run_search(const SpaceSpec& space, const SearchOptions& opts);

// ---- artifacts ------------------------------------------------------------

/// Writes the front as JSON lines: one meta line (objective names, search
/// counters) followed by one point per line (key, display name, cost
/// vector, full objective fields).
void write_front(const std::string& path, const SearchResult& result,
                 const std::vector<Objective>& objectives);

/// Reads the points of a front file (meta line skipped). Throws
/// std::runtime_error when the file cannot be opened.
[[nodiscard]] std::vector<EvaluatedPoint> load_front(const std::string& path);

/// Serializes (space, options) so the search can be replayed bit-exactly.
void write_checkpoint(const std::string& path, const SpaceSpec& space,
                      const SearchOptions& opts);

/// Inverse of write_checkpoint. Throws std::runtime_error on a missing or
/// malformed checkpoint.
void load_checkpoint(const std::string& path, SpaceSpec& space, SearchOptions& opts);

}  // namespace axmult::dse
