// Search strategies of the DSE engine.
//
// Three strategies over one archive/evaluation substrate:
//   * exhaustive — enumerate(space), evaluate everything (flips excluded);
//   * random     — `budget` seeded uniform samples;
//   * nsga2      — an NSGA-II-style evolutionary loop (Deb's non-dominated
//     sort + crowding distance from analysis/pareto, binary tournament,
//     field-wise crossover, one mutation per child, elitist survival).
//
// Determinism contract: for a fixed (space, options) pair the resulting
// front is bit-identical for ANY thread count. Every stochastic decision
// (sampling, tournament, crossover, mutation) happens on the calling
// thread from one Xoshiro256(seed); the parallel fan-out only evaluates —
// a pure function of the config — and the archive is an ordered map over
// canonical config keys, so iteration order never depends on timing.
//
// Resume model: a checkpoint stores the full (space, options) pair.
// Resuming replays the identical search; the persistent evaluation cache
// turns completed work into instant hits, so a resumed run reproduces the
// non-resumed front exactly while only paying for the missing tail.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dse/evaluate.hpp"
#include "dse/space.hpp"

namespace axmult::dse {

enum class Strategy : std::uint8_t { kExhaustive, kRandom, kNsga2 };

[[nodiscard]] const char* strategy_name(Strategy s) noexcept;
/// Parses "exhaustive", "random", "nsga2"; throws std::invalid_argument.
[[nodiscard]] Strategy parse_strategy(const std::string& name);

struct SearchOptions {
  Strategy strategy = Strategy::kNsga2;
  /// Evaluation budget: sample count for kRandom, a cap on enumerated
  /// points for kExhaustive, and a cap on total evaluations (checked
  /// between generations) for kNsga2. 0 = strategy default / unlimited.
  std::uint64_t budget = 0;
  unsigned population = 32;   ///< kNsga2 population size
  unsigned generations = 8;   ///< kNsga2 generations
  std::uint64_t seed = 1;     ///< search-thread RNG seed
  /// Minimized objectives, in cost-vector order.
  std::vector<Objective> objectives{Objective::kLuts, Objective::kDelay, Objective::kMre};
  EvalOptions eval;
  unsigned threads = 0;  ///< evaluation fan-out (0 = auto); never changes results
  std::string cache_path;       ///< persistent evaluation cache ("" = in-memory)
  std::string front_path;       ///< front JSON written after the search ("" = skip)
  std::string checkpoint_path;  ///< checkpoint JSON for `axdse resume` ("" = skip)
};

struct EvaluatedPoint {
  Config config;
  std::string key;  ///< canonical config key
  Objectives objectives;
};

struct SearchResult {
  /// Rank-0 points of the archive, sorted by cost vector then key.
  std::vector<EvaluatedPoint> front;
  std::uint64_t evaluations = 0;   ///< configs submitted for evaluation
  std::uint64_t cache_hits = 0;    ///< of those, served from the cache
  std::uint64_t archive_size = 0;  ///< distinct configs evaluated
};

/// Runs one search, writing the cache/front/checkpoint files configured in
/// `opts` as it goes.
[[nodiscard]] SearchResult run_search(const SpaceSpec& space, const SearchOptions& opts);

// ---- artifacts ------------------------------------------------------------

/// Writes the front as JSON lines: one meta line (objective names, search
/// counters) followed by one point per line (key, display name, cost
/// vector, full objective fields).
void write_front(const std::string& path, const SearchResult& result,
                 const std::vector<Objective>& objectives);

/// Reads the points of a front file (meta line skipped). Throws
/// std::runtime_error when the file cannot be opened.
[[nodiscard]] std::vector<EvaluatedPoint> load_front(const std::string& path);

/// Serializes (space, options) so the search can be replayed bit-exactly.
void write_checkpoint(const std::string& path, const SpaceSpec& space,
                      const SearchOptions& opts);

/// Inverse of write_checkpoint. Throws std::runtime_error on a missing or
/// malformed checkpoint.
void load_checkpoint(const std::string& path, SpaceSpec& space, SearchOptions& opts);

}  // namespace axmult::dse
