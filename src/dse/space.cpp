#include "dse/space.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/bits.hpp"
#include "mult/elementary.hpp"

namespace axmult::dse {

namespace {

struct LeafInfo {
  Config::Leaf leaf;
  const char* token;
  unsigned width;
};

constexpr LeafInfo kLeafInfo[] = {
    {Config::Leaf::kApprox4x4, "a4x4", 4},   {Config::Leaf::kAccurate4x4, "acc4x4", 4},
    {Config::Leaf::kKulkarni2x2, "k2x2", 2}, {Config::Leaf::kRehman2x2, "w2x2", 2},
    {Config::Leaf::kAccurate2x2, "acc2x2", 2},
    {Config::Leaf::kPerturbed4x2Pair, "p4x2", 4},
};

const LeafInfo& leaf_info(Config::Leaf leaf) {
  for (const auto& info : kLeafInfo) {
    if (info.leaf == leaf) return info;
  }
  throw std::invalid_argument("dse: unknown leaf kind");
}

bool has_lower_or(const Config& c) {
  return std::find(c.summation.begin(), c.summation.end(), mult::Summation::kLowerOr) !=
         c.summation.end();
}

}  // namespace

char summation_char(mult::Summation s) noexcept {
  switch (s) {
    case mult::Summation::kAccurate: return 'A';
    case mult::Summation::kCarryFree: return 'C';
    case mult::Summation::kLowerOr: return 'O';
  }
  return '?';
}

mult::Summation summation_from_char(char c) {
  switch (c) {
    case 'A': return mult::Summation::kAccurate;
    case 'C': return mult::Summation::kCarryFree;
    case 'O': return mult::Summation::kLowerOr;
    default: throw std::invalid_argument(std::string("dse: bad summation char '") + c + "'");
  }
}

const char* leaf_token(Config::Leaf leaf) { return leaf_info(leaf).token; }

Config::Leaf leaf_from_token(const std::string& token) {
  for (const auto& info : kLeafInfo) {
    if (token == info.token) return info.leaf;
  }
  throw std::invalid_argument("dse: unknown leaf token '" + token + "'");
}

LeafTables approx_4x2_tables() {
  LeafTables tables{};
  for (unsigned a = 0; a < 16; ++a) {
    for (unsigned b = 0; b < 4; ++b) {
      const std::uint64_t p = mult::approx_4x2(a, b);
      for (unsigned k = 0; k < 6; ++k) {
        if (bit(p, k)) tables[k] |= std::uint64_t{1} << (a | (b << 4));
      }
    }
  }
  return tables;
}

unsigned leaf_width(Config::Leaf leaf) noexcept {
  for (const auto& info : kLeafInfo) {
    if (info.leaf == leaf) return info.width;
  }
  return 0;
}

unsigned num_levels(const Config& c) noexcept {
  unsigned depth = 0;
  for (unsigned w = c.width; w > leaf_width(c.leaf); w /= 2) ++depth;
  return depth;
}

void canonicalize(Config& c) {
  const unsigned lw = leaf_width(c.leaf);
  if (!is_pow2(c.width) || c.width < lw) {
    throw std::invalid_argument("dse::canonicalize: width must be a power of two >= " +
                                std::to_string(lw));
  }
  c.summation.resize(num_levels(c), mult::Summation::kAccurate);
  if (!has_lower_or(c)) c.lower_or_bits = 0;
  if (c.trunc_lsbs > 2 * c.width) c.trunc_lsbs = 2 * c.width;
  if (c.leaf != Config::Leaf::kPerturbed4x2Pair) {
    c.flips.clear();
  } else {
    // Flips form an XOR set: order is irrelevant and pairs cancel.
    std::sort(c.flips.begin(), c.flips.end());
    std::vector<TableFlip> kept;
    for (std::size_t i = 0; i < c.flips.size();) {
      if (i + 1 < c.flips.size() && c.flips[i] == c.flips[i + 1]) {
        i += 2;
      } else {
        kept.push_back(c.flips[i]);
        ++i;
      }
    }
    c.flips = std::move(kept);
  }
}

std::string config_key(const Config& c) {
  Config canon = c;
  canonicalize(canon);
  std::string key = "w" + std::to_string(canon.width) + ";l=" + leaf_info(canon.leaf).token +
                    ";s=";
  for (const mult::Summation s : canon.summation) key += summation_char(s);
  key += ";o=" + std::to_string(canon.lower_or_bits);
  key += ";t=" + std::to_string(canon.trunc_lsbs);
  key += ";x=" + std::string(canon.operand_swap ? "1" : "0");
  key += ";g=" + std::string(canon.signed_wrapper ? "1" : "0");
  if (!canon.flips.empty()) {
    key += ";p=";
    for (std::size_t i = 0; i < canon.flips.size(); ++i) {
      if (i) key += ",";
      key += std::to_string(canon.flips[i].output) + ":" + std::to_string(canon.flips[i].index);
    }
  }
  return key;
}

Config parse_key(const std::string& key) {
  Config c;
  c.summation.clear();
  bool saw_width = false;
  std::size_t pos = 0;
  while (pos < key.size()) {
    std::size_t end = key.find(';', pos);
    if (end == std::string::npos) end = key.size();
    const std::string token = key.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) continue;
    if (token[0] == 'w' && token.find('=') == std::string::npos) {
      c.width = static_cast<unsigned>(std::stoul(token.substr(1)));
      saw_width = true;
      continue;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("dse::parse_key: bad token '" + token + "'");
    }
    const std::string field = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (field == "l") {
      bool found = false;
      for (const auto& info : kLeafInfo) {
        if (value == info.token) {
          c.leaf = info.leaf;
          found = true;
          break;
        }
      }
      if (!found) throw std::invalid_argument("dse::parse_key: unknown leaf '" + value + "'");
    } else if (field == "s") {
      for (const char ch : value) c.summation.push_back(summation_from_char(ch));
    } else if (field == "o") {
      c.lower_or_bits = static_cast<unsigned>(std::stoul(value));
    } else if (field == "t") {
      c.trunc_lsbs = static_cast<unsigned>(std::stoul(value));
    } else if (field == "x") {
      c.operand_swap = value == "1";
    } else if (field == "g") {
      c.signed_wrapper = value == "1";
    } else if (field == "p") {
      std::size_t p = 0;
      while (p < value.size()) {
        std::size_t comma = value.find(',', p);
        if (comma == std::string::npos) comma = value.size();
        const std::string flip = value.substr(p, comma - p);
        p = comma + 1;
        const std::size_t colon = flip.find(':');
        if (colon == std::string::npos) {
          throw std::invalid_argument("dse::parse_key: bad flip '" + flip + "'");
        }
        c.flips.push_back({static_cast<std::uint8_t>(std::stoul(flip.substr(0, colon))),
                           static_cast<std::uint8_t>(std::stoul(flip.substr(colon + 1)))});
      }
    } else {
      throw std::invalid_argument("dse::parse_key: unknown field '" + field + "'");
    }
  }
  if (!saw_width) throw std::invalid_argument("dse::parse_key: missing width");
  for (const TableFlip& f : c.flips) {
    if (f.output >= 6 || f.index >= 64) {
      throw std::invalid_argument("dse::parse_key: flip out of range");
    }
  }
  canonicalize(c);
  return c;
}

std::uint64_t config_hash(const Config& c) {
  const std::string key = config_key(c);
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a
  for (const char ch : key) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::string display_name(const Config& c) {
  Config canon = c;
  canonicalize(canon);
  std::string name = "dse_w" + std::to_string(canon.width) + "_" + leaf_info(canon.leaf).token;
  if (!canon.summation.empty()) {
    name += "_";
    for (const mult::Summation s : canon.summation) name += summation_char(s);
  }
  if (canon.lower_or_bits) name += "_o" + std::to_string(canon.lower_or_bits);
  if (canon.trunc_lsbs) name += "_t" + std::to_string(canon.trunc_lsbs);
  if (canon.operand_swap) name += "_x";
  if (canon.signed_wrapper) name += "_sgn";
  if (!canon.flips.empty()) name += "_f" + std::to_string(canon.flips.size());
  return name;
}

Config paper_ca(unsigned width) {
  Config c;
  c.width = width;
  c.leaf = Config::Leaf::kApprox4x4;
  c.summation.assign(num_levels(c), mult::Summation::kAccurate);
  canonicalize(c);
  return c;
}

Config paper_cc(unsigned width) {
  Config c = paper_ca(width);
  std::fill(c.summation.begin(), c.summation.end(), mult::Summation::kCarryFree);
  return c;
}

Config paper_approx4x4() { return paper_ca(4); }

// ---- space ----------------------------------------------------------------

SpaceSpec make_space(const std::string& preset) {
  SpaceSpec spec;
  spec.name = preset;
  if (preset == "paper8") {
    spec.widths = {8};
    spec.summations = {mult::Summation::kAccurate, mult::Summation::kCarryFree,
                       mult::Summation::kLowerOr};
    spec.max_trunc = 4;
    spec.max_tt_flips = 2;
  } else if (preset == "paper4") {
    spec.widths = {4};
    spec.max_trunc = 2;
    spec.max_tt_flips = 2;
  } else if (preset == "smoke8") {
    // Small enough for exhaustive enumeration in CI seconds, yet containing
    // the paper's Ca8/Cc8 anchors and their main competitors.
    spec.widths = {8};
    spec.leaves = {Config::Leaf::kApprox4x4, Config::Leaf::kAccurate4x4,
                   Config::Leaf::kKulkarni2x2};
    spec.max_trunc = 2;
    spec.allow_swap = false;
    spec.allow_signed = false;
    spec.max_tt_flips = 0;
  } else if (preset == "wide16") {
    spec.widths = {16};
    spec.leaves = {Config::Leaf::kApprox4x4, Config::Leaf::kAccurate4x4,
                   Config::Leaf::kPerturbed4x2Pair};
    spec.max_trunc = 8;
    spec.max_tt_flips = 2;
  } else if (preset == "signed8") {
    spec.widths = {8};
    spec.allow_signed = true;
    spec.max_trunc = 2;
    spec.max_tt_flips = 1;
  } else {
    throw std::invalid_argument("dse::make_space: unknown preset '" + preset + "'");
  }
  return spec;
}

std::vector<std::string> space_names() {
  return {"paper4", "paper8", "smoke8", "wide16", "signed8"};
}

namespace {

std::vector<Config::Leaf> compatible_leaves(const SpaceSpec& spec, unsigned width) {
  std::vector<Config::Leaf> out;
  for (const Config::Leaf leaf : spec.leaves) {
    if (leaf_width(leaf) <= width) out.push_back(leaf);
  }
  return out;
}

}  // namespace

std::vector<Config> enumerate(const SpaceSpec& spec) {
  std::vector<Config> out;
  const std::size_t nsum = spec.summations.size();
  for (const unsigned width : spec.widths) {
    for (const Config::Leaf leaf : compatible_leaves(spec, width)) {
      Config base;
      base.width = width;
      base.leaf = leaf;
      const unsigned levels = num_levels(base);
      // Odometer over the per-level summation schedule.
      std::vector<std::size_t> digits(levels, 0);
      for (;;) {
        base.summation.clear();
        for (unsigned i = 0; i < levels; ++i) base.summation.push_back(spec.summations[digits[i]]);
        const bool uses_or = has_lower_or(base);
        const std::vector<unsigned> lob_options =
            uses_or ? spec.lower_or_options : std::vector<unsigned>{0};
        for (const unsigned lob : lob_options) {
          base.lower_or_bits = lob;
          for (unsigned trunc = 0; trunc <= spec.max_trunc; ++trunc) {
            base.trunc_lsbs = trunc;
            for (const bool swap : spec.allow_swap ? std::vector<bool>{false, true}
                                                   : std::vector<bool>{false}) {
              base.operand_swap = swap;
              for (const bool sgn : spec.allow_signed ? std::vector<bool>{false, true}
                                                      : std::vector<bool>{false}) {
                base.signed_wrapper = sgn;
                Config c = base;
                canonicalize(c);
                out.push_back(std::move(c));
              }
            }
          }
        }
        // Advance the odometer (terminates immediately when levels == 0).
        unsigned pos = 0;
        for (; pos < levels; ++pos) {
          if (++digits[pos] < nsum) break;
          digits[pos] = 0;
        }
        if (pos == levels) break;
      }
    }
  }
  return out;
}

namespace {

TableFlip random_flip(Xoshiro256& rng) {
  return {static_cast<std::uint8_t>(rng.below(6)), static_cast<std::uint8_t>(rng.below(64))};
}

}  // namespace

Config sample(const SpaceSpec& spec, Xoshiro256& rng) {
  Config c;
  c.width = spec.widths[rng.below(spec.widths.size())];
  const std::vector<Config::Leaf> leaves = compatible_leaves(spec, c.width);
  if (leaves.empty()) throw std::invalid_argument("dse::sample: no leaf fits the width");
  c.leaf = leaves[rng.below(leaves.size())];
  const unsigned levels = num_levels(c);
  c.summation.clear();
  for (unsigned i = 0; i < levels; ++i) {
    c.summation.push_back(spec.summations[rng.below(spec.summations.size())]);
  }
  if (has_lower_or(c) && !spec.lower_or_options.empty()) {
    c.lower_or_bits = spec.lower_or_options[rng.below(spec.lower_or_options.size())];
  }
  c.trunc_lsbs = static_cast<unsigned>(rng.below(spec.max_trunc + 1));
  c.operand_swap = spec.allow_swap && rng.below(2) == 1;
  c.signed_wrapper = spec.allow_signed && rng.below(2) == 1;
  if (c.leaf == Config::Leaf::kPerturbed4x2Pair && spec.max_tt_flips > 0) {
    const std::uint64_t n = rng.below(spec.max_tt_flips + 1);
    for (std::uint64_t i = 0; i < n; ++i) c.flips.push_back(random_flip(rng));
  }
  canonicalize(c);
  return c;
}

Config mutate(const SpaceSpec& spec, const Config& c, Xoshiro256& rng) {
  Config m = c;
  canonicalize(m);
  // Applicable move kinds; chosen uniformly so the search stays ergodic
  // over every dimension the space allows.
  enum Move : unsigned {
    kResum,
    kReleaf,
    kRewidth,
    kTrunc,
    kSwap,
    kSigned,
    kLowerOr,
    kFlip,
  };
  std::vector<Move> moves;
  if (!m.summation.empty() && spec.summations.size() > 1) moves.push_back(kResum);
  if (compatible_leaves(spec, m.width).size() > 1) moves.push_back(kReleaf);
  if (spec.widths.size() > 1) moves.push_back(kRewidth);
  if (spec.max_trunc > 0) moves.push_back(kTrunc);
  if (spec.allow_swap) moves.push_back(kSwap);
  if (spec.allow_signed) moves.push_back(kSigned);
  if (has_lower_or(m) && spec.lower_or_options.size() > 1) moves.push_back(kLowerOr);
  if (m.leaf == Config::Leaf::kPerturbed4x2Pair && spec.max_tt_flips > 0) moves.push_back(kFlip);
  if (moves.empty()) return m;

  switch (moves[rng.below(moves.size())]) {
    case kResum: {
      const std::size_t level = rng.below(m.summation.size());
      m.summation[level] = spec.summations[rng.below(spec.summations.size())];
      if (has_lower_or(m) && m.lower_or_bits == 0 && !spec.lower_or_options.empty()) {
        m.lower_or_bits = spec.lower_or_options[rng.below(spec.lower_or_options.size())];
      }
      break;
    }
    case kReleaf: {
      const std::vector<Config::Leaf> leaves = compatible_leaves(spec, m.width);
      m.leaf = leaves[rng.below(leaves.size())];
      // The schedule depth may change; fresh levels get random entries.
      const unsigned levels = num_levels(m);
      while (m.summation.size() < levels) {
        m.summation.push_back(spec.summations[rng.below(spec.summations.size())]);
      }
      m.summation.resize(levels);
      break;
    }
    case kRewidth: {
      m.width = spec.widths[rng.below(spec.widths.size())];
      const std::vector<Config::Leaf> leaves = compatible_leaves(spec, m.width);
      if (std::find(leaves.begin(), leaves.end(), m.leaf) == leaves.end()) {
        m.leaf = leaves[rng.below(leaves.size())];
      }
      const unsigned levels = num_levels(m);
      while (m.summation.size() < levels) {
        m.summation.push_back(spec.summations[rng.below(spec.summations.size())]);
      }
      m.summation.resize(levels);
      if (m.trunc_lsbs > spec.max_trunc) m.trunc_lsbs = spec.max_trunc;
      break;
    }
    case kTrunc:
      if (m.trunc_lsbs == 0) {
        ++m.trunc_lsbs;
      } else if (m.trunc_lsbs >= spec.max_trunc) {
        --m.trunc_lsbs;
      } else {
        m.trunc_lsbs += rng.below(2) == 1 ? 1u : static_cast<unsigned>(-1);
      }
      break;
    case kSwap: m.operand_swap = !m.operand_swap; break;
    case kSigned: m.signed_wrapper = !m.signed_wrapper; break;
    case kLowerOr:
      m.lower_or_bits = spec.lower_or_options[rng.below(spec.lower_or_options.size())];
      break;
    case kFlip:
      if (m.flips.empty()) {
        m.flips.push_back(random_flip(rng));
      } else if (m.flips.size() >= spec.max_tt_flips) {
        // At budget: move or drop one flip.
        const std::size_t victim = rng.below(m.flips.size());
        if (rng.below(2) == 1) {
          m.flips[victim] = random_flip(rng);
        } else {
          m.flips.erase(m.flips.begin() + static_cast<std::ptrdiff_t>(victim));
        }
      } else if (rng.below(2) == 1) {
        m.flips.push_back(random_flip(rng));
      } else {
        m.flips.erase(m.flips.begin() + static_cast<std::ptrdiff_t>(rng.below(m.flips.size())));
      }
      break;
  }
  canonicalize(m);
  return m;
}

Config crossover(const SpaceSpec& spec, const Config& a, const Config& b, Xoshiro256& rng) {
  (void)spec;
  Config c = a;
  canonicalize(c);
  if (a.width != b.width || a.leaf != b.leaf) return c;
  Config cb = b;
  canonicalize(cb);
  for (std::size_t i = 0; i < c.summation.size() && i < cb.summation.size(); ++i) {
    if (rng.below(2) == 1) c.summation[i] = cb.summation[i];
  }
  if (rng.below(2) == 1) c.lower_or_bits = cb.lower_or_bits;
  if (rng.below(2) == 1) c.trunc_lsbs = cb.trunc_lsbs;
  if (rng.below(2) == 1) c.operand_swap = cb.operand_swap;
  if (rng.below(2) == 1) c.signed_wrapper = cb.signed_wrapper;
  if (rng.below(2) == 1) c.flips = cb.flips;
  canonicalize(c);
  return c;
}

}  // namespace axmult::dse
