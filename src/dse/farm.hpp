// Sharded multi-process evaluation farm for the DSE engine.
//
// A search's evaluation fan-out is embarrassingly parallel but each point
// is CPU-heavy (netlist sweep + STA + toggle simulation), so threads in
// one process are not the end of the road: the farm runs N worker
// *processes* — forked directly over socketpair(AF_UNIX) transports, or a
// running axserve daemon attached by Unix socket — all draining a batch
// through the evaluate-batch protocol op and memoizing into the same
// flock-safe EvalCache file. Each worker opens its *own* cache descriptor
// (flock binds to the open file description; a forked copy of the
// parent's fd would share — and therefore never exclude — the parent's
// lock), so cross-process single-flight discipline comes from the cache's
// merge-before-append protocol.
//
// Fault model: a worker that dies mid-batch (crash, OOM kill) is detected
// by EOF on its transport, and its outstanding keys are requeued to the
// surviving workers; retry backpressure (attach mode, daemon queue full)
// resubmits up to max_retries and then evaluates inline in the parent,
// which is also the fallback when no worker is alive at all.
//
// Determinism: the farm only *evaluates* — it proposes nothing and orders
// nothing. Results are keyed by canonical config key, cache hits are
// counted in the parent per occurrence before any sharding, and a key's
// objective vector is bit-identical no matter which process computed it
// (the evaluator is deterministic per EvalOptions). A search driven
// through the farm therefore returns byte-identical fronts at any worker
// count, including zero.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dse/cache.hpp"
#include "dse/evaluate.hpp"

namespace axmult::dse {

struct FarmOptions {
  /// Worker processes to fork. 0 with an empty attach_socket makes a
  /// degenerate farm that evaluates everything inline in the parent.
  unsigned workers = 2;
  /// Non-empty: attach to a running axserve daemon at this Unix socket
  /// instead of forking (the daemon's queue is the shard pool).
  std::string attach_socket;
  /// Backing EvalCache file shared by the parent and every forked worker
  /// (each opens its own descriptor). Empty = workers run uncached.
  std::string cache_path;
  /// Evaluation context, carried to workers as wire overrides so their
  /// cache keys match the submitting search exactly.
  EvalOptions eval;
  double deadline_ms = -1.0;  ///< per-key deadline in attach mode; < 0 = none
  unsigned max_retries = 3;   ///< retry-reply resubmissions before inline fallback
  /// Test hook: a forked worker calls _exit() abruptly when asked to run
  /// its (N+1)-th real evaluation (cache hits don't count). 0 = disabled.
  unsigned worker_exit_after = 0;
};

/// One farm instance owns its worker processes (forked in the
/// constructor, reaped in the destructor — closing the transports is the
/// shutdown signal) or one daemon connection.
class EvalFarm {
 public:
  explicit EvalFarm(FarmOptions opts);
  ~EvalFarm();

  EvalFarm(const EvalFarm&) = delete;
  EvalFarm& operator=(const EvalFarm&) = delete;

  /// Evaluates `configs` against `cache` (the parent's cache): hits are
  /// served and counted locally per occurrence, distinct misses are
  /// sharded across the workers, results land back in `cache` and the
  /// returned vector (index-aligned with `configs`). Deterministic in
  /// value for any worker count; throws std::runtime_error only when a
  /// key fails to evaluate everywhere (including inline).
  [[nodiscard]] std::vector<Objectives> evaluate_batch(const std::vector<Config>& configs,
                                                       EvalCache& cache,
                                                       std::uint64_t* cache_hits = nullptr);

  [[nodiscard]] std::size_t alive_workers() const noexcept;
  /// Keys requeued because their worker died mid-batch.
  [[nodiscard]] std::uint64_t requeues() const noexcept { return requeues_; }
  /// Keys evaluated in the parent (no worker alive, or retries exhausted).
  [[nodiscard]] std::uint64_t inline_evals() const noexcept { return inline_evals_; }
  /// Retry replies absorbed (attach-mode backpressure).
  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }

 private:
  struct Worker {
    pid_t pid = -1;  ///< -1 for the attach-mode daemon connection
    int fd = -1;     ///< -1 once dead
    std::vector<std::string> outstanding;  ///< keys sent, not yet answered
  };

  void spawn_workers();
  void kill_worker(Worker& w);
  /// Sends one evaluate-batch frame with `keys` to `w`; false on a dead
  /// transport (caller requeues).
  [[nodiscard]] bool dispatch(Worker& w, const std::vector<std::string>& keys);

  FarmOptions opts_;
  std::vector<Worker> workers_;
  std::uint64_t next_id_ = 0;
  std::uint64_t requeues_ = 0;
  std::uint64_t inline_evals_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace axmult::dse
