// Surrogate screening layer of the DSE engine (Strategy::kSurrogate).
//
// Million-candidate spaces are out of reach when every candidate pays a
// full netlist evaluation. The surrogate strategy decouples *proposing*
// from *confirming*: each generation drafts a large candidate batch
// (mutations and recombinations of the confirmed front plus fresh
// samples), ranks it by a cheap predicted Pareto contribution, and only
// the top slice is submitted for real evaluation. The predictor is an
// incremental ridge regression per objective over hand-picked config
// features, refit from every confirmed evaluation — and wherever the
// analytic error engine's envelope admits a candidate, its error
// predictions are replaced by error::surrogate_seed's *exact* numbers, so
// a large share of the screening happens on true values for free.
//
// Determinism contract (same as the other strategies): all stochastic
// decisions run on the calling thread from one Xoshiro256 stream, the
// archive is an ordered map over canonical config keys, confirmations are
// folded into the model in key order, and score ties break by key — so
// the proposal sequence, and therefore the final front, is bit-identical
// for any evaluation thread/worker count.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dse/evaluate.hpp"
#include "dse/space.hpp"
#include "error/analytic.hpp"

namespace axmult::dse {

/// Cheap, deterministic features of one config: width, leaf one-hot,
/// per-level summation mix, truncation depth (absolute and relative),
/// Cb/lower-OR width, swap/signedness flags, and the leaf perturbation
/// distance (flip count + significance-weighted flip mass).
inline constexpr std::size_t kNumFeatures = 19;
using FeatureVector = std::array<double, kNumFeatures>;

[[nodiscard]] FeatureVector extract_features(const Config& c);

/// The directly modelled targets, in model order; the remaining
/// objectives are served by proxies (see predict_cost).
enum class SurrogateTarget : std::uint8_t { kMre, kNmed, kLuts, kDelay, kEdp };
inline constexpr std::size_t kNumTargets = 5;

/// Incremental ridge regression: one linear model per target over the
/// feature vector, fit in log1p space (objectives are positive and span
/// orders of magnitude) via normal equations with deterministic Gaussian
/// elimination. observe() is O(F^2), fit() is O(F^3) with F = 19 — both
/// negligible next to one real evaluation. Not thread-safe; the search
/// drives it from the calling thread only.
class SurrogateModel {
 public:
  explicit SurrogateModel(bool analytic_seeding = true, double ridge_lambda = 1e-3);

  /// Folds one confirmed evaluation into the normal-equation accumulators.
  /// Call in canonical key order for bit-reproducible fits.
  void observe(const Config& c, const Objectives& obj);

  /// Refits the per-target weights from everything observed so far.
  void fit();

  [[nodiscard]] std::size_t observations() const noexcept { return n_; }
  [[nodiscard]] bool fitted() const noexcept { return fitted_; }

  /// Predicted value of one modelled target (>= 0); 0 before any fit().
  [[nodiscard]] double predict(const Config& c, SurrogateTarget t) const;

  /// Predicted cost vector for `objectives`. Error objectives use the
  /// exact analytic seed when the envelope admits the config (memoized per
  /// key); unmodelled objectives use proxies (carry4 ~ luts/4, energy ~
  /// edp/delay, maxerr/errprob ~ the modelled error targets).
  [[nodiscard]] std::vector<double> predict_cost(const Config& c,
                                                 const std::vector<Objective>& objectives) const;

  /// The exact analytic seed for `c`, if its envelope admits it (memoized;
  /// nullopt outside the envelope or when seeding is disabled).
  [[nodiscard]] const std::optional<error::SurrogateSeed>& seed_for(const Config& c) const;

 private:
  [[nodiscard]] double predict_features(const FeatureVector& f, SurrogateTarget t) const;

  bool analytic_seeding_;
  double lambda_;
  std::size_t n_ = 0;
  bool fitted_ = false;
  // Shared X^T X (features are target-independent) + per-target X^T y.
  std::array<double, kNumFeatures * kNumFeatures> xtx_{};
  std::array<std::array<double, kNumFeatures>, kNumTargets> xty_{};
  std::array<std::array<double, kNumFeatures>, kNumTargets> weights_{};
  mutable std::map<std::string, std::optional<error::SurrogateSeed>> seed_memo_;
};

struct SurrogateStrategyOptions {
  unsigned population = 32;   ///< confirmations per generation (top slice)
  unsigned proposals = 256;   ///< candidates screened per generation
  double explore_weight = 0.25;  ///< novelty bonus weight in the acquisition
  std::uint64_t seed = 1;
  std::vector<Objective> objectives{Objective::kLuts, Objective::kDelay, Objective::kMre};
  /// Exact analytic error seeding (disable when the evaluation context is
  /// not the uniform sweep the analytic engine models).
  bool analytic_seeding = true;
};

/// The propose/confirm state machine run_search drives: propose() returns
/// the next slice of configs to evaluate for real, confirm() feeds the
/// results back (archive insertion + model refit).
class SurrogateStrategy {
 public:
  SurrogateStrategy(SpaceSpec space, SurrogateStrategyOptions opts);

  /// Next batch of at most `max_count` configs to confirm, never repeating
  /// a confirmed or currently returned key. Generation 0 (empty archive)
  /// is a random bootstrap; later generations screen `proposals`
  /// candidates through the surrogate and return the top slice by
  /// acquisition score = predicted-nondominated-rank (against the
  /// confirmed archive) - explore_weight * feature-space novelty, ties by
  /// key. An empty return means the reachable space is exhausted.
  [[nodiscard]] std::vector<Config> propose(std::size_t max_count);

  /// Records confirmed evaluations (any order; canonicalized by key
  /// internally) and refits the model.
  void confirm(const std::vector<Config>& configs, const std::vector<Objectives>& objectives);

  [[nodiscard]] const SurrogateModel& model() const noexcept { return model_; }
  [[nodiscard]] std::size_t archive_size() const noexcept { return archive_.size(); }

 private:
  struct Confirmed {
    Config config;
    FeatureVector features{};
    std::vector<double> cost;
  };

  SpaceSpec space_;
  SurrogateStrategyOptions opts_;
  Xoshiro256 rng_;
  SurrogateModel model_;
  std::map<std::string, Confirmed> archive_;  ///< canonical key -> confirmed
};

}  // namespace axmult::dse
