// Config -> objective-vector evaluation for the DSE engine.
//
// Every config is lowered twice, exactly like the hand-crafted designs:
//   * a behavioral model (mult::RecursiveMultiplier with per-level
//     summation, optionally a LUT-INIT-perturbed custom leaf) for sampled
//     error evaluation at wide operand widths, and
//   * a structural netlist (multgen builders) for LUT/CARRY4 area, STA
//     critical path, toggle-activity energy/EDP — and for the exhaustive
//     error sweep on the widest profitable fabric::WideEvaluator when the
//     operand space is small enough.
// Model and netlist are generated from the same tables/schedule, and the
// equivalence is pinned by tests/dse_test.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dse/space.hpp"
#include "error/analytic.hpp"
#include "fabric/netlist.hpp"
#include "nn/mac.hpp"

namespace axmult::dse {

/// Bumped whenever a change to the models/netlist generators alters the
/// numbers a config evaluates to; persisted cache entries from other
/// versions are ignored on load.
inline constexpr unsigned kEvaluatorVersion = 2;

struct EvalOptions {
  /// Error evaluation: exhaustive netlist sweep when the operand space has
  /// at most `exhaustive_bits` input bits, sampled behavioral sweep with
  /// (`samples`, `seed`) above that.
  unsigned exhaustive_bits = 20;
  std::uint64_t samples = std::uint64_t{1} << 20;
  std::uint64_t seed = 1;
  /// Toggle vectors for the power model (its own seed stays at the
  /// power-model default so DSE numbers match the benches).
  std::uint64_t power_vectors = 1024;
  /// Optional asymmetric operand distribution (clipped Gaussians with
  /// independent per-port parameters, always sampled). This is where the
  /// operand-swap flag earns its keep: under the default uniform sweep a
  /// swap is error-neutral, matching the paper's Section 6 observation
  /// that Cas/Ccs only pay off for skewed input distributions.
  bool gaussian = false;
  double mean_a = 0.0;
  double sigma_a = 0.0;
  double mean_b = 0.0;
  double sigma_b = 0.0;
  /// Analytic (sweep-free) exact metrics for configs the compositional
  /// error engine covers (error/analytic.hpp) — the only exact option at
  /// 16 bits and beyond. Applies to the uniform sweep only; gaussian
  /// evaluation always samples.
  bool analytic = true;

  /// Cache-key context: everything besides the config that the error
  /// numbers depend on, e.g. "v1:u" (uniform exhaustive/sampled) or
  /// "v1:g:100,30,20,5:s1048576" — plus the evaluator version.
  [[nodiscard]] std::string context() const;
};

/// The objective vector of one evaluated config.
struct Objectives {
  // Error (unsigned core, truncation and swap included).
  double mre = 0.0;  ///< mean relative error — the paper's ARE
  double nmed = 0.0;
  double error_probability = 0.0;
  std::uint64_t max_error = 0;
  // Implementation (full netlist, signed wrapper included when configured).
  std::uint64_t luts = 0;
  std::uint64_t carry4 = 0;
  std::uint64_t ffs = 0;
  double critical_path_ns = 0.0;
  double energy_au = 0.0;
  double edp_au = 0.0;
  // Provenance of the error numbers.
  std::uint64_t samples = 0;
  std::uint64_t seed = 0;
  bool exhaustive = false;
  /// How the error metrics were obtained: "exhaustive" (netlist sweep over
  /// the full operand space), "analytic" (exact compositional engine) or
  /// "sampled" (seeded behavioral sweep).
  std::string provenance;
};

/// Search objectives (all minimized).
enum class Objective : std::uint8_t {
  kLuts,
  kCarry4,
  kDelay,
  kMre,
  kNmed,
  kMaxError,
  kErrorProbability,
  kEnergy,
  kEdp,
};

[[nodiscard]] const char* objective_name(Objective o) noexcept;
/// Parses "luts", "carry4", "delay", "mre", "nmed", "maxerr", "errprob",
/// "energy", "edp"; throws std::invalid_argument otherwise.
[[nodiscard]] Objective parse_objective(const std::string& name);
[[nodiscard]] double objective_value(const Objectives& obj, Objective o) noexcept;
[[nodiscard]] std::vector<double> cost_vector(const Objectives& obj,
                                              const std::vector<Objective>& objectives);

/// Behavioral model of the unsigned data path (truncation and operand swap
/// applied; the sign-magnitude wrapper is hardware-only — it preserves the
/// core's error profile on magnitudes, see mult/signed_wrapper.hpp).
[[nodiscard]] mult::MultiplierPtr make_model(const Config& c);

/// Structural netlist of the unsigned core (truncation + swap wiring, no
/// signed wrapper) — the netlist whose error the sweeps measure.
[[nodiscard]] fabric::Netlist make_core_netlist(const Config& c);

/// Full implementation netlist: the core, plus conditional-negate stages
/// on both operands and the product when `signed_wrapper` is set. Area,
/// timing and energy are measured on this.
[[nodiscard]] fabric::Netlist make_config_netlist(const Config& c);

/// The config's behavioral composition as an error::AnalyticSpec — the
/// exact description the compositional error engine consumes. Mirrors
/// make_model (same leaf tables, schedule, truncation, swap; the signed
/// wrapper is hardware-only and does not appear).
[[nodiscard]] error::AnalyticSpec analytic_spec(const Config& c);

/// Evaluates one config (single-threaded; fan out via evaluate_all).
[[nodiscard]] Objectives evaluate(const Config& c, const EvalOptions& opts = {});

class EvalCache;

/// Evaluates a batch in parallel (common::parallel_for sharding, one
/// config per chunk), memoizing through `cache` when non-null. Results
/// depend only on the configs, never on the thread count. `cache_hits`
/// (optional) receives the number of configs served from the cache.
[[nodiscard]] std::vector<Objectives> evaluate_all(const std::vector<Config>& configs,
                                                   EvalCache* cache, const EvalOptions& opts = {},
                                                   unsigned threads = 0,
                                                   std::uint64_t* cache_hits = nullptr);

/// A DSE winner as an nn::MacBackend (product table + cost roll-up), ready
/// for the axnn accuracy-vs-EDP study. Signed configs are rejected (the
/// NN data path is unsigned).
[[nodiscard]] nn::MacBackendPtr make_backend(const Config& c);

}  // namespace axmult::dse
