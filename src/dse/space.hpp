// Configuration space of the design-space exploration engine.
//
// A dse::Config describes one point in the parameterized multiplier space
// the paper opens up (and AMG-style follow-up work searches): operand
// width, the elementary module (including bounded LUT-INIT perturbations
// of the 4x2 block), an independent Ca/Cc/Cb summation choice per
// recursion level, result truncation, the operand-swap flag and the
// sign-magnitude wrapper. Configs canonicalize to a stable, parseable key
// string — the identity used by the evaluation cache, the front JSON and
// the checkpoint/resume machinery.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "mult/recursive.hpp"

namespace axmult::dse {

/// One flipped entry of a 4x2 leaf truth table: `output` is the product
/// bit (0..5), `index` the table row (a | b << 4, 0..63).
struct TableFlip {
  std::uint8_t output = 0;
  std::uint8_t index = 0;

  friend bool operator==(const TableFlip&, const TableFlip&) = default;
  friend auto operator<=>(const TableFlip&, const TableFlip&) = default;
};

/// Per-output-bit truth tables of a 4x2 block: bit (a | b << 4) of
/// `tables[k]` is product bit k for a 4-bit operand a and 2-bit operand b.
using LeafTables = std::array<std::uint64_t, 6>;

/// The paper's approximate 4x2 module (Section 3.1) as truth tables — the
/// base point every perturbed leaf XORs its flips onto.
[[nodiscard]] LeafTables approx_4x2_tables();

struct Config {
  /// Elementary module at the bottom of the recursion.
  enum class Leaf : std::uint8_t {
    kApprox4x4,        ///< the paper's Table 3 module
    kAccurate4x4,      ///< accurate 4x4 tree
    kKulkarni2x2,      ///< K-style 2x2
    kRehman2x2,        ///< W-style 2x2
    kAccurate2x2,      ///< accurate 2x2
    kPerturbed4x2Pair  ///< two (possibly INIT-perturbed) 4x2 blocks + add
  };

  unsigned width = 8;  ///< operand bits of the unsigned core (power of two)
  Leaf leaf = Leaf::kApprox4x4;
  /// Summation per recursion level, outermost (width -> width/2) first;
  /// exactly log2(width / leaf_width) entries after canonicalization.
  std::vector<mult::Summation> summation;
  /// Columns OR'd per kLowerOr level (0 when no level uses kLowerOr).
  unsigned lower_or_bits = 0;
  /// Product LSBs tied to constant zero (result truncation).
  unsigned trunc_lsbs = 0;
  /// Operands exchanged at the top level (the Cas/Ccs wiring trick).
  bool operand_swap = false;
  /// Sign-magnitude wrapper: (width+1)-bit two's-complement ports around
  /// the unsigned core (conditional negate on both operands + product).
  bool signed_wrapper = false;
  /// XOR flips applied to the base 4x2 tables (kPerturbed4x2Pair only),
  /// sorted and duplicate-free after canonicalization.
  std::vector<TableFlip> flips;

  friend bool operator==(const Config&, const Config&) = default;
};

/// Operand bits of a leaf kind (4 or 2).
[[nodiscard]] unsigned leaf_width(Config::Leaf leaf) noexcept;

/// Key-string token of a leaf kind ("a4x4", "p4x2", ...) and its inverse
/// (throws std::invalid_argument on unknown tokens). Shared by the config
/// keys and the checkpoint serialization.
[[nodiscard]] const char* leaf_token(Config::Leaf leaf);
[[nodiscard]] Config::Leaf leaf_from_token(const std::string& token);

/// Key-string character of a summation kind ('A'/'C'/'O') and its inverse.
[[nodiscard]] char summation_char(mult::Summation s) noexcept;
[[nodiscard]] mult::Summation summation_from_char(char c);

/// Recursion levels of a (canonical) config: log2(width / leaf width).
[[nodiscard]] unsigned num_levels(const Config& c) noexcept;

/// Normalizes a config in place: clamps/extends the summation schedule,
/// drops meaningless fields (lower_or_bits without a kLowerOr level, flips
/// on a non-perturbed leaf), sorts the flips and cancels duplicates.
void canonicalize(Config& c);

/// Stable, human-readable, parseable identity, e.g.
///   "w8;l=a4x4;s=A;o=0;t=0;x=0;g=0"           (the Ca8 point)
///   "w8;l=p4x2;s=C;o=0;t=2;x=1;g=0;p=3:17,5:40"
/// Canonicalizes a copy first, so equal designs always share one key.
[[nodiscard]] std::string config_key(const Config& c);

/// Inverse of config_key; throws std::invalid_argument on malformed keys.
[[nodiscard]] Config parse_key(const std::string& key);

/// FNV-1a hash of the canonical key.
[[nodiscard]] std::uint64_t config_hash(const Config& c);

/// Compact display / HDL-friendly name, e.g. "dse_w8_a4x4_AA".
[[nodiscard]] std::string display_name(const Config& c);

/// The paper's hand-crafted designs expressed as configs (the acceptance
/// anchors the search must rediscover as non-dominated points).
[[nodiscard]] Config paper_ca(unsigned width);    ///< Ca: approx 4x4, accurate sum
[[nodiscard]] Config paper_cc(unsigned width);    ///< Cc: approx 4x4, carry-free sum
[[nodiscard]] Config paper_approx4x4();           ///< the Table 3 module itself

// ---- the searchable space ------------------------------------------------

struct SpaceSpec {
  std::string name = "custom";
  std::vector<unsigned> widths{8};
  std::vector<Config::Leaf> leaves{Config::Leaf::kApprox4x4, Config::Leaf::kAccurate4x4,
                                   Config::Leaf::kKulkarni2x2, Config::Leaf::kRehman2x2,
                                   Config::Leaf::kAccurate2x2, Config::Leaf::kPerturbed4x2Pair};
  std::vector<mult::Summation> summations{mult::Summation::kAccurate,
                                          mult::Summation::kCarryFree};
  /// lower_or_bits choices for schedules containing kLowerOr.
  std::vector<unsigned> lower_or_options{2, 4};
  unsigned max_trunc = 4;  ///< trunc_lsbs ranges over 0..max_trunc
  bool allow_swap = true;
  bool allow_signed = false;
  /// Perturbation budget: at most this many table flips per config
  /// (0 disables the LUT-INIT dimension even for kPerturbed4x2Pair).
  unsigned max_tt_flips = 2;
};

/// Named presets: "paper4", "paper8", "smoke8" (the CI smoke space),
/// "wide16" (sampled error evaluation), "signed8". Throws on unknown names.
[[nodiscard]] SpaceSpec make_space(const std::string& preset);
[[nodiscard]] std::vector<std::string> space_names();

/// All configs of the space *without* table perturbations (the flips
/// dimension is continuous-ish and only reachable via sample/mutate).
/// Deterministic order.
[[nodiscard]] std::vector<Config> enumerate(const SpaceSpec& spec);

/// One uniformly drawn config (flips included up to the budget).
[[nodiscard]] Config sample(const SpaceSpec& spec, Xoshiro256& rng);

/// One random edit move, staying inside the space.
[[nodiscard]] Config mutate(const SpaceSpec& spec, const Config& c, Xoshiro256& rng);

/// Field-wise recombination; falls back to a copy of `a` when the parents
/// are structurally incompatible (different width or leaf).
[[nodiscard]] Config crossover(const SpaceSpec& spec, const Config& a, const Config& b,
                               Xoshiro256& rng);

}  // namespace axmult::dse
