// Minimal JSON field extraction for the DSE engine's flat, line-oriented
// artifacts (evaluation-cache lines, checkpoints, front files). The repo
// writes all JSON by hand; these helpers read back exactly that dialect:
// one object per line (or a flat object with unique field names), no
// escaped quotes inside strings, arrays of numbers or plain strings.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace axmult::dse::jsonio {

/// Value of `"field": <number>`; nullopt when the field is absent.
[[nodiscard]] std::optional<double> find_number(const std::string& text,
                                                const std::string& field);

/// Value of `"field": "<string>"` (no escape handling).
[[nodiscard]] std::optional<std::string> find_string(const std::string& text,
                                                     const std::string& field);

/// Value of `"field": true|false`.
[[nodiscard]] std::optional<bool> find_bool(const std::string& text, const std::string& field);

/// Elements of `"field": [1, 2, ...]`; empty when absent or empty.
[[nodiscard]] std::vector<double> find_number_array(const std::string& text,
                                                    const std::string& field);

/// Elements of `"field": ["a", "b", ...]`; empty when absent or empty.
[[nodiscard]] std::vector<std::string> find_string_array(const std::string& text,
                                                         const std::string& field);

}  // namespace axmult::dse::jsonio
