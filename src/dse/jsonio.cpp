#include "dse/jsonio.hpp"

#include <cstdlib>

namespace axmult::dse::jsonio {

namespace {

/// Position just past `"field":` (skipping whitespace), or npos.
std::size_t value_pos(const std::string& text, const std::string& field) {
  const std::string needle = "\"" + field + "\"";
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    std::size_t p = pos + needle.size();
    while (p < text.size() && (text[p] == ' ' || text[p] == '\t' || text[p] == '\n')) ++p;
    if (p < text.size() && text[p] == ':') {
      ++p;
      while (p < text.size() && (text[p] == ' ' || text[p] == '\t' || text[p] == '\n')) ++p;
      return p;
    }
    pos += needle.size();  // a string value that happens to equal the name
  }
  return std::string::npos;
}

}  // namespace

std::optional<double> find_number(const std::string& text, const std::string& field) {
  const std::size_t p = value_pos(text, field);
  if (p == std::string::npos) return std::nullopt;
  const char* begin = text.c_str() + p;
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) return std::nullopt;
  return v;
}

std::optional<std::string> find_string(const std::string& text, const std::string& field) {
  const std::size_t p = value_pos(text, field);
  if (p == std::string::npos || p >= text.size() || text[p] != '"') return std::nullopt;
  const std::size_t close = text.find('"', p + 1);
  if (close == std::string::npos) return std::nullopt;
  return text.substr(p + 1, close - p - 1);
}

std::optional<bool> find_bool(const std::string& text, const std::string& field) {
  const std::size_t p = value_pos(text, field);
  if (p == std::string::npos) return std::nullopt;
  if (text.compare(p, 4, "true") == 0) return true;
  if (text.compare(p, 5, "false") == 0) return false;
  return std::nullopt;
}

std::vector<double> find_number_array(const std::string& text, const std::string& field) {
  std::vector<double> out;
  const std::size_t p = value_pos(text, field);
  if (p == std::string::npos || p >= text.size() || text[p] != '[') return out;
  const std::size_t close = text.find(']', p);
  if (close == std::string::npos) return out;
  std::size_t cur = p + 1;
  while (cur < close) {
    const char* begin = text.c_str() + cur;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) break;
    out.push_back(v);
    cur = static_cast<std::size_t>(end - text.c_str());
    while (cur < close && (text[cur] == ',' || text[cur] == ' ')) ++cur;
  }
  return out;
}

std::vector<std::string> find_string_array(const std::string& text, const std::string& field) {
  std::vector<std::string> out;
  const std::size_t p = value_pos(text, field);
  if (p == std::string::npos || p >= text.size() || text[p] != '[') return out;
  const std::size_t close = text.find(']', p);
  if (close == std::string::npos) return out;
  std::size_t cur = p + 1;
  while (cur < close) {
    const std::size_t open_quote = text.find('"', cur);
    if (open_quote == std::string::npos || open_quote > close) break;
    const std::size_t close_quote = text.find('"', open_quote + 1);
    if (close_quote == std::string::npos || close_quote > close) break;
    out.push_back(text.substr(open_quote + 1, close_quote - open_quote - 1));
    cur = close_quote + 1;
  }
  return out;
}

}  // namespace axmult::dse::jsonio
