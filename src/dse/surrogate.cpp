#include "dse/surrogate.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "analysis/pareto.hpp"
#include "mult/recursive.hpp"

namespace axmult::dse {

// ---- features -------------------------------------------------------------

FeatureVector extract_features(const Config& c) {
  Config canon = c;
  canonicalize(canon);
  FeatureVector f{};
  f[0] = 1.0;  // bias
  f[1] = std::log2(static_cast<double>(canon.width));
  f[2 + static_cast<std::size_t>(canon.leaf)] = 1.0;  // leaf one-hot (6 kinds)
  const double levels = static_cast<double>(canon.summation.size());
  if (levels > 0.0) {
    double accurate = 0.0, carry_free = 0.0, lower_or = 0.0;
    for (const mult::Summation s : canon.summation) {
      if (s == mult::Summation::kAccurate) accurate += 1.0;
      else if (s == mult::Summation::kCarryFree) carry_free += 1.0;
      else lower_or += 1.0;
    }
    f[8] = accurate / levels;
    f[9] = carry_free / levels;
    f[10] = lower_or / levels;
    f[11] = canon.summation.front() == mult::Summation::kAccurate ? 1.0 : 0.0;
  } else {
    f[11] = 1.0;  // leaf-only: the (absent) top summation is exact
  }
  f[12] = static_cast<double>(canon.lower_or_bits);
  f[13] = static_cast<double>(canon.trunc_lsbs);
  f[14] = static_cast<double>(canon.trunc_lsbs) / static_cast<double>(canon.width);
  f[15] = canon.operand_swap ? 1.0 : 0.0;
  f[16] = canon.signed_wrapper ? 1.0 : 0.0;
  f[17] = static_cast<double>(canon.flips.size());
  // Significance-weighted perturbation mass: a flip on product bit k of
  // the 4x2 leaf moves the output by 2^k on 1/64th of the leaf's inputs.
  double flip_mass = 0.0;
  for (const TableFlip& flip : canon.flips) {
    flip_mass += std::ldexp(1.0, static_cast<int>(flip.output)) / 64.0;
  }
  f[18] = flip_mass;
  return f;
}

// ---- ridge model ----------------------------------------------------------

namespace {

constexpr std::size_t kF = kNumFeatures;

/// log1p-space target extraction, in SurrogateTarget order.
std::array<double, kNumTargets> targets_of(const Objectives& obj) {
  const auto tf = [](double v) { return std::log1p(std::max(0.0, v)); };
  return {tf(obj.mre), tf(obj.nmed), tf(static_cast<double>(obj.luts)),
          tf(obj.critical_path_ns), tf(obj.edp_au)};
}

/// Solves (A + lambda*I) w = b for the symmetric F x F system via Gaussian
/// elimination with partial pivoting — deterministic (no data-dependent
/// branching beyond the pivot choice, which is itself a pure function of
/// the accumulated sums).
std::array<double, kF> solve_ridge(const std::array<double, kF * kF>& a_in,
                                   const std::array<double, kF>& b_in, double lambda) {
  std::array<double, kF * kF> a = a_in;
  std::array<double, kF> b = b_in;
  for (std::size_t i = 0; i < kF; ++i) a[i * kF + i] += lambda;
  for (std::size_t col = 0; col < kF; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < kF; ++row) {
      if (std::fabs(a[row * kF + col]) > std::fabs(a[pivot * kF + col])) pivot = row;
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < kF; ++j) std::swap(a[col * kF + j], a[pivot * kF + j]);
      std::swap(b[col], b[pivot]);
    }
    const double diag = a[col * kF + col];
    if (std::fabs(diag) < 1e-12) continue;  // ridge keeps this rare
    for (std::size_t row = col + 1; row < kF; ++row) {
      const double factor = a[row * kF + col] / diag;
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < kF; ++j) a[row * kF + j] -= factor * a[col * kF + j];
      b[row] -= factor * b[col];
    }
  }
  std::array<double, kF> w{};
  for (std::size_t i = kF; i-- > 0;) {
    double acc = b[i];
    for (std::size_t j = i + 1; j < kF; ++j) acc -= a[i * kF + j] * w[j];
    const double diag = a[i * kF + i];
    w[i] = std::fabs(diag) < 1e-12 ? 0.0 : acc / diag;
  }
  return w;
}

}  // namespace

SurrogateModel::SurrogateModel(bool analytic_seeding, double ridge_lambda)
    : analytic_seeding_(analytic_seeding), lambda_(ridge_lambda) {}

void SurrogateModel::observe(const Config& c, const Objectives& obj) {
  const FeatureVector f = extract_features(c);
  const auto y = targets_of(obj);
  for (std::size_t i = 0; i < kF; ++i) {
    for (std::size_t j = 0; j < kF; ++j) xtx_[i * kF + j] += f[i] * f[j];
    for (std::size_t t = 0; t < kNumTargets; ++t) xty_[t][i] += f[i] * y[t];
  }
  ++n_;
}

void SurrogateModel::fit() {
  if (n_ == 0) return;
  for (std::size_t t = 0; t < kNumTargets; ++t) weights_[t] = solve_ridge(xtx_, xty_[t], lambda_);
  fitted_ = true;
}

double SurrogateModel::predict_features(const FeatureVector& f, SurrogateTarget t) const {
  if (!fitted_) return 0.0;
  const auto& w = weights_[static_cast<std::size_t>(t)];
  double acc = 0.0;
  for (std::size_t i = 0; i < kF; ++i) acc += w[i] * f[i];
  return std::max(0.0, std::expm1(acc));
}

double SurrogateModel::predict(const Config& c, SurrogateTarget t) const {
  return predict_features(extract_features(c), t);
}

const std::optional<error::SurrogateSeed>& SurrogateModel::seed_for(const Config& c) const {
  const std::string key = config_key(c);
  const auto it = seed_memo_.find(key);
  if (it != seed_memo_.end()) return it->second;
  std::optional<error::SurrogateSeed> seed;
  if (analytic_seeding_) seed = error::surrogate_seed(analytic_spec(c));
  return seed_memo_.emplace(key, std::move(seed)).first->second;
}

std::vector<double> SurrogateModel::predict_cost(
    const Config& c, const std::vector<Objective>& objectives) const {
  const FeatureVector f = extract_features(c);
  const auto& seed = seed_for(c);
  const double luts = predict_features(f, SurrogateTarget::kLuts);
  const double delay = predict_features(f, SurrogateTarget::kDelay);
  const double edp = predict_features(f, SurrogateTarget::kEdp);
  const double mre = seed ? seed->mre : predict_features(f, SurrogateTarget::kMre);
  const double nmed = seed ? seed->nmed : predict_features(f, SurrogateTarget::kNmed);
  std::vector<double> cost;
  cost.reserve(objectives.size());
  for (const Objective o : objectives) {
    switch (o) {
      case Objective::kLuts: cost.push_back(luts); break;
      case Objective::kCarry4: cost.push_back(luts / 4.0); break;  // rank proxy
      case Objective::kDelay: cost.push_back(delay); break;
      case Objective::kMre: cost.push_back(mre); break;
      case Objective::kNmed: cost.push_back(nmed); break;
      case Objective::kMaxError:
        cost.push_back(seed ? static_cast<double>(seed->max_error_ld) : nmed);  // rank proxy
        break;
      case Objective::kErrorProbability:
        cost.push_back(seed ? seed->error_probability : mre);  // rank proxy
        break;
      case Objective::kEnergy: cost.push_back(delay > 1e-12 ? edp / delay : edp); break;
      case Objective::kEdp: cost.push_back(edp); break;
    }
  }
  return cost;
}

// ---- strategy -------------------------------------------------------------

SurrogateStrategy::SurrogateStrategy(SpaceSpec space, SurrogateStrategyOptions opts)
    : space_(std::move(space)),
      opts_(std::move(opts)),
      rng_(opts_.seed),
      model_(opts_.analytic_seeding) {}

std::vector<Config> SurrogateStrategy::propose(std::size_t max_count) {
  if (max_count == 0) return {};

  // Deduplicated candidate drafting: a candidate must be new against the
  // archive and against this call's own picks. Attempts are bounded so a
  // (nearly) exhausted space terminates instead of spinning.
  std::set<std::string> taken;
  std::vector<std::pair<std::string, Config>> pool;
  const auto try_add = [&](Config c) {
    canonicalize(c);
    std::string key = config_key(c);
    if (archive_.count(key) != 0 || !taken.insert(key).second) return false;
    pool.emplace_back(std::move(key), std::move(c));
    return true;
  };

  if (archive_.empty()) {
    // Bootstrap generation: uniform random, confirmed wholesale — the
    // model has nothing to rank with yet.
    const std::size_t attempts = 50 * max_count + 50;
    for (std::size_t i = 0; i < attempts && pool.size() < max_count; ++i) {
      try_add(sample(space_, rng_));
    }
    std::vector<Config> batch;
    batch.reserve(pool.size());
    for (auto& [key, config] : pool) batch.push_back(std::move(config));
    return batch;
  }

  // The confirmed rank-0 front seeds the genetic proposal operators.
  std::vector<const Confirmed*> confirmed;
  std::vector<std::vector<double>> archive_costs;
  confirmed.reserve(archive_.size());
  archive_costs.reserve(archive_.size());
  for (const auto& [key, point] : archive_) {
    confirmed.push_back(&point);
    archive_costs.push_back(point.cost);
  }
  const std::vector<unsigned> archive_rank = analysis::nondominated_rank(archive_costs);
  std::vector<const Confirmed*> front;
  for (std::size_t i = 0; i < confirmed.size(); ++i) {
    if (archive_rank[i] == 0) front.push_back(confirmed[i]);
  }

  const std::size_t want = std::max<std::size_t>(opts_.proposals, max_count);
  const std::size_t attempts = 20 * want + 50;
  for (std::size_t i = 0; i < attempts && pool.size() < want; ++i) {
    const std::uint64_t op = rng_.below(4);
    if (op <= 1) {
      const Config& parent = front[rng_.below(front.size())]->config;
      try_add(mutate(space_, parent, rng_));
    } else if (op == 2 && front.size() >= 2) {
      const Config& a = front[rng_.below(front.size())]->config;
      const Config& b = front[rng_.below(front.size())]->config;
      try_add(crossover(space_, a, b, rng_));
    } else {
      try_add(sample(space_, rng_));
    }
  }
  if (pool.empty()) return {};  // reachable space exhausted

  // Acquisition: rank candidate predictions against the *confirmed*
  // archive costs in one joint non-dominated sort (a candidate predicted
  // to be dominated by what we already hold ranks behind one predicted to
  // extend the front), minus an exploration bonus for feature-space
  // novelty. Ties break by key: bit-determinism.
  std::vector<std::vector<double>> joint = archive_costs;
  std::vector<FeatureVector> pool_features;
  pool_features.reserve(pool.size());
  for (const auto& [key, config] : pool) {
    joint.push_back(model_.predict_cost(config, opts_.objectives));
    pool_features.push_back(extract_features(config));
  }
  const std::vector<unsigned> joint_rank = analysis::nondominated_rank(joint);

  struct Scored {
    double score;
    const std::string* key;
    std::size_t index;
  };
  std::vector<Scored> scored;
  scored.reserve(pool.size());
  for (std::size_t j = 0; j < pool.size(); ++j) {
    // Novelty: distance to the nearest confirmed point in feature space
    // (bias dimension included — it cancels).
    double novelty = 0.0;
    if (!confirmed.empty()) {
      double best = -1.0;
      for (const Confirmed* point : confirmed) {
        double d2 = 0.0;
        for (std::size_t i = 0; i < kNumFeatures; ++i) {
          const double d = pool_features[j][i] - point->features[i];
          d2 += d * d;
        }
        if (best < 0.0 || d2 < best) best = d2;
      }
      novelty = std::sqrt(best);
    }
    const double score =
        static_cast<double>(joint_rank[archive_costs.size() + j]) - opts_.explore_weight * novelty;
    scored.push_back({score, &pool[j].first, j});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    return a.score != b.score ? a.score < b.score : *a.key < *b.key;
  });

  std::vector<Config> batch;
  batch.reserve(std::min(max_count, scored.size()));
  for (std::size_t j = 0; j < scored.size() && batch.size() < max_count; ++j) {
    batch.push_back(std::move(pool[scored[j].index].second));
  }
  return batch;
}

void SurrogateStrategy::confirm(const std::vector<Config>& configs,
                                const std::vector<Objectives>& objectives) {
  // Canonical key order before archive insertion and model folding: the
  // fit is bit-identical no matter how the evaluation fan-out (threads,
  // farm workers) delivered the results.
  std::vector<std::pair<std::string, std::size_t>> order;
  order.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) order.emplace_back(config_key(configs[i]), i);
  std::sort(order.begin(), order.end());
  for (const auto& [key, i] : order) {
    if (archive_.count(key) != 0) continue;
    Confirmed point;
    point.config = configs[i];
    canonicalize(point.config);
    point.features = extract_features(point.config);
    point.cost = cost_vector(objectives[i], opts_.objectives);
    archive_.emplace(key, std::move(point));
    model_.observe(configs[i], objectives[i]);
  }
  model_.fit();
}

}  // namespace axmult::dse
