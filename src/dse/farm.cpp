#include "dse/farm.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "serve/client.hpp"
#include "serve/protocol.hpp"

namespace axmult::dse {

namespace {

/// Frame loop of one forked worker: parse evaluate-batch requests, answer
/// one reply frame per key through its own EvalCache descriptor. Runs in
/// the child; never returns (EOF on the transport is the shutdown signal).
[[noreturn]] void worker_main(int fd, const FarmOptions& opts) {
  EvalCache cache(opts.cache_path);
  unsigned evals_done = 0;
  for (;;) {
    std::string payload;
    if (serve::read_frame(fd, payload) != serve::FrameStatus::kOk) ::_exit(0);
    std::string parse_error;
    const std::optional<serve::Request> req = serve::parse_request(payload, &parse_error);
    if (!req || req->op != serve::Op::kEvaluateBatch) {
      serve::Reply err = serve::error_reply(req ? req->id : 0,
                                            parse_error.empty() ? "bad op" : parse_error);
      if (!serve::write_frame(fd, serve::encode_reply(err))) ::_exit(0);
      continue;
    }
    const EvalOptions eval = req->eval_options(opts.eval);
    for (std::size_t i = 0; i < req->keys.size(); ++i) {
      serve::Reply reply;
      reply.id = req->id;
      reply.op = "evaluate-batch";
      reply.key = req->keys[i];
      reply.index = static_cast<std::uint32_t>(i);
      reply.total = static_cast<std::uint32_t>(req->keys.size());
      Config config;
      try {
        config = parse_key(req->keys[i]);
      } catch (const std::exception& e) {
        reply.error = e.what();
        if (!serve::write_frame(fd, serve::encode_reply(reply))) ::_exit(0);
        continue;
      }
      const std::string full = EvalCache::full_key(config, eval);
      std::optional<Objectives> obj = cache.lookup(full);
      if (!obj) {
        cache.reload();  // another worker may have landed it meanwhile
        obj = cache.lookup(full);
      }
      if (obj) {
        reply.cached = true;
      } else {
        if (opts.worker_exit_after != 0 && evals_done >= opts.worker_exit_after) {
          ::_exit(3);  // crash-recovery test hook: die with work outstanding
        }
        obj = evaluate(config, eval);
        cache.insert(full, *obj);
        ++evals_done;
      }
      reply.ok = true;
      reply.has_objectives = true;
      reply.objectives = *obj;
      if (!serve::write_frame(fd, serve::encode_reply(reply))) ::_exit(0);
    }
  }
}

}  // namespace

EvalFarm::EvalFarm(FarmOptions opts) : opts_(std::move(opts)) {
  if (!opts_.attach_socket.empty()) {
    const std::optional<int> fd = serve::connect_with_retry(opts_.attach_socket, 5000);
    if (!fd) {
      throw std::runtime_error("farm: cannot attach to '" + opts_.attach_socket + "'");
    }
    workers_.push_back(Worker{-1, *fd, {}});
    return;
  }
  spawn_workers();
}

void EvalFarm::spawn_workers() {
  for (unsigned i = 0; i < opts_.workers; ++i) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) continue;
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      continue;
    }
    if (pid == 0) {
      ::close(sv[0]);
      for (const Worker& w : workers_) {
        if (w.fd >= 0) ::close(w.fd);  // siblings' parent-side transports
      }
      worker_main(sv[1], opts_);  // never returns
    }
    ::close(sv[1]);
    workers_.push_back(Worker{pid, sv[0], {}});
  }
}

EvalFarm::~EvalFarm() {
  for (Worker& w : workers_) {
    if (w.fd >= 0) ::close(w.fd);  // EOF tells a forked worker to _exit(0)
    w.fd = -1;
  }
  for (Worker& w : workers_) {
    if (w.pid > 0) ::waitpid(w.pid, nullptr, 0);
    w.pid = -1;
  }
}

std::size_t EvalFarm::alive_workers() const noexcept {
  std::size_t n = 0;
  for (const Worker& w : workers_) n += w.fd >= 0 ? 1 : 0;
  return n;
}

void EvalFarm::kill_worker(Worker& w) {
  if (w.fd >= 0) ::close(w.fd);
  w.fd = -1;
  if (w.pid > 0) {
    ::waitpid(w.pid, nullptr, 0);
    w.pid = -1;
  }
}

bool EvalFarm::dispatch(Worker& w, const std::vector<std::string>& keys) {
  serve::Request req;
  req.op = serve::Op::kEvaluateBatch;
  req.id = ++next_id_;
  req.keys = keys;
  req.deadline_ms = opts_.deadline_ms;
  // Carry the full evaluation context so an attached daemon (whose own
  // defaults may differ) lands entries under the submitting search's keys.
  req.exhaustive_bits = static_cast<long>(opts_.eval.exhaustive_bits);
  req.samples = static_cast<long long>(opts_.eval.samples);
  req.seed = static_cast<long long>(opts_.eval.seed);
  req.analytic = opts_.eval.analytic ? 1 : 0;
  req.power_vectors = static_cast<long long>(opts_.eval.power_vectors);
  req.gaussian = opts_.eval.gaussian ? 1 : 0;
  req.gauss_mean_a = opts_.eval.mean_a;
  req.gauss_sigma_a = opts_.eval.sigma_a;
  req.gauss_mean_b = opts_.eval.mean_b;
  req.gauss_sigma_b = opts_.eval.sigma_b;
  if (!serve::write_frame(w.fd, serve::encode_request(req))) return false;
  w.outstanding = keys;
  return true;
}

std::vector<Objectives> EvalFarm::evaluate_batch(const std::vector<Config>& configs,
                                                 EvalCache& cache, std::uint64_t* cache_hits) {
  // Per-occurrence parent-side cache pass first: hit counting must not
  // depend on how the remainder is sharded, or counters (and progress
  // lines) would vary with worker count.
  std::vector<std::string> full_keys(configs.size());
  std::map<std::string, Objectives> resolved;
  std::vector<std::string> pending;  // distinct misses, first-appearance order
  std::set<std::string> queued;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    full_keys[i] = EvalCache::full_key(configs[i], opts_.eval);
    if (const std::optional<Objectives> hit = cache.lookup(full_keys[i])) {
      if (cache_hits) ++*cache_hits;
      resolved.emplace(full_keys[i], *hit);
    } else if (queued.insert(full_keys[i]).second) {
      pending.push_back(config_key(configs[i]));  // wire format: config keys
    }
  }

  std::map<std::string, Config> by_key;  // config key -> config, for fallback
  std::map<std::string, unsigned> attempts;
  for (std::size_t i = 0; i < configs.size(); ++i) by_key.emplace(config_key(configs[i]), configs[i]);

  const auto resolve_inline = [&](const std::string& key) {
    const Config& config = by_key.at(key);
    const std::string full = EvalCache::full_key(config, opts_.eval);
    std::optional<Objectives> obj = cache.lookup(full);  // a worker may have landed it
    if (!obj) {
      obj = evaluate(config, opts_.eval);
      cache.insert(full, *obj);
      ++inline_evals_;
    }
    resolved.emplace(full, *obj);
  };

  const std::size_t distinct = pending.size();
  std::size_t done = 0;
  while (done < distinct) {
    // Collect live transports; with none left, finish inline.
    std::vector<Worker*> alive;
    for (Worker& w : workers_) {
      if (w.fd >= 0) alive.push_back(&w);
    }
    if (alive.empty()) {
      for (const std::string& key : pending) resolve_inline(key);
      done += pending.size();
      pending.clear();
      break;
    }

    // Hand contiguous chunks of the pending queue to idle workers.
    for (Worker* w : alive) {
      if (!w->outstanding.empty() || pending.empty()) continue;
      std::size_t busy = 0;
      for (const Worker* v : alive) busy += v->outstanding.empty() ? 0 : 1;
      const std::size_t idle = alive.size() - busy;
      const std::size_t chunk = std::max<std::size_t>(1, (pending.size() + idle - 1) / idle);
      const std::size_t take = std::min(chunk, pending.size());
      std::vector<std::string> shard(pending.begin(), pending.begin() + take);
      pending.erase(pending.begin(), pending.begin() + take);
      if (!dispatch(*w, shard)) {
        // Transport already dead: requeue and drop the worker.
        pending.insert(pending.begin(), shard.begin(), shard.end());
        kill_worker(*w);
      }
    }

    std::vector<Worker*> busy;
    for (Worker& w : workers_) {
      if (w.fd >= 0 && !w.outstanding.empty()) busy.push_back(&w);
    }
    if (busy.empty()) continue;  // everything requeued onto dead transports

    std::vector<pollfd> fds;
    fds.reserve(busy.size());
    for (const Worker* w : busy) fds.push_back(pollfd{w->fd, POLLIN, 0});
    if (::poll(fds.data(), fds.size(), -1) < 0) continue;  // EINTR: re-poll

    for (std::size_t i = 0; i < busy.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Worker& w = *busy[i];
      std::string payload;
      if (serve::read_frame(w.fd, payload) != serve::FrameStatus::kOk) {
        // Worker died mid-batch: requeue everything it still owed.
        requeues_ += w.outstanding.size();
        pending.insert(pending.begin(), w.outstanding.begin(), w.outstanding.end());
        w.outstanding.clear();
        kill_worker(w);
        continue;
      }
      const std::optional<serve::Reply> reply = serve::parse_reply(payload);
      if (!reply || reply->op != "evaluate-batch" || reply->key.empty()) continue;
      const auto it = std::find(w.outstanding.begin(), w.outstanding.end(), reply->key);
      if (it == w.outstanding.end()) continue;  // stale/duplicate attribution
      w.outstanding.erase(it);
      if (reply->ok && reply->has_objectives) {
        const Config& config = by_key.at(reply->key);
        const std::string full = EvalCache::full_key(config, opts_.eval);
        cache.insert(full, reply->objectives);
        resolved.emplace(full, reply->objectives);
        ++done;
      } else if (reply->retry && ++attempts[reply->key] <= opts_.max_retries) {
        ++retries_;
        pending.push_back(reply->key);
      } else {
        // Hard error or retries exhausted: the parent owns it now.
        resolve_inline(reply->key);
        ++done;
      }
    }
  }

  std::vector<Objectives> out(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto it = resolved.find(full_keys[i]);
    if (it == resolved.end()) {
      throw std::runtime_error("farm: unresolved key " + full_keys[i]);
    }
    out[i] = it->second;
  }
  return out;
}

}  // namespace axmult::dse
