// Persistent evaluation cache of the DSE engine.
//
// Config evaluation is the expensive step of a search (an exhaustive 8x8
// netlist sweep plus STA plus toggle simulation per point), and searches
// revisit points constantly — across NSGA-II generations, across resumed
// runs, across different strategies over the same space. The cache
// memoizes `full key -> Objectives` where the full key is the evaluator
// context (version, operand distribution, sample budget) joined with the
// canonical config key, so a cache file is safely shared between searches
// with different options: mismatching contexts simply miss.
//
// On-disk format: JSON lines, one entry per line, append-only. A load
// tolerates a missing file (fresh cache), skips malformed lines and
// entries from other evaluator versions, and lets later duplicates win
// (last write is the freshest).
//
// Cross-process discipline: the backing file is shared by concurrent
// processes (DSE runs, the axserve daemon, the CLI). Every file access
// holds an exclusive flock() on the cache fd, appends are a single
// write() to an O_APPEND descriptor (whole lines, never torn), and both
// reload() and insert() first merge any lines other writers appended
// since our last read (tracked by a byte offset) — so an insert whose key
// another process already persisted is skipped and each key appears in
// the file exactly once among cooperating writers.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "dse/evaluate.hpp"

namespace axmult::dse {

class EvalCache {
 public:
  /// Binds the cache to `path` and loads any existing entries. An empty
  /// path makes a purely in-memory cache (no persistence); an unopenable
  /// path degrades to in-memory.
  explicit EvalCache(std::string path = {});
  ~EvalCache();

  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  /// Full cache key of one evaluation: `opts.context() + "|" + config_key`.
  [[nodiscard]] static std::string full_key(const Config& c, const EvalOptions& opts);

  /// Thread-safe lookup; counts a hit or a miss.
  [[nodiscard]] std::optional<Objectives> lookup(const std::string& key);

  /// Thread-safe insert; appends to the backing file when persistent.
  /// Under the file lock it first merges lines other processes appended,
  /// and skips its own append when the key is already on disk.
  void insert(const std::string& key, const Objectives& obj);

  /// Merges entries other processes appended to the backing file since
  /// the last read; returns how many new entries arrived. No-op (0) for
  /// in-memory caches. Thread-safe.
  std::size_t reload();

  /// Result of one compact() pass.
  struct CompactStats {
    std::size_t kept = 0;               ///< lines surviving the rewrite
    std::size_t dropped_stale = 0;      ///< lines from other evaluator versions
    std::size_t dropped_duplicate = 0;  ///< superseded duplicates of a kept key
    std::size_t dropped_malformed = 0;  ///< unparseable lines (crash debris)
  };

  /// Rewrites the backing file in place under the same exclusive flock the
  /// append path takes: current-version entries only, one line per key
  /// (last write wins), lines kept verbatim in first-appearance order.
  /// In-place (ftruncate + rewrite through the same inode) rather than
  /// rename-over, so other processes' flocks — which bind to the open file
  /// description — keep excluding us. Their next locked access notices the
  /// file shrank below their merge offset and re-reads from the start. A
  /// writer whose merged offset lands mid-rewrite may transiently re-append
  /// a key the compaction kept; such duplicates stay semantically harmless
  /// (loads let the last line win) and the next compact() removes them.
  /// No-op for in-memory caches. Thread-safe.
  CompactStats compact();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / static_cast<double>(total) : 0.0;
  }
  /// Entries served from the file loaded at construction.
  [[nodiscard]] std::size_t loaded_entries() const noexcept { return loaded_; }

  /// One cache line (exposed for the front/checkpoint writers, which store
  /// objective vectors in the same dialect).
  [[nodiscard]] static std::string serialize_objectives(const Objectives& obj);
  [[nodiscard]] static std::optional<Objectives> parse_objectives(const std::string& line);

 private:
  /// Reads complete lines in [file_offset_, EOF) and merges them into
  /// entries_ (file wins on duplicates). Caller holds mutex_ AND the
  /// exclusive flock. Returns the number of entries added or replaced;
  /// sets *found_key when a merged line carries `watch_key`.
  std::size_t merge_from_file_locked(const std::string* watch_key, bool* found_key);

  std::string path_;
  int fd_ = -1;                  ///< O_APPEND descriptor; -1 = in-memory
  std::size_t file_offset_ = 0;  ///< bytes of the file already merged
  mutable std::mutex mutex_;
  std::map<std::string, Objectives> entries_;
  std::size_t loaded_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace axmult::dse
