#include "dse/evaluate.hpp"

#include <atomic>
#include <cmath>
#include <iomanip>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/bits.hpp"
#include "common/parallel_for.hpp"
#include "common/rng.hpp"
#include "dse/cache.hpp"
#include "error/metrics.hpp"
#include "fabric/lut6.hpp"
#include "mult/elementary.hpp"
#include "fabric/optimize.hpp"
#include "multgen/builders.hpp"
#include "multgen/generators.hpp"
#include "power/power.hpp"
#include "timing/sta.hpp"

namespace axmult::dse {

namespace {

using multgen::BitVec;

// ---- perturbed 4x2 leaf ---------------------------------------------------

LeafTables perturbed_tables(const Config& c) {
  LeafTables tables = approx_4x2_tables();
  for (const TableFlip& f : c.flips) tables[f.output] ^= std::uint64_t{1} << f.index;
  return tables;
}

/// Behavioral 4x2 partial product straight from the truth tables.
std::uint64_t tables_4x2(const LeafTables& t, std::uint64_t a, std::uint64_t b) {
  const unsigned idx = static_cast<unsigned>((a & 15) | ((b & 3) << 4));
  std::uint64_t p = 0;
  for (unsigned k = 0; k < 6; ++k) p |= ((t[k] >> idx) & 1) << k;
  return p;
}

/// Behavioral 4x4 leaf: two table-driven 4x2 partial products summed the
/// way build_accurate_4x4 sums them — bits 0..1 pass through, the rest go
/// through a 6-bit adder, so any overflow a perturbed table can provoke
/// wraps exactly like the hardware's truncated carry chain. With zero
/// flips this equals mult::approx_4x4_accurate_sum (pinned in tests).
std::uint64_t tables_4x4(const LeafTables& t, std::uint64_t a, std::uint64_t b) {
  const std::uint64_t pp0 = tables_4x2(t, a, b & 3);
  const std::uint64_t pp1 = tables_4x2(t, a, (b >> 2) & 3);
  return (pp0 & 3) | ((((pp0 >> 2) + pp1) & 63) << 2);
}

/// True when O6 of a table ignores pin a3 (index bit 3) — the condition
/// for sharing a dual-output LUT6_2 between two product bits.
bool a3_independent(std::uint64_t table) {
  for (unsigned idx = 0; idx < 64; ++idx) {
    if (((table >> idx) & 1) != ((table >> (idx ^ 8)) & 1)) return false;
  }
  return true;
}

/// Structural 4x2 block from truth tables. Identically-zero product bits
/// cost nothing (GND); adjacent a3-independent bits share one dual-output
/// LUT (I5 tied high); the rest get one LUT each on pins {a0..a3,b0,b1}.
/// For the unperturbed base tables this reproduces build_approx_4x2's
/// 4-LUT mapping exactly.
BitVec build_tables_4x2(fabric::Netlist& nl, const LeafTables& t, const BitVec& a,
                        const BitVec& b, const std::string& prefix) {
  BitVec p(6, fabric::kNetGnd);
  const std::array<fabric::NetId, 6> pins{multgen::bit_or_gnd(a, 0), multgen::bit_or_gnd(a, 1),
                                          multgen::bit_or_gnd(a, 2), multgen::bit_or_gnd(a, 3),
                                          multgen::bit_or_gnd(b, 0), multgen::bit_or_gnd(b, 1)};
  for (unsigned k = 0; k < 6; ++k) {
    if (t[k] == 0) continue;
    if (k + 1 < 6 && t[k + 1] != 0 && a3_independent(t[k]) && a3_independent(t[k + 1])) {
      // Dual-pack: O5 = bit k, O6 = bit k+1, both 5-input functions of
      // {a0,a1,a2,b0,b1} with I5 tied high.
      const std::uint64_t lo = t[k];
      const std::uint64_t hi = t[k + 1];
      const auto page = [](std::uint64_t table, const std::array<unsigned, 5>& in) {
        const unsigned idx = in[0] | (in[1] << 1) | (in[2] << 2) | (in[3] << 4) | (in[4] << 5);
        return ((table >> idx) & 1) != 0;
      };
      const std::uint64_t init = fabric::init_from_o5_o6(
          [&](const std::array<unsigned, 5>& in) { return page(lo, in); },
          [&](const std::array<unsigned, 5>& in) { return page(hi, in); });
      const fabric::LutOut out =
          nl.add_lut6(prefix + ".p" + std::to_string(k) + std::to_string(k + 1), init,
                      {pins[0], pins[1], pins[2], pins[4], pins[5], fabric::kNetVcc},
                      /*with_o5=*/true);
      p[k] = out.o5;
      p[k + 1] = out.o6;
      ++k;
      continue;
    }
    // Pins {a0,a1,a2,a3,b0,b1} address the table as a | b << 4, so the
    // LUT INIT is the truth table verbatim.
    p[k] = nl.add_lut6(prefix + ".p" + std::to_string(k), t[k],
                       {pins[0], pins[1], pins[2], pins[3], pins[4], pins[5]})
               .o6;
  }
  return p;
}

/// Structural 4x4 perturbed leaf, mirroring build_accurate_4x4's shape.
BitVec build_perturbed_4x4(fabric::Netlist& nl, const LeafTables& t, const BitVec& a,
                           const BitVec& b, const std::string& prefix) {
  const BitVec b_lo{multgen::bit_or_gnd(b, 0), multgen::bit_or_gnd(b, 1)};
  const BitVec b_hi{multgen::bit_or_gnd(b, 2), multgen::bit_or_gnd(b, 3)};
  const BitVec pp0 = build_tables_4x2(nl, t, a, b_lo, prefix + ".pp0");
  const BitVec pp1 = build_tables_4x2(nl, t, a, b_hi, prefix + ".pp1");
  const BitVec pp0_hi(pp0.begin() + 2, pp0.end());
  const BitVec sum = multgen::build_binary_add(nl, pp0_hi, pp1, 6, prefix + ".sum");
  BitVec p{pp0[0], pp0[1]};
  p.insert(p.end(), sum.begin(), sum.end());
  return p;
}

// ---- config -> generator plumbing -----------------------------------------

mult::Elementary to_elementary(Config::Leaf leaf) {
  switch (leaf) {
    case Config::Leaf::kApprox4x4: return mult::Elementary::kApprox4x4;
    case Config::Leaf::kAccurate4x4: return mult::Elementary::kAccurate4x4;
    case Config::Leaf::kKulkarni2x2: return mult::Elementary::kKulkarni2x2;
    case Config::Leaf::kRehman2x2: return mult::Elementary::kRehman2x2;
    case Config::Leaf::kAccurate2x2: return mult::Elementary::kAccurate2x2;
    case Config::Leaf::kPerturbed4x2Pair: break;
  }
  throw std::invalid_argument("dse: leaf has no standard elementary");
}

/// Result truncation as a behavioral wrapper (the k LSBs read as zero).
class TruncatedModel final : public mult::Multiplier {
 public:
  TruncatedModel(mult::MultiplierPtr inner, unsigned zeroed_lsbs)
      : inner_(std::move(inner)), mask_(~((std::uint64_t{1} << zeroed_lsbs) - 1)) {}

  [[nodiscard]] std::uint64_t multiply(std::uint64_t a, std::uint64_t b) const override {
    return inner_->multiply(a, b) & mask_;
  }
  [[nodiscard]] unsigned a_bits() const noexcept override { return inner_->a_bits(); }
  [[nodiscard]] unsigned b_bits() const noexcept override { return inner_->b_bits(); }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

 private:
  mult::MultiplierPtr inner_;
  std::uint64_t mask_;
};

/// The recursive core with swap and truncation applied — the fragment
/// shared by the plain and the signed netlists.
BitVec build_core(fabric::Netlist& nl, const BitVec& a, const BitVec& b, const Config& c,
                  const std::string& prefix) {
  multgen::GeneratorSpec spec;
  spec.width = c.width;
  spec.level_summation = c.summation;
  spec.lower_or_bits = c.lower_or_bits;
  if (c.leaf == Config::Leaf::kPerturbed4x2Pair) {
    const LeafTables tables = perturbed_tables(c);
    spec.custom_leaf_width = 4;
    spec.custom_elementary = [tables](fabric::Netlist& n, const BitVec& x, const BitVec& y,
                                      const std::string& p) {
      return build_perturbed_4x4(n, tables, x, y, p);
    };
  } else {
    spec.elementary = to_elementary(c.leaf);
  }
  BitVec p = multgen::build_recursive(nl, c.operand_swap ? b : a, c.operand_swap ? a : b, spec,
                                      prefix);
  for (unsigned i = 0; i < c.trunc_lsbs && i < p.size(); ++i) p[i] = fabric::kNetGnd;
  return p;
}

/// Conditional two's-complement negate: s ? ~x + 1 : x over x.size() bits.
/// One XOR LUT per bit feeding a propagate-only carry chain with cin = s
/// (DI tied low), so the +1 rides the chain for free.
BitVec build_cond_negate(fabric::Netlist& nl, const BitVec& x, fabric::NetId s,
                         const std::string& prefix) {
  static const std::uint64_t kXorInit =
      fabric::init_from_o6([](const std::array<unsigned, 6>& in) { return (in[0] ^ in[1]) != 0; });
  BitVec props(x.size());
  const BitVec dis(x.size(), fabric::kNetGnd);
  for (std::size_t i = 0; i < x.size(); ++i) {
    props[i] = nl.add_lut6(prefix + ".x" + std::to_string(i), kXorInit,
                           {x[i], s, fabric::kNetGnd, fabric::kNetGnd, fabric::kNetGnd,
                            fabric::kNetGnd})
                   .o6;
  }
  return multgen::build_carry_chain(nl, s, props, dis, prefix + ".chain").sum;
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

}  // namespace

// ---- options / objectives -------------------------------------------------

std::string EvalOptions::context() const {
  std::ostringstream os;
  os << "v" << kEvaluatorVersion;
  if (gaussian) {
    os << ";g=" << fmt_double(mean_a) << "," << fmt_double(sigma_a) << "," << fmt_double(mean_b)
       << "," << fmt_double(sigma_b);
  } else {
    os << ";u;e=" << exhaustive_bits << ";a=" << (analytic ? 1 : 0);
  }
  os << ";n=" << samples << ";s=" << seed << ";pv=" << power_vectors;
  return os.str();
}

const char* objective_name(Objective o) noexcept {
  switch (o) {
    case Objective::kLuts: return "luts";
    case Objective::kCarry4: return "carry4";
    case Objective::kDelay: return "delay";
    case Objective::kMre: return "mre";
    case Objective::kNmed: return "nmed";
    case Objective::kMaxError: return "maxerr";
    case Objective::kErrorProbability: return "errprob";
    case Objective::kEnergy: return "energy";
    case Objective::kEdp: return "edp";
  }
  return "?";
}

Objective parse_objective(const std::string& name) {
  for (const Objective o :
       {Objective::kLuts, Objective::kCarry4, Objective::kDelay, Objective::kMre,
        Objective::kNmed, Objective::kMaxError, Objective::kErrorProbability, Objective::kEnergy,
        Objective::kEdp}) {
    if (name == objective_name(o)) return o;
  }
  throw std::invalid_argument("dse: unknown objective '" + name + "'");
}

double objective_value(const Objectives& obj, Objective o) noexcept {
  switch (o) {
    case Objective::kLuts: return static_cast<double>(obj.luts);
    case Objective::kCarry4: return static_cast<double>(obj.carry4);
    case Objective::kDelay: return obj.critical_path_ns;
    case Objective::kMre: return obj.mre;
    case Objective::kNmed: return obj.nmed;
    case Objective::kMaxError: return static_cast<double>(obj.max_error);
    case Objective::kErrorProbability: return obj.error_probability;
    case Objective::kEnergy: return obj.energy_au;
    case Objective::kEdp: return obj.edp_au;
  }
  return 0.0;
}

std::vector<double> cost_vector(const Objectives& obj, const std::vector<Objective>& objectives) {
  std::vector<double> cost;
  cost.reserve(objectives.size());
  for (const Objective o : objectives) cost.push_back(objective_value(obj, o));
  return cost;
}

// ---- model / netlist construction -----------------------------------------

mult::MultiplierPtr make_model(const Config& c) {
  Config canon = c;
  canonicalize(canon);
  mult::MultiplierPtr m;
  const std::string name = display_name(canon);
  if (canon.leaf == Config::Leaf::kPerturbed4x2Pair) {
    const LeafTables tables = perturbed_tables(canon);
    m = std::make_shared<mult::RecursiveMultiplier>(
        canon.width, 4u,
        [tables](std::uint64_t a, std::uint64_t b) { return tables_4x4(tables, a, b); },
        canon.summation, name, canon.lower_or_bits);
  } else {
    m = std::make_shared<mult::RecursiveMultiplier>(canon.width, to_elementary(canon.leaf),
                                                    canon.summation, name, canon.lower_or_bits);
  }
  if (canon.trunc_lsbs > 0) m = std::make_shared<TruncatedModel>(std::move(m), canon.trunc_lsbs);
  if (canon.operand_swap) m = std::make_shared<mult::SwappedMultiplier>(std::move(m));
  return m;
}

fabric::Netlist make_core_netlist(const Config& c) {
  Config canon = c;
  canonicalize(canon);
  return multgen::wrap_netlist(canon.width, [&](fabric::Netlist& nl, const BitVec& a,
                                                const BitVec& b) {
    return build_core(nl, a, b, canon, "u0");
  });
}

fabric::Netlist make_config_netlist(const Config& c) {
  Config canon = c;
  canonicalize(canon);
  if (!canon.signed_wrapper) return make_core_netlist(canon);
  const unsigned w = canon.width;
  // (w+1)-bit two's-complement ports around the unsigned core: conditional
  // negate both operands into magnitudes, multiply, conditionally negate
  // the product. The most negative operand (-2^w) has no magnitude in w
  // bits and is outside the wrapper's input range, exactly like the
  // behavioral mult::SignedMultiplier precondition.
  return multgen::wrap_netlist(w + 1, [&](fabric::Netlist& nl, const BitVec& a, const BitVec& b) {
    const fabric::NetId sa = a[w];
    const fabric::NetId sb = b[w];
    const BitVec ma = build_cond_negate(nl, BitVec(a.begin(), a.begin() + w), sa, "nega");
    const BitVec mb = build_cond_negate(nl, BitVec(b.begin(), b.begin() + w), sb, "negb");
    const BitVec p = build_core(nl, ma, mb, canon, "core");
    static const std::uint64_t kXorInit = fabric::init_from_o6(
        [](const std::array<unsigned, 6>& in) { return (in[0] ^ in[1]) != 0; });
    const fabric::NetId sp = nl.add_lut6("signp", kXorInit,
                                         {sa, sb, fabric::kNetGnd, fabric::kNetGnd,
                                          fabric::kNetGnd, fabric::kNetGnd})
                                 .o6;
    BitVec wide = p;
    wide.push_back(fabric::kNetGnd);  // sign slot: product fits 2w+1 bits
    return build_cond_negate(nl, wide, sp, "negp");
  });
}

error::AnalyticSpec analytic_spec(const Config& c) {
  Config canon = c;
  canonicalize(canon);
  error::AnalyticSpec spec;
  spec.width = canon.width;
  spec.levels = canon.summation;
  spec.lower_or_bits = canon.lower_or_bits;
  spec.trunc_lsbs = canon.trunc_lsbs;
  spec.operand_swap = canon.operand_swap;
  if (canon.leaf == Config::Leaf::kPerturbed4x2Pair) {
    // Same behavioral leaf as make_model: two table-driven 4x2 partial
    // products through the truncated 6-bit adder (NOT approx_4x4 — the
    // summation differs even with zero flips).
    const LeafTables tables = perturbed_tables(canon);
    spec.leaf_bits = 4;
    spec.leaf = error::make_leaf_table(
        4, 4, [tables](std::uint64_t a, std::uint64_t b) { return tables_4x4(tables, a, b); });
    return spec;
  }
  spec.leaf_bits = leaf_width(canon.leaf);
  const auto fn = [&]() -> std::uint64_t (*)(std::uint64_t, std::uint64_t) {
    switch (canon.leaf) {
      case Config::Leaf::kApprox4x4: return mult::approx_4x4;
      case Config::Leaf::kAccurate4x4: return mult::accurate_4x4;
      case Config::Leaf::kKulkarni2x2: return mult::kulkarni_2x2;
      case Config::Leaf::kRehman2x2: return mult::rehman_2x2;
      case Config::Leaf::kAccurate2x2: return mult::accurate_2x2;
      case Config::Leaf::kPerturbed4x2Pair: break;
    }
    throw std::invalid_argument("dse: leaf has no behavioral elementary");
  }();
  spec.leaf = error::make_leaf_table(spec.leaf_bits, spec.leaf_bits, fn);
  return spec;
}

// ---- evaluation -----------------------------------------------------------

namespace {

/// Clipped discrete Gaussian with independent per-port parameters — the
/// operand distribution where the swap flag changes the error numbers.
error::PairSource asymmetric_gaussian_source(unsigned bits, std::uint64_t n, double mean_a,
                                             double sigma_a, double mean_b, double sigma_b,
                                             std::uint64_t seed) {
  auto rng = std::make_shared<Xoshiro256>(seed);
  auto remaining = std::make_shared<std::uint64_t>(n);
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  return [=](std::uint64_t& a, std::uint64_t& b) {
    if (*remaining == 0) return false;
    --*remaining;
    const auto draw = [&](double mean, double sigma) {
      const double v = mean + sigma * gaussian01(*rng);
      if (v <= 0.0) return std::uint64_t{0};
      const auto u = static_cast<std::uint64_t>(std::llround(v));
      return u > mask ? mask : u;
    };
    a = draw(mean_a, sigma_a);
    b = draw(mean_b, sigma_b);
    return true;
  };
}

}  // namespace

Objectives evaluate(const Config& c, const EvalOptions& opts) {
  Config canon = c;
  canonicalize(canon);
  Objectives obj;

  // Error on the unsigned core (the signed wrapper negates exactly, so it
  // preserves the core's error profile on the magnitudes).
  error::ErrorMetrics metrics;
  error::SweepConfig sweep;
  sweep.threads = 1;  // parallelism lives across configs, not inside one
  sweep.collect_pmf = false;
  sweep.collect_bit_probability = false;
  bool done = false;
  if (opts.gaussian) {
    const mult::MultiplierPtr model = make_model(canon);
    metrics = error::characterize(
        *model, asymmetric_gaussian_source(canon.width, opts.samples, opts.mean_a, opts.sigma_a,
                                           opts.mean_b, opts.sigma_b, opts.seed));
    obj.seed = opts.seed;
    obj.provenance = "sampled";
  } else if (2 * canon.width <= opts.exhaustive_bits) {
    const fabric::Netlist core = make_core_netlist(canon);
    metrics = error::sweep_netlist_exhaustive(core, canon.width, canon.width, sweep).metrics;
    obj.exhaustive = true;
    obj.provenance = "exhaustive";
  } else {
    if (opts.analytic) {
      // Exact sweep-free metrics whenever the compositional engine covers
      // the config — the only exact option at 16 bits and beyond.
      if (const auto am = error::analytic_metrics(analytic_spec(canon))) {
        obj.mre = am->metrics.avg_relative_error;
        obj.error_probability = am->error_probability;
        obj.max_error = am->metrics.max_error;  // saturated when wide
        obj.samples = am->metrics.samples;      // ditto
        // NMED over the full operand space; (2^w - 1)^2 overflows uint64
        // at w = 64, so stay in long double throughout.
        const long double mp = ldexpl(1.0L, static_cast<int>(canon.width)) - 1.0L;
        obj.nmed = static_cast<double>(
            static_cast<long double>(am->metrics.avg_error) / (mp * mp));
        obj.exhaustive = true;  // exact over the full operand space
        obj.provenance = "analytic";
        done = true;
      }
    }
    if (!done) {
      const mult::MultiplierPtr model = make_model(canon);
      metrics = error::sweep_sampled(*model, opts.samples, opts.seed, sweep).metrics;
      obj.seed = opts.seed;
      obj.provenance = "sampled";
    }
  }
  if (!done) {
    obj.mre = metrics.avg_relative_error;
    obj.nmed = metrics.nmed(canon.width, canon.width);
    obj.error_probability = metrics.error_probability();
    obj.max_error = metrics.max_error;
    obj.samples = metrics.samples;
  }

  // Implementation cost on the full netlist (wrapper included), after the
  // same optimization pass the packed evaluators run — this is what lets
  // truncated configs actually shed their dead cones in the area count.
  const fabric::Netlist impl = fabric::optimize(make_config_netlist(canon)).netlist;
  const fabric::AreaReport area = impl.area();
  obj.luts = area.luts;
  obj.carry4 = area.carry4;
  obj.ffs = area.ffs;
  const timing::TimingReport sta = timing::analyze(impl);
  obj.critical_path_ns = sta.critical_path_ns;
  power::PowerModel power_model;
  power_model.vectors = opts.power_vectors;
  const power::PowerReport power = power::estimate(impl, power_model);
  obj.energy_au = power.energy_au;
  obj.edp_au = power.edp_au;
  return obj;
}

std::vector<Objectives> evaluate_all(const std::vector<Config>& configs, EvalCache* cache,
                                     const EvalOptions& opts, unsigned threads,
                                     std::uint64_t* cache_hits) {
  std::vector<Objectives> results(configs.size());
  std::atomic<std::uint64_t> hits{0};
  parallel_chunks(configs.size(), threads, [&] {
    return [&](std::uint64_t i) {
      const Config& c = configs[i];
      if (cache != nullptr) {
        const std::string key = EvalCache::full_key(c, opts);
        if (const auto cached = cache->lookup(key)) {
          results[i] = *cached;
          hits.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        results[i] = evaluate(c, opts);
        cache->insert(key, results[i]);
        return;
      }
      results[i] = evaluate(c, opts);
    };
  });
  if (cache_hits != nullptr) *cache_hits = hits.load();
  return results;
}

nn::MacBackendPtr make_backend(const Config& c) {
  Config canon = c;
  canonicalize(canon);
  if (canon.signed_wrapper) {
    throw std::invalid_argument("dse::make_backend: the NN data path is unsigned; "
                                "drop the signed wrapper");
  }
  return std::make_shared<nn::MacBackend>(display_name(canon), make_model(canon),
                                          [canon] { return make_config_netlist(canon); });
}

}  // namespace axmult::dse
