#include "dse/search.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

#include "analysis/pareto.hpp"
#include "common/rng.hpp"
#include "dse/cache.hpp"
#include "dse/farm.hpp"
#include "dse/jsonio.hpp"
#include "dse/surrogate.hpp"

namespace axmult::dse {

namespace {

std::string fmt_double(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

/// Per-index rank and crowding of a population (lower rank is better,
/// larger crowding is better within a rank).
struct RankedPopulation {
  std::vector<unsigned> rank;
  std::vector<double> crowding;
};

RankedPopulation rank_population(const std::vector<std::vector<double>>& costs) {
  RankedPopulation ranked;
  ranked.rank = analysis::nondominated_rank(costs);
  ranked.crowding.assign(costs.size(), 0.0);
  const unsigned max_rank =
      ranked.rank.empty() ? 0 : *std::max_element(ranked.rank.begin(), ranked.rank.end());
  for (unsigned r = 0; r <= max_rank; ++r) {
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < costs.size(); ++i) {
      if (ranked.rank[i] == r) front.push_back(i);
    }
    if (front.empty()) continue;
    const std::vector<double> dist = analysis::crowding_distance(costs, front);
    for (std::size_t k = 0; k < front.size(); ++k) ranked.crowding[front[k]] = dist[k];
  }
  return ranked;
}

/// NSGA-II comparison: rank ascending, then crowding descending, then the
/// stable index tie-break that keeps selection deterministic.
bool nsga_better(const RankedPopulation& ranked, std::size_t a, std::size_t b) {
  if (ranked.rank[a] != ranked.rank[b]) return ranked.rank[a] < ranked.rank[b];
  if (ranked.crowding[a] != ranked.crowding[b]) return ranked.crowding[a] > ranked.crowding[b];
  return a < b;
}

}  // namespace

const char* strategy_name(Strategy s) noexcept {
  switch (s) {
    case Strategy::kExhaustive: return "exhaustive";
    case Strategy::kRandom: return "random";
    case Strategy::kNsga2: return "nsga2";
    case Strategy::kSurrogate: return "surrogate";
  }
  return "?";
}

Strategy parse_strategy(const std::string& name) {
  for (const Strategy s :
       {Strategy::kExhaustive, Strategy::kRandom, Strategy::kNsga2, Strategy::kSurrogate}) {
    if (name == strategy_name(s)) return s;
  }
  throw std::invalid_argument("dse: unknown strategy '" + name + "'");
}

SearchResult run_search(const SpaceSpec& space, const SearchOptions& opts) {
  if (opts.objectives.empty()) {
    throw std::invalid_argument("dse::run_search: need at least one objective");
  }
  EvalCache cache(opts.cache_path);
  if (!opts.checkpoint_path.empty()) write_checkpoint(opts.checkpoint_path, space, opts);

  // Ordered by canonical key: iteration (and thus the final front) never
  // depends on evaluation timing.
  std::map<std::string, EvaluatedPoint> archive;
  std::uint64_t evaluations = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t planned_total = 0;  // progress denominator; set per strategy
  unsigned generation = 0;

  std::optional<EvalFarm> farm;
  if (opts.farm_workers > 0 || !opts.farm_socket.empty()) {
    FarmOptions fopts;
    fopts.workers = opts.farm_workers;
    fopts.attach_socket = opts.farm_socket;
    fopts.cache_path = opts.cache_path;
    fopts.eval = opts.eval;
    farm.emplace(std::move(fopts));
  }

  // Evaluation runs in fixed ~64-config slices so progress fires at a
  // useful cadence; the slicing is independent of threads/workers, so
  // counters stay deterministic too.
  const auto eval_batch = [&](const std::vector<Config>& configs) {
    constexpr std::size_t kSlice = 64;
    std::vector<Objectives> result;
    result.reserve(configs.size());
    for (std::size_t base = 0; base < configs.size(); base += kSlice) {
      const std::size_t n = std::min(kSlice, configs.size() - base);
      const std::vector<Config> slice(configs.begin() + static_cast<std::ptrdiff_t>(base),
                                      configs.begin() + static_cast<std::ptrdiff_t>(base + n));
      std::uint64_t hits = 0;
      std::vector<Objectives> part =
          farm ? farm->evaluate_batch(slice, cache, &hits)
               : evaluate_all(slice, &cache, opts.eval, opts.threads, &hits);
      evaluations += n;
      cache_hits += hits;
      for (std::size_t i = 0; i < n; ++i) {
        std::string key = config_key(slice[i]);
        archive.emplace(key, EvaluatedPoint{slice[i], key, part[i]});
        result.push_back(std::move(part[i]));
      }
      if (opts.progress) {
        opts.progress({evaluations, cache_hits, planned_total, archive.size(), generation});
      }
    }
    return result;
  };

  switch (opts.strategy) {
    case Strategy::kExhaustive: {
      std::vector<Config> configs = enumerate(space);
      if (opts.budget > 0 && configs.size() > opts.budget) configs.resize(opts.budget);
      planned_total = configs.size();
      (void)eval_batch(configs);
      break;
    }
    case Strategy::kRandom: {
      Xoshiro256 rng(opts.seed);
      const std::uint64_t n = opts.budget > 0 ? opts.budget : 256;
      planned_total = n;
      std::vector<Config> configs;
      configs.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) configs.push_back(sample(space, rng));
      (void)eval_batch(configs);
      break;
    }
    case Strategy::kNsga2: {
      Xoshiro256 rng(opts.seed);
      planned_total = std::uint64_t{opts.population} * (std::uint64_t{opts.generations} + 1);
      if (opts.budget > 0) planned_total = std::min(planned_total, opts.budget);
      std::vector<Config> pop;
      pop.reserve(opts.population);
      for (unsigned i = 0; i < opts.population; ++i) pop.push_back(sample(space, rng));
      std::vector<Objectives> pop_obj = eval_batch(pop);
      for (unsigned gen = 0; gen < opts.generations; ++gen) {
        generation = gen + 1;
        if (opts.budget > 0 && evaluations >= opts.budget) break;
        std::vector<std::vector<double>> costs;
        costs.reserve(pop.size());
        for (const Objectives& o : pop_obj) costs.push_back(cost_vector(o, opts.objectives));
        const RankedPopulation ranked = rank_population(costs);
        const auto tournament = [&] {
          const std::size_t a = rng.below(pop.size());
          const std::size_t b = rng.below(pop.size());
          return nsga_better(ranked, a, b) ? a : b;
        };
        std::vector<Config> offspring;
        offspring.reserve(pop.size());
        for (std::size_t i = 0; i < pop.size(); ++i) {
          const std::size_t p1 = tournament();
          const std::size_t p2 = tournament();
          Config child =
              rng.below(10) < 9 ? crossover(space, pop[p1], pop[p2], rng) : pop[p1];
          offspring.push_back(mutate(space, child, rng));
        }
        const std::vector<Objectives> off_obj = eval_batch(offspring);

        // Elitist survival over parents + offspring.
        std::vector<Config> combined = pop;
        combined.insert(combined.end(), offspring.begin(), offspring.end());
        std::vector<Objectives> combined_obj = pop_obj;
        combined_obj.insert(combined_obj.end(), off_obj.begin(), off_obj.end());
        std::vector<std::vector<double>> combined_costs;
        combined_costs.reserve(combined.size());
        for (const Objectives& o : combined_obj) {
          combined_costs.push_back(cost_vector(o, opts.objectives));
        }
        const RankedPopulation all = rank_population(combined_costs);
        std::vector<std::size_t> order(combined.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) { return nsga_better(all, a, b); });
        std::vector<Config> next_pop;
        std::vector<Objectives> next_obj;
        next_pop.reserve(pop.size());
        next_obj.reserve(pop.size());
        for (std::size_t k = 0; k < pop.size(); ++k) {
          next_pop.push_back(combined[order[k]]);
          next_obj.push_back(combined_obj[order[k]]);
        }
        pop = std::move(next_pop);
        pop_obj = std::move(next_obj);
      }
      break;
    }
    case Strategy::kSurrogate: {
      SurrogateStrategyOptions sopts;
      sopts.population = opts.population;
      sopts.proposals = opts.proposals;
      sopts.explore_weight = opts.explore_weight;
      sopts.seed = opts.seed;
      sopts.objectives = opts.objectives;
      // The analytic engine models the exact uniform sweep only: under a
      // gaussian operand distribution (or with analytic evaluation off)
      // its numbers would seed the screen with the wrong distribution.
      sopts.analytic_seeding = opts.eval.analytic && !opts.eval.gaussian;
      SurrogateStrategy strategy(space, sopts);
      const std::uint64_t budget =
          opts.budget > 0
              ? opts.budget
              : std::uint64_t{opts.population} * (std::uint64_t{opts.generations} + 1);
      planned_total = budget;
      // Generation 0 is the random bootstrap; each later generation
      // screens `proposals` candidates and confirms the top slice.
      for (unsigned gen = 0; gen <= opts.generations && evaluations < budget; ++gen) {
        generation = gen;
        const std::uint64_t remaining = budget - evaluations;
        const std::size_t slice = static_cast<std::size_t>(
            std::min<std::uint64_t>(opts.population, remaining));
        const std::vector<Config> batch = strategy.propose(slice);
        if (batch.empty()) break;  // reachable space exhausted
        const std::vector<Objectives> batch_obj = eval_batch(batch);
        strategy.confirm(batch, batch_obj);
      }
      break;
    }
  }

  // Final front: rank 0 over the whole archive.
  SearchResult result;
  result.evaluations = evaluations;
  result.cache_hits = cache_hits;
  result.archive_size = archive.size();
  std::vector<const EvaluatedPoint*> points;
  std::vector<std::vector<double>> costs;
  points.reserve(archive.size());
  costs.reserve(archive.size());
  for (const auto& [key, point] : archive) {
    points.push_back(&point);
    costs.push_back(cost_vector(point.objectives, opts.objectives));
  }
  const std::vector<unsigned> ranks = analysis::nondominated_rank(costs);
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (ranks[i] == 0) keep.push_back(i);
  }
  std::sort(keep.begin(), keep.end(), [&](std::size_t a, std::size_t b) {
    if (costs[a] != costs[b]) return costs[a] < costs[b];
    return points[a]->key < points[b]->key;
  });
  result.front.reserve(keep.size());
  for (const std::size_t i : keep) result.front.push_back(*points[i]);

  if (!opts.front_path.empty()) write_front(opts.front_path, result, opts.objectives);
  return result;
}

// ---- artifacts ------------------------------------------------------------

void write_front(const std::string& path, const SearchResult& result,
                 const std::vector<Objective>& objectives) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("dse::write_front: cannot write '" + path + "'");
  out << "{\"front_meta\": 1, \"objectives\": [";
  for (std::size_t i = 0; i < objectives.size(); ++i) {
    out << (i ? ", " : "") << "\"" << objective_name(objectives[i]) << "\"";
  }
  out << "], \"evaluations\": " << result.evaluations << ", \"cache_hits\": "
      << result.cache_hits << ", \"archive\": " << result.archive_size
      << ", \"points\": " << result.front.size() << "}\n";
  for (const EvaluatedPoint& p : result.front) {
    out << "{\"key\": \"" << p.key << "\", \"name\": \"" << display_name(p.config)
        << "\", \"cost\": [";
    const std::vector<double> cost = cost_vector(p.objectives, objectives);
    for (std::size_t i = 0; i < cost.size(); ++i) out << (i ? ", " : "") << fmt_double(cost[i]);
    out << "], " << EvalCache::serialize_objectives(p.objectives) << "}\n";
  }
}

std::vector<EvaluatedPoint> load_front(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("dse::load_front: cannot open '" + path + "'");
  std::vector<EvaluatedPoint> points;
  std::string line;
  while (std::getline(in, line)) {
    const auto key = jsonio::find_string(line, "key");
    if (!key) continue;  // meta line
    const auto obj = EvalCache::parse_objectives(line);
    if (!obj) continue;
    points.push_back({parse_key(*key), *key, *obj});
  }
  return points;
}

void write_checkpoint(const std::string& path, const SpaceSpec& space,
                      const SearchOptions& opts) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("dse::write_checkpoint: cannot write '" + path + "'");
  out << "{\"ckpt_version\": 1";
  out << ", \"space_name\": \"" << space.name << "\", \"widths\": [";
  for (std::size_t i = 0; i < space.widths.size(); ++i) {
    out << (i ? ", " : "") << space.widths[i];
  }
  out << "], \"leaves\": [";
  for (std::size_t i = 0; i < space.leaves.size(); ++i) {
    out << (i ? ", " : "") << "\"" << leaf_token(space.leaves[i]) << "\"";
  }
  out << "], \"summations\": [";
  for (std::size_t i = 0; i < space.summations.size(); ++i) {
    out << (i ? ", " : "") << "\"" << summation_char(space.summations[i]) << "\"";
  }
  out << "], \"lower_or_options\": [";
  for (std::size_t i = 0; i < space.lower_or_options.size(); ++i) {
    out << (i ? ", " : "") << space.lower_or_options[i];
  }
  out << "], \"max_trunc\": " << space.max_trunc
      << ", \"allow_swap\": " << (space.allow_swap ? "true" : "false")
      << ", \"allow_signed\": " << (space.allow_signed ? "true" : "false")
      << ", \"max_tt_flips\": " << space.max_tt_flips;
  out << ", \"strategy\": \"" << strategy_name(opts.strategy) << "\", \"budget\": "
      << opts.budget << ", \"population\": " << opts.population << ", \"generations\": "
      << opts.generations << ", \"proposals\": " << opts.proposals << ", \"explore_weight\": "
      << fmt_double(opts.explore_weight) << ", \"search_seed\": " << opts.seed
      << ", \"objectives\": [";
  for (std::size_t i = 0; i < opts.objectives.size(); ++i) {
    out << (i ? ", " : "") << "\"" << objective_name(opts.objectives[i]) << "\"";
  }
  out << "], \"exhaustive_bits\": " << opts.eval.exhaustive_bits << ", \"samples\": "
      << opts.eval.samples << ", \"eval_seed\": " << opts.eval.seed << ", \"power_vectors\": "
      << opts.eval.power_vectors << ", \"gaussian\": " << (opts.eval.gaussian ? "true" : "false")
      << ", \"mean_a\": " << fmt_double(opts.eval.mean_a) << ", \"sigma_a\": "
      << fmt_double(opts.eval.sigma_a) << ", \"mean_b\": " << fmt_double(opts.eval.mean_b)
      << ", \"sigma_b\": " << fmt_double(opts.eval.sigma_b);
  out << ", \"cache_path\": \"" << opts.cache_path << "\", \"front_path\": \""
      << opts.front_path << "\", \"checkpoint_path\": \"" << opts.checkpoint_path << "\"}\n";
}

void load_checkpoint(const std::string& path, SpaceSpec& space, SearchOptions& opts) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("dse::load_checkpoint: cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const auto version = jsonio::find_number(text, "ckpt_version");
  if (!version || static_cast<int>(*version) != 1) {
    throw std::runtime_error("dse::load_checkpoint: unsupported checkpoint '" + path + "'");
  }
  SpaceSpec s;
  s.name = jsonio::find_string(text, "space_name").value_or("custom");
  s.widths.clear();
  for (const double w : jsonio::find_number_array(text, "widths")) {
    s.widths.push_back(static_cast<unsigned>(w));
  }
  s.leaves.clear();
  for (const std::string& token : jsonio::find_string_array(text, "leaves")) {
    s.leaves.push_back(leaf_from_token(token));
  }
  s.summations.clear();
  for (const std::string& ch : jsonio::find_string_array(text, "summations")) {
    if (!ch.empty()) s.summations.push_back(summation_from_char(ch[0]));
  }
  s.lower_or_options.clear();
  for (const double v : jsonio::find_number_array(text, "lower_or_options")) {
    s.lower_or_options.push_back(static_cast<unsigned>(v));
  }
  s.max_trunc = static_cast<unsigned>(jsonio::find_number(text, "max_trunc").value_or(0.0));
  s.allow_swap = jsonio::find_bool(text, "allow_swap").value_or(false);
  s.allow_signed = jsonio::find_bool(text, "allow_signed").value_or(false);
  s.max_tt_flips = static_cast<unsigned>(jsonio::find_number(text, "max_tt_flips").value_or(0.0));
  if (s.widths.empty() || s.leaves.empty() || s.summations.empty()) {
    throw std::runtime_error("dse::load_checkpoint: incomplete space in '" + path + "'");
  }

  SearchOptions o;
  o.strategy = parse_strategy(jsonio::find_string(text, "strategy").value_or("nsga2"));
  o.budget = static_cast<std::uint64_t>(jsonio::find_number(text, "budget").value_or(0.0));
  o.population = static_cast<unsigned>(jsonio::find_number(text, "population").value_or(32.0));
  o.generations = static_cast<unsigned>(jsonio::find_number(text, "generations").value_or(8.0));
  o.proposals = static_cast<unsigned>(jsonio::find_number(text, "proposals").value_or(256.0));
  o.explore_weight = jsonio::find_number(text, "explore_weight").value_or(0.25);
  o.seed = static_cast<std::uint64_t>(jsonio::find_number(text, "search_seed").value_or(1.0));
  o.objectives.clear();
  for (const std::string& name : jsonio::find_string_array(text, "objectives")) {
    o.objectives.push_back(parse_objective(name));
  }
  if (o.objectives.empty()) {
    throw std::runtime_error("dse::load_checkpoint: no objectives in '" + path + "'");
  }
  o.eval.exhaustive_bits =
      static_cast<unsigned>(jsonio::find_number(text, "exhaustive_bits").value_or(20.0));
  o.eval.samples = static_cast<std::uint64_t>(
      jsonio::find_number(text, "samples").value_or(static_cast<double>(std::uint64_t{1} << 20)));
  o.eval.seed = static_cast<std::uint64_t>(jsonio::find_number(text, "eval_seed").value_or(1.0));
  o.eval.power_vectors =
      static_cast<std::uint64_t>(jsonio::find_number(text, "power_vectors").value_or(1024.0));
  o.eval.gaussian = jsonio::find_bool(text, "gaussian").value_or(false);
  o.eval.mean_a = jsonio::find_number(text, "mean_a").value_or(0.0);
  o.eval.sigma_a = jsonio::find_number(text, "sigma_a").value_or(0.0);
  o.eval.mean_b = jsonio::find_number(text, "mean_b").value_or(0.0);
  o.eval.sigma_b = jsonio::find_number(text, "sigma_b").value_or(0.0);
  o.cache_path = jsonio::find_string(text, "cache_path").value_or("");
  o.front_path = jsonio::find_string(text, "front_path").value_or("");
  o.checkpoint_path = jsonio::find_string(text, "checkpoint_path").value_or("");
  space = std::move(s);
  opts = std::move(o);
}

}  // namespace axmult::dse
