#include "dse/cache.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <iomanip>
#include <sstream>
#include <vector>

#include "dse/jsonio.hpp"

namespace axmult::dse {

namespace {

/// Shortest representation that round-trips a double exactly.
std::string fmt_double(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

/// Exclusive advisory lock over the cache fd, held for the duration of
/// any file read or append. flock is per-open-file-description, so two
/// EvalCache instances in one process still exclude each other.
class FileLock {
 public:
  explicit FileLock(int fd) : fd_(fd) {
    while (::flock(fd_, LOCK_EX) != 0 && errno == EINTR) {
    }
  }
  ~FileLock() { ::flock(fd_, LOCK_UN); }
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  int fd_;
};

bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t written = ::write(fd, data, size);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += written;
    size -= static_cast<std::size_t>(written);
  }
  return true;
}

}  // namespace

std::string EvalCache::serialize_objectives(const Objectives& obj) {
  std::ostringstream os;
  os << "\"mre\": " << fmt_double(obj.mre) << ", \"nmed\": " << fmt_double(obj.nmed)
     << ", \"errprob\": " << fmt_double(obj.error_probability)
     << ", \"maxerr\": " << obj.max_error << ", \"luts\": " << obj.luts
     << ", \"carry4\": " << obj.carry4 << ", \"ffs\": " << obj.ffs
     << ", \"delay_ns\": " << fmt_double(obj.critical_path_ns)
     << ", \"energy_au\": " << fmt_double(obj.energy_au)
     << ", \"edp_au\": " << fmt_double(obj.edp_au) << ", \"samples\": " << obj.samples
     << ", \"seed\": " << obj.seed << ", \"exhaustive\": " << (obj.exhaustive ? "true" : "false")
     << ", \"provenance\": \"" << obj.provenance << "\"";
  return os.str();
}

std::optional<Objectives> EvalCache::parse_objectives(const std::string& line) {
  Objectives obj;
  const auto mre = jsonio::find_number(line, "mre");
  const auto luts = jsonio::find_number(line, "luts");
  if (!mre || !luts) return std::nullopt;
  obj.mre = *mre;
  obj.luts = static_cast<std::uint64_t>(*luts);
  obj.nmed = jsonio::find_number(line, "nmed").value_or(0.0);
  obj.error_probability = jsonio::find_number(line, "errprob").value_or(0.0);
  obj.max_error = static_cast<std::uint64_t>(jsonio::find_number(line, "maxerr").value_or(0.0));
  obj.carry4 = static_cast<std::uint64_t>(jsonio::find_number(line, "carry4").value_or(0.0));
  obj.ffs = static_cast<std::uint64_t>(jsonio::find_number(line, "ffs").value_or(0.0));
  obj.critical_path_ns = jsonio::find_number(line, "delay_ns").value_or(0.0);
  obj.energy_au = jsonio::find_number(line, "energy_au").value_or(0.0);
  obj.edp_au = jsonio::find_number(line, "edp_au").value_or(0.0);
  obj.samples = static_cast<std::uint64_t>(jsonio::find_number(line, "samples").value_or(0.0));
  obj.seed = static_cast<std::uint64_t>(jsonio::find_number(line, "seed").value_or(0.0));
  obj.exhaustive = jsonio::find_bool(line, "exhaustive").value_or(false);
  obj.provenance = jsonio::find_string(line, "provenance")
                       .value_or(obj.exhaustive ? "exhaustive" : "sampled");
  return obj;
}

EvalCache::EvalCache(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) return;  // unopenable path degrades to in-memory
  const FileLock file_lock(fd_);
  merge_from_file_locked(nullptr, nullptr);
  loaded_ = entries_.size();
}

EvalCache::~EvalCache() {
  if (fd_ >= 0) ::close(fd_);
}

std::size_t EvalCache::merge_from_file_locked(const std::string* watch_key, bool* found_key) {
  // A file shorter than our merge offset means another process compacted
  // it (rewrote in place through the shared inode): the offset no longer
  // names a line boundary, so start over from the top. Re-merged lines
  // are idempotent (entries_[key] assignment).
  struct stat st;
  if (::fstat(fd_, &st) == 0 && static_cast<std::size_t>(st.st_size) < file_offset_) {
    file_offset_ = 0;
  }
  std::string tail;
  char buf[1 << 16];
  for (off_t at = static_cast<off_t>(file_offset_);;) {
    const ssize_t got = ::pread(fd_, buf, sizeof(buf), at);
    if (got < 0) {
      if (errno == EINTR) continue;
      return 0;
    }
    if (got == 0) break;
    tail.append(buf, static_cast<std::size_t>(got));
    at += got;
  }
  // Consume only complete lines; a torn final line (a crashed writer)
  // stays unconsumed so it is re-examined, never half-parsed.
  std::size_t merged = 0;
  std::size_t begin = 0;
  for (;;) {
    const std::size_t end = tail.find('\n', begin);
    if (end == std::string::npos) break;
    const std::string line = tail.substr(begin, end - begin);
    begin = end + 1;
    const auto version = jsonio::find_number(line, "v");
    if (!version || static_cast<unsigned>(*version) != kEvaluatorVersion) continue;
    const auto key = jsonio::find_string(line, "key");
    if (!key) continue;
    const auto obj = parse_objectives(line);
    if (!obj) continue;
    entries_[*key] = *obj;  // later duplicates win
    ++merged;
    if (watch_key && *key == *watch_key && found_key) *found_key = true;
  }
  file_offset_ += begin;
  return merged;
}

std::size_t EvalCache::reload() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return 0;
  const FileLock file_lock(fd_);
  return merge_from_file_locked(nullptr, nullptr);
}

std::string EvalCache::full_key(const Config& c, const EvalOptions& opts) {
  return opts.context() + "|" + config_key(c);
}

std::optional<Objectives> EvalCache::lookup(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void EvalCache::insert(const std::string& key, const Objectives& obj) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = entries_.emplace(key, obj);
  if (!inserted) return;  // already cached — keep the file append-only
  if (fd_ < 0) return;
  const FileLock file_lock(fd_);
  // Merge whatever other processes appended since our last read; when
  // one of them already persisted this key, our append is redundant.
  bool already_on_disk = false;
  merge_from_file_locked(&key, &already_on_disk);
  if (already_on_disk) return;
  std::ostringstream os;
  os << "{\"v\": " << kEvaluatorVersion << ", \"key\": \"" << key << "\", "
     << serialize_objectives(obj) << "}\n";
  const std::string line = os.str();
  // O_APPEND + one write(): the line lands at EOF in one piece, and with
  // the flock held EOF is exactly file_offset_ after the merge above.
  if (write_all(fd_, line.data(), line.size())) file_offset_ += line.size();
}

EvalCache::CompactStats EvalCache::compact() {
  CompactStats stats;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return stats;
  const FileLock file_lock(fd_);
  // Read the whole file, not just the unmerged tail: compaction judges
  // every line, including ones merged long ago.
  std::string content;
  char buf[1 << 16];
  for (off_t at = 0;;) {
    const ssize_t got = ::pread(fd_, buf, sizeof(buf), at);
    if (got < 0) {
      if (errno == EINTR) continue;
      return stats;
    }
    if (got == 0) break;
    content.append(buf, static_cast<std::size_t>(got));
    at += got;
  }
  // Keep the freshest line per key, verbatim, ordered by first appearance.
  std::vector<std::string> order;
  std::map<std::string, std::string> freshest;
  std::size_t begin = 0;
  while (begin < content.size()) {
    const std::size_t end = content.find('\n', begin);
    // With the flock held no writer is mid-append: a torn trailing line
    // can only be debris from a crashed writer — drop it.
    if (end == std::string::npos) {
      ++stats.dropped_malformed;
      break;
    }
    const std::string line = content.substr(begin, end - begin);
    begin = end + 1;
    const auto version = jsonio::find_number(line, "v");
    const auto key = version ? jsonio::find_string(line, "key") : std::nullopt;
    const auto obj = key ? parse_objectives(line) : std::nullopt;
    if (!version || !key || !obj) {
      ++stats.dropped_malformed;
      continue;
    }
    if (static_cast<unsigned>(*version) != kEvaluatorVersion) {
      ++stats.dropped_stale;
      continue;
    }
    const auto [it, inserted] = freshest.emplace(*key, line);
    if (inserted) {
      order.push_back(*key);
    } else {
      ++stats.dropped_duplicate;
      it->second = line;  // last write wins, as in load
    }
    entries_[*key] = *obj;  // keep the in-memory view in sync
  }
  std::string out;
  for (const auto& key : order) {
    out += freshest[key];
    out += '\n';
    ++stats.kept;
  }
  if (::ftruncate(fd_, 0) != 0) return stats;
  // O_APPEND lands the rewrite at the (now zero) EOF in order.
  if (write_all(fd_, out.data(), out.size())) {
    file_offset_ = out.size();
  } else {
    file_offset_ = 0;
  }
  return stats;
}

std::size_t EvalCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace axmult::dse
