#include "dse/cache.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "dse/jsonio.hpp"

namespace axmult::dse {

namespace {

/// Shortest representation that round-trips a double exactly.
std::string fmt_double(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

}  // namespace

std::string EvalCache::serialize_objectives(const Objectives& obj) {
  std::ostringstream os;
  os << "\"mre\": " << fmt_double(obj.mre) << ", \"nmed\": " << fmt_double(obj.nmed)
     << ", \"errprob\": " << fmt_double(obj.error_probability)
     << ", \"maxerr\": " << obj.max_error << ", \"luts\": " << obj.luts
     << ", \"carry4\": " << obj.carry4 << ", \"ffs\": " << obj.ffs
     << ", \"delay_ns\": " << fmt_double(obj.critical_path_ns)
     << ", \"energy_au\": " << fmt_double(obj.energy_au)
     << ", \"edp_au\": " << fmt_double(obj.edp_au) << ", \"samples\": " << obj.samples
     << ", \"seed\": " << obj.seed << ", \"exhaustive\": " << (obj.exhaustive ? "true" : "false")
     << ", \"provenance\": \"" << obj.provenance << "\"";
  return os.str();
}

std::optional<Objectives> EvalCache::parse_objectives(const std::string& line) {
  Objectives obj;
  const auto mre = jsonio::find_number(line, "mre");
  const auto luts = jsonio::find_number(line, "luts");
  if (!mre || !luts) return std::nullopt;
  obj.mre = *mre;
  obj.luts = static_cast<std::uint64_t>(*luts);
  obj.nmed = jsonio::find_number(line, "nmed").value_or(0.0);
  obj.error_probability = jsonio::find_number(line, "errprob").value_or(0.0);
  obj.max_error = static_cast<std::uint64_t>(jsonio::find_number(line, "maxerr").value_or(0.0));
  obj.carry4 = static_cast<std::uint64_t>(jsonio::find_number(line, "carry4").value_or(0.0));
  obj.ffs = static_cast<std::uint64_t>(jsonio::find_number(line, "ffs").value_or(0.0));
  obj.critical_path_ns = jsonio::find_number(line, "delay_ns").value_or(0.0);
  obj.energy_au = jsonio::find_number(line, "energy_au").value_or(0.0);
  obj.edp_au = jsonio::find_number(line, "edp_au").value_or(0.0);
  obj.samples = static_cast<std::uint64_t>(jsonio::find_number(line, "samples").value_or(0.0));
  obj.seed = static_cast<std::uint64_t>(jsonio::find_number(line, "seed").value_or(0.0));
  obj.exhaustive = jsonio::find_bool(line, "exhaustive").value_or(false);
  obj.provenance = jsonio::find_string(line, "provenance")
                       .value_or(obj.exhaustive ? "exhaustive" : "sampled");
  return obj;
}

EvalCache::EvalCache(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  std::ifstream in(path_);
  if (!in) return;  // fresh cache — the first insert creates the file
  std::string line;
  while (std::getline(in, line)) {
    const auto version = jsonio::find_number(line, "v");
    if (!version || static_cast<unsigned>(*version) != kEvaluatorVersion) continue;
    const auto key = jsonio::find_string(line, "key");
    if (!key) continue;
    const auto obj = parse_objectives(line);
    if (!obj) continue;
    entries_[*key] = *obj;  // later duplicates win
  }
  loaded_ = entries_.size();
}

std::string EvalCache::full_key(const Config& c, const EvalOptions& opts) {
  return opts.context() + "|" + config_key(c);
}

std::optional<Objectives> EvalCache::lookup(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void EvalCache::insert(const std::string& key, const Objectives& obj) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = entries_.emplace(key, obj);
  if (!inserted) return;  // already cached — keep the file append-only
  if (path_.empty()) return;
  std::ofstream out(path_, std::ios::app);
  if (!out) return;  // unwritable cache path degrades to in-memory
  out << "{\"v\": " << kEvaluatorVersion << ", \"key\": \"" << key << "\", "
      << serialize_objectives(obj) << "}\n";
}

std::size_t EvalCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace axmult::dse
