// Structural netlist over 7-series primitives: LUT6_2, CARRY4, DSP48-style
// multiplier blocks, constants, and primary I/O.
//
// This is the "device" side of our Vivado substitution: every multiplier in
// the library can be elaborated into one of these netlists, from which
//   * area      = number of LUT6_2 cells (exact, same unit as the paper),
//   * latency   = static timing analysis (timing/ module),
//   * energy    = toggle-activity simulation (power/ module)
// are derived.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace axmult::fabric {

/// Index of a net within a Netlist. Net 0 is constant-0, net 1 constant-1.
using NetId = std::uint32_t;

inline constexpr NetId kNetGnd = 0;
inline constexpr NetId kNetVcc = 1;
inline constexpr NetId kNoNet = std::numeric_limits<NetId>::max();

enum class CellKind : std::uint8_t {
  kLut6,    ///< LUT6_2: 6 input pins, O6 and optional O5 outputs.
  kCarry4,  ///< 4-bit carry chain: CIN, S[4], DI[4] -> O[4], CO[4].
  kDsp,     ///< Hard multiplier block (Table 1 study): two operand buses.
  kFdre,    ///< D flip-flop (single implicit clock): in[0] = D, out[0] = Q.
};

/// One primitive instance. Pin meaning depends on `kind`:
///  kLut6:   in[0..5] = I0..I5; out[0] = O6, out[1] = O5 (kNoNet if unused).
///  kCarry4: in[0] = CIN; in[1..4] = S0..S3; in[5..8] = DI0..DI3;
///           out[0..3] = O0..O3; out[4..7] = CO0..CO3 (kNoNet if unused).
///  kDsp:    in[] = A bits then B bits; out[] = product bits;
///           `dsp_a_width` gives the split.
struct Cell {
  CellKind kind = CellKind::kLut6;
  std::string name;
  std::uint64_t init = 0;  ///< LUT truth table (kLut6 only).
  /// Runtime-reconfigurable LUT (CFGLUT5-style: the INIT sits in a serial
  /// shift register that can be rewritten while the design runs). Purely a
  /// cost-model attribute — evaluation semantics are identical to a static
  /// LUT — but timing/ and power/ charge the extra mux/shift-register
  /// loading when their models carry nonzero CFGLUT penalties.
  bool reconfigurable = false;
  unsigned dsp_a_width = 0;
  std::vector<NetId> in;
  std::vector<NetId> out;
};

/// Outputs of a dual-output LUT6_2 instance.
struct LutOut {
  NetId o6 = kNoNet;
  NetId o5 = kNoNet;
};

/// Outputs of a CARRY4 instance.
struct CarryOut {
  std::array<NetId, 4> o{kNoNet, kNoNet, kNoNet, kNoNet};    ///< sum bits
  std::array<NetId, 4> co{kNoNet, kNoNet, kNoNet, kNoNet};   ///< carry bits
};

/// Area summary of a netlist in device units.
struct AreaReport {
  std::uint64_t luts = 0;      ///< LUT6_2 count — the paper's area metric.
  std::uint64_t carry4 = 0;    ///< carry-chain segments
  std::uint64_t dsp = 0;       ///< DSP blocks
  std::uint64_t ffs = 0;       ///< flip-flops (8 per slice)
  std::uint64_t slices = 0;    ///< packed slice estimate (4 LUTs + 1 CARRY4)
};

class Netlist {
 public:
  Netlist();

  // ---- construction -----------------------------------------------------
  NetId add_net(std::string name = {});
  NetId add_input(std::string name);
  void add_output(std::string name, NetId net);

  /// Instantiates a LUT6_2. `inputs` are {I0..I5}; pass kNetVcc/kNetGnd for
  /// tied pins. `with_o5` additionally exposes the O5 output.
  LutOut add_lut6(std::string name, std::uint64_t init, std::array<NetId, 6> inputs,
                  bool with_o5 = false);

  /// Instantiates a CARRY4. Unused trailing stages may pass kNetGnd.
  CarryOut add_carry4(std::string name, NetId cin, std::array<NetId, 4> s,
                      std::array<NetId, 4> di);

  /// Instantiates a hard multiplier block (product = A * B).
  std::vector<NetId> add_dsp(std::string name, const std::vector<NetId>& a,
                             const std::vector<NetId>& b, unsigned product_bits);

  /// Instantiates a D flip-flop on the implicit clock; returns Q.
  NetId add_fdre(std::string name, NetId d);

  /// Flip-flop with a not-yet-available D input — the mechanism for
  /// registered feedback (accumulators, LFSRs): take the Q net first,
  /// build the downstream logic, then close the loop.
  struct OpenFf {
    NetId q = kNoNet;
    std::uint32_t cell = 0;
  };
  OpenFf add_fdre_open(std::string name);
  /// Binds the D input of an open flip-flop. Must be called exactly once.
  void close_fdre(const OpenFf& ff, NetId d);

  /// Replaces the INIT of LUT cell `cell_index` (fault/perturbation
  /// studies — see transforms.hpp). Throws std::invalid_argument when the
  /// cell is not a LUT6_2.
  void set_lut_init(std::uint32_t cell_index, std::uint64_t init);

  /// Marks a LUT cell as runtime-reconfigurable (CFGLUT5-style). Throws
  /// std::invalid_argument when the cell is not a LUT6_2.
  void set_reconfigurable(std::uint32_t cell_index, bool on);

  /// Marks every LUT6_2 in the netlist reconfigurable — the "fully dynamic
  /// leaf" used by the adaptive-precision cost model (src/adapt).
  void mark_all_luts_reconfigurable();

  // ---- inspection -------------------------------------------------------
  [[nodiscard]] std::size_t net_count() const noexcept { return net_names_.size(); }
  [[nodiscard]] const std::vector<Cell>& cells() const noexcept { return cells_; }
  [[nodiscard]] const std::vector<NetId>& inputs() const noexcept { return inputs_; }
  [[nodiscard]] const std::vector<NetId>& outputs() const noexcept { return outputs_; }
  [[nodiscard]] const std::vector<std::string>& output_names() const noexcept {
    return output_names_;
  }
  [[nodiscard]] const std::string& net_name(NetId id) const { return net_names_.at(id); }

  /// LUT/carry/DSP/slice counts.
  [[nodiscard]] AreaReport area() const;

  /// Fanout (number of cell input pins + primary outputs) per net.
  [[nodiscard]] std::vector<std::uint32_t> fanout() const;

  /// Topological order of cell indices; throws std::runtime_error on a
  /// combinational loop or an undriven non-constant, non-input net.
  /// Flip-flops break combinational dependencies (their Q is a source).
  [[nodiscard]] std::vector<std::uint32_t> topo_order() const;

  /// True if the netlist contains any flip-flop.
  [[nodiscard]] bool is_sequential() const noexcept;

 private:
  std::vector<std::string> net_names_;
  std::vector<Cell> cells_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  std::vector<std::string> output_names_;
};

/// Evaluates a netlist on scalar input vectors. The evaluator caches the
/// topological order, so repeated calls (exhaustive error sweeps) are cheap.
class Evaluator {
 public:
  explicit Evaluator(const Netlist& nl);
  /// The evaluator only references the netlist — binding a temporary would
  /// dangle, so it is rejected at compile time.
  explicit Evaluator(Netlist&&) = delete;

  /// `input_bits[i]` is the value of `nl.inputs()[i]`; returns output bits
  /// in declaration order. The returned reference points at an internal
  /// buffer reused across calls (no per-call allocation — this is the
  /// error-sweep hot path); it is valid until the next eval.
  const std::vector<std::uint8_t>& eval(const std::vector<std::uint8_t>& input_bits);

  /// Convenience: packs inputs/outputs as integers, LSB-first in
  /// declaration order (our generators declare a0..aN-1, b0..bN-1 and
  /// p0..p2N-1, so this multiplies directly).
  std::uint64_t eval_word(std::uint64_t a, unsigned a_bits, std::uint64_t b, unsigned b_bits);

  /// Net values from the most recent eval (for toggle counting / debug).
  [[nodiscard]] const std::vector<std::uint8_t>& net_values() const noexcept { return value_; }

 private:
  friend class SeqEvaluator;
  const std::vector<std::uint8_t>& eval_impl(const std::vector<std::uint8_t>& input_bits,
                                             std::vector<std::uint8_t>* ff_state);

  const Netlist& nl_;
  std::vector<std::uint32_t> order_;
  std::vector<std::uint8_t> value_;
  std::vector<std::uint8_t> out_;
  std::vector<std::uint8_t> in_scratch_;
};

/// Cycle-accurate evaluation of sequential netlists: each step() applies
/// the inputs, settles the combinational logic, returns the outputs, and
/// then clocks every flip-flop.
class SeqEvaluator {
 public:
  explicit SeqEvaluator(const Netlist& nl);
  explicit SeqEvaluator(Netlist&&) = delete;

  /// One clock cycle. Outputs reflect the state *before* the clock edge.
  /// Returns a reference to an internal buffer, valid until the next step.
  const std::vector<std::uint8_t>& step(const std::vector<std::uint8_t>& input_bits);

  /// Word-packed convenience mirroring Evaluator::eval_word.
  std::uint64_t step_word(std::uint64_t a, unsigned a_bits, std::uint64_t b, unsigned b_bits);

  /// Resets all flip-flops to zero.
  void reset();

  [[nodiscard]] std::size_t ff_count() const noexcept { return state_.size(); }

  /// Net values after the most recent step (for toggle counting / debug).
  [[nodiscard]] const std::vector<std::uint8_t>& net_values() const noexcept {
    return comb_.net_values();
  }

 private:
  Evaluator comb_;
  std::vector<std::uint8_t> state_;
};

}  // namespace axmult::fabric
