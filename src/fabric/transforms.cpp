#include "fabric/transforms.hpp"

#include <stdexcept>

#include "common/rng.hpp"

namespace axmult::fabric {

Netlist sweep_dead_cells(const Netlist& nl) {
  const auto& cells = nl.cells();
  // driver[net] = producing cell.
  constexpr std::uint32_t kNoCell = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> driver(nl.net_count(), kNoCell);
  for (std::uint32_t ci = 0; ci < cells.size(); ++ci) {
    for (NetId n : cells[ci].out) {
      if (n != kNoNet) driver[n] = ci;
    }
  }
  // Mark live cells backwards from outputs; flip-flops keep their D cones.
  std::vector<bool> live(cells.size(), false);
  std::vector<std::uint32_t> work;
  auto mark_net = [&](NetId n) {
    if (n == kNoNet || n == kNetGnd || n == kNetVcc) return;
    const std::uint32_t ci = driver[n];
    if (ci != kNoCell && !live[ci]) {
      live[ci] = true;
      work.push_back(ci);
    }
  };
  for (NetId n : nl.outputs()) mark_net(n);
  while (!work.empty()) {
    const std::uint32_t ci = work.back();
    work.pop_back();
    for (NetId n : cells[ci].in) mark_net(n);
  }

  // Rebuild only the live cells, preserving order.
  Netlist out;
  std::vector<NetId> remap(nl.net_count(), kNoNet);
  remap[kNetGnd] = kNetGnd;
  remap[kNetVcc] = kNetVcc;
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    remap[nl.inputs()[i]] = out.add_input(nl.net_name(nl.inputs()[i]));
  }
  auto pin = [&](NetId n) { return n == kNoNet ? kNoNet : remap[n]; };
  for (std::uint32_t ci = 0; ci < cells.size(); ++ci) {
    if (!live[ci]) continue;
    const Cell& c = cells[ci];
    switch (c.kind) {
      case CellKind::kLut6: {
        std::array<NetId, 6> pins{};
        for (unsigned p = 0; p < 6; ++p) pins[p] = pin(c.in[p]);
        const auto lut = out.add_lut6(c.name, c.init, pins, c.out[1] != kNoNet);
        remap[c.out[0]] = lut.o6;
        if (c.out[1] != kNoNet) remap[c.out[1]] = lut.o5;
        break;
      }
      case CellKind::kCarry4: {
        std::array<NetId, 4> s{};
        std::array<NetId, 4> di{};
        for (unsigned i = 0; i < 4; ++i) {
          s[i] = pin(c.in[1 + i]);
          di[i] = pin(c.in[5 + i]);
        }
        const auto cc = out.add_carry4(c.name, pin(c.in[0]), s, di);
        for (unsigned i = 0; i < 4; ++i) {
          remap[c.out[i]] = cc.o[i];
          remap[c.out[4 + i]] = cc.co[i];
        }
        break;
      }
      case CellKind::kDsp: {
        std::vector<NetId> a;
        std::vector<NetId> b;
        for (unsigned i = 0; i < c.dsp_a_width; ++i) a.push_back(pin(c.in[i]));
        for (std::size_t i = c.dsp_a_width; i < c.in.size(); ++i) b.push_back(pin(c.in[i]));
        const auto p = out.add_dsp(c.name, a, b, static_cast<unsigned>(c.out.size()));
        for (std::size_t i = 0; i < c.out.size(); ++i) remap[c.out[i]] = p[i];
        break;
      }
      case CellKind::kFdre: {
        remap[c.out[0]] = out.add_fdre(c.name, pin(c.in[0]));
        break;
      }
    }
  }
  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    const NetId n = nl.outputs()[i];
    out.add_output(nl.output_names()[i], n == kNetGnd || n == kNetVcc ? n : remap[n]);
  }
  return out;
}

bool probably_equivalent(const Netlist& a, const Netlist& b, std::uint64_t samples,
                         std::uint64_t seed) {
  if (a.inputs().size() != b.inputs().size() || a.outputs().size() != b.outputs().size()) {
    return false;
  }
  if (a.is_sequential() || b.is_sequential()) {
    throw std::invalid_argument("probably_equivalent: combinational netlists only");
  }
  Evaluator ea(a);
  Evaluator eb(b);
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> in(a.inputs().size());
  for (std::uint64_t s = 0; s < samples; ++s) {
    for (auto& bit : in) bit = static_cast<std::uint8_t>(rng() & 1u);
    if (ea.eval(in) != eb.eval(in)) return false;
  }
  return true;
}

std::map<std::string, std::size_t> cell_histogram(const Netlist& nl) {
  std::map<std::string, std::size_t> hist;
  for (const Cell& c : nl.cells()) {
    const auto dot = c.name.find('.');
    ++hist[dot == std::string::npos ? c.name : c.name.substr(0, dot)];
  }
  return hist;
}

std::vector<std::uint32_t> lut_cells(const Netlist& nl) {
  std::vector<std::uint32_t> luts;
  const auto& cells = nl.cells();
  for (std::uint32_t ci = 0; ci < cells.size(); ++ci) {
    if (cells[ci].kind == CellKind::kLut6) luts.push_back(ci);
  }
  return luts;
}

Netlist with_lut_init_flip(const Netlist& nl, std::uint32_t cell_index, unsigned init_bit) {
  if (init_bit >= 64) throw std::invalid_argument("with_lut_init_flip: bit out of range");
  if (cell_index >= nl.cells().size() || nl.cells()[cell_index].kind != CellKind::kLut6) {
    throw std::invalid_argument("with_lut_init_flip: not a LUT cell");
  }
  Netlist out = nl;
  out.set_lut_init(cell_index, nl.cells()[cell_index].init ^ (std::uint64_t{1} << init_bit));
  return out;
}

}  // namespace axmult::fabric
