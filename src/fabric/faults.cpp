#include "fabric/faults.hpp"

namespace axmult::fabric {

Netlist with_stuck_at(const Netlist& nl, const StuckAtFault& fault) {
  Netlist out;
  const NetId stuck = fault.stuck_value ? kNetVcc : kNetGnd;
  // Rebuild with identical structure; only consumers of the faulty net
  // are rewired. Net ids are preserved because construction order is
  // replayed exactly.
  std::vector<NetId> remap(nl.net_count());
  remap[kNetGnd] = kNetGnd;
  remap[kNetVcc] = kNetVcc;
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    remap[nl.inputs()[i]] = out.add_input(nl.net_name(nl.inputs()[i]));
  }
  auto pin = [&](NetId n) {
    if (n == kNoNet) return kNoNet;
    if (n == fault.net) return stuck;
    return remap[n];
  };
  for (const Cell& c : nl.cells()) {
    switch (c.kind) {
      case CellKind::kLut6: {
        std::array<NetId, 6> pins{};
        for (unsigned p = 0; p < 6; ++p) pins[p] = pin(c.in[p]);
        const auto lut = out.add_lut6(c.name, c.init, pins, c.out[1] != kNoNet);
        remap[c.out[0]] = lut.o6;
        if (c.out[1] != kNoNet) remap[c.out[1]] = lut.o5;
        break;
      }
      case CellKind::kCarry4: {
        std::array<NetId, 4> s{};
        std::array<NetId, 4> di{};
        for (unsigned i = 0; i < 4; ++i) {
          s[i] = pin(c.in[1 + i]);
          di[i] = pin(c.in[5 + i]);
        }
        const auto cc = out.add_carry4(c.name, pin(c.in[0]), s, di);
        for (unsigned i = 0; i < 4; ++i) {
          remap[c.out[i]] = cc.o[i];
          remap[c.out[4 + i]] = cc.co[i];
        }
        break;
      }
      case CellKind::kDsp: {
        std::vector<NetId> a;
        std::vector<NetId> b;
        for (unsigned i = 0; i < c.dsp_a_width; ++i) a.push_back(pin(c.in[i]));
        for (std::size_t i = c.dsp_a_width; i < c.in.size(); ++i) b.push_back(pin(c.in[i]));
        const auto p = out.add_dsp(c.name, a, b, static_cast<unsigned>(c.out.size()));
        for (std::size_t i = 0; i < c.out.size(); ++i) remap[c.out[i]] = p[i];
        break;
      }
      case CellKind::kFdre: {
        remap[c.out[0]] = out.add_fdre(c.name, pin(c.in[0]));
        break;
      }
    }
  }
  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    out.add_output(nl.output_names()[i], pin(nl.outputs()[i]));
  }
  return out;
}

std::vector<NetId> fault_sites(const Netlist& nl) {
  std::vector<NetId> sites;
  const auto fanout = nl.fanout();
  for (const Cell& c : nl.cells()) {
    for (NetId n : c.out) {
      if (n != kNoNet && fanout[n] > 0) sites.push_back(n);
    }
  }
  return sites;
}

}  // namespace axmult::fabric
