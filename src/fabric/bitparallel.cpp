#include "fabric/bitparallel.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/bits.hpp"

namespace axmult::fabric {

namespace {

/// 64-lane 2:1 mux: lane-wise `sel ? hi : lo`, branchless.
inline std::uint64_t mux64(std::uint64_t sel, std::uint64_t hi, std::uint64_t lo) noexcept {
  return lo ^ (sel & (hi ^ lo));
}

/// Restricts variable `pos` of an `nv`-variable truth table to `val`,
/// returning the cofactor over the remaining nv-1 variables.
std::uint64_t cofactor(std::uint64_t tt, unsigned nv, unsigned pos, unsigned val) {
  std::uint64_t r = 0;
  for (unsigned m = 0; m < (1u << (nv - 1)); ++m) {
    const unsigned idx = (m & ((1u << pos) - 1)) | (val << pos) | ((m >> pos) << (pos + 1));
    r |= ((tt >> idx) & 1u) << m;
  }
  return r;
}

/// In-place 64x64 bit-matrix transpose: afterwards a[i] bit l == (original)
/// a[l] bit i. Used to convert between lane-major operand words and the
/// bit-plane words the evaluator consumes. Involution.
void transpose64(std::uint64_t a[64]) noexcept {
  for (unsigned t = 6; t-- > 0;) {
    const unsigned j = 1u << t;
    const std::uint64_t m = kLanePattern[t];
    for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t x = (a[k] ^ (a[k + j] << j)) & m;
      a[k] ^= x;
      a[k + j] ^= x >> j;
    }
  }
}

}  // namespace

void BitParallelEvaluator::compile_lut(std::uint64_t tt, unsigned nvars, const NetId* in,
                                       NetId out) {
  // Cofactor away constant inputs (GND / VCC / unconnected), then variables
  // the function does not actually depend on. What remains is the true
  // support — typically 2..5 nets even for "6-input" LUT instances.
  std::array<std::uint32_t, 6> net{};
  unsigned nv = nvars;
  for (unsigned v = 0; v < nvars; ++v) net[v] = in[v];
  auto remove_var = [&](unsigned v) {
    for (unsigned i = v; i + 1 < nv; ++i) net[i] = net[i + 1];
    --nv;
  };
  for (unsigned v = 0; v < nv;) {
    if (net[v] == kNetGnd || net[v] == kNoNet) {
      tt = cofactor(tt, nv, v, 0);
      remove_var(v);
    } else if (net[v] == kNetVcc) {
      tt = cofactor(tt, nv, v, 1);
      remove_var(v);
    } else {
      ++v;
    }
  }
  for (unsigned v = 0; v < nv;) {
    if (cofactor(tt, nv, v, 0) == cofactor(tt, nv, v, 1)) {
      tt = cofactor(tt, nv, v, 0);
      remove_var(v);
    } else {
      ++v;
    }
  }

  LutFn f{};
  f.out = out;
  f.k = static_cast<std::uint8_t>(nv);
  f.in = net;
  if (nv == 0) {
    f.const_word = (tt & 1u) ? ~std::uint64_t{0} : 0;
    luts_.push_back(f);
    return;
  }

  // Algebraic normal form via the XOR Mobius transform, computed directly on
  // the packed truth-table word: anf bit m = XOR of tt over all submasks of
  // m. Multiplier cells (partial-product ANDs, compressor sums/carries) have
  // a handful of monomials, making XOR-of-ANDs far cheaper than a mux tree.
  std::uint64_t anf = tt;
  for (unsigned v = 0; v < nv; ++v) {
    anf ^= (anf & ~kLanePattern[v]) << (1u << v);
  }
  anf &= nv == 6 ? ~std::uint64_t{0} : low_mask(1u << nv);
  const unsigned monos = static_cast<unsigned>(popcount(anf));

  // Break-even vs the mux tree (~3 ops/node) sits around half the minterm
  // count; arithmetic logic is always far below it.
  if (monos <= (1u << nv) / 2 + 1) {
    f.n_monos = static_cast<std::uint8_t>(monos);
    f.prog_base = static_cast<std::uint32_t>(anf_.size());
    for (unsigned m = 0; m < (1u << nv); ++m) {
      if (((anf >> m) & 1u) == 0) continue;
      anf_.push_back(static_cast<std::uint32_t>(popcount(std::uint64_t{m})));
      for (unsigned v = 0; v < nv; ++v) {
        if (m & (1u << v)) anf_.push_back(net[v]);  // net ids resolved here
      }
    }
  } else {
    // Dense function: first Shannon level (selector = in[0]) precomputed as
    // branchless (lo, lo^hi) broadcast-mask pairs: leaf_j = lo ^ (x & i0).
    f.n_monos = 0xFF;
    f.prog_base = static_cast<std::uint32_t>(leaf_.size());
    for (unsigned j = 0; j < (1u << (nv - 1)); ++j) {
      const std::uint64_t lo = ((tt >> (2 * j)) & 1u) ? ~std::uint64_t{0} : 0;
      const std::uint64_t hi = ((tt >> (2 * j + 1)) & 1u) ? ~std::uint64_t{0} : 0;
      leaf_.push_back({lo, lo ^ hi});
    }
  }
  luts_.push_back(f);
}

BitParallelEvaluator::BitParallelEvaluator(const Netlist& nl) : nl_(nl) {
  // One trash slot past the last net absorbs writes to unconnected outputs.
  const std::uint32_t trash = static_cast<std::uint32_t>(nl.net_count());
  value_.assign(nl.net_count() + 1, 0);
  value_[kNetVcc] = ~std::uint64_t{0};
  const auto remap = [trash](NetId n) { return n == kNoNet ? trash : n; };

  std::uint32_t ff_slot = 0;
  const auto& cells = nl.cells();
  for (std::uint32_t ci : nl.topo_order()) {
    const Cell& c = cells[ci];
    switch (c.kind) {
      case CellKind::kLut6: {
        tape_.push_back({TapeKind::kLut, static_cast<std::uint32_t>(luts_.size())});
        compile_lut(c.init, 6, c.in.data(), c.out[0]);
        if (c.out[1] != kNoNet) {
          tape_.push_back({TapeKind::kLut, static_cast<std::uint32_t>(luts_.size())});
          compile_lut(c.init & 0xFFFFFFFFu, 5, c.in.data(), c.out[1]);
        }
        break;
      }
      case CellKind::kCarry4: {
        CarryFn f{};
        f.cyinit = c.in[0];
        for (unsigned i = 0; i < 4; ++i) {
          f.s[i] = remap(c.in[1 + i]);
          f.di[i] = remap(c.in[5 + i]);
          f.o[i] = remap(c.out[i]);
          f.co[i] = remap(c.out[4 + i]);
        }
        tape_.push_back({TapeKind::kCarry, static_cast<std::uint32_t>(carries_.size())});
        carries_.push_back(f);
        break;
      }
      case CellKind::kDsp:
        tape_.push_back({TapeKind::kDsp, ci});
        break;
      case CellKind::kFdre:
        // Zero combinational dependencies put flip-flops first in the topo
        // order; slots count up in cell order, matching the latch loop in
        // eval_impl and the scalar evaluator.
        tape_.push_back({TapeKind::kFf, ff_slot++});
        ff_q_.push_back(c.out[0]);
        break;
    }
  }
}

const std::vector<std::uint64_t>& BitParallelEvaluator::eval(
    const std::vector<std::uint64_t>& input_words) {
  if (input_words.size() != nl_.inputs().size()) {
    throw std::invalid_argument("BitParallelEvaluator::eval: wrong number of input words");
  }
  eval_impl(input_words.data(), input_words.size(), nullptr);
  return out_;
}

void BitParallelEvaluator::eval_impl(const std::uint64_t* input_words, std::size_t n_inputs,
                                     std::vector<std::uint64_t>* ff_state) {
  const auto& inputs = nl_.inputs();
  for (std::size_t i = 0; i < n_inputs; ++i) value_[inputs[i]] = input_words[i];

  std::uint64_t* const val = value_.data();
  std::uint64_t buf[32];
  for (const TapeEntry& e : tape_) {
    switch (e.kind) {
      case TapeKind::kLut: {
        const LutFn& f = luts_[e.idx];
        if (f.k == 0) {
          val[f.out] = f.const_word;
          break;
        }
        if (f.n_monos != 0xFF) {
          // XOR of AND-monomials over the packed words.
          const std::uint32_t* mp = anf_.data() + f.prog_base;
          std::uint64_t r = 0;
          for (unsigned m = 0; m < f.n_monos; ++m) {
            const unsigned nv = *mp++;
            std::uint64_t term = ~std::uint64_t{0};
            for (unsigned j = 0; j < nv; ++j) term &= val[*mp++];
            r ^= term;
          }
          val[f.out] = r;
          break;
        }
        const Leaf* lp = leaf_.data() + f.prog_base;
        const std::uint64_t i0 = val[f.in[0]];
        unsigned nodes = 1u << (f.k - 1);
        for (unsigned j = 0; j < nodes; ++j) buf[j] = lp[j].lo ^ (lp[j].x & i0);
        for (unsigned l = 1; l < f.k; ++l) {
          const std::uint64_t sel = val[f.in[l]];
          nodes >>= 1;
          for (unsigned j = 0; j < nodes; ++j) buf[j] = mux64(sel, buf[2 * j + 1], buf[2 * j]);
        }
        val[f.out] = buf[0];
        break;
      }
      case TapeKind::kCarry: {
        const CarryFn& f = carries_[e.idx];
        std::uint64_t carry = val[f.cyinit];
        for (unsigned i = 0; i < 4; ++i) {
          const std::uint64_t s = val[f.s[i]];
          val[f.o[i]] = s ^ carry;        // XORCY, all 64 lanes at once
          carry = mux64(s, carry, val[f.di[i]]);  // MUXCY
          val[f.co[i]] = carry;
        }
        break;
      }
      case TapeKind::kDsp: {
        // Per-lane multiply: gather operand bits, multiply, scatter product
        // bits. O(64 * pins) but DSP cells are rare and tiny.
        const Cell& c = nl_.cells()[e.idx];
        dsp_scratch_.assign(c.out.size(), 0);
        const unsigned aw = c.dsp_a_width;
        const unsigned bw = static_cast<unsigned>(c.in.size()) - aw;
        for (unsigned l = 0; l < kLanes; ++l) {
          std::uint64_t a = 0;
          std::uint64_t b = 0;
          for (unsigned i = 0; i < aw; ++i) a |= ((val[c.in[i]] >> l) & 1u) << i;
          for (unsigned i = 0; i < bw; ++i) b |= ((val[c.in[aw + i]] >> l) & 1u) << i;
          const std::uint64_t p = a * b;
          for (std::size_t i = 0; i < c.out.size(); ++i) {
            dsp_scratch_[i] |= bit(p, static_cast<unsigned>(i)) << l;
          }
        }
        for (std::size_t i = 0; i < c.out.size(); ++i) val[c.out[i]] = dsp_scratch_[i];
        break;
      }
      case TapeKind::kFf: {
        if (ff_state == nullptr) {
          throw std::invalid_argument(
              "BitParallelEvaluator: sequential netlist — use BitParallelSeqEvaluator instead");
        }
        val[ff_q_[e.idx]] = (*ff_state)[e.idx];
        break;
      }
    }
  }
  if (ff_state != nullptr) {
    // Clock edge: latch every D word into the state (cell declaration order).
    std::size_t idx = 0;
    for (const Cell& c : nl_.cells()) {
      if (c.kind == CellKind::kFdre) (*ff_state)[idx++] = val[c.in[0]];
    }
  }
  const auto& outputs = nl_.outputs();
  out_.resize(outputs.size());
  for (std::size_t i = 0; i < outputs.size(); ++i) out_[i] = val[outputs[i]];
}

void BitParallelEvaluator::eval_mul_batch(const std::uint64_t* a, const std::uint64_t* b,
                                          std::uint64_t* p, std::size_t n, unsigned a_bits,
                                          unsigned b_bits) {
  if (n == 0) return;
  if (n > kLanes) {
    throw std::invalid_argument("BitParallelEvaluator::eval_mul_batch: n > 64");
  }
  if (nl_.inputs().size() != a_bits + b_bits) {
    throw std::invalid_argument("BitParallelEvaluator::eval_mul_batch: input width mismatch");
  }
  // Lane-major -> bit-plane conversion in one 64x64 transpose: row l holds
  // b[l]:a[l] concatenated, so after the transpose row i is the packed word
  // of input bit i.
  std::uint64_t rows[64] = {};
  const std::uint64_t amask = low_mask(a_bits);
  const std::uint64_t bmask = low_mask(b_bits);
  for (std::size_t l = 0; l < n; ++l) {
    rows[l] = (a[l] & amask) | ((b[l] & bmask) << a_bits);
  }
  transpose64(rows);
  eval_impl(rows, a_bits + b_bits, nullptr);
  // Same trick backwards for the products (outputs are at most 64 bits).
  std::uint64_t prows[64] = {};
  for (std::size_t i = 0; i < out_.size() && i < 64; ++i) prows[i] = out_[i];
  transpose64(prows);
  for (std::size_t l = 0; l < n; ++l) p[l] = prows[l];
}

BitParallelSeqEvaluator::BitParallelSeqEvaluator(const Netlist& nl) : comb_(nl) {
  std::size_t ffs = 0;
  for (const Cell& c : nl.cells()) {
    if (c.kind == CellKind::kFdre) ++ffs;
  }
  state_.assign(ffs, 0);
}

const std::vector<std::uint64_t>& BitParallelSeqEvaluator::step(
    const std::vector<std::uint64_t>& input_words) {
  if (input_words.size() != comb_.nl_.inputs().size()) {
    throw std::invalid_argument("BitParallelSeqEvaluator::step: wrong number of input words");
  }
  comb_.eval_impl(input_words.data(), input_words.size(), &state_);
  return comb_.out_;
}

void BitParallelSeqEvaluator::reset() {
  std::fill(state_.begin(), state_.end(), 0);
}

}  // namespace axmult::fabric
