#include "fabric/bitparallel.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/bits.hpp"

namespace axmult::fabric {

namespace {

/// Packed 2:1 mux: lane-wise `sel ? hi : lo`, branchless.
inline std::uint64_t mux64(std::uint64_t sel, std::uint64_t hi, std::uint64_t lo) noexcept {
  return lo ^ (sel & (hi ^ lo));
}

/// Restricts variable `pos` of an `nv`-variable truth table to `val`,
/// returning the cofactor over the remaining nv-1 variables.
std::uint64_t cofactor(std::uint64_t tt, unsigned nv, unsigned pos, unsigned val) {
  std::uint64_t r = 0;
  for (unsigned m = 0; m < (1u << (nv - 1)); ++m) {
    const unsigned idx = (m & ((1u << pos) - 1)) | (val << pos) | ((m >> pos) << (pos + 1));
    r |= ((tt >> idx) & 1u) << m;
  }
  return r;
}

}  // namespace

namespace detail {

void CompiledTape::compile_lut(std::uint64_t tt, unsigned nvars, const NetId* in, NetId out) {
  // Cofactor away constant inputs (GND / VCC / unconnected), then variables
  // the function does not actually depend on. What remains is the true
  // support — typically 2..5 nets even for "6-input" LUT instances. (The
  // optimize pass already folds most of this away netlist-side; doing it
  // again here keeps optimize-off construction correct.)
  std::array<std::uint32_t, 6> net{};
  unsigned nv = nvars;
  for (unsigned v = 0; v < nvars; ++v) net[v] = in[v];
  auto remove_var = [&](unsigned v) {
    for (unsigned i = v; i + 1 < nv; ++i) net[i] = net[i + 1];
    --nv;
  };
  for (unsigned v = 0; v < nv;) {
    if (net[v] == kNetGnd || net[v] == kNoNet) {
      tt = cofactor(tt, nv, v, 0);
      remove_var(v);
    } else if (net[v] == kNetVcc) {
      tt = cofactor(tt, nv, v, 1);
      remove_var(v);
    } else {
      ++v;
    }
  }
  for (unsigned v = 0; v < nv;) {
    if (cofactor(tt, nv, v, 0) == cofactor(tt, nv, v, 1)) {
      tt = cofactor(tt, nv, v, 0);
      remove_var(v);
    } else {
      ++v;
    }
  }

  LutFn f{};
  f.out = out;
  f.k = static_cast<std::uint8_t>(nv);
  f.in = net;
  if (nv == 0) {
    f.const_word = (tt & 1u) ? ~std::uint64_t{0} : 0;
    luts.push_back(f);
    return;
  }

  // Algebraic normal form via the XOR Mobius transform, computed directly on
  // the packed truth-table word: anf bit m = XOR of tt over all submasks of
  // m. Multiplier cells (partial-product ANDs, compressor sums/carries) have
  // a handful of monomials, making XOR-of-ANDs far cheaper than a mux tree.
  std::uint64_t anf_word = tt;
  for (unsigned v = 0; v < nv; ++v) {
    anf_word ^= (anf_word & ~kLanePattern[v]) << (1u << v);
  }
  anf_word &= nv == 6 ? ~std::uint64_t{0} : low_mask(1u << nv);
  const unsigned monos = static_cast<unsigned>(popcount(anf_word));

  // Break-even vs the mux tree (~3 ops/node) sits around half the minterm
  // count; arithmetic logic is always far below it.
  if (monos <= (1u << nv) / 2 + 1) {
    f.n_monos = static_cast<std::uint8_t>(monos);
    f.prog_base = static_cast<std::uint32_t>(anf.size());
    for (unsigned m = 0; m < (1u << nv); ++m) {
      if (((anf_word >> m) & 1u) == 0) continue;
      anf.push_back(static_cast<std::uint32_t>(popcount(std::uint64_t{m})));
      for (unsigned v = 0; v < nv; ++v) {
        if (m & (1u << v)) anf.push_back(net[v]);  // net ids resolved here
      }
    }
  } else {
    // Dense function: first Shannon level (selector = in[0]) precomputed as
    // branchless (lo, lo^hi) broadcast-mask pairs: leaf_j = lo ^ (x & i0).
    f.n_monos = 0xFF;
    f.prog_base = static_cast<std::uint32_t>(leaf.size());
    for (unsigned j = 0; j < (1u << (nv - 1)); ++j) {
      const std::uint64_t lo = ((tt >> (2 * j)) & 1u) ? ~std::uint64_t{0} : 0;
      const std::uint64_t hi = ((tt >> (2 * j + 1)) & 1u) ? ~std::uint64_t{0} : 0;
      leaf.push_back({lo, lo ^ hi});
    }
  }
  luts.push_back(f);
}

CompiledTape::CompiledTape(const Netlist& source, const EvalOptions& options) {
  if (options.optimize) {
    auto opt = fabric::optimize(source);
    opt_stats = opt.stats;
    owned = std::make_unique<const Netlist>(std::move(opt.netlist));
    nl = owned.get();
  } else {
    nl = &source;
  }

  const std::uint32_t trash = static_cast<std::uint32_t>(nl->net_count());
  const auto remap = [trash](NetId n) { return n == kNoNet ? trash : n; };

  std::uint32_t ff_slot = 0;
  const auto& cells = nl->cells();
  for (std::uint32_t ci : nl->topo_order()) {
    const Cell& c = cells[ci];
    switch (c.kind) {
      case CellKind::kLut6: {
        tape.push_back({TapeKind::kLut, static_cast<std::uint32_t>(luts.size())});
        compile_lut(c.init, 6, c.in.data(), c.out[0]);
        if (c.out[1] != kNoNet) {
          tape.push_back({TapeKind::kLut, static_cast<std::uint32_t>(luts.size())});
          compile_lut(c.init & 0xFFFFFFFFu, 5, c.in.data(), c.out[1]);
        }
        break;
      }
      case CellKind::kCarry4: {
        CarryFn f{};
        f.cyinit = c.in[0];
        for (unsigned i = 0; i < 4; ++i) {
          f.s[i] = remap(c.in[1 + i]);
          f.di[i] = remap(c.in[5 + i]);
          f.o[i] = remap(c.out[i]);
          f.co[i] = remap(c.out[4 + i]);
        }
        tape.push_back({TapeKind::kCarry, static_cast<std::uint32_t>(carries.size())});
        carries.push_back(f);
        break;
      }
      case CellKind::kDsp:
        tape.push_back({TapeKind::kDsp, ci});
        break;
      case CellKind::kFdre:
        // Zero combinational dependencies put flip-flops first in the topo
        // order; slots count up in cell order, matching the latch loop in
        // eval_impl and the scalar evaluator.
        tape.push_back({TapeKind::kFf, ff_slot++});
        ff_q.push_back(c.out[0]);
        break;
    }
  }
}

}  // namespace detail

template <unsigned W>
WideEvaluator<W>::WideEvaluator(const Netlist& nl, EvalOptions options) : tape_(nl, options) {
  // One trash block past the last net absorbs writes to unconnected outputs.
  value_.assign((tape_.nl->net_count() + 1) * W, 0);
  for (unsigned w = 0; w < W; ++w) value_[kNetVcc * W + w] = ~std::uint64_t{0};
}

template <unsigned W>
const std::vector<std::uint64_t>& WideEvaluator<W>::eval(
    const std::vector<std::uint64_t>& input_words) {
  if (input_words.size() != tape_.nl->inputs().size() * W) {
    throw std::invalid_argument("WideEvaluator::eval: wrong number of input words");
  }
  eval_impl(input_words.data(), tape_.nl->inputs().size(), nullptr);
  return out_;
}

template <unsigned W>
void WideEvaluator<W>::eval_impl(const std::uint64_t* input_words, std::size_t n_inputs,
                                 std::vector<std::uint64_t>* ff_state) {
  const Netlist& nl = *tape_.nl;
  const auto& inputs = nl.inputs();
  std::uint64_t* const val = value_.data();
  for (std::size_t i = 0; i < n_inputs; ++i) {
    for (unsigned w = 0; w < W; ++w) val[std::size_t{inputs[i]} * W + w] = input_words[i * W + w];
  }

  std::uint64_t buf[32 * W];
  for (const detail::CompiledTape::TapeEntry& e : tape_.tape) {
    switch (e.kind) {
      case detail::CompiledTape::TapeKind::kLut: {
        const auto& f = tape_.luts[e.idx];
        std::uint64_t* const o = val + std::size_t{f.out} * W;
        if (f.k == 0) {
          for (unsigned w = 0; w < W; ++w) o[w] = f.const_word;
          break;
        }
        if (f.n_monos != 0xFF) {
          // XOR of AND-monomials over the packed word blocks. With W known
          // at compile time the w-loops are straight SIMD ops.
          const std::uint32_t* mp = tape_.anf.data() + f.prog_base;
          std::uint64_t r[W] = {};
          for (unsigned m = 0; m < f.n_monos; ++m) {
            const unsigned nv = *mp++;
            std::uint64_t term[W];
            for (unsigned w = 0; w < W; ++w) term[w] = ~std::uint64_t{0};
            for (unsigned j = 0; j < nv; ++j) {
              const std::uint64_t* const v = val + std::size_t{*mp++} * W;
              for (unsigned w = 0; w < W; ++w) term[w] &= v[w];
            }
            for (unsigned w = 0; w < W; ++w) r[w] ^= term[w];
          }
          for (unsigned w = 0; w < W; ++w) o[w] = r[w];
          break;
        }
        const auto* lp = tape_.leaf.data() + f.prog_base;
        const std::uint64_t* const i0 = val + std::size_t{f.in[0]} * W;
        unsigned nodes = 1u << (f.k - 1);
        for (unsigned j = 0; j < nodes; ++j) {
          for (unsigned w = 0; w < W; ++w) buf[j * W + w] = lp[j].lo ^ (lp[j].x & i0[w]);
        }
        for (unsigned l = 1; l < f.k; ++l) {
          const std::uint64_t* const sel = val + std::size_t{f.in[l]} * W;
          nodes >>= 1;
          for (unsigned j = 0; j < nodes; ++j) {
            for (unsigned w = 0; w < W; ++w) {
              buf[j * W + w] = mux64(sel[w], buf[(2 * j + 1) * W + w], buf[2 * j * W + w]);
            }
          }
        }
        for (unsigned w = 0; w < W; ++w) o[w] = buf[w];
        break;
      }
      case detail::CompiledTape::TapeKind::kCarry: {
        const auto& f = tape_.carries[e.idx];
        std::uint64_t carry[W];
        const std::uint64_t* const ci = val + std::size_t{f.cyinit} * W;
        for (unsigned w = 0; w < W; ++w) carry[w] = ci[w];
        for (unsigned i = 0; i < 4; ++i) {
          const std::uint64_t* const s = val + std::size_t{f.s[i]} * W;
          const std::uint64_t* const di = val + std::size_t{f.di[i]} * W;
          std::uint64_t* const o = val + std::size_t{f.o[i]} * W;
          std::uint64_t* const co = val + std::size_t{f.co[i]} * W;
          for (unsigned w = 0; w < W; ++w) {
            const std::uint64_t sw = s[w];
            o[w] = sw ^ carry[w];                 // XORCY, all lanes at once
            carry[w] = mux64(sw, carry[w], di[w]);  // MUXCY
            co[w] = carry[w];
          }
        }
        break;
      }
      case detail::CompiledTape::TapeKind::kDsp: {
        // Per-lane multiply: gather operand bits, multiply, scatter product
        // bits. O(lanes * pins) but DSP cells are rare and tiny.
        const Cell& c = nl.cells()[e.idx];
        dsp_scratch_.assign(c.out.size() * W, 0);
        const unsigned aw = c.dsp_a_width;
        const unsigned bw = static_cast<unsigned>(c.in.size()) - aw;
        for (unsigned l = 0; l < kLanes; ++l) {
          const unsigned w = l / 64;
          const unsigned bpos = l % 64;
          std::uint64_t a = 0;
          std::uint64_t b = 0;
          for (unsigned i = 0; i < aw; ++i) {
            a |= ((val[std::size_t{c.in[i]} * W + w] >> bpos) & 1u) << i;
          }
          for (unsigned i = 0; i < bw; ++i) {
            b |= ((val[std::size_t{c.in[aw + i]} * W + w] >> bpos) & 1u) << i;
          }
          const std::uint64_t p = a * b;
          for (std::size_t i = 0; i < c.out.size(); ++i) {
            dsp_scratch_[i * W + w] |= bit(p, static_cast<unsigned>(i)) << bpos;
          }
        }
        for (std::size_t i = 0; i < c.out.size(); ++i) {
          for (unsigned w = 0; w < W; ++w) {
            val[std::size_t{c.out[i]} * W + w] = dsp_scratch_[i * W + w];
          }
        }
        break;
      }
      case detail::CompiledTape::TapeKind::kFf: {
        if (ff_state == nullptr) {
          throw std::invalid_argument(
              "WideEvaluator: sequential netlist — use BitParallelSeqEvaluator instead");
        }
        const std::uint64_t* const st = ff_state->data() + std::size_t{e.idx} * W;
        std::uint64_t* const q = val + std::size_t{tape_.ff_q[e.idx]} * W;
        for (unsigned w = 0; w < W; ++w) q[w] = st[w];
        break;
      }
    }
  }
  if (ff_state != nullptr) {
    // Clock edge: latch every D block into the state (cell declaration order).
    std::size_t idx = 0;
    for (const Cell& c : nl.cells()) {
      if (c.kind != CellKind::kFdre) continue;
      std::uint64_t* const st = ff_state->data() + idx * W;
      const std::uint64_t* const d = val + std::size_t{c.in[0]} * W;
      for (unsigned w = 0; w < W; ++w) st[w] = d[w];
      ++idx;
    }
  }
  const auto& outputs = nl.outputs();
  out_.resize(outputs.size() * W);
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    for (unsigned w = 0; w < W; ++w) out_[i * W + w] = val[std::size_t{outputs[i]} * W + w];
  }
}

template <unsigned W>
void WideEvaluator<W>::eval_mul_batch(const std::uint64_t* a, const std::uint64_t* b,
                                      std::uint64_t* p, std::size_t n, unsigned a_bits,
                                      unsigned b_bits) {
  if (n == 0) return;
  if (n > kLanes) {
    throw std::invalid_argument("WideEvaluator::eval_mul_batch: n > lane count");
  }
  const std::size_t n_inputs = tape_.nl->inputs().size();
  if (n_inputs != a_bits + b_bits) {
    throw std::invalid_argument("WideEvaluator::eval_mul_batch: input width mismatch");
  }
  // Lane-major -> bit-plane conversion, one 64x64 transpose per 64-lane
  // group: row l holds b[l]:a[l] concatenated, so after the transpose row i
  // is the packed word of input bit i.
  const std::uint64_t amask = low_mask(a_bits);
  const std::uint64_t bmask = low_mask(b_bits);
  std::vector<std::uint64_t> in(n_inputs * W, 0);
  for (unsigned w = 0; w * 64 < n; ++w) {
    std::uint64_t rows[64] = {};
    const std::size_t lanes = std::min<std::size_t>(64, n - std::size_t{w} * 64);
    for (std::size_t l = 0; l < lanes; ++l) {
      const std::size_t src = std::size_t{w} * 64 + l;
      rows[l] = (a[src] & amask) | ((b[src] & bmask) << a_bits);
    }
    transpose64(rows);
    for (std::size_t i = 0; i < n_inputs; ++i) in[i * W + w] = rows[i];
  }
  eval_impl(in.data(), n_inputs, nullptr);
  // Same trick backwards for the products (outputs are at most 64 bits).
  const std::size_t n_outputs = out_.size() / W;
  for (unsigned w = 0; w * 64 < n; ++w) {
    std::uint64_t prows[64] = {};
    for (std::size_t i = 0; i < n_outputs && i < 64; ++i) prows[i] = out_[i * W + w];
    transpose64(prows);
    const std::size_t lanes = std::min<std::size_t>(64, n - std::size_t{w} * 64);
    for (std::size_t l = 0; l < lanes; ++l) p[std::size_t{w} * 64 + l] = prows[l];
  }
}

template class WideEvaluator<1>;
template class WideEvaluator<2>;
template class WideEvaluator<4>;
template class WideEvaluator<8>;

BitParallelSeqEvaluator::BitParallelSeqEvaluator(const Netlist& nl, EvalOptions options)
    : comb_(nl, options) {
  // Size the state from the *evaluated* netlist: the optimize pass may have
  // removed dead flip-flops.
  state_.assign(comb_.tape_.ff_q.size(), 0);
}

const std::vector<std::uint64_t>& BitParallelSeqEvaluator::step(
    const std::vector<std::uint64_t>& input_words) {
  if (input_words.size() != comb_.tape_.nl->inputs().size()) {
    throw std::invalid_argument("BitParallelSeqEvaluator::step: wrong number of input words");
  }
  comb_.eval_impl(input_words.data(), input_words.size(), &state_);
  return comb_.out_;
}

void BitParallelSeqEvaluator::reset() {
  std::fill(state_.begin(), state_.end(), 0);
}

}  // namespace axmult::fabric
