#include "fabric/netlist.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <utility>

#include "common/bits.hpp"
#include "fabric/lut6.hpp"

namespace axmult::fabric {

Netlist::Netlist() {
  add_net("GND");
  add_net("VCC");
}

NetId Netlist::add_net(std::string name) {
  net_names_.push_back(std::move(name));
  return static_cast<NetId>(net_names_.size() - 1);
}

NetId Netlist::add_input(std::string name) {
  const NetId id = add_net(name);
  inputs_.push_back(id);
  return id;
}

void Netlist::add_output(std::string name, NetId net) {
  outputs_.push_back(net);
  output_names_.push_back(std::move(name));
}

LutOut Netlist::add_lut6(std::string name, std::uint64_t init, std::array<NetId, 6> inputs,
                         bool with_o5) {
  Cell cell;
  cell.kind = CellKind::kLut6;
  cell.name = std::move(name);
  cell.init = init;
  cell.in.assign(inputs.begin(), inputs.end());
  LutOut out;
  out.o6 = add_net(cell.name + ".O6");
  cell.out.push_back(out.o6);
  if (with_o5) {
    out.o5 = add_net(cell.name + ".O5");
    cell.out.push_back(out.o5);
  } else {
    cell.out.push_back(kNoNet);
  }
  cells_.push_back(std::move(cell));
  return out;
}

CarryOut Netlist::add_carry4(std::string name, NetId cin, std::array<NetId, 4> s,
                             std::array<NetId, 4> di) {
  Cell cell;
  cell.kind = CellKind::kCarry4;
  cell.name = std::move(name);
  cell.in.push_back(cin);
  for (NetId n : s) cell.in.push_back(n);
  for (NetId n : di) cell.in.push_back(n);
  CarryOut out;
  for (unsigned i = 0; i < 4; ++i) {
    out.o[i] = add_net(cell.name + ".O" + std::to_string(i));
    cell.out.push_back(out.o[i]);
  }
  for (unsigned i = 0; i < 4; ++i) {
    out.co[i] = add_net(cell.name + ".CO" + std::to_string(i));
    cell.out.push_back(out.co[i]);
  }
  cells_.push_back(std::move(cell));
  return out;
}

std::vector<NetId> Netlist::add_dsp(std::string name, const std::vector<NetId>& a,
                                    const std::vector<NetId>& b, unsigned product_bits) {
  Cell cell;
  cell.kind = CellKind::kDsp;
  cell.name = std::move(name);
  cell.dsp_a_width = static_cast<unsigned>(a.size());
  cell.in = a;
  cell.in.insert(cell.in.end(), b.begin(), b.end());
  std::vector<NetId> product;
  product.reserve(product_bits);
  for (unsigned i = 0; i < product_bits; ++i) {
    const NetId n = add_net(cell.name + ".P" + std::to_string(i));
    product.push_back(n);
    cell.out.push_back(n);
  }
  cells_.push_back(std::move(cell));
  return product;
}

NetId Netlist::add_fdre(std::string name, NetId d) {
  Cell cell;
  cell.kind = CellKind::kFdre;
  cell.name = std::move(name);
  cell.in.push_back(d);
  const NetId q = add_net(cell.name + ".Q");
  cell.out.push_back(q);
  cells_.push_back(std::move(cell));
  return q;
}

Netlist::OpenFf Netlist::add_fdre_open(std::string name) {
  Cell cell;
  cell.kind = CellKind::kFdre;
  cell.name = std::move(name);
  cell.in.push_back(kNoNet);
  OpenFf ff;
  ff.q = add_net(cell.name + ".Q");
  cell.out.push_back(ff.q);
  cells_.push_back(std::move(cell));
  ff.cell = static_cast<std::uint32_t>(cells_.size() - 1);
  return ff;
}

void Netlist::close_fdre(const OpenFf& ff, NetId d) {
  Cell& cell = cells_.at(ff.cell);
  if (cell.kind != CellKind::kFdre || cell.in.at(0) != kNoNet) {
    throw std::invalid_argument("close_fdre: not an open flip-flop");
  }
  cell.in[0] = d;
}

void Netlist::set_lut_init(std::uint32_t cell_index, std::uint64_t init) {
  Cell& cell = cells_.at(cell_index);
  if (cell.kind != CellKind::kLut6) {
    throw std::invalid_argument("set_lut_init: cell is not a LUT6_2");
  }
  cell.init = init;
}

void Netlist::set_reconfigurable(std::uint32_t cell_index, bool on) {
  Cell& cell = cells_.at(cell_index);
  if (cell.kind != CellKind::kLut6) {
    throw std::invalid_argument("set_reconfigurable: cell is not a LUT6_2");
  }
  cell.reconfigurable = on;
}

void Netlist::mark_all_luts_reconfigurable() {
  for (Cell& cell : cells_) {
    if (cell.kind == CellKind::kLut6) cell.reconfigurable = true;
  }
}

bool Netlist::is_sequential() const noexcept {
  for (const Cell& c : cells_) {
    if (c.kind == CellKind::kFdre) return true;
  }
  return false;
}

AreaReport Netlist::area() const {
  AreaReport r;
  for (const Cell& c : cells_) {
    switch (c.kind) {
      case CellKind::kLut6: ++r.luts; break;
      case CellKind::kCarry4: ++r.carry4; break;
      case CellKind::kDsp: ++r.dsp; break;
      case CellKind::kFdre: ++r.ffs; break;
    }
  }
  // A 7-series slice holds four LUT6_2s, one CARRY4 and eight flip-flops;
  // whichever resource dominates sets the slice count.
  r.slices = std::max({ceil_div(r.luts, 4), r.carry4, ceil_div(r.ffs, 8)});
  return r;
}

std::vector<std::uint32_t> Netlist::fanout() const {
  std::vector<std::uint32_t> fo(net_names_.size(), 0);
  for (const Cell& c : cells_) {
    for (NetId n : c.in) {
      if (n != kNoNet) ++fo[n];
    }
  }
  for (NetId n : outputs_) ++fo[n];
  return fo;
}

std::vector<std::uint32_t> Netlist::topo_order() const {
  // driver[net] = cell index, or kNoCell for inputs/constants.
  constexpr std::uint32_t kNoCell = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> driver(net_names_.size(), kNoCell);
  for (std::uint32_t ci = 0; ci < cells_.size(); ++ci) {
    for (NetId n : cells_[ci].out) {
      if (n != kNoNet) driver[n] = ci;
    }
  }
  std::vector<std::uint32_t> pending(cells_.size(), 0);
  std::vector<std::vector<std::uint32_t>> dependents(cells_.size());
  std::queue<std::uint32_t> ready;
  for (std::uint32_t ci = 0; ci < cells_.size(); ++ci) {
    unsigned deps = 0;
    // Flip-flop outputs are state: a flip-flop never waits on its D input
    // combinationally, which is what breaks registered feedback loops.
    if (cells_[ci].kind != CellKind::kFdre) {
      for (NetId n : cells_[ci].in) {
        if (n == kNoNet || n == kNetGnd || n == kNetVcc) continue;
        if (driver[n] != kNoCell) {
          dependents[driver[n]].push_back(ci);
          ++deps;
        }
      }
    }
    pending[ci] = deps;
    if (deps == 0) ready.push(ci);
  }
  std::vector<std::uint32_t> order;
  order.reserve(cells_.size());
  while (!ready.empty()) {
    const std::uint32_t ci = ready.front();
    ready.pop();
    order.push_back(ci);
    for (std::uint32_t d : dependents[ci]) {
      if (--pending[d] == 0) ready.push(d);
    }
  }
  if (order.size() != cells_.size()) {
    throw std::runtime_error("Netlist::topo_order: combinational loop detected");
  }
  return order;
}

Evaluator::Evaluator(const Netlist& nl) : nl_(nl), order_(nl.topo_order()) {
  value_.assign(nl.net_count(), 0);
  value_[kNetVcc] = 1;
}

const std::vector<std::uint8_t>& Evaluator::eval(const std::vector<std::uint8_t>& input_bits) {
  return eval_impl(input_bits, nullptr);
}

const std::vector<std::uint8_t>& Evaluator::eval_impl(const std::vector<std::uint8_t>& input_bits,
                                                      std::vector<std::uint8_t>* ff_state) {
  const auto& inputs = nl_.inputs();
  if (input_bits.size() != inputs.size()) {
    throw std::invalid_argument("Evaluator::eval: wrong number of input bits");
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) value_[inputs[i]] = input_bits[i] & 1u;

  std::size_t ff_read = 0;
  const auto& cells = nl_.cells();
  for (std::uint32_t ci : order_) {
    const Cell& c = cells[ci];
    switch (c.kind) {
      case CellKind::kFdre: {
        if (ff_state == nullptr) {
          throw std::invalid_argument(
              "Evaluator: sequential netlist — use SeqEvaluator instead");
        }
        // Note: flip-flops have zero dependencies, so the topological order
        // schedules them all before any combinational consumer; ff_read
        // therefore indexes them in a stable (cell) order.
        value_[c.out[0]] = (*ff_state)[ff_read++];
        break;
      }
      case CellKind::kLut6: {
        unsigned idx = 0;
        for (unsigned b = 0; b < 6; ++b) idx |= static_cast<unsigned>(value_[c.in[b]] & 1u) << b;
        value_[c.out[0]] = lut_o6(c.init, idx) ? 1 : 0;
        if (c.out[1] != kNoNet) value_[c.out[1]] = lut_o5(c.init, idx) ? 1 : 0;
        break;
      }
      case CellKind::kCarry4: {
        std::uint8_t carry = value_[c.in[0]] & 1u;
        for (unsigned i = 0; i < 4; ++i) {
          const std::uint8_t s = value_[c.in[1 + i]] & 1u;
          const std::uint8_t di = value_[c.in[5 + i]] & 1u;
          value_[c.out[i]] = s ^ carry;                                  // XORCY
          carry = s ? carry : di;                                       // MUXCY
          value_[c.out[4 + i]] = carry;
        }
        break;
      }
      case CellKind::kDsp: {
        std::uint64_t a = 0;
        std::uint64_t b = 0;
        for (unsigned i = 0; i < c.dsp_a_width; ++i) {
          a |= static_cast<std::uint64_t>(value_[c.in[i]] & 1u) << i;
        }
        for (unsigned i = c.dsp_a_width; i < c.in.size(); ++i) {
          b |= static_cast<std::uint64_t>(value_[c.in[i]] & 1u) << (i - c.dsp_a_width);
        }
        const std::uint64_t p = a * b;
        for (std::size_t i = 0; i < c.out.size(); ++i) {
          value_[c.out[i]] = static_cast<std::uint8_t>(bit(p, static_cast<unsigned>(i)));
        }
        break;
      }
    }
  }
  if (ff_state != nullptr) {
    // Clock edge: latch every D into the state (cell declaration order).
    std::size_t idx = 0;
    for (const Cell& c : cells) {
      if (c.kind == CellKind::kFdre) (*ff_state)[idx++] = value_[c.in[0]] & 1u;
    }
  }
  const auto& outputs = nl_.outputs();
  out_.resize(outputs.size());
  for (std::size_t i = 0; i < outputs.size(); ++i) out_[i] = value_[outputs[i]];
  return out_;
}

SeqEvaluator::SeqEvaluator(const Netlist& nl) : comb_(nl) {
  std::size_t ffs = 0;
  for (const Cell& c : nl.cells()) {
    if (c.kind == CellKind::kFdre) ++ffs;
  }
  state_.assign(ffs, 0);
}

const std::vector<std::uint8_t>& SeqEvaluator::step(const std::vector<std::uint8_t>& input_bits) {
  return comb_.eval_impl(input_bits, &state_);
}

std::uint64_t SeqEvaluator::step_word(std::uint64_t a, unsigned a_bits, std::uint64_t b,
                                      unsigned b_bits) {
  auto& in = comb_.in_scratch_;
  in.clear();
  in.reserve(a_bits + b_bits);
  for (unsigned i = 0; i < a_bits; ++i) in.push_back(static_cast<std::uint8_t>(bit(a, i)));
  for (unsigned i = 0; i < b_bits; ++i) in.push_back(static_cast<std::uint8_t>(bit(b, i)));
  const auto& out = step(in);
  std::uint64_t p = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    p |= static_cast<std::uint64_t>(out[i] & 1u) << i;
  }
  return p;
}

void SeqEvaluator::reset() { std::fill(state_.begin(), state_.end(), 0); }

std::uint64_t Evaluator::eval_word(std::uint64_t a, unsigned a_bits, std::uint64_t b,
                                   unsigned b_bits) {
  in_scratch_.clear();
  in_scratch_.reserve(a_bits + b_bits);
  for (unsigned i = 0; i < a_bits; ++i) {
    in_scratch_.push_back(static_cast<std::uint8_t>(bit(a, i)));
  }
  for (unsigned i = 0; i < b_bits; ++i) {
    in_scratch_.push_back(static_cast<std::uint8_t>(bit(b, i)));
  }
  const auto& out = eval(in_scratch_);
  std::uint64_t p = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    p |= static_cast<std::uint64_t>(out[i] & 1u) << i;
  }
  return p;
}

}  // namespace axmult::fabric
