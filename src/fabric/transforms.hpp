// Netlist utility passes: dead-cell sweeping, random-vector equivalence
// checking, and composition statistics.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "fabric/netlist.hpp"

namespace axmult::fabric {

/// Removes every cell none of whose outputs (transitively) reaches a
/// primary output or a flip-flop D input. Used e.g. to prove that result
/// truncation frees almost no logic: the low product bits' cones still
/// feed the surviving carries.
[[nodiscard]] Netlist sweep_dead_cells(const Netlist& nl);

/// Random-vector equivalence check over `samples` input vectors (both
/// netlists must declare the same number of inputs/outputs). Exhaustive
/// proof is the tests' job; this is the quick structural-refactor guard.
[[nodiscard]] bool probably_equivalent(const Netlist& a, const Netlist& b,
                                       std::uint64_t samples = 4096, std::uint64_t seed = 3);

/// Cell-count breakdown by instance-name prefix (up to the first '.'),
/// e.g. {"u": 12, "acc": 24} — the CLI uses it for readable reports.
[[nodiscard]] std::map<std::string, std::size_t> cell_histogram(const Netlist& nl);

}  // namespace axmult::fabric
