// Netlist utility passes: dead-cell sweeping, random-vector equivalence
// checking, and composition statistics.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fabric/netlist.hpp"

namespace axmult::fabric {

/// Removes every cell none of whose outputs (transitively) reaches a
/// primary output or a flip-flop D input. Used e.g. to prove that result
/// truncation frees almost no logic: the low product bits' cones still
/// feed the surviving carries.
[[nodiscard]] Netlist sweep_dead_cells(const Netlist& nl);

/// Random-vector equivalence check over `samples` input vectors (both
/// netlists must declare the same number of inputs/outputs). Exhaustive
/// proof is the tests' job; this is the quick structural-refactor guard.
[[nodiscard]] bool probably_equivalent(const Netlist& a, const Netlist& b,
                                       std::uint64_t samples = 4096, std::uint64_t seed = 3);

/// Cell-count breakdown by instance-name prefix (up to the first '.'),
/// e.g. {"u": 12, "acc": 24} — the CLI uses it for readable reports.
[[nodiscard]] std::map<std::string, std::size_t> cell_histogram(const Netlist& nl);

/// Indices of all LUT6_2 cells — the injectable sites of with_lut_init_flip.
[[nodiscard]] std::vector<std::uint32_t> lut_cells(const Netlist& nl);

/// Returns a copy of `nl` with bit `init_bit` (0..63) of LUT cell
/// `cell_index`'s INIT flipped. Cell and net indices are preserved exactly,
/// so faulty/reference netlists can be diffed net-by-net — the deliberate
/// single-bit "design bug" the differential harness (src/check/) shrinks
/// down to an offending net. Throws std::invalid_argument when the cell is
/// not a LUT or the bit is out of range.
[[nodiscard]] Netlist with_lut_init_flip(const Netlist& nl, std::uint32_t cell_index,
                                         unsigned init_bit);

}  // namespace axmult::fabric
