// Semantics of the Xilinx 7-series fracturable 6-input LUT (LUT6_2).
//
// A LUT6_2 holds a 64-bit INIT value and produces two outputs:
//   O6 = INIT[{I5,I4,I3,I2,I1,I0}]        (all 64 bits)
//   O5 = INIT[{ 0,I4,I3,I2,I1,I0}]        (lower 32 bits, I5 ignored)
// Tying I5 = 1 therefore yields two independent 5-input functions:
// O6 from INIT[63:32] and O5 from INIT[31:0] — exactly how Table 3 of the
// paper programs its dual-output LUTs.
#pragma once

#include <array>
#include <cstdint>

#include "common/bits.hpp"

namespace axmult::fabric {

/// Truth-table index for pin values i5..i0 (each 0/1), i5 is the MSB.
[[nodiscard]] constexpr unsigned lut_index(unsigned i5, unsigned i4, unsigned i3, unsigned i2,
                                           unsigned i1, unsigned i0) noexcept {
  return ((i5 & 1u) << 5) | ((i4 & 1u) << 4) | ((i3 & 1u) << 3) | ((i2 & 1u) << 2) |
         ((i1 & 1u) << 1) | (i0 & 1u);
}

/// O6 output for a given INIT and 6-bit index.
[[nodiscard]] constexpr bool lut_o6(std::uint64_t init, unsigned index6) noexcept {
  return bit(init, index6 & 63u) != 0;
}

/// O5 output: lower 32 INIT bits addressed by I4..I0 only.
[[nodiscard]] constexpr bool lut_o5(std::uint64_t init, unsigned index6) noexcept {
  return bit(init, index6 & 31u) != 0;
}

/// Pins that O6 actually depends on, as a 6-bit mask (true input support).
/// Static timing uses this to avoid false paths through don't-care pins.
[[nodiscard]] constexpr unsigned lut_support_o6(std::uint64_t init) noexcept {
  unsigned mask = 0;
  for (unsigned p = 0; p < 6; ++p) {
    for (unsigned idx = 0; idx < 64; ++idx) {
      if (lut_o6(init, idx) != lut_o6(init, idx ^ (1u << p))) {
        mask |= 1u << p;
        break;
      }
    }
  }
  return mask;
}

/// Pins that O5 actually depends on (I5 can never be in O5's support).
[[nodiscard]] constexpr unsigned lut_support_o5(std::uint64_t init) noexcept {
  unsigned mask = 0;
  for (unsigned p = 0; p < 5; ++p) {
    for (unsigned idx = 0; idx < 32; ++idx) {
      if (lut_o5(init, idx) != lut_o5(init, idx ^ (1u << p))) {
        mask |= 1u << p;
        break;
      }
    }
  }
  return mask;
}

/// Builds an INIT for a single 6-input function.
/// `fn` receives the pin values as {i0, i1, ..., i5}.
template <typename Fn>
[[nodiscard]] constexpr std::uint64_t init_from_o6(Fn&& fn) {
  std::uint64_t init = 0;
  for (unsigned idx = 0; idx < 64; ++idx) {
    std::array<unsigned, 6> in{};
    for (unsigned b = 0; b < 6; ++b) in[b] = (idx >> b) & 1u;
    if (fn(in)) init |= std::uint64_t{1} << idx;
  }
  return init;
}

/// Builds an INIT for a dual-output (I5 tied high) LUT6_2.
/// `fn5` (-> O5) and `fn6` (-> O6) receive pins {i0,...,i4}.
template <typename Fn5, typename Fn6>
[[nodiscard]] constexpr std::uint64_t init_from_o5_o6(Fn5&& fn5, Fn6&& fn6) {
  std::uint64_t init = 0;
  for (unsigned idx = 0; idx < 32; ++idx) {
    std::array<unsigned, 5> in{};
    for (unsigned b = 0; b < 5; ++b) in[b] = (idx >> b) & 1u;
    if (fn5(in)) init |= std::uint64_t{1} << idx;         // O5 page
    if (fn6(in)) init |= std::uint64_t{1} << (32 + idx);  // O6 page (I5 = 1)
  }
  return init;
}

}  // namespace axmult::fabric
