// Structural HDL export (the form the paper's open-source library ships
// in): every netlist can be written as VHDL or Verilog that instantiates
// Xilinx unisim primitives (LUT6_2 with its INIT generic, CARRY4), ready
// to drop into a Vivado project for on-device validation.
//
// DSP-modelled cells are evaluation-only stand-ins and are rejected here.
#pragma once

#include <string>

#include "fabric/netlist.hpp"

namespace axmult::fabric {

/// Emits a structural VHDL entity/architecture pair.
/// Throws std::invalid_argument if the netlist contains DSP model cells.
[[nodiscard]] std::string to_vhdl(const Netlist& nl, const std::string& entity_name);

/// Emits a structural Verilog module.
/// Throws std::invalid_argument if the netlist contains DSP model cells.
[[nodiscard]] std::string to_verilog(const Netlist& nl, const std::string& module_name);

/// Sanitizes a net/cell name into a legal HDL identifier (shared by both
/// emitters so the outputs cross-reference).
[[nodiscard]] std::string hdl_identifier(const std::string& name);

}  // namespace axmult::fabric
