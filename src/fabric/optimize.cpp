#include "fabric/optimize.hpp"

#include <array>
#include <limits>
#include <map>
#include <stdexcept>
#include <vector>

#include "common/bits.hpp"

namespace axmult::fabric {

namespace {

constexpr std::uint32_t kNoCell = std::numeric_limits<std::uint32_t>::max();

/// Restricts variable `pos` of an `nv`-variable truth table to `val`,
/// returning the cofactor over the remaining nv-1 variables.
std::uint64_t cofactor(std::uint64_t tt, unsigned nv, unsigned pos, unsigned val) {
  std::uint64_t r = 0;
  for (unsigned m = 0; m < (1u << (nv - 1)); ++m) {
    const unsigned idx = (m & ((1u << pos) - 1)) | (val << pos) | ((m >> pos) << (pos + 1));
    r |= ((tt >> idx) & 1u) << m;
  }
  return r;
}

/// Replicates an nv-variable truth table across all 64 INIT entries, making
/// the emitted LUT independent of its (GND-tied) upper pins.
std::uint64_t expand_tt(std::uint64_t tt, unsigned nv) {
  if (nv >= 6) return tt;
  const unsigned span = 1u << nv;
  std::uint64_t r = 0;
  for (unsigned m = 0; m < 64; m += span) r |= (tt & low_mask(span)) << m;
  return r;
}

/// A LUT output reduced to its true support: constant pins cofactored away,
/// don't-care variables removed. nv == 0 means a constant function.
struct FoldedFn {
  std::uint64_t tt = 0;
  unsigned nv = 0;
  std::array<NetId, 6> sup{};
};

FoldedFn fold_lut(std::uint64_t tt, unsigned nvars, const NetId* rp) {
  FoldedFn f;
  unsigned nv = nvars;
  std::array<NetId, 6> net{};
  for (unsigned v = 0; v < nvars; ++v) net[v] = rp[v];
  auto remove_var = [&](unsigned v) {
    for (unsigned i = v; i + 1 < nv; ++i) net[i] = net[i + 1];
    --nv;
  };
  for (unsigned v = 0; v < nv;) {
    if (net[v] == kNetGnd || net[v] == kNoNet) {
      tt = cofactor(tt, nv, v, 0);
      remove_var(v);
    } else if (net[v] == kNetVcc) {
      tt = cofactor(tt, nv, v, 1);
      remove_var(v);
    } else {
      ++v;
    }
  }
  for (unsigned v = 0; v < nv;) {
    if (cofactor(tt, nv, v, 0) == cofactor(tt, nv, v, 1)) {
      tt = cofactor(tt, nv, v, 0);
      remove_var(v);
    } else {
      ++v;
    }
  }
  f.tt = tt;
  f.nv = nv;
  f.sup = net;
  return f;
}

/// What one original cell becomes after folding + CSE.
struct CellPlan {
  enum class Kind : std::uint8_t {
    kDropped,    ///< every output resolved to a constant/alias or CSE'd away
    kOrig,       ///< re-emit as-is with resolved input pins (`rin`)
    kLutSingle,  ///< re-emit as a single-output LUT of the reduced function
  };
  Kind kind = Kind::kDropped;
  std::vector<NetId> rin;  ///< resolved input pins (kOrig)
  FoldedFn fn;             ///< reduced function (kLutSingle)
  NetId fn_out = kNoNet;   ///< original output net of `fn` (kLutSingle)
};

}  // namespace

OptimizeResult optimize(const Netlist& nl) {
  const auto& cells = nl.cells();
  const auto order = nl.topo_order();  // also validates the netlist

  OptimizeStats stats;
  stats.cells_before = cells.size();
  stats.nets_before = nl.net_count();
  for (const Cell& c : cells) {
    if (c.kind == CellKind::kLut6) ++stats.luts_before;
  }

  // repr[n]: what net n's value actually is — itself, another (earlier
  // resolved) net, or a constant. Assignments always store fully resolved
  // targets, so chains stay shallow; resolve() walks them to be safe.
  std::vector<NetId> repr(nl.net_count());
  for (NetId n = 0; n < repr.size(); ++n) repr[n] = n;
  auto resolve = [&repr](NetId n) {
    while (repr[n] != n) n = repr[n];
    return n;
  };
  auto is_const = [](NetId n) { return n == kNetGnd || n == kNetVcc; };
  auto const_of = [](unsigned bit_val) { return bit_val ? kNetVcc : kNetGnd; };

  std::vector<CellPlan> plan(cells.size());
  // CSE: resolved structural key -> representative cell index. Keys are
  // resolved-input based, so chains of duplicates collapse transitively in
  // topological order.
  std::map<std::vector<std::uint64_t>, std::uint32_t> cse;

  for (const std::uint32_t ci : order) {
    const Cell& c = cells[ci];
    CellPlan& p = plan[ci];
    switch (c.kind) {
      case CellKind::kLut6: {
        std::array<NetId, 6> rp{};
        for (unsigned v = 0; v < 6; ++v) rp[v] = c.in[v] == kNoNet ? kNoNet : resolve(c.in[v]);
        // Classify each output independently: constant, buffer (alias), or
        // a function that must stay in silicon.
        struct OutFn {
          NetId net = kNoNet;
          FoldedFn fn;
          bool keep = false;
        };
        OutFn fns[2];
        unsigned n_outs = 0;
        fns[n_outs].net = c.out[0];
        fns[n_outs++].fn = fold_lut(c.init, 6, rp.data());
        if (c.out[1] != kNoNet) {
          fns[n_outs].net = c.out[1];
          fns[n_outs++].fn = fold_lut(c.init & 0xFFFFFFFFu, 5, rp.data());
        }
        unsigned kept = 0;
        for (unsigned o = 0; o < n_outs; ++o) {
          OutFn& f = fns[o];
          if (f.fn.nv == 0) {
            repr[f.net] = const_of(static_cast<unsigned>(f.fn.tt & 1u));
          } else if (f.fn.nv == 1 && f.fn.tt == 0b10) {
            repr[f.net] = f.fn.sup[0];  // buffer: pass the input through
          } else {
            f.keep = true;
            ++kept;
          }
        }
        if (kept == 0) {
          ++stats.folded_cells;
          break;
        }
        std::vector<std::uint64_t> key;
        if (kept == 2) {
          // Both halves live: keep the fused LUT6_2 (splitting would double
          // the LUT count, the paper's area metric).
          p.kind = CellPlan::Kind::kOrig;
          p.rin.assign(rp.begin(), rp.end());
          key = {1, c.init};
          for (NetId n : rp) key.push_back(n);
        } else {
          const OutFn& f = fns[0].keep ? fns[0] : fns[1];
          p.kind = CellPlan::Kind::kLutSingle;
          p.fn = f.fn;
          p.fn_out = f.net;
          key = {2, f.fn.tt, f.fn.nv};
          for (unsigned v = 0; v < f.fn.nv; ++v) key.push_back(f.fn.sup[v]);
        }
        const auto [it, inserted] = cse.emplace(std::move(key), ci);
        if (!inserted) {
          const Cell& rep = cells[it->second];
          if (p.kind == CellPlan::Kind::kLutSingle) {
            repr[p.fn_out] = resolve(plan[it->second].fn_out);
          } else {
            repr[c.out[0]] = resolve(rep.out[0]);
            repr[c.out[1]] = resolve(rep.out[1]);
          }
          p = CellPlan{};
          ++stats.cse_merged;
        }
        break;
      }
      case CellKind::kCarry4: {
        std::array<NetId, 9> rp{};
        for (unsigned v = 0; v < 9; ++v) rp[v] = resolve(c.in[v]);
        // Ripple the carry symbolically: it is either a known constant or
        // exactly the value of some existing net (CIN, a DI pin, or a CO
        // net of this very cell), which is all we need to fold the stages
        // truncation ties off.
        bool ck = is_const(rp[0]);
        unsigned cv = rp[0] == kNetVcc ? 1 : 0;
        NetId cn = rp[0];
        for (unsigned i = 0; i < 4; ++i) {
          const NetId s = rp[1 + i];
          const NetId di = rp[5 + i];
          if (!is_const(s)) {
            // Unknown select: both o[i] and the new carry are cell-computed;
            // from here on the carry is exactly this stage's CO net.
            ck = false;
            cn = c.out[4 + i];
            continue;
          }
          const unsigned sv = s == kNetVcc ? 1 : 0;
          // XORCY: O = S xor carry.
          if (ck) {
            repr[c.out[i]] = const_of(sv ^ cv);
          } else if (sv == 0) {
            repr[c.out[i]] = cn;
          }
          // MUXCY: carry' = S ? carry : DI.
          if (sv == 0) {
            ck = is_const(di);
            cv = di == kNetVcc ? 1 : 0;
            cn = di;
          }
          if (ck) {
            repr[c.out[4 + i]] = const_of(cv);
          } else if (cn != c.out[4 + i]) {
            repr[c.out[4 + i]] = cn;
          }
        }
        // A stage whose carry is still cell-computed keeps the cell alive;
        // only a fully constant/aliased chain lets it disappear.
        bool all_resolved = true;
        for (unsigned o = 0; o < 8; ++o) {
          if (resolve(c.out[o]) == c.out[o]) {
            all_resolved = false;
            break;
          }
        }
        if (all_resolved) {
          ++stats.folded_cells;
          break;
        }
        p.kind = CellPlan::Kind::kOrig;
        p.rin.assign(rp.begin(), rp.end());
        std::vector<std::uint64_t> key = {3};
        for (NetId n : rp) key.push_back(n);
        const auto [it, inserted] = cse.emplace(std::move(key), ci);
        if (!inserted) {
          const Cell& rep = cells[it->second];
          for (unsigned o = 0; o < 8; ++o) {
            if (resolve(c.out[o]) == c.out[o]) repr[c.out[o]] = resolve(rep.out[o]);
          }
          p = CellPlan{};
          ++stats.cse_merged;
        }
        break;
      }
      case CellKind::kDsp: {
        std::vector<NetId> rp(c.in.size());
        bool all_const = true;
        for (std::size_t v = 0; v < c.in.size(); ++v) {
          rp[v] = resolve(c.in[v]);
          all_const = all_const && is_const(rp[v]);
        }
        if (all_const) {
          std::uint64_t a = 0;
          std::uint64_t b = 0;
          for (unsigned v = 0; v < c.dsp_a_width; ++v) {
            a |= static_cast<std::uint64_t>(rp[v] == kNetVcc) << v;
          }
          for (std::size_t v = c.dsp_a_width; v < rp.size(); ++v) {
            b |= static_cast<std::uint64_t>(rp[v] == kNetVcc) << (v - c.dsp_a_width);
          }
          const std::uint64_t prod = a * b;
          for (std::size_t o = 0; o < c.out.size(); ++o) {
            repr[c.out[o]] = const_of(static_cast<unsigned>(bit(prod, static_cast<unsigned>(o))));
          }
          ++stats.folded_cells;
          break;
        }
        p.kind = CellPlan::Kind::kOrig;
        p.rin = std::move(rp);
        std::vector<std::uint64_t> key = {4, c.dsp_a_width, c.out.size()};
        for (NetId n : p.rin) key.push_back(n);
        const auto [it, inserted] = cse.emplace(std::move(key), ci);
        if (!inserted) {
          const Cell& rep = cells[it->second];
          for (std::size_t o = 0; o < c.out.size(); ++o) repr[c.out[o]] = resolve(rep.out[o]);
          p = CellPlan{};
          ++stats.cse_merged;
        }
        break;
      }
      case CellKind::kFdre: {
        if (c.in[0] == kNoNet) {
          throw std::invalid_argument("fabric::optimize: open flip-flop (close_fdre missing)");
        }
        // The D cone may be defined later (registered feedback), so D is
        // resolved at emission time; Q stays its own representative.
        p.kind = CellPlan::Kind::kOrig;
        break;
      }
    }
  }

  // ---- emission: DFS post-order per output cone --------------------------
  Netlist out;
  std::vector<NetId> remap(nl.net_count(), kNoNet);
  remap[kNetGnd] = kNetGnd;
  remap[kNetVcc] = kNetVcc;
  for (const NetId in : nl.inputs()) remap[in] = out.add_input(nl.net_name(in));

  std::vector<std::uint32_t> driver(nl.net_count(), kNoCell);
  std::uint64_t kept_cells = 0;
  for (std::uint32_t ci = 0; ci < cells.size(); ++ci) {
    if (plan[ci].kind == CellPlan::Kind::kDropped) continue;
    ++kept_cells;
    for (const NetId n : cells[ci].out) {
      if (n != kNoNet) driver[n] = ci;
    }
  }

  std::vector<bool> emitted(cells.size(), false);
  std::vector<Netlist::OpenFf> ff_open(cells.size());
  std::vector<std::uint32_t> ff_queue;

  auto mapped = [&](NetId n) {
    const NetId r = resolve(n);
    const NetId m = remap[r];
    if (m == kNoNet) throw std::runtime_error("fabric::optimize: unmapped net " + nl.net_name(r));
    return m;
  };

  auto cell_inputs = [&](std::uint32_t ci) -> std::pair<const NetId*, std::size_t> {
    const CellPlan& p = plan[ci];
    if (cells[ci].kind == CellKind::kFdre) return {nullptr, 0};  // D handled via ff_queue
    if (p.kind == CellPlan::Kind::kLutSingle) return {p.fn.sup.data(), p.fn.nv};
    return {p.rin.data(), p.rin.size()};
  };

  auto emit_cell = [&](std::uint32_t ci) {
    const Cell& c = cells[ci];
    const CellPlan& p = plan[ci];
    switch (c.kind) {
      case CellKind::kLut6: {
        if (p.kind == CellPlan::Kind::kLutSingle) {
          std::array<NetId, 6> pins{kNetGnd, kNetGnd, kNetGnd, kNetGnd, kNetGnd, kNetGnd};
          for (unsigned v = 0; v < p.fn.nv; ++v) pins[v] = mapped(p.fn.sup[v]);
          remap[p.fn_out] = out.add_lut6(c.name, expand_tt(p.fn.tt, p.fn.nv), pins).o6;
          break;
        }
        std::array<NetId, 6> pins{};
        for (unsigned v = 0; v < 6; ++v) {
          pins[v] = p.rin[v] == kNoNet ? kNetGnd : mapped(p.rin[v]);
        }
        const auto lut = out.add_lut6(c.name, c.init, pins, true);
        remap[c.out[0]] = lut.o6;
        remap[c.out[1]] = lut.o5;
        break;
      }
      case CellKind::kCarry4: {
        std::array<NetId, 4> s{};
        std::array<NetId, 4> di{};
        for (unsigned i = 0; i < 4; ++i) {
          s[i] = mapped(p.rin[1 + i]);
          di[i] = mapped(p.rin[5 + i]);
        }
        const auto cc = out.add_carry4(c.name, mapped(p.rin[0]), s, di);
        for (unsigned i = 0; i < 4; ++i) {
          remap[c.out[i]] = cc.o[i];
          remap[c.out[4 + i]] = cc.co[i];
        }
        break;
      }
      case CellKind::kDsp: {
        std::vector<NetId> a;
        std::vector<NetId> b;
        for (unsigned v = 0; v < c.dsp_a_width; ++v) a.push_back(mapped(p.rin[v]));
        for (std::size_t v = c.dsp_a_width; v < p.rin.size(); ++v) b.push_back(mapped(p.rin[v]));
        const auto prod = out.add_dsp(c.name, a, b, static_cast<unsigned>(c.out.size()));
        for (std::size_t o = 0; o < c.out.size(); ++o) remap[c.out[o]] = prod[o];
        break;
      }
      case CellKind::kFdre: {
        ff_open[ci] = out.add_fdre_open(c.name);
        remap[c.out[0]] = ff_open[ci].q;
        ff_queue.push_back(ci);
        break;
      }
    }
    emitted[ci] = true;
  };

  struct Frame {
    std::uint32_t ci;
    unsigned next;
  };
  std::vector<Frame> stack;
  auto emit_cone = [&](NetId root) {
    const NetId r0 = resolve(root);
    if (remap[r0] != kNoNet) return;
    const std::uint32_t c0 = driver[r0];
    if (c0 == kNoCell) {
      throw std::runtime_error("fabric::optimize: undriven net " + nl.net_name(r0));
    }
    if (emitted[c0]) return;
    stack.push_back({c0, 0});
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto [ins, n_ins] = cell_inputs(f.ci);
      if (f.next < n_ins) {
        const NetId raw = ins[f.next++];
        if (raw == kNoNet) continue;  // unconnected LUT pin
        const NetId r = resolve(raw);
        if (remap[r] != kNoNet) continue;
        const std::uint32_t ci = driver[r];
        if (ci == kNoCell) {
          throw std::runtime_error("fabric::optimize: undriven net " + nl.net_name(r));
        }
        if (!emitted[ci]) stack.push_back({ci, 0});
        continue;
      }
      emit_cell(f.ci);
      stack.pop_back();
    }
  };

  for (const NetId n : nl.outputs()) emit_cone(n);
  // Live flip-flops pull in their D cones (which may reveal more
  // flip-flops); the open Q / deferred close pattern supports feedback.
  for (std::size_t head = 0; head < ff_queue.size(); ++head) {
    const std::uint32_t ci = ff_queue[head];
    emit_cone(cells[ci].in[0]);
    out.close_fdre(ff_open[ci], mapped(cells[ci].in[0]));
  }

  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    out.add_output(nl.output_names()[i], mapped(nl.outputs()[i]));
  }

  std::uint64_t emitted_count = 0;
  for (std::uint32_t ci = 0; ci < cells.size(); ++ci) emitted_count += emitted[ci] ? 1 : 0;
  stats.dead_removed = kept_cells - emitted_count;
  stats.cells_after = out.cells().size();
  stats.nets_after = out.net_count();
  for (const Cell& c : out.cells()) {
    if (c.kind == CellKind::kLut6) ++stats.luts_after;
  }
  return {std::move(out), stats};
}

}  // namespace axmult::fabric
