// Stuck-at fault injection on fabric netlists.
//
// Reliability companion to the error analysis: a single-event stuck-at
// fault on an internal net turns an (approximate) multiplier into a
// different approximate multiplier; the same error metrics then quantify
// fault criticality. Approximate architectures with confined error bits
// degrade more gracefully than accurate ones — the analysis this module
// enables.
#pragma once

#include <vector>

#include "fabric/netlist.hpp"

namespace axmult::fabric {

struct StuckAtFault {
  NetId net = kNoNet;
  bool stuck_value = false;
};

/// Returns a copy of `nl` with every consumer of `fault.net` (cell pins
/// and primary outputs) rewired to the stuck constant. The faulty driver
/// cell is left in place (its output simply becomes unobservable), which
/// keeps cell indices and area identical to the original.
[[nodiscard]] Netlist with_stuck_at(const Netlist& nl, const StuckAtFault& fault);

/// All injectable fault sites: nets driven by LUT O6/O5, CARRY4 O/CO and
/// FDRE Q outputs (primary inputs are excluded — those are testbench
/// faults, not fabric faults).
[[nodiscard]] std::vector<NetId> fault_sites(const Netlist& nl);

}  // namespace axmult::fabric
