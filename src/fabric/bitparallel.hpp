// Bit-sliced (64-lane) netlist evaluation.
//
// The scalar fabric::Evaluator spends one uint8_t per net and one pass of
// the topological order per input vector. This backend packs 64 independent
// input vectors into one std::uint64_t per net ("lane l" = bit l of every
// packed word) and evaluates each cell once per 64 vectors with word-level
// bitwise ops:
//   * LUT6_2  — the 64-bit INIT is expanded onto lane masks and folded
//               through a Shannon mux tree (one 64-lane mux per INIT pair),
//   * CARRY4  — XORCY/MUXCY as bitwise ops, the carry rippling over all 64
//               lanes at once,
//   * DSP     — per-lane integer multiply (gather/scatter; DSP netlists are
//               tiny so this never dominates),
//   * FDRE    — one packed state word per flip-flop, i.e. 64 independent
//               state machines advancing in lockstep.
// Exhaustive and sampled error sweeps (error/metrics.hpp) and toggle-based
// power estimation (power/) are built on top of this evaluator.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fabric/netlist.hpp"

namespace axmult::fabric {

/// Lane-index bit patterns: kLanePattern[k] has bit l set iff bit k of the
/// lane index l (0..63) is set. Packing 64 consecutive integers base..base+63
/// (base 64-aligned) therefore needs no transpose: bit-plane k of the packed
/// value is kLanePattern[k] for k < 6 and a broadcast of bit k of `base`
/// above that.
inline constexpr std::array<std::uint64_t, 6> kLanePattern{
    0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
    0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull,
};

/// Evaluates a combinational netlist on 64 packed input vectors at a time.
/// Roughly 64x the single-thread throughput of the scalar Evaluator; the
/// multithreaded sweeps in error/ run one instance per worker thread.
class BitParallelEvaluator {
 public:
  static constexpr unsigned kLanes = 64;

  explicit BitParallelEvaluator(const Netlist& nl);
  /// Binding a temporary netlist would dangle (only a reference is kept).
  explicit BitParallelEvaluator(Netlist&&) = delete;

  /// `input_words[i]` packs the 64 lane values of `nl.inputs()[i]`.
  /// Returns packed output words in declaration order; the reference stays
  /// valid until the next eval on this instance.
  const std::vector<std::uint64_t>& eval(const std::vector<std::uint64_t>& input_words);

  /// Batch convenience mirroring Evaluator::eval_word: multiplies operand
  /// pairs (a[k], b[k]) for k < n (n <= 64, ragged tails fine) through the
  /// netlist and writes the products to p[0..n). Operand/product bits map
  /// to inputs/outputs LSB-first in declaration order.
  void eval_mul_batch(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* p,
                      std::size_t n, unsigned a_bits, unsigned b_bits);

  /// Packed net values from the most recent eval (lane l = vector l); used
  /// by the popcount-based toggle counting in power/.
  [[nodiscard]] const std::vector<std::uint64_t>& net_values() const noexcept { return value_; }

 private:
  friend class BitParallelSeqEvaluator;

  // The constructor compiles the netlist into a flat evaluation tape. Each
  // LUT output becomes a LutFn: its INIT is cofactored against constant
  // (GND/VCC) inputs and reduced to its true support. Multiplier logic is
  // XOR/AND-dominated, so the reduced function is evaluated via its (very
  // sparse) algebraic normal form — an XOR of AND-monomials over the packed
  // words — with a Shannon mux tree as fallback for dense functions: the
  // first level precomputed as per-leaf (lo, lo^hi) masks so evaluation is
  // branchless (leaf = lo ^ (x & i0)), then one 64-lane mux per node pair.
  struct Leaf {
    std::uint64_t lo;
    std::uint64_t x;
  };
  struct LutFn {
    std::uint32_t out;
    std::uint32_t prog_base;          ///< index into anf_ (ANF) or leaf_ (mux)
    std::array<std::uint32_t, 6> in;  ///< support net ids (first k valid)
    std::uint8_t k;                   ///< support size; 0 = constant function
    std::uint8_t n_monos;             ///< ANF monomial count; 0xFF = use mux tree
    std::uint64_t const_word;         ///< broadcast value when k == 0
  };
  struct CarryFn {
    std::uint32_t cyinit;
    std::array<std::uint32_t, 4> s;
    std::array<std::uint32_t, 4> di;
    std::array<std::uint32_t, 4> o;   ///< kNoNet remapped to the trash slot
    std::array<std::uint32_t, 4> co;
  };
  enum class TapeKind : std::uint8_t { kLut, kCarry, kDsp, kFf };
  struct TapeEntry {
    TapeKind kind;
    std::uint32_t idx;  ///< index into luts_/carries_, cell index for kDsp,
                        ///< flip-flop slot for kFf
  };

  void eval_impl(const std::uint64_t* input_words, std::size_t n_inputs,
                 std::vector<std::uint64_t>* ff_state);
  void compile_lut(std::uint64_t tt, unsigned nvars, const NetId* in, NetId out);

  const Netlist& nl_;
  std::vector<TapeEntry> tape_;
  std::vector<LutFn> luts_;
  std::vector<Leaf> leaf_;
  std::vector<std::uint32_t> anf_;  ///< monomial stream: [n_vars, net_id...]*
  std::vector<CarryFn> carries_;
  std::vector<std::uint32_t> ff_q_;  ///< Q net of flip-flop slot i
  std::vector<std::uint64_t> value_;  ///< net_count() words + one trash slot
  std::vector<std::uint64_t> out_;
  std::vector<std::uint64_t> in_scratch_;
  std::vector<std::uint64_t> dsp_scratch_;
};

/// 64 independent cycle-accurate machines over one sequential netlist.
/// Each step() applies one packed input vector per lane, settles the logic,
/// returns packed outputs (state *before* the edge) and clocks every
/// flip-flop in every lane.
class BitParallelSeqEvaluator {
 public:
  static constexpr unsigned kLanes = BitParallelEvaluator::kLanes;

  explicit BitParallelSeqEvaluator(const Netlist& nl);
  explicit BitParallelSeqEvaluator(Netlist&&) = delete;

  const std::vector<std::uint64_t>& step(const std::vector<std::uint64_t>& input_words);

  /// Resets all flip-flops in all lanes to zero.
  void reset();

  [[nodiscard]] std::size_t ff_count() const noexcept { return state_.size(); }

  [[nodiscard]] const std::vector<std::uint64_t>& net_values() const noexcept {
    return comb_.net_values();
  }

 private:
  BitParallelEvaluator comb_;
  std::vector<std::uint64_t> state_;
};

}  // namespace axmult::fabric
