// Bit-sliced wide-lane netlist evaluation.
//
// The scalar fabric::Evaluator spends one uint8_t per net and one pass of
// the topological order per input vector. This backend packs 64*W
// independent input vectors into W contiguous std::uint64_t words per net
// ("lane l" = bit l%64 of word l/64) and evaluates each cell once per 64*W
// vectors with word-level bitwise ops:
//   * LUT6_2  — the 64-bit INIT is reduced to its true support and
//               evaluated via its (sparse) algebraic normal form, with a
//               Shannon mux tree as fallback for dense functions,
//   * CARRY4  — XORCY/MUXCY as bitwise ops, the carry rippling over all
//               lanes at once,
//   * DSP     — per-lane integer multiply (gather/scatter; DSP netlists are
//               tiny so this never dominates),
//   * FDRE    — W packed state words per flip-flop, i.e. 64*W independent
//               state machines advancing in lockstep.
// The W-word blocks are contiguous, so the fixed-trip-count inner loops
// auto-vectorize (AVX2: W=4 is one 256-bit op per net op; AVX-512/NEON
// accordingly). W=1 is the classic 64-lane evaluator; error/ sweeps and
// power/ toggle counting pick the widest profitable width.
//
// Both evaluators run fabric::optimize() on the netlist before compiling
// their tape (EvalOptions::optimize, on by default): constant folding,
// CSE and dead-cone elimination shrink the tape, and output-cone
// scheduling improves its locality. Callers that index net_values() by the
// original NetIds (power/'s toggle counting) must disable this.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "fabric/netlist.hpp"
#include "fabric/optimize.hpp"

namespace axmult::fabric {

/// Lane-index bit patterns: kLanePattern[k] has bit l set iff bit k of the
/// lane index l (0..63) is set. Packing 64 consecutive integers base..base+63
/// (base 64-aligned) therefore needs no transpose: bit-plane k of the packed
/// value is kLanePattern[k] for k < 6 and a broadcast of bit k of `base`
/// above that.
inline constexpr std::array<std::uint64_t, 6> kLanePattern{
    0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
    0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull,
};

/// In-place 64x64 bit-matrix transpose: afterwards a[i] bit l == (original)
/// a[l] bit i. Converts between lane-major operand words and the bit-plane
/// words the evaluator consumes. Involution.
inline void transpose64(std::uint64_t a[64]) noexcept {
  for (unsigned t = 6; t-- > 0;) {
    const unsigned j = 1u << t;
    const std::uint64_t m = kLanePattern[t];
    for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t x = (a[k] ^ (a[k + j] << j)) & m;
      a[k] ^= x;
      a[k + j] ^= x >> j;
    }
  }
}

/// Construction-time knobs shared by the packed evaluators.
struct EvalOptions {
  /// Run fabric::optimize() and evaluate the optimized copy. Disable when
  /// net_values() must be indexed by the original netlist's NetIds.
  bool optimize = true;
};

class BitParallelSeqEvaluator;

namespace detail {

// The netlist compiled into a flat, width-independent evaluation tape.
// Each LUT output becomes a LutFn: its INIT is cofactored against constant
// (GND/VCC) inputs and reduced to its true support. Multiplier logic is
// XOR/AND-dominated, so the reduced function is evaluated via its (very
// sparse) algebraic normal form — an XOR of AND-monomials over the packed
// words — with a Shannon mux tree as fallback for dense functions: the
// first level precomputed as per-leaf (lo, lo^hi) masks so evaluation is
// branchless (leaf = lo ^ (x & i0)), then one packed mux per node pair.
struct CompiledTape {
  struct Leaf {
    std::uint64_t lo;
    std::uint64_t x;
  };
  struct LutFn {
    std::uint32_t out;
    std::uint32_t prog_base;          ///< index into anf (ANF) or leaf (mux)
    std::array<std::uint32_t, 6> in;  ///< support net ids (first k valid)
    std::uint8_t k;                   ///< support size; 0 = constant function
    std::uint8_t n_monos;             ///< ANF monomial count; 0xFF = use mux tree
    std::uint64_t const_word;         ///< broadcast value when k == 0
  };
  struct CarryFn {
    std::uint32_t cyinit;
    std::array<std::uint32_t, 4> s;
    std::array<std::uint32_t, 4> di;
    std::array<std::uint32_t, 4> o;   ///< kNoNet remapped to the trash slot
    std::array<std::uint32_t, 4> co;
  };
  enum class TapeKind : std::uint8_t { kLut, kCarry, kDsp, kFf };
  struct TapeEntry {
    TapeKind kind;
    std::uint32_t idx;  ///< index into luts/carries, cell index for kDsp,
                        ///< flip-flop slot for kFf
  };

  CompiledTape(const Netlist& source, const EvalOptions& options);
  CompiledTape(CompiledTape&&) noexcept = default;

  const Netlist* nl;                  ///< the netlist the tape evaluates
  std::unique_ptr<const Netlist> owned;  ///< optimized copy (when optimizing)
  OptimizeStats opt_stats;            ///< zeros when optimize was off
  std::vector<TapeEntry> tape;
  std::vector<LutFn> luts;
  std::vector<Leaf> leaf;
  std::vector<std::uint32_t> anf;  ///< monomial stream: [n_vars, net_id...]*
  std::vector<CarryFn> carries;
  std::vector<std::uint32_t> ff_q;  ///< Q net of flip-flop slot i

 private:
  void compile_lut(std::uint64_t tt, unsigned nvars, const NetId* in, NetId out);
};

}  // namespace detail

/// Evaluates a combinational netlist on 64*W packed input vectors at a
/// time. W=1 is the classic 64-lane bit-parallel evaluator; wider widths
/// trade register pressure for SIMD (the W-word inner loops vectorize).
/// The multithreaded sweeps in error/ run one instance per worker thread.
template <unsigned W>
class WideEvaluator {
  static_assert(W == 1 || W == 2 || W == 4 || W == 8, "supported widths: 1/2/4/8 words");

 public:
  static constexpr unsigned kWords = W;
  static constexpr unsigned kLanes = 64 * W;

  explicit WideEvaluator(const Netlist& nl, EvalOptions options = {});
  /// Binding a temporary netlist would dangle (only a reference is kept).
  explicit WideEvaluator(Netlist&&, EvalOptions = {}) = delete;

  /// `input_words[i*W + w]` packs lanes 64w..64w+63 of `nl.inputs()[i]`.
  /// Returns packed output words in the same layout (out[i*W + w]); the
  /// reference stays valid until the next eval on this instance.
  const std::vector<std::uint64_t>& eval(const std::vector<std::uint64_t>& input_words);

  /// Batch convenience mirroring Evaluator::eval_word: multiplies operand
  /// pairs (a[k], b[k]) for k < n (n <= kLanes, ragged tails fine) through
  /// the netlist and writes the products to p[0..n). Operand/product bits
  /// map to inputs/outputs LSB-first in declaration order.
  void eval_mul_batch(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* p,
                      std::size_t n, unsigned a_bits, unsigned b_bits);

  /// Packed net values from the most recent eval (net n's block starts at
  /// n*W); used by the popcount-based toggle counting in power/. Indexed by
  /// the *evaluated* netlist's ids — construct with {.optimize = false}
  /// when the original ids are needed.
  [[nodiscard]] const std::vector<std::uint64_t>& net_values() const noexcept { return value_; }

  /// The netlist the tape actually evaluates (the optimized copy when
  /// optimization ran, `nl` itself otherwise).
  [[nodiscard]] const Netlist& evaluated_netlist() const noexcept { return *tape_.nl; }

  /// Cell-count deltas of the construction-time optimize pass (all zeros
  /// when it was disabled).
  [[nodiscard]] const OptimizeStats& optimize_stats() const noexcept { return tape_.opt_stats; }

 private:
  friend class BitParallelSeqEvaluator;

  void eval_impl(const std::uint64_t* input_words, std::size_t n_inputs,
                 std::vector<std::uint64_t>* ff_state);

  detail::CompiledTape tape_;
  std::vector<std::uint64_t> value_;  ///< (net_count + 1 trash slot) * W words
  std::vector<std::uint64_t> out_;
  std::vector<std::uint64_t> dsp_scratch_;
};

extern template class WideEvaluator<1>;
extern template class WideEvaluator<2>;
extern template class WideEvaluator<4>;
extern template class WideEvaluator<8>;

/// The PR-1 name for the 64-lane width, kept as the default backend.
using BitParallelEvaluator = WideEvaluator<1>;

/// 64 independent cycle-accurate machines over one sequential netlist.
/// Each step() applies one packed input vector per lane, settles the logic,
/// returns packed outputs (state *before* the edge) and clocks every
/// flip-flop in every lane.
class BitParallelSeqEvaluator {
 public:
  static constexpr unsigned kLanes = BitParallelEvaluator::kLanes;

  explicit BitParallelSeqEvaluator(const Netlist& nl, EvalOptions options = {});
  explicit BitParallelSeqEvaluator(Netlist&&, EvalOptions = {}) = delete;

  const std::vector<std::uint64_t>& step(const std::vector<std::uint64_t>& input_words);

  /// Resets all flip-flops in all lanes to zero.
  void reset();

  [[nodiscard]] std::size_t ff_count() const noexcept { return state_.size(); }

  [[nodiscard]] const std::vector<std::uint64_t>& net_values() const noexcept {
    return comb_.net_values();
  }

 private:
  BitParallelEvaluator comb_;
  std::vector<std::uint64_t> state_;
};

}  // namespace axmult::fabric
