// Pre-evaluation netlist optimization.
//
// Generated multiplier netlists carry systematic redundancy: truncated
// designs tie LUT pins to GND/VCC, compressor trees replicate identical
// partial-product cells, and result truncation leaves whole cones driving
// nothing. The scalar Evaluator shrugs this off (it is slow anyway) but the
// bit-parallel tape pays for every dead word op, so both packed evaluators
// run this pass automatically before compiling their tape:
//   * constant folding  — LUT truth tables are cofactored against constant
//                         pins, CARRY4 stages with constant selects are
//                         simulated, buffers (identity LUTs) are aliased
//                         through, fully constant cells disappear;
//   * duplicate-cell CSE — structurally identical cells (same function,
//                         same resolved inputs) merge, cascading in
//                         topological order;
//   * dead-cone elimination — cells outside every primary output's (and
//                         live flip-flop's) fan-in are dropped;
//   * output-cone scheduling — surviving cells are re-emitted cone by cone
//                         in DFS post-order, so tape locality follows the
//                         order results are consumed.
// The result is a fresh, compact Netlist with identical I/O behavior:
// same inputs (count, order, names), same outputs, same sequential
// semantics (flip-flops reset to zero; live flip-flops are preserved).
#pragma once

#include <cstdint>

#include "fabric/netlist.hpp"

namespace axmult::fabric {

/// Before/after counters of one optimize() run.
struct OptimizeStats {
  std::uint64_t cells_before = 0;
  std::uint64_t cells_after = 0;
  std::uint64_t luts_before = 0;
  std::uint64_t luts_after = 0;
  std::uint64_t nets_before = 0;
  std::uint64_t nets_after = 0;
  std::uint64_t folded_cells = 0;   ///< cells whose outputs became constants/aliases
  std::uint64_t cse_merged = 0;     ///< duplicate cells merged into a representative
  std::uint64_t dead_removed = 0;   ///< live-looking cells outside every output cone

  [[nodiscard]] std::uint64_t cells_removed() const noexcept {
    return cells_before - cells_after;
  }
};

struct OptimizeResult {
  Netlist netlist;
  OptimizeStats stats;
};

/// Optimizes `nl` as described above. Throws std::runtime_error (via
/// topo_order) on malformed netlists. The returned netlist evaluates
/// identically to `nl` on every input vector (and cycle, if sequential).
[[nodiscard]] OptimizeResult optimize(const Netlist& nl);

}  // namespace axmult::fabric
