#include "power/power.hpp"

#include <vector>

#include "common/rng.hpp"

namespace axmult::power {

using fabric::Cell;
using fabric::CellKind;
using fabric::NetId;

PowerReport estimate(const fabric::Netlist& nl, const PowerModel& model,
                     const timing::DelayModel& delay_model) {
  fabric::SeqEvaluator ev(nl);
  const auto fanout = nl.fanout();
  const std::size_t n_inputs = nl.inputs().size();

  // Per-net capacitance: wire + input pins of the loads it drives.
  std::vector<double> cap(nl.net_count(), 0.0);
  for (NetId n = 2; n < nl.net_count(); ++n) {
    if (fanout[n] > 0) cap[n] = model.net_cap + model.cap_per_fanout * fanout[n];
  }
  double cell_cap_per_toggle = 0.0;  // folded into driving-net toggles below
  (void)cell_cap_per_toggle;

  Xoshiro256 rng(model.seed);
  auto random_inputs = [&] {
    std::vector<std::uint8_t> v(n_inputs);
    for (auto& b : v) b = static_cast<std::uint8_t>(rng() & 1u);
    return v;
  };

  std::vector<std::uint8_t> prev_values;
  long double switched = 0.0L;
  std::uint64_t transitions = 0;

  auto run = [&](const std::vector<std::uint8_t>& in) -> const std::vector<std::uint8_t>& {
    (void)ev.step(in);
    return ev.net_values();
  };
  prev_values = run(random_inputs());

  for (std::uint64_t i = 0; i < model.vectors; ++i) {
    const auto& cur = run(random_inputs());
    for (NetId n = 2; n < nl.net_count(); ++n) {
      if (cur[n] != prev_values[n]) switched += cap[n];
    }
    // Cell-internal switching: approximate by charging each cell whose
    // output toggled with its internal capacitance.
    for (const Cell& c : nl.cells()) {
      bool toggled = false;
      for (NetId out : c.out) {
        if (out != fabric::kNoNet && cur[out] != prev_values[out]) {
          toggled = true;
          break;
        }
      }
      if (!toggled) continue;
      switch (c.kind) {
        case CellKind::kLut6: switched += model.lut_cap; break;
        case CellKind::kCarry4: switched += 4 * model.carry_cap; break;
        case CellKind::kDsp: switched += model.dsp_cap; break;
        case CellKind::kFdre: switched += model.ff_cap; break;
      }
    }
    prev_values = cur;
    ++transitions;
  }

  PowerReport report;
  if (transitions > 0) {
    report.switched_cap_per_op = static_cast<double>(switched / transitions);
  }
  report.energy_au = report.switched_cap_per_op;
  report.edp_au = report.energy_au * timing::analyze(nl, delay_model).critical_path_ns;
  return report;
}

}  // namespace axmult::power
