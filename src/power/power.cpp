#include "power/power.hpp"

#include <algorithm>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "fabric/bitparallel.hpp"

namespace axmult::power {

using fabric::Cell;
using fabric::CellKind;
using fabric::NetId;

namespace {

/// Per-net capacitance: wire + input pins of the loads it drives.
std::vector<double> net_caps(const fabric::Netlist& nl, const PowerModel& model) {
  const auto fanout = nl.fanout();
  std::vector<double> cap(nl.net_count(), 0.0);
  for (NetId n = 2; n < nl.net_count(); ++n) {
    if (fanout[n] > 0) cap[n] = model.net_cap + model.cap_per_fanout * fanout[n];
  }
  return cap;
}

double cell_cap(const Cell& c, const PowerModel& model) {
  switch (c.kind) {
    case CellKind::kLut6:
      return model.lut_cap + (c.reconfigurable ? model.cfglut_cap : 0.0);
    case CellKind::kCarry4: return 4 * model.carry_cap;
    case CellKind::kDsp: return model.dsp_cap;
    case CellKind::kFdre: return model.ff_cap;
  }
  return 0.0;
}

/// Combinational fast path: the random vector stream is packed 64*W per
/// window (lane l = vector index base+l), evaluated through the wide-lane
/// bit-parallel backend, and toggles are counted with popcount over
/// lane-adjacent transition masks. Draws the RNG in exactly the scalar
/// order (vector-major, input-minor) and folds the per-64-vector words in
/// stream order, so both the simulated sequence and the long-double sum are
/// bit-identical for every width W — widening only batches the evaluation.
/// The evaluator runs with optimize=false: toggle counting indexes
/// net_values() by the original NetIds and must see every physical net.
template <unsigned W>
long double switched_cap_packed(const fabric::Netlist& nl, const PowerModel& model,
                                const std::vector<double>& cap) {
  fabric::WideEvaluator<W> ev(nl, {.optimize = false});
  Xoshiro256 rng(model.seed);
  const std::size_t n_inputs = nl.inputs().size();
  const std::size_t nets = nl.net_count();
  const std::uint64_t total_vectors = model.vectors + 1;  // v0 + one per transition

  std::vector<std::uint64_t> in_words(n_inputs * W);
  std::vector<std::uint64_t> tmask(nets, 0);
  std::vector<std::uint8_t> prev_last(nets, 0);
  long double switched = 0.0L;

  for (std::uint64_t v0 = 0; v0 < total_vectors; v0 += 64 * W) {
    const std::uint64_t span = std::min<std::uint64_t>(64 * W, total_vectors - v0);
    std::fill(in_words.begin(), in_words.end(), 0);
    for (std::uint64_t l = 0; l < span; ++l) {
      for (std::size_t i = 0; i < n_inputs; ++i) {
        in_words[i * W + l / 64] |= static_cast<std::uint64_t>(rng() & 1u) << (l % 64);
      }
    }
    (void)ev.eval(in_words);
    const auto& val = ev.net_values();

    for (unsigned w = 0; w * 64 < span; ++w) {
      const std::uint64_t w0 = v0 + std::uint64_t{w} * 64;
      const unsigned lanes = static_cast<unsigned>(std::min<std::uint64_t>(64, span - w * 64));
      // Transition l is "into vector w0+l" (from the previous lane, or from
      // the previous word's last lane at l = 0). Vector 0 has no inbound
      // transition; lanes beyond the stream tail are invalid.
      std::uint64_t valid = lanes == 64 ? ~std::uint64_t{0} : low_mask(lanes);
      if (w0 == 0) valid &= ~std::uint64_t{1};

      for (NetId n = 2; n < nets; ++n) {
        const std::uint64_t word = val[std::size_t{n} * W + w];
        const std::uint64_t carry_in = prev_last[n] ? 1u : 0u;
        const std::uint64_t t = (word ^ ((word << 1) | carry_in)) & valid;
        tmask[n] = t;
        if (t != 0) switched += cap[n] * popcount(t);
        prev_last[n] = static_cast<std::uint8_t>((word >> (lanes - 1)) & 1u);
      }
      // Cell-internal switching: charge each cell once per transition in
      // which any of its outputs toggled.
      for (const Cell& c : nl.cells()) {
        std::uint64_t m = 0;
        for (NetId out : c.out) {
          if (out != fabric::kNoNet) m |= tmask[out];
        }
        if (m != 0) switched += cell_cap(c, model) * popcount(m);
      }
    }
  }
  return switched;
}

/// Sequential path: state evolution is serial, so vectors are replayed one
/// at a time through the cycle-accurate scalar evaluator.
long double switched_cap_scalar(const fabric::Netlist& nl, const PowerModel& model,
                                const std::vector<double>& cap) {
  fabric::SeqEvaluator ev(nl);
  Xoshiro256 rng(model.seed);
  const std::size_t n_inputs = nl.inputs().size();

  std::vector<std::uint8_t> in(n_inputs);
  auto run = [&]() -> const std::vector<std::uint8_t>& {
    for (auto& b : in) b = static_cast<std::uint8_t>(rng() & 1u);
    (void)ev.step(in);
    return ev.net_values();
  };

  std::vector<std::uint8_t> prev_values = run();
  long double switched = 0.0L;
  for (std::uint64_t i = 0; i < model.vectors; ++i) {
    const auto& cur = run();
    for (NetId n = 2; n < nl.net_count(); ++n) {
      if (cur[n] != prev_values[n]) switched += cap[n];
    }
    for (const Cell& c : nl.cells()) {
      bool toggled = false;
      for (NetId out : c.out) {
        if (out != fabric::kNoNet && cur[out] != prev_values[out]) {
          toggled = true;
          break;
        }
      }
      if (toggled) switched += cell_cap(c, model);
    }
    prev_values = cur;
  }
  return switched;
}

}  // namespace

PowerReport estimate(const fabric::Netlist& nl, const PowerModel& model,
                     const timing::DelayModel& delay_model) {
  const auto cap = net_caps(nl, model);
  // Widest profitable lane count for the vector budget: the windows batch
  // evaluation only, so every width produces bit-identical results.
  const long double switched =
      nl.is_sequential()          ? switched_cap_scalar(nl, model, cap)
      : model.vectors + 1 >= 512  ? switched_cap_packed<8>(nl, model, cap)
      : model.vectors + 1 >= 128  ? switched_cap_packed<2>(nl, model, cap)
                                  : switched_cap_packed<1>(nl, model, cap);
  PowerReport report;
  if (model.vectors > 0) {
    report.switched_cap_per_op = static_cast<double>(switched / model.vectors);
  }
  report.energy_au = report.switched_cap_per_op;
  report.edp_au = report.energy_au * timing::analyze(nl, delay_model).critical_path_ns;
  return report;
}

}  // namespace axmult::power
