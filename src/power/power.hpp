// Toggle-activity energy model and EDP computation.
//
// The energy half of the Vivado substitution: dynamic energy is
// proportional to switched capacitance, which we estimate by simulating a
// stream of random operand transitions and accumulating per-net toggles
// weighted by a fanout-dependent capacitance plus a per-cell-type input
// capacitance. Absolute units are arbitrary ("a.u."); the paper's Fig. 7
// reports *gains relative to the accurate Vivado IP*, which only needs
// consistent relative energy.
#pragma once

#include <cstdint>

#include "fabric/netlist.hpp"
#include "timing/sta.hpp"

namespace axmult::power {

struct PowerModel {
  double net_cap = 1.0;          ///< capacitance per routed net
  double cap_per_fanout = 0.35;  ///< extra capacitance per additional load
  double lut_cap = 0.6;          ///< internal LUT switching
  /// Extra switched capacitance on LUTs marked runtime-reconfigurable
  /// (CFGLUT5-style: the 32-bit INIT shift register loads the read mux).
  /// Zero by default so static designs are unaffected.
  double cfglut_cap = 0.0;
  double carry_cap = 0.12;       ///< per-bit MUXCY switching
  double ff_cap = 0.25;          ///< flip-flop clocking + output switching
  double dsp_cap = 45.0;         ///< DSP block switching per operation
  std::uint64_t vectors = 2048;  ///< random transitions to simulate
  std::uint64_t seed = 7;
};

struct PowerReport {
  double switched_cap_per_op = 0.0;  ///< average switched capacitance (a.u.)
  double energy_au = 0.0;            ///< = switched_cap_per_op (V^2 folded in)
  double edp_au = 0.0;               ///< energy * critical-path delay
};

/// Estimates dynamic energy per operation and the energy-delay product
/// using the supplied (or default) timing model for the delay term.
[[nodiscard]] PowerReport estimate(const fabric::Netlist& nl, const PowerModel& model = {},
                                   const timing::DelayModel& delay_model = {});

}  // namespace axmult::power
