#include "asic/model.hpp"

#include <algorithm>

#include "asic/qm.hpp"
#include "common/bits.hpp"
#include "mult/elementary.hpp"

namespace axmult::asic {

namespace {

struct BlockCost {
  double area = 0.0;
  unsigned depth = 0;
};

/// Two-level cost of one elementary block: QM-minimize every product bit
/// over the block's full truth table.
BlockCost block_cost(mult::Elementary e) {
  std::uint64_t (*fn)(std::uint64_t, std::uint64_t) = nullptr;
  unsigned op_bits = 2;
  unsigned out_bits = 4;
  switch (e) {
    case mult::Elementary::kApprox4x4:
      fn = &mult::approx_4x4;
      op_bits = 4;
      out_bits = 8;
      break;
    case mult::Elementary::kAccurate4x4:
      fn = &mult::accurate_4x4;
      op_bits = 4;
      out_bits = 8;
      break;
    case mult::Elementary::kKulkarni2x2:
      fn = &mult::kulkarni_2x2;
      out_bits = 3;
      break;
    case mult::Elementary::kRehman2x2:
      fn = &mult::rehman_2x2;
      out_bits = 4;
      break;
    case mult::Elementary::kAccurate2x2:
      fn = &mult::accurate_2x2;
      out_bits = 4;
      break;
  }
  const unsigned n = 2 * op_bits;
  BlockCost cost;
  for (unsigned bit_idx = 0; bit_idx < out_bits; ++bit_idx) {
    std::vector<std::uint32_t> on;
    for (std::uint32_t in = 0; in < (1u << n); ++in) {
      const std::uint64_t a = in & low_mask(op_bits);
      const std::uint64_t b = in >> op_bits;
      if (bit(fn(a, b), bit_idx)) on.push_back(in);
    }
    const auto sop = sop_cost(minimize(on, n), n);
    cost.area += sop.area;
    cost.depth = std::max(cost.depth, sop.depth);
  }
  return cost;
}

struct SumCost {
  double area = 0.0;
  double delay_levels = 0.0;
};

/// Summation cost of one recursion level merging four m*m products into a
/// 2m*2m product (columns m .. 4m-1 carry three operands).
SumCost level_cost(unsigned m, mult::Summation s, const AsicModel& model) {
  SumCost c;
  const unsigned cols = 3 * m;
  if (s == mult::Summation::kAccurate) {
    // One CSA row (FA per column) reducing 3 -> 2, then a ripple adder.
    c.area = cols * model.fa_area * 2.0;
    c.delay_levels = model.fa_delay_levels /*CSA*/ + cols * model.fa_delay_levels /*ripple*/;
  } else {
    // Carry-free: two XOR2 per middle column (area 2.33 each), depth 2.
    c.area = 2 * m * 2 * 2.33;
    c.delay_levels = 2.0;
  }
  return c;
}

}  // namespace

AsicReport estimate(unsigned width, mult::Elementary elementary, mult::Summation summation,
                    const AsicModel& model) {
  const unsigned ew = mult::elementary_width(elementary);
  const BlockCost block = block_cost(elementary);
  const unsigned blocks = (width / ew) * (width / ew);

  AsicReport r;
  r.area_nand2 = blocks * block.area;
  double delay_levels = static_cast<double>(block.depth);

  // Recursion levels: at merge size 2m there are (width / 2m)^2 merges,
  // but only the levels on the critical path add delay once each.
  for (unsigned m = ew; m < width; m *= 2) {
    const unsigned merges = (width / (2 * m)) * (width / (2 * m));
    const SumCost sc = level_cost(m, summation, model);
    r.area_nand2 += merges * sc.area;
    delay_levels += sc.delay_levels;
  }
  r.delay_ps = delay_levels * model.gate_delay_ps;
  r.energy_au = r.area_nand2 * model.activity;
  return r;
}

double gain_percent(double exact, double approx) {
  return exact == 0.0 ? 0.0 : 100.0 * (exact - approx) / exact;
}

}  // namespace axmult::asic
