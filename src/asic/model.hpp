// Compositional ASIC cost model (Fig. 1 cross-platform study).
//
// A recursive multiplier on ASIC is: elementary blocks (two-level logic,
// costed by Quine-McCluskey minimization of each output bit) feeding a
// carry-save reduction tree and a final ripple adder. Area is in
// NAND2-equivalents, delay in gate levels * a nominal per-level delay,
// energy proportional to area * activity. Only *relative* gains (vs the
// accurate multiplier of the same width) are reported — the same
// normalization the paper's Fig. 1 uses.
#pragma once

#include "mult/recursive.hpp"

namespace axmult::asic {

struct AsicReport {
  double area_nand2 = 0.0;
  double delay_ps = 0.0;
  double energy_au = 0.0;

  [[nodiscard]] double edp() const noexcept { return energy_au * delay_ps; }
};

struct AsicModel {
  double gate_delay_ps = 45.0;   ///< nominal per-level delay (incl. wire)
  double fa_area = 6.0;          ///< full adder, NAND2-equivalents
  double ha_area = 3.0;          ///< half adder
  double fa_delay_levels = 2.0;  ///< carry levels through one FA
  double activity = 0.5;         ///< toggling fraction folded into energy
};

/// Costs a recursive multiplier built from `elementary` blocks with a
/// CSA + ripple summation (Summation::kAccurate) or the carry-free column
/// XOR (Summation::kCarryFree).
[[nodiscard]] AsicReport estimate(unsigned width, mult::Elementary elementary,
                                  mult::Summation summation, const AsicModel& model = {});

/// Relative gain (%) of `approx` vs `exact` for a metric pair.
[[nodiscard]] double gain_percent(double exact, double approx);

}  // namespace axmult::asic
