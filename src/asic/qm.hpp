// Quine-McCluskey two-level logic minimization (exact prime generation,
// greedy cover) for functions of up to 8 inputs.
//
// The ASIC side of the paper's Fig. 1 needs gate-level cost estimates for
// the elementary approximate blocks; minimizing each output to a
// sum-of-products and costing literals is the classic way to get them.
#pragma once

#include <cstdint>
#include <vector>

namespace axmult::asic {

/// One product term: for input i, (mask >> i & 1) == 0 means "don't care";
/// otherwise the literal is a_i when (bits >> i & 1) == 1, else !a_i.
struct Implicant {
  std::uint32_t bits = 0;
  std::uint32_t mask = 0;

  [[nodiscard]] unsigned literal_count() const noexcept;
  [[nodiscard]] bool covers(std::uint32_t minterm) const noexcept {
    return (minterm & mask) == (bits & mask);
  }
};

/// Minimizes the function whose ON-set over `num_inputs` variables is
/// `minterms`. Returns a (near-minimal) prime-implicant cover; an empty
/// vector means the constant-0 function. A full cover with an empty-mask
/// implicant means constant 1.
[[nodiscard]] std::vector<Implicant> minimize(const std::vector<std::uint32_t>& minterms,
                                              unsigned num_inputs);

/// Two-level cost of a cover: AND gates of `literal_count` inputs feeding
/// one OR. Costs are in NAND2-equivalent gate area.
struct SopCost {
  double area = 0.0;    ///< NAND2-equivalent units
  unsigned depth = 0;   ///< gate levels (balanced AND/OR trees)
};
[[nodiscard]] SopCost sop_cost(const std::vector<Implicant>& cover, unsigned num_inputs);

}  // namespace axmult::asic
