#include "asic/qm.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/bits.hpp"

namespace axmult::asic {

unsigned Implicant::literal_count() const noexcept { return popcount(mask); }

namespace {

struct Key {
  std::uint32_t bits;
  std::uint32_t mask;
  bool operator<(const Key& o) const {
    return mask != o.mask ? mask < o.mask : bits < o.bits;
  }
};

}  // namespace

std::vector<Implicant> minimize(const std::vector<std::uint32_t>& minterms,
                                unsigned num_inputs) {
  if (minterms.empty()) return {};
  const std::uint32_t full_mask = static_cast<std::uint32_t>(low_mask(num_inputs));

  // Iteratively combine implicants differing in exactly one cared bit.
  std::set<Key> current;
  for (std::uint32_t m : minterms) current.insert({m & full_mask, full_mask});
  std::vector<Implicant> primes;

  while (!current.empty()) {
    std::set<Key> next;
    std::set<Key> combined;
    for (auto it = current.begin(); it != current.end(); ++it) {
      for (auto jt = std::next(it); jt != current.end(); ++jt) {
        if (it->mask != jt->mask) continue;
        const std::uint32_t diff = (it->bits ^ jt->bits) & it->mask;
        if (popcount(diff) != 1) continue;
        next.insert({it->bits & ~diff, it->mask & ~diff});
        combined.insert(*it);
        combined.insert(*jt);
      }
    }
    for (const Key& k : current) {
      if (!combined.count(k)) primes.push_back({k.bits, k.mask});
    }
    current = std::move(next);
  }

  // Greedy cover: essential primes first, then highest-coverage.
  std::vector<std::uint32_t> uncovered = minterms;
  std::vector<Implicant> cover;
  // Essential primes.
  for (std::uint32_t m : minterms) {
    const Implicant* only = nullptr;
    int count = 0;
    for (const auto& p : primes) {
      if (p.covers(m)) {
        ++count;
        only = &p;
      }
    }
    if (count == 1 && only != nullptr) {
      if (std::none_of(cover.begin(), cover.end(), [&](const Implicant& c) {
            return c.bits == only->bits && c.mask == only->mask;
          })) {
        cover.push_back(*only);
      }
    }
  }
  auto prune = [&] {
    uncovered.erase(std::remove_if(uncovered.begin(), uncovered.end(),
                                   [&](std::uint32_t m) {
                                     return std::any_of(
                                         cover.begin(), cover.end(),
                                         [&](const Implicant& c) { return c.covers(m); });
                                   }),
                    uncovered.end());
  };
  prune();
  while (!uncovered.empty()) {
    const Implicant* best = nullptr;
    std::size_t best_count = 0;
    for (const auto& p : primes) {
      const std::size_t covered = static_cast<std::size_t>(
          std::count_if(uncovered.begin(), uncovered.end(),
                        [&](std::uint32_t m) { return p.covers(m); }));
      if (covered > best_count) {
        best_count = covered;
        best = &p;
      }
    }
    if (best == nullptr) break;  // unreachable for a consistent ON-set
    cover.push_back(*best);
    prune();
  }
  return cover;
}

SopCost sop_cost(const std::vector<Implicant>& cover, unsigned num_inputs) {
  SopCost cost;
  if (cover.empty()) return cost;  // constant 0: free
  // Inverters: one per variable used complemented anywhere (shared).
  std::uint32_t complemented = 0;
  for (const auto& t : cover) complemented |= t.mask & ~t.bits;
  cost.area += 0.67 * popcount(complemented & static_cast<std::uint32_t>(low_mask(num_inputs)));

  unsigned max_lits = 0;
  for (const auto& t : cover) {
    const unsigned lits = t.literal_count();
    max_lits = std::max(max_lits, lits);
    if (lits >= 2) cost.area += 1.33 * (lits - 1);  // AND2 chain/tree
  }
  if (cover.size() >= 2) cost.area += 1.33 * (cover.size() - 1);  // OR tree

  const auto levels = [](unsigned fanin) {
    return fanin <= 1 ? 0u
                      : static_cast<unsigned>(std::ceil(std::log2(static_cast<double>(fanin))));
  };
  cost.depth = 1 /*inverters*/ + levels(max_lits) + levels(static_cast<unsigned>(cover.size()));
  return cost;
}

}  // namespace axmult::asic
