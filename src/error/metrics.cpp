#include "error/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "common/bits.hpp"
#include "common/parallel_for.hpp"
#include "common/rng.hpp"
#include "fabric/bitparallel.hpp"

namespace axmult::error {

namespace {

/// Batch width for the PairSource adapter: pairs are pulled from the
/// (type-erased) source into flat operand buffers, then characterized in a
/// tight loop — one std::function call per pair for the *source* only, and
/// none for the operator being measured.
constexpr std::size_t kBatchPairs = 256;

/// Fills up to `cap` pairs from `source`; returns how many were produced.
inline std::size_t fill_batch(const PairSource& source, std::uint64_t* a, std::uint64_t* b,
                              std::size_t cap) {
  std::size_t n = 0;
  while (n < cap && source(a[n], b[n])) ++n;
  return n;
}

template <typename ApproxFn, typename ExactFn>
ErrorMetrics characterize_batched(const ApproxFn& approx_fn, const ExactFn& exact_fn,
                                  const PairSource& source) {
  ErrorMetrics r;
  long double sum_abs = 0.0L;
  long double sum_rel = 0.0L;
  long double sum_signed = 0.0L;
  std::uint64_t av[kBatchPairs];
  std::uint64_t bv[kBatchPairs];
  for (;;) {
    const std::size_t n = fill_batch(source, av, bv, kBatchPairs);
    if (n == 0) break;
    r.samples += n;
    for (std::size_t k = 0; k < n; ++k) {
      const std::uint64_t exact = exact_fn(av[k], bv[k]);
      const std::uint64_t approx = approx_fn(av[k], bv[k]);
      if (approx == exact) continue;
      const std::int64_t signed_err =
          static_cast<std::int64_t>(approx) - static_cast<std::int64_t>(exact);
      const std::uint64_t mag = static_cast<std::uint64_t>(std::llabs(signed_err));
      ++r.occurrences;
      sum_abs += static_cast<long double>(mag);
      sum_signed += static_cast<long double>(signed_err);
      if (exact != 0) sum_rel += static_cast<long double>(mag) / static_cast<long double>(exact);
      if (mag > r.max_error) {
        r.max_error = mag;
        r.max_error_occurrences = 1;
      } else if (mag == r.max_error) {
        ++r.max_error_occurrences;
      }
    }
    if (n < kBatchPairs) break;  // source exhausted mid-batch
  }
  if (r.samples > 0) {
    r.avg_error = static_cast<double>(sum_abs / static_cast<long double>(r.samples));
    r.avg_relative_error = static_cast<double>(sum_rel / static_cast<long double>(r.samples));
    r.mean_signed_error = static_cast<double>(sum_signed / static_cast<long double>(r.samples));
  }
  return r;
}

}  // namespace

PairSource exhaustive_source(unsigned a_bits, unsigned b_bits) {
  auto state = std::make_shared<std::uint64_t>(0);
  const std::uint64_t total = std::uint64_t{1} << (a_bits + b_bits);
  const std::uint64_t amask = low_mask(a_bits);
  return [state, total, amask, a_bits](std::uint64_t& a, std::uint64_t& b) {
    if (*state >= total) return false;
    a = *state & amask;
    b = *state >> a_bits;
    ++*state;
    return true;
  };
}

PairSource uniform_source(unsigned a_bits, unsigned b_bits, std::uint64_t n, std::uint64_t seed) {
  auto rng = std::make_shared<Xoshiro256>(seed);
  auto remaining = std::make_shared<std::uint64_t>(n);
  const std::uint64_t amask = low_mask(a_bits);
  const std::uint64_t bmask = low_mask(b_bits);
  return [rng, remaining, amask, bmask](std::uint64_t& a, std::uint64_t& b) {
    if (*remaining == 0) return false;
    --*remaining;
    a = (*rng)() & amask;
    b = (*rng)() & bmask;
    return true;
  };
}

PairSource gaussian_source(unsigned a_bits, unsigned b_bits, std::uint64_t n, double mean,
                           double sigma, std::uint64_t seed) {
  auto rng = std::make_shared<Xoshiro256>(seed);
  auto remaining = std::make_shared<std::uint64_t>(n);
  const double amax = static_cast<double>(low_mask(a_bits));
  const double bmax = static_cast<double>(low_mask(b_bits));
  return [rng, remaining, mean, sigma, amax, bmax](std::uint64_t& a, std::uint64_t& b) {
    if (*remaining == 0) return false;
    --*remaining;
    auto draw = [&](double maxv) {
      // Shared Box-Muller draw, clipped to the operand range.
      const double v = mean + sigma * gaussian01(*rng);
      return static_cast<std::uint64_t>(std::llround(std::min(std::max(v, 0.0), maxv)));
    };
    a = draw(amax);
    b = draw(bmax);
    return true;
  };
}

PairSource trace_source(const std::vector<std::pair<std::uint64_t, std::uint64_t>>& trace) {
  auto idx = std::make_shared<std::size_t>(0);
  // Copy so the source owns its data (traces are modest in size).
  auto data = std::make_shared<std::vector<std::pair<std::uint64_t, std::uint64_t>>>(trace);
  return [idx, data](std::uint64_t& a, std::uint64_t& b) {
    if (*idx >= data->size()) return false;
    a = (*data)[*idx].first;
    b = (*data)[*idx].second;
    ++*idx;
    return true;
  };
}

PairSource swapped_source(PairSource inner) {
  auto src = std::make_shared<PairSource>(std::move(inner));
  return [src](std::uint64_t& a, std::uint64_t& b) {
    if (!(*src)(b, a)) return false;
    return true;
  };
}

ErrorMetrics characterize_op(const BinaryFn& approx_fn, const BinaryFn& exact_fn,
                             PairSource source) {
  return characterize_batched(approx_fn, exact_fn, source);
}

ErrorMetrics characterize(const mult::Multiplier& m, PairSource source) {
  // Direct virtual dispatch per pair (no std::function hop for the model).
  return characterize_batched(
      [&m](std::uint64_t a, std::uint64_t b) { return m.multiply(a, b); },
      [](std::uint64_t a, std::uint64_t b) { return a * b; }, source);
}

ErrorMetrics characterize_exhaustive(const mult::Multiplier& m) {
  return characterize(m, exhaustive_source(m.a_bits(), m.b_bits()));
}

ErrorMetrics characterize_sampled(const mult::Multiplier& m, std::uint64_t n, std::uint64_t seed) {
  return characterize(m, uniform_source(m.a_bits(), m.b_bits(), n, seed));
}

std::vector<double> bit_error_probability(const mult::Multiplier& m, PairSource source) {
  const unsigned nbits = m.product_bits();
  std::vector<std::uint64_t> wrong(nbits, 0);
  std::uint64_t samples = 0;
  std::uint64_t av[kBatchPairs];
  std::uint64_t bv[kBatchPairs];
  for (;;) {
    const std::size_t n = fill_batch(source, av, bv, kBatchPairs);
    if (n == 0) break;
    samples += n;
    for (std::size_t k = 0; k < n; ++k) {
      const std::uint64_t diff = (av[k] * bv[k]) ^ m.multiply(av[k], bv[k]);
      if (diff == 0) continue;
      for (unsigned i = 0; i < nbits; ++i) {
        wrong[i] += bit(diff, i);
      }
    }
    if (n < kBatchPairs) break;
  }
  std::vector<double> prob(nbits, 0.0);
  if (samples) {
    for (unsigned i = 0; i < nbits; ++i) {
      prob[i] = static_cast<double>(wrong[i]) / static_cast<double>(samples);
    }
  }
  return prob;
}

std::map<std::uint64_t, std::uint64_t> error_pmf(const mult::Multiplier& m, PairSource source) {
  std::map<std::uint64_t, std::uint64_t> pmf;
  std::uint64_t av[kBatchPairs];
  std::uint64_t bv[kBatchPairs];
  for (;;) {
    const std::size_t n = fill_batch(source, av, bv, kBatchPairs);
    if (n == 0) break;
    for (std::size_t k = 0; k < n; ++k) {
      const std::uint64_t exact = av[k] * bv[k];
      const std::uint64_t approx = m.multiply(av[k], bv[k]);
      if (approx == exact) continue;
      const std::int64_t err =
          static_cast<std::int64_t>(approx) - static_cast<std::int64_t>(exact);
      ++pmf[static_cast<std::uint64_t>(std::llabs(err))];
    }
    if (n < kBatchPairs) break;
  }
  return pmf;
}

// ---- batched + multithreaded sweeps --------------------------------------

namespace {

/// Per-worker accumulator. Everything here is exact-integer arithmetic, so
/// merging workers in any order yields bit-identical results; the relative
/// error (the one float sum) is handled per chunk by the driver instead.
struct SweepAccum {
  std::uint64_t samples = 0;
  std::uint64_t occurrences = 0;
  std::uint64_t max_error = 0;
  std::uint64_t max_error_occurrences = 0;
  unsigned __int128 sum_abs = 0;   // <= 2^32 pairs * 2^32 error: needs 128 bits
  __int128 sum_signed = 0;
  std::vector<std::uint64_t> bit_wrong;  // empty when not collected
  // PMF storage: a flat |error| histogram when the product space is small
  // enough (<= 16 product bits bounds |error| < 2^16), sparse map above.
  // The flat vector turns the hot-loop map insert into one indexed add.
  std::vector<std::uint64_t> pmf_flat;
  std::map<std::uint64_t, std::uint64_t> pmf;
  bool collect_pmf = false;

  void init(const SweepConfig& cfg, unsigned product_bits) {
    if (cfg.collect_bit_probability) bit_wrong.assign(product_bits, 0);
    collect_pmf = cfg.collect_pmf;
    if (collect_pmf && product_bits <= 16) {
      pmf_flat.assign(std::size_t{1} << product_bits, 0);
    }
  }

  /// The mismatch bookkeeping shared by the scalar and packed paths
  /// (everything except the sample count and the per-bit stats).
  inline void add_mismatch(std::uint64_t exact, std::uint64_t approx, long double& rel_sum) {
    const std::int64_t signed_err =
        static_cast<std::int64_t>(approx) - static_cast<std::int64_t>(exact);
    const std::uint64_t mag = static_cast<std::uint64_t>(std::llabs(signed_err));
    ++occurrences;
    sum_abs += mag;
    sum_signed += signed_err;
    if (exact != 0) {
      rel_sum += static_cast<long double>(mag) / static_cast<long double>(exact);
    }
    if (mag > max_error) {
      max_error = mag;
      max_error_occurrences = 1;
    } else if (mag == max_error) {
      ++max_error_occurrences;
    }
    if (collect_pmf) {
      if (mag < pmf_flat.size()) {
        ++pmf_flat[mag];
      } else {
        ++pmf[mag];
      }
    }
  }

  inline void add(std::uint64_t exact, std::uint64_t approx, long double& rel_sum) {
    ++samples;
    if (approx == exact) return;
    add_mismatch(exact, approx, rel_sum);
    if (!bit_wrong.empty()) {
      const std::uint64_t diff = exact ^ approx;
      for (std::size_t i = 0; i < bit_wrong.size(); ++i) {
        bit_wrong[i] += bit(diff, static_cast<unsigned>(i));
      }
    }
  }

  /// One 64-lane block of lane-major products (approx[l] vs exact[l] for
  /// l < lanes). Per-bit error counts come from one 64x64 transpose of the
  /// XOR rows plus a popcount per plane instead of a bit loop per lane.
  inline void add_block(std::uint64_t* diff_rows, const std::uint64_t* approx,
                        const std::uint64_t* exact, unsigned lanes, long double& rel_sum) {
    samples += lanes;
    std::uint64_t any = 0;
    for (unsigned l = 0; l < lanes; ++l) any |= diff_rows[l];
    if (any == 0) return;
    for (unsigned l = 0; l < lanes; ++l) {
      if (diff_rows[l] != 0) add_mismatch(exact[l], approx[l], rel_sum);
    }
    if (!bit_wrong.empty()) {
      for (unsigned l = lanes; l < 64; ++l) diff_rows[l] = 0;
      fabric::transpose64(diff_rows);
      const std::size_t nb = std::min<std::size_t>(bit_wrong.size(), 64);
      for (std::size_t i = 0; i < nb; ++i) bit_wrong[i] += popcount(diff_rows[i]);
    }
  }

  void merge(const SweepAccum& o) {
    samples += o.samples;
    occurrences += o.occurrences;
    sum_abs += o.sum_abs;
    sum_signed += o.sum_signed;
    if (o.max_error > max_error) {
      max_error = o.max_error;
      max_error_occurrences = o.max_error_occurrences;
    } else if (o.max_error == max_error) {
      max_error_occurrences += o.max_error_occurrences;
    }
    for (std::size_t i = 0; i < bit_wrong.size(); ++i) bit_wrong[i] += o.bit_wrong[i];
    for (std::size_t m = 0; m < pmf_flat.size(); ++m) pmf_flat[m] += o.pmf_flat[m];
    for (const auto& [mag, count] : o.pmf) pmf[mag] += count;
  }
};

/// Sweep driver: shards `total_pairs` into fixed 64-aligned chunks, runs
/// `make_processor()` workers over them, and reduces deterministically.
/// A processor is a callable (SweepAccum&, long double& rel, begin, end).
template <typename MakeProcessor>
SweepResult run_sweep(std::uint64_t total_pairs, unsigned product_bits, const SweepConfig& cfg,
                      MakeProcessor&& make_processor) {
  const std::uint64_t chunk =
      std::max<std::uint64_t>(64, (cfg.chunk_pairs + 63) & ~std::uint64_t{63});
  const std::uint64_t num_chunks = total_pairs == 0 ? 0 : ceil_div(total_pairs, chunk);
  std::vector<long double> chunk_rel(num_chunks, 0.0L);
  std::vector<std::shared_ptr<SweepAccum>> partials;
  std::mutex partials_mutex;

  parallel_chunks(num_chunks, cfg.threads, [&] {
    auto accum = std::make_shared<SweepAccum>();
    accum->init(cfg, product_bits);
    {
      const std::lock_guard<std::mutex> lock(partials_mutex);
      partials.push_back(accum);
    }
    return [accum, processor = make_processor(), &chunk_rel, chunk,
            total_pairs](std::uint64_t c) mutable {
      const std::uint64_t begin = c * chunk;
      const std::uint64_t end = std::min(total_pairs, begin + chunk);
      processor(*accum, chunk_rel[c], begin, end);
    };
  });

  SweepAccum total;
  total.init(cfg, product_bits);
  // Worker merge order is registration order (nondeterministic) — safe,
  // because every merged quantity is exact-integer.
  for (const auto& p : partials) total.merge(*p);
  // The one floating-point reduction folds in chunk-index order.
  long double rel = 0.0L;
  for (const long double r : chunk_rel) rel += r;

  SweepResult result;
  result.metrics.samples = total.samples;
  result.metrics.occurrences = total.occurrences;
  result.metrics.max_error = total.max_error;
  result.metrics.max_error_occurrences = total.max_error_occurrences;
  if (total.samples > 0) {
    const long double n = static_cast<long double>(total.samples);
    result.metrics.avg_error = static_cast<double>(static_cast<long double>(total.sum_abs) / n);
    result.metrics.avg_relative_error = static_cast<double>(rel / n);
    result.metrics.mean_signed_error =
        static_cast<double>(static_cast<long double>(total.sum_signed) / n);
  }
  if (cfg.collect_bit_probability && total.samples > 0) {
    result.bit_error_probability.resize(product_bits);
    for (unsigned i = 0; i < product_bits; ++i) {
      result.bit_error_probability[i] =
          static_cast<double>(total.bit_wrong[i]) / static_cast<double>(total.samples);
    }
  }
  result.pmf = std::move(total.pmf);
  for (std::size_t mag = 0; mag < total.pmf_flat.size(); ++mag) {
    if (total.pmf_flat[mag] != 0) result.pmf[mag] += total.pmf_flat[mag];
  }
  return result;
}

}  // namespace

SweepResult sweep_exhaustive(const mult::Multiplier& m, const SweepConfig& cfg) {
  const unsigned a_bits = m.a_bits();
  const std::uint64_t amask = low_mask(a_bits);
  const std::uint64_t total = std::uint64_t{1} << (a_bits + m.b_bits());
  return run_sweep(total, m.product_bits(), cfg, [&m, a_bits, amask] {
    return [&m, a_bits, amask](SweepAccum& acc, long double& rel, std::uint64_t begin,
                               std::uint64_t end) {
      for (std::uint64_t idx = begin; idx < end; ++idx) {
        const std::uint64_t a = idx & amask;
        const std::uint64_t b = idx >> a_bits;
        acc.add(a * b, m.multiply(a, b), rel);
      }
    };
  });
}

namespace {

/// Wide-lane netlist sweep worker: one WideEvaluator<W> per thread, windows
/// of 64*W consecutive operand indices per eval. Chunks are 64-aligned, so
/// the packed index planes need no transpose: bit-plane k of each 64-lane
/// word is a fixed lane pattern below bit 6 and a broadcast of that word's
/// base above it. Per-64-lane words are consumed in stream order, so the
/// relative-error fold is bit-identical for every W.
template <unsigned W>
SweepResult sweep_netlist_wide(const fabric::Netlist& nl, unsigned a_bits, unsigned nbits,
                               std::uint64_t amask, std::uint64_t total, const SweepConfig& cfg) {
  return run_sweep(total, nbits, cfg, [&nl, a_bits, nbits, amask] {
    auto ev = std::make_shared<fabric::WideEvaluator<W>>(nl);
    return [ev, a_bits, nbits, amask](SweepAccum& acc, long double& rel, std::uint64_t begin,
                                      std::uint64_t end) mutable {
      std::vector<std::uint64_t> in(std::size_t{nbits} * W);
      for (std::uint64_t base0 = begin; base0 < end; base0 += 64 * W) {
        for (unsigned w = 0; w < W; ++w) {
          const std::uint64_t wb = base0 + std::uint64_t{w} * 64;
          for (unsigned k = 0; k < nbits; ++k) {
            in[std::size_t{k} * W + w] =
                k < 6 ? fabric::kLanePattern[k]
                      : (bit(wb, k) ? ~std::uint64_t{0} : std::uint64_t{0});
          }
        }
        const auto& out = ev->eval(in);
        const std::size_t n_out = out.size() / W;
        const std::uint64_t span = std::min<std::uint64_t>(64 * W, end - base0);
        for (unsigned w = 0; w * 64 < span; ++w) {
          const std::uint64_t base = base0 + std::uint64_t{w} * 64;
          const unsigned lanes =
              static_cast<unsigned>(std::min<std::uint64_t>(64, span - std::uint64_t{w} * 64));
          // Transpose the output bit-planes into lane-major product words:
          // afterwards row l is the full approximate product of lane l.
          std::uint64_t approx[64] = {};
          for (std::size_t i = 0; i < n_out && i < 64; ++i) approx[i] = out[i * W + w];
          fabric::transpose64(approx);
          std::uint64_t exact[64];
          std::uint64_t diff[64];
          for (unsigned l = 0; l < lanes; ++l) {
            const std::uint64_t idx = base + l;
            const std::uint64_t a = idx & amask;
            exact[l] = a * (idx >> a_bits);
            diff[l] = approx[l] ^ exact[l];
          }
          acc.add_block(diff, approx, exact, lanes, rel);
        }
      }
    };
  });
}

}  // namespace

SweepResult sweep_netlist_exhaustive(const fabric::Netlist& nl, unsigned a_bits, unsigned b_bits,
                                     const SweepConfig& cfg) {
  const unsigned nbits = a_bits + b_bits;
  if (nl.inputs().size() != nbits) {
    throw std::invalid_argument("sweep_netlist_exhaustive: input width mismatch");
  }
  const std::uint64_t amask = low_mask(a_bits);
  const std::uint64_t total = std::uint64_t{1} << nbits;
  // Widest profitable lane count for the pair budget; every width produces
  // identical results (the windows only batch evaluation).
  if (total >= 512) return sweep_netlist_wide<8>(nl, a_bits, nbits, amask, total, cfg);
  if (total >= 128) return sweep_netlist_wide<2>(nl, a_bits, nbits, amask, total, cfg);
  return sweep_netlist_wide<1>(nl, a_bits, nbits, amask, total, cfg);
}

SweepResult sweep_sampled(const mult::Multiplier& m, std::uint64_t n, std::uint64_t seed,
                          const SweepConfig& cfg) {
  const std::uint64_t amask = low_mask(m.a_bits());
  const std::uint64_t bmask = low_mask(m.b_bits());
  return run_sweep(n, m.product_bits(), cfg, [&m, amask, bmask, seed] {
    return [&m, amask, bmask, seed](SweepAccum& acc, long double& rel, std::uint64_t begin,
                                    std::uint64_t end) {
      // Chunk-local stream: the sample set depends on (seed, chunk_pairs)
      // but not on which thread drew it.
      Xoshiro256 rng(derive_stream_seed(seed, begin));
      for (std::uint64_t i = begin; i < end; ++i) {
        const std::uint64_t a = rng() & amask;
        const std::uint64_t b = rng() & bmask;
        acc.add(a * b, m.multiply(a, b), rel);
      }
    };
  });
}

std::vector<ErrorCase> collect_error_cases(const mult::Multiplier& m, PairSource source,
                                           std::size_t limit) {
  std::vector<ErrorCase> cases;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  while (source(a, b) && cases.size() < limit) {
    const std::uint64_t exact = a * b;
    const std::uint64_t approx = m.multiply(a, b);
    if (approx != exact) cases.push_back({a, b, exact, approx});
  }
  return cases;
}

}  // namespace axmult::error
