#include "error/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>

#include "common/bits.hpp"
#include "common/rng.hpp"

namespace axmult::error {

PairSource exhaustive_source(unsigned a_bits, unsigned b_bits) {
  auto state = std::make_shared<std::uint64_t>(0);
  const std::uint64_t total = std::uint64_t{1} << (a_bits + b_bits);
  const std::uint64_t amask = low_mask(a_bits);
  return [state, total, amask, a_bits](std::uint64_t& a, std::uint64_t& b) {
    if (*state >= total) return false;
    a = *state & amask;
    b = *state >> a_bits;
    ++*state;
    return true;
  };
}

PairSource uniform_source(unsigned a_bits, unsigned b_bits, std::uint64_t n, std::uint64_t seed) {
  auto rng = std::make_shared<Xoshiro256>(seed);
  auto remaining = std::make_shared<std::uint64_t>(n);
  const std::uint64_t amask = low_mask(a_bits);
  const std::uint64_t bmask = low_mask(b_bits);
  return [rng, remaining, amask, bmask](std::uint64_t& a, std::uint64_t& b) {
    if (*remaining == 0) return false;
    --*remaining;
    a = (*rng)() & amask;
    b = (*rng)() & bmask;
    return true;
  };
}

PairSource gaussian_source(unsigned a_bits, unsigned b_bits, std::uint64_t n, double mean,
                           double sigma, std::uint64_t seed) {
  auto rng = std::make_shared<Xoshiro256>(seed);
  auto remaining = std::make_shared<std::uint64_t>(n);
  const double amax = static_cast<double>(low_mask(a_bits));
  const double bmax = static_cast<double>(low_mask(b_bits));
  return [rng, remaining, mean, sigma, amax, bmax](std::uint64_t& a, std::uint64_t& b) {
    if (*remaining == 0) return false;
    --*remaining;
    auto draw = [&](double maxv) {
      // Box-Muller, clipped to the operand range.
      const double u1 = std::max(rng->uniform01(), 1e-12);
      const double u2 = rng->uniform01();
      const double g = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
      const double v = mean + sigma * g;
      return static_cast<std::uint64_t>(std::llround(std::min(std::max(v, 0.0), maxv)));
    };
    a = draw(amax);
    b = draw(bmax);
    return true;
  };
}

PairSource trace_source(const std::vector<std::pair<std::uint64_t, std::uint64_t>>& trace) {
  auto idx = std::make_shared<std::size_t>(0);
  // Copy so the source owns its data (traces are modest in size).
  auto data = std::make_shared<std::vector<std::pair<std::uint64_t, std::uint64_t>>>(trace);
  return [idx, data](std::uint64_t& a, std::uint64_t& b) {
    if (*idx >= data->size()) return false;
    a = (*data)[*idx].first;
    b = (*data)[*idx].second;
    ++*idx;
    return true;
  };
}

ErrorMetrics characterize_op(const BinaryFn& approx_fn, const BinaryFn& exact_fn,
                             PairSource source) {
  ErrorMetrics r;
  long double sum_abs = 0.0L;
  long double sum_rel = 0.0L;
  long double sum_signed = 0.0L;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  while (source(a, b)) {
    ++r.samples;
    const std::uint64_t exact = exact_fn(a, b);
    const std::uint64_t approx = approx_fn(a, b);
    if (approx == exact) continue;
    const std::int64_t signed_err =
        static_cast<std::int64_t>(approx) - static_cast<std::int64_t>(exact);
    const std::uint64_t mag = static_cast<std::uint64_t>(std::llabs(signed_err));
    ++r.occurrences;
    sum_abs += static_cast<long double>(mag);
    sum_signed += static_cast<long double>(signed_err);
    if (exact != 0) sum_rel += static_cast<long double>(mag) / static_cast<long double>(exact);
    if (mag > r.max_error) {
      r.max_error = mag;
      r.max_error_occurrences = 1;
    } else if (mag == r.max_error) {
      ++r.max_error_occurrences;
    }
  }
  if (r.samples > 0) {
    r.avg_error = static_cast<double>(sum_abs / static_cast<long double>(r.samples));
    r.avg_relative_error = static_cast<double>(sum_rel / static_cast<long double>(r.samples));
    r.mean_signed_error = static_cast<double>(sum_signed / static_cast<long double>(r.samples));
  }
  return r;
}

ErrorMetrics characterize(const mult::Multiplier& m, PairSource source) {
  return characterize_op([&m](std::uint64_t a, std::uint64_t b) { return m.multiply(a, b); },
                         [](std::uint64_t a, std::uint64_t b) { return a * b; },
                         std::move(source));
}

ErrorMetrics characterize_exhaustive(const mult::Multiplier& m) {
  return characterize(m, exhaustive_source(m.a_bits(), m.b_bits()));
}

ErrorMetrics characterize_sampled(const mult::Multiplier& m, std::uint64_t n, std::uint64_t seed) {
  return characterize(m, uniform_source(m.a_bits(), m.b_bits(), n, seed));
}

std::vector<double> bit_error_probability(const mult::Multiplier& m, PairSource source) {
  const unsigned nbits = m.product_bits();
  std::vector<std::uint64_t> wrong(nbits, 0);
  std::uint64_t samples = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  while (source(a, b)) {
    ++samples;
    const std::uint64_t diff = (a * b) ^ m.multiply(a, b);
    if (diff == 0) continue;
    for (unsigned i = 0; i < nbits; ++i) {
      wrong[i] += bit(diff, i);
    }
  }
  std::vector<double> prob(nbits, 0.0);
  if (samples) {
    for (unsigned i = 0; i < nbits; ++i) {
      prob[i] = static_cast<double>(wrong[i]) / static_cast<double>(samples);
    }
  }
  return prob;
}

std::map<std::uint64_t, std::uint64_t> error_pmf(const mult::Multiplier& m, PairSource source) {
  std::map<std::uint64_t, std::uint64_t> pmf;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  while (source(a, b)) {
    const std::uint64_t exact = a * b;
    const std::uint64_t approx = m.multiply(a, b);
    if (approx == exact) continue;
    const std::int64_t err =
        static_cast<std::int64_t>(approx) - static_cast<std::int64_t>(exact);
    ++pmf[static_cast<std::uint64_t>(std::llabs(err))];
  }
  return pmf;
}

std::vector<ErrorCase> collect_error_cases(const mult::Multiplier& m, PairSource source,
                                           std::size_t limit) {
  std::vector<ErrorCase> cases;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  while (source(a, b) && cases.size() < limit) {
    const std::uint64_t exact = a * b;
    const std::uint64_t approx = m.multiply(a, b);
    if (approx != exact) cases.push_back({a, b, exact, approx});
  }
  return cases;
}

}  // namespace axmult::error
