#include "error/analytic.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <map>
#include <utility>

#include "common/bits.hpp"

namespace axmult::error {
namespace {

using u128 = unsigned __int128;
using i128 = __int128;

void set_why(std::string* why, const char* reason) {
  if (why) *why = reason;
}

/// Behavioral evaluation of the composition tree — a verbatim transcription
/// of mult::RecursiveMultiplier::rec (recursive.cpp) over the spec's leaf
/// table, plus the catalog's top-level perforation (dropped quadrants feed
/// zero into an accurate summation, exactly the Perf(8,...) semantics).
std::uint64_t eval_tree(const AnalyticSpec& s, std::uint64_t a, std::uint64_t b, unsigned w,
                        unsigned level) {
  if (w == s.leaf_bits) return s.leaf[a | (b << s.leaf_bits)];
  const mult::Summation summation = s.levels[level];
  const unsigned m = w / 2;
  const std::uint64_t al = a & low_mask(m);
  const std::uint64_t ah = a >> m;
  const std::uint64_t bl = b & low_mask(m);
  const std::uint64_t bh = b >> m;
  const bool top = level == 0;
  const std::uint64_t pp0 = eval_tree(s, al, bl, m, level + 1);
  const std::uint64_t pp1 = (top && s.drop_hl) ? 0 : eval_tree(s, ah, bl, m, level + 1);
  const std::uint64_t pp2 = (top && s.drop_lh) ? 0 : eval_tree(s, al, bh, m, level + 1);
  const std::uint64_t pp3 = eval_tree(s, ah, bh, m, level + 1);

  if (summation == mult::Summation::kAccurate) {
    // The netlist sums columns m..4m-1 on a 3m-bit ternary chain whose
    // carry out of the top column has no bus to land on — a no-op for
    // every under-approximating design (the sum is bounded by the exact
    // product), but the hardware truth when a perturbed leaf overshoots.
    const std::uint64_t x = (pp0 >> m) + (pp3 << m);
    return (pp0 & low_mask(m)) | (((x + pp1 + pp2) & low_mask(3 * m)) << m);
  }

  if (summation == mult::Summation::kLowerOr) {
    const unsigned L = std::min(s.lower_or_bits, 2 * m);
    const std::uint64_t x = (pp0 >> m) + (pp3 << m);
    std::uint64_t mid = 0;
    for (unsigned c = 0; c < L; ++c) {
      mid |= (bit(x, c) | bit(pp1, c) | bit(pp2, c)) << c;
    }
    const std::uint64_t hi = ((x >> L) + (pp1 >> L) + (pp2 >> L)) << L;
    return (pp0 & low_mask(m)) | (((mid | hi) & low_mask(3 * m)) << m);
  }

  std::uint64_t result = (pp0 & low_mask(m)) | ((pp3 >> m) << (3 * m));
  for (unsigned i = m; i < 3 * m; ++i) {
    std::uint64_t col = bit(pp0, i) ^ bit(pp1, i - m) ^ bit(pp2, i - m);
    if (i >= 2 * m) col ^= bit(pp3, i - 2 * m);
    result |= col << i;
  }
  return result;
}

/// Fills the exact-count fields of an AnalyticMetrics from integer
/// accumulators, using the sweep's exact finalization expressions so the
/// resulting doubles are bit-identical given identical integers/fold.
void finalize_exact(AnalyticMetrics& out, std::uint64_t samples, u128 sum_abs, i128 sum_signed,
                    long double rel, std::uint64_t occurrences, std::uint64_t max_error,
                    std::uint64_t max_error_occurrences) {
  ErrorMetrics& m = out.metrics;
  m.samples = samples;
  m.occurrences = occurrences;
  m.max_error = max_error;
  m.max_error_occurrences = max_error_occurrences;
  const long double n = static_cast<long double>(samples);
  m.avg_error = static_cast<double>(static_cast<long double>(sum_abs) / n);
  m.avg_relative_error = static_cast<double>(rel / n);
  m.mean_signed_error = static_cast<double>(static_cast<long double>(sum_signed) / n);
  out.exact_counts = true;
  out.wide = false;
  out.error_probability = m.error_probability();
  out.samples_ld = n;
  out.occurrences_ld = static_cast<long double>(occurrences);
  out.max_error_ld = static_cast<long double>(max_error);
  out.max_error_occurrences_ld = static_cast<long double>(max_error_occurrences);
}

/// value -> occurrence-count compression of a 256-entry table.
std::vector<std::pair<std::int64_t, std::uint32_t>> compress256(const std::int64_t* tbl) {
  std::array<std::int64_t, 256> v;
  std::copy(tbl, tbl + 256, v.begin());
  std::sort(v.begin(), v.end());
  std::vector<std::pair<std::int64_t, std::uint32_t>> out;
  for (std::size_t i = 0; i < v.size();) {
    std::size_t j = i;
    while (j < v.size() && v[j] == v[i]) ++j;
    out.emplace_back(v[i], static_cast<std::uint32_t>(j - i));
    i = j;
  }
  return out;
}

/// Stable psi-difference helpers for large arguments (u >= ~4096): every
/// quantity is a *difference* of asymptotic-series terms, computed without
/// the catastrophic cancellation a lgammal(u+L) - lgammal(u) evaluation
/// would suffer at u ~ 2^60.
long double psi_diff_large(long double u, long double L) {
  const long double iu = 1.0L / u, iv = 1.0L / (u + L);
  const long double iu2 = iu * iu, iv2 = iv * iv;
  return log1pl(L * iu) + 0.5L * (iu - iv) + (1.0L / 12.0L) * (iu2 - iv2) -
         (1.0L / 120.0L) * (iu2 * iu2 - iv2 * iv2);
}

long double psi1_diff_large(long double u, long double L) {
  const long double iu = 1.0L / u, iv = 1.0L / (u + L);
  const long double iu2 = iu * iu, iv2 = iv * iv;
  const long double iu3 = iu2 * iu, iv3 = iv2 * iv;
  return (iv - iu) + 0.5L * (iv2 - iu2) + (1.0L / 6.0L) * (iv3 - iu3) -
         (1.0L / 30.0L) * (iv3 * iv2 - iu3 * iu2);
}

long double psi3_diff_large(long double u, long double L) {
  const long double iu = 1.0L / u, iv = 1.0L / (u + L);
  const long double iu2 = iu * iu, iv2 = iv * iv;
  const long double iu3 = iu2 * iu, iv3 = iv2 * iv;
  return 2.0L * (iv3 - iu3) + 3.0L * (iv2 * iv2 - iu2 * iu2) + 2.0L * (iv3 * iv2 - iu3 * iu2);
}

/// Integral of psi(u+L)-psi(u) over u in [ua, ub], same stable-difference
/// treatment (each grouped term is O(L * ln) rather than O(u * ln u), so
/// after the caller divides by the stride s >= L the rounding error is
/// ~ulp-level).
long double int_psi_diff(long double ua, long double ub, long double L) {
  const long double t_log = ub * log1pl(L / ub) - ua * log1pl(L / ua) +
                            L * logl((ub + L) / (ua + L));
  const long double t_half = -0.5L * (log1pl(L / ub) - log1pl(L / ua));
  const long double t_12 =
      -(1.0L / 12.0L) * L * (1.0L / (ub * (ub + L)) - 1.0L / (ua * (ua + L)));
  const long double ia3 = 1.0L / (ua * ua * ua), ib3 = 1.0L / (ub * ub * ub);
  const long double ja3 = 1.0L / ((ua + L) * (ua + L) * (ua + L));
  const long double jb3 = 1.0L / ((ub + L) * (ub + L) * (ub + L));
  const long double t_360 = (1.0L / 360.0L) * ((ib3 - jb3) - (ia3 - ja3));
  return t_log + t_half + t_12 + t_360;
}

/// Overflow-audited u128 helpers for the bipartite counting DPs.
struct ChainCount {
  bool exact = true;
  u128 value = 0;
  long double value_ld = 0.0L;
};

/// Sum over all b-tuples (n slices, K values each) of |intersection of
/// mask[b_j]| ^ n — the number of (a-tuple, b-tuple) pairs whose every
/// slice pair (i, j) lands in the marked set. Exactly the count of inputs
/// where all n^2 bilinear error terms sit at a designated leaf value.
ChainCount count_mask_chains(const std::vector<std::uint32_t>& mask, unsigned n, unsigned K) {
  std::map<std::uint32_t, u128> cur;
  cur[low_mask(K)] = 1;
  for (unsigned step = 0; step < n; ++step) {
    std::map<std::uint32_t, u128> next;
    for (const auto& [m, c] : cur) {
      for (unsigned y = 0; y < K; ++y) next[m & mask[y]] += c;
    }
    cur.swap(next);
  }
  ChainCount out;
  for (const auto& [m, c] : cur) {
    const unsigned pc = popcount(m);
    out.value_ld += static_cast<long double>(c) *
                    powl(static_cast<long double>(pc), static_cast<long double>(n));
    u128 p = 1;
    bool ok = true;
    for (unsigned i = 0; i < n && ok; ++i) ok = !__builtin_mul_overflow(p, (u128)pc, &p);
    u128 term = 0;
    ok = ok && !__builtin_mul_overflow(c, p, &term);
    ok = ok && !__builtin_add_overflow(out.value, term, &out.value);
    if (!ok) out.exact = false;
  }
  return out;
}

std::uint64_t saturate_u64(u128 v, bool exact) {
  if (!exact || v > static_cast<u128>(UINT64_MAX)) return UINT64_MAX;
  return static_cast<std::uint64_t>(v);
}

}  // namespace

std::vector<std::uint32_t> make_leaf_table(
    unsigned a_bits, unsigned b_bits,
    const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>& fn) {
  std::vector<std::uint32_t> table(std::size_t{1} << (a_bits + b_bits));
  for (std::uint64_t b = 0; b < (std::uint64_t{1} << b_bits); ++b) {
    for (std::uint64_t a = 0; a < (std::uint64_t{1} << a_bits); ++a) {
      table[a | (b << a_bits)] = static_cast<std::uint32_t>(fn(a, b));
    }
  }
  return table;
}

std::string analytic_unsupported(const AnalyticSpec& s) {
  if (s.leaf_bits == 0 || s.leaf_bits > 8 || !is_pow2(s.leaf_bits)) {
    return "leaf width must be a power of two in [1, 8]";
  }
  if (!is_pow2(s.width) || s.width < s.leaf_bits) {
    return "width must be a power of two >= the leaf width";
  }
  if (s.width > 64) return "width above 64 bits";
  if (s.leaf_b_bits) {
    if (s.width != s.leaf_bits) return "rectangular leaves are leaf-only";
    if (s.operand_swap) return "operand swap on a rectangular leaf";
    if (s.leaf_bits + s.leaf_b_bits > 16) return "rectangular leaf too wide to enumerate";
  }
  const unsigned lb = s.leaf_b_bits ? s.leaf_b_bits : s.leaf_bits;
  if (s.leaf.size() != (std::size_t{1} << (s.leaf_bits + lb))) {
    return "leaf table size does not match the leaf width";
  }
  for (const std::uint32_t v : s.leaf) {
    if (v >> (s.leaf_bits + lb)) return "leaf product exceeds its output bus";
  }
  unsigned depth = 0;
  for (unsigned w = s.width; w > s.leaf_bits; w /= 2) ++depth;
  if (s.levels.size() != depth) return "level schedule length does not match the width";
  if ((s.drop_hl || s.drop_lh) &&
      (depth == 0 || s.levels[0] != mult::Summation::kAccurate)) {
    return "perforation is only modeled under an accurate top-level summation";
  }
  if (s.a_bits() + s.b_bits() <= 16) return "";  // cross enumerates anything
  if (s.width == 16) {
    if (s.levels[0] != mult::Summation::kAccurate) {
      return "approximate top-level summation at width 16 (error columns couple the A and B "
             "halves; no exact factorization)";
    }
    if (s.op_trunc_lsbs) return "operand truncation at width 16";
    if (s.drop_hl || s.drop_lh) return "perforation at width 16";
    if (s.trunc_lsbs > s.width / 2) return "truncation beyond the half width at width 16";
    return "";
  }
  for (const mult::Summation l : s.levels) {
    if (l != mult::Summation::kAccurate) {
      return "approximate summation at width >= 32 (the bipartite strategy needs accurate "
             "summation at every level)";
    }
  }
  if (s.trunc_lsbs || s.op_trunc_lsbs) return "truncation at width >= 32";
  if (s.drop_hl || s.drop_lh) return "perforation at width >= 32";
  return "";
}

namespace analytic_detail {

long double digamma(long double x) {
  long double r = 0.0L;
  while (x < 24.0L) {
    r -= 1.0L / x;
    x += 1.0L;
  }
  const long double inv = 1.0L / x;
  const long double t = inv * inv;
  const long double series =
      t * (1.0L / 12.0L -
           t * (1.0L / 120.0L -
                t * (1.0L / 252.0L -
                     t * (1.0L / 240.0L - t * (1.0L / 132.0L - t * (691.0L / 32760.0L))))));
  return r + logl(x) - 0.5L * inv - series;
}

long double trigamma(long double x) {
  long double r = 0.0L;
  while (x < 24.0L) {
    r += 1.0L / (x * x);
    x += 1.0L;
  }
  const long double inv = 1.0L / x;
  const long double t = inv * inv;
  const long double series =
      inv * t *
      (1.0L / 6.0L - t * (1.0L / 30.0L - t * (1.0L / 42.0L - t * (1.0L / 30.0L))));
  return r + inv + 0.5L * t + series;
}

long double harmonic_block_sum(long double c, long double s, long double L, std::uint64_t h0,
                               std::uint64_t N, std::uint64_t em_head) {
  if (N <= h0) return 0.0L;
  const std::uint64_t count = N - h0;
  std::uint64_t direct = std::min<std::uint64_t>(count, std::max<std::uint64_t>(em_head, 1));
  // An Euler-Maclaurin tail under ~64 terms saves nothing; fold it in.
  if (count - direct <= 64) direct = count;
  long double total = 0.0L;
  for (std::uint64_t h = h0; h < h0 + direct; ++h) {
    const long double base = c + static_cast<long double>(h) * s;
    total += digamma(base + L) - digamma(base);
  }
  if (direct == count) return total;
  // Euler-Maclaurin over h in [a, b] (inclusive) for
  //   f(h) = psi(c + h*s + L) - psi(c + h*s):
  //   sum = int_a^b f + (f(a)+f(b))/2 + (1/12)(f'(b)-f'(a)) - (1/720)(f'''(b)-f'''(a))
  // The direct head guarantees the arguments are large enough (>= ~1024*s)
  // for the stable asymptotic difference forms and a negligible remainder.
  const long double a = static_cast<long double>(h0 + direct);
  const long double b = static_cast<long double>(N - 1);
  const long double ua = c + a * s, ub = c + b * s;
  const long double integral = int_psi_diff(ua, ub, L) / s;
  const long double fa = psi_diff_large(ua, L), fb = psi_diff_large(ub, L);
  const long double d1 = s * (psi1_diff_large(ub, L) - psi1_diff_large(ua, L));
  const long double d3 =
      s * s * s * (psi3_diff_large(ub, L) - psi3_diff_large(ua, L));
  total += integral + 0.5L * (fa + fb) + d1 / 12.0L - d3 / 720.0L;
  return total;
}

std::optional<AnalyticMetrics> analyze_cross(const AnalyticSpec& s, std::string* why) {
  (void)why;
  AnalyticMetrics out;
  out.method = "cross";
  const unsigned ab = s.a_bits(), bb = s.b_bits();
  const std::uint64_t na = std::uint64_t{1} << ab, nb = std::uint64_t{1} << bb;
  const std::uint64_t opmask = ~low_mask(s.op_trunc_lsbs);
  const std::uint64_t tmask = ~low_mask(s.trunc_lsbs);
  u128 sum_abs = 0;
  i128 sum_signed = 0;
  long double rel = 0.0L;
  std::uint64_t occurrences = 0, max_error = 0, max_occ = 0;
  // b-outer / a-inner is exactly the sweep's pair-index order (idx & amask
  // picks a), which makes the long-double relative-error fold — the one
  // non-associative accumulator — bit-identical to the exhaustive sweeps.
  for (std::uint64_t b = 0; b < nb; ++b) {
    for (std::uint64_t a = 0; a < na; ++a) {
      const std::uint64_t x = (s.operand_swap ? b : a) & opmask;
      const std::uint64_t y = (s.operand_swap ? a : b) & opmask;
      const std::uint64_t approx = eval_tree(s, x, y, s.width, 0) & tmask;
      const std::uint64_t exact = a * b;
      if (approx == exact) continue;
      const std::int64_t signed_err =
          static_cast<std::int64_t>(approx) - static_cast<std::int64_t>(exact);
      const std::uint64_t mag = static_cast<std::uint64_t>(std::llabs(signed_err));
      ++occurrences;
      sum_abs += mag;
      sum_signed += signed_err;
      if (exact != 0) {
        rel += static_cast<long double>(mag) / static_cast<long double>(exact);
      }
      if (mag > max_error) {
        max_error = mag;
        max_occ = 1;
      } else if (mag == max_error) {
        ++max_occ;
      }
      ++out.signed_pmf[signed_err];
      ++out.pmf[mag];
    }
  }
  finalize_exact(out, na * nb, sum_abs, sum_signed, rel, occurrences, max_error, max_occ);
  out.has_pmf = true;
  return out;
}

std::optional<AnalyticMetrics> analyze_factor(const AnalyticSpec& s, std::string* why) {
  AnalyticMetrics out;
  out.method = "factor";
  // 8x8 subnode: the schedule below the (accurate) top level.
  AnalyticSpec half = s;
  half.width = 8;
  half.levels.assign(s.levels.begin() + 1, s.levels.end());
  half.trunc_lsbs = half.op_trunc_lsbs = 0;
  half.operand_swap = half.drop_hl = half.drop_lh = false;
  const unsigned t = s.trunc_lsbs;  // <= 8, so P mod 2^t == PP0 mod 2^t

  // rowE[v*256+q] = subnode error e(v, q) with v as the A-slice;
  // rowP is the truncated-away product residue, only relevant when t > 0.
  std::vector<std::int32_t> rowE(256 * 256);
  std::vector<std::uint8_t> rowP(t ? 256 * 256 : 0);
  std::uint64_t maxV = 0;  // largest subnode product value
  for (std::uint32_t q = 0; q < 256; ++q) {
    for (std::uint32_t v = 0; v < 256; ++v) {
      const std::uint64_t p = eval_tree(half, v, q, 8, 0);
      maxV = std::max(maxV, p);
      rowE[std::size_t{v} * 256 + q] =
          static_cast<std::int32_t>(static_cast<std::int64_t>(p) -
                                    static_cast<std::int64_t>(v * q));
      if (t) rowP[std::size_t{v} * 256 + q] = static_cast<std::uint8_t>(p & low_mask(t));
    }
  }
  // Bus audit: the top-level ternary chain sums 24 columns and drops any
  // carry out of the top one. Subnode values are already netlist-faithful
  // (eval_tree masks each level), so the linear composition below is exact
  // iff x + pp1 + pp2 cannot wrap: x <= (maxV >> 8) + 256*maxV, the other
  // two operands <= maxV each. Under-approximating designs pass trivially.
  if ((maxV >> 8) + 258 * maxV > low_mask(24)) {
    set_why(why, "overshooting subnodes can wrap the top-level summation bus at width 16");
    return std::nullopt;
  }

  // Equivalence classes of slice values: two values are interchangeable
  // when their error rows (and truncation-residue rows) agree. Standard
  // leaves collapse 256 values into a handful of classes.
  std::vector<int> cls(256, -1);
  std::vector<std::uint32_t> repr;
  std::vector<std::uint64_t> cnt;
  for (std::uint32_t v = 0; v < 256; ++v) {
    for (std::size_t c = 0; c < repr.size(); ++c) {
      const std::size_t a0 = std::size_t{v} * 256, b0 = std::size_t{repr[c]} * 256;
      bool same = std::equal(rowE.begin() + a0, rowE.begin() + a0 + 256, rowE.begin() + b0);
      if (same && t) {
        same = std::equal(rowP.begin() + a0, rowP.begin() + a0 + 256, rowP.begin() + b0);
      }
      if (same) {
        cls[v] = static_cast<int>(c);
        ++cnt[c];
        break;
      }
    }
    if (cls[v] < 0) {
      cls[v] = static_cast<int>(repr.size());
      repr.push_back(v);
      cnt.push_back(1);
    }
  }
  const std::size_t C = repr.size();
  // The pair loop below costs sum |px|*|py| over C^2 class pairs. Standard
  // leaves collapse far below the budget (Ca_16 ~ 10^5 products, W_16 ~
  // 10^7); a carry-free subnode explodes past 10^9 and is cheaper to
  // sample, so the loop meters itself and aborts rather than degenerate.
  // The signed-error PMF is the one superlinear by-product: when it stops
  // fitting its entry cap the run keeps every scalar metric exact and just
  // reports has_pmf = false.
  const std::uint64_t kOpsBudget = std::uint64_t{1} << 27;
  const std::size_t kPmfCap = std::size_t{1} << 17;
  std::uint64_t ops = 0;
  bool pmf_ok = true;

  // Conditioned on (al, ah) — i.e. on the class pair — the total error
  // splits as E = X(bl) + Y(bh) with bl, bh independent:
  //   X(bl) = e(al,bl) + 2^8 e(ah,bl) - (P0(al,bl) mod 2^t)
  //   Y(bh) = 2^8 e(al,bh) + 2^16 e(ah,bh)
  // so the exact PMF per class pair is one tiny convolution.
  const auto fill_xy = [&](std::size_t ci, std::size_t cj, std::int64_t* X, std::int64_t* Y) {
    const std::int32_t* ei = &rowE[std::size_t{repr[ci]} * 256];
    const std::int32_t* ej = &rowE[std::size_t{repr[cj]} * 256];
    const std::uint8_t* pi = t ? &rowP[std::size_t{repr[ci]} * 256] : nullptr;
    for (unsigned q = 0; q < 256; ++q) {
      X[q] = static_cast<std::int64_t>(ei[q]) + 256 * static_cast<std::int64_t>(ej[q]) -
             (pi ? static_cast<std::int64_t>(pi[q]) : 0);
      Y[q] = 256 * static_cast<std::int64_t>(ei[q]) + 65536 * static_cast<std::int64_t>(ej[q]);
    }
  };

  u128 sum_abs = 0;
  i128 sum_signed = 0;
  std::uint64_t occurrences = 0, max_error = 0, max_occ = 0;
  std::int64_t minE = 0, maxE = 0;
  std::int64_t X[256], Y[256];
  for (std::size_t ci = 0; ci < C; ++ci) {
    for (std::size_t cj = 0; cj < C; ++cj) {
      const std::uint64_t wij = cnt[ci] * cnt[cj];
      fill_xy(ci, cj, X, Y);
      const auto px = compress256(X);
      const auto py = compress256(Y);
      ops += static_cast<std::uint64_t>(px.size()) * py.size();
      if (ops > kOpsBudget) {
        set_why(why, "leaf error structure too irregular at width 16 (the exact PMF "
                     "convolution would exceed its work budget; sampling is cheaper)");
        return std::nullopt;
      }
      for (const auto& [xv, xc] : px) {
        for (const auto& [yv, yc] : py) {
          const std::int64_t e = xv + yv;
          if (e == 0) continue;
          const std::uint64_t n =
              static_cast<std::uint64_t>(xc) * static_cast<std::uint64_t>(yc) * wij;
          const std::uint64_t mag = static_cast<std::uint64_t>(e < 0 ? -e : e);
          occurrences += n;
          sum_abs += static_cast<u128>(mag) * n;
          sum_signed += static_cast<i128>(e) * static_cast<i128>(n);
          if (mag > max_error) {
            max_error = mag;
            max_occ = n;
          } else if (mag == max_error) {
            max_occ += n;
          }
          if (pmf_ok) {
            out.signed_pmf[e] += n;
            if (out.signed_pmf.size() > kPmfCap) {
              pmf_ok = false;
              out.signed_pmf.clear();
            }
          }
          minE = std::min(minE, e);
          maxE = std::max(maxE, e);
        }
      }
    }
  }
  for (const auto& [e, n] : out.signed_pmf) {
    out.pmf[static_cast<std::uint64_t>(e < 0 ? -e : e)] += n;
  }

  // Exact MRE needs |X + Y| to split, i.e. a one-sided composition. All
  // catalog leaves err low and every Ca/Cc/Cb/truncation stage only drops
  // value, so this holds except for sign-flipping perturbed leaves.
  if (minE < 0 && maxE > 0) {
    set_why(why, "two-sided error distribution at width 16 (exact MRE needs a one-sided "
                 "composition)");
    return std::nullopt;
  }
  const long double se = (minE < 0) ? -1.0L : 1.0L;
  // hB[bl] = sum over bh of 1/B, gB[bh] = sum over bl of 1/B  (B != 0), so
  //   sum_{B!=0} (X(bl)+Y(bh))/B = sum_bl X*hB + sum_bh Y*gB.
  std::vector<long double> hB(256, 0.0L), gB(256, 0.0L);
  for (std::uint32_t blv = 0; blv < 256; ++blv) {
    for (std::uint32_t bhv = 0; bhv < 256; ++bhv) {
      const std::uint32_t B = blv | (bhv << 8);
      if (B == 0) continue;
      const long double invB = 1.0L / static_cast<long double>(B);
      hB[blv] += invB;
      gB[bhv] += invB;
    }
  }
  // invA[ci*C+cj] = sum of 1/A over nonzero A whose slices fall in (ci, cj).
  std::vector<long double> invA(C * C, 0.0L);
  for (std::uint32_t ahv = 0; ahv < 256; ++ahv) {
    for (std::uint32_t alv = 0; alv < 256; ++alv) {
      const std::uint32_t A = alv | (ahv << 8);
      if (A == 0) continue;
      invA[static_cast<std::size_t>(cls[alv]) * C + static_cast<std::size_t>(cls[ahv])] +=
          1.0L / static_cast<long double>(A);
    }
  }
  long double mre_sum = 0.0L;
  for (std::size_t ci = 0; ci < C; ++ci) {
    for (std::size_t cj = 0; cj < C; ++cj) {
      fill_xy(ci, cj, X, Y);
      long double sigma = 0.0L;
      for (unsigned q = 0; q < 256; ++q) {
        sigma += se * static_cast<long double>(X[q]) * hB[q];
        sigma += se * static_cast<long double>(Y[q]) * gB[q];
      }
      mre_sum += invA[ci * C + cj] * sigma;
    }
  }

  const std::uint64_t samples = std::uint64_t{1} << 32;
  finalize_exact(out, samples, sum_abs, sum_signed, 0.0L, occurrences, max_error, max_occ);
  out.metrics.avg_relative_error =
      static_cast<double>(mre_sum / static_cast<long double>(samples));
  out.has_pmf = pmf_ok;
  return out;
}

std::optional<AnalyticMetrics> analyze_bipartite(const AnalyticSpec& s, std::string* why) {
  AnalyticMetrics out;
  out.method = "bipartite";
  const unsigned k = s.leaf_bits, w = s.width, K = 1u << k, n = w / k;
  const unsigned pb = 2 * w;
  const long double samples_ld = ldexpl(1.0L, static_cast<int>(pb));
  out.samples_ld = samples_ld;

  // Leaf error table D(x, y) = leaf(x, y) - x*y. With accurate summation at
  // every level the total error is the bilinear form
  //   E(A, B) = sum_{i,j} 2^{k(i+j)} D(a_i, b_j).
  std::vector<std::int64_t> D(std::size_t{K} * K);
  std::int64_t minD = INT64_MAX, maxD = INT64_MIN, sumD = 0;
  for (std::uint32_t y = 0; y < K; ++y) {
    for (std::uint32_t x = 0; x < K; ++x) {
      const std::int64_t d = static_cast<std::int64_t>(s.leaf[x | (y << k)]) -
                             static_cast<std::int64_t>(x * y);
      D[std::size_t{y} * K + x] = d;
      minD = std::min(minD, d);
      maxD = std::max(maxD, d);
      sumD += d;
    }
  }

  const bool small = w <= 16;  // counts fit uint64 comfortably
  if (minD == 0 && maxD == 0) {
    out.exact_counts = small;
    out.wide = !small;
    out.metrics.samples = small ? (std::uint64_t{1} << pb) : UINT64_MAX;
    out.has_pmf = true;  // the (empty) PMF is exact: no errors at all
    return out;
  }
  if (minD < 0 && maxD > 0) {
    set_why(why, "two-sided leaf error table (the bipartite strategy needs a one-sided leaf)");
    return std::nullopt;
  }
  const bool nonpos = minD < 0;
  if (!nonpos) {
    // Overshooting leaves can wrap the fixed 2W-bit summation buses the
    // netlist provides at every recursion width W; the bilinear error form
    // is only exact when the max possible subtree value fits each of them.
    std::uint32_t maxV = 0;
    for (const std::uint32_t v : s.leaf) maxV = std::max(maxV, v);
    for (unsigned W = 2 * k; W <= w; W *= 2) {
      const u128 S1 = ((static_cast<u128>(1) << W) - 1) / (K - 1);
      u128 v = 0;
      const bool ok = !__builtin_mul_overflow(static_cast<u128>(maxV), S1, &v) &&
                      !__builtin_mul_overflow(v, S1, &v);
      if (!ok || (2 * W < 128 && v > (static_cast<u128>(1) << (2 * W)) - 1)) {
        set_why(why, "overshooting leaf can wrap a summation bus (no exact bilinear form)");
        return std::nullopt;
      }
    }
  }
  const std::int64_t extD = nonpos ? minD : maxD;
  const std::uint64_t extMag = static_cast<std::uint64_t>(nonpos ? -minD : maxD);

  // S2 = sum_i 2^{ki} = (2^w - 1) / (2^k - 1); max |E| = |extD| * S2^2,
  // achieved by constant slice tuples, valid even for two-sided tables.
  const u128 S2 = (((static_cast<u128>(1) << w) - 1)) / (K - 1);
  const long double S2_ld = static_cast<long double>(S2);
  u128 maxe128 = 0;
  bool maxe_exact = !__builtin_mul_overflow(static_cast<u128>(extMag), S2, &maxe128) &&
                    !__builtin_mul_overflow(maxe128, S2, &maxe128);
  out.max_error_ld = static_cast<long double>(extMag) * S2_ld * S2_ld;

  // Count DPs over slice-value masks.
  std::vector<std::uint32_t> maskZ(K, 0), maskM(K, 0);
  for (std::uint32_t y = 0; y < K; ++y) {
    for (std::uint32_t x = 0; x < K; ++x) {
      const std::int64_t d = D[std::size_t{y} * K + x];
      if (d == 0) maskZ[y] |= 1u << x;
      if (d == extD) maskM[y] |= 1u << x;
    }
  }
  const ChainCount zc = count_mask_chains(maskZ, n, K);  // exact pairs
  const ChainCount mc = count_mask_chains(maskM, n, K);  // max-error pairs
  out.max_error_occurrences_ld = mc.value_ld;
  out.occurrences_ld = samples_ld - zc.value_ld;
  out.error_probability =
      static_cast<double>(1.0L - zc.value_ld / samples_ld);

  // Average / mean signed error: sum E = 4^(w-k) * sumD * S2^2.
  const std::int64_t sumMag = nonpos ? -sumD : sumD;
  const long double sum_abs_ld =
      ldexpl(static_cast<long double>(sumMag), static_cast<int>(2 * (w - k))) * S2_ld * S2_ld;

  // Exact MRE: E/(A*B) factorizes over slices,
  //   sum_{A,B != 0} |E|/(A*B) = sum_{x,y} (+-D(x,y)) U(x) U(y),
  //   U(x) = sum_i 2^{ki} * Rinv_i(x),  Rinv_i(x) = sum_{A != 0, a_i = x} 1/A.
  // Each Rinv_i is a lattice of harmonic blocks: for slice value x the
  // admissible A are lo + x*2^{ki} + hi*2^{k(i+1)}; the lo-run is a
  // psi-difference and the hi-run an Euler-Maclaurin harmonic tail.
  std::vector<long double> U(K, 0.0L);
  for (unsigned i = 0; i < n; ++i) {
    const long double L = ldexpl(1.0L, static_cast<int>(k * i));
    const long double stride = ldexpl(1.0L, static_cast<int>(k * (i + 1)));
    const std::uint64_t N = std::uint64_t{1} << (w - k * (i + 1));
    for (std::uint32_t x = 0; x < K; ++x) {
      const long double c = static_cast<long double>(x) * L;
      long double r;
      if (x == 0) {
        // The hi=0 block contains A=0: sum lo in [1, 2^{ki}) directly.
        r = (k * i == 0) ? 0.0L : (digamma(L) - digamma(1.0L));
        r += harmonic_block_sum(c, stride, L, 1, N);
      } else {
        r = harmonic_block_sum(c, stride, L, 0, N);
      }
      U[x] += L * r;
    }
  }
  long double mre_sum = 0.0L;
  for (std::uint32_t y = 0; y < K; ++y) {
    for (std::uint32_t x = 0; x < K; ++x) {
      const std::int64_t d = D[std::size_t{y} * K + x];
      mre_sum += static_cast<long double>(nonpos ? -d : d) * U[x] * U[y];
    }
  }

  ErrorMetrics& m = out.metrics;
  m.avg_error = static_cast<double>(sum_abs_ld / samples_ld);
  m.avg_relative_error = static_cast<double>(mre_sum / samples_ld);
  m.mean_signed_error =
      static_cast<double>((nonpos ? -sum_abs_ld : sum_abs_ld) / samples_ld);

  if (small) {
    // Every count fits: surface exact integers (w <= 16 => samples <= 2^32).
    const std::uint64_t samples = std::uint64_t{1} << pb;
    m.samples = samples;
    m.occurrences = samples - static_cast<std::uint64_t>(zc.value);
    m.max_error = static_cast<std::uint64_t>(maxe128);
    m.max_error_occurrences = static_cast<std::uint64_t>(mc.value);
    // Recompute avg/mean from exact integers with the sweep's expressions.
    const u128 sum_abs = (static_cast<u128>(1) << (2 * (w - k))) *
                         static_cast<u128>(sumMag) * S2 * S2;
    const long double nld = static_cast<long double>(samples);
    m.avg_error = static_cast<double>(static_cast<long double>(sum_abs) / nld);
    m.mean_signed_error = static_cast<double>(
        (nonpos ? -static_cast<long double>(sum_abs) : static_cast<long double>(sum_abs)) /
        nld);
    out.exact_counts = true;
    out.error_probability = m.error_probability();
    out.occurrences_ld = static_cast<long double>(m.occurrences);
    out.max_error_occurrences_ld = static_cast<long double>(m.max_error_occurrences);
    out.max_error_ld = static_cast<long double>(m.max_error);
  } else {
    out.wide = true;
    m.samples = UINT64_MAX;
    if (pb < 128 && zc.exact) {
      const u128 occ = ((static_cast<u128>(1) << pb)) - zc.value;
      m.occurrences = saturate_u64(occ, true);
    } else if (pb == 128 && zc.exact && zc.value > 0) {
      m.occurrences = saturate_u64((~static_cast<u128>(0) - zc.value) + 1, true);
    } else {
      m.occurrences = UINT64_MAX;
    }
    m.max_error = saturate_u64(maxe128, maxe_exact);
    m.max_error_occurrences = saturate_u64(mc.value, mc.exact);
  }
  return out;
}

}  // namespace analytic_detail

std::optional<AnalyticMetrics> analytic_metrics(const AnalyticSpec& spec, std::string* why) {
  const std::string reason = analytic_unsupported(spec);
  if (!reason.empty()) {
    if (why) *why = reason;
    return std::nullopt;
  }
  if (spec.a_bits() + spec.b_bits() <= 16) return analytic_detail::analyze_cross(spec, why);
  if (spec.width == 16) return analytic_detail::analyze_factor(spec, why);
  return analytic_detail::analyze_bipartite(spec, why);
}

std::optional<SurrogateSeed> surrogate_seed(const AnalyticSpec& spec) {
  // Structural pre-check first: rejecting without building PMFs keeps the
  // common "outside the envelope" case essentially free for callers that
  // probe every candidate in a large proposal batch.
  if (!analytic_unsupported(spec).empty()) return std::nullopt;
  const auto am = analytic_metrics(spec);
  if (!am) return std::nullopt;
  SurrogateSeed seed;
  seed.method = am->method;
  seed.mre = am->metrics.avg_relative_error;
  seed.error_probability = am->error_probability;
  seed.max_error_ld =
      am->wide ? am->max_error_ld : static_cast<long double>(am->metrics.max_error);
  // Same normalization as dse::evaluate's analytic path: mean |error|
  // over the maximum exact product.
  const long double max_a = std::exp2l(static_cast<long double>(spec.a_bits())) - 1.0L;
  const long double max_b = std::exp2l(static_cast<long double>(spec.b_bits())) - 1.0L;
  seed.nmed = static_cast<double>(
      static_cast<long double>(am->metrics.avg_error) / (max_a * max_b));
  return seed;
}

}  // namespace axmult::error
