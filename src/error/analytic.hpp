// Analytic (sweep-free) error characterization of the recursive multiplier
// construction.
//
// Replaying operand pairs caps exact error metrics at 8x8 (2^16 pairs) or,
// with the batched 64-lane sweep, 16x16 (2^32 pairs, minutes); 32- and
// 64-bit configurations are out of reach entirely. But the paper's
// composition (elementary leaves + recursive Ca/Cc/Cb summation) makes the
// error *compositional*: the joint (operand slice -> signed error) table of
// a leaf is tiny (4x4 = 256 entries) and exact metrics of the whole tree
// follow from table algebra instead of enumeration. This module turns
// 2^128-pair questions into milliseconds of arithmetic via three exact
// strategies, picked by width:
//
//   * cross      (a_bits + b_bits <= 16): direct enumeration of the
//     behavioral composition, replicating the sweep accumulator in the
//     sweep's operand order, so every field -- including the
//     floating-point relative-error fold -- is BIT-IDENTICAL to
//     sweep_netlist_exhaustive / sweep_exhaustive. Supports every spec
//     feature (mixed summations, truncation, operand truncation, swap,
//     top-level perforation, arbitrary leaf tables).
//   * factor     (width == 16, accurate top-level summation): condition on
//     the high/low slices of operand A. Given (al, ah), the error
//     contributions of B's low and high halves are independent, so the
//     error PMF is a small convolution per (al, ah)-equivalence class.
//     Classes are formed on the 8-bit subnode error tables; standard
//     leaves yield only a handful. All counts are exact integers; the MRE
//     uses an exact harmonic-sum factorization (see docs/MODELS.md).
//   * bipartite  (width 32/64, accurate summation at every level): the
//     error is a bilinear form over leaf slices,
//     E(A,B) = sum_{i,j} 2^{k(i+j)} D(a_i, b_j), with D the leaf's signed
//     error table. Max error and its occurrence count, the error
//     probability, avg/mean-signed error and the exact MRE all reduce to
//     small DPs over slice masks plus digamma-based harmonic sums
//     (Euler-Maclaurin for the 2^58-term tails).
//
// Outside the supported envelope (e.g. carry-free top-level summation at
// width >= 16, or a perturbed leaf whose error changes sign), the engine
// reports *why* and callers fall back to sampled sweeps.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "error/metrics.hpp"
#include "mult/recursive.hpp"

namespace axmult::error {

/// Pure-data description of one recursively composed multiplier: the leaf
/// product table plus the per-level summation schedule and the operand /
/// result transforms. Mirrors mult::RecursiveMultiplier + the dse wrappers
/// (truncation, swap) and the catalog's perforated / operand-truncated
/// variants. The signed wrapper is absent by design: it preserves the
/// unsigned core's error profile on magnitudes (mult/signed_wrapper.hpp),
/// exactly as dse::make_model measures it.
struct AnalyticSpec {
  unsigned width = 8;      ///< operand bits per side (power of two)
  unsigned leaf_bits = 4;  ///< recursion stops here; == width for leaf-only
  /// Nonzero only for rectangular leaf-only blocks (the 4x2 elementary
  /// module): the B-operand width. Zero means a square leaf_bits x
  /// leaf_bits leaf.
  unsigned leaf_b_bits = 0;
  /// Leaf product table, indexed a | (b << leaf_bits).
  std::vector<std::uint32_t> leaf;
  /// Per-level summation, outermost first; log2(width / leaf_bits) entries.
  std::vector<mult::Summation> levels;
  unsigned lower_or_bits = 0;  ///< Cb parameter (Summation::kLowerOr)
  unsigned trunc_lsbs = 0;     ///< product LSBs forced to zero (Mult(n,k))
  unsigned op_trunc_lsbs = 0;  ///< operand LSBs zeroed before the tree
  bool operand_swap = false;   ///< evaluate the tree on (b, a)
  bool drop_hl = false;        ///< top-level perforation: drop AH*BL
  bool drop_lh = false;        ///< top-level perforation: drop AL*BH

  [[nodiscard]] unsigned a_bits() const noexcept {
    return leaf_b_bits ? leaf_bits : width;
  }
  [[nodiscard]] unsigned b_bits() const noexcept {
    return leaf_b_bits ? leaf_b_bits : width;
  }
};

/// Tabulates a behavioral leaf (operands pre-masked by the caller's
/// contract, as RecursiveMultiplier::rec guarantees).
[[nodiscard]] std::vector<std::uint32_t> make_leaf_table(
    unsigned a_bits, unsigned b_bits,
    const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>& fn);

/// Result of an analytic characterization.
///
/// For width <= 16 every integer field of `metrics` is exact and the
/// doubles are bit-identical to what the exhaustive sweep computes
/// (`exact_counts`). For width >= 32 the sample/occurrence counts exceed
/// 64 bits: the uint64 fields saturate and the `_ld` long-double mirrors
/// carry the true values (`wide`); the double-valued metrics remain valid
/// (computed in >= 64-bit-mantissa arithmetic from exact integers).
struct AnalyticMetrics {
  std::string method;  ///< "cross" | "factor" | "bipartite"
  ErrorMetrics metrics;
  bool exact_counts = false;
  bool wide = false;
  /// Always valid (metrics.error_probability() is not once counts
  /// saturate).
  double error_probability = 0.0;
  long double samples_ld = 0.0L;
  long double occurrences_ld = 0.0L;
  long double max_error_ld = 0.0L;
  long double max_error_occurrences_ld = 0.0L;
  bool has_pmf = false;  ///< PMFs collected (width <= 16)
  /// Signed error PMF: (approx - exact) -> occurrence count.
  std::map<std::int64_t, std::uint64_t> signed_pmf;
  /// |error| PMF, same convention as SweepResult::pmf.
  std::map<std::uint64_t, std::uint64_t> pmf;
};

/// Structural support check: empty string when `analytic_metrics` can
/// handle the spec, otherwise a one-line reason (used verbatim in fallback
/// diagnostics). A supported spec can still come back empty from
/// `analytic_metrics` when a data-dependent condition fails (a perturbed
/// leaf with a sign-changing error table at width >= 16).
[[nodiscard]] std::string analytic_unsupported(const AnalyticSpec& spec);

/// Exact error metrics of `spec`, or nullopt (with the reason in `*why`)
/// when the spec is outside the supported envelope.
[[nodiscard]] std::optional<AnalyticMetrics> analytic_metrics(const AnalyticSpec& spec,
                                                              std::string* why = nullptr);

/// Scalar error summary for surrogate-model seeding (src/dse). When the
/// analytic envelope admits the spec these numbers are *exact* — the same
/// values dse::evaluate's analytic path would later confirm — so a search
/// surrogate can screen candidates on true error metrics without paying
/// any evaluation. nullopt outside the envelope; callers fall back to
/// their learned predictor.
struct SurrogateSeed {
  double mre = 0.0;                ///< mean relative error (MRED)
  double nmed = 0.0;               ///< avg |error| / max exact product
  double error_probability = 0.0;
  long double max_error_ld = 0.0L; ///< exact even where uint64 saturates
  std::string method;              ///< "cross" | "factor" | "bipartite"
};

[[nodiscard]] std::optional<SurrogateSeed> surrogate_seed(const AnalyticSpec& spec);

namespace analytic_detail {

// Internals exposed for unit tests (tests/analytic_test.cpp) and for the
// strategy cross-checks: each analyze_* insists on its own preconditions
// but they overlap at small widths, giving independent derivations of the
// same exact numbers.

/// Digamma psi(x) for x > 0, ~1 ulp of long double.
[[nodiscard]] long double digamma(long double x);
/// Trigamma psi'(x) for x > 0.
[[nodiscard]] long double trigamma(long double x);

/// sum_{h=h0}^{N-1} [psi(c + h*s + L) - psi(c + h*s)] -- i.e. the harmonic
/// block sum sum_h sum_{t=0}^{L-1} 1/(c + h*s + t). Caller guarantees
/// c + h0*s > 0. The first `em_head` terms (min 1) are summed directly;
/// the rest via Euler-Maclaurin with lgammal + trigamma corrections (pass
/// em_head >= N to force the all-direct path).
[[nodiscard]] long double harmonic_block_sum(long double c, long double s, long double L,
                                             std::uint64_t h0, std::uint64_t N,
                                             std::uint64_t em_head = 1024);

[[nodiscard]] std::optional<AnalyticMetrics> analyze_cross(const AnalyticSpec& spec,
                                                           std::string* why);
[[nodiscard]] std::optional<AnalyticMetrics> analyze_factor(const AnalyticSpec& spec,
                                                            std::string* why);
[[nodiscard]] std::optional<AnalyticMetrics> analyze_bipartite(const AnalyticSpec& spec,
                                                               std::string* why);

}  // namespace analytic_detail

}  // namespace axmult::error
