// Error characterization of approximate multipliers (paper Sections 1.2, 5).
//
// The paper's quality metrics, evaluated for a uniform distribution of all
// input combinations (exhaustively where the input space allows, sampled
// otherwise):
//   * Maximum Error Magnitude           max |approx - exact|
//   * Average Error                     mean |approx - exact|
//   * Average Relative Error            mean |approx - exact| / exact
//   * (Number of) Error Occurrences     #inputs with approx != exact
//   * Maximum Error Case Occurrences    #inputs hitting the max magnitude
// plus the per-bit error probabilities and error PMFs of Fig. 8.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "fabric/netlist.hpp"
#include "mult/multiplier.hpp"

namespace axmult::error {

struct ErrorMetrics {
  std::uint64_t samples = 0;
  std::uint64_t max_error = 0;
  double avg_error = 0.0;
  double avg_relative_error = 0.0;
  std::uint64_t occurrences = 0;
  std::uint64_t max_error_occurrences = 0;
  /// Mean signed error (approx - exact); negative for one-sided designs.
  double mean_signed_error = 0.0;

  [[nodiscard]] double error_probability() const noexcept {
    return samples ? static_cast<double>(occurrences) / static_cast<double>(samples) : 0.0;
  }

  /// Normalized mean error distance: avg |err| / max product — the NMED
  /// metric common in the approximate-arithmetic literature.
  [[nodiscard]] double nmed(unsigned a_bits, unsigned b_bits) const noexcept {
    const double max_product = static_cast<double>(((1ull << a_bits) - 1)) *
                               static_cast<double>(((1ull << b_bits) - 1));
    return max_product > 0 ? avg_error / max_product : 0.0;
  }

  /// Worst-case error normalized to the max product.
  [[nodiscard]] double wce_normalized(unsigned a_bits, unsigned b_bits) const noexcept {
    const double max_product = static_cast<double>(((1ull << a_bits) - 1)) *
                               static_cast<double>(((1ull << b_bits) - 1));
    return max_product > 0 ? static_cast<double>(max_error) / max_product : 0.0;
  }
};

/// A source of operand pairs. Returns false when exhausted.
using PairSource = std::function<bool(std::uint64_t& a, std::uint64_t& b)>;

/// All 2^(a_bits+b_bits) combinations, lexicographic.
[[nodiscard]] PairSource exhaustive_source(unsigned a_bits, unsigned b_bits);

/// `n` uniform random pairs from a fixed seed.
[[nodiscard]] PairSource uniform_source(unsigned a_bits, unsigned b_bits, std::uint64_t n,
                                        std::uint64_t seed = 1);

/// `n` pairs from a clipped discrete Gaussian (mean/sigma in operand
/// units) — models sensor-like, non-uniform operand distributions.
[[nodiscard]] PairSource gaussian_source(unsigned a_bits, unsigned b_bits, std::uint64_t n,
                                         double mean, double sigma, std::uint64_t seed = 1);

/// Pairs drawn from a recorded operand trace (e.g. the SUSAN accelerator).
[[nodiscard]] PairSource trace_source(const std::vector<std::pair<std::uint64_t, std::uint64_t>>& trace);

/// `inner` with each pair's operands exchanged. Characterizing a design
/// against swapped_source(s) equals characterizing its SwappedMultiplier
/// against s — the identity behind the paper's Cas/Ccs operand-swap trick,
/// which only pays off under operand distributions that are themselves
/// asymmetric (Section 6 / Fig. 12).
[[nodiscard]] PairSource swapped_source(PairSource inner);

/// Characterizes an arbitrary binary operator against its exact reference
/// over `source` (used for adders and other datapath blocks).
using BinaryFn = std::function<std::uint64_t(std::uint64_t, std::uint64_t)>;
[[nodiscard]] ErrorMetrics characterize_op(const BinaryFn& approx, const BinaryFn& exact,
                                           PairSource source);

/// Characterizes `m` against the exact product over `source`.
[[nodiscard]] ErrorMetrics characterize(const mult::Multiplier& m, PairSource source);

/// Exhaustive characterization over the full input space (use only when
/// a_bits + b_bits is small enough, e.g. <= 24).
[[nodiscard]] ErrorMetrics characterize_exhaustive(const mult::Multiplier& m);

/// Monte-Carlo characterization with `n` uniform samples.
[[nodiscard]] ErrorMetrics characterize_sampled(const mult::Multiplier& m, std::uint64_t n,
                                                std::uint64_t seed = 1);

/// P(product bit i differs from the exact product bit), per bit (Fig 8a).
[[nodiscard]] std::vector<double> bit_error_probability(const mult::Multiplier& m,
                                                        PairSource source);

/// Distribution of |error| values with their occurrence counts (Fig 8b).
[[nodiscard]] std::map<std::uint64_t, std::uint64_t> error_pmf(const mult::Multiplier& m,
                                                               PairSource source);

// ---- batched + multithreaded sweeps --------------------------------------
//
// The per-pair PairSource/std::function loop above stays the flexible
// public API; the functions below are the high-throughput path: operands
// are enumerated in 64-wide batches (matching fabric::BitParallelEvaluator
// lanes) and fanned out across std::threads in fixed-size chunks.
//
// Determinism: results are bit-identical for ANY thread count. Integer
// accumulators (counts, |error| sums in 128-bit) are exactly associative,
// so per-thread partials can merge in any order; the only floating-point
// accumulation (relative error) is kept per chunk and folded in chunk-index
// order after the join.

struct SweepConfig {
  /// Worker threads; 0 = auto (set_thread_count() / AXMULT_THREADS env /
  /// hardware_concurrency — see common/parallel_for.hpp).
  unsigned threads = 0;
  /// Pairs per work chunk (rounded up to a multiple of 64). Fixed chunking
  /// is what makes float results independent of the thread count.
  std::uint64_t chunk_pairs = std::uint64_t{1} << 20;
  bool collect_pmf = true;              ///< Fig. 8b |error| histogram
  bool collect_bit_probability = true;  ///< Fig. 8a per-bit error rates
};

/// Everything one pass over the input space can produce: the Table 2/5
/// metrics plus the Fig. 8 artifacts (empty when not collected).
struct SweepResult {
  ErrorMetrics metrics;
  std::vector<double> bit_error_probability;
  std::map<std::uint64_t, std::uint64_t> pmf;
};

/// Exhaustive sweep of the behavioral model over all 2^(a_bits+b_bits)
/// pairs. This is the path that makes full 2^32-pair characterization of
/// the 16x16 designs practical.
[[nodiscard]] SweepResult sweep_exhaustive(const mult::Multiplier& m,
                                           const SweepConfig& cfg = {});

/// Exhaustive sweep replaying the structural netlist through one 64-lane
/// fabric::BitParallelEvaluator per worker thread. Inputs must be declared
/// a0..a(n-1), b0..b(n-1) as the multgen generators do.
[[nodiscard]] SweepResult sweep_netlist_exhaustive(const fabric::Netlist& nl, unsigned a_bits,
                                                   unsigned b_bits, const SweepConfig& cfg = {});

/// Sampled sweep: `n` uniform pairs. Each chunk draws from its own
/// seed-derived stream, so the sample set depends on (seed, chunk_pairs)
/// but not on the thread count.
[[nodiscard]] SweepResult sweep_sampled(const mult::Multiplier& m, std::uint64_t n,
                                        std::uint64_t seed = 1, const SweepConfig& cfg = {});

/// Collects the erroneous inputs (up to `limit`) — regenerates Table 2.
struct ErrorCase {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t exact = 0;
  std::uint64_t approx = 0;
};
[[nodiscard]] std::vector<ErrorCase> collect_error_cases(const mult::Multiplier& m,
                                                         PairSource source,
                                                         std::size_t limit = 64);

}  // namespace axmult::error
