#include "apps/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "common/rng.hpp"

namespace axmult::apps {

std::uint8_t Image::clamped(int x, int y) const {
  const int cx = std::clamp(x, 0, static_cast<int>(width_) - 1);
  const int cy = std::clamp(y, 0, static_cast<int>(height_) - 1);
  return at(static_cast<unsigned>(cx), static_cast<unsigned>(cy));
}

void Image::write_pgm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << "P5\n" << width_ << " " << height_ << "\n255\n";
  out.write(reinterpret_cast<const char*>(pixels_.data()),
            static_cast<std::streamsize>(pixels_.size()));
  if (!out) throw std::runtime_error("write failed: " + path);
}

Image read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::string magic;
  in >> magic;
  if (magic != "P5") throw std::runtime_error(path + ": not a binary PGM (P5)");
  auto next_token = [&in, &path]() -> long {
    // Skip whitespace and '#' comment lines between header fields.
    int c = in.get();
    while (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '#') {
      if (c == '#') {
        while (c != '\n' && c != EOF) c = in.get();
      }
      c = in.get();
    }
    long value = -1;
    while (c >= '0' && c <= '9') {
      value = (value < 0 ? 0 : value) * 10 + (c - '0');
      c = in.get();
    }
    if (value < 0) throw std::runtime_error(path + ": malformed PGM header");
    return value;
  };
  const long width = next_token();
  const long height = next_token();
  const long maxval = next_token();
  if (width <= 0 || height <= 0 || maxval <= 0 || maxval > 255) {
    throw std::runtime_error(path + ": unsupported PGM geometry");
  }
  // next_token consumed the single whitespace byte after maxval.
  Image img(static_cast<unsigned>(width), static_cast<unsigned>(height));
  std::vector<char> raw(std::size_t(width) * std::size_t(height));
  in.read(raw.data(), static_cast<std::streamsize>(raw.size()));
  if (in.gcount() != static_cast<std::streamsize>(raw.size())) {
    throw std::runtime_error(path + ": truncated PGM pixel data");
  }
  for (unsigned y = 0; y < img.height(); ++y) {
    for (unsigned x = 0; x < img.width(); ++x) {
      img.at(x, y) = static_cast<std::uint8_t>(raw[std::size_t{y} * img.width() + x]);
    }
  }
  return img;
}

Image make_test_scene(unsigned width, unsigned height, std::uint64_t seed, double noise_sigma) {
  Image img(width, height);
  Xoshiro256 rng(seed);
  const double w = width;
  const double h = height;
  for (unsigned y = 0; y < height; ++y) {
    for (unsigned x = 0; x < width; ++x) {
      // Smooth diagonal gradient background.
      double v = 60.0 + 120.0 * (x / w) + 40.0 * (y / h);
      // Bright disk (smooth blob with a hard rim).
      const double dx1 = x - 0.30 * w;
      const double dy1 = y - 0.35 * h;
      if (dx1 * dx1 + dy1 * dy1 < 0.04 * w * h) v = 225.0 - 0.15 * std::sqrt(dx1 * dx1 + dy1 * dy1);
      // Dark disk.
      const double dx2 = x - 0.72 * w;
      const double dy2 = y - 0.62 * h;
      if (dx2 * dx2 + dy2 * dy2 < 0.02 * w * h) v = 35.0;
      // Vertical bars (strong edges / texture).
      if (y > 0.78 * h && ((x / std::max(1u, width / 16)) % 2) == 0) v = 200.0;
      // Sinusoidal texture band.
      if (y > 0.45 * h && y < 0.58 * h) v += 25.0 * std::sin(x * 0.35);
      // Sensor noise (Box-Muller).
      const double u1 = std::max(rng.uniform01(), 1e-12);
      const double u2 = rng.uniform01();
      v += noise_sigma * std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
      img.at(x, y) = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
    }
  }
  return img;
}

double mse(const Image& reference, const Image& test) {
  if (reference.width() != test.width() || reference.height() != test.height()) {
    throw std::invalid_argument("mse: image dimensions differ");
  }
  long double acc = 0.0L;
  const auto& a = reference.pixels();
  const auto& b = test.pixels();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return a.empty() ? 0.0 : static_cast<double>(acc / a.size());
}

double ssim(const Image& reference, const Image& test) {
  if (reference.width() != test.width() || reference.height() != test.height()) {
    throw std::invalid_argument("ssim: image dimensions differ");
  }
  if (reference.width() == 0 || reference.height() == 0) return 1.0;
  constexpr double kC1 = 6.5025;   // (0.01 * 255)^2
  constexpr double kC2 = 58.5225;  // (0.03 * 255)^2
  double total = 0.0;
  std::size_t windows = 0;
  for (unsigned wy = 0; wy < reference.height(); wy += 8) {
    for (unsigned wx = 0; wx < reference.width(); wx += 8) {
      const unsigned x_end = std::min(wx + 8, reference.width());
      const unsigned y_end = std::min(wy + 8, reference.height());
      std::uint64_t sum_a = 0, sum_b = 0, sum_aa = 0, sum_bb = 0, sum_ab = 0;
      for (unsigned y = wy; y < y_end; ++y) {
        for (unsigned x = wx; x < x_end; ++x) {
          const std::uint64_t a = reference.at(x, y);
          const std::uint64_t b = test.at(x, y);
          sum_a += a;
          sum_b += b;
          sum_aa += a * a;
          sum_bb += b * b;
          sum_ab += a * b;
        }
      }
      const double n = static_cast<double>((x_end - wx) * (y_end - wy));
      const double mu_a = static_cast<double>(sum_a) / n;
      const double mu_b = static_cast<double>(sum_b) / n;
      const double var_a = static_cast<double>(sum_aa) / n - mu_a * mu_a;
      const double var_b = static_cast<double>(sum_bb) / n - mu_b * mu_b;
      const double cov = static_cast<double>(sum_ab) / n - mu_a * mu_b;
      const double num = (2.0 * mu_a * mu_b + kC1) * (2.0 * cov + kC2);
      const double den = (mu_a * mu_a + mu_b * mu_b + kC1) * (var_a + var_b + kC2);
      total += num / den;
      ++windows;
    }
  }
  return total / static_cast<double>(windows);
}

double psnr(const Image& reference, const Image& test) {
  const double m = mse(reference, test);
  if (m == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / m);
}

}  // namespace axmult::apps
