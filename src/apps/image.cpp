#include "apps/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "common/rng.hpp"

namespace axmult::apps {

std::uint8_t Image::clamped(int x, int y) const {
  const int cx = std::clamp(x, 0, static_cast<int>(width_) - 1);
  const int cy = std::clamp(y, 0, static_cast<int>(height_) - 1);
  return at(static_cast<unsigned>(cx), static_cast<unsigned>(cy));
}

void Image::write_pgm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << "P5\n" << width_ << " " << height_ << "\n255\n";
  out.write(reinterpret_cast<const char*>(pixels_.data()),
            static_cast<std::streamsize>(pixels_.size()));
  if (!out) throw std::runtime_error("write failed: " + path);
}

Image make_test_scene(unsigned width, unsigned height, std::uint64_t seed, double noise_sigma) {
  Image img(width, height);
  Xoshiro256 rng(seed);
  const double w = width;
  const double h = height;
  for (unsigned y = 0; y < height; ++y) {
    for (unsigned x = 0; x < width; ++x) {
      // Smooth diagonal gradient background.
      double v = 60.0 + 120.0 * (x / w) + 40.0 * (y / h);
      // Bright disk (smooth blob with a hard rim).
      const double dx1 = x - 0.30 * w;
      const double dy1 = y - 0.35 * h;
      if (dx1 * dx1 + dy1 * dy1 < 0.04 * w * h) v = 225.0 - 0.15 * std::sqrt(dx1 * dx1 + dy1 * dy1);
      // Dark disk.
      const double dx2 = x - 0.72 * w;
      const double dy2 = y - 0.62 * h;
      if (dx2 * dx2 + dy2 * dy2 < 0.02 * w * h) v = 35.0;
      // Vertical bars (strong edges / texture).
      if (y > 0.78 * h && ((x / std::max(1u, width / 16)) % 2) == 0) v = 200.0;
      // Sinusoidal texture band.
      if (y > 0.45 * h && y < 0.58 * h) v += 25.0 * std::sin(x * 0.35);
      // Sensor noise (Box-Muller).
      const double u1 = std::max(rng.uniform01(), 1e-12);
      const double u2 = rng.uniform01();
      v += noise_sigma * std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
      img.at(x, y) = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
    }
  }
  return img;
}

double mse(const Image& reference, const Image& test) {
  if (reference.width() != test.width() || reference.height() != test.height()) {
    throw std::invalid_argument("mse: image dimensions differ");
  }
  long double acc = 0.0L;
  const auto& a = reference.pixels();
  const auto& b = test.pixels();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return a.empty() ? 0.0 : static_cast<double>(acc / a.size());
}

double psnr(const Image& reference, const Image& test) {
  const double m = mse(reference, test);
  if (m == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / m);
}

}  // namespace axmult::apps
