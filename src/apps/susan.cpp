#include "apps/susan.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace axmult::apps {

SusanSmoother::SusanSmoother(mult::MultiplierPtr multiplier, SusanConfig config)
    : multiplier_(std::move(multiplier)), config_(config) {
  if (!multiplier_ || multiplier_->a_bits() != 8 || multiplier_->b_bits() != 8) {
    throw std::invalid_argument("SusanSmoother needs an 8x8 multiplier");
  }
  // Quantized similarity kernel: w = round(255 * exp(-(d/t)^2)), d = |dI|.
  weight_lut_.resize(256);
  const double t = config_.brightness_threshold;
  for (int d = 0; d < 256; ++d) {
    const double w = 255.0 * std::exp(-(d / t) * (d / t));
    weight_lut_[static_cast<std::size_t>(d)] = static_cast<std::uint8_t>(std::lround(w));
  }
  // Circular mask, centre pixel excluded (it gets full weight separately).
  const int r = config_.radius;
  for (int dy = -r; dy <= r; ++dy) {
    for (int dx = -r; dx <= r; ++dx) {
      if (dx == 0 && dy == 0) continue;
      if (dx * dx + dy * dy <= r * r + 1) mask_.emplace_back(dx, dy);
    }
  }
}

Image SusanSmoother::smooth(const Image& input) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ignored;
  return smooth_traced(input, ignored);
}

Image SusanSmoother::smooth_traced(
    const Image& input, std::vector<std::pair<std::uint64_t, std::uint64_t>>& trace) const {
  Image out(input.width(), input.height());
  trace.clear();
  for (unsigned y = 0; y < input.height(); ++y) {
    for (unsigned x = 0; x < input.width(); ++x) {
      const std::uint8_t centre = input.at(x, y);
      // Centre contributes with full weight; the accelerator skips its
      // multiplication (w = 255 would only scale both sums).
      std::uint64_t num = 255ull * centre;
      std::uint64_t den = 255;
      for (const auto& [dx, dy] : mask_) {
        const std::uint8_t p = input.clamped(static_cast<int>(x) + dx,
                                             static_cast<int>(y) + dy);
        const int d = std::abs(static_cast<int>(p) - static_cast<int>(centre));
        const std::uint8_t w = weight_lut_[static_cast<std::size_t>(d)];
        if (w == 0) continue;
        const std::uint64_t op_a = config_.swap_operands ? p : w;
        const std::uint64_t op_b = config_.swap_operands ? w : p;
        trace.emplace_back(op_a, op_b);
        num += multiplier_->multiply(op_a, op_b);
        den += w;
      }
      out.at(x, y) = static_cast<std::uint8_t>(std::min<std::uint64_t>(num / den, 255));
    }
  }
  return out;
}

}  // namespace axmult::apps
