// 2-D image filtering built from the FIR core — a second image-processing
// accelerator (separable Gaussian blur) exercising approximate multipliers
// on the row/column filter datapath.
#pragma once

#include "apps/fir.hpp"
#include "apps/image.hpp"

namespace axmult::apps {

/// Quantized Gaussian kernel: `taps` coefficients, sigma = taps/5, scaled
/// to a 255 peak (odd tap counts keep the kernel symmetric).
[[nodiscard]] std::vector<std::uint8_t> gaussian_taps(unsigned taps, double sigma = 0.0);

/// Separable 2-D blur: the 1-D FIR runs over every row, then every column
/// of the intermediate. Every tap product uses the supplied multiplier.
/// The output is cropped-compensated for the FIR group delay so it stays
/// aligned with the input.
[[nodiscard]] Image blur_image(const Image& input, const std::vector<std::uint8_t>& taps,
                               mult::MultiplierPtr multiplier);

}  // namespace axmult::apps
