// SUSAN image-smoothing accelerator with a pluggable 8x8 multiplier
// (paper Section 5: area gains, Fig. 11/Table 6 output quality, Fig. 12
// operand distribution, and the Cas/Ccs operand-swap study).
//
// SUSAN smoothing replaces each pixel by the similarity-weighted mean of
// its circular neighborhood: w(r) = exp(-((I(r)-I(r0))/t)^2), so pixels on
// the same "univalue segment" dominate and edges are preserved. The
// hardware-relevant operation is the stream of w * I products, which the
// accelerator computes on an 8x8 unsigned multiplier — the component this
// paper approximates.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "apps/image.hpp"
#include "mult/multiplier.hpp"

namespace axmult::apps {

struct SusanConfig {
  double brightness_threshold = 20.0;  ///< t in the similarity kernel
  int radius = 2;                      ///< circular mask radius (2 -> 21 px? see mask())
  bool swap_operands = false;          ///< multiply(pixel, weight) instead of
                                       ///< multiply(weight, pixel) — Cas/Ccs
};

class SusanSmoother {
 public:
  explicit SusanSmoother(mult::MultiplierPtr multiplier, SusanConfig config = {});

  /// Smooths `input` using the configured multiplier for every w*I product.
  [[nodiscard]] Image smooth(const Image& input) const;

  /// Same, additionally recording every (multiplier, multiplicand) operand
  /// pair fed to the hardware multiplier (Fig. 12 histogram / trace-driven
  /// error characterization).
  [[nodiscard]] Image smooth_traced(
      const Image& input, std::vector<std::pair<std::uint64_t, std::uint64_t>>& trace) const;

  /// The circular neighborhood offsets for the configured radius.
  [[nodiscard]] const std::vector<std::pair<int, int>>& mask() const noexcept { return mask_; }

 private:
  mult::MultiplierPtr multiplier_;
  SusanConfig config_;
  std::vector<std::uint8_t> weight_lut_;     ///< |dI| -> 8-bit weight
  std::vector<std::pair<int, int>> mask_;
};

}  // namespace axmult::apps
