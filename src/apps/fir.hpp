// FIR filtering with a pluggable 8x8 multiplier — the DSP accelerator
// class the paper's introduction motivates (digital signal processing as
// the natural consumer of approximate multipliers).
#pragma once

#include <cstdint>
#include <vector>

#include "mult/multiplier.hpp"

namespace axmult::apps {

/// Direct-form FIR filter over unsigned 8-bit samples with unsigned 8-bit
/// coefficients. Every tap product runs through the supplied multiplier;
/// the accumulator divides by the coefficient sum so the output stays in
/// the 8-bit sample range (a moving weighted average — low-pass).
class FirFilter {
 public:
  FirFilter(std::vector<std::uint8_t> coefficients, mult::MultiplierPtr multiplier);

  [[nodiscard]] std::vector<std::uint8_t> filter(const std::vector<std::uint8_t>& signal) const;

  [[nodiscard]] const std::vector<std::uint8_t>& coefficients() const noexcept {
    return coeffs_;
  }

  /// Symmetric low-pass prototype: triangular window of `taps` coefficients
  /// scaled to a maximum of 255.
  [[nodiscard]] static std::vector<std::uint8_t> triangular_taps(unsigned taps);

 private:
  std::vector<std::uint8_t> coeffs_;
  mult::MultiplierPtr multiplier_;
  std::uint64_t coeff_sum_ = 0;
};

/// Test-signal generator: two sinusoids plus uniform noise, quantized to
/// 8 bits. Deterministic per seed.
[[nodiscard]] std::vector<std::uint8_t> make_test_signal(std::size_t n, std::uint64_t seed = 17,
                                                         double noise_amp = 12.0);

/// Signal-to-noise ratio (dB) of `test` against `reference`.
[[nodiscard]] double snr_db(const std::vector<std::uint8_t>& reference,
                            const std::vector<std::uint8_t>& test);

}  // namespace axmult::apps
