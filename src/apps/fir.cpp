#include "apps/fir.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/rng.hpp"

namespace axmult::apps {

FirFilter::FirFilter(std::vector<std::uint8_t> coefficients, mult::MultiplierPtr multiplier)
    : coeffs_(std::move(coefficients)), multiplier_(std::move(multiplier)) {
  if (coeffs_.empty()) throw std::invalid_argument("FirFilter: no coefficients");
  if (!multiplier_ || multiplier_->a_bits() != 8 || multiplier_->b_bits() != 8) {
    throw std::invalid_argument("FirFilter needs an 8x8 multiplier");
  }
  for (std::uint8_t c : coeffs_) coeff_sum_ += c;
  if (coeff_sum_ == 0) throw std::invalid_argument("FirFilter: all-zero coefficients");
}

std::vector<std::uint8_t> FirFilter::filter(const std::vector<std::uint8_t>& signal) const {
  std::vector<std::uint8_t> out(signal.size(), 0);
  for (std::size_t n = 0; n < signal.size(); ++n) {
    std::uint64_t acc = 0;
    for (std::size_t k = 0; k < coeffs_.size(); ++k) {
      if (k > n) break;  // zero-padded history
      if (coeffs_[k] == 0) continue;
      acc += multiplier_->multiply(coeffs_[k], signal[n - k]);
    }
    out[n] = static_cast<std::uint8_t>(std::min<std::uint64_t>(acc / coeff_sum_, 255));
  }
  return out;
}

std::vector<std::uint8_t> FirFilter::triangular_taps(unsigned taps) {
  if (taps == 0) throw std::invalid_argument("triangular_taps: taps must be positive");
  std::vector<std::uint8_t> c(taps);
  const double mid = (taps - 1) / 2.0;
  for (unsigned i = 0; i < taps; ++i) {
    const double w = 1.0 - std::abs(i - mid) / (mid + 1.0);
    c[i] = static_cast<std::uint8_t>(std::lround(255.0 * w));
  }
  return c;
}

std::vector<std::uint8_t> make_test_signal(std::size_t n, std::uint64_t seed, double noise_amp) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> s(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    double v = 128.0 + 70.0 * std::sin(t * 0.03) + 28.0 * std::sin(t * 0.31 + 1.0);
    v += noise_amp * (rng.uniform01() * 2.0 - 1.0);
    s[i] = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
  }
  return s;
}

double snr_db(const std::vector<std::uint8_t>& reference, const std::vector<std::uint8_t>& test) {
  if (reference.size() != test.size()) {
    throw std::invalid_argument("snr_db: length mismatch");
  }
  long double signal = 0.0L;
  long double noise = 0.0L;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double r = reference[i];
    const double d = r - static_cast<double>(test[i]);
    signal += r * r;
    noise += d * d;
  }
  if (noise == 0.0L) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(static_cast<double>(signal / noise));
}

}  // namespace axmult::apps
