#include "apps/jpeg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/bits.hpp"
#include "multgen/builders.hpp"
#include "mult/recursive.hpp"

namespace axmult::apps {

namespace {

/// Standard JPEG luminance quantization table.
constexpr int kLuminanceQ[8][8] = {
    {16, 11, 10, 16, 24, 40, 51, 61},   {12, 12, 14, 19, 26, 58, 60, 55},
    {14, 13, 16, 24, 40, 57, 69, 56},   {14, 17, 22, 29, 51, 87, 80, 62},
    {18, 22, 37, 56, 68, 109, 103, 77}, {24, 35, 55, 64, 81, 104, 113, 92},
    {49, 64, 78, 87, 103, 121, 120, 101}, {72, 92, 95, 98, 112, 100, 103, 99}};

}  // namespace

Dct8x8::Dct8x8(mult::MultiplierPtr multiplier) : multiplier_(std::move(multiplier)) {
  if (!multiplier_ || multiplier_->a_bits() != 8 || multiplier_->b_bits() != 8) {
    throw std::invalid_argument("Dct8x8 needs an 8x8 multiplier");
  }
  for (int u = 0; u < 8; ++u) {
    const double norm = u == 0 ? std::sqrt(0.125) : 0.5;
    for (int x = 0; x < 8; ++x) {
      coeff_[u][x] =
          static_cast<int>(std::lround(64.0 * norm * std::cos((2 * x + 1) * u * M_PI / 16.0)));
    }
  }
}

int Dct8x8::mac_row(const std::array<int, 8>& values, const std::array<int, 8>& coeffs) const {
  long long acc = 0;
  for (int i = 0; i < 8; ++i) {
    const int v = values[i];
    const int c = coeffs[i];
    if (v == 0 || c == 0) continue;
    const std::uint64_t mag_v = static_cast<std::uint64_t>(std::min(std::abs(v), 255));
    const std::uint64_t mag_c = static_cast<std::uint64_t>(std::min(std::abs(c), 255));
    const long long p = static_cast<long long>(multiplier_->multiply(mag_v, mag_c));
    acc += ((v < 0) != (c < 0)) ? -p : p;
  }
  return static_cast<int>(acc);
}

Block8x8 Dct8x8::forward(const Block8x8& spatial) const {
  // Level shift to [-128, 127], rows then columns, rescaling by 64 (the
  // coefficient scale) after each 1-D pass.
  Block8x8 shifted{};
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) shifted[y][x] = spatial[y][x] - 128;
  }
  Block8x8 rows{};
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      std::array<int, 8> c{};
      for (int x = 0; x < 8; ++x) c[x] = coeff_[u][x];
      rows[y][u] = mac_row(shifted[y], c) / 64;
    }
  }
  Block8x8 out{};
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      std::array<int, 8> col{};
      std::array<int, 8> c{};
      for (int y = 0; y < 8; ++y) {
        col[y] = rows[y][u];
        c[y] = coeff_[v][y];
      }
      out[v][u] = mac_row(col, c) / 64;
    }
  }
  return out;
}

Block8x8 Dct8x8::inverse(const Block8x8& freq) const {
  Block8x8 cols{};
  for (int u = 0; u < 8; ++u) {
    for (int y = 0; y < 8; ++y) {
      std::array<int, 8> col{};
      std::array<int, 8> c{};
      for (int v = 0; v < 8; ++v) {
        col[v] = freq[v][u];
        c[v] = coeff_[v][y];  // transpose: IDCT uses C^T
      }
      cols[y][u] = mac_row(col, c) / 64;
    }
  }
  Block8x8 out{};
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      std::array<int, 8> row{};
      std::array<int, 8> c{};
      for (int u = 0; u < 8; ++u) {
        row[u] = cols[y][u];
        c[u] = coeff_[u][x];
      }
      out[y][x] = std::clamp(mac_row(row, c) / 64 + 128, 0, 255);
    }
  }
  return out;
}

Block8x8 Dct8x8::quantize(const Block8x8& freq, int quality_divisor) {
  Block8x8 q{};
  for (int v = 0; v < 8; ++v) {
    for (int u = 0; u < 8; ++u) {
      const int step = std::max(1, kLuminanceQ[v][u] / quality_divisor);
      q[v][u] = freq[v][u] >= 0 ? (freq[v][u] + step / 2) / step
                                : -((-freq[v][u] + step / 2) / step);
    }
  }
  return q;
}

Block8x8 Dct8x8::dequantize(const Block8x8& q, int quality_divisor) {
  Block8x8 f{};
  for (int v = 0; v < 8; ++v) {
    for (int u = 0; u < 8; ++u) {
      const int step = std::max(1, kLuminanceQ[v][u] / quality_divisor);
      f[v][u] = q[v][u] * step;
    }
  }
  return f;
}

fabric::Netlist dct_stage_netlist(bool use_dsp, unsigned units) {
  using fabric::kNetGnd;
  using fabric::NetId;
  using multgen::BitVec;
  fabric::Netlist nl;

  // Coefficient magnitudes of the scaled DCT matrix.
  Dct8x8 ref(mult::make_accurate(8));
  const auto& coeff = ref.coefficients();

  for (unsigned unit = 0; unit < units; ++unit) {
    const std::string up = "u" + std::to_string(unit);
    std::array<BitVec, 8> x;
    for (unsigned i = 0; i < 8; ++i) {
      for (unsigned b = 0; b < 8; ++b) {
        x[i].push_back(nl.add_input(up + ".x" + std::to_string(i) + "_" + std::to_string(b)));
      }
    }
    for (unsigned u = 0; u < 8; ++u) {
      // Each output coefficient: 8 constant multiplications + adder tree.
      std::vector<BitVec> products;
      for (unsigned i = 0; i < 8; ++i) {
        const unsigned c = static_cast<unsigned>(std::abs(coeff[u][i]));
        if (c == 0) continue;
        const std::string mp = up + ".m" + std::to_string(u) + "_" + std::to_string(i);
        if (use_dsp) {
          std::vector<NetId> cbits;
          for (unsigned b = 0; b < 8; ++b) {
            cbits.push_back(bit(c, b) ? fabric::kNetVcc : kNetGnd);
          }
          products.push_back(nl.add_dsp(mp + ".dsp", x[i], cbits, 16));
        } else {
          // Shift-add constant multiplier: one binary add per extra set bit.
          BitVec acc;
          bool first = true;
          unsigned first_shift = 0;
          for (unsigned b = 0; b < 8; ++b) {
            if (!bit(c, b)) continue;
            if (first) {
              acc = multgen::shifted(x[i], b);
              first = false;
              first_shift = b;
            } else {
              acc = multgen::build_binary_add(nl, acc, multgen::shifted(x[i], b),
                                              static_cast<unsigned>(8 + b + 1),
                                              mp + ".s" + std::to_string(b));
            }
          }
          (void)first_shift;
          products.push_back(acc);
        }
      }
      // Adder tree over the products (ternary first, then binary).
      while (products.size() > 1) {
        std::vector<BitVec> next;
        std::size_t idx = 0;
        unsigned lvl = 0;
        while (idx + 2 < products.size()) {
          next.push_back(multgen::build_ternary_add(
              nl, products[idx], products[idx + 1], products[idx + 2], 19,
              up + ".t" + std::to_string(u) + "_" + std::to_string(lvl++)));
          idx += 3;
        }
        if (idx + 1 < products.size()) {
          next.push_back(multgen::build_binary_add(
              nl, products[idx], products[idx + 1], 19,
              up + ".b" + std::to_string(u) + "_" + std::to_string(lvl++)));
          idx += 2;
        }
        while (idx < products.size()) next.push_back(products[idx++]);
        products = std::move(next);
      }
      const BitVec& result = products.front();
      for (std::size_t b = 0; b < result.size(); ++b) {
        nl.add_output(up + ".y" + std::to_string(u) + "_" + std::to_string(b), result[b]);
      }
    }
  }
  return nl;
}

}  // namespace axmult::apps
