// Grayscale images, synthetic test scenes and quality metrics.
//
// The paper evaluates the SUSAN smoothing accelerator on a photograph; no
// photos ship with this reproduction, so image.hpp provides procedural
// scenes with the same relevant structure (smooth regions, edges, texture
// and sensor noise) plus PGM output so the Fig. 11 visual comparison can
// be inspected with any viewer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace axmult::apps {

class Image {
 public:
  Image() = default;
  Image(unsigned width, unsigned height, std::uint8_t fill = 0)
      : width_(width), height_(height), pixels_(std::size_t{width} * height, fill) {}

  [[nodiscard]] unsigned width() const noexcept { return width_; }
  [[nodiscard]] unsigned height() const noexcept { return height_; }
  [[nodiscard]] std::uint8_t at(unsigned x, unsigned y) const {
    return pixels_[std::size_t{y} * width_ + x];
  }
  std::uint8_t& at(unsigned x, unsigned y) { return pixels_[std::size_t{y} * width_ + x]; }
  [[nodiscard]] const std::vector<std::uint8_t>& pixels() const noexcept { return pixels_; }

  /// Clamped access (edge replication) for window operators.
  [[nodiscard]] std::uint8_t clamped(int x, int y) const;

  /// Writes a binary PGM (P5). Throws std::runtime_error on I/O failure.
  void write_pgm(const std::string& path) const;

 private:
  unsigned width_ = 0;
  unsigned height_ = 0;
  std::vector<std::uint8_t> pixels_;
};

/// Procedural test scene: gradient background, disks, bars and speckle
/// noise — smooth regions with edges, the structure SUSAN smoothing
/// targets. Deterministic for a given seed.
[[nodiscard]] Image make_test_scene(unsigned width, unsigned height, std::uint64_t seed = 11,
                                    double noise_sigma = 6.0);

/// Reads a binary PGM (P5, maxval <= 255) as written by Image::write_pgm;
/// `#` comment lines after the magic are skipped. Throws
/// std::runtime_error on unreadable or malformed files.
[[nodiscard]] Image read_pgm(const std::string& path);

/// Peak signal-to-noise ratio in dB; +infinity for identical images.
[[nodiscard]] double psnr(const Image& reference, const Image& test);

/// Mean squared error.
[[nodiscard]] double mse(const Image& reference, const Image& test);

/// Mean structural similarity over non-overlapping 8x8 windows (partial
/// border windows included), the standard C1/C2 stabilizers at L = 255.
/// Window statistics are exact integer sums and the combination uses only
/// +,-,*,/ on doubles, so the value is bit-reproducible across platforms.
[[nodiscard]] double ssim(const Image& reference, const Image& test);

}  // namespace axmult::apps
