// GF(2^8) arithmetic and a Reed-Solomon encoder, both as a software model
// and as a fabric datapath (Table 1's logic-vs-DSP motivational study).
//
// The encoder is the classic systematic LFSR form: shifting each message
// symbol through a division-by-g(x) register built from constant GF
// multipliers. Constant GF multipliers are *linear* over GF(2): each
// output bit is an XOR of input bits, which maps to one or two LUT6s per
// bit — the reason the LUT implementation of this encoder beats the
// DSP-mapped one (DSP column routing adds latency and buys nothing for
// XOR-dominated logic).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fabric/netlist.hpp"

namespace axmult::apps {

/// GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1 (0x11D).
class GF256 {
 public:
  GF256();
  [[nodiscard]] std::uint8_t add(std::uint8_t a, std::uint8_t b) const noexcept {
    return a ^ b;
  }
  [[nodiscard]] std::uint8_t mul(std::uint8_t a, std::uint8_t b) const noexcept;
  [[nodiscard]] std::uint8_t pow_alpha(unsigned e) const noexcept {
    return exp_[e % 255];
  }
  [[nodiscard]] std::uint8_t inverse(std::uint8_t a) const;
  /// Evaluates polynomial `coeffs` (highest degree first) at x.
  [[nodiscard]] std::uint8_t poly_eval(const std::vector<std::uint8_t>& coeffs,
                                       std::uint8_t x) const noexcept;

 private:
  std::array<std::uint8_t, 255> exp_{};
  std::array<int, 256> log_{};
};

/// Systematic RS(n, k) encoder over GF(2^8), n - k = 2t parity symbols.
class RsEncoder {
 public:
  RsEncoder(unsigned n, unsigned k);

  /// Appends n-k parity symbols to `message` (size k). Returns the
  /// codeword (size n).
  [[nodiscard]] std::vector<std::uint8_t> encode(const std::vector<std::uint8_t>& message) const;

  /// Syndrome check: all zero iff `codeword` is valid.
  [[nodiscard]] std::vector<std::uint8_t> syndromes(
      const std::vector<std::uint8_t>& codeword) const;

  [[nodiscard]] const std::vector<std::uint8_t>& generator() const noexcept { return gen_; }
  [[nodiscard]] unsigned n() const noexcept { return n_; }
  [[nodiscard]] unsigned k() const noexcept { return k_; }

  /// Elaborates the encoder's per-cycle combinational datapath (feedback
  /// XOR + n-k constant GF multipliers + register-input XORs) to the
  /// fabric. `use_dsp` maps each constant multiplier onto a DSP block
  /// instead of XOR LUT networks, reproducing the Table 1 configuration.
  [[nodiscard]] fabric::Netlist datapath_netlist(bool use_dsp) const;

 private:
  unsigned n_;
  unsigned k_;
  GF256 gf_;
  std::vector<std::uint8_t> gen_;  ///< generator polynomial, degree n-k
};

}  // namespace axmult::apps
