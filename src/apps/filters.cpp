#include "apps/filters.hpp"

#include <cmath>
#include <stdexcept>

namespace axmult::apps {

std::vector<std::uint8_t> gaussian_taps(unsigned taps, double sigma) {
  if (taps == 0) throw std::invalid_argument("gaussian_taps: taps must be positive");
  if (sigma <= 0.0) sigma = taps / 5.0;
  std::vector<std::uint8_t> c(taps);
  const double mid = (taps - 1) / 2.0;
  for (unsigned i = 0; i < taps; ++i) {
    const double d = (i - mid) / sigma;
    c[i] = static_cast<std::uint8_t>(std::lround(255.0 * std::exp(-0.5 * d * d)));
  }
  return c;
}

Image blur_image(const Image& input, const std::vector<std::uint8_t>& taps,
                 mult::MultiplierPtr multiplier) {
  const FirFilter fir(taps, std::move(multiplier));
  const int delay = static_cast<int>(taps.size() / 2);

  auto run = [&](const Image& src, bool columns) {
    Image out(src.width(), src.height());
    const unsigned outer = columns ? src.width() : src.height();
    const unsigned inner = columns ? src.height() : src.width();
    std::vector<std::uint8_t> line(inner);
    for (unsigned o = 0; o < outer; ++o) {
      for (unsigned i = 0; i < inner; ++i) {
        line[i] = columns ? src.at(o, i) : src.at(i, o);
      }
      const auto filtered = fir.filter(line);
      for (unsigned i = 0; i < inner; ++i) {
        // Compensate the FIR group delay; clamp at the trailing edge.
        const unsigned j = std::min<unsigned>(i + static_cast<unsigned>(delay), inner - 1);
        if (columns) {
          out.at(o, i) = filtered[j];
        } else {
          out.at(i, o) = filtered[j];
        }
      }
    }
    return out;
  };
  return run(run(input, false), true);
}

}  // namespace axmult::apps
