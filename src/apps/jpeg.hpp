// JPEG-style 8x8 DCT pipeline: a software model with a pluggable
// multiplier (approximate-computing case study) and a fabric datapath
// elaboration (Table 1's DSP-vs-LUT study).
#pragma once

#include <array>
#include <cstdint>

#include "fabric/netlist.hpp"
#include "mult/multiplier.hpp"

namespace axmult::apps {

using Block8x8 = std::array<std::array<int, 8>, 8>;

/// Fixed-point 8-point DCT-II with 7-bit scaled cosine coefficients.
/// All multiplications run |value| * |coefficient| through the supplied
/// 8x8 unsigned multiplier (signs handled at accumulation), so the DCT
/// exercises approximate multipliers exactly where a hardware datapath
/// would place them.
class Dct8x8 {
 public:
  explicit Dct8x8(mult::MultiplierPtr multiplier);

  /// Forward 2-D DCT of a block of pixel values in [0, 255].
  [[nodiscard]] Block8x8 forward(const Block8x8& spatial) const;

  /// Inverse 2-D DCT back to pixel values (clamped to [0, 255]).
  [[nodiscard]] Block8x8 inverse(const Block8x8& freq) const;

  /// Quantize/dequantize with the standard JPEG luminance table scaled by
  /// `quality_divisor` (1 = standard).
  [[nodiscard]] static Block8x8 quantize(const Block8x8& freq, int quality_divisor = 1);
  [[nodiscard]] static Block8x8 dequantize(const Block8x8& q, int quality_divisor = 1);

  /// The scaled coefficient matrix (c[u][x] = round(cos(..) * 64 * norm)).
  [[nodiscard]] const std::array<std::array<int, 8>, 8>& coefficients() const noexcept {
    return coeff_;
  }

 private:
  [[nodiscard]] int mac_row(const std::array<int, 8>& values,
                            const std::array<int, 8>& coeffs) const;

  mult::MultiplierPtr multiplier_;
  std::array<std::array<int, 8>, 8> coeff_{};
};

/// Elaborates `units` parallel 1-D 8-point DCT datapaths. With
/// `use_dsp = false` every coefficient multiplication becomes a shift-add
/// LUT network; with `use_dsp = true` each claims a DSP block. Reproduces
/// the Table 1 JPEG-encoder resource/latency trade-off.
[[nodiscard]] fabric::Netlist dct_stage_netlist(bool use_dsp, unsigned units = 4);

}  // namespace axmult::apps
