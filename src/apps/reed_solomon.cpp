#include "apps/reed_solomon.hpp"

#include <stdexcept>

#include "common/bits.hpp"
#include "fabric/lut6.hpp"

namespace axmult::apps {

GF256::GF256() {
  // Generate alpha^i with alpha = 0x02 and the 0x11D primitive polynomial.
  std::uint16_t x = 1;
  log_.fill(-1);
  for (unsigned i = 0; i < 255; ++i) {
    exp_[i] = static_cast<std::uint8_t>(x);
    log_[static_cast<std::uint8_t>(x)] = static_cast<int>(i);
    x <<= 1;
    if (x & 0x100) x ^= 0x11D;
  }
}

std::uint8_t GF256::mul(std::uint8_t a, std::uint8_t b) const noexcept {
  if (a == 0 || b == 0) return 0;
  const int s = log_[a] + log_[b];
  return exp_[static_cast<unsigned>(s) % 255];
}

std::uint8_t GF256::inverse(std::uint8_t a) const {
  if (a == 0) throw std::domain_error("GF256: inverse of zero");
  return exp_[(255 - static_cast<unsigned>(log_[a]) % 255) % 255];
}

std::uint8_t GF256::poly_eval(const std::vector<std::uint8_t>& coeffs, std::uint8_t x) const
    noexcept {
  std::uint8_t acc = 0;
  for (std::uint8_t c : coeffs) acc = static_cast<std::uint8_t>(mul(acc, x) ^ c);
  return acc;
}

RsEncoder::RsEncoder(unsigned n, unsigned k) : n_(n), k_(k) {
  if (k == 0 || n <= k || n > 255) throw std::invalid_argument("RsEncoder: bad (n, k)");
  // g(x) = prod_{i=0}^{n-k-1} (x - alpha^i); coefficients g_[0..n-k],
  // lowest degree first, monic.
  const unsigned t = n - k;
  gen_.assign(1, 1);
  for (unsigned i = 0; i < t; ++i) {
    const std::uint8_t root = gf_.pow_alpha(i);
    std::vector<std::uint8_t> next(gen_.size() + 1, 0);
    for (std::size_t j = 0; j < gen_.size(); ++j) {
      next[j] ^= gf_.mul(gen_[j], root);  // multiply by root (note: -r == r)
      next[j + 1] ^= gen_[j];             // multiply by x
    }
    gen_ = std::move(next);
  }
}

std::vector<std::uint8_t> RsEncoder::encode(const std::vector<std::uint8_t>& message) const {
  if (message.size() != k_) throw std::invalid_argument("RsEncoder: message size != k");
  const unsigned t = n_ - k_;
  std::vector<std::uint8_t> rem(t, 0);
  for (std::uint8_t m : message) {
    const std::uint8_t fb = static_cast<std::uint8_t>(m ^ rem[t - 1]);
    for (unsigned i = t - 1; i > 0; --i) {
      rem[i] = static_cast<std::uint8_t>(rem[i - 1] ^ gf_.mul(fb, gen_[i]));
    }
    rem[0] = gf_.mul(fb, gen_[0]);
  }
  std::vector<std::uint8_t> codeword = message;
  for (unsigned i = 0; i < t; ++i) codeword.push_back(rem[t - 1 - i]);
  return codeword;
}

std::vector<std::uint8_t> RsEncoder::syndromes(const std::vector<std::uint8_t>& codeword) const {
  std::vector<std::uint8_t> s;
  for (unsigned i = 0; i < n_ - k_; ++i) {
    s.push_back(gf_.poly_eval(codeword, gf_.pow_alpha(i)));
  }
  return s;
}

fabric::Netlist RsEncoder::datapath_netlist(bool use_dsp) const {
  using fabric::kNetGnd;
  using fabric::kNetVcc;
  using fabric::NetId;
  fabric::Netlist nl;
  const unsigned t = n_ - k_;

  std::vector<NetId> m;
  for (unsigned b = 0; b < 8; ++b) m.push_back(nl.add_input("m" + std::to_string(b)));
  std::vector<std::vector<NetId>> rem(t);
  for (unsigned i = 0; i < t; ++i) {
    for (unsigned b = 0; b < 8; ++b) {
      rem[i].push_back(nl.add_input("r" + std::to_string(i) + "_" + std::to_string(b)));
    }
  }

  // Feedback symbol: fb = m ^ rem[t-1], two XOR2 per dual-output LUT.
  std::vector<NetId> fb(8);
  for (unsigned b = 0; b < 8; b += 2) {
    const std::uint64_t init = fabric::init_from_o5_o6(
        [](const std::array<unsigned, 5>& in) { return (in[0] ^ in[1]) != 0; },
        [](const std::array<unsigned, 5>& in) { return (in[2] ^ in[3]) != 0; });
    const auto lut = nl.add_lut6(
        "fb" + std::to_string(b), init,
        {m[b], rem[t - 1][b], m[b + 1], rem[t - 1][b + 1], kNetGnd, kNetVcc}, true);
    fb[b] = lut.o5;
    fb[b + 1] = lut.o6;
  }

  // Constant GF multiplier matrix: bit j of (fb * g) = XOR of fb bits
  // selected by column j of the GF(2)-linear map of multiplication by g.
  auto const_mul_columns = [&](std::uint8_t g) {
    std::array<std::uint8_t, 8> cols{};  // cols[j] = mask of fb bits in output j
    for (unsigned in_bit = 0; in_bit < 8; ++in_bit) {
      const std::uint8_t prod = gf_.mul(static_cast<std::uint8_t>(1u << in_bit), g);
      for (unsigned j = 0; j < 8; ++j) {
        if (bit(prod, j)) cols[j] = static_cast<std::uint8_t>(cols[j] | (1u << in_bit));
      }
    }
    return cols;
  };

  for (unsigned i = 0; i < t; ++i) {
    const std::string pre = "stage" + std::to_string(i);
    std::vector<NetId> product(8, kNetGnd);
    if (use_dsp) {
      // Table 1 "DSP blocks enabled": each constant multiplier claims a
      // DSP slice (Vivado maps the inferred multiply there); the GF
      // reduction is not representable in a DSP, so this netlist is an
      // area/latency model only (see DESIGN.md).
      std::vector<NetId> cbits;
      for (unsigned b = 0; b < 8; ++b) cbits.push_back(bit(gen_[i], b) ? kNetVcc : kNetGnd);
      const auto p = nl.add_dsp(pre + ".dsp", fb, cbits, 16);
      for (unsigned b = 0; b < 8; ++b) product[b] = p[b];
    }
    for (unsigned j = 0; j < 8; ++j) {
      NetId next;
      if (use_dsp) {
        // next = rem[i-1][j] ^ product[j]
        const NetId prev = i > 0 ? rem[i - 1][j] : kNetGnd;
        const std::uint64_t init = fabric::init_from_o6(
            [](const std::array<unsigned, 6>& in) { return (in[0] ^ in[1]) != 0; });
        next = nl.add_lut6(pre + ".x" + std::to_string(j), init,
                           {product[j], prev, kNetGnd, kNetGnd, kNetGnd, kNetGnd}).o6;
      } else {
        // next = rem[i-1][j] ^ XOR(selected fb bits): <= 6 pins fits one
        // LUT, otherwise split into two.
        const std::uint8_t mask = const_mul_columns(gen_[i])[j];
        std::vector<NetId> taps;
        if (i > 0) taps.push_back(rem[i - 1][j]);
        for (unsigned b = 0; b < 8; ++b) {
          if (bit(mask, b)) taps.push_back(fb[b]);
        }
        if (taps.empty()) {
          next = kNetGnd;
        } else if (taps.size() == 1) {
          next = taps[0];
        } else {
          auto xor_lut = [&](const std::vector<NetId>& in, const std::string& name) {
            std::array<NetId, 6> pins{kNetGnd, kNetGnd, kNetGnd, kNetGnd, kNetGnd, kNetGnd};
            for (std::size_t p = 0; p < in.size(); ++p) pins[p] = in[p];
            static const std::uint64_t init =
                fabric::init_from_o6([](const std::array<unsigned, 6>& in6) {
                  return (in6[0] ^ in6[1] ^ in6[2] ^ in6[3] ^ in6[4] ^ in6[5]) != 0;
                });
            return nl.add_lut6(name, init, pins).o6;
          };
          if (taps.size() <= 6) {
            next = xor_lut(taps, pre + ".x" + std::to_string(j));
          } else {
            const std::vector<NetId> lo(taps.begin(), taps.begin() + 6);
            std::vector<NetId> hi(taps.begin() + 6, taps.end());
            hi.push_back(xor_lut(lo, pre + ".x" + std::to_string(j) + "a"));
            next = xor_lut(hi, pre + ".x" + std::to_string(j) + "b");
          }
        }
      }
      nl.add_output("n" + std::to_string(i) + "_" + std::to_string(j), next);
    }
  }
  return nl;
}

}  // namespace axmult::apps
