// Reconfiguration cost model for the runtime-adaptive precision subsystem.
//
// Grounding: DyRecMul-style dynamic LUTs (CFGLUT5). A CFGLUT5's truth
// table sits in a 32-bit serial shift register (CDI pin, one bit per
// CLK); rewriting it reprograms the LUT while the rest of the design keeps
// running. A LUT6_2 worth of truth table (64 INIT bits) maps onto two
// CFGLUT5s whose shift chains load in parallel, so one LUT reprograms in
// `init_bits` (32) cycles shifting 2 bits per cycle.
//
// A hot-swap between two multiplier netlists therefore costs
//   * cycles  — one init_bits-deep shift, all changed LUTs reloading
//               concurrently on their own CDI chains (DyRecMul rewrites
//               its whole multiplier in a single 32-cycle shift),
//   * energy  — a shift term (every bit clocked through every chain) plus
//               a flip term (only the INIT bits that actually change state
//               dissipate in the storage cells).
// The INIT bit-delta is computed LUT by LUT with cells paired in emission
// order (our generators emit structurally aligned netlists for the same
// recursion shape); unmatched cells are charged the full truth table.
//
// The *standing* tax of being reconfigurable at all — the CFGLUT5's CDI
// mux and deeper read path — is not modeled here: it enters through
// timing::DelayModel::cfglut_ns and power::PowerModel::cfglut_cap on
// netlists whose LUTs are marked reconfigurable (see adapt::Ladder's
// dynamic costs). A swap is never free, and neither is the ability to
// swap.
#pragma once

#include <cstdint>
#include <string>

#include "fabric/netlist.hpp"

namespace axmult::adapt {

/// Cost coefficients of the CFGLUT5-style dynamic leaf.
struct ReconfigModel {
  unsigned init_bits = 32;             ///< shift cycles per reprogrammed LUT
  double shift_clock_ns = 2.0;         ///< configuration clock period
  double energy_per_shift_bit_au = 0.05;   ///< per bit clocked through CDI
  double energy_per_flipped_bit_au = 0.02; ///< per INIT storage cell that flips
  /// Standing per-LUT penalties applied when costing a dynamic (marked)
  /// netlist through the STA/power roll-up. Roughly 1-2% of the static
  /// LUT delay/cap — the CFGLUT5 read path is marginally longer and its
  /// shift register loads the output mux.
  double cfglut_ns = 0.002;
  double cfglut_cap = 0.012;
};

/// Cost of one INIT rewrite taking the fabric from multiplier `from` to
/// multiplier `to`.
struct SwapCost {
  std::uint64_t changed_luts = 0;  ///< LUTs whose truth table differs
  std::uint64_t delta_bits = 0;    ///< INIT bits that flip (popcount of XOR)
  std::uint64_t cycles = 0;        ///< init_bits when anything changed (parallel chains)
  double time_ns = 0.0;            ///< cycles x shift clock
  double energy_au = 0.0;          ///< shift + flip terms
  /// energy x time — the term amortized into the adaptive EDP roll-up.
  [[nodiscard]] double edp_au() const noexcept { return energy_au * time_ns; }
};

/// INIT bit-delta swap cost between two netlists. LUT cells are paired in
/// cell order; when the netlists have different LUT counts the surplus
/// cells count as fully rewritten (every INIT bit shifted and flipped).
/// Non-LUT cells (CARRY4 routing is static) are ignored.
[[nodiscard]] SwapCost swap_cost(const fabric::Netlist& from, const fabric::Netlist& to,
                                 const ReconfigModel& model = {});

/// One-line JSON object for a SwapCost (embedded in adapt::Report).
[[nodiscard]] std::string to_json(const SwapCost& cost);

}  // namespace axmult::adapt
