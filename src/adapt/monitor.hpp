// Drift monitor: budgeted exact-shadow error sampling per GEMM panel.
//
// After a panel is computed through an approximate backend, the monitor
// re-derives a small subsample of its accumulator cells through exact
// int64 dot products (the "exact shadow"), pushes both the approximate and
// the exact accumulator through the layer's full requantization (zero-point
// corrections, bias, scale conversion, clamp) and scores the panel as the
// mean relative error of the resulting *output* values, floored at one
// output quantum — nn::output_mre restricted to the probe cells. Scoring
// after the clamp is deliberate: an error that pushes a negative
// pre-activation across zero survives the downstream ReLU, and that is
// precisely the failure mode an accumulator-domain ratio never sees.
//
// Determinism: probe cells come from one Xoshiro256 stream derived as
// seed -> gemm ordinal -> panel index, drawn entirely on the calling
// thread. The probe set — and therefore every policy decision downstream —
// is identical at any thread count, which is what makes adaptive runs
// bit-reproducible.
#pragma once

#include <cstddef>
#include <cstdint>

#include "nn/layers.hpp"

namespace axmult::adapt {

struct MonitorConfig {
  std::uint64_t seed = 1;
  std::size_t probes_per_panel = 16;  ///< exact-shadow dot products per window
};

class DriftMonitor {
 public:
  explicit DriftMonitor(const MonitorConfig& cfg) : cfg_(cfg) {}

  [[nodiscard]] const MonitorConfig& config() const noexcept { return cfg_; }

  /// Mean relative output-domain error of panel rows [row_begin, row_end)
  /// of the GEMM identified by `gemm_ordinal`. `rq` (may be null) carries
  /// the layer's requantization state; without it the estimate falls back
  /// to relative accumulator error with denominator floor 1.
  [[nodiscard]] double measure(std::uint64_t gemm_ordinal, std::uint64_t panel,
                               const std::uint8_t* a, const std::uint8_t* b,
                               const std::int64_t* acc, std::size_t row_begin,
                               std::size_t row_end, std::size_t k_dim, std::size_t n,
                               const nn::RequantState* rq) const;

 private:
  MonitorConfig cfg_;
};

}  // namespace axmult::adapt
