#include "adapt/report.hpp"

#include <algorithm>
#include <sstream>

namespace axmult::adapt {

void Report::finalize(std::uint64_t inference_count) {
  samples = std::max<std::uint64_t>(1, inference_count);
  total_macs = 0;
  monitor_macs = 0;
  compute_energy_au = 0.0;
  compute_edp_au = 0.0;
  const std::size_t top = rung_names.empty() ? 0 : rung_names.size() - 1;
  for (const LayerAdaptStats& ls : layers) {
    for (std::size_t r = 0; r < ls.macs_by_rung.size(); ++r) {
      const double macs = static_cast<double>(ls.macs_by_rung[r]);
      total_macs += ls.macs_by_rung[r];
      compute_energy_au += macs * rung_energy_per_mac_au[r];
      compute_edp_au += macs * rung_energy_per_mac_au[r] * rung_critical_path_ns[r];
    }
    // Exact-shadow probes run at the top (exact) rung's dynamic cost.
    monitor_macs += ls.monitor_macs;
    const double mm = static_cast<double>(ls.monitor_macs);
    compute_energy_au += mm * rung_energy_per_mac_au[top];
    compute_edp_au += mm * rung_energy_per_mac_au[top] * rung_critical_path_ns[top];
  }
  swap_energy_au = 0.0;
  swap_time_ns = 0.0;
  swap_edp_au = 0.0;
  for (const SwapEvent& s : swaps) {
    swap_energy_au += s.cost.energy_au;
    swap_time_ns += s.cost.time_ns;
    swap_edp_au += s.cost.edp_au();
  }
  total_edp_au = compute_edp_au + swap_edp_au;
  edp_per_inference_au = total_edp_au / static_cast<double>(samples);
}

std::string Report::to_json() const {
  std::ostringstream os;
  os.precision(10);
  os << "{\n  \"rungs\": [";
  for (std::size_t r = 0; r < rung_names.size(); ++r) {
    os << (r ? ", " : "") << "{\"name\": \"" << rung_names[r]
       << "\", \"energy_per_mac_au\": " << rung_energy_per_mac_au[r]
       << ", \"critical_path_ns\": " << rung_critical_path_ns[r] << "}";
  }
  os << "],\n  \"slo\": " << slo << ",\n  \"samples\": " << samples
     << ",\n  \"total_macs\": " << total_macs
     << ",\n  \"monitor_macs\": " << monitor_macs
     << ",\n  \"compute_energy_au\": " << compute_energy_au
     << ",\n  \"compute_edp_au\": " << compute_edp_au
     << ",\n  \"swap_count\": " << swaps.size()
     << ",\n  \"swap_energy_au\": " << swap_energy_au
     << ",\n  \"swap_time_ns\": " << swap_time_ns
     << ",\n  \"swap_edp_au\": " << swap_edp_au
     << ",\n  \"total_edp_au\": " << total_edp_au
     << ",\n  \"edp_per_inference_au\": " << edp_per_inference_au << ",\n  \"layers\": [\n";
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const LayerAdaptStats& ls = layers[i];
    os << "    {\"layer\": \"" << ls.layer << "\", \"macs_by_rung\": [";
    for (std::size_t r = 0; r < ls.macs_by_rung.size(); ++r) {
      os << (r ? ", " : "") << ls.macs_by_rung[r];
    }
    os << "], \"panels\": " << ls.panels << ", \"recomputes\": " << ls.recomputes
       << ", \"swaps\": " << ls.swaps << ", \"windows\": " << ls.windows
       << ", \"monitor_macs\": " << ls.monitor_macs << ", \"mean_estimate\": "
       << (ls.windows ? ls.sum_estimate / static_cast<double>(ls.windows) : 0.0)
       << ", \"worst_estimate\": " << ls.worst_estimate << "}"
       << (i + 1 < layers.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"swaps\": [\n";
  for (std::size_t i = 0; i < swaps.size(); ++i) {
    const SwapEvent& s = swaps[i];
    os << "    {\"layer\": \"" << s.layer << "\", \"gemm\": " << s.gemm
       << ", \"panel\": " << s.panel << ", \"from\": \"" << s.from << "\", \"to\": \""
       << s.to << "\", \"cost\": " << adapt::to_json(s.cost) << "}"
       << (i + 1 < swaps.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"trajectory_dropped\": " << trajectory_dropped << ",\n  \"trajectory\": [";
  for (std::size_t i = 0; i < trajectory.size(); ++i) {
    os << (i ? ", " : "") << trajectory[i];
  }
  os << "]\n}\n";
  return os.str();
}

}  // namespace axmult::adapt
