// adapt::Report — the adaptive controller's accounting ledger.
//
// Everything the SLO/EDP claim rests on is recorded here: which rungs ran
// how many MACs in which layer (recomputed panels are double-charged —
// work that ran, costs), every INIT rewrite with its bit-delta cost, and
// the monitor's error trajectory. The EDP roll-up charges compute at each
// rung's *dynamic* (CFGLUT-taxed) cost and adds every swap's energy x
// time, amortized over the inferences served — so the number compared
// against static baselines already contains the full price of being
// adaptive.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adapt/reconfig.hpp"

namespace axmult::adapt {

/// One INIT rewrite of the MAC array.
struct SwapEvent {
  std::string layer;
  std::uint64_t gemm = 0;   ///< gemm ordinal (monitor stream id)
  std::uint64_t panel = 0;  ///< panel index within that GEMM
  std::string from;
  std::string to;
  SwapCost cost;
};

/// Per-layer slice of the adaptive run.
struct LayerAdaptStats {
  std::string layer;
  std::vector<std::uint64_t> macs_by_rung;  ///< aligned with Report::rung_names
  std::uint64_t panels = 0;      ///< panel computations (recomputes included)
  std::uint64_t recomputes = 0;  ///< panels rejected and recomputed higher
  std::uint64_t swaps = 0;       ///< INIT rewrites charged to this layer
  std::uint64_t windows = 0;     ///< monitoring windows observed
  std::uint64_t monitor_macs = 0;  ///< exact-shadow dot-product MACs
  double sum_estimate = 0.0;     ///< Σ window error estimates
  double worst_estimate = 0.0;   ///< max window error estimate
};

struct Report {
  // Ladder context.
  std::vector<std::string> rung_names;
  std::vector<double> rung_energy_per_mac_au;   ///< dynamic (CFGLUT-taxed)
  std::vector<double> rung_critical_path_ns;    ///< dynamic (CFGLUT-taxed)
  double slo = 0.0;

  // Ledger.
  std::vector<LayerAdaptStats> layers;  ///< first-seen order
  std::vector<SwapEvent> swaps;
  std::vector<double> trajectory;       ///< first window estimates (capped)
  std::uint64_t trajectory_dropped = 0; ///< windows not in `trajectory`
  std::uint64_t samples = 1;            ///< inferences the run amortizes over

  // Roll-up (filled by finalize()).
  std::uint64_t total_macs = 0;
  std::uint64_t monitor_macs = 0;  ///< charged at the exact top rung
  double compute_energy_au = 0.0;
  double compute_edp_au = 0.0;   ///< Σ macs[l][r] x e[r] x cp[r], monitor included
  double swap_energy_au = 0.0;
  double swap_time_ns = 0.0;
  double swap_edp_au = 0.0;      ///< Σ swap energy x swap time
  double total_edp_au = 0.0;     ///< compute + swap
  double edp_per_inference_au = 0.0;

  /// Recomputes the roll-up from the ledger for `samples` inferences.
  void finalize(std::uint64_t inference_count);

  /// Full JSON document (the axnn --adaptive / bench_adaptive payload).
  [[nodiscard]] std::string to_json() const;
};

}  // namespace axmult::adapt
