#include "adapt/monitor.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace axmult::adapt {

double DriftMonitor::measure(std::uint64_t gemm_ordinal, std::uint64_t panel,
                             const std::uint8_t* a, const std::uint8_t* b,
                             const std::int64_t* acc, std::size_t row_begin,
                             std::size_t row_end, std::size_t k_dim, std::size_t n,
                             const nn::RequantState* rq) const {
  const std::size_t rows = row_end - row_begin;
  if (rows == 0 || n == 0 || cfg_.probes_per_panel == 0) return 0.0;
  Xoshiro256 rng(derive_stream_seed(derive_stream_seed(cfg_.seed, gemm_ordinal), panel));
  double sum = 0.0;
  for (std::size_t p = 0; p < cfg_.probes_per_panel; ++p) {
    const std::size_t i = row_begin + static_cast<std::size_t>(rng.below(rows));
    const std::size_t j = static_cast<std::size_t>(rng.below(n));
    const std::uint8_t* arow = a + i * k_dim;
    std::int64_t exact = 0;
    for (std::size_t kk = 0; kk < k_dim; ++kk) {
      exact += static_cast<std::int64_t>(arow[kk]) * b[kk * n + j];
    }
    const std::int64_t approx = acc[i * n + j];
    if (rq != nullptr) {
      // Score in the layer's *post-requantization* output domain, clamp
      // included — the same metric nn::output_mre applies to whole
      // tensors. The clamp matters: an approximation error that pushes a
      // negative pre-activation across zero survives the downstream ReLU
      // and is exactly the damage the accumulator-domain ratio is blind
      // to.
      std::int64_t row_sum = 0;
      for (std::size_t kk = 0; kk < k_dim; ++kk) row_sum += arow[kk];
      const std::int64_t za = rq->in_q.zero_point;
      const std::int64_t zw = rq->w_q.zero_point;
      const std::int64_t corr = -za * rq->col_sums[j] - zw * row_sum +
                                static_cast<std::int64_t>(rq->depth) * za * zw +
                                rq->bias_q[j];
      const double mult = rq->in_q.scale * rq->w_q.scale / rq->out_q.scale;
      const long out_max = rq->out_q.qmax();
      const long qe = std::clamp(
          static_cast<long>(std::llround(mult * static_cast<double>(exact + corr))) +
              rq->out_q.zero_point,
          0L, out_max);
      const long qa = std::clamp(
          static_cast<long>(std::llround(mult * static_cast<double>(approx + corr))) +
              rq->out_q.zero_point,
          0L, out_max);
      const double ye = rq->out_q.scale * static_cast<double>(qe - rq->out_q.zero_point);
      const double ya = rq->out_q.scale * static_cast<double>(qa - rq->out_q.zero_point);
      sum += std::abs(ya - ye) / std::max(std::abs(ye), rq->out_q.scale);
    } else {
      const double abs_err = std::abs(static_cast<double>(approx - exact));
      sum += abs_err / std::max(std::abs(static_cast<double>(exact)), 1.0);
    }
  }
  return sum / static_cast<double>(cfg_.probes_per_panel);
}

}  // namespace axmult::adapt
