#include "adapt/tenant.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace axmult::adapt {

RungGovernor::RungGovernor(Ladder ladder, const PolicyConfig& policy, std::string tenant)
    : ladder_(std::move(ladder)),
      policy_cfg_(policy),
      policy_(policy, ladder_.size()),
      tenant_(std::move(tenant)),
      hw_rung_(policy_.rung()) {
  if (!ladder_.rungs.back().backend->exact()) {
    throw std::invalid_argument("RungGovernor: ladder top rung must be exact");
  }
  ledger_.slo = policy.slo;
  for (const Rung& r : ladder_.rungs) {
    ledger_.rung_names.push_back(r.name);
    ledger_.rung_energy_per_mac_au.push_back(r.dynamic_cost.energy_per_mac_au);
    ledger_.rung_critical_path_ns.push_back(r.dynamic_cost.critical_path_ns);
  }
  LayerAdaptStats stats;
  stats.layer = tenant_;
  stats.macs_by_rung.assign(ladder_.size(), 0);
  ledger_.layers.push_back(std::move(stats));
}

std::size_t RungGovernor::decide(std::uint64_t unit) {
  const std::size_t target = policy_.rung();
  LayerAdaptStats& stats = ledger_.layers.front();
  if (target != hw_rung_) {
    SwapEvent ev;
    ev.layer = tenant_;
    ev.gemm = 0;
    ev.panel = unit;
    ev.from = ladder_.rungs[hw_rung_].name;
    ev.to = ladder_.rungs[target].name;
    ev.cost = ladder_.swap[hw_rung_][target];
    ledger_.swaps.push_back(std::move(ev));
    ++stats.swaps;
    hw_rung_ = target;
  }
  ++stats.panels;
  return target;
}

void RungGovernor::charge_macs(std::size_t rung, std::uint64_t macs) {
  ledger_.layers.front().macs_by_rung.at(rung) += macs;
}

void RungGovernor::charge_monitor_macs(std::uint64_t macs) {
  ledger_.layers.front().monitor_macs += macs;
}

bool RungGovernor::observe(std::uint64_t unit, double estimate) {
  (void)unit;
  LayerAdaptStats& stats = ledger_.layers.front();
  ++stats.windows;
  stats.sum_estimate += estimate;
  stats.worst_estimate = std::max(stats.worst_estimate, estimate);
  if (ledger_.trajectory.size() < max_trajectory_) {
    ledger_.trajectory.push_back(estimate);
  } else {
    ++ledger_.trajectory_dropped;
  }
  const HysteresisPolicy::Action action = policy_.update(estimate);
  if (action == HysteresisPolicy::Action::kUp && estimate >= policy_cfg_.slo) {
    ++stats.recomputes;
    return true;
  }
  return false;
}

Report RungGovernor::report(std::uint64_t work_count) const {
  Report snapshot = ledger_;
  snapshot.finalize(work_count);
  return snapshot;
}

}  // namespace axmult::adapt
