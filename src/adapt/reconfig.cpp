#include "adapt/reconfig.hpp"

#include <bit>
#include <sstream>
#include <vector>

namespace axmult::adapt {

namespace {

std::vector<std::uint64_t> lut_inits(const fabric::Netlist& nl) {
  std::vector<std::uint64_t> inits;
  for (const fabric::Cell& c : nl.cells()) {
    if (c.kind == fabric::CellKind::kLut6) inits.push_back(c.init);
  }
  return inits;
}

}  // namespace

SwapCost swap_cost(const fabric::Netlist& from, const fabric::Netlist& to,
                   const ReconfigModel& model) {
  const std::vector<std::uint64_t> a = lut_inits(from);
  const std::vector<std::uint64_t> b = lut_inits(to);
  SwapCost cost;
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    const std::uint64_t delta = a[i] ^ b[i];
    if (delta == 0) continue;
    ++cost.changed_luts;
    cost.delta_bits += static_cast<std::uint64_t>(std::popcount(delta));
  }
  // Surplus LUTs on either side: the array must be reprogrammed into (or
  // out of) them wholesale — charge a full truth table each.
  const std::size_t surplus = std::max(a.size(), b.size()) - common;
  cost.changed_luts += surplus;
  cost.delta_bits += static_cast<std::uint64_t>(surplus) * 64;

  // Every changed LUT's CFGLUT5 pair reloads concurrently on its own CDI
  // chain (DyRecMul reconfigures its whole multiplier in one 32-cycle
  // shift), so the swap stalls the array for init_bits cycles total; the
  // energy still scales with every bit clocked through every chain.
  cost.cycles = cost.changed_luts ? model.init_bits : 0;
  cost.time_ns = static_cast<double>(cost.cycles) * model.shift_clock_ns;
  const double shifted_bits =
      2.0 * static_cast<double>(model.init_bits) * static_cast<double>(cost.changed_luts);
  cost.energy_au = shifted_bits * model.energy_per_shift_bit_au +
                   static_cast<double>(cost.delta_bits) * model.energy_per_flipped_bit_au;
  return cost;
}

std::string to_json(const SwapCost& cost) {
  std::ostringstream os;
  os.precision(10);
  os << "{\"changed_luts\": " << cost.changed_luts << ", \"delta_bits\": " << cost.delta_bits
     << ", \"cycles\": " << cost.cycles << ", \"time_ns\": " << cost.time_ns
     << ", \"energy_au\": " << cost.energy_au << ", \"edp_au\": " << cost.edp_au() << "}";
  return os.str();
}

}  // namespace axmult::adapt
