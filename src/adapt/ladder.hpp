// Backend ladders: the ordered accuracy/cost chains the adaptive
// controller climbs.
//
// A rung couples a MacBackend (product table for the data path) with two
// hardware roll-ups of the same netlist:
//   * static_cost  — the plain timing/power models, i.e. what a fixed
//     deployment of this multiplier costs. Static baselines are compared
//     at this cost: a design that never swaps doesn't pay for CFGLUT5s.
//   * dynamic_cost — the netlist with every LUT marked reconfigurable,
//     rolled up under the CFGLUT-taxed models. The adaptive controller
//     charges *itself* at this cost: the ability to swap is a standing
//     tax on every MAC, so the EDP win it claims is already net of it.
//
// Rungs are ordered cheapest-first by dynamic EDP/MAC and pruned to be
// strictly error-decreasing (a costlier rung that isn't more accurate can
// never be worth escalating to); the top rung is always exact, so an SLO
// is always reachable. The full pairwise INIT-delta swap-cost matrix is
// precomputed — the controller looks swaps up, it never diffs netlists on
// the hot path.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "adapt/reconfig.hpp"
#include "dse/space.hpp"
#include "nn/mac.hpp"

namespace axmult::adapt {

/// One level of the accuracy/cost chain.
struct Rung {
  std::string name;
  nn::MacBackendPtr backend;
  nn::MacCost static_cost;   ///< plain roll-up (what a static deployment pays)
  nn::MacCost dynamic_cost;  ///< CFGLUT-marked roll-up (what adaptive pays)
  double table_mre = 0.0;    ///< exhaustive MRE of the tabulated operand space
};

struct Ladder {
  std::vector<Rung> rungs;                 ///< cheapest -> exact
  std::vector<std::vector<SwapCost>> swap; ///< [from][to] INIT rewrite cost
  ReconfigModel model;

  [[nodiscard]] std::size_t size() const noexcept { return rungs.size(); }
  /// Index of the exact top rung (always rungs.size() - 1 by construction).
  [[nodiscard]] std::size_t top() const noexcept { return rungs.size() - 1; }
  /// One-line summary "cc8 -> ca8 -> exact" for logs.
  [[nodiscard]] std::string describe() const;
};

/// Builds a ladder from registry backend names (nn::mac_backend_names).
/// Names are re-ordered by dynamic EDP/MAC, pruned to strictly decreasing
/// error, and an exact rung is appended when none of the survivors is
/// exact. Throws std::out_of_range on unknown names, std::runtime_error
/// when nothing usable remains.
[[nodiscard]] Ladder make_ladder(const std::vector<std::string>& names,
                                 const ReconfigModel& model = {});

/// A usable point of an axdse front file: unsigned config + tabulated
/// backend (dse::make_backend).
struct FrontBackend {
  std::string key;
  dse::Config config;
  nn::MacBackendPtr backend;
};

/// Loads an axdse front JSON-lines file and tabulates every usable
/// unsigned config. Fails with a one-line std::runtime_error (never a
/// crash or a silent empty sweep) when the file is unreadable, contains
/// malformed JSON lines, or yields no usable unsigned configs; signed or
/// otherwise untabulatable points are skipped with a note on stderr.
[[nodiscard]] std::vector<FrontBackend> backends_from_front(const std::string& path);

/// Builds a ladder from a DSE front: the usable unsigned points become
/// candidate rungs (costed like registry rungs, dynamic netlists via
/// dse::make_config_netlist), capped at `max_rungs` below the exact top.
[[nodiscard]] Ladder ladder_from_front(const std::string& path, std::size_t max_rungs = 4,
                                       const ReconfigModel& model = {});

}  // namespace axmult::adapt
