// The adaptive-precision controller: hysteresis policy + drift monitor
// wired into the per-tile GEMM as a nn::TileScheduler.
//
// Control loop, per panel:
//   decide   — the fabric reconfigures to the policy's rung if it isn't
//              there already (a SwapEvent with INIT-delta cost), the
//              panel's MACs are charged at that rung's dynamic cost, and
//              the panel computes through the rung's product table.
//   observe  — the drift monitor scores the panel against its exact
//              shadow; the hysteresis policy consumes the estimate.
//              A *hard* SLO violation (estimate >= slo) rejects the panel:
//              it is recomputed at the escalated rung (and its first
//              computation stays on the bill — wasted work is not free).
//              A *margin* crossing (estimate >= slo x up_margin but below
//              the SLO) keeps the panel and escalates for the next one.
//
// Escalation is immediate; de-escalation needs `hold_windows` consecutive
// calm windows (estimate < slo x down_margin), and a downgrade that has to
// be climbed back quickly doubles the hold requirement (bounded backoff).
// Because down_margin < up_margin, a constant error stream can never
// oscillate: it either always reads "high" (monotone climb, then hold) or
// always reads "calm" (monotone descent, then hold) or neither (hold).
//
// Termination of the recompute loop: a rejection only happens together
// with a policy upgrade, the rung index is bounded by the exact top, and
// the exact rung's estimate is identically zero — so every panel is
// eventually accepted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adapt/ladder.hpp"
#include "adapt/monitor.hpp"
#include "adapt/report.hpp"
#include "nn/tileplan.hpp"

namespace axmult::adapt {

struct PolicyConfig {
  double slo = 0.05;        ///< output-MRE service-level objective
  double up_margin = 0.7;   ///< escalate when estimate >= slo x up_margin
  double down_margin = 0.25; ///< calm window when estimate < slo x down_margin
  unsigned hold_windows = 4; ///< consecutive calm windows before de-escalating
  unsigned max_hold = 32;    ///< backoff cap on the hold requirement
  /// false (default): cold-start at the exact top and earn the way down —
  /// a fresh policy never ships an unmonitored-quality panel. true: start
  /// at rung 0 (used by tests and by workloads known to be benign).
  bool start_cheap = false;
};

/// The rung selector — pure state machine, unit-tested in isolation.
class HysteresisPolicy {
 public:
  enum class Action { kHold, kUp, kDown };

  HysteresisPolicy(const PolicyConfig& cfg, std::size_t rung_count);

  [[nodiscard]] std::size_t rung() const noexcept { return rung_; }
  [[nodiscard]] unsigned required_hold() const noexcept { return required_hold_; }

  /// Consumes one monitoring window's error estimate.
  Action update(double estimate);

 private:
  PolicyConfig cfg_;
  std::size_t count_;
  std::size_t rung_ = 0;
  unsigned calm_ = 0;
  unsigned required_hold_;
  std::uint64_t window_ = 0;
  std::uint64_t last_down_window_ = 0;
  bool downgraded_ = false;
};

struct ControllerConfig {
  std::size_t panel_rows = 64;  ///< reconfiguration granularity (output rows)
  MonitorConfig monitor;
  PolicyConfig policy;
  /// Per-layer error attenuation: a layer's own-output error is divided by
  /// its slack before the policy compares it against the SLO. An early
  /// layer's relative error shrinks on the way to the network output
  /// (later layers average over it), so holding every layer to the raw
  /// output SLO would overprovision; slack is that measured attenuation
  /// (>= 1). Layers not listed use 1.0 (no slack — safe default).
  std::vector<std::pair<std::string, double>> layer_slack;
  std::size_t max_trajectory = 4096;  ///< error-trajectory entries kept
};

/// One policy state machine *per layer*: the physical array is shared (a
/// single hw rung, every change is a billed swap), but each layer's error
/// profile is learned independently — conv escalating must not pin the
/// classifier's rung, and vice versa.
class Controller final : public nn::TileScheduler {
 public:
  Controller(Ladder ladder, const ControllerConfig& cfg);

  // nn::TileScheduler
  [[nodiscard]] std::size_t panel_rows() const override { return cfg_.panel_rows; }
  void begin_gemm(const std::string& layer_name, std::size_t m, std::size_t k_dim,
                  std::size_t n, const nn::RequantState* rq) override;
  [[nodiscard]] nn::TileDecision decide(std::size_t panel, std::size_t row_begin,
                                        std::size_t row_end) override;
  [[nodiscard]] bool observe(std::size_t panel, const std::uint8_t* a, const std::uint8_t* b,
                             const std::int64_t* acc, std::size_t row_begin,
                             std::size_t row_end, std::size_t k_dim, std::size_t n) override;
  [[nodiscard]] const nn::MacBackend& top_backend() const override {
    return *ladder_.rungs.back().backend;
  }

  [[nodiscard]] const Ladder& ladder() const noexcept { return ladder_; }
  /// Rung of the layer currently being scheduled (0 before any begin_gemm).
  [[nodiscard]] std::size_t current_rung() const noexcept {
    return policy_ ? policy_->rung() : 0;
  }

  /// Finalized ledger amortized over `inference_count` inferences.
  [[nodiscard]] Report report(std::uint64_t inference_count) const;

 private:
  LayerAdaptStats& layer_stats(const std::string& name);

  Ladder ladder_;
  ControllerConfig cfg_;
  DriftMonitor monitor_;
  std::vector<std::pair<std::string, HysteresisPolicy>> policies_;  ///< per layer
  HysteresisPolicy* policy_ = nullptr;  ///< the active layer's policy
  std::size_t hw_rung_ = 0;  ///< rung the fabric is currently configured as

  // Current GEMM context (set by begin_gemm).
  std::uint64_t gemm_ordinal_ = 0;
  std::string layer_;
  std::size_t k_dim_ = 0;
  std::size_t n_ = 0;
  double slack_ = 1.0;  ///< active layer's error attenuation divisor
  const nn::RequantState* rq_ = nullptr;
  bool pending_recompute_ = false;

  Report ledger_;  ///< rung context + raw ledger; finalize() on snapshot
};

}  // namespace axmult::adapt
